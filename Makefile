GO ?= go

.PHONY: all vet build test race check fuzz-smoke chaos-smoke chaos-crash-soak loadtest-smoke forecast-smoke markov-smoke bench-smoke bench-parallel metrics-smoke bench bench-gates ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with concurrent hot paths: the iShare network
# layer, the parallel testbed runner, the contention harness (whose
# calibration cache is shared across worker goroutines), the streaming
# trace codec, the chaos fault injector, and the availability detector and
# differential harness (which exercise the parallel runner under -race).
race:
	$(GO) test -race ./internal/ishare/ ./internal/testbed/ ./internal/contention/ ./internal/trace/ ./internal/chaos/ ./internal/availability/ ./internal/check/ ./internal/forecast/ ./internal/loadgen/ ./internal/markov/

# Differential correctness harness: 200 randomized seeds replayed through
# the naive reference model and the optimized detector/controller/testbed
# paths, which must agree exactly (see internal/check).
check:
	$(GO) run ./cmd/fgcs-bench -check -check-seeds 200

# Short native-fuzz smokes over the committed corpus plus a few seconds of
# newly generated input; longer sessions just raise -fuzztime.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzDetectorObserve' -fuzztime 5s ./internal/check/
	$(GO) test -run '^$$' -fuzz 'FuzzCodecRoundTrip' -fuzztime 5s ./internal/check/
	$(GO) test -run '^$$' -fuzz 'FuzzIndexQueries' -fuzztime 5s ./internal/check/
	$(GO) test -run '^$$' -fuzz 'FuzzColBlockRoundTrip' -fuzztime 5s ./internal/check/
	$(GO) test -run '^$$' -fuzz 'FuzzProtocolDecode' -fuzztime 5s ./internal/ishare/
	$(GO) test -run '^$$' -fuzz 'FuzzWALReplay' -fuzztime 5s ./internal/ishare/

# Deterministic-seed chaos smoke: scripted partition + refusal burst over a
# live registry and nodes, asserting exactly-once completion.
chaos-smoke:
	$(GO) test -race -run 'TestChaosSmoke' -count 1 ./internal/chaos/

# Crash-recovery soak: 50 fixed-seed randomized schedules of shard and
# broker kills at virtual times (with fsync latency and clock skew on some
# seeds), asserting under -race that no acked registration is lost, the
# ShardMap version stays monotonic, exactly-once submission holds through
# shard death, and gossip reconverges after heal.
chaos-crash-soak:
	$(GO) test -race -run 'TestCrashSoak' -count 1 ./internal/chaos/

# Control-plane smoke: a 10k-node synthetic fleet over 2 registry shards,
# batched registration, churned heartbeats, ranked fan-out discovery, the
# same discovery with shard 0 chaos-partitioned, then a crash-restart
# phase (shard killed and WAL-recovered under load) — gated on the smoke
# SLOs including recovery < 2 s and crash-window discovery p99 <= 2x
# healthy (exits nonzero on violation).
loadtest-smoke:
	$(GO) run ./cmd/fgcs-loadtest -smoke

# Forecast-driven scheduling smoke: the fixed-seed replay evaluation
# (proactive checkpoint/migrate must waste >= 10% less guest CPU than the
# reactive baseline at equal-or-better throughput; exits nonzero on a
# gate miss) plus the online-vs-offline forecast differential, which
# pins the incremental forecaster bit-equal (1e-9) to the batch-trained
# predictors on every seed.
forecast-smoke:
	$(GO) run ./cmd/fgcs-loadtest -forecast
	$(GO) test -run 'TestRunSmoke' -count 1 ./internal/check/

# Generative-model smoke: the fit -> generate -> refit round trip on its
# three fixed seeds (transition rates and interval ECDFs must be recovered
# within the E24 tolerances) plus the scenario legality and stream
# differential on two fixed seeds.
markov-smoke:
	$(GO) test -count 1 -run 'TestFitGenerateRefitRoundTrip|TestScenarioTracesAreLegal|TestScenarioStreamDifferential' ./internal/markov/

# A short benchmark pass that exercises the performance-critical paths
# without producing stable numbers; full runs go through cmd/fgcs-bench.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkRunMachineWeek|BenchmarkTickSixProcesses|BenchmarkDetectorObserve' -benchtime 10x ./internal/testbed/ ./internal/simos/ ./internal/availability/
	$(GO) test -run '^$$' -bench 'BenchmarkRunShardedFleet|BenchmarkWriteBinary|BenchmarkReadBinary|BenchmarkStreamAnalyzer|BenchmarkEvaluateHistoryWindow' -benchtime 1x ./internal/testbed/ ./internal/trace/ ./internal/predict/

# Parallel-analyzer smoke under the race detector: the worker-pool block
# scanner, its merge associativity, and the sharded v2 encoder round-trip,
# all on small fixed-seed corpora.
bench-parallel:
	$(GO) test -race -count 1 -run 'TestAnalyzeBlockFiles|TestMergeFrom|TestBlockIndexMatchesIndex' ./internal/trace/
	$(GO) test -race -count 1 -run 'TestEncoderSinkV2RoundTrip' ./internal/testbed/

# Regression-gated subset of the core benchmarks: the v2 codec, the block
# scanner, point queries, the serial/parallel analyze engines, predictor
# evaluation and the sharded control plane, checked against their recorded
# expectations (and the v2-size, speedup, point-query, shard-scaling and
# discovery-p99 gates) without rewriting BENCH_core.json.
bench-gates:
	$(GO) run ./cmd/fgcs-bench -only 'trace/|analyze/|predict/|ishare/|forecast/|markov/' -out ''

# Metrics-endpoint smoke: start ishared with an ephemeral metrics port,
# scrape /healthz and /metrics, assert the expected families are served.
metrics-smoke:
	sh scripts/metrics_smoke.sh

# Full core benchmarks, written to BENCH_core.json. Includes the
# observability gates: instrumented-run overhead and byte-identical output.
bench:
	$(GO) run ./cmd/fgcs-bench -out BENCH_core.json

ci: vet build test race check fuzz-smoke chaos-smoke chaos-crash-soak loadtest-smoke forecast-smoke markov-smoke bench-smoke bench-parallel bench-gates metrics-smoke
