GO ?= go

.PHONY: all vet build test race chaos-smoke bench-smoke metrics-smoke bench ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the packages with concurrent hot paths: the iShare network
# layer, the parallel testbed runner, the contention harness (whose
# calibration cache is shared across worker goroutines), the streaming
# trace codec and the chaos fault injector.
race:
	$(GO) test -race ./internal/ishare/ ./internal/testbed/ ./internal/contention/ ./internal/trace/ ./internal/chaos/

# Deterministic-seed chaos smoke: scripted partition + refusal burst over a
# live registry and nodes, asserting exactly-once completion.
chaos-smoke:
	$(GO) test -race -run 'TestChaosSmoke' -count 1 ./internal/chaos/

# A short benchmark pass that exercises the performance-critical paths
# without producing stable numbers; full runs go through cmd/fgcs-bench.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkRunMachineWeek|BenchmarkTickSixProcesses|BenchmarkDetectorObserve' -benchtime 10x ./internal/testbed/ ./internal/simos/ ./internal/availability/
	$(GO) test -run '^$$' -bench 'BenchmarkRunShardedFleet|BenchmarkWriteBinary|BenchmarkReadBinary|BenchmarkStreamAnalyzer|BenchmarkEvaluateHistoryWindow' -benchtime 1x ./internal/testbed/ ./internal/trace/ ./internal/predict/

# Metrics-endpoint smoke: start ishared with an ephemeral metrics port,
# scrape /healthz and /metrics, assert the expected families are served.
metrics-smoke:
	sh scripts/metrics_smoke.sh

# Full core benchmarks, written to BENCH_core.json. Includes the
# observability gates: instrumented-run overhead and byte-identical output.
bench:
	$(GO) run ./cmd/fgcs-bench -out BENCH_core.json

ci: vet build test race chaos-smoke bench-smoke metrics-smoke
