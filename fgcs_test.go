package fgcs

import (
	"testing"
	"time"
)

// TestFacadeEndToEnd exercises the public API the way the quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	// Detector via facade.
	det := NewDetector(DetectorConfig{})
	state, _ := det.Observe(Observation{At: 0, HostCPU: 0.1, FreeMem: 1 << 30, Alive: true})
	if state != S1 {
		t.Fatalf("state = %v, want S1", state)
	}
	state, tr := det.Observe(Observation{At: time.Minute, HostCPU: 0.4, FreeMem: 1 << 30, Alive: true})
	if state != S2 || tr == nil {
		t.Fatalf("state = %v tr = %+v, want S2 transition", state, tr)
	}

	// Thresholds helper.
	th := LinuxThresholds()
	if th.Th1 != 0.20 || th.Th2 != 0.60 {
		t.Errorf("LinuxThresholds = %+v", th)
	}

	// Small testbed through the facade.
	cfg := DefaultTestbedConfig()
	cfg.Machines = 2
	cfg.Days = 5
	trace, err := SimulateTestbed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) == 0 {
		t.Fatal("no events from facade testbed")
	}
	tb := trace.MakeTable2()
	if tb.Total.Max == 0 {
		t.Error("Table 2 empty")
	}

	// Engine via facade.
	eng, err := NewEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunFor(time.Minute)
	if eng.State() != S1 {
		t.Errorf("fresh engine state = %v", eng.State())
	}

	// Predictors via facade.
	preds := DefaultPredictors()
	if len(preds) < 4 {
		t.Errorf("only %d default predictors", len(preds))
	}
}

func TestFacadeDayTypes(t *testing.T) {
	if Weekday.String() != "weekday" || Weekend.String() != "weekend" {
		t.Error("day type aliases broken")
	}
	w := Window{Start: 0, End: time.Hour}
	if !w.Contains(30 * time.Minute) {
		t.Error("window alias broken")
	}
}

// TestFacadeExperimentPipelines exercises the heavier facade entry points
// end to end on small configurations.
func TestFacadeExperimentPipelines(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	// Testbed with occupancy through the facade.
	cfg := DefaultTestbedConfig()
	cfg.Machines = 4
	cfg.Days = 40
	cfg.Workload.MachineRateSpread = 0.6
	tr, occ, err := SimulateTestbedWithOccupancy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(occ) != 4 {
		t.Fatalf("occupancy records = %d", len(occ))
	}

	// Predictor evaluation + learning curve through the facade.
	ev, err := EvaluatePredictors(tr, DefaultPredictors(), EvalConfig{TrainDays: 21, Window: 3 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Scores) < 4 {
		t.Fatalf("scores = %+v", ev.Scores)
	}
	points, err := LearningCurve(tr,
		func() Predictor { return &HistoryWindowPredictor{} },
		[]int{7, 21}, EvalConfig{Window: 3 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("learning points = %d", len(points))
	}

	// Policy comparison through the facade.
	scfg := SchedulingConfig{Jobs: 60, TrainDays: 21}
	results, err := ComparePolicies(tr, scfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("policy results = %d", len(results))
	}
	for _, r := range results {
		if r.Completed+r.Unfinished != 60 {
			t.Errorf("%s: jobs unaccounted: %+v", r.Policy, r)
		}
	}

	// Enterprise profile through the facade.
	ecfg := DefaultTestbedConfig()
	ecfg.Machines = 2
	ecfg.Days = 7
	ecfg.Workload = EnterpriseTestbedParams()
	etr, err := SimulateTestbed(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(etr.Events) == 0 {
		t.Error("enterprise testbed produced no events")
	}

	// Contention thresholds through the facade (small measurement).
	opt := ContentionOptions{Measure: 60 * time.Second, Combos: 1}
	th, figA, figB, err := FindThresholds(opt)
	if err != nil {
		t.Fatal(err)
	}
	if figA == nil || figB == nil {
		t.Fatal("missing figures")
	}
	if th.Th1 <= 0 || th.Th1 > 1 {
		t.Errorf("facade Th1 = %v", th.Th1)
	}
}
