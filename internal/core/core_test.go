package core

import (
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/monitor"
	"repro/internal/simos"
	"repro/internal/workload"
)

func newEngine(t *testing.T, seed int64) *Engine {
	t.Helper()
	e, err := New(Config{
		Machine: simos.LinuxLabMachine(seed),
		Monitor: monitor.Config{Period: 10 * time.Second, SmoothWindow: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEngineIdleStaysS1(t *testing.T) {
	e := newEngine(t, 1)
	e.RunFor(10 * time.Minute)
	if e.State() != availability.S1 {
		t.Errorf("idle machine state = %v, want S1", e.State())
	}
	if len(e.Flush()) != 0 {
		t.Error("idle machine should record no events")
	}
	if e.TimeInState(availability.S1) < 9*time.Minute {
		t.Errorf("S1 time = %v", e.TimeInState(availability.S1))
	}
}

func TestEngineDetectsSustainedOverload(t *testing.T) {
	e := newEngine(t, 2)
	// Heavy host: 0.9 duty keeps LH above Th2.
	e.Machine().Spawn("crunch", simos.Host, 0, 100*simos.MB,
		&workload.DutyCycle{Usage: 0.92, Period: time.Second})
	e.RunFor(10 * time.Minute)
	if e.State() != availability.S3 {
		t.Fatalf("state = %v, want S3", e.State())
	}
	events := e.Flush()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1 continuous S3", len(events))
	}
	if events[0].State != availability.S3 {
		t.Errorf("event state = %v", events[0].State)
	}
	if events[0].Duration() < 8*time.Minute {
		t.Errorf("event duration = %v, want nearly the whole run", events[0].Duration())
	}
}

func TestEngineManagesGuestLifecycle(t *testing.T) {
	e := newEngine(t, 3)
	guest := e.Machine().Spawn("guest", simos.Guest, 0, 64*simos.MB, workload.CPUBound{})
	ctrl := e.AttachGuest(guest)

	// Light load first: guest runs at default priority.
	e.Machine().Spawn("light", simos.Host, 0, 50*simos.MB,
		&workload.DutyCycle{Usage: 0.1, Period: time.Second})
	e.RunFor(2 * time.Minute)
	if !ctrl.GuestAlive() {
		t.Fatal("guest should survive light load")
	}
	if guest.Nice() != 0 {
		t.Errorf("guest nice = %d under light load", guest.Nice())
	}

	// Medium load: S2 renices the guest.
	e.Machine().Spawn("medium", simos.Host, 0, 50*simos.MB,
		&workload.DutyCycle{Usage: 0.3, Period: time.Second})
	e.RunFor(3 * time.Minute)
	if e.State() != availability.S2 {
		t.Fatalf("state = %v, want S2 at ~0.4 load", e.State())
	}
	if guest.Nice() != availability.LowestNice {
		t.Errorf("guest nice = %d, want %d in S2", guest.Nice(), availability.LowestNice)
	}
	if !ctrl.GuestAlive() {
		t.Fatal("guest should survive S2")
	}

	// Overload: the guest is killed and an event recorded.
	e.Machine().Spawn("heavy", simos.Host, 0, 50*simos.MB,
		&workload.DutyCycle{Usage: 0.5, Period: time.Second})
	e.RunFor(5 * time.Minute)
	if ctrl.GuestAlive() {
		t.Fatal("guest should be killed under overload")
	}
	if guest.Alive() {
		t.Error("guest process should be dead")
	}
	events := e.Flush()
	if len(events) == 0 || events[len(events)-1].State != availability.S3 {
		t.Errorf("expected a final S3 event, got %+v", events)
	}
}

func TestEngineTransitionsRecorded(t *testing.T) {
	e := newEngine(t, 4)
	e.Machine().Spawn("h", simos.Host, 0, 50*simos.MB,
		&workload.DutyCycle{Usage: 0.35, Period: time.Second})
	e.RunFor(2 * time.Minute)
	trs := e.Transitions()
	if len(trs) == 0 {
		t.Fatal("no transitions recorded")
	}
	if trs[0].From != availability.S1 || trs[0].To != availability.S2 {
		t.Errorf("first transition %v -> %v, want S1 -> S2", trs[0].From, trs[0].To)
	}
	// Returned slices are copies.
	trs[0].From = availability.S5
	if e.Transitions()[0].From == availability.S5 {
		t.Error("Transitions must return a copy")
	}
}

func TestEngineConfigErrors(t *testing.T) {
	if _, err := New(Config{Machine: simos.MachineConfig{RAM: -5}}); err == nil {
		t.Error("bad machine config accepted")
	}
	if _, err := New(Config{Monitor: monitor.Config{Period: -time.Second}}); err == nil {
		t.Error("bad monitor config accepted")
	}
	if _, err := New(Config{Detector: availability.Config{TransientWindow: -1}}); err == nil {
		t.Error("bad detector config accepted")
	}
}
