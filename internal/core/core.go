// Package core wires the monitoring stack together: simulated machine →
// non-intrusive monitor → five-state detector → guest controller → trace
// recorder. It is the deployable "unavailability detection module" the
// paper installs on every testbed machine (Section 5), packaged for use on
// simos machines.
package core

import (
	"time"

	"repro/internal/availability"
	"repro/internal/monitor"
	"repro/internal/simos"
	"repro/internal/trace"
)

// Engine runs the detection pipeline on one machine.
type Engine struct {
	machine *simos.Machine
	sampler *monitor.MachineSampler
	mon     *monitor.Monitor
	det     *availability.Detector
	builder *trace.Builder
	ctrl    *availability.Controller
	timing  *availability.TimeInState

	events      []trace.Event
	transitions []availability.Transition
}

// Config bundles the engine's pieces.
type Config struct {
	// Machine configures the simulated machine.
	Machine simos.MachineConfig
	// Monitor configures sampling (period, smoothing).
	Monitor monitor.Config
	// Detector configures the availability model.
	Detector availability.Config
	// MachineID labels recorded trace events.
	MachineID trace.MachineID
}

// New builds an engine (zero config fields take the usual defaults).
func New(cfg Config) (*Engine, error) {
	m, err := simos.NewMachine(cfg.Machine)
	if err != nil {
		return nil, err
	}
	mon, err := monitor.New(cfg.Monitor)
	if err != nil {
		return nil, err
	}
	det, err := availability.NewDetector(cfg.Detector)
	if err != nil {
		return nil, err
	}
	return &Engine{
		machine: m,
		sampler: monitor.NewMachineSampler(m),
		mon:     mon,
		det:     det,
		builder: trace.NewBuilder(cfg.MachineID),
		timing:  availability.NewTimeInState(availability.S1),
	}, nil
}

// Machine exposes the underlying machine for spawning workloads.
func (e *Engine) Machine() *simos.Machine { return e.machine }

// State returns the current availability state.
func (e *Engine) State() availability.State { return e.det.State() }

// AttachGuest puts a running guest process under the paper's management
// policy (renice on S2, suspend on transient spikes, kill on failure).
// Only one guest is managed at a time; attaching replaces the previous
// controller.
func (e *Engine) AttachGuest(p *simos.Process) *availability.Controller {
	e.ctrl = availability.NewController(e.det, p)
	return e.ctrl
}

// Step advances the machine by one monitor period and feeds the sample
// through the pipeline, returning the resulting state and the action taken
// on the managed guest (ActionNone without a guest).
func (e *Engine) Step() (availability.State, availability.Action) {
	e.machine.Run(e.mon.Config().Period)
	obs := e.mon.Observe(e.sampler.Sample())

	var state availability.State
	var action availability.Action
	var tr *availability.Transition
	if e.ctrl != nil {
		state, action, tr = e.ctrl.Observe(obs)
	} else {
		state, tr = e.det.Observe(obs)
	}
	e.timing.Advance(obs.At, state)
	if tr != nil {
		e.transitions = append(e.transitions, *tr)
		if ev := e.builder.OnTransition(*tr); ev != nil {
			e.events = append(e.events, *ev)
		}
	}
	return state, action
}

// RunFor advances the pipeline for the given virtual duration.
func (e *Engine) RunFor(d time.Duration) {
	end := e.machine.Now() + d
	for e.machine.Now() < end {
		e.Step()
	}
}

// Events returns the closed unavailability events recorded so far.
func (e *Engine) Events() []trace.Event {
	out := make([]trace.Event, len(e.events))
	copy(out, e.events)
	return out
}

// Transitions returns every state transition observed so far.
func (e *Engine) Transitions() []availability.Transition {
	out := make([]availability.Transition, len(e.transitions))
	copy(out, e.transitions)
	return out
}

// TimeInState reports how long the engine spent in state s.
func (e *Engine) TimeInState(s availability.State) time.Duration {
	return e.timing.Total(s)
}

// Flush closes any open unavailability event at the current time and
// returns the full event list (call at the end of an observation span).
func (e *Engine) Flush() []trace.Event {
	if ev := e.builder.Flush(e.machine.Now()); ev != nil {
		e.events = append(e.events, *ev)
	}
	return e.Events()
}
