package ishare

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestBrokerMetricsRaceSafe hammers SubmitBest from several goroutines
// while another polls Metrics() and scrapes the obs registry. Run with
// -race: the old BrokerMetrics was mutated under b.mu and a concurrent
// snapshot could tear.
func TestBrokerMetricsRaceSafe(t *testing.T) {
	reg, err := NewRegistry("127.0.0.1:0", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()

	var nodes []*Node
	for i := 0; i < 2; i++ {
		n, err := NewNode("127.0.0.1:0", NodeConfig{
			Name:         fmt.Sprintf("rn%d", i),
			RegistryAddr: reg.Addr(),
			HostLoad:     0.05,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}

	b := NewBroker(reg.Addr())
	b.Obs = obs.NewRegistry()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const workers = 4
	const jobsPerWorker = 3
	stop := make(chan struct{})
	var poller sync.WaitGroup
	poller.Add(1)
	go func() {
		defer poller.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = b.Metrics()
			var buf bytes.Buffer
			if err := b.Obs.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	var submitters sync.WaitGroup
	for w := 0; w < workers; w++ {
		submitters.Add(1)
		go func(w int) {
			defer submitters.Done()
			for i := 0; i < jobsPerWorker; i++ {
				job := JobSpec{Name: fmt.Sprintf("job-%d-%d", w, i), CPUSeconds: 30}
				if _, _, err := b.SubmitBest(ctx, job); err != nil {
					t.Errorf("worker %d job %d: %v", w, i, err)
				}
			}
		}(w)
	}
	submitters.Wait()
	close(stop)
	poller.Wait()

	m := b.Metrics()
	total := workers * jobsPerWorker
	if got := int(b.metrics().completions.Value()); got != total {
		t.Errorf("completions = %d, want %d", got, total)
	}
	if m.Failovers != 0 || m.RegistryErrors != 0 {
		t.Errorf("unexpected failures in healthy cluster: %+v", m)
	}
}

// TestMetricsMatchScrape checks that the BrokerMetrics snapshot and the
// Prometheus scrape of the same registry agree, and that the expected
// family names appear in the exposition.
func TestMetricsMatchScrape(t *testing.T) {
	reg, err := NewRegistry("127.0.0.1:0", 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	n, err := NewNode("127.0.0.1:0", NodeConfig{Name: "mn", RegistryAddr: reg.Addr(), HostLoad: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	b := NewBroker(reg.Addr())
	b.Obs = obs.NewRegistry()
	ctx := context.Background()

	job := JobSpec{Name: "scrape-job", ID: "scrape-job#1", CPUSeconds: 20}
	if _, _, err := b.SubmitBest(ctx, job); err != nil {
		t.Fatal(err)
	}
	// Resubmit the same ID: the node dedups, the broker counts the hit.
	if res, _, err := b.SubmitBest(ctx, job); err != nil || !res.Deduped {
		t.Fatalf("resubmission: res=%+v err=%v, want deduped result", res, err)
	}

	m := b.Metrics()
	if m.DedupHits != 1 {
		t.Errorf("DedupHits = %d, want 1", m.DedupHits)
	}

	var buf bytes.Buffer
	if err := b.Obs.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"fgcs_broker_submissions_total 2",
		"fgcs_broker_completions_total 2",
		"fgcs_broker_dedup_hits_total 1",
		"fgcs_broker_failovers_total 0",
		"fgcs_broker_stale_serves_total 0",
		"fgcs_client_requests_total{op=\"submit\"}",
		"fgcs_broker_submit_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q\n%s", want, text)
		}
	}
}

// TestTraceIDContext pins the context helpers and the wire stamping: a
// trace set on the context reaches the node's handler via Request.Trace.
func TestTraceIDContext(t *testing.T) {
	if got := TraceIDFrom(context.Background()); got != "" {
		t.Errorf("empty context trace = %q", got)
	}
	ctx := WithTraceID(context.Background(), "job#7")
	if got := TraceIDFrom(ctx); got != "job#7" {
		t.Errorf("trace = %q, want job#7", got)
	}
	// Empty IDs do not overwrite the context.
	if got := TraceIDFrom(WithTraceID(ctx, "")); got != "job#7" {
		t.Errorf("after empty WithTraceID: trace = %q, want job#7", got)
	}
}
