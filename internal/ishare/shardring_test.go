package ishare

import (
	"fmt"
	"sync"
	"testing"
)

func TestShardRingValidation(t *testing.T) {
	if _, err := NewShardRing(nil, 0); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := NewShardRing([]string{"a", ""}, 0); err == nil {
		t.Fatal("empty shard address accepted")
	}
	if _, err := NewShardRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Fatal("duplicate shard address accepted")
	}
}

func TestShardRingSingleShardOwnsEverything(t *testing.T) {
	ring, err := NewShardRing([]string{"only:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("node-%04d", i)
		if ring.Owner(id) != 0 || ring.Addr(id) != "only:1" {
			t.Fatalf("single-shard ring sent %q to shard %d (%s)", id, ring.Owner(id), ring.Addr(id))
		}
	}
}

// Two rings built from the same shard list must agree on every owner —
// placement is a pure function of (shard list, node ID), which is what
// lets nodes, brokers and load drivers route independently without
// coordination. This also exercises the (hash, shard) tie-break: any
// nondeterminism in equal-hash ordering would diverge here.
func TestShardRingDeterministicAcrossInstances(t *testing.T) {
	shards := []string{"s0:1", "s1:1", "s2:1", "s3:1", "s4:1"}
	a, err := NewShardRing(shards, 128)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewShardRing(shards, 128)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		id := fmt.Sprintf("node-%05d", i)
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("rings disagree on %q: %d vs %d", id, a.Owner(id), b.Owner(id))
		}
	}
}

// Growing the ring from N to N+1 shards must remap roughly 1/(N+1) of the
// keys, and every remapped key must land on the NEW shard — consistent
// hashing's defining property. A modulo-based placement would remap ~N/(N+1).
func TestShardRingRemapFractionOnGrowth(t *testing.T) {
	const keys = 20000
	for _, n := range []int{2, 4, 8} {
		shards := make([]string, n)
		for i := range shards {
			shards[i] = fmt.Sprintf("shard-%d:9", i)
		}
		before, err := NewShardRing(shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		grown := append(append([]string(nil), shards...), fmt.Sprintf("shard-%d:9", n))
		after, err := NewShardRing(grown, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i := 0; i < keys; i++ {
			id := fmt.Sprintf("node-%06d", i)
			oldOwner, newOwner := before.Owner(id), after.Owner(id)
			if oldOwner == newOwner {
				continue
			}
			if newOwner != n {
				t.Fatalf("n=%d: %q moved shard %d -> %d, not to the new shard", n, id, oldOwner, newOwner)
			}
			moved++
		}
		frac := float64(moved) / keys
		ideal := 1.0 / float64(n+1)
		// 64 vnodes per shard keeps the arc sizes uneven enough that we
		// allow 2x the ideal fraction, but never the ~n/(n+1) of modulo.
		if frac > 2*ideal {
			t.Errorf("n=%d: remapped %.3f of keys, want <= %.3f", n, frac, 2*ideal)
		}
		if moved == 0 {
			t.Errorf("n=%d: no keys remapped to the new shard", n)
		}
	}
}

// Removing a shard is the crash-recovery resize direction: only the keys
// the removed shard owned may move, and they must scatter across the
// survivors — every key owned by a surviving shard stays put, so a
// permanent shard decommission never disturbs the rest of the fleet's
// registrations.
func TestShardRingRemapFractionOnRemoval(t *testing.T) {
	const keys = 20000
	for _, n := range []int{3, 5, 9} {
		shards := make([]string, n)
		for i := range shards {
			shards[i] = fmt.Sprintf("shard-%d:9", i)
		}
		before, err := NewShardRing(shards, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Remove the middle shard; survivors keep their addresses.
		removed := n / 2
		var survivors []string
		for i, s := range shards {
			if i != removed {
				survivors = append(survivors, s)
			}
		}
		after, err := NewShardRing(survivors, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i := 0; i < keys; i++ {
			id := fmt.Sprintf("node-%06d", i)
			oldAddr, newAddr := before.Addr(id), after.Addr(id)
			if oldAddr == newAddr {
				continue
			}
			if oldAddr != shards[removed] {
				t.Fatalf("n=%d: %q moved off surviving shard %s -> %s", n, id, oldAddr, newAddr)
			}
			moved++
		}
		frac := float64(moved) / keys
		ideal := 1.0 / float64(n)
		if frac > 2*ideal {
			t.Errorf("n=%d: remapped %.3f of keys on removal, want <= %.3f", n, frac, 2*ideal)
		}
		if moved == 0 {
			t.Errorf("n=%d: removed shard owned no keys", n)
		}
	}
}

// Orphaned keys from a removed shard must spread over the survivors, not
// pile onto the ring-adjacent one — that's what vnodes buy.
func TestShardRingRemovalSpreadsOrphans(t *testing.T) {
	shards := []string{"s0:1", "s1:1", "s2:1", "s3:1", "s4:1"}
	before, err := NewShardRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewShardRing(shards[:4], 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 20000
	inherited := make(map[string]int)
	orphans := 0
	for i := 0; i < keys; i++ {
		id := fmt.Sprintf("node-%06d", i)
		if before.Addr(id) != "s4:1" {
			continue
		}
		orphans++
		inherited[after.Addr(id)]++
	}
	if orphans == 0 {
		t.Fatal("removed shard owned no keys")
	}
	for addr, c := range inherited {
		if frac := float64(c) / float64(orphans); frac > 0.75 {
			t.Errorf("survivor %s inherited %.2f of orphans — removal not spreading load (%v)", addr, frac, inherited)
		}
	}
	if len(inherited) < 2 {
		t.Errorf("orphans all landed on one survivor: %v", inherited)
	}
}

// Owner must be safe for concurrent readers (brokers, nodes and load
// drivers share one ring); run with -race.
func TestShardRingConcurrentReaders(t *testing.T) {
	ring, err := NewShardRing([]string{"a:1", "b:1", "c:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]int, 200)
	for i := range want {
		want[i] = ring.Owner(fmt.Sprintf("node-%d", i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range want {
				if got := ring.Owner(fmt.Sprintf("node-%d", i)); got != want[i] {
					t.Errorf("concurrent Owner(node-%d) = %d, want %d", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

// The ring must spread keys across all shards (no starving arc).
func TestShardRingBalance(t *testing.T) {
	shards := []string{"s0:1", "s1:1", "s2:1", "s3:1"}
	ring, err := NewShardRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(shards))
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[ring.Owner(fmt.Sprintf("node-%06d", i))]++
	}
	for i, c := range counts {
		frac := float64(c) / keys
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("shard %d owns %.3f of keys (counts=%v), outside [0.10, 0.45]", i, frac, counts)
		}
	}
}
