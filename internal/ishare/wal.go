package ishare

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// This file is the durability layer of a registry shard: a write-ahead
// log of every acked state mutation (registrations, heartbeats,
// unregistrations, shard-map installs) plus periodic snapshots that
// compact it. The contract the crash harness checks is exactly the one
// the paper's URR events demand of a production control plane: a shard
// killed at any instant — ~90% of the paper's unavailability events are
// reboots with sub-minute outages — restarts with every acked
// registration intact, because the ack is only sent after the mutation
// record reached the log.
//
// Record framing is length-prefixed and CRC-checked:
//
//	u32le payload length | u32le CRC-32 (IEEE) of payload | payload
//
// Payloads are compact binary: uvarint/varint fields, length-prefixed
// strings, interned one-byte codes for the paper's five availability
// states, float64 bits for loads, and fixed 64-bit millisecond stamps
// (a stamp would be a ~7-byte varint anyway, so fixed width encodes
// faster for free). Heartbeats that advance nothing but liveness are
// logged as a shared-stamp refresh record rather than full entries. A
// torn final record — short frame, short payload, or CRC mismatch at
// the tail, the signature of a crash mid-write — is tolerated: recovery
// replays every intact record and truncates the tail. fsync is batched and fully off the serving path
// when the background sync loop is running: an append past the byte
// threshold kicks the loop instead of syncing inline, and the loop
// fsyncs without holding the append lock, so the hot path pays one
// buffer-reusing encode and one write() per acked batch — never an
// fsync and never a wait behind one.

const (
	walKindUpsert   byte = 1 // a batch of digests with liveness stamps
	walKindRemove   byte = 2 // one unregistration
	walKindShardMap byte = 3 // a shard-map install
	walKindRefresh  byte = 4 // a batch of pure liveness refreshes: one stamp, many names

	walFrameHeader = 8 // u32 length + u32 crc
	// walMaxRecordBytes bounds one record's decoded allocation; anything
	// larger is treated as corruption, not a request for 4 GiB.
	walMaxRecordBytes = 16 << 20

	walFileName  = "registry.wal"
	snapFileName = "registry.snap"
)

// WALOptions configures a registry shard's write-ahead log.
type WALOptions struct {
	// Dir is the shard's durability directory (required). The log lives in
	// Dir/registry.wal, snapshots in Dir/registry.snap.
	Dir string
	// SyncEveryBytes triggers an fsync once this many unsynced bytes are
	// in the log (default 1 MiB). With the background loop running the
	// threshold kicks the loop rather than syncing inline, so acks never
	// wait for fsync — a write() into the page cache survives process
	// death. The loss window on host death is bounded in time by
	// SyncInterval and in bytes, under burst, by this threshold.
	SyncEveryBytes int64
	// SyncInterval paces the background fsync of a lazily-written log
	// (default 100 ms). Zero disables the background loop (tests).
	SyncInterval time.Duration
	// CompactEvery snapshots the full state and truncates the log after
	// this many appended records (default 8192).
	CompactEvery int
	// FsyncDelay is injected before every fsync — the chaos layer's slow-
	// disk fault. Zero for production.
	FsyncDelay time.Duration
}

func (o WALOptions) withDefaults() WALOptions {
	if o.SyncEveryBytes <= 0 {
		o.SyncEveryBytes = 1 << 20
	}
	if o.SyncInterval < 0 {
		o.SyncInterval = 0
	} else if o.SyncInterval == 0 {
		o.SyncInterval = 100 * time.Millisecond
	}
	if o.CompactEvery <= 0 {
		o.CompactEvery = 8192
	}
	return o
}

// walEntry is one node's durable state: its digest plus the liveness
// stamp the registry would otherwise lose on restart.
type walEntry struct {
	d          NodeDigest
	lastSeenMS int64
}

// walRecord is one logged mutation.
type walRecord struct {
	kind     byte
	entries  []walEntry // walKindUpsert
	name     string     // walKindRemove
	shardMap ShardMap   // walKindShardMap
	names    []string   // walKindRefresh
	stampMS  int64      // walKindRefresh
}

// wal is the open log of one registry shard.
type wal struct {
	opt WALOptions

	// The registry appends while holding its own state lock, so wal.mu
	// only coordinates appends with the background sync loop. Lock order
	// is Registry.mu -> wal.mu, never the reverse.
	muWAL       chan struct{} // 1-buffered mutex; chan so Close can race-free drain
	f           *os.File
	buf         []byte // reusable frame-encode scratch, guarded by muWAL
	dirty       int64  // bytes written since the last fsync
	sinceCompat int    // records appended since the last compaction
	appends     uint64
	syncs       atomic.Uint64 // atomic: bumped by background fsync outside muWAL
	compactions uint64

	kick   chan struct{} // nudges the sync loop when dirty crosses the threshold
	closed chan struct{}
	done   chan struct{}
}

func (w *wal) lock()   { w.muWAL <- struct{}{} }
func (w *wal) unlock() { <-w.muWAL }

// openWAL opens (creating if needed) the log in opt.Dir, replays the
// snapshot and then the log through apply, truncates any torn tail, and
// leaves the log open for appending. It returns the number of records
// replayed.
func openWAL(opt WALOptions, apply func(walRecord)) (*wal, int, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		return nil, 0, errors.New("ishare: WAL requires a directory")
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, 0, fmt.Errorf("ishare: WAL dir: %w", err)
	}
	replayed := 0
	if data, err := os.ReadFile(filepath.Join(opt.Dir, snapFileName)); err == nil {
		n, _, err := replayWALBytes(data, apply)
		if err != nil {
			return nil, 0, fmt.Errorf("ishare: corrupt snapshot %s: %w", snapFileName, err)
		}
		replayed += n
	} else if !os.IsNotExist(err) {
		return nil, 0, fmt.Errorf("ishare: reading snapshot: %w", err)
	}
	walPath := filepath.Join(opt.Dir, walFileName)
	goodBytes := int64(0)
	if data, err := os.ReadFile(walPath); err == nil {
		n, good, _ := replayWALBytes(data, apply) // torn tail tolerated
		replayed += n
		goodBytes = good
	} else if !os.IsNotExist(err) {
		return nil, 0, fmt.Errorf("ishare: reading WAL: %w", err)
	}
	f, err := os.OpenFile(walPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("ishare: opening WAL: %w", err)
	}
	// Drop the torn tail so the next append starts a clean frame.
	if err := f.Truncate(goodBytes); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("ishare: truncating torn WAL tail: %w", err)
	}
	if _, err := f.Seek(goodBytes, 0); err != nil {
		f.Close()
		return nil, 0, err
	}
	w := &wal{
		opt:    opt,
		muWAL:  make(chan struct{}, 1),
		f:      f,
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	if opt.SyncInterval > 0 {
		w.kick = make(chan struct{}, 1)
		go w.syncLoop()
	} else {
		close(w.done)
	}
	return w, replayed, nil
}

// replayWALBytes decodes a framed record stream, calling apply for every
// intact record. It returns the record count, the byte offset of the end
// of the last intact record (the truncation point for a torn tail), and
// the framing error that stopped the scan (nil at a clean end of stream).
// Allocation is bounded by the input: a frame length larger than the
// remaining bytes is torn by definition and never allocated for.
func replayWALBytes(data []byte, apply func(walRecord)) (int, int64, error) {
	n := 0
	off := int64(0)
	for int64(len(data))-off >= walFrameHeader {
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if length > walMaxRecordBytes {
			return n, off, fmt.Errorf("record length %d exceeds %d", length, int64(walMaxRecordBytes))
		}
		if off+walFrameHeader+length > int64(len(data)) {
			return n, off, errors.New("torn record: frame longer than remaining bytes")
		}
		payload := data[off+walFrameHeader : off+walFrameHeader+length]
		if crc32.ChecksumIEEE(payload) != crc {
			return n, off, errors.New("record CRC mismatch")
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return n, off, err
		}
		if apply != nil {
			apply(rec)
		}
		n++
		off += walFrameHeader + length
	}
	if off != int64(len(data)) {
		return n, off, errors.New("torn record: short frame header")
	}
	return n, off, nil
}

// appendWALFrame appends one framed, checksummed payload to dst.
func appendWALFrame(dst, payload []byte) []byte {
	var hdr [walFrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	return append(append(dst, hdr[:]...), payload...)
}

// append frames, checksums and writes one record. It returns true when a
// compaction is due; the caller (who holds the registry state lock and
// can therefore snapshot consistently) then calls compact.
func (w *wal) append(rec walRecord) (compactDue bool, err error) {
	return w.appendPayload(func(b []byte) []byte { return encodeWALRecordTo(b, rec) })
}

// appendUpsert logs a digest batch at one liveness stamp. This is the
// serving hot path (register_batch, heartbeat_batch): the digests are
// encoded straight into the reused frame buffer, with no intermediate
// entry slice and no per-record allocation.
func (w *wal) appendUpsert(ds []NodeDigest, lastSeenMS int64) (compactDue bool, err error) {
	return w.appendPayload(func(b []byte) []byte {
		b = append(b, walKindUpsert)
		b = appendUvarint(b, uint64(len(ds)))
		for _, d := range ds {
			b = appendWALEntry(b, d, lastSeenMS)
		}
		return b
	})
}

// appendRefresh logs heartbeats that advanced nothing but lastSeen — in
// a steady fleet that is most of every sweep — as one shared stamp plus
// the node names. The compact form writes ~2.5x fewer bytes than full
// entries would, which is the difference between the WAL riding inside
// the heartbeat overhead budget and blowing it on write amplification.
func (w *wal) appendRefresh(names []string, lastSeenMS int64) (compactDue bool, err error) {
	return w.appendPayload(func(b []byte) []byte {
		b = append(b, walKindRefresh)
		b = appendFixed64(b, lastSeenMS)
		b = appendUvarint(b, uint64(len(names)))
		for _, n := range names {
			b = appendString(b, n)
		}
		return b
	})
}

// appendPayload writes one record whose payload enc appends to the
// scratch buffer. The frame is built in place — 8 reserved header bytes,
// payload, then length and CRC backfilled — so a record costs one encode
// pass and one write(), no copies. When the unsynced tail crosses the
// threshold the background loop is kicked; only a WAL running without
// that loop (tests) syncs inline.
func (w *wal) appendPayload(enc func([]byte) []byte) (compactDue bool, err error) {
	w.lock()
	defer w.unlock()
	if w.f == nil {
		return false, errors.New("ishare: WAL closed")
	}
	frame := append(w.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	frame = enc(frame)
	payload := frame[walFrameHeader:]
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	w.buf = frame[:0]
	if _, err := w.f.Write(frame); err != nil {
		return false, fmt.Errorf("ishare: WAL append: %w", err)
	}
	w.appends++
	w.dirty += int64(len(frame))
	if w.dirty >= w.opt.SyncEveryBytes {
		if w.kick != nil {
			select {
			case w.kick <- struct{}{}:
			default: // a kick is already pending
			}
		} else if err := w.syncLocked(); err != nil {
			return false, err
		}
	}
	w.sinceCompat++
	return w.sinceCompat >= w.opt.CompactEvery, nil
}

// compact writes the given full-state records to a fresh snapshot,
// atomically replaces the old one, and truncates the log. The caller
// must pass a consistent snapshot (it holds the registry state lock).
func (w *wal) compact(state []walRecord) error {
	w.lock()
	defer w.unlock()
	if w.f == nil {
		return errors.New("ishare: WAL closed")
	}
	tmp := filepath.Join(w.opt.Dir, snapFileName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ishare: snapshot create: %w", err)
	}
	for _, rec := range state {
		payload := encodeWALRecord(rec)
		var hdr [walFrameHeader]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		if _, err := f.Write(hdr[:]); err == nil {
			_, err = f.Write(payload)
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("ishare: snapshot write: %w", err)
		}
	}
	if err := w.fsync(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ishare: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(w.opt.Dir, snapFileName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ishare: snapshot rename: %w", err)
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("ishare: WAL truncate: %w", err)
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return err
	}
	w.dirty = 0
	w.sinceCompat = 0
	w.compactions++
	return nil
}

// Sync flushes unsynced log bytes to stable storage. The fsync itself
// runs with the append lock released, so writers never stall behind the
// disk: bytes appended while the sync is in flight stay counted as
// dirty for the next round.
func (w *wal) Sync() error {
	w.lock()
	f, d0 := w.f, w.dirty
	w.unlock()
	if f == nil || d0 == 0 {
		return nil
	}
	err := w.fsync(f)
	w.lock()
	defer w.unlock()
	if err != nil {
		return fmt.Errorf("ishare: WAL sync: %w", err)
	}
	if w.f == f {
		if w.dirty -= d0; w.dirty < 0 {
			w.dirty = 0
		}
	}
	return nil
}

func (w *wal) syncLocked() error {
	if err := w.fsync(w.f); err != nil {
		return fmt.Errorf("ishare: WAL sync: %w", err)
	}
	w.dirty = 0
	return nil
}

// fsync applies the injected slow-disk latency, then syncs. It is safe
// with or without muWAL held (os.File is concurrency-safe).
func (w *wal) fsync(f *os.File) error {
	if w.opt.FsyncDelay > 0 {
		time.Sleep(w.opt.FsyncDelay)
	}
	w.syncs.Add(1)
	return f.Sync()
}

func (w *wal) syncLoop() {
	defer close(w.done)
	t := time.NewTicker(w.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.closed:
			return
		case <-t.C:
		case <-w.kick:
		}
		_ = w.Sync()
	}
}

// Close stops the sync loop and closes the log. With sync true the tail
// is fsynced first (graceful shutdown); false models a crash, leaving
// whatever write() already delivered.
func (w *wal) Close(sync bool) error {
	select {
	case <-w.closed:
	default:
		close(w.closed)
	}
	<-w.done
	w.lock()
	defer w.unlock()
	if w.f == nil {
		return nil
	}
	var err error
	if sync && w.dirty > 0 {
		err = w.syncLocked()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// --- record codec ---------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func appendVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(b, tmp[:binary.PutVarint(tmp[:], v)]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFloat(b []byte, f float64) []byte {
	return appendFixed64(b, int64(math.Float64bits(f)))
}

func appendFixed64(b []byte, v int64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(v))
	return append(b, tmp[:]...)
}

// walStateByCode interns the paper's five canonical availability strings
// (and the empty no-digest state) so an entry's state costs one byte
// instead of up to 20. Code 0 escapes to a length-prefixed string for
// anything else; encode and decode share this table.
var walStateByCode = [...]string{
	1: "",
	2: "S1(full)",
	3: "S2(lowest-priority)",
	4: "S3(cpu-unavail)",
	5: "S4(mem-thrash)",
	6: "S5(machine-unavail)",
}

func walStateCode(s string) byte {
	switch s {
	case walStateByCode[1]:
		return 1
	case walStateByCode[2]:
		return 2
	case walStateByCode[3]:
		return 3
	case walStateByCode[4]:
		return 4
	case walStateByCode[5]:
		return 5
	case walStateByCode[6]:
		return 6
	}
	return 0
}

func appendWALState(b []byte, s string) []byte {
	c := walStateCode(s)
	b = append(b, c)
	if c == 0 {
		b = appendString(b, s)
	}
	return b
}

// appendWALEntry encodes one entry's fields in wire order. The liveness
// stamp rides as a varint delta against the digest stamp — the two are
// within milliseconds of each other on the serving path, so the delta is
// one or two bytes where a fixed stamp would be eight.
func appendWALEntry(b []byte, d NodeDigest, lastSeenMS int64) []byte {
	b = appendString(b, d.Name)
	b = appendString(b, d.Addr)
	b = appendWALState(b, d.State)
	b = appendFloat(b, d.Load)
	b = appendVarint(b, d.Gen)
	b = appendFixed64(b, d.UnixMS)
	return appendVarint(b, lastSeenMS-d.UnixMS)
}

func encodeWALRecord(rec walRecord) []byte {
	return encodeWALRecordTo(nil, rec)
}

func encodeWALRecordTo(b []byte, rec walRecord) []byte {
	b = append(b, rec.kind)
	switch rec.kind {
	case walKindUpsert:
		b = appendUvarint(b, uint64(len(rec.entries)))
		for _, e := range rec.entries {
			b = appendWALEntry(b, e.d, e.lastSeenMS)
		}
	case walKindRemove:
		b = appendString(b, rec.name)
	case walKindShardMap:
		b = appendVarint(b, rec.shardMap.Gen)
		b = appendUvarint(b, uint64(len(rec.shardMap.Shards)))
		for _, s := range rec.shardMap.Shards {
			b = appendString(b, s)
		}
	case walKindRefresh:
		b = appendFixed64(b, rec.stampMS)
		b = appendUvarint(b, uint64(len(rec.names)))
		for _, n := range rec.names {
			b = appendString(b, n)
		}
	}
	return b
}

// walReader decodes one record payload with strict bounds: every length
// is checked against the remaining bytes before any allocation.
type walReader struct {
	b   []byte
	err error
}

func (r *walReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = errors.New("bad uvarint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *walReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.err = errors.New("bad varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *walReader) string_() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.err = errors.New("string length exceeds payload")
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *walReader) float() float64 {
	return math.Float64frombits(uint64(r.fixed64()))
}

func (r *walReader) state() string {
	if r.err != nil {
		return ""
	}
	if len(r.b) == 0 {
		r.err = errors.New("short state code")
		return ""
	}
	c := r.b[0]
	r.b = r.b[1:]
	if c == 0 {
		return r.string_()
	}
	if int(c) >= len(walStateByCode) {
		r.err = fmt.Errorf("unknown state code %d", c)
		return ""
	}
	return walStateByCode[c]
}

func (r *walReader) fixed64() int64 {
	if r.err != nil {
		return 0
	}
	if len(r.b) < 8 {
		r.err = errors.New("short fixed64")
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func decodeWALRecord(payload []byte) (walRecord, error) {
	if len(payload) == 0 {
		return walRecord{}, errors.New("empty record")
	}
	rec := walRecord{kind: payload[0]}
	r := &walReader{b: payload[1:]}
	switch rec.kind {
	case walKindUpsert:
		n := r.uvarint()
		if r.err == nil && n > uint64(len(r.b)) {
			// Each entry costs >= 1 byte on the wire; a count above the
			// remaining byte count cannot be honest. Bounds allocation.
			return walRecord{}, errors.New("entry count exceeds payload")
		}
		rec.entries = make([]walEntry, 0, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			var e walEntry
			e.d.Name = r.string_()
			e.d.Addr = r.string_()
			e.d.State = r.state()
			e.d.Load = r.float()
			e.d.Gen = r.varint()
			e.d.UnixMS = r.fixed64()
			e.lastSeenMS = e.d.UnixMS + r.varint()
			rec.entries = append(rec.entries, e)
		}
	case walKindRemove:
		rec.name = r.string_()
	case walKindShardMap:
		rec.shardMap.Gen = r.varint()
		n := r.uvarint()
		if r.err == nil && n > uint64(len(r.b)) {
			return walRecord{}, errors.New("shard count exceeds payload")
		}
		rec.shardMap.Shards = make([]string, 0, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			rec.shardMap.Shards = append(rec.shardMap.Shards, r.string_())
		}
	case walKindRefresh:
		rec.stampMS = r.fixed64()
		n := r.uvarint()
		if r.err == nil && n > uint64(len(r.b)) {
			return walRecord{}, errors.New("name count exceeds payload")
		}
		rec.names = make([]string, 0, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			rec.names = append(rec.names, r.string_())
		}
	default:
		return walRecord{}, fmt.Errorf("unknown record kind %d", rec.kind)
	}
	if r.err != nil {
		return walRecord{}, r.err
	}
	if len(r.b) != 0 {
		return walRecord{}, errors.New("trailing bytes in record")
	}
	return rec, nil
}
