package ishare

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// newTestRand mirrors the node's name-seeded jitter source.
func newTestRand(name string) *rand.Rand {
	return rand.New(rand.NewSource(int64(fnv64a(name))))
}

func startSharded(t *testing.T, n int, ttl time.Duration) *ShardedRegistry {
	t.Helper()
	s, err := NewShardedRegistry(n, ttl, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// nowMS keeps digest timestamps fresh relative to broker TTL checks.
func nowMS() int64 { return time.Now().UnixMilli() }

func TestRegisterBatchAndRankedList(t *testing.T) {
	reg := startRegistry(t, time.Minute)
	c := fastClient(reg.Addr())
	batch := []NodeDigest{
		{Name: "busy", Addr: "10.0.0.3:1", State: "S2(lowest-priority)", Load: 0.6, Gen: 1, UnixMS: nowMS()},
		{Name: "idle", Addr: "10.0.0.1:1", State: "S1(full)", Load: 0.1, Gen: 1, UnixMS: nowMS()},
		{Name: "gone", Addr: "10.0.0.4:1", State: "S5(machine-unavail)", Gen: 1, UnixMS: nowMS()},
		{Name: "warm", Addr: "10.0.0.2:1", State: "S1(full)", Load: 0.3, Gen: 1, UnixMS: nowMS()},
	}
	if err := c.RegisterBatch(ctx, reg.Addr(), batch); err != nil {
		t.Fatal(err)
	}

	// The ranked form: alive S1/S2 nodes only, best class first, load as
	// the tiebreak, and the unavailable node excluded.
	ranked, err := c.ListShard(ctx, reg.Addr(), 10)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, n := range ranked {
		names = append(names, n.Name)
	}
	if got := strings.Join(names, ","); got != "idle,warm,busy" {
		t.Fatalf("ranked list = %s, want idle,warm,busy", got)
	}

	// The limit truncates from the best bucket. Within a bucket the pick
	// is arbitrary (ranked discovery is O(limit), not a bucket scan), so
	// either S1 node is a correct answer — but never S2 or S5.
	top, err := c.ListShard(ctx, reg.Addr(), 1)
	if err != nil || len(top) != 1 || (top[0].Name != "idle" && top[0].Name != "warm") {
		t.Fatalf("limit=1 list = %+v, %v", top, err)
	}

	// The legacy full listing still returns everything, S5 included.
	all, err := c.ListShard(ctx, reg.Addr(), 0)
	if err != nil || len(all) != 4 {
		t.Fatalf("full list = %+v, %v", all, err)
	}
}

func TestRegisterBatchRejectsIncompleteEntries(t *testing.T) {
	reg := startRegistry(t, time.Minute)
	c := fastClient(reg.Addr())
	err := c.RegisterBatch(ctx, reg.Addr(), []NodeDigest{{Name: "ok", Addr: "10.0.0.1:1"}, {Name: "no-addr"}})
	if err == nil {
		t.Fatal("batch with an addressless entry accepted")
	}
}

func TestHeartbeatBatchReportsMissing(t *testing.T) {
	reg := startRegistry(t, 100*time.Millisecond)
	c := fastClient(reg.Addr())
	if err := c.RegisterBatch(ctx, reg.Addr(), []NodeDigest{
		{Name: "known", Addr: "10.0.0.1:1", State: "S1(full)", Gen: 1, UnixMS: nowMS()},
	}); err != nil {
		t.Fatal(err)
	}
	missing, err := c.HeartbeatBatch(ctx, reg.Addr(), []NodeDigest{
		{Name: "known", State: "S2(lowest-priority)", Gen: 2, UnixMS: nowMS()},
		{Name: "stranger", Gen: 1, UnixMS: nowMS()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || missing[0] != "stranger" {
		t.Fatalf("missing = %v, want [stranger]", missing)
	}
	// The carried digest updated the known node's state.
	ranked, err := c.ListShard(ctx, reg.Addr(), 10)
	if err != nil || len(ranked) != 1 || !strings.HasPrefix(ranked[0].State, "S2") {
		t.Fatalf("ranked after digest heartbeat = %+v, %v", ranked, err)
	}
}

func TestShardMapBootstrap(t *testing.T) {
	s := startSharded(t, 3, time.Minute)
	c := &Client{Timeout: time.Second}
	// Any single shard address bootstraps the full map.
	m, err := c.FetchShardMap(ctx, s.Addrs()[2])
	if err != nil {
		t.Fatal(err)
	}
	if m.Gen != 1 || len(m.Shards) != 3 {
		t.Fatalf("shard map = %+v", m)
	}
	c.Shards = m.Shards
	if got := len(c.ShardAddrs()); got != 3 {
		t.Fatalf("ShardAddrs = %d, want 3", got)
	}
}

func TestShardedListMergesAllShards(t *testing.T) {
	s := startSharded(t, 3, time.Minute)
	c := &Client{Shards: s.Addrs(), Timeout: time.Second}
	// Route each registration to the shard the ring says owns the name —
	// exactly what the load driver does at scale.
	byShard := make(map[int][]NodeDigest)
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("node-%02d", i)
		own := s.Owner(name)
		byShard[own] = append(byShard[own], NodeDigest{
			Name: name, Addr: fmt.Sprintf("10.0.%d.%d:1", own, i),
			State: "S1(full)", Gen: 1, UnixMS: nowMS(),
		})
	}
	spread := 0
	for own, batch := range byShard {
		if err := c.RegisterBatch(ctx, s.Addrs()[own], batch); err != nil {
			t.Fatal(err)
		}
		if len(batch) > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("ring sent all 30 nodes to %d shard(s); want spread", spread)
	}
	all, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 30 {
		t.Fatalf("merged list has %d nodes, want 30", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Name > all[i].Name {
			t.Fatalf("merged list unsorted at %d: %q > %q", i, all[i-1].Name, all[i].Name)
		}
	}
}

func TestShardedBrokerMergesRankedCandidates(t *testing.T) {
	s := startSharded(t, 2, time.Minute)
	c := &Client{Shards: s.Addrs(), Timeout: time.Second}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("node-%02d", i)
		state := "S1(full)"
		if i%3 == 0 {
			state = "S2(lowest-priority)"
		}
		d := NodeDigest{Name: name, Addr: fmt.Sprintf("10.1.0.%d:1", i),
			State: state, Load: float64(i) / 20, Gen: 1, UnixMS: nowMS()}
		if err := c.RegisterBatch(ctx, s.Addrs()[s.Owner(name)], []NodeDigest{d}); err != nil {
			t.Fatal(err)
		}
	}
	b := &Broker{Client: c, DiscoverLimit: 10}
	cands, err := b.Candidates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 12 {
		t.Fatalf("got %d candidates, want 12", len(cands))
	}
	// Digest ranking: no Info round trips were possible (the addresses are
	// fake), and the order is S1 before S2, ascending load within a class.
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Score > cands[i].Score {
			t.Fatalf("candidates unsorted by score at %d: %+v", i, cands)
		}
		if cands[i-1].Score == cands[i].Score && cands[i-1].Node.Load > cands[i].Node.Load {
			t.Fatalf("candidates unsorted by load at %d: %+v", i, cands)
		}
	}
	if m := b.Metrics(); m.InfoFailures != 0 {
		t.Fatalf("digest-ranked discovery dialed nodes: %+v", m)
	}
}

func TestShardedBrokerServesStaleForLostShardOnly(t *testing.T) {
	s := startSharded(t, 2, time.Minute)
	c := &Client{Shards: s.Addrs(), Timeout: 300 * time.Millisecond,
		Retry: RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Seed: 1}}
	perShard := make([]int, 2)
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("node-%02d", i)
		own := s.Owner(name)
		perShard[own]++
		d := NodeDigest{Name: name, Addr: fmt.Sprintf("10.2.0.%d:1", i),
			State: "S1(full)", Gen: 1, UnixMS: nowMS()}
		if err := c.RegisterBatch(ctx, s.Addrs()[own], []NodeDigest{d}); err != nil {
			t.Fatal(err)
		}
	}
	if perShard[0] == 0 || perShard[1] == 0 {
		t.Fatalf("ring did not spread nodes: %v", perShard)
	}
	b := &Broker{Client: c, DiscoverLimit: 16, CacheTTL: time.Minute}
	if cands, err := b.Candidates(ctx); err != nil || len(cands) != 10 {
		t.Fatalf("warm discovery = %d cands, %v", len(cands), err)
	}

	// Losing one shard must not lose the other shard's slice: its nodes
	// come back from that shard's cache, marked stale.
	s.Shard(0).Close()
	cands, err := b.Candidates(ctx)
	if err != nil {
		t.Fatalf("discovery with one shard down: %v", err)
	}
	if len(cands) != 10 {
		t.Fatalf("got %d candidates with one shard down, want 10 (live + cached)", len(cands))
	}
	m := b.Metrics()
	if m.ShardErrors == 0 || m.StaleServes == 0 {
		t.Fatalf("metrics after shard loss = %+v, want ShardErrors and StaleServes > 0", m)
	}
	if m.RegistryErrors != 0 {
		t.Fatalf("partial shard loss counted as full discovery failure: %+v", m)
	}
}

// A caller-supplied Obs registry must win even when the broker already
// lazily created its private one — the counters move to the caller's
// registry instead of silently vanishing into the private instance.
func TestBrokerAdoptsLateObsRegistry(t *testing.T) {
	reg := startRegistry(t, time.Minute)
	b := &Broker{Client: fastClient(reg.Addr())}
	// First use builds the lazy private registry.
	if _, err := b.Candidates(ctx); err != nil {
		t.Fatal(err)
	}
	private := b.Obs
	if private == nil {
		t.Fatal("no private registry was created")
	}

	// The demo-binary pattern: attach a shared registry after construction.
	shared := obs.NewRegistry()
	b.Obs = shared
	reg.Close()
	if _, err := b.Candidates(ctx); err == nil {
		t.Fatal("discovery against a closed registry succeeded")
	}
	if b.Obs != shared {
		t.Fatalf("broker replaced the caller's registry: %p != %p", b.Obs, shared)
	}
	errs := shared.Counter("fgcs_broker_registry_errors_total", "discovery attempts that failed with no usable cache on any shard")
	if errs.Value() == 0 {
		t.Fatal("counters did not move to the caller-supplied registry")
	}
	if m := b.Metrics(); m.RegistryErrors != int(errs.Value()) {
		t.Fatalf("Metrics() = %+v not backed by the caller's registry (%d)", m, errs.Value())
	}
}

func TestGossipMergeNewerWins(t *testing.T) {
	g := NewGossiper(GossipConfig{})
	defer g.Close()
	g.Update(NodeDigest{Name: "n", Addr: "a:1", State: "S1(full)", Gen: 2, UnixMS: 100})
	// Older generation loses.
	if g.Merge([]NodeDigest{{Name: "n", State: "S5(machine-unavail)", Gen: 1, UnixMS: 999}}) != 0 {
		t.Fatal("older generation merged as news")
	}
	// Same generation, later timestamp wins, and a digest without an
	// address inherits the stored one.
	if g.Merge([]NodeDigest{{Name: "n", State: "S2(lowest-priority)", Gen: 2, UnixMS: 200}}) != 1 {
		t.Fatal("fresher same-generation digest rejected")
	}
	snap := g.Snapshot()
	if len(snap) != 1 || snap[0].State != "S2(lowest-priority)" || snap[0].Addr != "a:1" {
		t.Fatalf("store = %+v", snap)
	}
}

func TestGossipExchangeBetweenNodes(t *testing.T) {
	// Two nodes, no registry anywhere: availability state must still
	// spread peer-to-peer.
	a := startNode(t, NodeConfig{Name: "peer-a", HostLoad: 0.05, Gossip: &GossipConfig{}})
	bNode := startNode(t, NodeConfig{Name: "peer-b", HostLoad: 0.05, Gossip: &GossipConfig{Peers: []string{a.Addr()}}})

	if n := bNode.Gossiper().Tick(ctx); n != 1 {
		t.Fatalf("tick exchanged with %d peers, want 1", n)
	}
	// Push-pull: b now knows a (from a's reply), and a knows b (from b's
	// pushed self digest).
	if got := digestNames(bNode.Gossiper().Snapshot()); !strings.Contains(got, "peer-a") {
		t.Fatalf("b's store after exchange = %s, want peer-a", got)
	}
	if got := digestNames(a.Gossiper().Snapshot()); !strings.Contains(got, "peer-b") {
		t.Fatalf("a's store after exchange = %s, want peer-b", got)
	}
}

func digestNames(ds []NodeDigest) string {
	var names []string
	for _, d := range ds {
		names = append(names, d.Name)
	}
	return strings.Join(names, ",")
}

func TestGossipSpreadsTransitively(t *testing.T) {
	// a <- b <- c seed chain: after two rounds c's state reaches a only
	// through b. This is the epidemic property the broker fallback needs.
	a := startNode(t, NodeConfig{Name: "hop-a", HostLoad: 0.05, Gossip: &GossipConfig{}})
	bNode := startNode(t, NodeConfig{Name: "hop-b", HostLoad: 0.05, Gossip: &GossipConfig{Peers: []string{a.Addr()}}})
	cNode := startNode(t, NodeConfig{Name: "hop-c", HostLoad: 0.05, Gossip: &GossipConfig{Peers: []string{bNode.Addr()}}})

	cNode.Gossiper().Tick(ctx) // c -> b: b learns c
	bNode.Gossiper().Tick(ctx) // b -> a: a learns b and c
	if got := digestNames(a.Gossiper().Snapshot()); !strings.Contains(got, "hop-c") {
		t.Fatalf("a's store = %s, want hop-c learned transitively", got)
	}
}

func TestBrokerPlacesViaGossipWithAllShardsDown(t *testing.T) {
	g := NewGossiper(GossipConfig{})
	defer g.Close()
	g.Update(NodeDigest{Name: "ghost", Addr: "10.3.0.1:1", State: "S1(full)", Gen: 1, UnixMS: nowMS()})
	g.Update(NodeDigest{Name: "downed", Addr: "10.3.0.2:1", State: "S5(machine-unavail)", Gen: 1, UnixMS: nowMS()})
	g.Update(NodeDigest{Name: "ancient", Addr: "10.3.0.3:1", State: "S1(full)", Gen: 1, UnixMS: 1}) // long past GossipTTL

	reg := startRegistry(t, time.Minute)
	addr := reg.Addr()
	reg.Close() // every shard down, nothing ever cached
	b := &Broker{
		Client: &Client{RegistryAddr: addr, Timeout: 300 * time.Millisecond,
			Retry: RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Seed: 1}},
		DiscoverLimit: 8,
		Gossip:        g,
	}
	cands, err := b.Candidates(ctx)
	if err != nil {
		t.Fatalf("gossip-backed discovery failed: %v", err)
	}
	if len(cands) != 1 || cands[0].Node.Name != "ghost" || !cands[0].Stale {
		t.Fatalf("candidates = %+v, want exactly stale ghost (S5 and expired digests excluded)", cands)
	}
	if m := b.Metrics(); m.GossipServes == 0 {
		t.Fatalf("metrics = %+v, want GossipServes > 0", m)
	}
}

func TestHeartbeatJitterBoundsAndDeterminism(t *testing.T) {
	mk := func(name string) *Node {
		return &Node{cfg: NodeConfig{HeartbeatJitter: 0.2}, hbRand: newTestRand(name)}
	}
	base := 100 * time.Millisecond
	a1, a2 := mk("alpha"), mk("alpha")
	var diffFromBase bool
	for i := 0; i < 100; i++ {
		d1, d2 := a1.jitterHB(base), a2.jitterHB(base)
		if d1 != d2 {
			t.Fatalf("same-name jitter diverged at step %d: %v vs %v", i, d1, d2)
		}
		if d1 < 80*time.Millisecond || d1 > 120*time.Millisecond {
			t.Fatalf("jittered interval %v outside ±20%% of %v", d1, base)
		}
		if d1 != base {
			diffFromBase = true
		}
	}
	if !diffFromBase {
		t.Fatal("jitter never moved the interval")
	}
	// Different names must not share a schedule (that is the point).
	alpha, beta := mk("alpha"), mk("beta")
	same := true
	for i := 0; i < 20; i++ {
		if alpha.jitterHB(base) != beta.jitterHB(base) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two differently named nodes produced identical jitter schedules")
	}
	// Disabled jitter is the identity.
	off := &Node{cfg: NodeConfig{HeartbeatJitter: -1}.withDefaults(), hbRand: newTestRand("x")}
	if got := off.jitterHB(base); got != base {
		t.Fatalf("disabled jitter returned %v, want %v", got, base)
	}
}
