package ishare

import (
	"context"
	"math/rand"
	"net"
	"sync"
	"time"
)

// This file is the fault seam of the networked layer: every TCP dial goes
// through a pluggable Dialer, every server handler is bounded by Limits,
// and every retried operation paces itself with RetryPolicy. Production
// code uses the defaults; the chaos package substitutes a fault-injecting
// Dialer to make the paper's failure modes (transient unreachability,
// slow peers, mid-stream service death, URR) reproducible at the
// systems level.

// Dialer opens the TCP connection for one request/response exchange.
// The zero value of client and node configs uses a plain net.DialTimeout;
// fault injectors substitute an implementation that refuses, delays,
// drops or corrupts traffic.
type Dialer interface {
	Dial(addr string, timeout time.Duration) (net.Conn, error)
}

// tcpDialer is the production Dialer.
type tcpDialer struct{}

func (tcpDialer) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// dialerOrDefault resolves a possibly-nil configured Dialer.
func dialerOrDefault(d Dialer) Dialer {
	if d == nil {
		return tcpDialer{}
	}
	return d
}

// Limits bounds one protocol exchange so a slow or malicious peer cannot
// pin a handler: the message size caps how much a reader will buffer, the
// I/O deadline caps how long a server waits to read a request or flush a
// response.
type Limits struct {
	// MaxMessageBytes caps one JSON request or response (default 1 MiB).
	MaxMessageBytes int64
	// IODeadline bounds the server-side read and write of one exchange
	// (default 10 s; was previously hardcoded).
	IODeadline time.Duration
}

func (l Limits) withDefaults() Limits {
	if l.MaxMessageBytes <= 0 {
		l.MaxMessageBytes = 1 << 20
	}
	if l.IODeadline <= 0 {
		l.IODeadline = 10 * time.Second
	}
	return l
}

// RetryPolicy paces retries of idempotent operations (list, info, sethost,
// heartbeat): jittered exponential backoff under a bounded attempt budget.
// Submissions are never retried blindly at this level — the broker owns
// failover and checkpointed resubmission.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt (default 30 ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 500 ms).
	MaxDelay time.Duration
	// Jitter is the ± fraction applied to each delay (default 0.2).
	Jitter float64
	// Seed makes the jitter sequence reproducible; 0 uses a fixed seed so
	// two clients with zero-value policies behave identically.
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 30 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 500 * time.Millisecond
	}
	if p.Jitter <= 0 {
		p.Jitter = 0.2
	}
	return p
}

// jitterRand is a lock-guarded rand shared by concurrent retriers.
type jitterRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newJitterRand(seed int64) *jitterRand {
	if seed == 0 {
		seed = 1
	}
	return &jitterRand{rng: rand.New(rand.NewSource(seed))}
}

// frac returns a uniform value in [-1, 1).
func (j *jitterRand) frac() float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return 2*j.rng.Float64() - 1
}

// backoffDelay computes the jittered exponential delay before attempt
// (attempt 1 = first retry).
func backoffDelay(p RetryPolicy, attempt int, jr *jitterRand) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if jr != nil && p.Jitter > 0 {
		d += time.Duration(float64(d) * p.Jitter * jr.frac())
	}
	if d < 0 {
		d = 0
	}
	return d
}

// sleepCtx waits d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
