package ishare

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentSubmissions fires several jobs at one node in parallel;
// the node must serialize them on its single simulated machine without
// races (run with -race) and complete every one.
func TestConcurrentSubmissions(t *testing.T) {
	node := startNode(t, NodeConfig{Name: "serial", HostLoad: 0.05})
	c := &Client{}
	const jobs = 6
	var wg sync.WaitGroup
	results := make([]*JobResult, jobs)
	errs := make([]error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Submit(ctx, node.Addr(), JobSpec{
				Name: "par", CPUSeconds: 30, RSSMB: 32,
			})
		}(i)
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if !results[i].Completed {
			t.Errorf("job %d did not complete: %+v", i, results[i])
		}
	}
}

// TestConcurrentInfoAndSubmit interleaves status queries with a running
// submission.
func TestConcurrentInfoAndSubmit(t *testing.T) {
	node := startNode(t, NodeConfig{Name: "mix", HostLoad: 0.1})
	c := &Client{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := c.Submit(ctx, node.Addr(), JobSpec{Name: "long", CPUSeconds: 120, RSSMB: 32}); err != nil {
			t.Errorf("submit: %v", err)
		}
	}()
	for i := 0; i < 10; i++ {
		if _, err := c.Info(ctx, node.Addr()); err != nil {
			t.Fatalf("info during submit: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	<-done
}
