package ishare

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/simos"
)

var ctx = context.Background()

func startRegistry(t *testing.T, ttl time.Duration) *Registry {
	t.Helper()
	r, err := NewRegistry("127.0.0.1:0", ttl)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func startNode(t *testing.T, cfg NodeConfig) *Node {
	t.Helper()
	n, err := NewNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestRegistryLifecycle(t *testing.T) {
	reg := startRegistry(t, 200*time.Millisecond)
	c := &Client{RegistryAddr: reg.Addr()}

	node := startNode(t, NodeConfig{Name: "alpha", RegistryAddr: reg.Addr()})
	_ = node

	nodes, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Name != "alpha" || !nodes[0].Alive {
		t.Fatalf("nodes = %+v", nodes)
	}

	alive, err := c.AliveNodes(ctx)
	if err != nil || len(alive) != 1 {
		t.Fatalf("alive = %+v, %v", alive, err)
	}
}

func TestRegistryDetectsURR(t *testing.T) {
	reg := startRegistry(t, 150*time.Millisecond)
	c := &Client{RegistryAddr: reg.Addr()}
	node := startNode(t, NodeConfig{Name: "beta", RegistryAddr: reg.Addr(), HeartbeatEvery: 30 * time.Millisecond})

	// Alive while heartbeating.
	nodes, err := c.List(ctx)
	if err != nil || len(nodes) != 1 || !nodes[0].Alive {
		t.Fatalf("expected alive node, got %+v, %v", nodes, err)
	}

	// The machine is revoked: the FGCS service terminates. The registry
	// must eventually report it dead — the paper's URR observable.
	node.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		nodes, err = c.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(nodes) == 1 && !nodes[0].Alive {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node never went dead: %+v", nodes)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestRegistryRejectsBadRequests(t *testing.T) {
	reg := startRegistry(t, time.Second)
	if resp := reg.handle(Request{Op: "register"}); resp.OK {
		t.Error("register without name accepted")
	}
	if resp := reg.handle(Request{Op: "heartbeat", Name: "ghost"}); resp.OK {
		t.Error("heartbeat for unknown node accepted")
	}
	if resp := reg.handle(Request{Op: "dance"}); resp.OK {
		t.Error("unknown op accepted")
	}
	if resp := reg.handle(Request{Op: "unregister", Name: "ghost"}); !resp.OK {
		t.Error("unregister should be idempotent")
	}
}

func TestNodeInfoReportsStates(t *testing.T) {
	node := startNode(t, NodeConfig{Name: "gamma", HostLoad: 0.05})
	c := &Client{}
	st, err := c.Info(ctx, node.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(st.State, "S1") {
		t.Errorf("light host load should be S1, got %s", st.State)
	}
	// Crank the host load into S2 territory.
	if err := c.SetHostLoad(ctx, node.Addr(), 0.45, 0); err != nil {
		t.Fatal(err)
	}
	var sawS2 bool
	for i := 0; i < 20; i++ {
		st, err = c.Info(ctx, node.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(st.State, "S2") {
			sawS2 = true
			break
		}
	}
	if !sawS2 {
		t.Errorf("host load 0.45 should reach S2, last state %s", st.State)
	}
}

func TestSubmitCompletesOnIdleNode(t *testing.T) {
	node := startNode(t, NodeConfig{Name: "idle", HostLoad: 0.05})
	c := &Client{}
	res, err := c.Submit(ctx, node.Addr(), JobSpec{Name: "job", CPUSeconds: 120, RSSMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Outcome != "completed" {
		t.Fatalf("job did not complete: %+v", res)
	}
	if res.GuestCPUSeconds < 119 || res.GuestCPUSeconds > 125 {
		t.Errorf("guest CPU = %v, want ~120", res.GuestCPUSeconds)
	}
	// On a nearly idle machine the job should not take much longer than
	// its pure compute time.
	if res.WallSeconds > 160 {
		t.Errorf("wall = %v s for 120 s of work on an idle node", res.WallSeconds)
	}
}

func TestSubmitKilledUnderSustainedLoad(t *testing.T) {
	node := startNode(t, NodeConfig{Name: "busy", HostLoad: 0.9})
	c := &Client{}
	res, err := c.Submit(ctx, node.Addr(), JobSpec{Name: "victim", CPUSeconds: 600, RSSMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatalf("job should have been killed under 0.9 host load: %+v", res)
	}
	if res.Outcome != "killed" {
		t.Fatalf("outcome = %s, want killed", res.Outcome)
	}
	if !strings.HasPrefix(res.FinalState, "S3") {
		t.Errorf("final state = %s, want S3", res.FinalState)
	}
}

func TestSubmitKilledByMemoryPressure(t *testing.T) {
	cfg := NodeConfig{Name: "small", HostLoad: 0.05}
	cfg.Machine = simos.MachineConfig{Name: "small", RAM: 512 * simos.MB, KernelMem: 100 * simos.MB, Seed: 3}
	node := startNode(t, cfg)
	c := &Client{}
	// Host grows to 350 MB: free = 512-100-350 = 62 MB < guest demand.
	if err := c.SetHostLoad(ctx, node.Addr(), 0.05, 350); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(ctx, node.Addr(), JobSpec{Name: "bigmem", CPUSeconds: 300, RSSMB: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Outcome != "killed" {
		t.Fatalf("memory-starved job should be killed: %+v", res)
	}
	if !strings.HasPrefix(res.FinalState, "S4") {
		t.Errorf("final state = %s, want S4", res.FinalState)
	}
}

func TestSubmitValidation(t *testing.T) {
	node := startNode(t, NodeConfig{Name: "v"})
	c := &Client{}
	if _, err := c.Submit(ctx, node.Addr(), JobSpec{Name: "zero", CPUSeconds: 0}); err == nil {
		t.Error("zero-work job accepted")
	}
	if resp := node.handle(Request{Op: "submit"}); resp.OK {
		t.Error("submit without job accepted")
	}
	if resp := node.handle(Request{Op: "nope"}); resp.OK {
		t.Error("unknown op accepted")
	}
}

func TestRegistryTTLValidation(t *testing.T) {
	if _, err := NewRegistry("127.0.0.1:0", 0); err == nil {
		t.Error("zero TTL accepted")
	}
}

func TestInteractiveHostNode(t *testing.T) {
	node := startNode(t, NodeConfig{Name: "interactive", InteractiveHost: true})
	c := &Client{}
	res, err := c.Submit(ctx, node.Addr(), JobSpec{Name: "job", CPUSeconds: 120, RSSMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("guest should complete alongside an interactive user: %+v", res)
	}
	// The interactive user costs the guest a little wall time but the
	// credit mechanism keeps the machine in S1/S2.
	if res.WallSeconds > 300 {
		t.Errorf("wall %v s for 120 s of work under an interactive host", res.WallSeconds)
	}
}
