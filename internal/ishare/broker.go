package ishare

import (
	"fmt"
	"strings"
)

// Broker is the client-side placement component: it discovers published
// resources, queries their availability states, and submits guest jobs to
// the most available one (S1 before S2; failure states and dead nodes are
// never used). It realizes, at the systems level, the same decision the
// gsched policies make over traces.
type Broker struct {
	Client *Client
}

// NewBroker builds a broker over a registry.
func NewBroker(registryAddr string) *Broker {
	return &Broker{Client: &Client{RegistryAddr: registryAddr}}
}

// Candidate is a scored placement option.
type Candidate struct {
	Node  NodeInfo
	State string
	// Score orders candidates: lower is better (0 = S1, 1 = S2).
	Score int
}

// rankState maps a node's reported state to a placement score; states that
// cannot host a guest return -1.
func rankState(state string) int {
	switch {
	case strings.HasPrefix(state, "S1"):
		return 0
	case strings.HasPrefix(state, "S2"):
		return 1
	default:
		return -1
	}
}

// Candidates returns the usable nodes ordered best-first.
func (b *Broker) Candidates() ([]Candidate, error) {
	nodes, err := b.Client.AliveNodes()
	if err != nil {
		return nil, err
	}
	var out []Candidate
	for _, n := range nodes {
		st, err := b.Client.Info(n.Addr)
		if err != nil {
			continue // unreachable despite a fresh heartbeat: skip
		}
		score := rankState(st.State)
		if score < 0 {
			continue
		}
		out = append(out, Candidate{Node: n, State: st.State, Score: score})
	}
	// Stable selection sort by (score, name); candidate lists are small.
	for i := 0; i < len(out); i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Score < out[best].Score ||
				(out[j].Score == out[best].Score && out[j].Node.Name < out[best].Node.Name) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out, nil
}

// SubmitBest places the job on the best available node, falling through to
// the next candidate if a submission fails outright. It returns the result
// and the node that ran the job.
func (b *Broker) SubmitBest(job JobSpec) (*JobResult, NodeInfo, error) {
	cands, err := b.Candidates()
	if err != nil {
		return nil, NodeInfo{}, err
	}
	if len(cands) == 0 {
		return nil, NodeInfo{}, fmt.Errorf("ishare: no available resources")
	}
	var lastErr error
	for _, c := range cands {
		res, err := b.Client.Submit(c.Node.Addr, job)
		if err != nil {
			lastErr = err
			continue
		}
		return res, c.Node, nil
	}
	return nil, NodeInfo{}, fmt.Errorf("ishare: every candidate failed: %w", lastErr)
}
