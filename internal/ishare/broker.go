package ishare

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Broker is the client-side placement component: it discovers published
// resources, queries their availability states, and submits guest jobs to
// the most available one (S1 before S2; failure states and dead nodes are
// never used). It realizes, at the systems level, the same decision the
// gsched policies make over traces — and, because FGCS resources fail by
// design, it also owns recovery: failover to the next candidate when a
// submission dies, resubmission of killed jobs from their last virtual
// checkpoint, and placement from a last-known-good node list when the
// registry itself is unreachable.
type Broker struct {
	Client *Client
	// CacheTTL bounds how stale the last-known-good node list may be and
	// still serve placements during a registry partition (default 30 s).
	CacheTTL time.Duration
	// MaxRounds caps placement rounds per job: one round is one ranked
	// pass over the candidates (default 8).
	MaxRounds int
	// RoundDelay paces consecutive rounds (default 50 ms).
	RoundDelay time.Duration
	// Obs receives the broker's counters and latency histograms. Leave nil
	// to keep the metrics private (a registry is created lazily); set it
	// before first use to export them on a shared /metrics endpoint.
	Obs *obs.Registry
	// Logger receives structured per-job events (submissions, failovers,
	// resubmissions) carrying the job's trace ID. Nil discards them.
	Logger *slog.Logger

	jobSeq  atomic.Int64
	metOnce sync.Once
	met     *brokerMetrics

	mu      sync.Mutex
	cache   []NodeInfo
	cacheAt time.Time
}

// BrokerMetrics is a snapshot of the broker's recovery counters. All
// fields are cumulative since construction.
type BrokerMetrics struct {
	// StaleServes counts candidate lists served from the cached node list
	// because the registry was unreachable.
	StaleServes int
	// RegistryErrors counts discovery attempts that failed outright
	// (registry unreachable and no usable cache).
	RegistryErrors int
	// InfoFailures counts alive-listed nodes whose Info query failed.
	InfoFailures int
	// Failovers counts submissions moved to the next candidate after a
	// transport failure.
	Failovers int
	// SameNodeRetries counts dedup-safe immediate retries of a submission
	// on the same node after a dropped response.
	SameNodeRetries int
	// Resubmissions counts jobs resubmitted from a checkpoint after being
	// killed (URR/UEC) or timing out.
	Resubmissions int
	// DedupHits counts submissions answered from a node's completed-job
	// cache rather than by running the job again.
	DedupHits int
}

// NewBroker builds a broker over a registry.
func NewBroker(registryAddr string) *Broker {
	return &Broker{Client: &Client{RegistryAddr: registryAddr}}
}

// metrics returns the broker's counter set, creating it (and, if needed, a
// private registry) on first use. The client shares the broker's registry
// unless it already has its own.
func (b *Broker) metrics() *brokerMetrics {
	b.metOnce.Do(func() {
		if b.Obs == nil {
			b.Obs = obs.NewRegistry()
		}
		b.met = newBrokerMetrics(b.Obs)
		if b.Client != nil && b.Client.Obs == nil {
			b.Client.Obs = b.Obs
		}
	})
	return b.met
}

func (b *Broker) logger() *slog.Logger { return loggerOrDiscard(b.Logger) }

// Metrics returns a snapshot of the broker's recovery counters. It is safe
// to call concurrently with submissions: every counter is an atomic in the
// broker's obs registry.
func (b *Broker) Metrics() BrokerMetrics {
	m := b.metrics()
	return BrokerMetrics{
		StaleServes:     int(m.staleServes.Value()),
		RegistryErrors:  int(m.registryErrors.Value()),
		InfoFailures:    int(m.infoFailures.Value()),
		Failovers:       int(m.failovers.Value()),
		SameNodeRetries: int(m.sameNodeRetries.Value()),
		Resubmissions:   int(m.resubmissions.Value()),
		DedupHits:       int(m.dedupHits.Value()),
	}
}

func (b *Broker) cacheTTL() time.Duration {
	if b.CacheTTL <= 0 {
		return 30 * time.Second
	}
	return b.CacheTTL
}

func (b *Broker) maxRounds() int {
	if b.MaxRounds <= 0 {
		return 8
	}
	return b.MaxRounds
}

func (b *Broker) roundDelay() time.Duration {
	if b.RoundDelay <= 0 {
		return 50 * time.Millisecond
	}
	return b.RoundDelay
}

// Candidate is a scored placement option.
type Candidate struct {
	Node  NodeInfo
	State string
	// Score orders candidates: lower is better (0 = S1, 1 = S2).
	Score int
	// Stale is true when this candidate came from the broker's cached
	// node list because the registry was unreachable.
	Stale bool
}

// rankState maps a node's reported state to a placement score; states that
// cannot host a guest return -1.
func rankState(state string) int {
	switch {
	case strings.HasPrefix(state, "S1"):
		return 0
	case strings.HasPrefix(state, "S2"):
		return 1
	default:
		return -1
	}
}

// aliveNodes discovers placement targets, degrading to the cached
// last-known-good list (within CacheTTL) when the registry is partitioned.
func (b *Broker) aliveNodes(ctx context.Context) ([]NodeInfo, bool, error) {
	m := b.metrics()
	nodes, err := b.Client.AliveNodes(ctx)
	if err == nil {
		b.mu.Lock()
		b.cache = append(b.cache[:0:0], nodes...)
		b.cacheAt = time.Now()
		b.mu.Unlock()
		return nodes, false, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.cache) > 0 && time.Since(b.cacheAt) <= b.cacheTTL() {
		m.staleServes.Inc()
		b.logger().Log(ctx, slog.LevelWarn, "registry unreachable, serving cached node list",
			"trace", TraceIDFrom(ctx), "cached_nodes", len(b.cache), "err", err.Error())
		return append([]NodeInfo(nil), b.cache...), true, nil
	}
	m.registryErrors.Inc()
	return nil, false, err
}

// Candidates returns the usable nodes ordered best-first. During a
// registry partition it falls back to the last-known-good node list, so a
// broker keeps placing jobs on previously discovered resources until the
// cache exceeds CacheTTL.
func (b *Broker) Candidates(ctx context.Context) ([]Candidate, error) {
	nodes, stale, err := b.aliveNodes(ctx)
	if err != nil {
		return nil, err
	}
	var out []Candidate
	for _, n := range nodes {
		st, err := b.Client.Info(ctx, n.Addr)
		if err != nil {
			// Unreachable despite a fresh heartbeat (or a stale cache
			// entry that died during the partition): skip.
			b.metrics().infoFailures.Inc()
			continue
		}
		score := rankState(st.State)
		if score < 0 {
			continue
		}
		out = append(out, Candidate{Node: n, State: st.State, Score: score, Stale: stale})
	}
	// Stable selection sort by (score, name); candidate lists are small.
	for i := 0; i < len(out); i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Score < out[best].Score ||
				(out[j].Score == out[best].Score && out[j].Node.Name < out[best].Node.Name) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out, nil
}

// submitOnce sends one submission, with a single dedup-safe retry on the
// same node: a transport error leaves the job's fate unknown (the node may
// have finished it and lost the response mid-stream), and because nodes
// cache completed job IDs the retry either returns that cached result or
// establishes that the node is gone.
func (b *Broker) submitOnce(ctx context.Context, addr string, job JobSpec) (*JobResult, error) {
	res, err := b.Client.Submit(ctx, addr, job)
	if err == nil {
		return res, nil
	}
	if ctx.Err() != nil {
		return nil, err
	}
	b.metrics().sameNodeRetries.Inc()
	b.logger().Log(ctx, slog.LevelInfo, "retrying submission on same node after dropped response",
		"trace", TraceIDFrom(ctx), "job", job.ID, "node_addr", addr)
	return b.Client.Submit(ctx, addr, job)
}

// SubmitBest places the job on the best available node and shepherds it to
// completion: transport failures fail over to the next candidate, and jobs
// killed by resource revocation resume on a fresh candidate from the
// virtual checkpoint reported in their JobResult rather than from zero.
// It returns the completing result and the node that finished the job.
func (b *Broker) SubmitBest(ctx context.Context, job JobSpec) (*JobResult, NodeInfo, error) {
	if job.ID == "" {
		job.ID = fmt.Sprintf("%s#%d", job.Name, b.jobSeq.Add(1))
	}
	// The job ID doubles as its trace ID: every exchange of this placement
	// (discovery, info queries, submissions, retries) is stamped with it on
	// the wire, so logs on the broker, registry and nodes correlate.
	if TraceIDFrom(ctx) == "" {
		ctx = WithTraceID(ctx, job.ID)
	}
	m := b.metrics()
	m.submissions.Inc()
	start := time.Now()
	defer func() { m.submitSeconds.Observe(time.Since(start).Seconds()) }()
	b.logger().Log(ctx, slog.LevelInfo, "placing job",
		"trace", TraceIDFrom(ctx), "job", job.ID, "cpu_seconds", job.CPUSeconds)

	resume := job.ResumeCPUSeconds
	rounds := b.maxRounds()
	var lastErr error
	for round := 0; round < rounds; round++ {
		if round > 0 {
			if err := sleepCtx(ctx, b.roundDelay()); err != nil {
				return nil, NodeInfo{}, err
			}
		}
		cands, err := b.Candidates(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		if len(cands) == 0 {
			lastErr = fmt.Errorf("ishare: no available resources")
			continue
		}
		for _, c := range cands {
			attempt := job
			attempt.ResumeCPUSeconds = resume
			res, err := b.submitOnce(ctx, c.Node.Addr, attempt)
			if err != nil {
				// The node died under the submission: fail over.
				lastErr = err
				m.failovers.Inc()
				b.logger().Log(ctx, slog.LevelWarn, "submission failed, failing over",
					"trace", TraceIDFrom(ctx), "job", job.ID, "node", c.Node.Name, "err", err.Error())
				continue
			}
			if res.Deduped {
				m.dedupHits.Inc()
				b.logger().Log(ctx, slog.LevelInfo, "submission answered from node dedup cache",
					"trace", TraceIDFrom(ctx), "job", job.ID, "node", c.Node.Name)
			}
			if res.Completed {
				m.completions.Inc()
				b.logger().Log(ctx, slog.LevelInfo, "job completed",
					"trace", TraceIDFrom(ctx), "job", job.ID, "node", c.Node.Name,
					"wall_seconds", res.WallSeconds, "suspensions", res.Suspensions, "deduped", res.Deduped)
				return res, c.Node, nil
			}
			// Killed (URR/UEC) or out of budget: checkpoint the progress
			// the node reported and re-rank from scratch — the node that
			// just killed the guest is usually about to leave the
			// candidate set.
			if res.GuestCPUSeconds > resume && res.GuestCPUSeconds < job.CPUSeconds {
				resume = res.GuestCPUSeconds
			}
			m.resubmissions.Inc()
			b.logger().Log(ctx, slog.LevelWarn, "job interrupted, resubmitting from checkpoint",
				"trace", TraceIDFrom(ctx), "job", job.ID, "node", c.Node.Name,
				"outcome", res.Outcome, "final_state", res.FinalState, "resume_cpu_seconds", resume)
			lastErr = fmt.Errorf("ishare: job %q %s on %s in %s at %.0f/%.0f cpu-s",
				job.Name, res.Outcome, c.Node.Name, res.FinalState, res.GuestCPUSeconds, job.CPUSeconds)
			break
		}
	}
	return nil, NodeInfo{}, fmt.Errorf("ishare: submit %q failed after %d rounds: %w", job.Name, rounds, lastErr)
}
