package ishare

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Broker is the client-side placement component: it discovers published
// resources, queries their availability states, and submits guest jobs to
// the most available one (S1 before S2; failure states and dead nodes are
// never used). It realizes, at the systems level, the same decision the
// gsched policies make over traces — and, because FGCS resources fail by
// design, it also owns recovery: failover to the next candidate when a
// submission dies, resubmission of killed jobs from their last virtual
// checkpoint, and placement from last-known-good node lists when
// registries are unreachable.
//
// Against a sharded control plane the broker fans discovery out to every
// shard (bounded by DiscoverConcurrency), keeps one stale-fallback cache
// per shard so losing a shard degrades only that shard's slice of the
// fleet, and merges the per-shard lists into one ranked candidate list.
// With a Gossiper attached, placement survives losing every shard:
// candidates are then served from gossip-learned availability digests.
type Broker struct {
	Client *Client
	// CacheTTL bounds how stale a shard's last-known-good node list may be
	// and still serve placements during a registry partition (default 30 s).
	CacheTTL time.Duration
	// MaxRounds caps placement rounds per job: one round is one ranked
	// pass over the candidates (default 8).
	MaxRounds int
	// RoundDelay paces consecutive rounds (default 50 ms).
	RoundDelay time.Duration
	// DiscoverLimit, when positive, requests each shard's ranked
	// discovery form (up to that many alive nodes per shard, best
	// availability classes first) and ranks candidates from the digest
	// states those lists carry, querying Info only for nodes that never
	// reported a digest. Zero keeps the legacy single-registry behavior:
	// full listings and one Info round trip per alive node.
	DiscoverLimit int
	// DiscoverConcurrency bounds how many shards are listed in parallel
	// during one discovery (default 4).
	DiscoverConcurrency int
	// BreakerThreshold, when positive, arms a circuit breaker per registry
	// shard: after that many consecutive list failures the shard is
	// skipped (short-circuited to its stale cache) until BreakerCooldown
	// elapses, then probed with a single call. Zero disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker denies calls before the
	// half-open probe (default 500 ms).
	BreakerCooldown time.Duration
	// Gossip, when set, is the decentralized fallback discovery path: if
	// every shard is unreachable and no cache is usable, candidates come
	// from the gossip store's availability digests (bounded by GossipTTL).
	Gossip *Gossiper
	// GossipTTL bounds how old a gossip digest may be and still produce a
	// placement candidate (default 30 s).
	GossipTTL time.Duration
	// Obs receives the broker's counters and latency histograms. Leave nil
	// to keep the metrics private (a registry is created lazily); set it
	// before first use to export them on a shared /metrics endpoint.
	Obs *obs.Registry
	// Logger receives structured per-job events (submissions, failovers,
	// resubmissions) carrying the job's trace ID. Nil discards them.
	Logger *slog.Logger

	jobSeq atomic.Int64

	metMu  sync.Mutex
	met    *brokerMetrics
	metObs *obs.Registry // the registry met was built against

	mu       sync.Mutex
	cache    map[string]shardCache // per shard address
	breakers map[string]*breaker   // per shard address, nil entries never created when disabled
}

// shardCache is one shard's last-known-good node list.
type shardCache struct {
	nodes []NodeInfo
	at    time.Time
}

// BrokerMetrics is a snapshot of the broker's recovery counters. All
// fields are cumulative since construction.
type BrokerMetrics struct {
	// StaleServes counts per-shard candidate lists served from the cached
	// node list because that shard was unreachable.
	StaleServes int
	// RegistryErrors counts discovery attempts that failed outright
	// (every shard unreachable and no usable cache or gossip).
	RegistryErrors int
	// ShardErrors counts individual shard list calls that failed during
	// fan-out discovery (the shard may still have been served stale).
	ShardErrors int
	// GossipServes counts candidate lists served from the gossip store
	// with every registry shard unreachable.
	GossipServes int
	// InfoFailures counts alive-listed nodes whose Info query failed.
	InfoFailures int
	// Failovers counts submissions moved to the next candidate after a
	// transport failure.
	Failovers int
	// SameNodeRetries counts dedup-safe immediate retries of a submission
	// on the same node after a dropped response.
	SameNodeRetries int
	// Resubmissions counts jobs resubmitted from a checkpoint after being
	// killed (URR/UEC) or timing out.
	Resubmissions int
	// DedupHits counts submissions answered from a node's completed-job
	// cache rather than by running the job again.
	DedupHits int
	// BreakerOpens counts per-shard circuit breakers tripping open after
	// consecutive discovery failures.
	BreakerOpens int
	// BreakerShortCircuits counts shard list calls skipped outright
	// because the shard's breaker was open.
	BreakerShortCircuits int
}

// NewBroker builds a broker over a single registry.
func NewBroker(registryAddr string) *Broker {
	return &Broker{Client: &Client{RegistryAddr: registryAddr}}
}

// NewShardedBroker builds a shard-aware broker over the given registry
// shards, using their ranked discovery form with the given per-shard
// candidate limit (<= 0 uses 32).
func NewShardedBroker(shards []string, limit int) *Broker {
	if limit <= 0 {
		limit = 32
	}
	return &Broker{
		Client:        &Client{Shards: append([]string(nil), shards...)},
		DiscoverLimit: limit,
	}
}

// metrics returns the broker's counter set, creating it (and, if needed, a
// private registry) on first use. The client shares the broker's registry
// unless it already has its own. If a caller installs its own Obs registry
// after the lazy private one already existed, the metrics are rebuilt in
// the caller's registry on the next use (cumulative counts restart there)
// — a caller-supplied registry is never silently shadowed by the private
// one. Obs must not be reassigned concurrently with broker use.
func (b *Broker) metrics() *brokerMetrics {
	b.metMu.Lock()
	defer b.metMu.Unlock()
	if b.met != nil && (b.Obs == nil || b.Obs == b.metObs) {
		return b.met
	}
	if b.Obs == nil {
		b.Obs = obs.NewRegistry()
	}
	prev := b.metObs
	b.metObs = b.Obs
	b.met = newBrokerMetrics(b.Obs)
	if b.Client != nil && (b.Client.Obs == nil || b.Client.Obs == prev) {
		b.Client.Obs = b.Obs
	}
	return b.met
}

func (b *Broker) logger() *slog.Logger { return loggerOrDiscard(b.Logger) }

// Metrics returns a snapshot of the broker's recovery counters. It is safe
// to call concurrently with submissions: every counter is an atomic in the
// broker's obs registry.
func (b *Broker) Metrics() BrokerMetrics {
	m := b.metrics()
	return BrokerMetrics{
		StaleServes:     int(m.staleServes.Value()),
		RegistryErrors:  int(m.registryErrors.Value()),
		ShardErrors:     int(m.shardErrors.Value()),
		GossipServes:    int(m.gossipServes.Value()),
		InfoFailures:    int(m.infoFailures.Value()),
		Failovers:       int(m.failovers.Value()),
		SameNodeRetries: int(m.sameNodeRetries.Value()),
		Resubmissions:   int(m.resubmissions.Value()),
		DedupHits:       int(m.dedupHits.Value()),

		BreakerOpens:         int(m.breakerOpens.Value()),
		BreakerShortCircuits: int(m.breakerShorts.Value()),
	}
}

// breakerFor returns the shard's circuit breaker, creating it on first
// use; nil when breakers are disabled.
func (b *Broker) breakerFor(addr string) *breaker {
	if b.BreakerThreshold <= 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.breakers == nil {
		b.breakers = make(map[string]*breaker)
	}
	br, ok := b.breakers[addr]
	if !ok {
		br = newBreaker(b.BreakerThreshold, b.BreakerCooldown, nil)
		b.breakers[addr] = br
	}
	return br
}

func (b *Broker) cacheTTL() time.Duration {
	if b.CacheTTL <= 0 {
		return 30 * time.Second
	}
	return b.CacheTTL
}

func (b *Broker) gossipTTL() time.Duration {
	if b.GossipTTL <= 0 {
		return 30 * time.Second
	}
	return b.GossipTTL
}

func (b *Broker) maxRounds() int {
	if b.MaxRounds <= 0 {
		return 8
	}
	return b.MaxRounds
}

func (b *Broker) roundDelay() time.Duration {
	if b.RoundDelay <= 0 {
		return 50 * time.Millisecond
	}
	return b.RoundDelay
}

func (b *Broker) discoverConcurrency() int {
	if b.DiscoverConcurrency <= 0 {
		return 4
	}
	return b.DiscoverConcurrency
}

// Candidate is a scored placement option.
type Candidate struct {
	Node  NodeInfo
	State string
	// Score orders candidates: lower is better (0 = S1, 1 = S2).
	Score int
	// Stale is true when this candidate came from a fallback path — a
	// shard's cached node list, or the gossip store — because live
	// discovery was unavailable.
	Stale bool
}

// errBreakerOpen marks a shard skipped by its open circuit breaker
// during fan-out discovery.
var errBreakerOpen = fmt.Errorf("ishare: shard skipped: circuit breaker open")

// rankState maps a node's reported state to a placement score; states that
// cannot host a guest return -1.
func rankState(state string) int {
	switch {
	case strings.HasPrefix(state, "S1"):
		return 0
	case strings.HasPrefix(state, "S2"):
		return 1
	default:
		return -1
	}
}

// listOneShard fetches one shard's node list in the configured discovery
// form (ranked when DiscoverLimit > 0, full legacy listing otherwise),
// already filtered to alive nodes.
func (b *Broker) listOneShard(ctx context.Context, addr string) ([]NodeInfo, error) {
	nodes, err := b.Client.ListShard(ctx, addr, b.DiscoverLimit)
	if err != nil {
		return nil, err
	}
	if b.DiscoverLimit > 0 {
		return nodes, nil // ranked form is alive-only already
	}
	alive := nodes[:0]
	for _, n := range nodes {
		if n.Alive {
			alive = append(alive, n)
		}
	}
	return alive, nil
}

// discover fans discovery out across every shard, degrading per shard to
// that shard's cached last-known-good list (within CacheTTL) and, when no
// shard yields anything, to the gossip store. The stale return is true
// when any candidate came from a fallback path.
func (b *Broker) discover(ctx context.Context) ([]NodeInfo, bool, error) {
	m := b.metrics()
	addrs := b.Client.ShardAddrs()
	type shardResult struct {
		nodes []NodeInfo
		err   error
	}
	results := make([]shardResult, len(addrs))
	sem := make(chan struct{}, b.discoverConcurrency())
	var wg sync.WaitGroup
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			br := b.breakerFor(addr)
			if br != nil && !br.allow() {
				// Open breaker: skip the call entirely. The shard still
				// counts as failed, so its stale cache (and, with every
				// shard down, gossip) serves exactly as for a live error —
				// the fan-out just stops paying a dial timeout for it.
				m.breakerShorts.Inc()
				results[i] = shardResult{err: errBreakerOpen}
				return
			}
			nodes, err := b.listOneShard(ctx, addr)
			if br != nil && br.result(err == nil) {
				m.breakerOpens.Inc()
				b.logger().Log(ctx, slog.LevelWarn, "shard circuit breaker opened",
					"trace", TraceIDFrom(ctx), "shard", addr)
			}
			results[i] = shardResult{nodes: nodes, err: err}
		}(i, addr)
	}
	wg.Wait()

	var merged []NodeInfo
	stale := false
	errs := 0
	var lastErr error
	now := time.Now()
	b.mu.Lock()
	if b.cache == nil {
		b.cache = make(map[string]shardCache)
	}
	for i, addr := range addrs {
		res := results[i]
		if res.err == nil {
			b.cache[addr] = shardCache{nodes: append([]NodeInfo(nil), res.nodes...), at: now}
			merged = append(merged, res.nodes...)
			continue
		}
		errs++
		lastErr = res.err
		m.shardErrors.Inc()
		if c, ok := b.cache[addr]; ok && len(c.nodes) > 0 && now.Sub(c.at) <= b.cacheTTL() {
			m.staleServes.Inc()
			stale = true
			merged = append(merged, c.nodes...)
			b.logger().Log(ctx, slog.LevelWarn, "registry shard unreachable, serving cached node list",
				"trace", TraceIDFrom(ctx), "shard", addr, "cached_nodes", len(c.nodes), "err", res.err.Error())
		}
	}
	b.mu.Unlock()

	if len(merged) > 0 || errs < len(addrs) {
		return merged, stale, nil
	}
	// Every shard failed and no cache was usable: the decentralized path.
	if g := b.Gossip; g != nil {
		if nodes := candidatesFromGossip(g.Snapshot(), now, b.gossipTTL()); len(nodes) > 0 {
			m.gossipServes.Inc()
			b.logger().Log(ctx, slog.LevelWarn, "all registry shards unreachable, serving gossip-learned candidates",
				"trace", TraceIDFrom(ctx), "gossip_nodes", len(nodes), "err", lastErr.Error())
			return nodes, true, nil
		}
	}
	m.registryErrors.Inc()
	return nil, false, lastErr
}

// candidatesFromGossip converts fresh, guest-hostable gossip digests into
// placement candidates.
func candidatesFromGossip(digests []NodeDigest, now time.Time, ttl time.Duration) []NodeInfo {
	var out []NodeInfo
	for _, d := range digests {
		if d.Addr == "" || rankState(d.State) < 0 {
			continue
		}
		if d.UnixMS > 0 && now.UnixMilli()-d.UnixMS > ttl.Milliseconds() {
			continue
		}
		out = append(out, NodeInfo{Name: d.Name, Addr: d.Addr, Alive: true,
			LastSeenMS: d.UnixMS, State: d.State, Load: d.Load, Gen: d.Gen})
	}
	return out
}

// Candidates returns the usable nodes across every shard, ordered
// best-first. During registry partitions it falls back per shard to the
// last-known-good node list (within CacheTTL), and with every shard down
// to gossip-learned digests, so a broker keeps placing jobs on previously
// discovered resources through a full control-plane outage.
func (b *Broker) Candidates(ctx context.Context) ([]Candidate, error) {
	m := b.metrics()
	start := time.Now()
	defer func() { m.discoverSeconds.Observe(time.Since(start).Seconds()) }()
	nodes, stale, err := b.discover(ctx)
	if err != nil {
		return nil, err
	}
	var out []Candidate
	for _, n := range nodes {
		// Ranked discovery carries digest states; trust them and skip the
		// per-node Info round trip — the scaling win that makes fan-out
		// discovery over 100k-node shards affordable. Legacy mode (and
		// digest-less nodes in ranked mode) keeps the live Info query.
		if b.DiscoverLimit > 0 && n.State != "" {
			score := rankState(n.State)
			if score < 0 {
				continue
			}
			out = append(out, Candidate{Node: n, State: n.State, Score: score, Stale: stale})
			continue
		}
		st, err := b.Client.Info(ctx, n.Addr)
		if err != nil {
			// Unreachable despite a fresh heartbeat (or a stale cache
			// entry that died during the partition): skip.
			m.infoFailures.Inc()
			continue
		}
		score := rankState(st.State)
		if score < 0 {
			continue
		}
		out = append(out, Candidate{Node: n, State: st.State, Score: score, Stale: stale})
	}
	// Stable selection sort by (score, load, name); candidate lists are
	// bounded by shards x DiscoverLimit. Load is zero throughout legacy
	// discovery, so the legacy order (score, name) is unchanged.
	for i := 0; i < len(out); i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if candidateLess(out[j], out[best]) {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out, nil
}

func candidateLess(a, b Candidate) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	if a.Node.Load != b.Node.Load {
		return a.Node.Load < b.Node.Load
	}
	return a.Node.Name < b.Node.Name
}

// submitOnce sends one submission, with a single dedup-safe retry on the
// same node: a transport error leaves the job's fate unknown (the node may
// have finished it and lost the response mid-stream), and because nodes
// cache completed job IDs the retry either returns that cached result or
// establishes that the node is gone.
func (b *Broker) submitOnce(ctx context.Context, addr string, job JobSpec) (*JobResult, error) {
	res, err := b.Client.Submit(ctx, addr, job)
	if err == nil {
		return res, nil
	}
	if ctx.Err() != nil {
		return nil, err
	}
	b.metrics().sameNodeRetries.Inc()
	b.logger().Log(ctx, slog.LevelInfo, "retrying submission on same node after dropped response",
		"trace", TraceIDFrom(ctx), "job", job.ID, "node_addr", addr)
	return b.Client.Submit(ctx, addr, job)
}

// SubmitBest places the job on the best available node and shepherds it to
// completion: transport failures fail over to the next candidate, and jobs
// killed by resource revocation resume on a fresh candidate from the
// virtual checkpoint reported in their JobResult rather than from zero.
// It returns the completing result and the node that finished the job.
func (b *Broker) SubmitBest(ctx context.Context, job JobSpec) (*JobResult, NodeInfo, error) {
	if job.ID == "" {
		job.ID = fmt.Sprintf("%s#%d", job.Name, b.jobSeq.Add(1))
	}
	// The job ID doubles as its trace ID: every exchange of this placement
	// (discovery, info queries, submissions, retries) is stamped with it on
	// the wire, so logs on the broker, registry and nodes correlate.
	if TraceIDFrom(ctx) == "" {
		ctx = WithTraceID(ctx, job.ID)
	}
	m := b.metrics()
	m.submissions.Inc()
	start := time.Now()
	defer func() { m.submitSeconds.Observe(time.Since(start).Seconds()) }()
	b.logger().Log(ctx, slog.LevelInfo, "placing job",
		"trace", TraceIDFrom(ctx), "job", job.ID, "cpu_seconds", job.CPUSeconds)

	resume := job.ResumeCPUSeconds
	rounds := b.maxRounds()
	var lastErr error
	for round := 0; round < rounds; round++ {
		if round > 0 {
			if err := sleepCtx(ctx, b.roundDelay()); err != nil {
				return nil, NodeInfo{}, err
			}
		}
		cands, err := b.Candidates(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		if len(cands) == 0 {
			lastErr = fmt.Errorf("ishare: no available resources")
			continue
		}
		for _, c := range cands {
			attempt := job
			attempt.ResumeCPUSeconds = resume
			res, err := b.submitOnce(ctx, c.Node.Addr, attempt)
			if err != nil {
				// The node died under the submission: fail over.
				lastErr = err
				m.failovers.Inc()
				b.logger().Log(ctx, slog.LevelWarn, "submission failed, failing over",
					"trace", TraceIDFrom(ctx), "job", job.ID, "node", c.Node.Name, "err", err.Error())
				continue
			}
			if res.Deduped {
				m.dedupHits.Inc()
				b.logger().Log(ctx, slog.LevelInfo, "submission answered from node dedup cache",
					"trace", TraceIDFrom(ctx), "job", job.ID, "node", c.Node.Name)
			}
			if res.Completed {
				m.completions.Inc()
				b.logger().Log(ctx, slog.LevelInfo, "job completed",
					"trace", TraceIDFrom(ctx), "job", job.ID, "node", c.Node.Name,
					"wall_seconds", res.WallSeconds, "suspensions", res.Suspensions, "deduped", res.Deduped)
				return res, c.Node, nil
			}
			// Killed (URR/UEC) or out of budget: checkpoint the progress
			// the node reported and re-rank from scratch — the node that
			// just killed the guest is usually about to leave the
			// candidate set.
			if res.GuestCPUSeconds > resume && res.GuestCPUSeconds < job.CPUSeconds {
				resume = res.GuestCPUSeconds
			}
			m.resubmissions.Inc()
			b.logger().Log(ctx, slog.LevelWarn, "job interrupted, resubmitting from checkpoint",
				"trace", TraceIDFrom(ctx), "job", job.ID, "node", c.Node.Name,
				"outcome", res.Outcome, "final_state", res.FinalState, "resume_cpu_seconds", resume)
			lastErr = fmt.Errorf("ishare: job %q %s on %s in %s at %.0f/%.0f cpu-s",
				job.Name, res.Outcome, c.Node.Name, res.FinalState, res.GuestCPUSeconds, job.CPUSeconds)
			break
		}
	}
	return nil, NodeInfo{}, fmt.Errorf("ishare: submit %q failed after %d rounds: %w", job.Name, rounds, lastErr)
}
