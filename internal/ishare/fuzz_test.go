package ishare

import (
	"encoding/json"
	"testing"
)

// FuzzProtocolDecode drives arbitrary bytes through the wire decoders for
// both directions of the protocol — every v1/v2 message (register_batch,
// heartbeat_batch, discover, shardmap, gossip, submit) rides the same two
// decode stacks. The invariants: no panic, no unbounded allocation past
// the message limit, and anything that decodes cleanly re-encodes to a
// value that decodes to the same thing (round-trip stability).
func FuzzProtocolDecode(f *testing.F) {
	seeds := []string{
		`{"op":"register","name":"m001","addr":"10.0.0.1:70","state":"S1(full)","load":0.25,"gen":3}`,
		`{"op":"register_batch","digests":[{"name":"m001","addr":"10.0.0.1:70","state":"S1(full)","load":0.1,"gen":1,"unix_ms":1700000000000},{"name":"m002","state":"S2(reduced)"}]}`,
		`{"op":"heartbeat_batch","digests":[{"name":"m001","gen":2,"unix_ms":1700000000555}]}`,
		`{"op":"heartbeat","name":"m001","state":"S3(none)","gen":7}`,
		`{"op":"discover","limit":16}`,
		`{"op":"shardmap"}`,
		`{"op":"gossip","digests":[{"name":"p1","addr":"10.0.0.2:70","state":"S1(full)","unix_ms":1700000001000}]}`,
		`{"op":"submit","job":{"id":"j-1","cpu_seconds":2.5}}`,
		`{"op":"list"}`,
		`{"ok":true,"nodes":[{"name":"m001","addr":"10.0.0.1:70","alive":true,"state":"S1(full)"}]}`,
		`{"ok":true,"shard_map":{"gen":4,"shards":["a:1","b:2"]}}`,
		`{"ok":false,"error":"registry overloaded, retry later","retry_after_ms":200}`,
		`{"ok":true,"missing":["m003","m009"]}`,
		`{"ok":true,"digests":[{"name":"p1","unix_ms":1}]}`,
		`{`, `null`, `[]`, `""`, "\x00\x01\x02", `{"op":"register","load":1e309}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		const lim = 1 << 16
		if req, err := decodeRequest(data, lim); err == nil {
			enc, err := json.Marshal(req)
			if err != nil {
				t.Fatalf("decoded request does not re-encode: %v", err)
			}
			again, err := decodeRequest(append(enc, '\n'), lim)
			if err != nil {
				t.Fatalf("re-encoded request does not decode: %v (%s)", err, enc)
			}
			if len(again.Digests) != len(req.Digests) || again.Op != req.Op || again.Name != req.Name {
				t.Fatalf("request round trip drifted:\n was %+v\n now %+v", req, again)
			}
		}
		if resp, err := decodeResponse(data, lim); err == nil {
			enc, err := json.Marshal(resp)
			if err != nil {
				t.Fatalf("decoded response does not re-encode: %v", err)
			}
			again, err := decodeResponse(append(enc, '\n'), lim)
			if err != nil {
				t.Fatalf("re-encoded response does not decode: %v (%s)", err, enc)
			}
			if again.OK != resp.OK || again.RetryAfterMS != resp.RetryAfterMS ||
				len(again.Nodes) != len(resp.Nodes) || len(again.Missing) != len(resp.Missing) {
				t.Fatalf("response round trip drifted:\n was %+v\n now %+v", resp, again)
			}
		}
	})
}

// FuzzWALReplay feeds arbitrary bytes to the WAL replay path. Invariants:
// no panic, no allocation driven by a corrupt length header, the reported
// good-offset never exceeds the input, and truncating to that offset
// replays the same record count cleanly (replay is a prefix function).
func FuzzWALReplay(f *testing.F) {
	var log []byte
	for _, rec := range []walRecord{
		{kind: walKindUpsert, entries: []walEntry{
			{d: NodeDigest{Name: "m001", Addr: "127.0.0.1:9001", State: "S1(full)", Load: 0.5, Gen: 2, UnixMS: 1700000000000}, lastSeenMS: 1700000000000},
		}},
		{kind: walKindRemove, name: "m001"},
		{kind: walKindShardMap, shardMap: ShardMap{Gen: 3, Shards: []string{"a:1", "b:2"}}},
		{kind: walKindRefresh, stampMS: 1700000001000, names: []string{"m001", "m002"}},
	} {
		log = appendWALFrame(log, encodeWALRecord(rec))
	}
	f.Add(log)
	f.Add(log[:len(log)-5])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0})
	f.Add(appendWALFrame(nil, []byte{99}))

	f.Fuzz(func(t *testing.T, data []byte) {
		n, off, _ := replayWALBytes(data, nil)
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("good offset %d outside input of %d bytes", off, len(data))
		}
		n2, off2, err2 := replayWALBytes(data[:off], nil)
		if n2 != n || off2 != off || err2 != nil {
			t.Fatalf("truncation to good offset not clean: n=%d->%d off=%d->%d err=%v", n, n2, off, off2, err2)
		}
	})
}
