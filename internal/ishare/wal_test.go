package ishare

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func walTestRecords() []walRecord {
	return []walRecord{
		{kind: walKindUpsert, entries: []walEntry{
			{d: NodeDigest{Name: "m001", Addr: "127.0.0.1:9001", State: "S1(full)", Load: 0.12, Gen: 3, UnixMS: 1700000000123}, lastSeenMS: 1700000000123},
			{d: NodeDigest{Name: "m002", Addr: "127.0.0.1:9002", State: "S2(reduced)", Load: 0.87, Gen: 1, UnixMS: 1700000000456}, lastSeenMS: 1700000000456},
		}},
		{kind: walKindRemove, name: "m001"},
		{kind: walKindShardMap, shardMap: ShardMap{Gen: 4, Shards: []string{"127.0.0.1:9001", "127.0.0.1:9002"}}},
		{kind: walKindUpsert, entries: []walEntry{
			{d: NodeDigest{Name: "m003", State: "S1(full)", Gen: 9, UnixMS: 1700000001000}, lastSeenMS: 1700000001000},
		}},
		{kind: walKindRefresh, stampMS: 1700000002500, names: []string{"m002", "m003"}},
	}
}

func TestWALRecordCodecRoundTrip(t *testing.T) {
	for i, rec := range walTestRecords() {
		got, err := decodeWALRecord(encodeWALRecord(rec))
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("record %d: round trip mismatch:\n got %+v\nwant %+v", i, got, rec)
		}
	}
}

func TestWALAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opt := WALOptions{Dir: dir, SyncInterval: -1}
	w, n, err := openWAL(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("fresh WAL replayed %d records", n)
	}
	want := walTestRecords()
	for _, rec := range want {
		if _, err := w.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(true); err != nil {
		t.Fatal(err)
	}

	var got []walRecord
	w2, n, err := openWAL(opt, func(rec walRecord) { got = append(got, rec) })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close(true)
	if n != len(want) {
		t.Fatalf("replayed %d records, want %d", n, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered records differ:\n got %+v\nwant %+v", got, want)
	}
}

// TestWALEveryTruncationOffset mirrors the trace codec's crash-cut test:
// a log truncated at every possible byte offset must replay exactly the
// records whose frames are fully intact, report the torn tail's offset,
// and never panic or misdecode.
func TestWALEveryTruncationOffset(t *testing.T) {
	var full []byte
	var ends []int64 // cumulative end offset of each record's frame
	for _, rec := range walTestRecords() {
		payload := encodeWALRecord(rec)
		frame := make([]byte, walFrameHeader+len(payload))
		frame[0] = byte(len(payload))
		frame[1] = byte(len(payload) >> 8)
		frame[2] = byte(len(payload) >> 16)
		frame[3] = byte(len(payload) >> 24)
		crc := crc32.ChecksumIEEE(payload)
		frame[4] = byte(crc)
		frame[5] = byte(crc >> 8)
		frame[6] = byte(crc >> 16)
		frame[7] = byte(crc >> 24)
		copy(frame[walFrameHeader:], payload)
		full = append(full, frame...)
		ends = append(ends, int64(len(full)))
	}
	for cut := 0; cut <= len(full); cut++ {
		data := full[:cut]
		wantN, wantOff := 0, int64(0)
		for i, end := range ends {
			if int64(cut) >= end {
				wantN = i + 1
				wantOff = end
			}
		}
		n, off, err := replayWALBytes(data, nil)
		if n != wantN || off != wantOff {
			t.Fatalf("cut %d: replayed n=%d off=%d, want n=%d off=%d (err %v)", cut, n, off, wantN, wantOff, err)
		}
		if int64(cut) != wantOff && err == nil {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if int64(cut) == wantOff && err != nil {
			t.Fatalf("cut %d: clean log reported error %v", cut, err)
		}
	}
}

// TestWALRecoveryTruncatesTornTail checks the file-level behavior: a
// crash-cut log replays its intact prefix, the torn bytes are removed,
// and appends after recovery produce a clean log.
func TestWALRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	opt := WALOptions{Dir: dir, SyncInterval: -1}
	w, _, err := openWAL(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := walTestRecords()
	for _, rec := range recs {
		if _, err := w.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(false); err != nil { // crash: no final sync
		t.Fatal(err)
	}
	path := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the middle of the final record's frame.
	cut := int64(len(data)) - 3
	if err := os.Truncate(path, cut); err != nil {
		t.Fatal(err)
	}

	var got []walRecord
	w2, n, err := openWAL(opt, func(rec walRecord) { got = append(got, rec) })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs)-1 {
		t.Fatalf("replayed %d records, want %d", n, len(recs)-1)
	}
	if !reflect.DeepEqual(got, recs[:len(recs)-1]) {
		t.Fatalf("intact prefix mismatch")
	}
	// The torn tail is gone and the log accepts appends again.
	if _, err := w2.append(recs[len(recs)-1]); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(true); err != nil {
		t.Fatal(err)
	}
	var again []walRecord
	w3, n, err := openWAL(opt, func(rec walRecord) { again = append(again, rec) })
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close(true)
	if n != len(recs) || !reflect.DeepEqual(again, recs) {
		t.Fatalf("post-recovery append not recovered: n=%d", n)
	}
}

func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	opt := WALOptions{Dir: dir, SyncInterval: -1, CompactEvery: 3}
	w, _, err := openWAL(opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	state := []walRecord{
		{kind: walKindUpsert, entries: []walEntry{
			{d: NodeDigest{Name: "survivor", Addr: "127.0.0.1:9100", State: "S1(full)", Gen: 7, UnixMS: 5000}, lastSeenMS: 5000},
		}},
	}
	due := false
	for i := 0; i < 3; i++ {
		due, err = w.append(walTestRecords()[0])
		if err != nil {
			t.Fatal(err)
		}
	}
	if !due {
		t.Fatal("compaction not signalled after CompactEvery appends")
	}
	if err := w.compact(state); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, walFileName)); err != nil || fi.Size() != 0 {
		t.Fatalf("log not truncated after compaction: %v size=%d", err, fi.Size())
	}
	// One more append lands in the truncated log.
	post := walRecord{kind: walKindRemove, name: "gone"}
	if _, err := w.append(post); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(true); err != nil {
		t.Fatal(err)
	}
	var got []walRecord
	w2, _, err := openWAL(opt, func(rec walRecord) { got = append(got, rec) })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close(true)
	want := append(append([]walRecord(nil), state...), post)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-compaction recovery:\n got %+v\nwant %+v", got, want)
	}
}

func TestWALFsyncDelayInjection(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(WALOptions{Dir: dir, SyncInterval: -1, FsyncDelay: 30 * time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.append(walTestRecords()[0]); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("injected fsync delay not applied: sync took %v", d)
	}
	w.Close(false)
}

func TestWALRejectsOversizedAndCorruptFrames(t *testing.T) {
	// A frame claiming more bytes than the input holds must not allocate
	// or decode; a flipped payload byte must fail the CRC.
	rec := walTestRecords()[0]
	payload := encodeWALRecord(rec)
	frame := make([]byte, walFrameHeader+len(payload))
	frame[0] = 0xFF
	frame[1] = 0xFF
	frame[2] = 0xFF
	frame[3] = 0x7F // ~2 GiB claimed
	if n, _, err := replayWALBytes(frame, nil); n != 0 || err == nil {
		t.Fatalf("oversized frame: n=%d err=%v", n, err)
	}

	good := make([]byte, walFrameHeader+len(payload))
	good[0] = byte(len(payload))
	crc := crc32.ChecksumIEEE(payload)
	good[4] = byte(crc)
	good[5] = byte(crc >> 8)
	good[6] = byte(crc >> 16)
	good[7] = byte(crc >> 24)
	copy(good[walFrameHeader:], payload)
	bad := bytes.Clone(good)
	bad[walFrameHeader] ^= 0x40
	if n, _, err := replayWALBytes(bad, nil); n != 0 || err == nil {
		t.Fatalf("corrupt payload accepted: n=%d err=%v", n, err)
	}
}
