package ishare

import (
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// Registry is the publication/discovery service: nodes register and
// heartbeat; clients list published resources. A node whose heartbeats
// stop for longer than the TTL is reported dead — the URR signal.
//
// At fleet scale a registry is one shard of the control plane: node IDs
// are assigned to shards by a ShardRing, every shard serves the same
// versioned ShardMap for bootstrap, and registrations and heartbeats may
// arrive in batches carrying availability digests. Discovery with a
// Limit is served from per-score buckets — S1 nodes, then S2, then nodes
// with no digest — so a ranked candidate list costs O(limit), not a scan
// of every registered node.
type Registry struct {
	ttl time.Duration
	lim Limits

	mu    sync.RWMutex
	nodes map[string]*registryEntry
	// buckets index alive-or-not entries by digest score (see digestScore):
	// 0 = S1, 1 = S2, 2 = no digest, 3 = unavailable (S3–S5). Ranked
	// discovery walks buckets 0..2 and stops at Limit.
	buckets  [4]map[string]*registryEntry
	shardMap *ShardMap
	met      *registryMetrics // nil until Instrument
	log      *slog.Logger     // nil until Instrument

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

type registryEntry struct {
	info     NodeInfo
	lastSeen time.Time
	bucket   int
}

// digestScore buckets a reported state for ranked discovery: S1 hosts
// guests at full speed, S2 at lowest priority, an empty state means the
// node never reported a digest (a legacy agent the broker must Info-query)
// and anything else cannot host a guest at all.
func digestScore(state string) int {
	switch s := rankState(state); {
	case s >= 0:
		return s
	case state == "":
		return 2
	default:
		return 3
	}
}

// NewRegistry starts a registry listening on addr (use "127.0.0.1:0" for
// an ephemeral test port). ttl is the heartbeat freshness bound. Protocol
// exchanges use the default Limits; see NewRegistryWithLimits.
func NewRegistry(addr string, ttl time.Duration) (*Registry, error) {
	return NewRegistryWithLimits(addr, ttl, Limits{})
}

// NewRegistryWithLimits is NewRegistry with explicit per-exchange bounds
// on message size and handler I/O deadlines.
func NewRegistryWithLimits(addr string, ttl time.Duration, lim Limits) (*Registry, error) {
	if ttl <= 0 {
		return nil, fmt.Errorf("ishare: registry TTL must be positive, got %v", ttl)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ishare: registry listen: %w", err)
	}
	r := &Registry{
		ttl:    ttl,
		lim:    lim,
		nodes:  make(map[string]*registryEntry),
		ln:     ln,
		closed: make(chan struct{}),
	}
	for i := range r.buckets {
		r.buckets[i] = make(map[string]*registryEntry)
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the registry's dial address.
func (r *Registry) Addr() string { return r.ln.Addr().String() }

// SetShardMap installs the versioned shard list this registry serves to
// bootstrapping clients. Every shard of a deployment should carry the
// same map; a single-registry deployment can leave it unset.
func (r *Registry) SetShardMap(m ShardMap) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cp := ShardMap{Gen: m.Gen, Shards: append([]string(nil), m.Shards...)}
	r.shardMap = &cp
}

// Instrument attaches an obs registry (per-op request counters, node and
// alive-node gauges) and an optional structured logger. The metric
// families are registered eagerly so a scrape shows them before the first
// exchange. Call before serving traffic begins; passing a nil reg is a
// no-op for metrics.
func (r *Registry) Instrument(reg *obs.Registry, logger *slog.Logger) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg != nil {
		r.met = newRegistryMetrics(reg)
	}
	if logger != nil {
		r.log = logger
	}
}

// Close stops the registry.
func (r *Registry) Close() error {
	select {
	case <-r.closed:
		return nil
	default:
	}
	close(r.closed)
	err := r.ln.Close()
	r.wg.Wait()
	return err
}

func (r *Registry) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
				continue
			}
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			serveConn(conn, r.lim, r.handle)
		}()
	}
}

// upsertLocked creates or refreshes the entry for d, keeping the score
// bucket index consistent. A digest only replaces the stored one when it
// is newer (higher Gen, later stamp); a bare heartbeat (empty digest)
// refreshes liveness without touching the stored state.
func (r *Registry) upsertLocked(d NodeDigest, now time.Time) {
	e, ok := r.nodes[d.Name]
	if !ok {
		e = &registryEntry{info: NodeInfo{Name: d.Name}, bucket: -1}
		r.nodes[d.Name] = e
	}
	if d.Addr != "" {
		e.info.Addr = d.Addr
	}
	if d.State != "" {
		stored := NodeDigest{Gen: e.info.Gen, UnixMS: e.lastSeen.UnixMilli()}
		if e.info.State == "" || d.Newer(stored) {
			e.info.State = d.State
			e.info.Load = d.Load
			e.info.Gen = d.Gen
		}
	}
	e.lastSeen = now
	want := digestScore(e.info.State)
	if want != e.bucket {
		if e.bucket >= 0 {
			delete(r.buckets[e.bucket], e.info.Name)
		}
		r.buckets[want][e.info.Name] = e
		e.bucket = want
	}
}

func (r *Registry) removeLocked(name string) {
	if e, ok := r.nodes[name]; ok {
		if e.bucket >= 0 {
			delete(r.buckets[e.bucket], name)
		}
		delete(r.nodes, name)
	}
}

func (r *Registry) handle(req Request) *Response {
	r.mu.RLock()
	met, log := r.met, r.log
	r.mu.RUnlock()
	if met != nil {
		met.request(req.Op)
	}
	switch req.Op {
	case "register":
		if req.Name == "" || req.Addr == "" {
			return &Response{OK: false, Error: "register requires name and addr"}
		}
		r.mu.Lock()
		r.upsertLocked(NodeDigest{Name: req.Name, Addr: req.Addr, State: req.State, Load: req.Load, Gen: req.Gen}, time.Now())
		n := len(r.nodes)
		r.mu.Unlock()
		if met != nil {
			met.nodes.Set(float64(n))
		}
		if log != nil {
			log.Info("node registered", "trace", req.Trace, "name", req.Name, "addr", req.Addr)
		}
		return &Response{OK: true}
	case "register_batch":
		for _, d := range req.Digests {
			if d.Name == "" || d.Addr == "" {
				return &Response{OK: false, Error: "register_batch requires name and addr on every digest"}
			}
		}
		now := time.Now()
		r.mu.Lock()
		for _, d := range req.Digests {
			r.upsertLocked(d, now)
		}
		n := len(r.nodes)
		r.mu.Unlock()
		if met != nil {
			met.nodes.Set(float64(n))
			met.batched.Add(uint64(len(req.Digests)))
		}
		return &Response{OK: true}
	case "unregister":
		r.mu.Lock()
		r.removeLocked(req.Name)
		n := len(r.nodes)
		r.mu.Unlock()
		if met != nil {
			met.nodes.Set(float64(n))
		}
		if log != nil {
			log.Info("node unregistered", "trace", req.Trace, "name", req.Name)
		}
		return &Response{OK: true}
	case "heartbeat":
		now := time.Now()
		r.mu.Lock()
		_, ok := r.nodes[req.Name]
		if ok {
			r.upsertLocked(NodeDigest{Name: req.Name, State: req.State, Load: req.Load, Gen: req.Gen}, now)
		}
		r.mu.Unlock()
		if !ok {
			if met != nil {
				met.unknownHB.Inc()
			}
			if log != nil {
				log.Warn("heartbeat from unknown node", "name", req.Name)
			}
			return &Response{OK: false, Error: "unknown node " + req.Name}
		}
		return &Response{OK: true}
	case "heartbeat_batch":
		now := time.Now()
		var missing []string
		r.mu.Lock()
		for _, d := range req.Digests {
			if _, ok := r.nodes[d.Name]; !ok {
				missing = append(missing, d.Name)
				continue
			}
			d.Addr = "" // liveness refresh, not re-registration
			r.upsertLocked(d, now)
		}
		r.mu.Unlock()
		if met != nil {
			met.batched.Add(uint64(len(req.Digests)))
			if len(missing) > 0 {
				met.unknownHB.Add(uint64(len(missing)))
			}
		}
		return &Response{OK: true, Missing: missing}
	case "list":
		if req.Limit > 0 {
			return r.listRanked(req.Limit)
		}
		now := time.Now()
		r.mu.RLock()
		nodes := make([]NodeInfo, 0, len(r.nodes))
		alive := 0
		for _, e := range r.nodes {
			info := e.info
			info.Alive = now.Sub(e.lastSeen) <= r.ttl
			if info.Alive {
				alive++
			}
			info.LastSeenMS = e.lastSeen.UnixMilli()
			nodes = append(nodes, info)
		}
		r.mu.RUnlock()
		if met != nil {
			met.alive.Set(float64(alive))
		}
		return &Response{OK: true, Nodes: nodes}
	case "shardmap":
		r.mu.RLock()
		m := r.shardMap
		r.mu.RUnlock()
		if m == nil {
			return &Response{OK: false, Error: "no shard map configured"}
		}
		cp := ShardMap{Gen: m.Gen, Shards: append([]string(nil), m.Shards...)}
		return &Response{OK: true, ShardMap: &cp}
	default:
		return &Response{OK: false, Error: "unknown op " + req.Op}
	}
}

// listRanked serves discovery: up to limit alive nodes from the best
// available score buckets. It walks S1, then S2, then digest-less entries
// and stops as soon as limit candidates are found, so its cost is bounded
// by the limit (plus dead entries skipped along the way), not by the
// shard's total population — the property that keeps discovery flat as a
// shard grows to hundreds of thousands of nodes. Within one bucket the
// choice among alive nodes is map-order arbitrary: every returned S1 node
// is as good as any other under the paper's placement rule, which ranks
// by state class. The response itself is ordered (state, load, name) so
// callers merge deterministically ranked lists.
func (r *Registry) listRanked(limit int) *Response {
	now := time.Now()
	nodes := make([]NodeInfo, 0, limit)
	r.mu.RLock()
	for score := 0; score <= 2 && len(nodes) < limit; score++ {
		for _, e := range r.buckets[score] {
			if now.Sub(e.lastSeen) > r.ttl {
				continue
			}
			info := e.info
			info.Alive = true
			info.LastSeenMS = e.lastSeen.UnixMilli()
			nodes = append(nodes, info)
			if len(nodes) >= limit {
				break
			}
		}
	}
	r.mu.RUnlock()
	sortCandidateInfos(nodes)
	return &Response{OK: true, Nodes: nodes}
}

// sortCandidateInfos orders a ranked discovery response best-first:
// digest score, then load, then name.
func sortCandidateInfos(nodes []NodeInfo) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && candidateInfoLess(nodes[j], nodes[j-1]); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

func candidateInfoLess(a, b NodeInfo) bool {
	sa, sb := digestScore(a.State), digestScore(b.State)
	if sa != sb {
		return sa < sb
	}
	if a.Load != b.Load {
		return a.Load < b.Load
	}
	return a.Name < b.Name
}
