package ishare

import (
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
)

// Registry is the publication/discovery service: nodes register and
// heartbeat; clients list published resources. A node whose heartbeats
// stop for longer than the TTL is reported dead — the URR signal.
type Registry struct {
	ttl time.Duration
	lim Limits

	mu    sync.Mutex
	nodes map[string]*registryEntry
	met   *registryMetrics // nil until Instrument
	log   *slog.Logger     // nil until Instrument

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

type registryEntry struct {
	info     NodeInfo
	lastSeen time.Time
}

// NewRegistry starts a registry listening on addr (use "127.0.0.1:0" for
// an ephemeral test port). ttl is the heartbeat freshness bound. Protocol
// exchanges use the default Limits; see NewRegistryWithLimits.
func NewRegistry(addr string, ttl time.Duration) (*Registry, error) {
	return NewRegistryWithLimits(addr, ttl, Limits{})
}

// NewRegistryWithLimits is NewRegistry with explicit per-exchange bounds
// on message size and handler I/O deadlines.
func NewRegistryWithLimits(addr string, ttl time.Duration, lim Limits) (*Registry, error) {
	if ttl <= 0 {
		return nil, fmt.Errorf("ishare: registry TTL must be positive, got %v", ttl)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ishare: registry listen: %w", err)
	}
	r := &Registry{
		ttl:    ttl,
		lim:    lim,
		nodes:  make(map[string]*registryEntry),
		ln:     ln,
		closed: make(chan struct{}),
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

// Addr returns the registry's dial address.
func (r *Registry) Addr() string { return r.ln.Addr().String() }

// Instrument attaches an obs registry (per-op request counters, node and
// alive-node gauges) and an optional structured logger. The metric
// families are registered eagerly so a scrape shows them before the first
// exchange. Call before serving traffic begins; passing a nil reg is a
// no-op for metrics.
func (r *Registry) Instrument(reg *obs.Registry, logger *slog.Logger) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg != nil {
		r.met = newRegistryMetrics(reg)
	}
	if logger != nil {
		r.log = logger
	}
}

// Close stops the registry.
func (r *Registry) Close() error {
	select {
	case <-r.closed:
		return nil
	default:
	}
	close(r.closed)
	err := r.ln.Close()
	r.wg.Wait()
	return err
}

func (r *Registry) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
				continue
			}
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			serveConn(conn, r.lim, r.handle)
		}()
	}
}

func (r *Registry) handle(req Request) *Response {
	r.mu.Lock()
	met, log := r.met, r.log
	r.mu.Unlock()
	if met != nil {
		met.request(req.Op)
	}
	switch req.Op {
	case "register":
		if req.Name == "" || req.Addr == "" {
			return &Response{OK: false, Error: "register requires name and addr"}
		}
		r.mu.Lock()
		r.nodes[req.Name] = &registryEntry{
			info:     NodeInfo{Name: req.Name, Addr: req.Addr},
			lastSeen: time.Now(),
		}
		n := len(r.nodes)
		r.mu.Unlock()
		if met != nil {
			met.nodes.Set(float64(n))
		}
		if log != nil {
			log.Info("node registered", "trace", req.Trace, "name", req.Name, "addr", req.Addr)
		}
		return &Response{OK: true}
	case "unregister":
		r.mu.Lock()
		delete(r.nodes, req.Name)
		n := len(r.nodes)
		r.mu.Unlock()
		if met != nil {
			met.nodes.Set(float64(n))
		}
		if log != nil {
			log.Info("node unregistered", "trace", req.Trace, "name", req.Name)
		}
		return &Response{OK: true}
	case "heartbeat":
		r.mu.Lock()
		e, ok := r.nodes[req.Name]
		if ok {
			e.lastSeen = time.Now()
		}
		r.mu.Unlock()
		if !ok {
			if met != nil {
				met.unknownHB.Inc()
			}
			if log != nil {
				log.Warn("heartbeat from unknown node", "name", req.Name)
			}
			return &Response{OK: false, Error: "unknown node " + req.Name}
		}
		return &Response{OK: true}
	case "list":
		now := time.Now()
		r.mu.Lock()
		nodes := make([]NodeInfo, 0, len(r.nodes))
		alive := 0
		for _, e := range r.nodes {
			info := e.info
			info.Alive = now.Sub(e.lastSeen) <= r.ttl
			if info.Alive {
				alive++
			}
			info.LastSeenMS = e.lastSeen.UnixMilli()
			nodes = append(nodes, info)
		}
		r.mu.Unlock()
		if met != nil {
			met.alive.Set(float64(alive))
		}
		return &Response{OK: true, Nodes: nodes}
	default:
		return &Response{OK: false, Error: "unknown op " + req.Op}
	}
}
