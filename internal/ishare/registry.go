package ishare

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/forecast"
	"repro/internal/obs"
)

// Registry is the publication/discovery service: nodes register and
// heartbeat; clients list published resources. A node whose heartbeats
// stop for longer than the TTL is reported dead — the URR signal.
//
// At fleet scale a registry is one shard of the control plane: node IDs
// are assigned to shards by a ShardRing, every shard serves the same
// versioned ShardMap for bootstrap, and registrations and heartbeats may
// arrive in batches carrying availability digests. Discovery with a
// Limit is served from per-score buckets — S1 nodes, then S2, then nodes
// with no digest — so a ranked candidate list costs O(limit), not a scan
// of every registered node.
//
// A registry configured with a WAL is crash-recoverable: every mutating
// request is logged before it is acked, so a shard killed at any instant
// restarts (NewRegistryWithOptions over the same directory) with every
// acked registration intact. A registry configured with MaxInflight
// sheds load instead of collapsing: connections beyond the inflight
// bound wait in a bounded queue, and past that are answered with a
// retry-after hint — the protection that lets a recovering shard survive
// the re-register thundering herd.
type Registry struct {
	ttl time.Duration
	lim Limits
	opt RegistryOptions

	mu    sync.RWMutex
	nodes map[string]*registryEntry
	// buckets index alive-or-not entries by digest score (see digestScore):
	// 0 = S1, 1 = S2, 2 = no digest, 3 = unavailable (S3–S5). Ranked
	// discovery walks buckets 0..2 and stops at Limit.
	buckets  [4]map[string]*registryEntry
	shardMap *ShardMap
	met      *registryMetrics // nil until Instrument
	log      *slog.Logger     // nil until Instrument

	// fc, when non-nil, is the embedded online forecaster: every digest
	// state transition (live or WAL-replayed) feeds it, and the
	// `forecast` op answers from it. Set once at construction, so reads
	// need no lock; it carries its own mutex, always acquired after r.mu.
	fc *forecast.Service

	wal       *wal // nil without durability
	recovered int  // records replayed at startup
	// Scratch for splitting a heartbeat batch into changed digests and
	// pure refreshes before logging; guarded by mu, reused across batches
	// so the durable hot path stays allocation-free.
	walChanged   []NodeDigest
	walRefreshed []string

	inflight chan struct{} // nil = unbounded admission
	queue    chan struct{}
	sheds    atomic.Uint64

	ln        net.Listener
	wg        sync.WaitGroup
	crashed   atomic.Bool
	closeOnce sync.Once
	closed    chan struct{}
}

type registryEntry struct {
	info     NodeInfo
	lastSeen time.Time
	bucket   int
}

// RegistryOptions is the full configuration of one registry shard.
// The zero value of every field selects the pre-durability behavior:
// no WAL, unbounded admission, wall-clock time.
type RegistryOptions struct {
	// TTL is the heartbeat freshness bound (required, positive).
	TTL time.Duration
	// Limits bounds each protocol exchange.
	Limits Limits
	// WAL, when set, makes the shard durable: acked mutations are logged
	// to WAL.Dir before the ack and replayed on the next construction
	// over the same directory.
	WAL *WALOptions
	// MaxInflight bounds concurrently served connections; zero is
	// unbounded (no admission control).
	MaxInflight int
	// MaxQueue bounds connections waiting for an inflight slot (default
	// 4x MaxInflight). Beyond it, connections are shed immediately.
	MaxQueue int
	// QueueWait bounds how long a queued connection waits for a slot
	// before being shed (default 100 ms).
	QueueWait time.Duration
	// RetryAfter is the backoff hint stamped on shed responses
	// (default 200 ms).
	RetryAfter time.Duration
	// Now overrides the clock (chaos injects skew here); nil = time.Now.
	Now func() time.Time
	// Forecast, when set, embeds an online availability forecaster: the
	// shard derives each node's unavailability-event stream from its
	// digest state transitions (heartbeats, batches, gossip merges and
	// WAL replay all flow through the same upsert) and serves per-node
	// survival forecasts to the `forecast` op.
	Forecast *ForecastOptions
}

// ForecastOptions configures a registry shard's embedded forecaster.
type ForecastOptions struct {
	// Scale is virtual seconds of fleet time per wall second (default 1).
	// Loadtests that replay days of virtual fleet time in wall seconds
	// run their registries with a large Scale so the forecaster's
	// calendar arithmetic sees the fleet's clock, not the wall's.
	Scale float64
	// EpochMS anchors wall unix-milliseconds to the virtual span start;
	// zero anchors at the first observed digest stamp.
	EpochMS int64
}

func (o RegistryOptions) withDefaults() RegistryOptions {
	if o.MaxInflight > 0 {
		if o.MaxQueue <= 0 {
			o.MaxQueue = 4 * o.MaxInflight
		}
		if o.QueueWait <= 0 {
			o.QueueWait = 100 * time.Millisecond
		}
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 200 * time.Millisecond
	}
	return o
}

// digestScore buckets a reported state for ranked discovery: S1 hosts
// guests at full speed, S2 at lowest priority, an empty state means the
// node never reported a digest (a legacy agent the broker must Info-query)
// and anything else cannot host a guest at all.
func digestScore(state string) int {
	switch s := rankState(state); {
	case s >= 0:
		return s
	case state == "":
		return 2
	default:
		return 3
	}
}

// NewRegistry starts a registry listening on addr (use "127.0.0.1:0" for
// an ephemeral test port). ttl is the heartbeat freshness bound. Protocol
// exchanges use the default Limits; see NewRegistryWithLimits.
func NewRegistry(addr string, ttl time.Duration) (*Registry, error) {
	return NewRegistryWithLimits(addr, ttl, Limits{})
}

// NewRegistryWithLimits is NewRegistry with explicit per-exchange bounds
// on message size and handler I/O deadlines.
func NewRegistryWithLimits(addr string, ttl time.Duration, lim Limits) (*Registry, error) {
	return NewRegistryWithOptions(addr, RegistryOptions{TTL: ttl, Limits: lim})
}

// NewRegistryWithOptions starts a registry shard with the full option
// set: durability, admission control and an injectable clock. When
// opt.WAL names a directory with an existing log, the shard recovers its
// state from it before serving the first request.
func NewRegistryWithOptions(addr string, opt RegistryOptions) (*Registry, error) {
	if opt.TTL <= 0 {
		return nil, fmt.Errorf("ishare: registry TTL must be positive, got %v", opt.TTL)
	}
	opt = opt.withDefaults()
	r := &Registry{
		ttl:    opt.TTL,
		lim:    opt.Limits,
		opt:    opt,
		nodes:  make(map[string]*registryEntry),
		closed: make(chan struct{}),
	}
	for i := range r.buckets {
		r.buckets[i] = make(map[string]*registryEntry)
	}
	if opt.Forecast != nil {
		// Created before WAL recovery so replayed digests feed it too.
		svc, err := forecast.NewService(forecast.ServiceConfig{
			Scale:   opt.Forecast.Scale,
			EpochMS: opt.Forecast.EpochMS,
		})
		if err != nil {
			return nil, fmt.Errorf("ishare: forecast service: %w", err)
		}
		r.fc = svc
	}
	if opt.WAL != nil {
		w, n, err := openWAL(*opt.WAL, r.applyWALRecord)
		if err != nil {
			return nil, err
		}
		r.wal = w
		r.recovered = n
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		if r.wal != nil {
			r.wal.Close(true)
		}
		return nil, fmt.Errorf("ishare: registry listen: %w", err)
	}
	r.ln = ln
	if opt.MaxInflight > 0 {
		r.inflight = make(chan struct{}, opt.MaxInflight)
		r.queue = make(chan struct{}, opt.MaxQueue)
	}
	r.wg.Add(1)
	go r.acceptLoop()
	return r, nil
}

func (r *Registry) now() time.Time {
	if r.opt.Now != nil {
		return r.opt.Now()
	}
	return time.Now()
}

// applyWALRecord replays one logged mutation during recovery (before the
// listener exists, so no locking races with handlers).
func (r *Registry) applyWALRecord(rec walRecord) {
	switch rec.kind {
	case walKindUpsert:
		for _, e := range rec.entries {
			r.upsertLocked(e.d, time.UnixMilli(e.lastSeenMS))
		}
	case walKindRemove:
		r.removeLocked(rec.name)
	case walKindShardMap:
		if r.shardMap == nil || rec.shardMap.Gen > r.shardMap.Gen {
			cp := rec.shardMap
			cp.Shards = append([]string(nil), rec.shardMap.Shards...)
			r.shardMap = &cp
		}
	case walKindRefresh:
		t := time.UnixMilli(rec.stampMS)
		for _, name := range rec.names {
			if e, ok := r.nodes[name]; ok && t.After(e.lastSeen) {
				e.lastSeen = t
			}
		}
	}
}

// walAppendLocked logs one mutation before it is acked; the caller holds
// r.mu. A nil error is the precondition for acking. When the append
// brings the log to its compaction threshold, the full state is
// snapshotted (consistently — we hold the state lock) and the log
// truncated.
func (r *Registry) walAppendLocked(rec walRecord) error {
	if r.wal == nil {
		return nil
	}
	due, err := r.wal.append(rec)
	return r.walAppendedLocked(due, err)
}

// walUpsertLocked logs a digest batch observed at now — the serving hot
// path, which skips the intermediate walRecord entirely.
func (r *Registry) walUpsertLocked(ds []NodeDigest, now time.Time) error {
	if r.wal == nil {
		return nil
	}
	due, err := r.wal.appendUpsert(ds, now.UnixMilli())
	return r.walAppendedLocked(due, err)
}

// walRefreshLocked logs a batch of pure liveness refreshes — one shared
// stamp, many names — instead of full entries.
func (r *Registry) walRefreshLocked(names []string, now time.Time) error {
	if r.wal == nil {
		return nil
	}
	due, err := r.wal.appendRefresh(names, now.UnixMilli())
	return r.walAppendedLocked(due, err)
}

func (r *Registry) walAppendedLocked(due bool, err error) error {
	if err != nil {
		return err
	}
	if r.met != nil {
		r.met.walAppends.Inc()
	}
	if due {
		if err := r.wal.compact(r.snapshotRecordsLocked()); err != nil {
			// Compaction failure is not fatal: the log simply keeps
			// growing until a later attempt succeeds.
			if r.log != nil {
				r.log.Warn("WAL compaction failed", "err", err.Error())
			}
		} else if r.met != nil {
			r.met.walCompactions.Inc()
		}
	}
	return nil
}

// snapshotRecordsLocked serializes the full registry state as WAL
// records; the caller holds r.mu.
func (r *Registry) snapshotRecordsLocked() []walRecord {
	var recs []walRecord
	if r.shardMap != nil {
		recs = append(recs, walRecord{kind: walKindShardMap, shardMap: *r.shardMap})
	}
	const batch = 512
	entries := make([]walEntry, 0, batch)
	flush := func() {
		if len(entries) > 0 {
			recs = append(recs, walRecord{kind: walKindUpsert, entries: entries})
			entries = make([]walEntry, 0, batch)
		}
	}
	for _, e := range r.nodes {
		entries = append(entries, walEntry{
			d: NodeDigest{Name: e.info.Name, Addr: e.info.Addr, State: e.info.State,
				Load: e.info.Load, Gen: e.info.Gen, UnixMS: e.lastSeen.UnixMilli()},
			lastSeenMS: e.lastSeen.UnixMilli(),
		})
		if len(entries) >= batch {
			flush()
		}
	}
	flush()
	return recs
}

// Addr returns the registry's dial address.
func (r *Registry) Addr() string { return r.ln.Addr().String() }

// RecoveredRecords reports how many WAL/snapshot records were replayed
// when this registry started.
func (r *Registry) RecoveredRecords() int { return r.recovered }

// Sheds reports how many connections admission control has shed.
func (r *Registry) Sheds() uint64 { return r.sheds.Load() }

// SetShardMap installs the versioned shard list this registry serves to
// bootstrapping clients. Installs are monotonic in Gen: a map older than
// (or as old as) the current one is ignored, so replays and out-of-order
// installs can never roll the served map backward. Every shard of a
// deployment should carry the same map; a single-registry deployment can
// leave it unset.
func (r *Registry) SetShardMap(m ShardMap) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shardMap != nil && m.Gen <= r.shardMap.Gen {
		return
	}
	cp := ShardMap{Gen: m.Gen, Shards: append([]string(nil), m.Shards...)}
	r.shardMap = &cp
	if err := r.walAppendLocked(walRecord{kind: walKindShardMap, shardMap: cp}); err != nil && r.log != nil {
		r.log.Warn("WAL append for shard map failed", "err", err.Error())
	}
}

// Instrument attaches an obs registry (per-op request counters, node and
// alive-node gauges) and an optional structured logger. The metric
// families are registered eagerly so a scrape shows them before the first
// exchange. Call before serving traffic begins; passing a nil reg is a
// no-op for metrics.
func (r *Registry) Instrument(reg *obs.Registry, logger *slog.Logger) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg != nil {
		r.met = newRegistryMetrics(reg)
		r.met.recovered.Set(float64(r.recovered))
	}
	if logger != nil {
		r.log = logger
	}
}

// Close stops the registry gracefully: the listener closes, in-flight
// handlers finish, and a configured WAL is fsynced before closing.
func (r *Registry) Close() error {
	err := r.stop()
	r.wg.Wait()
	if r.wal != nil {
		if werr := r.wal.Close(true); err == nil {
			err = werr
		}
	}
	return err
}

// Crash kills the registry the way SIGKILL would: accepting stops,
// in-flight exchanges are dropped without a response, and the WAL is
// abandoned without a final fsync — recovery gets exactly what write()
// already delivered. The listener port is released so a restart can
// rebind the same address.
func (r *Registry) Crash() error {
	r.crashed.Store(true)
	err := r.stop()
	r.wg.Wait()
	if r.wal != nil {
		if werr := r.wal.Close(false); err == nil {
			err = werr
		}
	}
	return err
}

// Shutdown drains the registry: stop accepting, wait for in-flight
// requests up to the context deadline, then flush and close the WAL.
// It returns an error when the drain deadline expired first.
func (r *Registry) Shutdown(ctx context.Context) error {
	err := r.stop()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = fmt.Errorf("ishare: registry drain deadline expired")
	}
	if r.wal != nil {
		if werr := r.wal.Close(true); err == nil {
			err = werr
		}
	}
	if drainErr != nil {
		return drainErr
	}
	return err
}

// stop closes the listener and the closed channel exactly once.
func (r *Registry) stop() error {
	var err error
	r.closeOnce.Do(func() {
		close(r.closed)
		err = r.ln.Close()
	})
	return err
}

func (r *Registry) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
				continue
			}
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			if !r.admit(conn) {
				return
			}
			if r.inflight != nil {
				defer func() { <-r.inflight }()
			}
			serveConn(conn, r.lim, r.handle)
		}()
	}
}

// admit applies admission control to one accepted connection: take an
// inflight slot immediately, or wait for one in the bounded queue up to
// QueueWait, or shed with a retry-after hint. Shedding still reads the
// request (cheaply) so the peer receives a structured response instead
// of a reset. Returns true when the caller holds an inflight slot.
func (r *Registry) admit(conn net.Conn) bool {
	if r.inflight == nil {
		return true
	}
	select {
	case r.inflight <- struct{}{}:
		return true
	default:
	}
	select {
	case r.queue <- struct{}{}:
	default: // queue full: shed immediately
		r.shed(conn)
		return false
	}
	defer func() { <-r.queue }()
	t := time.NewTimer(r.opt.QueueWait)
	defer t.Stop()
	select {
	case r.inflight <- struct{}{}:
		return true
	case <-t.C:
		r.shed(conn)
		return false
	case <-r.closed:
		conn.Close()
		return false
	}
}

// shed answers one connection with an overload response carrying the
// retry-after hint, without executing its request.
func (r *Registry) shed(conn net.Conn) {
	r.sheds.Add(1)
	r.mu.RLock()
	met := r.met
	r.mu.RUnlock()
	if met != nil {
		met.sheds.Inc()
	}
	retryMS := r.opt.RetryAfter.Milliseconds()
	serveConn(conn, r.lim, func(req Request) *Response {
		return &Response{OK: false, Error: "registry overloaded, retry later", RetryAfterMS: retryMS}
	})
}

// upsertLocked creates or refreshes the entry for d, keeping the score
// bucket index consistent. A digest only replaces the stored one when it
// is newer (higher Gen, later stamp); a bare heartbeat (empty digest)
// refreshes liveness without touching the stored state. It reports
// whether anything beyond the liveness stamp changed — a false return is
// a pure refresh, which the WAL logs in compact form.
func (r *Registry) upsertLocked(d NodeDigest, now time.Time) bool {
	e, ok := r.nodes[d.Name]
	if !ok {
		e = &registryEntry{info: NodeInfo{Name: d.Name}, bucket: -1}
		r.nodes[d.Name] = e
	}
	before := e.info
	if d.Addr != "" {
		e.info.Addr = d.Addr
	}
	if d.State != "" {
		stored := NodeDigest{Gen: e.info.Gen, UnixMS: e.lastSeen.UnixMilli()}
		if e.info.State == "" || d.Newer(stored) {
			e.info.State = d.State
			e.info.Load = d.Load
			e.info.Gen = d.Gen
			if r.fc != nil {
				stamp := d.UnixMS
				if stamp == 0 {
					stamp = now.UnixMilli()
				}
				// The service ignores unparseable states and cannot fail
				// on ones it accepts (the detector config is its zero
				// value, which always constructs).
				_ = r.fc.ObserveState(d.Name, d.State, stamp)
			}
		}
	}
	if now.After(e.lastSeen) {
		e.lastSeen = now
	}
	want := digestScore(e.info.State)
	if want != e.bucket {
		if e.bucket >= 0 {
			delete(r.buckets[e.bucket], e.info.Name)
		}
		r.buckets[want][e.info.Name] = e
		e.bucket = want
	}
	return !ok || e.info != before
}

func (r *Registry) removeLocked(name string) {
	if e, ok := r.nodes[name]; ok {
		if e.bucket >= 0 {
			delete(r.buckets[e.bucket], name)
		}
		delete(r.nodes, name)
	}
}

var errWALAppend = &Response{OK: false, Error: "registry WAL append failed, mutation not durable"}

func (r *Registry) handle(req Request) *Response {
	if r.crashed.Load() {
		return nil // a crashed process answers nothing
	}
	r.mu.RLock()
	met, log := r.met, r.log
	r.mu.RUnlock()
	if met != nil {
		met.request(req.Op)
	}
	switch req.Op {
	case "register":
		if req.Name == "" || req.Addr == "" {
			return &Response{OK: false, Error: "register requires name and addr"}
		}
		now := r.now()
		d := NodeDigest{Name: req.Name, Addr: req.Addr, State: req.State, Load: req.Load, Gen: req.Gen}
		r.mu.Lock()
		r.upsertLocked(d, now)
		err := r.walUpsertLocked([]NodeDigest{d}, now)
		n := len(r.nodes)
		r.mu.Unlock()
		if err != nil {
			return errWALAppend
		}
		if met != nil {
			met.nodes.Set(float64(n))
		}
		if log != nil {
			log.Info("node registered", "trace", req.Trace, "name", req.Name, "addr", req.Addr)
		}
		return &Response{OK: true}
	case "register_batch":
		for _, d := range req.Digests {
			if d.Name == "" || d.Addr == "" {
				return &Response{OK: false, Error: "register_batch requires name and addr on every digest"}
			}
		}
		now := r.now()
		r.mu.Lock()
		for _, d := range req.Digests {
			r.upsertLocked(d, now)
		}
		err := r.walUpsertLocked(req.Digests, now)
		n := len(r.nodes)
		r.mu.Unlock()
		if err != nil {
			return errWALAppend
		}
		if met != nil {
			met.nodes.Set(float64(n))
			met.batched.Add(uint64(len(req.Digests)))
		}
		return &Response{OK: true}
	case "unregister":
		r.mu.Lock()
		r.removeLocked(req.Name)
		err := r.walAppendLocked(walRecord{kind: walKindRemove, name: req.Name})
		n := len(r.nodes)
		r.mu.Unlock()
		if err != nil {
			return errWALAppend
		}
		if met != nil {
			met.nodes.Set(float64(n))
		}
		if log != nil {
			log.Info("node unregistered", "trace", req.Trace, "name", req.Name)
		}
		return &Response{OK: true}
	case "heartbeat":
		now := r.now()
		d := NodeDigest{Name: req.Name, State: req.State, Load: req.Load, Gen: req.Gen}
		r.mu.Lock()
		_, ok := r.nodes[req.Name]
		var err error
		if ok {
			if r.upsertLocked(d, now) {
				err = r.walUpsertLocked([]NodeDigest{d}, now)
			} else {
				err = r.walRefreshLocked([]string{d.Name}, now)
			}
		}
		r.mu.Unlock()
		if !ok {
			if met != nil {
				met.unknownHB.Inc()
			}
			if log != nil {
				log.Warn("heartbeat from unknown node", "name", req.Name)
			}
			return &Response{OK: false, Error: "unknown node " + req.Name}
		}
		if err != nil {
			return errWALAppend
		}
		return &Response{OK: true}
	case "heartbeat_batch":
		now := r.now()
		var missing []string
		r.mu.Lock()
		durable := r.wal != nil
		changed := r.walChanged[:0]     // digests that advanced stored state
		refreshed := r.walRefreshed[:0] // pure liveness refreshes
		for _, d := range req.Digests {
			if _, ok := r.nodes[d.Name]; !ok {
				missing = append(missing, d.Name)
				continue
			}
			d.Addr = "" // liveness refresh, not re-registration
			advanced := r.upsertLocked(d, now)
			if !durable {
				continue
			}
			if advanced {
				changed = append(changed, d)
			} else {
				refreshed = append(refreshed, d.Name)
			}
		}
		var err error
		if len(changed) > 0 {
			err = r.walUpsertLocked(changed, now)
		}
		if err == nil && len(refreshed) > 0 {
			err = r.walRefreshLocked(refreshed, now)
		}
		r.walChanged, r.walRefreshed = changed[:0], refreshed[:0]
		r.mu.Unlock()
		if err != nil {
			return errWALAppend
		}
		if met != nil {
			met.batched.Add(uint64(len(req.Digests)))
			if len(missing) > 0 {
				met.unknownHB.Add(uint64(len(missing)))
			}
		}
		return &Response{OK: true, Missing: missing}
	case "list":
		if req.Limit > 0 {
			return r.listRanked(req.Limit)
		}
		now := r.now()
		r.mu.RLock()
		nodes := make([]NodeInfo, 0, len(r.nodes))
		alive := 0
		for _, e := range r.nodes {
			info := e.info
			info.Alive = now.Sub(e.lastSeen) <= r.ttl
			if info.Alive {
				alive++
			}
			info.LastSeenMS = e.lastSeen.UnixMilli()
			nodes = append(nodes, info)
		}
		r.mu.RUnlock()
		if met != nil {
			met.alive.Set(float64(alive))
		}
		return &Response{OK: true, Nodes: nodes}
	case "forecast":
		if r.fc == nil {
			return &Response{OK: false, Error: "forecasting not enabled on this registry"}
		}
		if req.HorizonMS <= 0 {
			return &Response{OK: false, Error: "forecast requires a positive horizon_ms"}
		}
		var t0 time.Time
		if met != nil {
			t0 = time.Now()
		}
		nowMS := r.now().UnixMilli()
		horizon := time.Duration(req.HorizonMS) * time.Millisecond
		out := make([]ForecastInfo, 0, len(req.Names))
		r.mu.RLock()
		for _, name := range req.Names {
			f, known := r.fc.Forecast(name, horizon, nowMS)
			fi := ForecastInfo{
				Name:           name,
				Known:          known,
				Survival:       f.Survival,
				EWMASurvival:   f.EWMASurvival,
				RateSurvival:   f.RateSurvival,
				ExpectedEvents: f.ExpectedEvents,
				Samples:        f.Samples,
			}
			if e, ok := r.nodes[name]; ok {
				fi.State = e.info.State
				fi.Gen = e.info.Gen
				fi.UnixMS = e.lastSeen.UnixMilli()
			}
			out = append(out, fi)
		}
		r.mu.RUnlock()
		if met != nil {
			met.forecasts.Add(uint64(len(out)))
			met.forecastLatency.Observe(time.Since(t0).Seconds())
		}
		return &Response{OK: true, Forecasts: out}
	case "shardmap":
		r.mu.RLock()
		m := r.shardMap
		r.mu.RUnlock()
		if m == nil {
			return &Response{OK: false, Error: "no shard map configured"}
		}
		cp := ShardMap{Gen: m.Gen, Shards: append([]string(nil), m.Shards...)}
		return &Response{OK: true, ShardMap: &cp}
	default:
		return &Response{OK: false, Error: "unknown op " + req.Op}
	}
}

// listRanked serves discovery: up to limit alive nodes from the best
// available score buckets. It walks S1, then S2, then digest-less entries
// and stops as soon as limit candidates are found, so its cost is bounded
// by the limit (plus dead entries skipped along the way), not by the
// shard's total population — the property that keeps discovery flat as a
// shard grows to hundreds of thousands of nodes. Within one bucket the
// choice among alive nodes is map-order arbitrary: every returned S1 node
// is as good as any other under the paper's placement rule, which ranks
// by state class. The response itself is ordered (state, load, name) so
// callers merge deterministically ranked lists.
func (r *Registry) listRanked(limit int) *Response {
	now := r.now()
	nodes := make([]NodeInfo, 0, limit)
	r.mu.RLock()
	for score := 0; score <= 2 && len(nodes) < limit; score++ {
		for _, e := range r.buckets[score] {
			if now.Sub(e.lastSeen) > r.ttl {
				continue
			}
			info := e.info
			info.Alive = true
			info.LastSeenMS = e.lastSeen.UnixMilli()
			nodes = append(nodes, info)
			if len(nodes) >= limit {
				break
			}
		}
	}
	r.mu.RUnlock()
	sortCandidateInfos(nodes)
	return &Response{OK: true, Nodes: nodes}
}

// sortCandidateInfos orders a ranked discovery response best-first:
// digest score, then load, then name.
func sortCandidateInfos(nodes []NodeInfo) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && candidateInfoLess(nodes[j], nodes[j-1]); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

func candidateInfoLess(a, b NodeInfo) bool {
	sa, sb := digestScore(a.State), digestScore(b.State)
	if sa != sb {
		return sa < sb
	}
	if a.Load != b.Load {
		return a.Load < b.Load
	}
	return a.Name < b.Name
}
