package ishare

import (
	"sync"
	"time"
)

// breaker is a per-shard circuit breaker: after Threshold consecutive
// failures it opens and every allow() is denied until Cooldown elapses,
// at which point exactly one probe is let through (half-open). A probe
// success closes the breaker; a probe failure re-opens it for another
// cooldown. The broker front-ends each registry shard with one of these
// so a dead or drowning shard costs the discovery fan-out one skipped
// call instead of a full dial timeout per round — which is also exactly
// the backpressure a recovering shard needs while it absorbs the
// re-register herd.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu        sync.Mutex
	failures  int
	openUntil time.Time
	probing   bool // half-open: one probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 500 * time.Millisecond
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a call may proceed. While open it denies; once
// the cooldown has elapsed it admits a single half-open probe and keeps
// denying concurrent callers until that probe reports via result.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return true
	}
	if b.now().Before(b.openUntil) {
		return false
	}
	if b.probing {
		return false
	}
	b.probing = true
	return true
}

// result records a call's outcome and returns true when this failure is
// the one that tripped the breaker open (for the opens counter).
func (b *breaker) result(ok bool) (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.failures = 0
		b.openUntil = time.Time{}
		b.probing = false
		return false
	}
	b.probing = false
	if !b.openUntil.IsZero() {
		// A failed half-open probe re-arms the cooldown.
		b.openUntil = b.now().Add(b.cooldown)
		return false
	}
	b.failures++
	if b.failures >= b.threshold {
		b.openUntil = b.now().Add(b.cooldown)
		return true
	}
	return false
}

// open reports whether the breaker is currently denying calls.
func (b *breaker) open() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.openUntil.IsZero() && b.now().Before(b.openUntil)
}
