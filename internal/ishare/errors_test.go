package ishare

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"
)

func TestServeConnRejectsMalformedJSON(t *testing.T) {
	reg := startRegistry(t, time.Second)
	conn, err := net.Dial("tcp", reg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(bufio.NewReader(conn)).Decode(&resp); err != nil {
		t.Fatalf("no response to malformed request: %v", err)
	}
	if resp.OK {
		t.Error("malformed request accepted")
	}
}

func TestRoundTripFailures(t *testing.T) {
	// Nothing listening.
	if _, err := roundTrip(context.Background(), nil, "127.0.0.1:1", Request{Op: "list"}, 200*time.Millisecond, 0); err == nil {
		t.Error("dial to dead address succeeded")
	}
	// Server that accepts then closes without responding.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	if _, err := roundTrip(context.Background(), nil, ln.Addr().String(), Request{Op: "list"}, 300*time.Millisecond, 0); err == nil {
		t.Error("silent server should produce an error")
	}
}

func TestNodeWithUnreachableRegistry(t *testing.T) {
	if _, err := NewNode("127.0.0.1:0", NodeConfig{
		Name:         "orphan",
		RegistryAddr: "127.0.0.1:1",
	}); err == nil {
		t.Error("node should fail to start when registration fails")
	}
}

func TestClientErrorsPropagate(t *testing.T) {
	c := &Client{RegistryAddr: "127.0.0.1:1", Timeout: 200 * time.Millisecond}
	if _, err := c.List(ctx); err == nil {
		t.Error("list against dead registry succeeded")
	}
	if _, err := c.AliveNodes(ctx); err == nil {
		t.Error("alive-nodes against dead registry succeeded")
	}
	if _, err := c.Info(ctx, "127.0.0.1:1"); err == nil {
		t.Error("info against dead node succeeded")
	}
	if _, err := c.Submit(ctx, "127.0.0.1:1", JobSpec{Name: "j", CPUSeconds: 1}); err == nil {
		t.Error("submit against dead node succeeded")
	}
	if err := c.SetHostLoad(ctx, "127.0.0.1:1", 0.5, 0); err == nil {
		t.Error("sethost against dead node succeeded")
	}
	b := &Broker{Client: c}
	if _, err := b.Candidates(ctx); err == nil {
		t.Error("broker against dead registry succeeded")
	}
}

func TestRegistryAndNodeDoubleClose(t *testing.T) {
	reg := startRegistry(t, time.Second)
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Errorf("second close errored: %v", err)
	}
	node := startNode(t, NodeConfig{Name: "dc"})
	if err := node.Close(); err != nil {
		t.Fatal(err)
	}
	if err := node.Close(); err != nil {
		t.Errorf("second node close errored: %v", err)
	}
}

func TestNodeConfigErrors(t *testing.T) {
	bad := NodeConfig{Name: "bad"}
	bad.Machine.RAM = -1
	if _, err := NewNode("127.0.0.1:0", bad); err == nil {
		t.Error("bad machine config accepted")
	}
	bad2 := NodeConfig{Name: "bad2"}
	bad2.Detector.TransientWindow = -time.Second
	if _, err := NewNode("127.0.0.1:0", bad2); err == nil {
		t.Error("bad detector config accepted")
	}
}
