package ishare

import (
	"testing"
	"time"
)

func TestBrokerPicksLeastLoadedNode(t *testing.T) {
	reg := startRegistry(t, time.Second)
	idle := startNode(t, NodeConfig{Name: "idle", RegistryAddr: reg.Addr(), HostLoad: 0.05})
	busy := startNode(t, NodeConfig{Name: "busy", RegistryAddr: reg.Addr(), HostLoad: 0.45})
	_ = busy
	over := startNode(t, NodeConfig{Name: "over", RegistryAddr: reg.Addr(), HostLoad: 0.95})
	_ = over

	b := NewBroker(reg.Addr())
	// Let the overloaded node's detector see a few samples so its state
	// reflects the sustained load (info advances the machine per call).
	c := &Client{}
	for i := 0; i < 15; i++ {
		if _, err := c.Info(ctx, over.Addr()); err != nil {
			t.Fatal(err)
		}
		c.Info(ctx, busy.Addr())
		c.Info(ctx, idle.Addr())
	}

	cands, err := b.Candidates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	if cands[0].Node.Name != "idle" {
		t.Fatalf("best candidate = %s (%s), want idle", cands[0].Node.Name, cands[0].State)
	}
	// The overloaded node must not appear once it has latched S3.
	for _, cand := range cands {
		if cand.Node.Name == "over" && cand.Score >= 0 && cand.State[0:2] == "S3" {
			t.Fatalf("overloaded node offered as candidate: %+v", cand)
		}
	}

	res, node, err := b.SubmitBest(ctx, JobSpec{Name: "brokered", CPUSeconds: 60, RSSMB: 64})
	if err != nil {
		t.Fatal(err)
	}
	if node.Name != "idle" {
		t.Errorf("job placed on %s, want idle", node.Name)
	}
	if !res.Completed {
		t.Errorf("brokered job should complete on the idle node: %+v", res)
	}
}

func TestBrokerNoResources(t *testing.T) {
	reg := startRegistry(t, time.Second)
	b := NewBroker(reg.Addr())
	if _, _, err := b.SubmitBest(ctx, JobSpec{Name: "j", CPUSeconds: 10}); err == nil {
		t.Error("empty registry should fail submission")
	}
}

func TestRankState(t *testing.T) {
	tests := []struct {
		state string
		want  int
	}{
		{"S1(full)", 0},
		{"S2(lowest-priority)", 1},
		{"S3(cpu-unavail)", -1},
		{"S4(mem-thrash)", -1},
		{"S5(machine-unavail)", -1},
		{"garbage", -1},
	}
	for _, tt := range tests {
		if got := rankState(tt.state); got != tt.want {
			t.Errorf("rankState(%q) = %d, want %d", tt.state, got, tt.want)
		}
	}
}
