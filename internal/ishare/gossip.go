package ishare

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file is the decentralized discovery path of the control plane: a
// peer-to-peer anti-entropy exchange of compact NodeDigests. Every
// exchange is push-pull — the caller sends its view, the peer merges it
// and replies with its own — so state spreads epidemically through any
// connected subset of peers, with no registry in the loop. A broker
// holding a gossip store keeps placing jobs with every registry shard
// down; that failure mode is a full control-plane outage for a purely
// centralized design. Exchanges ride the same Dialer seam as every other
// protocol message, so chaos faults apply to gossip exactly as they do
// to registry traffic.

// GossipConfig configures a Gossiper.
type GossipConfig struct {
	// Self, when set, supplies this peer's own digest; it is prepended to
	// every outgoing exchange. Brokers that only listen leave it nil.
	Self func() NodeDigest
	// Peers seeds the exchange target set. Digests learned over gossip
	// carry addresses too, so the reachable peer set grows epidemically
	// beyond the seeds.
	Peers []string
	// Fanout is how many peers one Tick exchanges with (default 2).
	Fanout int
	// Interval paces the background loop started by Start; zero means no
	// background loop — callers drive Tick explicitly (tests do).
	Interval time.Duration
	// Timeout bounds one exchange (default 2 s).
	Timeout time.Duration
	// Dialer overrides the TCP dial path (nil = plain TCP); fault
	// injectors hook in here.
	Dialer Dialer
	// Limits bounds exchange message sizes.
	Limits Limits
	// MaxDigests caps the digests carried in one exchange (default 1024),
	// keeping messages within the protocol's size limits. When the store
	// is larger, the freshest digests win the slots.
	MaxDigests int
	// EvictAfter, when positive, bounds the store's memory: a digest whose
	// observation stamp is older than this is evicted on the next merge or
	// snapshot. Departed nodes stop refreshing their stamps — peers only
	// ever re-gossip the final one — so a churned-through fleet ages out
	// instead of growing the store forever. Digests that never carried a
	// stamp age from their local receipt time. Zero keeps digests
	// indefinitely (the pre-eviction behavior).
	EvictAfter time.Duration
	// Seed makes peer selection reproducible; 0 uses a fixed seed.
	Seed int64
	// Logger receives exchange failures at debug level. Nil discards.
	Logger *slog.Logger
	// Obs receives exchange/merge counters. Nil keeps them private.
	Obs *obs.Registry
}

func (c GossipConfig) withDefaults() GossipConfig {
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.MaxDigests <= 0 {
		c.MaxDigests = 1024
	}
	return c
}

// Gossiper maintains a store of node availability digests and keeps it
// convergent with its peers by periodic anti-entropy exchanges.
type Gossiper struct {
	cfg GossipConfig
	log *slog.Logger
	met *gossipMetrics // nil without an obs registry

	now func() time.Time // injectable clock for eviction tests

	mu    sync.Mutex
	store map[string]NodeDigest
	// seen records when each entry was last accepted (first insert or a
	// newer digest); the eviction fallback for stampless digests.
	seen map[string]int64
	rng  *rand.Rand

	wg     sync.WaitGroup
	closed chan struct{}
	once   sync.Once
}

// NewGossiper builds a gossiper; call Start for the background loop or
// drive Tick directly.
func NewGossiper(cfg GossipConfig) *Gossiper {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	g := &Gossiper{
		cfg:    cfg,
		now:    time.Now,
		log:    loggerOrDiscard(cfg.Logger),
		store:  make(map[string]NodeDigest),
		seen:   make(map[string]int64),
		rng:    rand.New(rand.NewSource(seed)),
		closed: make(chan struct{}),
	}
	if cfg.Obs != nil {
		g.met = newGossipMetrics(cfg.Obs)
	}
	return g
}

// Update upserts one digest into the local store (a node calls this when
// its own observed state changes). The usual newer-wins rule applies.
func (g *Gossiper) Update(d NodeDigest) {
	if d.Name == "" {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.mergeLocked(d)
}

func (g *Gossiper) mergeLocked(d NodeDigest) bool {
	old, ok := g.store[d.Name]
	if ok && !d.Newer(old) {
		return false
	}
	if d.Addr == "" {
		d.Addr = old.Addr // a digest without an address inherits the known one
	}
	g.store[d.Name] = d
	g.seen[d.Name] = g.now().UnixMilli()
	return true
}

// sweepLocked evicts digests older than the configured retention. A
// digest ages from its observation stamp when it carries one — a
// departed node's stamp freezes, so re-gossiped mentions cannot keep it
// alive — and from its local receipt time otherwise. Returns evictions.
func (g *Gossiper) sweepLocked() int {
	if g.cfg.EvictAfter <= 0 || len(g.store) == 0 {
		return 0
	}
	cutoff := g.now().UnixMilli() - g.cfg.EvictAfter.Milliseconds()
	evicted := 0
	for name, d := range g.store {
		stamp := d.UnixMS
		if stamp <= 0 {
			stamp = g.seen[name]
		}
		if stamp < cutoff {
			delete(g.store, name)
			delete(g.seen, name)
			evicted++
		}
	}
	return evicted
}

// Sweep applies the retention bound now, returning how many digests were
// evicted. Merges sweep automatically; callers with long idle gaps (a
// broker holding a store overnight) can force one.
func (g *Gossiper) Sweep() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sweepLocked()
}

// Merge folds a batch of digests into the store, returning how many were
// news (absent, or newer than the stored version).
func (g *Gossiper) Merge(ds []NodeDigest) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	news := 0
	for _, d := range ds {
		if d.Name == "" {
			continue
		}
		if g.mergeLocked(d) {
			news++
		}
	}
	g.sweepLocked()
	if g.met != nil && news > 0 {
		g.met.merged.Add(uint64(news))
	}
	return news
}

// Snapshot returns every stored digest, sorted by name.
func (g *Gossiper) Snapshot() []NodeDigest {
	g.mu.Lock()
	out := make([]NodeDigest, 0, len(g.store))
	for _, d := range g.store {
		out = append(out, d)
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of stored digests.
func (g *Gossiper) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.store)
}

// digests assembles one outgoing view: the self digest first, then the
// freshest stored digests up to the configured cap.
func (g *Gossiper) digests() []NodeDigest {
	var self NodeDigest
	hasSelf := false
	if g.cfg.Self != nil {
		self = g.cfg.Self()
		hasSelf = self.Name != ""
	}
	out := make([]NodeDigest, 0, g.cfg.MaxDigests)
	if hasSelf {
		out = append(out, self)
	}
	rest := g.Snapshot()
	// Freshest first so the cap drops the stalest digests; ties stay in
	// name order from Snapshot for determinism.
	sort.SliceStable(rest, func(i, j int) bool { return rest[i].UnixMS > rest[j].UnixMS })
	for _, d := range rest {
		if len(out) >= g.cfg.MaxDigests {
			break
		}
		if hasSelf && d.Name == self.Name {
			continue
		}
		out = append(out, d)
	}
	return out
}

// HandleRequest serves the receiving side of one exchange: merge what the
// peer sent, answer with our own view. Nodes route the "gossip" op here.
func (g *Gossiper) HandleRequest(req Request) *Response {
	g.Merge(req.Digests)
	if g.met != nil {
		g.met.serves.Inc()
	}
	return &Response{OK: true, Digests: g.digests()}
}

// Exchange performs one push-pull round with the peer at addr.
func (g *Gossiper) Exchange(ctx context.Context, addr string) error {
	lim := g.cfg.Limits.withDefaults()
	resp, err := roundTrip(ctx, g.cfg.Dialer, addr, Request{Op: "gossip", Digests: g.digests()}, g.cfg.Timeout, lim.MaxMessageBytes)
	if err != nil {
		if g.met != nil {
			g.met.failures.Inc()
		}
		return err
	}
	if !resp.OK {
		if g.met != nil {
			g.met.failures.Inc()
		}
		return fmt.Errorf("ishare: gossip with %s failed: %s", addr, resp.Error)
	}
	g.Merge(resp.Digests)
	if g.met != nil {
		g.met.exchanges.Inc()
	}
	return nil
}

// peerAddrs returns the candidate exchange targets: the configured seeds
// plus every address learned from digests, deduplicated, minus self,
// sorted so seeded peer selection is deterministic.
func (g *Gossiper) peerAddrs() []string {
	seen := make(map[string]bool)
	var self string
	if g.cfg.Self != nil {
		self = g.cfg.Self().Addr
	}
	var out []string
	add := func(a string) {
		if a == "" || a == self || seen[a] {
			return
		}
		seen[a] = true
		out = append(out, a)
	}
	for _, p := range g.cfg.Peers {
		add(p)
	}
	g.mu.Lock()
	stored := make([]string, 0, len(g.store))
	for _, d := range g.store {
		stored = append(stored, d.Addr)
	}
	g.mu.Unlock()
	sort.Strings(stored)
	for _, a := range stored {
		add(a)
	}
	return out
}

// Tick runs one anti-entropy round: exchange with up to Fanout distinct
// peers chosen from the seeds and every gossip-learned address. It
// returns the number of successful exchanges; unreachable peers are
// skipped, not retried — the next round redraws.
func (g *Gossiper) Tick(ctx context.Context) int {
	peers := g.peerAddrs()
	if len(peers) == 0 {
		return 0
	}
	g.mu.Lock()
	g.rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })
	g.mu.Unlock()
	n := g.cfg.Fanout
	if n > len(peers) {
		n = len(peers)
	}
	ok := 0
	for _, addr := range peers[:n] {
		if err := g.Exchange(ctx, addr); err != nil {
			g.log.Debug("gossip exchange failed", "peer", addr, "err", err.Error())
			continue
		}
		ok++
	}
	return ok
}

// Start launches the background anti-entropy loop at the configured
// Interval. A zero interval makes Start a no-op (manual ticks only).
func (g *Gossiper) Start() {
	if g.cfg.Interval <= 0 {
		return
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		t := time.NewTicker(g.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-g.closed:
				return
			case <-t.C:
				g.Tick(context.Background())
			}
		}
	}()
}

// Close stops the background loop. The store stays readable.
func (g *Gossiper) Close() {
	g.once.Do(func() { close(g.closed) })
	g.wg.Wait()
}
