package ishare

import (
	"testing"
	"time"
)

func BenchmarkWALAppendUpsert(b *testing.B) {
	w, _, err := openWAL(WALOptions{Dir: b.TempDir(), SyncInterval: -1, SyncEveryBytes: 1 << 40, CompactEvery: 1 << 30}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close(false)
	ds := benchDigests(1000)
	ms := time.Now().UnixMilli()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.appendUpsert(ds, ms); err != nil {
			b.Fatal(err)
		}
	}
}
