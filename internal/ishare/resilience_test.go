package ishare

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"
)

// fastClient keeps failure-path tests quick: short attempt timeouts and a
// tight retry budget (refused dials fail instantly anyway).
func fastClient(registryAddr string) *Client {
	return &Client{
		RegistryAddr: registryAddr,
		Timeout:      500 * time.Millisecond,
		Retry:        RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 1},
	}
}

func TestCandidatesSkipsNodesWithFailingInfo(t *testing.T) {
	// Long TTL: the closed node stays "alive" in the registry, so the
	// broker must discover its death from the failing Info call.
	reg := startRegistry(t, time.Minute)
	live := startNode(t, NodeConfig{Name: "live", RegistryAddr: reg.Addr(), HostLoad: 0.05})
	_ = live
	dead, err := NewNode("127.0.0.1:0", NodeConfig{Name: "dead", RegistryAddr: reg.Addr(), HostLoad: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	dead.Close()

	b := &Broker{Client: fastClient(reg.Addr())}
	cands, err := b.Candidates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Node.Name != "live" {
		t.Fatalf("candidates = %+v, want only live", cands)
	}
	if m := b.Metrics(); m.InfoFailures == 0 {
		t.Errorf("metrics = %+v, want InfoFailures > 0", m)
	}
}

func TestCandidatesExcludesFailureStateNodes(t *testing.T) {
	reg := startRegistry(t, time.Minute)
	idle := startNode(t, NodeConfig{Name: "idle", RegistryAddr: reg.Addr(), HostLoad: 0.05})
	_ = idle
	hot := startNode(t, NodeConfig{Name: "hot", RegistryAddr: reg.Addr(), HostLoad: 0.95})
	c := &Client{}
	// Pump the hot node's detector past the transient window so it
	// latches S3.
	var latched bool
	for i := 0; i < 25; i++ {
		st, err := c.Info(ctx, hot.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if strings.HasPrefix(st.State, "S3") {
			latched = true
			break
		}
	}
	if !latched {
		t.Fatal("hot node never latched S3")
	}
	b := &Broker{Client: fastClient(reg.Addr())}
	cands, err := b.Candidates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, cand := range cands {
		if cand.Node.Name == "hot" {
			t.Fatalf("S3 node offered as candidate: %+v", cand)
		}
	}
	if len(cands) == 0 {
		t.Fatal("idle node should remain a candidate")
	}
}

func TestRankStateEdgeCases(t *testing.T) {
	tests := []struct {
		state string
		want  int
	}{
		{"", -1},
		{"s1(lowercase)", -1},
		{"S2", 1},
		{"banana", -1},
		{"S3", -1},
		{"S4", -1},
		{"S5", -1},
	}
	for _, tt := range tests {
		if got := rankState(tt.state); got != tt.want {
			t.Errorf("rankState(%q) = %d, want %d", tt.state, got, tt.want)
		}
	}
}

func TestBrokerServesStaleCacheDuringRegistryOutage(t *testing.T) {
	reg := startRegistry(t, time.Minute)
	node := startNode(t, NodeConfig{Name: "survivor", RegistryAddr: reg.Addr(), HostLoad: 0.05})
	_ = node

	b := &Broker{Client: fastClient(reg.Addr()), CacheTTL: time.Minute}
	if _, err := b.Candidates(ctx); err != nil {
		t.Fatal(err)
	}

	// The registry dies. Placement must degrade to the cached node list.
	reg.Close()
	cands, err := b.Candidates(ctx)
	if err != nil {
		t.Fatalf("candidates during registry outage: %v", err)
	}
	if len(cands) != 1 || !cands[0].Stale {
		t.Fatalf("candidates = %+v, want one stale entry", cands)
	}
	if m := b.Metrics(); m.StaleServes != 1 {
		t.Errorf("metrics = %+v, want StaleServes == 1", m)
	}

	// And a submission through the degraded broker still completes.
	res, onNode, err := b.SubmitBest(ctx, JobSpec{Name: "degraded", CPUSeconds: 60, RSSMB: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || onNode.Name != "survivor" {
		t.Fatalf("degraded submit: res=%+v node=%+v", res, onNode)
	}
}

func TestBrokerStaleCacheRespectsBound(t *testing.T) {
	reg := startRegistry(t, time.Minute)
	node := startNode(t, NodeConfig{Name: "n", RegistryAddr: reg.Addr(), HostLoad: 0.05})
	_ = node
	b := &Broker{Client: fastClient(reg.Addr()), CacheTTL: time.Millisecond}
	if _, err := b.Candidates(ctx); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	time.Sleep(10 * time.Millisecond)
	if _, err := b.Candidates(ctx); err == nil {
		t.Error("candidates beyond the staleness bound should fail")
	}
	if m := b.Metrics(); m.RegistryErrors == 0 {
		t.Errorf("metrics = %+v, want RegistryErrors > 0", m)
	}
}

func TestSubmitDedupByID(t *testing.T) {
	node := startNode(t, NodeConfig{Name: "dedup", HostLoad: 0.05})
	c := &Client{}
	spec := JobSpec{Name: "once", ID: "job-42", CPUSeconds: 60, RSSMB: 32}
	first, err := c.Submit(ctx, node.Addr(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Completed || first.Deduped {
		t.Fatalf("first run: %+v", first)
	}
	second, err := c.Submit(ctx, node.Addr(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Deduped || !second.Completed {
		t.Fatalf("resubmission of a completed ID should dedup: %+v", second)
	}
	if got := node.ExecutionCounts()["job-42"]; got != 1 {
		t.Errorf("job executed %d times, want exactly 1", got)
	}
}

func TestSubmitResumeFromCheckpoint(t *testing.T) {
	hot := startNode(t, NodeConfig{Name: "hot", HostLoad: 0.9})
	idle := startNode(t, NodeConfig{Name: "idle", HostLoad: 0.05})
	c := &Client{}

	const total = 600.0
	killed, err := c.Submit(ctx, hot.Addr(), JobSpec{Name: "victim", ID: "v1", CPUSeconds: total, RSSMB: 32})
	if err != nil {
		t.Fatal(err)
	}
	if killed.Completed {
		t.Fatalf("job should be killed under 0.9 host load: %+v", killed)
	}
	ckpt := killed.GuestCPUSeconds
	if ckpt < 0 || ckpt >= total {
		t.Fatalf("checkpoint %v outside [0, %v)", ckpt, total)
	}

	resumed, err := c.Submit(ctx, idle.Addr(), JobSpec{
		Name: "victim", ID: "v1", CPUSeconds: total, RSSMB: 32, ResumeCPUSeconds: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Completed {
		t.Fatalf("resumed job should complete on the idle node: %+v", resumed)
	}
	if resumed.ResumedFrom != ckpt {
		t.Errorf("ResumedFrom = %v, want %v", resumed.ResumedFrom, ckpt)
	}
	// Cumulative progress: the resume offset plus the remaining work, not
	// a from-zero rerun.
	if resumed.GuestCPUSeconds < total || resumed.GuestCPUSeconds > total+15 {
		t.Errorf("cumulative guest CPU = %v, want ~%v", resumed.GuestCPUSeconds, total)
	}
}

func TestSubmitRejectsBadResumeOffset(t *testing.T) {
	node := startNode(t, NodeConfig{Name: "r", HostLoad: 0.05})
	c := &Client{}
	if _, err := c.Submit(ctx, node.Addr(), JobSpec{Name: "j", CPUSeconds: 10, ResumeCPUSeconds: 10}); err == nil {
		t.Error("resume offset == total accepted")
	}
	if _, err := c.Submit(ctx, node.Addr(), JobSpec{Name: "j", CPUSeconds: 10, ResumeCPUSeconds: -1}); err == nil {
		t.Error("negative resume offset accepted")
	}
}

func TestNodeCrashAtVirtualTime(t *testing.T) {
	node := startNode(t, NodeConfig{Name: "doomed", HostLoad: 0.05, CrashAtVirtual: 30 * time.Second})
	c := &Client{Timeout: time.Second}
	// The job needs far more virtual time than the crash point: the
	// service dies mid-job and the connection drops without a response.
	if _, err := c.Submit(ctx, node.Addr(), JobSpec{Name: "lost", ID: "lost-1", CPUSeconds: 600, RSSMB: 32}); err == nil {
		t.Fatal("submission across a node crash should fail")
	}
	if got := node.ExecutionCounts()["lost-1"]; got != 0 {
		t.Errorf("crashed job recorded %d completions, want 0", got)
	}
	// The service is gone for good: further dials must fail.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Info(ctx, node.Addr()); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("crashed node still answering info")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHeartbeatReRegistersAfterRegistryForgets(t *testing.T) {
	reg := startRegistry(t, 300*time.Millisecond)
	node := startNode(t, NodeConfig{Name: "phoenix", RegistryAddr: reg.Addr(), HeartbeatEvery: 20 * time.Millisecond})
	_ = node
	c := &Client{RegistryAddr: reg.Addr()}

	// The registry loses the node (restart, operator error): heartbeats
	// start failing with "unknown node" and the node must re-register.
	reg.handle(Request{Op: "unregister", Name: "phoenix"})
	deadline := time.Now().Add(3 * time.Second)
	for {
		nodes, err := c.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(nodes) == 1 && nodes[0].Name == "phoenix" && nodes[0].Alive {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node never re-registered: %+v", nodes)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServeConnRejectsOversizedRequest(t *testing.T) {
	reg, err := NewRegistryWithLimits("127.0.0.1:0", time.Second, Limits{MaxMessageBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	conn, err := net.Dial("tcp", reg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	big := Request{Op: "register", Name: strings.Repeat("x", 4096), Addr: "127.0.0.1:1"}
	if err := json.NewEncoder(conn).Encode(big); err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		t.Fatalf("no response to oversized request: %v", err)
	}
	if resp.OK || !strings.Contains(resp.Error, "exceeds") {
		t.Errorf("oversized request not rejected: %+v", resp)
	}
}

func TestServeConnDisconnectsSlowPeer(t *testing.T) {
	// A peer that connects and never sends a request must not pin the
	// handler beyond the configured I/O deadline.
	reg, err := NewRegistryWithLimits("127.0.0.1:0", time.Second, Limits{IODeadline: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	conn, err := net.Dial("tcp", reg.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	start := time.Now()
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("silent connection got a response")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("handler held a silent connection for %v", elapsed)
	}
}

func TestClientBoundsResponseSize(t *testing.T) {
	// A malicious "registry" replying with an enormous (but well-formed)
	// JSON document must not make the client buffer it all.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				_, _ = c.Read(buf)
				_, _ = c.Write([]byte(`{"ok":true,"error":"` + strings.Repeat("a", 1<<16) + `"}`))
			}(c)
		}
	}()
	c := &Client{
		RegistryAddr: ln.Addr().String(),
		Timeout:      time.Second,
		Retry:        RetryPolicy{MaxAttempts: 1},
		Limits:       Limits{MaxMessageBytes: 1024},
	}
	_, err = c.List(ctx)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized response err = %v, want size-bound error", err)
	}
}

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 60 * time.Millisecond, Jitter: 0.001, MaxAttempts: 10}.withDefaults()
	prev := time.Duration(0)
	for attempt := 1; attempt <= 6; attempt++ {
		d := backoffDelay(p, attempt, nil)
		if d < prev {
			t.Errorf("attempt %d delay %v shrank below %v", attempt, d, prev)
		}
		if d > p.MaxDelay+p.MaxDelay/10 {
			t.Errorf("attempt %d delay %v above cap %v", attempt, d, p.MaxDelay)
		}
		prev = d
	}
	jr := newJitterRand(7)
	seen := map[time.Duration]bool{}
	for i := 0; i < 8; i++ {
		seen[backoffDelay(RetryPolicy{}.withDefaults(), 2, jr)] = true
	}
	if len(seen) < 2 {
		t.Error("jitter produced identical delays")
	}
}
