package ishare

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// registryStateSnapshot captures the comparable durable state of a
// registry: every entry's info and liveness stamp, plus the shard map.
func registryStateSnapshot(r *Registry) map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]string, len(r.nodes)+1)
	for name, e := range r.nodes {
		out[name] = fmt.Sprintf("%s|%s|%.6f|%d|%d|%d",
			e.info.Addr, e.info.State, e.info.Load, e.info.Gen, e.lastSeen.UnixMilli(), e.bucket)
	}
	if r.shardMap != nil {
		out["__shardmap__"] = fmt.Sprintf("%d|%s", r.shardMap.Gen, strings.Join(r.shardMap.Shards, ","))
	}
	return out
}

func testFleetDigests(n int, stamp int64) []NodeDigest {
	out := make([]NodeDigest, n)
	for i := range out {
		state := "S1(full)"
		if i%3 == 1 {
			state = "S2(reduced)"
		}
		out[i] = NodeDigest{
			Name: fmt.Sprintf("m%03d", i), Addr: fmt.Sprintf("10.0.0.%d:70", i),
			State: state, Load: float64(i) / 100, Gen: int64(i%5 + 1), UnixMS: stamp,
		}
	}
	return out
}

// TestRegistryCrashRecovery: a durable registry killed without any drain
// or fsync recovers every acked mutation from its WAL.
func TestRegistryCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	opt := RegistryOptions{TTL: time.Minute, WAL: &WALOptions{Dir: dir}}
	r, err := NewRegistryWithOptions("127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	r.SetShardMap(ShardMap{Gen: 2, Shards: []string{"a:1", "b:2"}})
	if resp := r.handle(Request{Op: "register_batch", Digests: testFleetDigests(40, 1000)}); !resp.OK {
		t.Fatalf("register_batch: %s", resp.Error)
	}
	if resp := r.handle(Request{Op: "heartbeat", Name: "m000", State: "S2(reduced)", Gen: 9}); !resp.OK {
		t.Fatalf("heartbeat: %s", resp.Error)
	}
	if resp := r.handle(Request{Op: "unregister", Name: "m017"}); !resp.OK {
		t.Fatalf("unregister: %s", resp.Error)
	}
	want := registryStateSnapshot(r)
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}

	r2, err := NewRegistryWithOptions("127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if r2.RecoveredRecords() == 0 {
		t.Fatal("recovery replayed zero records")
	}
	got := registryStateSnapshot(r2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("entry %s differs after recovery:\n got %s\nwant %s", k, got[k], v)
		}
	}
	if _, ok := got["m017"]; ok {
		t.Fatal("unregistered node resurrected by recovery")
	}
}

// TestShutdownRestartIdenticalState: the graceful path — drain, fsync,
// close — followed by a restart over the same directory yields exactly
// the same registry state, entry for entry.
func TestShutdownRestartIdenticalState(t *testing.T) {
	dir := t.TempDir()
	opt := RegistryOptions{TTL: time.Minute, WAL: &WALOptions{Dir: dir}}
	r, err := NewRegistryWithOptions("127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	r.SetShardMap(ShardMap{Gen: 1, Shards: []string{"x:1"}})
	r.handle(Request{Op: "register_batch", Digests: testFleetDigests(25, 2000)})
	r.handle(Request{Op: "heartbeat_batch", Digests: []NodeDigest{
		{Name: "m003", State: "S2(reduced)", Load: 0.5, Gen: 11, UnixMS: 2500},
	}})
	want := registryStateSnapshot(r)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	r2, err := NewRegistryWithOptions("127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got := registryStateSnapshot(r2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("entry %s differs after drained restart:\n got %s\nwant %s", k, got[k], v)
		}
	}
}

// TestHeartbeatRefreshRecordsRecover: heartbeats that advance nothing
// but liveness are logged as compact refresh records — far smaller than
// full entries — and the refreshed stamps still survive a crash.
func TestHeartbeatRefreshRecordsRecover(t *testing.T) {
	dir := t.TempDir()
	opt := RegistryOptions{TTL: time.Minute, WAL: &WALOptions{Dir: dir}}
	r, err := NewRegistryWithOptions("127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	ds := testFleetDigests(30, 3000)
	if resp := r.handle(Request{Op: "register_batch", Digests: ds}); !resp.OK {
		t.Fatalf("register_batch: %s", resp.Error)
	}
	walPath := filepath.Join(dir, walFileName)
	st, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	regBytes := st.Size()

	// Re-send the same digests: every one is a pure liveness refresh.
	time.Sleep(2 * time.Millisecond)
	if resp := r.handle(Request{Op: "heartbeat_batch", Digests: ds}); !resp.OK || len(resp.Missing) > 0 {
		t.Fatalf("heartbeat_batch: %s (missing %d)", resp.Error, len(resp.Missing))
	}
	st, err = os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	hbBytes := st.Size() - regBytes
	if hbBytes <= 0 || hbBytes*2 >= regBytes {
		t.Fatalf("refresh sweep wrote %d WAL bytes vs %d for registration; want the compact form well under half", hbBytes, regBytes)
	}

	want := registryStateSnapshot(r)
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	r2, err := NewRegistryWithOptions("127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got := registryStateSnapshot(r2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("entry %s differs after recovery:\n got %s\nwant %s", k, got[k], v)
		}
	}
}

// TestRegistryCompactionSurvivesRestart drives enough mutations through a
// tiny CompactEvery to force snapshot+truncate cycles, then recovers.
func TestRegistryCompactionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	opt := RegistryOptions{TTL: time.Minute, WAL: &WALOptions{Dir: dir, CompactEvery: 5}}
	r, err := NewRegistryWithOptions("127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 7; round++ {
		for _, d := range testFleetDigests(8, int64(3000+round)) {
			d.Gen = int64(round + 1)
			if resp := r.handle(Request{Op: "register", Name: d.Name, Addr: d.Addr, State: d.State, Load: d.Load, Gen: d.Gen}); !resp.OK {
				t.Fatalf("register: %s", resp.Error)
			}
		}
	}
	want := registryStateSnapshot(r)
	if err := r.Crash(); err != nil {
		t.Fatal(err)
	}
	r2, err := NewRegistryWithOptions("127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got := registryStateSnapshot(r2)
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("entry %s differs after compacted recovery:\n got %s\nwant %s", k, got[k], v)
		}
	}
}

// TestRegistryShedsWhenSaturated pins the admission path: with the single
// inflight slot occupied and no queue headroom, a new connection receives
// a structured overload response carrying the retry-after hint.
func TestRegistryShedsWhenSaturated(t *testing.T) {
	r, err := NewRegistryWithOptions("127.0.0.1:0", RegistryOptions{
		TTL: time.Minute, MaxInflight: 1, MaxQueue: 1,
		QueueWait: 5 * time.Millisecond, RetryAfter: 123 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Occupy the inflight slot and the queue slot directly: deterministic
	// saturation without racing real handlers.
	r.inflight <- struct{}{}
	r.queue <- struct{}{}
	defer func() { <-r.inflight; <-r.queue }()

	c := &Client{RegistryAddr: r.Addr(), Timeout: 2 * time.Second, Retry: RetryPolicy{MaxAttempts: 1}}
	_, err = c.ListShard(context.Background(), r.Addr(), 4)
	if err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("saturated registry did not shed: err=%v", err)
	}
	if r.Sheds() == 0 {
		t.Fatal("shed counter not incremented")
	}

	// A queued connection that wins a freed slot is served normally.
	<-r.inflight
	if _, err := c.ListShard(context.Background(), r.Addr(), 4); err != nil {
		t.Fatalf("list after slot freed: %v", err)
	}
	r.inflight <- struct{}{}
}

// TestClientHonorsRetryAfter: an idempotent request shed on the first
// attempt succeeds on a retry after the registry frees capacity, and the
// retry waits at least the hinted backoff.
func TestClientHonorsRetryAfter(t *testing.T) {
	r, err := NewRegistryWithOptions("127.0.0.1:0", RegistryOptions{
		TTL: time.Minute, MaxInflight: 1, MaxQueue: 1,
		QueueWait: time.Millisecond, RetryAfter: 40 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.inflight <- struct{}{}
	r.queue <- struct{}{}
	release := time.AfterFunc(15*time.Millisecond, func() { <-r.inflight; <-r.queue })
	defer release.Stop()

	c := &Client{RegistryAddr: r.Addr(), Timeout: 2 * time.Second,
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}}
	start := time.Now()
	if _, err := c.ListShard(context.Background(), r.Addr(), 4); err != nil {
		t.Fatalf("list did not recover after shed: %v", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("retry ignored the 40ms retry-after hint: total %v", d)
	}
}

// TestSetShardMapMonotonic: an older (or equal) generation can never
// replace the served shard map.
func TestSetShardMapMonotonic(t *testing.T) {
	r, err := NewRegistry("127.0.0.1:0", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	r.SetShardMap(ShardMap{Gen: 2, Shards: []string{"a:1", "b:2"}})
	r.SetShardMap(ShardMap{Gen: 1, Shards: []string{"stale:1"}})
	r.SetShardMap(ShardMap{Gen: 2, Shards: []string{"replay:1"}})
	resp := r.handle(Request{Op: "shardmap"})
	if !resp.OK || resp.ShardMap.Gen != 2 || resp.ShardMap.Shards[0] != "a:1" {
		t.Fatalf("shard map rolled back: %+v", resp.ShardMap)
	}
	r.SetShardMap(ShardMap{Gen: 3, Shards: []string{"c:3"}})
	resp = r.handle(Request{Op: "shardmap"})
	if resp.ShardMap.Gen != 3 || resp.ShardMap.Shards[0] != "c:3" {
		t.Fatalf("newer shard map not adopted: %+v", resp.ShardMap)
	}
}

// TestShardedCrashRestartDurable: the deployment-level loop — kill a
// shard mid-fleet, restart it on the same address, and every acked
// registration on that shard is served again.
func TestShardedCrashRestartDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := NewShardedRegistryWithOptions(2, RegistryOptions{
		TTL: time.Minute, WAL: &WALOptions{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := &Client{Shards: s.Addrs(), Timeout: 2 * time.Second, Retry: RetryPolicy{MaxAttempts: 1}}
	ctx := context.Background()

	byShard := make(map[int][]NodeDigest)
	for _, d := range testFleetDigests(60, 4000) {
		i := s.Owner(d.Name)
		byShard[i] = append(byShard[i], d)
	}
	for i, batch := range byShard {
		if err := c.RegisterBatch(ctx, s.Addrs()[i], batch); err != nil {
			t.Fatalf("register shard %d: %v", i, err)
		}
	}

	if err := s.CrashShard(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ListShard(ctx, s.Addrs()[0], 4); err == nil {
		t.Fatal("crashed shard still answering")
	}
	if err := s.RestartShard(0); err != nil {
		t.Fatal(err)
	}

	for i, batch := range byShard {
		nodes, err := c.ListShard(ctx, s.Addrs()[i], 0)
		if err != nil {
			t.Fatalf("list shard %d after restart: %v", i, err)
		}
		if len(nodes) != len(batch) {
			t.Fatalf("shard %d: %d nodes after restart, want %d", i, len(nodes), len(batch))
		}
	}
	m, err := c.FetchShardMap(ctx, s.Addrs()[0])
	if err != nil || m.Gen != 1 {
		t.Fatalf("restarted shard serves wrong shard map: %+v err=%v", m, err)
	}
}

// TestShardedRestartVolatile: without a WAL a restarted shard comes back
// empty, and the heartbeat Missing path reports exactly its nodes for
// re-registration — the pre-durability contract still holds.
func TestShardedRestartVolatile(t *testing.T) {
	s, err := NewShardedRegistry(2, time.Minute, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := &Client{Shards: s.Addrs(), Timeout: 2 * time.Second, Retry: RetryPolicy{MaxAttempts: 1}}
	ctx := context.Background()
	var shard0 []NodeDigest
	for _, d := range testFleetDigests(30, 5000) {
		if s.Owner(d.Name) == 0 {
			shard0 = append(shard0, d)
		}
	}
	if err := c.RegisterBatch(ctx, s.Addrs()[0], shard0); err != nil {
		t.Fatal(err)
	}
	if err := s.CrashShard(0); err != nil {
		t.Fatal(err)
	}
	if err := s.RestartShard(0); err != nil {
		t.Fatal(err)
	}
	missing, err := c.HeartbeatBatch(ctx, s.Addrs()[0], shard0)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != len(shard0) {
		t.Fatalf("volatile restart: %d missing, want all %d", len(missing), len(shard0))
	}
}
