package ishare

import (
	"fmt"
	"sort"
	"strconv"
)

// This file is the placement substrate of the scaled-out control plane: a
// consistent-hash ring assigning every node ID to one registry shard. The
// ring is immutable once built — reconfiguration means building a new ring
// from the new shard list — so lookups are lock-free and safe to share
// across any number of goroutines. Consistent hashing keeps the remapped
// fraction near 1/N when a shard is added: node IDs only ever move onto
// the new shard's points, never between surviving shards.

// ringVnodes is the default number of virtual points per shard. More
// points flatten the load imbalance between shards at the cost of a
// larger (still tiny) sorted point array.
const ringVnodes = 64

// ShardRing maps node IDs to registry shards by consistent hashing.
type ShardRing struct {
	shards []string
	points []ringPoint // sorted by (hash, shard) — ties break to the lower shard index
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewShardRing builds a ring over the given shard addresses with vnodes
// virtual points per shard (<= 0 uses the default). A ring needs at least
// one shard; duplicate addresses are a configuration error.
func NewShardRing(shards []string, vnodes int) (*ShardRing, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("ishare: shard ring needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = ringVnodes
	}
	seen := make(map[string]bool, len(shards))
	for _, s := range shards {
		if s == "" {
			return nil, fmt.Errorf("ishare: shard ring: empty shard address")
		}
		if seen[s] {
			return nil, fmt.Errorf("ishare: shard ring: duplicate shard %q", s)
		}
		seen[s] = true
	}
	r := &ShardRing{
		shards: append([]string(nil), shards...),
		points: make([]ringPoint, 0, len(shards)*vnodes),
	}
	for i, s := range r.shards {
		for v := 0; v < vnodes; v++ {
			h := ringHash(s + "#" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, shard: i})
		}
	}
	// Sort by (hash, shard): two shards landing on the same hash point —
	// possible in principle, forced in tests — resolve deterministically
	// to the lower shard index on every lookup.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return r, nil
}

// N returns the number of shards on the ring.
func (r *ShardRing) N() int { return len(r.shards) }

// Shards returns the shard addresses in construction order.
func (r *ShardRing) Shards() []string { return append([]string(nil), r.shards...) }

// Owner returns the index of the shard owning the given node ID.
func (r *ShardRing) Owner(nodeID string) int {
	h := ringHash(nodeID)
	// First point with hash >= h, wrapping past the top of the ring.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Addr returns the address of the shard owning the given node ID.
func (r *ShardRing) Addr(nodeID string) string { return r.shards[r.Owner(nodeID)] }

// ringHash positions a key on the ring. Ring ordering compares full
// 64-bit values, which is dominated by high bits — and raw FNV-1a's high
// bits barely move between short sequential keys ("node-00", "node-01",
// …), which clusters whole fleets onto one arc. A splitmix64-style
// finalizer avalanches the FNV value first.
func ringHash(s string) uint64 {
	x := fnv64a(s)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fnv64a is the FNV-1a 64-bit hash — stable across processes and Go
// versions, unlike the runtime's randomized map hash, so every client and
// every shard derive the same ownership from the same shard list.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
