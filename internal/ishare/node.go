package ishare

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/availability"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/simos"
	"repro/internal/workload"
)

// NodeConfig describes a published resource.
type NodeConfig struct {
	// Name is the node's registry name.
	Name string
	// Machine is the simulated machine the node publishes.
	Machine simos.MachineConfig
	// Detector configures the availability detector.
	Detector availability.Config
	// MonitorPeriod is the virtual sampling period while jobs run.
	MonitorPeriod time.Duration
	// HostLoad is the initial synthetic host load.
	HostLoad float64
	// InteractiveHost, when set, runs a Musbus-style interactive session
	// as the host workload instead of a flat duty cycle; HostLoad is then
	// ignored.
	InteractiveHost bool
	// RegistryAddr, when set, makes the node register and heartbeat.
	RegistryAddr string
	// RegistryAddrs lists the shards of a scaled-out registry; the node
	// routes its registration and heartbeats to the shard owning its name
	// on the consistent-hash ring. When set it takes precedence over
	// RegistryAddr.
	RegistryAddrs []string
	// HeartbeatEvery is the wall-clock heartbeat interval.
	HeartbeatEvery time.Duration
	// HeartbeatJitter spreads each heartbeat interval (and each backoff
	// step) by ±this fraction, deseeding the synchronized heartbeat bursts
	// a fleet restarted together would otherwise aim at one shard. The
	// node's own name seeds the jitter, so a given node's schedule is
	// reproducible. Default 0.1; negative disables.
	HeartbeatJitter float64
	// HeartbeatMaxBackoff caps the backoff between heartbeat attempts
	// while the registry is unreachable (default 16× HeartbeatEvery).
	// Local jobs keep running throughout; the node re-registers with
	// backoff when the registry returns.
	HeartbeatMaxBackoff time.Duration
	// MaxJobVirtual caps how much virtual time one submission may occupy.
	MaxJobVirtual time.Duration
	// Dialer overrides the TCP dial path for registration and heartbeats
	// (nil = plain TCP). Fault injectors hook in here.
	Dialer Dialer
	// Limits bounds each served protocol exchange.
	Limits Limits
	// Gossip, when set, enables peer-to-peer availability gossip: the node
	// answers "gossip" exchanges and (if the config carries an Interval)
	// runs its own anti-entropy loop. Self, Dialer and Limits default to
	// the node's own.
	Gossip *GossipConfig
	// CrashAtVirtual, when positive, is a fault-injection hook: the node
	// crashes — drops in-flight connections without replying, stops
	// heartbeating and closes its listener — the first time its virtual
	// clock reaches this value. This reproduces the paper's S5 (URR): the
	// FGCS service dies with the host, mid-job.
	CrashAtVirtual time.Duration
	// Metrics, when set, receives the node's counters (jobs by outcome,
	// dedup hits, suspensions, heartbeat failures) labeled with the node's
	// name, so many nodes can share one registry and one /metrics endpoint.
	Metrics *obs.Registry
	// Logger receives structured job-lifecycle events carrying the
	// submission's trace ID. Nil discards them.
	Logger *slog.Logger
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Name == "" {
		c.Name = "node"
	}
	if c.Machine.RAM == 0 {
		c.Machine = simos.LinuxLabMachine(1)
	}
	if c.MonitorPeriod == 0 {
		c.MonitorPeriod = 5 * time.Second
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 50 * time.Millisecond
	}
	if c.HeartbeatMaxBackoff == 0 {
		c.HeartbeatMaxBackoff = 16 * c.HeartbeatEvery
	}
	if c.HeartbeatJitter == 0 {
		c.HeartbeatJitter = 0.1
	}
	if c.HeartbeatJitter < 0 {
		c.HeartbeatJitter = 0
	}
	if len(c.RegistryAddrs) > 0 {
		c.RegistryAddr = "" // shard routing owns registry traffic
	}
	if c.MaxJobVirtual == 0 {
		c.MaxJobVirtual = 24 * time.Hour
	}
	return c
}

// Node is a published FGCS resource: a machine plus the non-intrusive
// monitoring stack, reachable over TCP.
type Node struct {
	cfg    NodeConfig
	met    *nodeMetrics // nil when NodeConfig.Metrics is nil
	log    *slog.Logger
	ring   *ShardRing // nil for single-registry deployments
	gossip *Gossiper  // nil unless NodeConfig.Gossip is set
	hbRand *rand.Rand // heartbeat jitter source, seeded by the node name

	mu        sync.Mutex
	machine   *simos.Machine
	sampler   *monitor.MachineSampler
	mon       *monitor.Monitor
	det       *availability.Detector
	host      *simos.Process
	crashed   bool
	done      map[string]JobResult
	execs     map[string]int
	lastState string
	lastLoad  float64
	gen       int64

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// NewNode starts a node listening on addr and, if configured, registers it
// with the registry and begins heartbeating.
func NewNode(addr string, cfg NodeConfig) (*Node, error) {
	cfg = cfg.withDefaults()
	machine, err := simos.NewMachine(cfg.Machine)
	if err != nil {
		return nil, err
	}
	det, err := availability.NewDetector(cfg.Detector)
	if err != nil {
		return nil, err
	}
	mon, err := monitor.New(monitor.Config{Period: cfg.MonitorPeriod, SmoothWindow: 1})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ishare: node listen: %w", err)
	}
	n := &Node{
		cfg:       cfg,
		log:       loggerOrDiscard(cfg.Logger).With("node", cfg.Name),
		hbRand:    rand.New(rand.NewSource(int64(fnv64a(cfg.Name)))),
		machine:   machine,
		mon:       mon,
		det:       det,
		ln:        ln,
		done:      make(map[string]JobResult),
		execs:     make(map[string]int),
		lastState: det.State().String(),
		gen:       1,
		closed:    make(chan struct{}),
	}
	if len(cfg.RegistryAddrs) > 0 {
		n.ring, err = NewShardRing(cfg.RegistryAddrs, 0)
		if err != nil {
			ln.Close()
			return nil, err
		}
	}
	if cfg.Metrics != nil {
		n.met = newNodeMetrics(cfg.Metrics, cfg.Name)
	}
	n.sampler = monitor.NewMachineSampler(machine)
	n.setHostLocked(cfg.HostLoad, 300*simos.MB)

	if cfg.Gossip != nil {
		gcfg := *cfg.Gossip
		gcfg.Self = n.selfDigest
		if gcfg.Dialer == nil {
			gcfg.Dialer = cfg.Dialer
		}
		if gcfg.Limits == (Limits{}) {
			gcfg.Limits = cfg.Limits
		}
		if gcfg.Seed == 0 {
			gcfg.Seed = int64(fnv64a(cfg.Name))
		}
		n.gossip = NewGossiper(gcfg)
		n.gossip.Start()
	}

	n.wg.Add(1)
	go n.acceptLoop()

	if n.hasRegistry() {
		if err := n.register(); err != nil {
			n.Close()
			return nil, err
		}
		n.wg.Add(1)
		go n.heartbeatLoop()
	}
	return n, nil
}

// hasRegistry reports whether the node was configured to publish itself.
func (n *Node) hasRegistry() bool {
	return n.cfg.RegistryAddr != "" || n.ring != nil
}

// registryAddr resolves where this node's registry traffic goes: the ring
// shard owning its name, or the single configured registry.
func (n *Node) registryAddr() string {
	if n.ring != nil {
		return n.ring.Addr(n.cfg.Name)
	}
	return n.cfg.RegistryAddr
}

// Gossiper returns the node's gossip store (nil unless enabled).
func (n *Node) Gossiper() *Gossiper { return n.gossip }

// selfDigest is the node's own availability digest: its last observed
// state and host load, with a generation that advances on state changes.
func (n *Node) selfDigest() NodeDigest {
	n.mu.Lock()
	defer n.mu.Unlock()
	return NodeDigest{
		Name: n.cfg.Name, Addr: n.Addr(),
		State: n.lastState, Load: n.lastLoad, Gen: n.gen,
		UnixMS: time.Now().UnixMilli(),
	}
}

// noteStateLocked records the latest availability observation for
// heartbeat digests and gossip; the generation advances when the state
// class changes. Caller holds n.mu.
func (n *Node) noteStateLocked(state availability.State, hostCPU float64) {
	s := state.String()
	if s != n.lastState {
		n.gen++
	}
	n.lastState = s
	n.lastLoad = hostCPU
}

// Addr returns the node's dial address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Close stops the node (its heartbeats cease, which the registry will
// eventually report as URR).
func (n *Node) Close() error {
	select {
	case <-n.closed:
		return nil
	default:
	}
	close(n.closed)
	err := n.ln.Close()
	n.wg.Wait()
	if n.gossip != nil {
		n.gossip.Close()
	}
	return err
}

// ExecutionCounts reports, per job ID, how many times a submission ran to
// completion on this node. It exists for exactly-once assertions in fault
// tests; IDs that were deduplicated count once.
func (n *Node) ExecutionCounts() map[string]int {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]int, len(n.execs))
	for id, c := range n.execs {
		out[id] = c
	}
	return out
}

// rpc sends one registry-bound request through the node's dialer to the
// shard owning this node's name.
func (n *Node) rpc(req Request, timeout time.Duration) (*Response, error) {
	lim := n.cfg.Limits.withDefaults()
	return roundTrip(context.Background(), n.cfg.Dialer, n.registryAddr(), req, timeout, lim.MaxMessageBytes)
}

// digestFields stamps the node's current availability digest onto a
// registry-bound request so discovery can rank it without an Info query.
func (n *Node) digestFields(req Request) Request {
	d := n.selfDigest()
	req.State, req.Load, req.Gen = d.State, d.Load, d.Gen
	return req
}

func (n *Node) register() error {
	resp, err := n.rpc(n.digestFields(Request{Op: "register", Name: n.cfg.Name, Addr: n.Addr()}), 2*time.Second)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("ishare: register rejected: %s", resp.Error)
	}
	return nil
}

// jitterHB spreads one heartbeat delay by ±HeartbeatJitter.
func (n *Node) jitterHB(d time.Duration) time.Duration {
	f := n.cfg.HeartbeatJitter
	if f <= 0 || d <= 0 {
		return d
	}
	// u in [-1, 1): the node-name-seeded source makes the schedule
	// reproducible per node while decorrelating nodes from each other.
	u := 2*n.hbRand.Float64() - 1
	j := time.Duration(float64(d) * (1 + f*u))
	if j <= 0 {
		j = time.Millisecond
	}
	return j
}

// heartbeatLoop keeps the registry's liveness view fresh. When the
// registry is unreachable the node degrades gracefully: local jobs keep
// running, heartbeat attempts back off exponentially (capped), and the
// node re-registers as soon as the registry answers again — including the
// case where the registry came back empty and no longer knows the node.
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	interval := n.cfg.HeartbeatEvery
	fails := 0
	var shedFloor time.Duration // last shed's retry-after hint
	timer := time.NewTimer(n.jitterHB(interval))
	defer timer.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-timer.C:
		}
		resp, err := n.rpc(n.digestFields(Request{Op: "heartbeat", Name: n.cfg.Name}), time.Second)
		switch {
		case err != nil:
			fails++
			if n.met != nil {
				n.met.heartbeatFailures.Inc()
			}
		case !resp.OK && resp.RetryAfterMS > 0:
			// The registry shed us under overload. Re-registering now would
			// add to the very herd the registry is trying to absorb; back
			// off at least as long as the hint and heartbeat again.
			fails++
			shedFloor = time.Duration(resp.RetryAfterMS) * time.Millisecond
			if n.met != nil {
				n.met.heartbeatFailures.Inc()
			}
		case !resp.OK:
			// The registry answered but has forgotten us: re-register.
			if err := n.register(); err != nil {
				fails++
				if n.met != nil {
					n.met.heartbeatFailures.Inc()
				}
			} else {
				fails = 0
				if n.met != nil {
					n.met.reregisters.Inc()
				}
				n.log.Info("re-registered after registry forgot node")
			}
		default:
			fails = 0
		}
		next := interval
		if fails > 0 {
			next = interval << uint(min(fails, 10))
			if next > n.cfg.HeartbeatMaxBackoff {
				next = n.cfg.HeartbeatMaxBackoff
			}
		}
		if next < shedFloor {
			next = shedFloor
		}
		shedFloor = 0
		timer.Reset(n.jitterHB(next))
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				continue
			}
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			serveConn(conn, n.cfg.Limits, n.handle)
		}()
	}
}

// setHostLocked replaces the node's synthetic host workload. Caller holds
// no lock for construction; at runtime callers hold n.mu.
func (n *Node) setHostLocked(load float64, mem int64) {
	if n.host != nil {
		n.host.Kill()
	}
	if mem <= 0 {
		mem = 300 * simos.MB
	}
	var b simos.Behavior
	if n.cfg.InteractiveHost {
		b = workload.DefaultInteractiveSession()
	} else {
		b = &workload.DutyCycle{Usage: load, Period: workload.DefaultPeriod, Jitter: 0.1}
	}
	n.host = n.machine.Spawn("host-load", simos.Host, 0, mem, b)
}

// crashNowLocked implements the CrashAtVirtual fault: once the virtual
// clock passes the crash point the node's service is gone — the current
// exchange is dropped mid-stream and the whole node shuts down.
func (n *Node) crashNowLocked() bool {
	if n.crashed {
		return true
	}
	if n.cfg.CrashAtVirtual > 0 && n.machine.Now() >= n.cfg.CrashAtVirtual {
		n.crashed = true
		if n.met != nil {
			n.met.crashes.Inc()
		}
		n.log.Warn("crash fault fired", "virtual_now", n.machine.Now().String())
		go n.Close()
		return true
	}
	return false
}

func (n *Node) handle(req Request) *Response {
	n.mu.Lock()
	crashed := n.crashed
	n.mu.Unlock()
	if crashed {
		return nil // service is dead: drop without replying
	}
	switch req.Op {
	case "info":
		return n.info()
	case "sethost":
		n.mu.Lock()
		n.setHostLocked(req.HostLoad, req.HostMemMB*simos.MB)
		n.mu.Unlock()
		return &Response{OK: true}
	case "submit":
		if req.Job == nil {
			return &Response{OK: false, Error: "submit requires a job"}
		}
		return n.submit(*req.Job, req.Trace)
	case "gossip":
		if n.gossip == nil {
			return &Response{OK: false, Error: "gossip not enabled"}
		}
		return n.gossip.HandleRequest(req)
	default:
		return &Response{OK: false, Error: "unknown op " + req.Op}
	}
}

// info advances the machine one monitor period and reports the state.
func (n *Node) info() *Response {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.machine.Run(n.cfg.MonitorPeriod)
	if n.crashNowLocked() {
		return nil
	}
	obs := n.mon.Observe(n.sampler.Sample())
	state, _ := n.det.Observe(obs)
	n.noteStateLocked(state, obs.HostCPU)
	if n.met != nil {
		n.met.state.Set(float64(state))
	}
	return &Response{OK: true, Info: &NodeStatus{
		State:        state.String(),
		HostCPU:      obs.HostCPU,
		FreeMemMB:    obs.FreeMem / simos.MB,
		VirtualNowMS: int64(n.machine.Now() / time.Millisecond),
	}}
}

// submit runs a guest job under the five-state controller until it
// completes, is killed, or exhausts the virtual-time budget. A job
// carrying an already-completed ID returns the cached result instead of
// re-running; a job carrying a resume offset runs only the remaining work
// and reports cumulative progress.
func (n *Node) submit(spec JobSpec, trace string) *Response {
	if spec.CPUSeconds <= 0 {
		return &Response{OK: false, Error: "job needs positive cpu_seconds"}
	}
	if spec.ResumeCPUSeconds < 0 || spec.ResumeCPUSeconds >= spec.CPUSeconds {
		return &Response{OK: false, Error: fmt.Sprintf(
			"resume offset %.1f outside [0, %.1f)", spec.ResumeCPUSeconds, spec.CPUSeconds)}
	}
	rss := spec.RSSMB * simos.MB
	if rss <= 0 {
		rss = 64 * simos.MB
	}
	n.mu.Lock()
	defer n.mu.Unlock()

	if spec.ID != "" {
		if cached, ok := n.done[spec.ID]; ok {
			cached.Deduped = true
			if n.met != nil {
				n.met.dedupHits.Inc()
			}
			n.log.Info("submission answered from dedup cache", "trace", trace, "job", spec.ID)
			return &Response{OK: true, Job: &cached}
		}
	}
	n.log.Info("job accepted", "trace", trace, "job", spec.ID,
		"cpu_seconds", spec.CPUSeconds, "resume_cpu_seconds", spec.ResumeCPUSeconds)

	remaining := time.Duration((spec.CPUSeconds - spec.ResumeCPUSeconds) * float64(time.Second))
	work := &workload.FiniteWork{Total: remaining, Usage: 1}
	guest := n.machine.Spawn(spec.Name, simos.Guest, 0, rss, work)
	ctrl := availability.NewController(n.det, guest)

	start := n.machine.Now()
	deadline := start + n.cfg.MaxJobVirtual
	result := JobResult{ResumedFrom: spec.ResumeCPUSeconds}
	var state availability.State = n.det.State()

	for n.machine.Now() < deadline {
		n.machine.Run(n.cfg.MonitorPeriod)
		if n.crashNowLocked() {
			// The machine is revoked mid-job: the guest dies with the
			// service and the client sees a dropped connection.
			guest.Kill()
			return nil
		}
		obs := n.mon.Observe(n.sampler.Sample())
		var action availability.Action
		state, action, _ = ctrl.Observe(obs)
		n.noteStateLocked(state, obs.HostCPU)
		if action == availability.ActionSuspend {
			result.Suspensions++
			if n.met != nil {
				n.met.suspensions.Inc()
			}
		}
		if !ctrl.GuestAlive() {
			result.Outcome = "killed"
			break
		}
		if !guest.Alive() {
			result.Completed = true
			result.Outcome = "completed"
			break
		}
	}
	if result.Outcome == "" {
		result.Outcome = "timeout"
		guest.Kill()
	}
	result.FinalState = state.String()
	result.GuestCPUSeconds = spec.ResumeCPUSeconds + guest.CPUTime().Seconds()
	result.WallSeconds = (n.machine.Now() - start).Seconds()
	if spec.ID != "" && result.Completed {
		n.done[spec.ID] = result
		n.execs[spec.ID]++
	}
	if n.met != nil {
		n.met.job(n.cfg.Name, result.Outcome).Inc()
		n.met.jobWallSeconds.Observe(result.WallSeconds)
		n.met.state.Set(float64(state)) // S1 == 1 .. S5 == 5
	}
	n.log.Info("job finished", "trace", trace, "job", spec.ID, "outcome", result.Outcome,
		"final_state", result.FinalState, "guest_cpu_seconds", result.GuestCPUSeconds,
		"suspensions", result.Suspensions)
	return &Response{OK: true, Job: &result}
}
