package ishare

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/availability"
	"repro/internal/monitor"
	"repro/internal/simos"
	"repro/internal/workload"
)

// NodeConfig describes a published resource.
type NodeConfig struct {
	// Name is the node's registry name.
	Name string
	// Machine is the simulated machine the node publishes.
	Machine simos.MachineConfig
	// Detector configures the availability detector.
	Detector availability.Config
	// MonitorPeriod is the virtual sampling period while jobs run.
	MonitorPeriod time.Duration
	// HostLoad is the initial synthetic host load.
	HostLoad float64
	// InteractiveHost, when set, runs a Musbus-style interactive session
	// as the host workload instead of a flat duty cycle; HostLoad is then
	// ignored.
	InteractiveHost bool
	// RegistryAddr, when set, makes the node register and heartbeat.
	RegistryAddr string
	// HeartbeatEvery is the wall-clock heartbeat interval.
	HeartbeatEvery time.Duration
	// MaxJobVirtual caps how much virtual time one submission may occupy.
	MaxJobVirtual time.Duration
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.Name == "" {
		c.Name = "node"
	}
	if c.Machine.RAM == 0 {
		c.Machine = simos.LinuxLabMachine(1)
	}
	if c.MonitorPeriod == 0 {
		c.MonitorPeriod = 5 * time.Second
	}
	if c.HeartbeatEvery == 0 {
		c.HeartbeatEvery = 50 * time.Millisecond
	}
	if c.MaxJobVirtual == 0 {
		c.MaxJobVirtual = 24 * time.Hour
	}
	return c
}

// Node is a published FGCS resource: a machine plus the non-intrusive
// monitoring stack, reachable over TCP.
type Node struct {
	cfg NodeConfig

	mu      sync.Mutex
	machine *simos.Machine
	sampler *monitor.MachineSampler
	mon     *monitor.Monitor
	det     *availability.Detector
	host    *simos.Process

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// NewNode starts a node listening on addr and, if configured, registers it
// with the registry and begins heartbeating.
func NewNode(addr string, cfg NodeConfig) (*Node, error) {
	cfg = cfg.withDefaults()
	machine, err := simos.NewMachine(cfg.Machine)
	if err != nil {
		return nil, err
	}
	det, err := availability.NewDetector(cfg.Detector)
	if err != nil {
		return nil, err
	}
	mon, err := monitor.New(monitor.Config{Period: cfg.MonitorPeriod, SmoothWindow: 1})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("ishare: node listen: %w", err)
	}
	n := &Node{
		cfg:     cfg,
		machine: machine,
		mon:     mon,
		det:     det,
		ln:      ln,
		closed:  make(chan struct{}),
	}
	n.sampler = monitor.NewMachineSampler(machine)
	n.setHostLocked(cfg.HostLoad, 300*simos.MB)

	n.wg.Add(1)
	go n.acceptLoop()

	if cfg.RegistryAddr != "" {
		if err := n.register(); err != nil {
			n.Close()
			return nil, err
		}
		n.wg.Add(1)
		go n.heartbeatLoop()
	}
	return n, nil
}

// Addr returns the node's dial address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Close stops the node (its heartbeats cease, which the registry will
// eventually report as URR).
func (n *Node) Close() error {
	select {
	case <-n.closed:
		return nil
	default:
	}
	close(n.closed)
	err := n.ln.Close()
	n.wg.Wait()
	return err
}

func (n *Node) register() error {
	resp, err := roundTrip(n.cfg.RegistryAddr, Request{
		Op: "register", Name: n.cfg.Name, Addr: n.Addr(),
	}, 2*time.Second)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("ishare: register rejected: %s", resp.Error)
	}
	return nil
}

func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-n.closed:
			return
		case <-tick.C:
			_, _ = roundTrip(n.cfg.RegistryAddr, Request{Op: "heartbeat", Name: n.cfg.Name}, time.Second)
		}
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				continue
			}
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			serveConn(conn, n.handle)
		}()
	}
}

// setHostLocked replaces the node's synthetic host workload. Caller holds
// no lock for construction; at runtime callers hold n.mu.
func (n *Node) setHostLocked(load float64, mem int64) {
	if n.host != nil {
		n.host.Kill()
	}
	if mem <= 0 {
		mem = 300 * simos.MB
	}
	var b simos.Behavior
	if n.cfg.InteractiveHost {
		b = workload.DefaultInteractiveSession()
	} else {
		b = &workload.DutyCycle{Usage: load, Period: workload.DefaultPeriod, Jitter: 0.1}
	}
	n.host = n.machine.Spawn("host-load", simos.Host, 0, mem, b)
}

func (n *Node) handle(req Request) Response {
	switch req.Op {
	case "info":
		return n.info()
	case "sethost":
		n.mu.Lock()
		n.setHostLocked(req.HostLoad, req.HostMemMB*simos.MB)
		n.mu.Unlock()
		return Response{OK: true}
	case "submit":
		if req.Job == nil {
			return Response{OK: false, Error: "submit requires a job"}
		}
		return n.submit(*req.Job)
	default:
		return Response{OK: false, Error: "unknown op " + req.Op}
	}
}

// info advances the machine one monitor period and reports the state.
func (n *Node) info() Response {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.machine.Run(n.cfg.MonitorPeriod)
	obs := n.mon.Observe(n.sampler.Sample())
	state, _ := n.det.Observe(obs)
	return Response{OK: true, Info: &NodeStatus{
		State:        state.String(),
		HostCPU:      obs.HostCPU,
		FreeMemMB:    obs.FreeMem / simos.MB,
		VirtualNowMS: int64(n.machine.Now() / time.Millisecond),
	}}
}

// submit runs a guest job under the five-state controller until it
// completes, is killed, or exhausts the virtual-time budget.
func (n *Node) submit(spec JobSpec) Response {
	if spec.CPUSeconds <= 0 {
		return Response{OK: false, Error: "job needs positive cpu_seconds"}
	}
	rss := spec.RSSMB * simos.MB
	if rss <= 0 {
		rss = 64 * simos.MB
	}
	n.mu.Lock()
	defer n.mu.Unlock()

	work := &workload.FiniteWork{Total: time.Duration(spec.CPUSeconds * float64(time.Second)), Usage: 1}
	guest := n.machine.Spawn(spec.Name, simos.Guest, 0, rss, work)
	ctrl := availability.NewController(n.det, guest)

	start := n.machine.Now()
	deadline := start + n.cfg.MaxJobVirtual
	result := JobResult{}
	var state availability.State = n.det.State()

	for n.machine.Now() < deadline {
		n.machine.Run(n.cfg.MonitorPeriod)
		obs := n.mon.Observe(n.sampler.Sample())
		var action availability.Action
		state, action, _ = ctrl.Observe(obs)
		if action == availability.ActionSuspend {
			result.Suspensions++
		}
		if !ctrl.GuestAlive() {
			result.Outcome = "killed"
			break
		}
		if !guest.Alive() {
			result.Completed = true
			result.Outcome = "completed"
			break
		}
	}
	if result.Outcome == "" {
		result.Outcome = "timeout"
		guest.Kill()
	}
	result.FinalState = state.String()
	result.GuestCPUSeconds = guest.CPUTime().Seconds()
	result.WallSeconds = (n.machine.Now() - start).Seconds()
	return Response{OK: true, Job: &result}
}
