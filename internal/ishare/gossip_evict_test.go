package ishare

import (
	"fmt"
	"testing"
	"time"
)

// TestGossipEvictionBoundsStore churns 10k nodes through a gossiper with
// a retention bound: each joins, refreshes for a while, then departs
// forever. Without eviction the store grows monotonically to the total
// churn; with it, the live set plus the retention window is the ceiling.
func TestGossipEvictionBoundsStore(t *testing.T) {
	clk := &fakeClock{t: time.Unix(10_000, 0)}
	g := NewGossiper(GossipConfig{EvictAfter: 30 * time.Second})
	g.now = clk.now

	const (
		total    = 10_000
		liveSpan = 200 // nodes joined within the last liveSpan steps refresh
		step     = time.Second
	)
	maxLen := 0
	for i := 0; i < total; i++ {
		clk.advance(step)
		now := clk.now().UnixMilli()
		// New node joins.
		g.Merge([]NodeDigest{{
			Name: fmt.Sprintf("churn-%05d", i), Addr: fmt.Sprintf("10.9.%d.%d:70", i/250%250, i%250),
			State: "S1(full)", Gen: 1, UnixMS: now,
		}})
		// Recent joiners heartbeat with fresh stamps; older ones are gone
		// and only ever re-gossiped with their frozen final stamp.
		var beat []NodeDigest
		for j := i - liveSpan; j < i; j += 37 {
			if j < 0 {
				continue
			}
			beat = append(beat, NodeDigest{
				Name: fmt.Sprintf("churn-%05d", j), State: "S1(full)", Gen: 2, UnixMS: now,
			})
		}
		// A peer re-gossips a long-departed node's last digest: the stale
		// stamp must not refresh the entry's lifetime.
		if old := i - 2*liveSpan; old >= 0 {
			beat = append(beat, NodeDigest{
				Name: fmt.Sprintf("churn-%05d", old), State: "S2(reduced)", Gen: 1,
				UnixMS: now - 2*(30*time.Second).Milliseconds(),
			})
		}
		g.Merge(beat)
		if n := g.Len(); n > maxLen {
			maxLen = n
		}
	}
	// 30s retention at 1 step/s means ~30 un-refreshed joiners plus the
	// refreshed live span can be resident; far below total churn.
	bound := liveSpan + 40
	if maxLen > bound {
		t.Fatalf("store peaked at %d digests over %d churned nodes, want <= %d", maxLen, total, bound)
	}
	// Long idle: an explicit sweep drains everything.
	clk.advance(5 * time.Minute)
	g.Sweep()
	if n := g.Len(); n != 0 {
		t.Fatalf("store holds %d digests after full retention lapse", n)
	}
	if len(g.seen) != 0 {
		t.Fatalf("seen map holds %d entries after full eviction", len(g.seen))
	}
}

// TestGossipEvictionStamplessFallback: digests without an observation
// stamp age from local receipt time instead of living forever.
func TestGossipEvictionStamplessFallback(t *testing.T) {
	clk := &fakeClock{t: time.Unix(20_000, 0)}
	g := NewGossiper(GossipConfig{EvictAfter: 10 * time.Second})
	g.now = clk.now
	g.Merge([]NodeDigest{{Name: "stampless", Addr: "10.0.0.1:70", State: "S1(full)"}})
	clk.advance(5 * time.Second)
	g.Sweep()
	if g.Len() != 1 {
		t.Fatal("digest evicted before retention elapsed")
	}
	clk.advance(6 * time.Second)
	g.Sweep()
	if g.Len() != 0 {
		t.Fatal("stampless digest survived past retention")
	}
}

// TestGossipZeroRetentionKeepsForever pins the pre-eviction default.
func TestGossipZeroRetentionKeepsForever(t *testing.T) {
	clk := &fakeClock{t: time.Unix(30_000, 0)}
	g := NewGossiper(GossipConfig{})
	g.now = clk.now
	g.Merge([]NodeDigest{{Name: "keeper", Addr: "10.0.0.2:70", State: "S1(full)", UnixMS: 1}})
	clk.advance(24 * time.Hour)
	if g.Sweep() != 0 || g.Len() != 1 {
		t.Fatal("zero EvictAfter must keep digests indefinitely")
	}
}
