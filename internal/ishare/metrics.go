package ishare

import (
	"context"
	"log/slog"

	"repro/internal/obs"
)

// This file is the observability seam of the networked layer: every
// component (broker, client, node, registry) registers its counters and
// latency histograms in an obs.Registry — caller-supplied so one process
// exports everything on a single /metrics endpoint, or a private registry
// when none is given — and per-job trace IDs ride the protocol so one
// logical submission can be followed across broker rounds, failovers and
// node-side execution in the structured logs of every participant.

// traceKey carries a per-job trace ID in a context.
type traceKey struct{}

// WithTraceID returns a context carrying the given trace ID. The client
// stamps it into every outgoing Request, so all exchanges of one logical
// operation share an ID across processes.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceIDFrom extracts the trace ID from a context ("" when absent).
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// discardLogger is the default for components whose config carries no
// *slog.Logger: instrumentation must be silent unless asked for.
var discardLogger = slog.New(slog.DiscardHandler)

func loggerOrDiscard(l *slog.Logger) *slog.Logger {
	if l == nil {
		return discardLogger
	}
	return l
}

// requestSecondsBuckets spans sub-millisecond local exchanges up to the
// multi-second retry budgets of partitioned registries.
var requestSecondsBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30}

// brokerMetrics are the broker's recovery counters, registry-backed so
// they are atomic (Metrics() snapshots race-free) and scrapable.
type brokerMetrics struct {
	staleServes     *obs.Counter
	registryErrors  *obs.Counter
	shardErrors     *obs.Counter
	gossipServes    *obs.Counter
	infoFailures    *obs.Counter
	failovers       *obs.Counter
	sameNodeRetries *obs.Counter
	resubmissions   *obs.Counter
	dedupHits       *obs.Counter
	breakerOpens    *obs.Counter
	breakerShorts   *obs.Counter
	submissions     *obs.Counter
	completions     *obs.Counter
	submitSeconds   *obs.Histogram
	discoverSeconds *obs.Histogram
}

func newBrokerMetrics(r *obs.Registry) *brokerMetrics {
	return &brokerMetrics{
		staleServes:     r.Counter("fgcs_broker_stale_serves_total", "per-shard candidate lists served from the cached node list during registry partitions"),
		registryErrors:  r.Counter("fgcs_broker_registry_errors_total", "discovery attempts that failed with no usable cache on any shard"),
		shardErrors:     r.Counter("fgcs_broker_shard_errors_total", "individual shard list calls that failed during fan-out discovery"),
		gossipServes:    r.Counter("fgcs_broker_gossip_serves_total", "candidate lists served from the gossip store with every registry shard unreachable"),
		infoFailures:    r.Counter("fgcs_broker_info_failures_total", "alive-listed nodes whose Info query failed"),
		failovers:       r.Counter("fgcs_broker_failovers_total", "submissions moved to the next candidate after a transport failure"),
		sameNodeRetries: r.Counter("fgcs_broker_same_node_retries_total", "dedup-safe immediate retries on the same node after a dropped response"),
		resubmissions:   r.Counter("fgcs_broker_resubmissions_total", "jobs resubmitted from a checkpoint after being killed or timing out"),
		dedupHits:       r.Counter("fgcs_broker_dedup_hits_total", "submissions answered from a node's completed-job cache"),
		breakerOpens:    r.Counter("fgcs_broker_breaker_opens_total", "per-shard circuit breakers tripped open after consecutive failures"),
		breakerShorts:   r.Counter("fgcs_broker_breaker_short_circuits_total", "shard list calls skipped because the shard's breaker was open"),
		submissions:     r.Counter("fgcs_broker_submissions_total", "SubmitBest calls"),
		completions:     r.Counter("fgcs_broker_completions_total", "SubmitBest calls that returned a completed job"),
		submitSeconds:   r.Histogram("fgcs_broker_submit_seconds", "wall time of one SubmitBest call", requestSecondsBuckets),
		discoverSeconds: r.Histogram("fgcs_broker_discover_seconds", "wall time of one fan-out discovery across all shards", requestSecondsBuckets),
	}
}

// gossipMetrics count a gossiper's anti-entropy traffic.
type gossipMetrics struct {
	exchanges *obs.Counter
	serves    *obs.Counter
	failures  *obs.Counter
	merged    *obs.Counter
}

func newGossipMetrics(r *obs.Registry) *gossipMetrics {
	return &gossipMetrics{
		exchanges: r.Counter("fgcs_gossip_exchanges_total", "successful outgoing push-pull exchanges"),
		serves:    r.Counter("fgcs_gossip_serves_total", "incoming gossip exchanges answered"),
		failures:  r.Counter("fgcs_gossip_failures_total", "outgoing exchanges that failed transport or protocol"),
		merged:    r.Counter("fgcs_gossip_digests_merged_total", "digests accepted as news into the store"),
	}
}

// clientMetrics count the client's request traffic per operation.
type clientMetrics struct {
	reg *obs.Registry
}

func newClientMetrics(r *obs.Registry) *clientMetrics {
	return &clientMetrics{reg: r}
}

func (m *clientMetrics) request(op string) *obs.Counter {
	return m.reg.Counter("fgcs_client_requests_total", "logical client exchanges by operation", obs.L("op", op))
}

func (m *clientMetrics) retry(op string) *obs.Counter {
	return m.reg.Counter("fgcs_client_retries_total", "transport-level retries of idempotent operations", obs.L("op", op))
}

func (m *clientMetrics) failure(op string) *obs.Counter {
	return m.reg.Counter("fgcs_client_failures_total", "exchanges that exhausted their attempt budget", obs.L("op", op))
}

func (m *clientMetrics) latency(op string) *obs.Histogram {
	return m.reg.Histogram("fgcs_client_request_seconds", "wall time of one logical exchange including retries", requestSecondsBuckets, obs.L("op", op))
}

// nodeMetrics count a node agent's job lifecycle and liveness machinery.
type nodeMetrics struct {
	reg *obs.Registry

	dedupHits         *obs.Counter
	suspensions       *obs.Counter
	crashes           *obs.Counter
	heartbeatFailures *obs.Counter
	reregisters       *obs.Counter
	state             *obs.Gauge
	jobWallSeconds    *obs.Histogram
}

func newNodeMetrics(r *obs.Registry, name string) *nodeMetrics {
	node := obs.L("node", name)
	m := &nodeMetrics{
		reg:               r,
		dedupHits:         r.Counter("fgcs_node_dedup_hits_total", "submissions answered from the completed-job cache", node),
		suspensions:       r.Counter("fgcs_node_suspensions_total", "transient-spike suspensions applied to guest jobs", node),
		crashes:           r.Counter("fgcs_node_crashes_total", "CrashAtVirtual faults fired", node),
		heartbeatFailures: r.Counter("fgcs_node_heartbeat_failures_total", "heartbeat attempts that failed transport or re-registration", node),
		reregisters:       r.Counter("fgcs_node_reregisters_total", "successful re-registrations after the registry forgot the node", node),
		state:             r.Gauge("fgcs_node_state", "last observed availability state (1=S1 .. 5=S5)", node),
		jobWallSeconds:    r.Histogram("fgcs_node_job_wall_seconds", "virtual wall time jobs occupied the node", []float64{1, 10, 60, 300, 900, 3600, 4 * 3600, 24 * 3600}, node),
	}
	// Outcome counters are created eagerly so a scrape shows the full
	// family before the first job arrives.
	for _, o := range []string{"completed", "killed", "timeout"} {
		m.job(name, o)
	}
	return m
}

func (m *nodeMetrics) job(name, outcome string) *obs.Counter {
	return m.reg.Counter("fgcs_node_jobs_total", "guest jobs finished by outcome", obs.L("node", name), obs.L("outcome", outcome))
}

// registryMetrics count the discovery service's traffic and liveness view.
type registryMetrics struct {
	requests        map[string]*obs.Counter
	unknownHB       *obs.Counter
	batched         *obs.Counter
	nodes           *obs.Gauge
	alive           *obs.Gauge
	sheds           *obs.Counter
	walAppends      *obs.Counter
	walCompactions  *obs.Counter
	recovered       *obs.Gauge
	forecasts       *obs.Counter
	forecastLatency *obs.Histogram
}

func newRegistryMetrics(r *obs.Registry) *registryMetrics {
	m := &registryMetrics{
		requests:       make(map[string]*obs.Counter),
		unknownHB:      r.Counter("fgcs_registry_unknown_heartbeats_total", "heartbeats from nodes the registry does not know"),
		batched:        r.Counter("fgcs_registry_batched_entries_total", "node entries carried by register_batch and heartbeat_batch requests"),
		nodes:          r.Gauge("fgcs_registry_nodes", "registered nodes"),
		alive:          r.Gauge("fgcs_registry_alive_nodes", "nodes alive at the last list"),
		sheds:          r.Counter("fgcs_registry_sheds_total", "connections shed by admission control with a retry-after hint"),
		walAppends:     r.Counter("fgcs_registry_wal_appends_total", "mutation records appended to the write-ahead log"),
		walCompactions: r.Counter("fgcs_registry_wal_compactions_total", "snapshot-and-truncate compactions of the write-ahead log"),
		recovered:      r.Gauge("fgcs_registry_recovered_records", "WAL and snapshot records replayed at the last startup"),
		forecasts:      r.Counter("fgcs_registry_forecasts_total", "per-node forecasts served by the forecast op"),
		forecastLatency: r.Histogram("fgcs_registry_forecast_latency_seconds",
			"wall-clock latency of one forecast exchange's computation", obs.ExpBuckets(1e-6, 4, 12)),
	}
	for _, op := range []string{"register", "register_batch", "unregister", "heartbeat", "heartbeat_batch", "list", "shardmap", "forecast", "unknown"} {
		m.requests[op] = r.Counter("fgcs_registry_requests_total", "registry exchanges by operation", obs.L("op", op))
	}
	return m
}

func (m *registryMetrics) request(op string) {
	c, ok := m.requests[op]
	if !ok {
		c = m.requests["unknown"]
	}
	c.Inc()
}
