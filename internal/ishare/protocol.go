// Package ishare implements a miniature of the iShare system the paper's
// trace study runs on (Section 5): a resource registry for publication and
// discovery, node agents that publish machines and run the non-intrusive
// monitor/detector on them, and a client for job submission.
//
// The registry detects resource revocation (URR / S5) exactly as the paper
// describes: the FGCS service on a node stops responding — here, its
// heartbeats stop — and the resource is reported offline. Guest jobs
// submitted to a node run on the node's simulated machine under the
// five-state controller: they are reniced in S2, suspended through
// transient spikes, and killed on S3/S4.
//
// The wire protocol is one newline-delimited JSON request and response per
// TCP connection — deliberately simple, debuggable with netcat.
package ishare

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"
)

// Request is the single message type clients and nodes send.
type Request struct {
	// Op selects the action: "register", "unregister", "heartbeat",
	// "register_batch", "heartbeat_batch", "list", "shardmap", "forecast"
	// (registry); "info", "submit", "sethost", "gossip" (node).
	Op string `json:"op"`
	// Name identifies a node (register/unregister/heartbeat).
	Name string `json:"name,omitempty"`
	// Addr is the node's dial address (register).
	Addr string `json:"addr,omitempty"`
	// Job carries a submission (submit).
	Job *JobSpec `json:"job,omitempty"`
	// HostLoad sets the node's synthetic host load (sethost).
	HostLoad float64 `json:"host_load,omitempty"`
	// HostMemMB sets the node's synthetic host memory (sethost).
	HostMemMB int64 `json:"host_mem_mb,omitempty"`
	// State, Load and Gen are the availability digest a register or
	// heartbeat may carry (see NodeDigest); a registry that receives them
	// serves state-ranked discovery without per-node Info round trips.
	// Absent fields leave the stored digest untouched, so old nodes keep
	// working against new registries.
	State string  `json:"state,omitempty"`
	Load  float64 `json:"load,omitempty"`
	Gen   int64   `json:"gen,omitempty"`
	// Digests carries a batch of node states: the whole batch for
	// register_batch and heartbeat_batch, the sender's view for gossip.
	Digests []NodeDigest `json:"digests,omitempty"`
	// Names lists the nodes a forecast request asks about (forecast).
	Names []string `json:"names,omitempty"`
	// HorizonMS is how far ahead, in wall milliseconds, a forecast
	// request looks (forecast).
	HorizonMS int64 `json:"horizon_ms,omitempty"`
	// Limit bounds a list response to the best Limit available nodes,
	// ranked by digest state (S1 before S2 before unknown). Zero keeps the
	// legacy behavior: every registered node, dead ones included.
	Limit int `json:"limit,omitempty"`
	// Trace correlates this exchange with the logical operation (usually a
	// job placement) it belongs to: the client stamps the context's trace
	// ID here and serving components log it, so one job's discovery,
	// submissions, retries and failovers line up across process logs.
	Trace string `json:"trace,omitempty"`
}

// NodeDigest is the compact availability summary the scale-out control
// plane moves around: batched registrations and heartbeats carry them to
// registry shards, and the gossip layer anti-entropy-exchanges them
// between peers so placement survives losing every shard. Gen is the
// node's own version counter; a digest with a higher Gen (ties broken by
// the later UnixMS stamp) supersedes any older one for the same name.
type NodeDigest struct {
	Name  string  `json:"name"`
	Addr  string  `json:"addr,omitempty"`
	State string  `json:"state,omitempty"`
	Load  float64 `json:"load,omitempty"`
	Gen   int64   `json:"gen,omitempty"`
	// UnixMS is the wall-clock stamp of the observation behind this
	// digest; consumers bound staleness with it.
	UnixMS int64 `json:"unix_ms,omitempty"`
}

// Newer reports whether d supersedes the other digest for the same node.
func (d NodeDigest) Newer(o NodeDigest) bool {
	if d.Gen != o.Gen {
		return d.Gen > o.Gen
	}
	return d.UnixMS > o.UnixMS
}

// ShardMap is the versioned registry-shard list. Every shard of one
// deployment serves the same map, so a client bootstrapped with any one
// shard address can discover the full control plane; Gen lets a client
// replace its map when the deployment is resharded.
type ShardMap struct {
	Gen    int64    `json:"gen"`
	Shards []string `json:"shards"`
}

// JobSpec describes a guest job: a compute-bound batch program.
type JobSpec struct {
	Name string `json:"name"`
	// CPUSeconds is the total virtual CPU time the job needs, including
	// any portion already completed elsewhere (see ResumeCPUSeconds).
	CPUSeconds float64 `json:"cpu_seconds"`
	// RSSMB is the job's working set in MiB.
	RSSMB int64 `json:"rss_mb"`
	// ID identifies one logical submission across retries and failover.
	// Nodes remember completed IDs and return the cached result instead
	// of re-running, so a resubmission after a dropped response cannot
	// execute the job twice.
	ID string `json:"id,omitempty"`
	// ResumeCPUSeconds is virtual compute this job already completed on
	// another node before being killed there (URR/UEC). The node runs
	// only the remainder and reports cumulative progress.
	ResumeCPUSeconds float64 `json:"resume_cpu_seconds,omitempty"`
}

// NodeInfo is a registry entry.
type NodeInfo struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// Alive reports whether the node heartbeated within the TTL; a dead
	// entry is the observable signature of URR (state S5).
	Alive bool `json:"alive"`
	// LastSeenMS is the wall-clock time of the last heartbeat.
	LastSeenMS int64 `json:"last_seen_ms"`
	// State, Load and Gen echo the node's last reported availability
	// digest. State is empty for nodes that never reported one (legacy
	// agents); a broker falls back to a per-node Info query for those.
	State string  `json:"state,omitempty"`
	Load  float64 `json:"load,omitempty"`
	Gen   int64   `json:"gen,omitempty"`
}

// NodeStatus is a node's self-report.
type NodeStatus struct {
	// State is the current availability state string (e.g. "S1(full)").
	State string `json:"state"`
	// HostCPU is the last observed host load.
	HostCPU float64 `json:"host_cpu"`
	// FreeMemMB is the memory available for guests.
	FreeMemMB int64 `json:"free_mem_mb"`
	// VirtualNowMS is the machine's virtual clock.
	VirtualNowMS int64 `json:"virtual_now_ms"`
}

// JobResult reports a submission's fate.
type JobResult struct {
	// Completed is true when the guest finished its work.
	Completed bool `json:"completed"`
	// Outcome is "completed", "killed" or "timeout".
	Outcome string `json:"outcome"`
	// FinalState is the availability state when the job ended.
	FinalState string `json:"final_state"`
	// GuestCPUSeconds is the job's cumulative virtual compute: the resume
	// offset it started from plus the CPU time this node delivered. On a
	// kill it doubles as the checkpoint the broker resumes from.
	GuestCPUSeconds float64 `json:"guest_cpu_seconds"`
	// WallSeconds is the virtual wall time the job occupied the node.
	WallSeconds float64 `json:"wall_seconds"`
	// Suspensions counts transient-spike suspensions survived.
	Suspensions int `json:"suspensions"`
	// ResumedFrom echoes the resume offset this run started at.
	ResumedFrom float64 `json:"resumed_from,omitempty"`
	// Deduped is true when the node recognized a completed job ID and
	// returned the cached result without re-running.
	Deduped bool `json:"deduped,omitempty"`
}

// ForecastInfo is one node's availability forecast, digest-stamped
// (State/Gen/UnixMS echo the node's last heartbeat digest) so consumers
// can bound the staleness of the history behind it, exactly as they do
// for discovery results.
type ForecastInfo struct {
	Name string `json:"name"`
	// Known is false when the registry has never observed this node;
	// every forecast field then carries the documented cold-start prior.
	Known bool `json:"known"`
	// Survival is the history-window survival forecast over the horizon:
	// P(no unavailability event starts in the matching clock window),
	// from the same-clock-window history the paper's predictor uses.
	Survival float64 `json:"survival"`
	// EWMASurvival is the exponentially weighted daily-count forecast.
	EWMASurvival float64 `json:"ewma_survival,omitempty"`
	// RateSurvival is the hour-of-week rate-model forecast — the cheap
	// fallback that stays informative when the horizon is misaligned or
	// history is thin.
	RateSurvival float64 `json:"rate_survival,omitempty"`
	// ExpectedEvents is the forecast unavailability-event count.
	ExpectedEvents float64 `json:"expected_events,omitempty"`
	// Samples counts the history windows behind Survival (0 = prior).
	Samples int `json:"samples,omitempty"`
	// State, Gen and UnixMS echo the node's stored digest.
	State  string `json:"state,omitempty"`
	Gen    int64  `json:"gen,omitempty"`
	UnixMS int64  `json:"unix_ms,omitempty"`
}

// Response is the uniform reply envelope.
type Response struct {
	OK    bool        `json:"ok"`
	Error string      `json:"error,omitempty"`
	Nodes []NodeInfo  `json:"nodes,omitempty"`
	Info  *NodeStatus `json:"info,omitempty"`
	Job   *JobResult  `json:"job,omitempty"`
	// Digests is the peer's view in a gossip exchange.
	Digests []NodeDigest `json:"digests,omitempty"`
	// Missing names the heartbeat_batch entries the registry does not
	// know, so the sender can re-register exactly those.
	Missing []string `json:"missing,omitempty"`
	// ShardMap answers a shardmap request.
	ShardMap *ShardMap `json:"shard_map,omitempty"`
	// Forecasts answers a forecast request, one entry per requested name
	// in request order.
	Forecasts []ForecastInfo `json:"forecasts,omitempty"`
	// RetryAfterMS, on a load-shed failure (OK false), hints how long the
	// caller should back off before retrying. Zero on every other path.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// decodeRequest parses one bounded wire request from raw bytes. It is the
// exact decode path serveConn runs (same reader stack, same size limit),
// factored out so the fuzz targets exercise what production executes:
// malformed or truncated input must return an error, never panic, and
// the LimitedReader bounds allocation by maxBytes regardless of input.
func decodeRequest(data []byte, maxBytes int64) (Request, error) {
	if maxBytes <= 0 {
		maxBytes = Limits{}.withDefaults().MaxMessageBytes
	}
	lr := &io.LimitedReader{R: bytes.NewReader(data), N: maxBytes}
	var req Request
	if err := json.NewDecoder(bufio.NewReader(lr)).Decode(&req); err != nil {
		if lr.N <= 0 {
			return Request{}, fmt.Errorf("ishare: request exceeds %d bytes", maxBytes)
		}
		return Request{}, err
	}
	return req, nil
}

// decodeResponse parses one bounded wire response, mirroring roundTrip's
// read path for the fuzz targets.
func decodeResponse(data []byte, maxBytes int64) (Response, error) {
	if maxBytes <= 0 {
		maxBytes = Limits{}.withDefaults().MaxMessageBytes
	}
	lr := &io.LimitedReader{R: bytes.NewReader(data), N: maxBytes}
	var resp Response
	if err := json.NewDecoder(bufio.NewReader(lr)).Decode(&resp); err != nil {
		if lr.N <= 0 {
			return Response{}, fmt.Errorf("ishare: response exceeds %d bytes", maxBytes)
		}
		return Response{}, err
	}
	return resp, nil
}

// roundTrip dials addr through d, sends one request and reads one bounded
// response. The per-attempt timeout is clamped to the context deadline, so
// a caller-imposed budget bounds the whole exchange.
func roundTrip(ctx context.Context, d Dialer, addr string, req Request, timeout time.Duration, maxBytes int64) (*Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < timeout {
			timeout = rem
		}
	}
	if timeout <= 0 {
		return nil, fmt.Errorf("ishare: no time left for %q to %s: %w", req.Op, addr, context.DeadlineExceeded)
	}
	if maxBytes <= 0 {
		maxBytes = Limits{}.withDefaults().MaxMessageBytes
	}
	conn, err := dialerOrDefault(d).Dial(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("ishare: dialing %s: %w", addr, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	enc := json.NewEncoder(conn)
	if err := enc.Encode(req); err != nil {
		return nil, fmt.Errorf("ishare: sending %q: %w", req.Op, err)
	}
	lr := &io.LimitedReader{R: conn, N: maxBytes}
	var resp Response
	if err := json.NewDecoder(bufio.NewReader(lr)).Decode(&resp); err != nil {
		if lr.N <= 0 {
			return nil, fmt.Errorf("ishare: %q response to %s exceeds %d bytes", req.Op, addr, maxBytes)
		}
		return nil, fmt.Errorf("ishare: reading %q response: %w", req.Op, err)
	}
	return &resp, nil
}

// serveConn handles one request/response exchange with the given handler.
// The request read and response write are each bounded by lim. A nil
// response from the handler drops the connection without replying — the
// observable signature of a service that died mid-exchange.
func serveConn(conn net.Conn, lim Limits, handle func(Request) *Response) {
	defer conn.Close()
	lim = lim.withDefaults()
	_ = conn.SetDeadline(time.Now().Add(lim.IODeadline))
	lr := &io.LimitedReader{R: conn, N: lim.MaxMessageBytes}
	var req Request
	if err := json.NewDecoder(bufio.NewReader(lr)).Decode(&req); err != nil {
		msg := "bad request: " + err.Error()
		if lr.N <= 0 {
			msg = fmt.Sprintf("request exceeds %d bytes", lim.MaxMessageBytes)
		}
		_ = json.NewEncoder(conn).Encode(Response{OK: false, Error: msg})
		return
	}
	resp := handle(req)
	if resp == nil {
		return
	}
	// Handlers may run for a while (a submission simulates a whole job);
	// give the write its own fresh deadline rather than the leftovers.
	_ = conn.SetDeadline(time.Now().Add(lim.IODeadline))
	_ = json.NewEncoder(conn).Encode(resp)
}
