package ishare

import (
	"fmt"
	"testing"
	"time"
)

func benchDigests(n int) []NodeDigest {
	ds := make([]NodeDigest, n)
	for i := range ds {
		ds[i] = NodeDigest{Name: fmt.Sprintf("node-%06d", i), Addr: fmt.Sprintf("10.0.%d.%d:7070", i/256%256, i%256),
			State: "S1(full)", Load: 0.25, Gen: 3, UnixMS: 1700000000000}
	}
	return ds
}

func benchRegistry(b *testing.B, wal bool) *Registry {
	opt := RegistryOptions{TTL: time.Minute}
	if wal {
		opt.WAL = &WALOptions{Dir: b.TempDir()}
	}
	r, err := NewRegistryWithOptions("127.0.0.1:0", opt)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { r.Close() })
	return r
}

func BenchmarkHandleRegisterBatch(b *testing.B) {
	for _, wal := range []bool{false, true} {
		b.Run(fmt.Sprintf("wal=%v", wal), func(b *testing.B) {
			r := benchRegistry(b, wal)
			req := Request{Op: "register_batch", Digests: benchDigests(1000)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if resp := r.handle(req); !resp.OK {
					b.Fatal(resp.Error)
				}
			}
		})
	}
}

func BenchmarkHandleHeartbeatBatch(b *testing.B) {
	for _, wal := range []bool{false, true} {
		b.Run(fmt.Sprintf("wal=%v", wal), func(b *testing.B) {
			r := benchRegistry(b, wal)
			reg := Request{Op: "register_batch", Digests: benchDigests(1000)}
			if resp := r.handle(reg); !resp.OK {
				b.Fatal(resp.Error)
			}
			hb := Request{Op: "heartbeat_batch", Digests: benchDigests(1000)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if resp := r.handle(hb); !resp.OK {
					b.Fatal(resp.Error)
				}
			}
		})
	}
}
