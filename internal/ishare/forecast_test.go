package ishare

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// forecastFixture drives a forecast-enabled registry with an injected
// clock: Scale 60000 maps one wall millisecond to one virtual minute, so
// a "day" of fleet time is 1440 clock ticks.
type forecastFixture struct {
	r     *Registry
	clock *atomic.Int64
	gen   int64
}

const (
	forecastEpochMS = int64(1_000)
	msPerDay        = int64(1440) // at Scale 60000: 1 ms = 1 virtual minute
)

func newForecastFixture(t *testing.T, opt RegistryOptions) *forecastFixture {
	t.Helper()
	var clock atomic.Int64
	clock.Store(forecastEpochMS)
	opt.TTL = time.Hour
	opt.Now = func() time.Time { return time.UnixMilli(clock.Load()) }
	if opt.Forecast == nil {
		opt.Forecast = &ForecastOptions{Scale: 60_000, EpochMS: forecastEpochMS}
	}
	r, err := NewRegistryWithOptions("127.0.0.1:0", opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return &forecastFixture{r: r, clock: &clock}
}

// report advances the clock to the given stamp and heartbeats the node's
// state with a fresh Gen so the digest supersedes the stored one.
func (f *forecastFixture) report(t *testing.T, name, state string, stampMS int64) {
	t.Helper()
	f.clock.Store(stampMS)
	f.gen++
	resp := f.r.handle(Request{Op: "heartbeat", Name: name, State: state, Gen: f.gen})
	if !resp.OK {
		t.Fatalf("heartbeat(%s, %s): %s", name, state, resp.Error)
	}
}

// seedDailyOutages registers n1 and reports ten days of S3 from 09:00 to
// 11:00, with S1 the rest of the time.
func (f *forecastFixture) seedDailyOutages(t *testing.T) {
	t.Helper()
	if resp := f.r.handle(Request{Op: "register", Name: "n1", Addr: "10.0.0.1:70",
		State: "S1(full)", Gen: 1}); !resp.OK {
		t.Fatalf("register: %s", resp.Error)
	}
	f.gen = 1
	for d := int64(0); d < 10; d++ {
		f.report(t, "n1", "S3(UEC-CPU)", forecastEpochMS+d*msPerDay+540) // 09:00
		f.report(t, "n1", "S1(full)", forecastEpochMS+d*msPerDay+660)    // 11:00
	}
}

// TestRegistryForecastOp exercises the forecast op end to end: the
// registry derives events from digest transitions and serves horizon
// survival forecasts that distinguish the risky clock window from a safe
// one.
func TestRegistryForecastOp(t *testing.T) {
	f := newForecastFixture(t, RegistryOptions{})
	f.seedDailyOutages(t)

	// Day 10, 08:30: a one-hour horizon crosses the daily 09:00 outage.
	f.clock.Store(forecastEpochMS + 10*msPerDay + 510)
	resp := f.r.handle(Request{Op: "forecast", Names: []string{"n1", "ghost"}, HorizonMS: 60})
	if !resp.OK {
		t.Fatalf("forecast: %s", resp.Error)
	}
	if len(resp.Forecasts) != 2 {
		t.Fatalf("got %d forecasts, want 2", len(resp.Forecasts))
	}
	risky, ghost := resp.Forecasts[0], resp.Forecasts[1]
	if !risky.Known || ghost.Known {
		t.Fatalf("known flags wrong: n1=%v ghost=%v", risky.Known, ghost.Known)
	}
	if risky.Samples == 0 {
		t.Fatal("n1 forecast has no history samples")
	}
	if risky.Survival >= 0.5 {
		t.Errorf("survival across the daily outage window = %v, want < 0.5", risky.Survival)
	}
	if risky.Gen != f.gen || risky.State == "" {
		t.Errorf("forecast not digest-stamped: gen %d (want %d), state %q", risky.Gen, f.gen, risky.State)
	}
	if ghost.Survival != 0.5 {
		t.Errorf("unknown node survival = %v, want the 0.5 prior", ghost.Survival)
	}

	// 13:00 the same day: the horizon is event-free every prior day.
	f.clock.Store(forecastEpochMS + 10*msPerDay + 780)
	resp = f.r.handle(Request{Op: "forecast", Names: []string{"n1"}, HorizonMS: 60})
	if !resp.OK {
		t.Fatalf("forecast: %s", resp.Error)
	}
	if safe := resp.Forecasts[0]; safe.Survival <= 0.5 {
		t.Errorf("survival in the safe window = %v, want > 0.5", safe.Survival)
	}

	// Wire path: the client helper round-trips the same exchange.
	c := &Client{RegistryAddr: f.r.Addr()}
	infos, err := c.Forecast(context.Background(), "", []string{"n1"}, 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || !infos[0].Known {
		t.Fatalf("client forecast: %+v", infos)
	}
}

// TestForecastOpValidation pins the failure modes: not enabled, and a
// missing horizon.
func TestForecastOpValidation(t *testing.T) {
	plain, err := NewRegistry("127.0.0.1:0", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if resp := plain.handle(Request{Op: "forecast", Names: []string{"x"}, HorizonMS: 60}); resp.OK {
		t.Error("forecast on a non-forecasting registry succeeded")
	}

	f := newForecastFixture(t, RegistryOptions{})
	if resp := f.r.handle(Request{Op: "forecast", Names: []string{"x"}}); resp.OK {
		t.Error("forecast without a horizon succeeded")
	}
}

// TestForecastSurvivesRecovery replays the WAL into a fresh registry and
// checks the recovered forecaster re-derives the event history: the
// post-recovery forecast matches the pre-crash one.
func TestForecastSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	opt := RegistryOptions{WAL: &WALOptions{Dir: dir}}
	f := newForecastFixture(t, opt)
	f.seedDailyOutages(t)

	queryMS := forecastEpochMS + 10*msPerDay + 510
	f.clock.Store(queryMS)
	before := f.r.handle(Request{Op: "forecast", Names: []string{"n1"}, HorizonMS: 60})
	if !before.OK {
		t.Fatalf("forecast before crash: %s", before.Error)
	}
	if err := f.r.Crash(); err != nil {
		t.Fatal(err)
	}

	f2 := newForecastFixture(t, RegistryOptions{WAL: &WALOptions{Dir: dir}})
	f2.clock.Store(queryMS)
	after := f2.r.handle(Request{Op: "forecast", Names: []string{"n1"}, HorizonMS: 60})
	if !after.OK {
		t.Fatalf("forecast after recovery: %s", after.Error)
	}
	b, a := before.Forecasts[0], after.Forecasts[0]
	if !a.Known {
		t.Fatal("recovered registry forgot the node")
	}
	if a.Survival != b.Survival || a.Samples != b.Samples {
		t.Errorf("forecast changed across recovery:\n before %+v\n after  %+v", b, a)
	}
}
