package ishare

import (
	"context"
	"testing"
	"time"
)

// fakeClock is a hand-stepped clock for breaker state-machine tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	br := newBreaker(3, time.Second, clk.now)

	// Closed: everything allowed; failures below threshold don't open.
	for i := 0; i < 2; i++ {
		if !br.allow() {
			t.Fatalf("closed breaker denied call %d", i)
		}
		if br.result(false) {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
	}
	// A success resets the consecutive-failure count.
	if !br.allow() {
		t.Fatal("closed breaker denied after failures")
	}
	br.result(true)
	for i := 0; i < 2; i++ {
		br.allow()
		if br.result(false) {
			t.Fatal("failure count not reset by success")
		}
	}
	// Third consecutive failure trips it — exactly once.
	br.allow()
	if !br.result(false) {
		t.Fatal("threshold-th failure did not report opening")
	}
	if br.allow() {
		t.Fatal("open breaker allowed a call")
	}

	// After the cooldown: exactly one half-open probe.
	clk.advance(1100 * time.Millisecond)
	if !br.allow() {
		t.Fatal("half-open breaker denied the probe")
	}
	if br.allow() {
		t.Fatal("second concurrent probe admitted")
	}
	// Failed probe re-arms the cooldown without re-counting as an open.
	if br.result(false) {
		t.Fatal("failed probe reported as a fresh open")
	}
	if br.allow() {
		t.Fatal("breaker not re-armed after failed probe")
	}

	// Successful probe closes it fully.
	clk.advance(1100 * time.Millisecond)
	if !br.allow() {
		t.Fatal("re-armed breaker denied the second probe")
	}
	br.result(true)
	if !br.allow() {
		t.Fatal("breaker not closed after successful probe")
	}
}

// TestBrokerBreakerShortCircuits: with one shard dead, the breaker opens
// after the configured threshold and subsequent discoveries skip the dead
// shard outright while the healthy shard keeps serving.
func TestBrokerBreakerShortCircuits(t *testing.T) {
	s, err := NewShardedRegistry(2, time.Minute, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	c := &Client{Shards: s.Addrs(), Timeout: 500 * time.Millisecond, Retry: RetryPolicy{MaxAttempts: 1}}
	var fleet []NodeDigest
	for i := 0; i < 10; i++ {
		d := NodeDigest{Name: nodeName(i), Addr: "10.1.0.1:70", State: "S1(full)", UnixMS: time.Now().UnixMilli()}
		if err := c.RegisterBatch(ctx, s.Addrs()[s.Owner(d.Name)], []NodeDigest{d}); err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, d)
	}

	b := &Broker{Client: c, DiscoverLimit: 32, BreakerThreshold: 2, BreakerCooldown: time.Minute}
	if _, err := b.Candidates(ctx); err != nil {
		t.Fatalf("warm discovery: %v", err)
	}

	if err := s.CrashShard(0); err != nil {
		t.Fatal(err)
	}
	// Two failing rounds trip the breaker; the stale cache keeps the full
	// candidate set flowing throughout.
	for round := 0; round < 4; round++ {
		cands, err := b.Candidates(ctx)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(cands) != len(fleet) {
			t.Fatalf("round %d: %d candidates, want %d", round, len(cands), len(fleet))
		}
	}
	m := b.Metrics()
	if m.BreakerOpens != 1 {
		t.Fatalf("breaker opened %d times, want 1", m.BreakerOpens)
	}
	if m.BreakerShortCircuits < 2 {
		t.Fatalf("only %d short circuits after 4 rounds with a minute cooldown", m.BreakerShortCircuits)
	}
	// Short-circuited rounds still count the shard as failed-but-cached.
	if m.StaleServes < 4 {
		t.Fatalf("stale serves %d, want >=4", m.StaleServes)
	}
}

func nodeName(i int) string {
	return string([]byte{'n', byte('0' + i/10%10), byte('0' + i%10)})
}
