package ishare

import (
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// ShardedRegistry runs N registry shards in one process and wires them
// into a consistent-hash ring: the in-process deployment shape used by
// tests, the load driver and the demo. Each shard is a full Registry on
// its own listener serving the shared versioned ShardMap, so a client
// bootstrapped from any one shard address discovers all of them; nothing
// distinguishes these shards from N separately deployed processes with
// the same map.
//
// Shards are individually killable and restartable: CrashShard models
// SIGKILL (the paper's reboot-dominated URR events), RestartShard
// rebinds the same address and — when the deployment is durable —
// recovers the shard's acked state from its per-shard WAL directory.
type ShardedRegistry struct {
	opt     RegistryOptions
	walBase string        // "" for a volatile deployment
	obs     *obs.Registry // nil until Instrument
	logger  *slog.Logger

	mu     sync.Mutex
	shards []*Registry
	addrs  []string // fixed at construction; restarts rebind the same addr
	ring   *ShardRing
	gen    int64 // shard map generation served by every shard
}

// NewShardedRegistry starts n registry shards on ephemeral loopback ports
// with the given heartbeat TTL and per-exchange limits, and installs the
// generation-1 shard map on every shard.
func NewShardedRegistry(n int, ttl time.Duration, lim Limits) (*ShardedRegistry, error) {
	return NewShardedRegistryWithOptions(n, RegistryOptions{TTL: ttl, Limits: lim})
}

// NewShardedRegistryWithOptions starts n shards sharing one option set.
// When opt.WAL is set, its Dir is the deployment's durability root: shard
// i logs under Dir/shard-<i>, and a construction over a root with
// existing logs recovers every shard's state before serving.
func NewShardedRegistryWithOptions(n int, opt RegistryOptions) (*ShardedRegistry, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ishare: sharded registry needs at least one shard, got %d", n)
	}
	s := &ShardedRegistry{opt: opt, gen: 1}
	if opt.WAL != nil {
		s.walBase = opt.WAL.Dir
	}
	for i := 0; i < n; i++ {
		reg, err := NewRegistryWithOptions("127.0.0.1:0", s.shardOptions(i))
		if err != nil {
			s.Close()
			return nil, err
		}
		s.shards = append(s.shards, reg)
	}
	s.addrs = make([]string, n)
	for i, reg := range s.shards {
		s.addrs[i] = reg.Addr()
	}
	ring, err := NewShardRing(s.addrs, 0)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.ring = ring
	m := ShardMap{Gen: s.gen, Shards: s.addrs}
	for _, reg := range s.shards {
		reg.SetShardMap(m)
	}
	return s, nil
}

// shardOptions derives shard i's options from the deployment template:
// same TTL, limits and admission bounds, with the WAL (if any) rooted in
// the shard's own subdirectory.
func (s *ShardedRegistry) shardOptions(i int) RegistryOptions {
	opt := s.opt
	if opt.WAL != nil {
		w := *opt.WAL
		w.Dir = filepath.Join(s.walBase, fmt.Sprintf("shard-%d", i))
		opt.WAL = &w
	}
	return opt
}

// Addrs returns the shard dial addresses in shard order. Addresses are
// stable across crash/restart cycles.
func (s *ShardedRegistry) Addrs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.addrs...)
}

// N returns the shard count.
func (s *ShardedRegistry) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}

// Shard returns the i-th shard (the current incarnation, after restarts).
func (s *ShardedRegistry) Shard(i int) *Registry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shards[i]
}

// Ring returns the consistent-hash ring over the shard addresses.
func (s *ShardedRegistry) Ring() *ShardRing {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ring
}

// Owner returns the shard index owning the given node ID.
func (s *ShardedRegistry) Owner(nodeID string) int { return s.Ring().Owner(nodeID) }

// CrashShard kills shard i abruptly — no drain, no final fsync — and
// releases its port so RestartShard can rebind it. In-flight exchanges
// are dropped without a response, exactly as a killed process drops them.
func (s *ShardedRegistry) CrashShard(i int) error {
	s.mu.Lock()
	reg := s.shards[i]
	s.mu.Unlock()
	return reg.Crash()
}

// RestartShard revives shard i on its original address. A durable
// deployment recovers the shard's acked state from its WAL directory
// first; a volatile one comes back empty (its nodes re-register via the
// heartbeat Missing path). The restarted shard serves the deployment's
// current shard map and inherits its instrumentation.
func (s *ShardedRegistry) RestartShard(i int) error {
	s.mu.Lock()
	addr := s.addrs[i]
	opt := s.shardOptions(i)
	gen := s.gen
	addrs := append([]string(nil), s.addrs...)
	reg, logger := s.obs, s.logger
	s.mu.Unlock()

	fresh, err := NewRegistryWithOptions(addr, opt)
	if err != nil {
		return fmt.Errorf("ishare: restarting shard %d on %s: %w", i, addr, err)
	}
	fresh.SetShardMap(ShardMap{Gen: gen, Shards: addrs})
	if reg != nil || logger != nil {
		fresh.Instrument(reg, logger)
	}
	s.mu.Lock()
	s.shards[i] = fresh
	s.mu.Unlock()
	return nil
}

// Instrument attaches an obs registry and logger to every shard. Shard
// metrics share one family; per-shard resolution comes from running the
// shards in separate processes, which is the production shape.
func (s *ShardedRegistry) Instrument(reg *obs.Registry, logger *slog.Logger) {
	s.mu.Lock()
	s.obs, s.logger = reg, logger
	shards := append([]*Registry(nil), s.shards...)
	s.mu.Unlock()
	for _, r := range shards {
		r.Instrument(reg, logger)
	}
}

// Close stops every shard.
func (s *ShardedRegistry) Close() error {
	s.mu.Lock()
	shards := append([]*Registry(nil), s.shards...)
	s.mu.Unlock()
	var first error
	for _, reg := range shards {
		if reg == nil {
			continue
		}
		if err := reg.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
