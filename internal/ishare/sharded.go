package ishare

import (
	"fmt"
	"log/slog"
	"time"

	"repro/internal/obs"
)

// ShardedRegistry runs N registry shards in one process and wires them
// into a consistent-hash ring: the in-process deployment shape used by
// tests, the load driver and the demo. Each shard is a full Registry on
// its own listener serving the shared versioned ShardMap, so a client
// bootstrapped from any one shard address discovers all of them; nothing
// distinguishes these shards from N separately deployed processes with
// the same map.
type ShardedRegistry struct {
	shards []*Registry
	ring   *ShardRing
}

// NewShardedRegistry starts n registry shards on ephemeral loopback ports
// with the given heartbeat TTL and per-exchange limits, and installs the
// generation-1 shard map on every shard.
func NewShardedRegistry(n int, ttl time.Duration, lim Limits) (*ShardedRegistry, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ishare: sharded registry needs at least one shard, got %d", n)
	}
	s := &ShardedRegistry{}
	for i := 0; i < n; i++ {
		reg, err := NewRegistryWithLimits("127.0.0.1:0", ttl, lim)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.shards = append(s.shards, reg)
	}
	addrs := s.Addrs()
	ring, err := NewShardRing(addrs, 0)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.ring = ring
	m := ShardMap{Gen: 1, Shards: addrs}
	for _, reg := range s.shards {
		reg.SetShardMap(m)
	}
	return s, nil
}

// Addrs returns the shard dial addresses in shard order.
func (s *ShardedRegistry) Addrs() []string {
	out := make([]string, len(s.shards))
	for i, reg := range s.shards {
		out[i] = reg.Addr()
	}
	return out
}

// N returns the shard count.
func (s *ShardedRegistry) N() int { return len(s.shards) }

// Shard returns the i-th shard.
func (s *ShardedRegistry) Shard(i int) *Registry { return s.shards[i] }

// Ring returns the consistent-hash ring over the shard addresses.
func (s *ShardedRegistry) Ring() *ShardRing { return s.ring }

// Owner returns the shard index owning the given node ID.
func (s *ShardedRegistry) Owner(nodeID string) int { return s.ring.Owner(nodeID) }

// Instrument attaches an obs registry and logger to every shard. Shard
// metrics share one family; per-shard resolution comes from running the
// shards in separate processes, which is the production shape.
func (s *ShardedRegistry) Instrument(reg *obs.Registry, logger *slog.Logger) {
	for _, r := range s.shards {
		r.Instrument(reg, logger)
	}
}

// Close stops every shard.
func (s *ShardedRegistry) Close() error {
	var first error
	for _, reg := range s.shards {
		if reg == nil {
			continue
		}
		if err := reg.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
