package ishare

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Client talks to a registry and its published nodes. Idempotent
// operations (list, info, sethost) are retried with jittered exponential
// backoff under the configured RetryPolicy; submissions are sent exactly
// once per call — failover and resubmission belong to the Broker, which
// knows how to do them without running a job twice.
type Client struct {
	// RegistryAddr is the registry's dial address (single-registry
	// deployments, or the bootstrap address for FetchShardMap).
	RegistryAddr string
	// Shards lists every registry shard of a scaled-out deployment. When
	// set it takes precedence over RegistryAddr: List fans out over all
	// shards and merges, and shard-routed operations hash node IDs over
	// this list. Populate it directly or from FetchShardMap.
	Shards []string
	// Timeout bounds each request attempt (default 3 s).
	Timeout time.Duration
	// SubmitTimeout bounds a submission attempt (default 30 s; jobs run
	// in virtual time, so this is slack, not job length).
	SubmitTimeout time.Duration
	// Dialer overrides the TCP dial path (nil = plain TCP). Fault
	// injectors hook in here.
	Dialer Dialer
	// Retry paces idempotent-operation retries.
	Retry RetryPolicy
	// Limits bounds response sizes read by this client.
	Limits Limits
	// Obs receives per-operation request/retry/failure counters and latency
	// histograms. Leave nil to skip client-side instrumentation entirely.
	Obs *obs.Registry

	once sync.Once
	jr   *jitterRand

	metOnce sync.Once
	met     *clientMetrics
}

// metrics returns the client's metric set, or nil when no registry was
// attached (the uninstrumented path stays allocation-free).
func (c *Client) metrics() *clientMetrics {
	if c.Obs == nil {
		return nil
	}
	c.metOnce.Do(func() { c.met = newClientMetrics(c.Obs) })
	return c.met
}

func (c *Client) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 3 * time.Second
	}
	return c.Timeout
}

func (c *Client) submitTimeout() time.Duration {
	if c.SubmitTimeout <= 0 {
		return 30 * time.Second
	}
	return c.SubmitTimeout
}

func (c *Client) jitter() *jitterRand {
	c.once.Do(func() { c.jr = newJitterRand(c.Retry.Seed) })
	return c.jr
}

// do performs one logical exchange. Idempotent requests are retried on
// transport errors; application-level failures (resp.OK == false) are
// returned to the caller immediately since the peer demonstrably saw the
// request — except load sheds: a response carrying RetryAfterMS is the
// registry's admission control asking this caller to back off, so
// idempotent requests honor the hint (the retry waits at least that
// long) and retry within the normal attempt budget. When the budget runs
// out the shed response itself is returned, so callers distinguish "the
// registry is overloaded" from "the registry rejected this request".
func (c *Client) do(ctx context.Context, addr string, req Request, timeout time.Duration, idempotent bool) (*Response, error) {
	// Stamp the context's trace ID onto the wire so the serving side can
	// log the exchange under the same ID.
	if req.Trace == "" {
		req.Trace = TraceIDFrom(ctx)
	}
	m := c.metrics()
	var start time.Time
	if m != nil {
		m.request(req.Op).Inc()
		start = time.Now()
	}
	p := c.Retry.withDefaults()
	attempts := 1
	if idempotent {
		attempts = p.MaxAttempts
	}
	var lastErr error
	var shedResp *Response
	var shedFloor time.Duration
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if m != nil {
				m.retry(req.Op).Inc()
			}
			d := backoffDelay(p, a, c.jitter())
			if d < shedFloor {
				d = shedFloor // a shed's retry-after hint floors the backoff
			}
			shedFloor = 0
			if err := sleepCtx(ctx, d); err != nil {
				break
			}
		}
		resp, err := roundTrip(ctx, c.Dialer, addr, req, timeout, c.Limits.withDefaults().MaxMessageBytes)
		if err == nil {
			if !resp.OK && resp.RetryAfterMS > 0 && idempotent && a+1 < attempts {
				shedResp = resp
				shedFloor = time.Duration(resp.RetryAfterMS) * time.Millisecond
				continue
			}
			if m != nil {
				m.latency(req.Op).Observe(time.Since(start).Seconds())
			}
			return resp, nil
		}
		lastErr = err
		shedResp = nil
		if ctx.Err() != nil {
			break
		}
	}
	if m != nil {
		m.failure(req.Op).Inc()
		m.latency(req.Op).Observe(time.Since(start).Seconds())
	}
	if shedResp != nil {
		return shedResp, nil
	}
	return nil, lastErr
}

// ShardAddrs returns the registry addresses this client talks to: the
// configured Shards, or the single RegistryAddr.
func (c *Client) ShardAddrs() []string {
	if len(c.Shards) > 0 {
		return append([]string(nil), c.Shards...)
	}
	return []string{c.RegistryAddr}
}

// List returns the published nodes across every configured shard, sorted
// by name. Any shard failing fails the whole call — partial discovery
// with per-shard stale fallback is the Broker's job.
func (c *Client) List(ctx context.Context) ([]NodeInfo, error) {
	var all []NodeInfo
	for _, addr := range c.ShardAddrs() {
		nodes, err := c.ListShard(ctx, addr, 0)
		if err != nil {
			return nil, err
		}
		all = append(all, nodes...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all, nil
}

// ListShard lists one registry shard. A positive limit requests the
// shard's ranked discovery form: up to limit alive nodes from the best
// availability classes, digest states included; zero returns every
// registered node, dead ones included (the legacy full listing).
func (c *Client) ListShard(ctx context.Context, addr string, limit int) ([]NodeInfo, error) {
	resp, err := c.do(ctx, addr, Request{Op: "list", Limit: limit}, c.timeout(), true)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("ishare: list failed: %s", resp.Error)
	}
	return resp.Nodes, nil
}

// Forecast asks one registry shard (RegistryAddr when addr is empty) for
// availability forecasts over the given horizon, one ForecastInfo per
// name in request order. The registry must have been started with
// RegistryOptions.Forecast; otherwise the call fails.
func (c *Client) Forecast(ctx context.Context, addr string, names []string, horizon time.Duration) ([]ForecastInfo, error) {
	if addr == "" {
		addr = c.RegistryAddr
	}
	req := Request{Op: "forecast", Names: names, HorizonMS: horizon.Milliseconds()}
	resp, err := c.do(ctx, addr, req, c.timeout(), true)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("ishare: forecast failed: %s", resp.Error)
	}
	return resp.Forecasts, nil
}

// FetchShardMap bootstraps the shard list from any one registry address:
// it asks addr (RegistryAddr when empty) for the deployment's versioned
// shard map. The caller decides whether to adopt it into c.Shards.
func (c *Client) FetchShardMap(ctx context.Context, addr string) (*ShardMap, error) {
	if addr == "" {
		addr = c.RegistryAddr
	}
	resp, err := c.do(ctx, addr, Request{Op: "shardmap"}, c.timeout(), true)
	if err != nil {
		return nil, err
	}
	if !resp.OK || resp.ShardMap == nil {
		return nil, fmt.Errorf("ishare: shardmap failed: %s", resp.Error)
	}
	return resp.ShardMap, nil
}

// RegisterBatch registers a batch of nodes (with optional availability
// digests) on one registry shard. The caller is responsible for routing
// the batch to the shard owning its names (see ShardRing); loadtest
// drivers and fleet controllers use this to publish large populations
// without one round trip per node.
func (c *Client) RegisterBatch(ctx context.Context, addr string, batch []NodeDigest) error {
	resp, err := c.do(ctx, addr, Request{Op: "register_batch", Digests: batch}, c.timeout(), true)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("ishare: register_batch failed: %s", resp.Error)
	}
	return nil
}

// HeartbeatBatch refreshes liveness (and any carried digests) for a batch
// of nodes on one shard. It returns the names the shard does not know —
// after a shard restart, exactly those need re-registration.
func (c *Client) HeartbeatBatch(ctx context.Context, addr string, batch []NodeDigest) ([]string, error) {
	resp, err := c.do(ctx, addr, Request{Op: "heartbeat_batch", Digests: batch}, c.timeout(), true)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("ishare: heartbeat_batch failed: %s", resp.Error)
	}
	return resp.Missing, nil
}

// AliveNodes returns only the nodes whose FGCS service is responding.
func (c *Client) AliveNodes(ctx context.Context) ([]NodeInfo, error) {
	all, err := c.List(ctx)
	if err != nil {
		return nil, err
	}
	var out []NodeInfo
	for _, n := range all {
		if n.Alive {
			out = append(out, n)
		}
	}
	return out, nil
}

// Info queries one node's availability status.
func (c *Client) Info(ctx context.Context, nodeAddr string) (*NodeStatus, error) {
	resp, err := c.do(ctx, nodeAddr, Request{Op: "info"}, c.timeout(), true)
	if err != nil {
		return nil, err
	}
	if !resp.OK || resp.Info == nil {
		return nil, fmt.Errorf("ishare: info failed: %s", resp.Error)
	}
	return resp.Info, nil
}

// Submit sends a guest job to a node and waits for its fate. The node
// simulates the job in virtual time, so the call returns promptly even for
// hour-long jobs. Submit does not retry: a transport error leaves the
// job's fate unknown, and only an ID-carrying resubmission (see Broker)
// can resolve that safely.
func (c *Client) Submit(ctx context.Context, nodeAddr string, job JobSpec) (*JobResult, error) {
	resp, err := c.do(ctx, nodeAddr, Request{Op: "submit", Job: &job}, c.submitTimeout(), false)
	if err != nil {
		return nil, err
	}
	if !resp.OK || resp.Job == nil {
		return nil, fmt.Errorf("ishare: submit failed: %s", resp.Error)
	}
	return resp.Job, nil
}

// SetHostLoad reconfigures a node's synthetic host workload (experiment
// control; not part of the production protocol).
func (c *Client) SetHostLoad(ctx context.Context, nodeAddr string, load float64, memMB int64) error {
	resp, err := c.do(ctx, nodeAddr, Request{Op: "sethost", HostLoad: load, HostMemMB: memMB}, c.timeout(), true)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("ishare: sethost failed: %s", resp.Error)
	}
	return nil
}
