package ishare

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Client talks to a registry and its published nodes. Idempotent
// operations (list, info, sethost) are retried with jittered exponential
// backoff under the configured RetryPolicy; submissions are sent exactly
// once per call — failover and resubmission belong to the Broker, which
// knows how to do them without running a job twice.
type Client struct {
	// RegistryAddr is the registry's dial address.
	RegistryAddr string
	// Timeout bounds each request attempt (default 3 s).
	Timeout time.Duration
	// SubmitTimeout bounds a submission attempt (default 30 s; jobs run
	// in virtual time, so this is slack, not job length).
	SubmitTimeout time.Duration
	// Dialer overrides the TCP dial path (nil = plain TCP). Fault
	// injectors hook in here.
	Dialer Dialer
	// Retry paces idempotent-operation retries.
	Retry RetryPolicy
	// Limits bounds response sizes read by this client.
	Limits Limits
	// Obs receives per-operation request/retry/failure counters and latency
	// histograms. Leave nil to skip client-side instrumentation entirely.
	Obs *obs.Registry

	once sync.Once
	jr   *jitterRand

	metOnce sync.Once
	met     *clientMetrics
}

// metrics returns the client's metric set, or nil when no registry was
// attached (the uninstrumented path stays allocation-free).
func (c *Client) metrics() *clientMetrics {
	if c.Obs == nil {
		return nil
	}
	c.metOnce.Do(func() { c.met = newClientMetrics(c.Obs) })
	return c.met
}

func (c *Client) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 3 * time.Second
	}
	return c.Timeout
}

func (c *Client) submitTimeout() time.Duration {
	if c.SubmitTimeout <= 0 {
		return 30 * time.Second
	}
	return c.SubmitTimeout
}

func (c *Client) jitter() *jitterRand {
	c.once.Do(func() { c.jr = newJitterRand(c.Retry.Seed) })
	return c.jr
}

// do performs one logical exchange. Idempotent requests are retried on
// transport errors; application-level failures (resp.OK == false) are
// returned to the caller immediately since the peer demonstrably saw the
// request.
func (c *Client) do(ctx context.Context, addr string, req Request, timeout time.Duration, idempotent bool) (*Response, error) {
	// Stamp the context's trace ID onto the wire so the serving side can
	// log the exchange under the same ID.
	if req.Trace == "" {
		req.Trace = TraceIDFrom(ctx)
	}
	m := c.metrics()
	var start time.Time
	if m != nil {
		m.request(req.Op).Inc()
		start = time.Now()
	}
	p := c.Retry.withDefaults()
	attempts := 1
	if idempotent {
		attempts = p.MaxAttempts
	}
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			if m != nil {
				m.retry(req.Op).Inc()
			}
			if err := sleepCtx(ctx, backoffDelay(p, a, c.jitter())); err != nil {
				break
			}
		}
		resp, err := roundTrip(ctx, c.Dialer, addr, req, timeout, c.Limits.withDefaults().MaxMessageBytes)
		if err == nil {
			if m != nil {
				m.latency(req.Op).Observe(time.Since(start).Seconds())
			}
			return resp, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	if m != nil {
		m.failure(req.Op).Inc()
		m.latency(req.Op).Observe(time.Since(start).Seconds())
	}
	return nil, lastErr
}

// List returns the registry's published nodes, sorted by name.
func (c *Client) List(ctx context.Context) ([]NodeInfo, error) {
	resp, err := c.do(ctx, c.RegistryAddr, Request{Op: "list"}, c.timeout(), true)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("ishare: list failed: %s", resp.Error)
	}
	sort.Slice(resp.Nodes, func(i, j int) bool { return resp.Nodes[i].Name < resp.Nodes[j].Name })
	return resp.Nodes, nil
}

// AliveNodes returns only the nodes whose FGCS service is responding.
func (c *Client) AliveNodes(ctx context.Context) ([]NodeInfo, error) {
	all, err := c.List(ctx)
	if err != nil {
		return nil, err
	}
	var out []NodeInfo
	for _, n := range all {
		if n.Alive {
			out = append(out, n)
		}
	}
	return out, nil
}

// Info queries one node's availability status.
func (c *Client) Info(ctx context.Context, nodeAddr string) (*NodeStatus, error) {
	resp, err := c.do(ctx, nodeAddr, Request{Op: "info"}, c.timeout(), true)
	if err != nil {
		return nil, err
	}
	if !resp.OK || resp.Info == nil {
		return nil, fmt.Errorf("ishare: info failed: %s", resp.Error)
	}
	return resp.Info, nil
}

// Submit sends a guest job to a node and waits for its fate. The node
// simulates the job in virtual time, so the call returns promptly even for
// hour-long jobs. Submit does not retry: a transport error leaves the
// job's fate unknown, and only an ID-carrying resubmission (see Broker)
// can resolve that safely.
func (c *Client) Submit(ctx context.Context, nodeAddr string, job JobSpec) (*JobResult, error) {
	resp, err := c.do(ctx, nodeAddr, Request{Op: "submit", Job: &job}, c.submitTimeout(), false)
	if err != nil {
		return nil, err
	}
	if !resp.OK || resp.Job == nil {
		return nil, fmt.Errorf("ishare: submit failed: %s", resp.Error)
	}
	return resp.Job, nil
}

// SetHostLoad reconfigures a node's synthetic host workload (experiment
// control; not part of the production protocol).
func (c *Client) SetHostLoad(ctx context.Context, nodeAddr string, load float64, memMB int64) error {
	resp, err := c.do(ctx, nodeAddr, Request{Op: "sethost", HostLoad: load, HostMemMB: memMB}, c.timeout(), true)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("ishare: sethost failed: %s", resp.Error)
	}
	return nil
}
