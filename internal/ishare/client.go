package ishare

import (
	"fmt"
	"sort"
	"time"
)

// Client talks to a registry and its published nodes.
type Client struct {
	// RegistryAddr is the registry's dial address.
	RegistryAddr string
	// Timeout bounds each request (default 3 s).
	Timeout time.Duration
}

func (c *Client) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 3 * time.Second
	}
	return c.Timeout
}

// List returns the registry's published nodes, sorted by name.
func (c *Client) List() ([]NodeInfo, error) {
	resp, err := roundTrip(c.RegistryAddr, Request{Op: "list"}, c.timeout())
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("ishare: list failed: %s", resp.Error)
	}
	sort.Slice(resp.Nodes, func(i, j int) bool { return resp.Nodes[i].Name < resp.Nodes[j].Name })
	return resp.Nodes, nil
}

// AliveNodes returns only the nodes whose FGCS service is responding.
func (c *Client) AliveNodes() ([]NodeInfo, error) {
	all, err := c.List()
	if err != nil {
		return nil, err
	}
	var out []NodeInfo
	for _, n := range all {
		if n.Alive {
			out = append(out, n)
		}
	}
	return out, nil
}

// Info queries one node's availability status.
func (c *Client) Info(nodeAddr string) (*NodeStatus, error) {
	resp, err := roundTrip(nodeAddr, Request{Op: "info"}, c.timeout())
	if err != nil {
		return nil, err
	}
	if !resp.OK || resp.Info == nil {
		return nil, fmt.Errorf("ishare: info failed: %s", resp.Error)
	}
	return resp.Info, nil
}

// Submit sends a guest job to a node and waits for its fate. The node
// simulates the job in virtual time, so the call returns promptly even for
// hour-long jobs.
func (c *Client) Submit(nodeAddr string, job JobSpec) (*JobResult, error) {
	resp, err := roundTrip(nodeAddr, Request{Op: "submit", Job: &job}, 30*time.Second)
	if err != nil {
		return nil, err
	}
	if !resp.OK || resp.Job == nil {
		return nil, fmt.Errorf("ishare: submit failed: %s", resp.Error)
	}
	return resp.Job, nil
}

// SetHostLoad reconfigures a node's synthetic host workload (experiment
// control; not part of the production protocol).
func (c *Client) SetHostLoad(nodeAddr string, load float64, memMB int64) error {
	resp, err := roundTrip(nodeAddr, Request{Op: "sethost", HostLoad: load, HostMemMB: memMB}, c.timeout())
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("ishare: sethost failed: %s", resp.Error)
	}
	return nil
}
