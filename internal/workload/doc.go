// Package workload provides the synthetic programs the paper's contention
// experiments run on the simulated machines of internal/simos:
//
//   - duty-cycle host programs with a configurable isolated CPU usage,
//     mirroring the instrumented synthetic programs of Section 3.2.1 that
//     interleave computation and sleep to hit a target usage;
//   - completely CPU-bound guest programs;
//   - the application profiles of Table 1: the four SPEC CPU2000 guests
//     (apsi, galgel, bzip2, mcf) and the six Musbus-derived interactive
//     host workloads H1..H6, with their published CPU usage and memory
//     footprints;
//   - a host-group composer that randomly decomposes a target group load
//     LH into M individual processes, replicating the experimental
//     protocol of Figure 1.
package workload
