package workload

import (
	"math/rand"
	"time"
)

// DefaultPeriod is the duty cycle length of the synthetic programs. The
// paper's synthetic hosts adjust sleep times around their compute bursts to
// hit a target isolated usage; 2.5 s cycles put typical burst lengths in
// the same range as the scheduler's interactivity-credit cap, which is what
// makes noticeable slowdown appear only beyond Th1.
const DefaultPeriod = 2500 * time.Millisecond

// CPUBound is a completely CPU-bound program (the paper's canonical guest):
// it always has work and never sleeps voluntarily.
type CPUBound struct{}

// NextPhase returns an effectively endless stream of compute.
func (CPUBound) NextPhase(*rand.Rand) (compute, sleep time.Duration, ok bool) {
	return time.Second, 0, true
}

// DutyCycle alternates compute and sleep to achieve a target isolated CPU
// usage. A fresh DutyCycle starts with a random partial sleep so that
// multiple processes in a host group are phase-desynchronized, as real
// independently started programs are.
type DutyCycle struct {
	// Usage is the isolated CPU usage in [0, 1].
	Usage float64
	// Period is the cycle length; DefaultPeriod if zero.
	Period time.Duration
	// Jitter varies each cycle's period by a uniform +-fraction, keeping
	// the usage ratio intact (0 = strictly periodic).
	Jitter float64

	started bool
}

// NextPhase emits the next compute/sleep pair.
func (d *DutyCycle) NextPhase(r *rand.Rand) (compute, sleep time.Duration, ok bool) {
	period := d.Period
	if period == 0 {
		period = DefaultPeriod
	}
	u := d.Usage
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	if !d.started {
		d.started = true
		// Random initial offset: sleep a fraction of a period first.
		if off := time.Duration(r.Int63n(int64(period))); off > 0 {
			return 0, off, true
		}
	}
	if d.Jitter > 0 {
		f := 1 + d.Jitter*(2*r.Float64()-1)
		period = time.Duration(float64(period) * f)
	}
	compute = time.Duration(float64(period) * u)
	sleep = period - compute
	return compute, sleep, true
}

// FiniteWork runs a fixed amount of CPU work in duty cycles and then
// terminates — the shape of a compute-bound batch guest job with a known
// length, used by the proactive-scheduling experiments.
type FiniteWork struct {
	// Total is the CPU time the job needs.
	Total time.Duration
	// Usage is the job's duty cycle while it runs (1 = fully CPU-bound).
	Usage float64
	// Period as in DutyCycle.
	Period time.Duration

	consumed time.Duration
}

// NextPhase emits work until Total is consumed, then terminates.
func (f *FiniteWork) NextPhase(r *rand.Rand) (compute, sleep time.Duration, ok bool) {
	if f.consumed >= f.Total {
		return 0, 0, false
	}
	period := f.Period
	if period == 0 {
		period = DefaultPeriod
	}
	u := f.Usage
	if u <= 0 || u > 1 {
		u = 1
	}
	compute = time.Duration(float64(period) * u)
	if remaining := f.Total - f.consumed; compute > remaining {
		compute = remaining
	}
	f.consumed += compute
	if u < 1 {
		sleep = time.Duration(float64(compute) * (1 - u) / u)
	}
	return compute, sleep, true
}

// Remaining returns the CPU work left.
func (f *FiniteWork) Remaining() time.Duration {
	if f.consumed >= f.Total {
		return 0
	}
	return f.Total - f.consumed
}

// Burst is a one-shot behavior: compute for Length, then exit. It models
// transient load spikes such as a compile or a remote X application start
// (Section 4 notes these cause short excursions of LH above Th2).
type Burst struct {
	Length time.Duration
	done   bool
}

// NextPhase emits the single burst.
func (b *Burst) NextPhase(*rand.Rand) (compute, sleep time.Duration, ok bool) {
	if b.done {
		return 0, 0, false
	}
	b.done = true
	return b.Length, 0, true
}
