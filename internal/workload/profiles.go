package workload

import (
	"fmt"

	"repro/internal/simos"
)

// AppProfile is a measured application resource profile, as reported in
// the paper's Table 1.
type AppProfile struct {
	Name string
	// CPUUsage is the isolated CPU usage in [0, 1].
	CPUUsage float64
	// ResidentMB and VirtualMB are the resident and virtual set sizes.
	ResidentMB int64
	VirtualMB  int64
}

// RSS returns the resident set size in bytes.
func (a AppProfile) RSS() int64 { return a.ResidentMB * simos.MB }

// VSZ returns the virtual size in bytes.
func (a AppProfile) VSZ() int64 { return a.VirtualMB * simos.MB }

// Behavior builds the duty-cycle behavior realizing the profile's CPU
// usage. Guests at ~100% become effectively CPU-bound.
func (a AppProfile) Behavior() simos.Behavior {
	return &DutyCycle{Usage: a.CPUUsage, Jitter: 0.1}
}

// Spawn starts the profiled application on a machine.
func (a AppProfile) Spawn(m *simos.Machine, class simos.Class, nice int) *simos.Process {
	return m.Spawn(a.Name, class, nice, a.RSS(), a.Behavior())
}

// String renders the Table 1 row.
func (a AppProfile) String() string {
	return fmt.Sprintf("%-7s cpu=%5.1f%% rss=%4d MB vsz=%4d MB",
		a.Name, a.CPUUsage*100, a.ResidentMB, a.VirtualMB)
}

// SPECGuests returns the paper's four guest applications (Table 1): all
// CPU-bound, with working sets from 29 MB to 193 MB.
func SPECGuests() []AppProfile {
	return []AppProfile{
		{Name: "apsi", CPUUsage: 0.98, ResidentMB: 193, VirtualMB: 205},
		{Name: "galgel", CPUUsage: 0.99, ResidentMB: 29, VirtualMB: 155},
		{Name: "bzip2", CPUUsage: 0.97, ResidentMB: 180, VirtualMB: 182},
		{Name: "mcf", CPUUsage: 0.99, ResidentMB: 96, VirtualMB: 96},
	}
}

// MusbusWorkloads returns the paper's six interactive host workloads
// H1..H6 (Table 1), created by varying the size of the files the simulated
// "host users" edit and compile.
func MusbusWorkloads() []AppProfile {
	return []AppProfile{
		{Name: "H1", CPUUsage: 0.086, ResidentMB: 71, VirtualMB: 122},
		{Name: "H2", CPUUsage: 0.092, ResidentMB: 213, VirtualMB: 247},
		{Name: "H3", CPUUsage: 0.172, ResidentMB: 53, VirtualMB: 151},
		{Name: "H4", CPUUsage: 0.219, ResidentMB: 68, VirtualMB: 122},
		{Name: "H5", CPUUsage: 0.570, ResidentMB: 210, VirtualMB: 236},
		{Name: "H6", CPUUsage: 0.662, ResidentMB: 84, VirtualMB: 113},
	}
}

// GuestByName finds a SPEC guest profile by name.
func GuestByName(name string) (AppProfile, bool) {
	for _, g := range SPECGuests() {
		if g.Name == name {
			return g, true
		}
	}
	return AppProfile{}, false
}

// HostWorkloadByName finds a Musbus host workload by name.
func HostWorkloadByName(name string) (AppProfile, bool) {
	for _, h := range MusbusWorkloads() {
		if h.Name == name {
			return h, true
		}
	}
	return AppProfile{}, false
}
