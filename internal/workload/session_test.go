package workload

import (
	"testing"
	"time"

	"repro/internal/simos"
)

func TestInteractiveSessionShape(t *testing.T) {
	r := rng(11)
	s := DefaultInteractiveSession()
	s.NextPhase(r) // skip the offset phase
	var edits, compiles int
	var compute, total time.Duration
	for i := 0; i < 2000; i++ {
		c, sl, ok := s.NextPhase(r)
		if !ok {
			t.Fatal("unbounded session terminated")
		}
		if c > time.Second {
			compiles++
		} else if c > 0 {
			edits++
		}
		compute += c
		total += c + sl
	}
	if edits == 0 || compiles == 0 {
		t.Fatalf("expected both edits (%d) and compiles (%d)", edits, compiles)
	}
	// Compiles are rare relative to edits.
	if compiles*4 > edits {
		t.Errorf("too many compiles: %d vs %d edits", compiles, edits)
	}
	// The session is interactive: a light aggregate load.
	usage := float64(compute) / float64(total)
	if usage < 0.02 || usage > 0.45 {
		t.Errorf("session duty = %v, want light-to-moderate", usage)
	}
}

func TestInteractiveSessionLifetime(t *testing.T) {
	r := rng(12)
	s := DefaultInteractiveSession()
	s.Lifetime = 30 * time.Second
	var wall time.Duration
	steps := 0
	for {
		c, sl, ok := s.NextPhase(r)
		if !ok {
			break
		}
		wall += c + sl
		steps++
		if steps > 10000 {
			t.Fatal("session never terminated")
		}
	}
	if wall < 30*time.Second {
		t.Errorf("session ended after %v, before its lifetime", wall)
	}
}

func TestInteractiveSessionProtectedByCredit(t *testing.T) {
	// An interactive session competing with a CPU-bound guest keeps its
	// responsiveness: its achieved usage stays close to isolated usage.
	isolated := simos.MustNewMachine(simos.LinuxLabMachine(51))
	alone := isolated.Spawn("user", simos.Host, 0, 50*simos.MB, DefaultInteractiveSession())
	isolated.Run(10 * time.Minute)

	contended := simos.MustNewMachine(simos.LinuxLabMachine(51))
	user := contended.Spawn("user", simos.Host, 0, 50*simos.MB, DefaultInteractiveSession())
	contended.Spawn("guest", simos.Guest, 0, 10*simos.MB, CPUBound{})
	contended.Run(10 * time.Minute)

	if alone.Usage() <= 0 {
		t.Fatal("isolated session did nothing")
	}
	drop := 1 - user.Usage()/alone.Usage()
	if drop > 0.25 {
		t.Errorf("interactive session slowed %.0f%% by a guest; credit should protect it", drop*100)
	}
}
