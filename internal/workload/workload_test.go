package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/simos"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestCPUBoundNeverSleeps(t *testing.T) {
	var b CPUBound
	for i := 0; i < 10; i++ {
		c, s, ok := b.NextPhase(rng(1))
		if !ok || c <= 0 || s != 0 {
			t.Fatalf("CPUBound phase = (%v, %v, %v)", c, s, ok)
		}
	}
}

func TestDutyCycleRatio(t *testing.T) {
	r := rng(2)
	for _, usage := range []float64{0.1, 0.4, 0.9} {
		d := &DutyCycle{Usage: usage, Jitter: 0.2}
		// Skip the randomized initial offset phase.
		d.NextPhase(r)
		var compute, total time.Duration
		for i := 0; i < 200; i++ {
			c, s, ok := d.NextPhase(r)
			if !ok {
				t.Fatal("DutyCycle terminated")
			}
			compute += c
			total += c + s
		}
		got := float64(compute) / float64(total)
		if math.Abs(got-usage) > 0.01 {
			t.Errorf("usage %v: achieved %v", usage, got)
		}
	}
}

func TestDutyCycleInitialOffsetDesynchronizes(t *testing.T) {
	r := rng(3)
	first := make(map[time.Duration]bool)
	for i := 0; i < 20; i++ {
		d := &DutyCycle{Usage: 0.5}
		c, s, _ := d.NextPhase(r)
		if c != 0 {
			continue // offset can be zero occasionally
		}
		first[s] = true
	}
	if len(first) < 10 {
		t.Errorf("initial offsets not randomized: %d distinct", len(first))
	}
}

func TestDutyCycleClampsUsage(t *testing.T) {
	r := rng(4)
	d := &DutyCycle{Usage: 1.7}
	d.NextPhase(r)
	c, s, _ := d.NextPhase(r)
	if s != 0 || c != DefaultPeriod {
		t.Errorf("over-unity usage should clamp: compute %v sleep %v", c, s)
	}
	d2 := &DutyCycle{Usage: -0.5}
	d2.NextPhase(r)
	c, _, _ = d2.NextPhase(r)
	if c != 0 {
		t.Errorf("negative usage should clamp to 0, got compute %v", c)
	}
}

func TestFiniteWork(t *testing.T) {
	r := rng(5)
	f := &FiniteWork{Total: 6 * time.Second, Usage: 1}
	var consumed time.Duration
	for {
		c, s, ok := f.NextPhase(r)
		if !ok {
			break
		}
		if s != 0 {
			t.Fatalf("fully CPU-bound job should not sleep, got %v", s)
		}
		consumed += c
	}
	if consumed != 6*time.Second {
		t.Errorf("consumed %v, want 6s", consumed)
	}
	if f.Remaining() != 0 {
		t.Errorf("remaining = %v, want 0", f.Remaining())
	}
}

func TestFiniteWorkPartialUsage(t *testing.T) {
	r := rng(6)
	f := &FiniteWork{Total: 2 * time.Second, Usage: 0.5}
	var compute, sleep time.Duration
	for {
		c, s, ok := f.NextPhase(r)
		if !ok {
			break
		}
		compute += c
		sleep += s
	}
	if compute != 2*time.Second {
		t.Errorf("compute = %v, want 2s", compute)
	}
	ratio := float64(compute) / float64(compute+sleep)
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("duty ratio = %v, want ~0.5", ratio)
	}
}

func TestBurst(t *testing.T) {
	b := &Burst{Length: 3 * time.Second}
	c, s, ok := b.NextPhase(rng(7))
	if !ok || c != 3*time.Second || s != 0 {
		t.Fatalf("burst phase = (%v, %v, %v)", c, s, ok)
	}
	if _, _, ok = b.NextPhase(rng(7)); ok {
		t.Error("burst should terminate after one phase")
	}
}

func TestTable1Profiles(t *testing.T) {
	guests := SPECGuests()
	if len(guests) != 4 {
		t.Fatalf("got %d guests, want 4", len(guests))
	}
	// Spot-check Table 1 values.
	apsi := guests[0]
	if apsi.Name != "apsi" || apsi.ResidentMB != 193 || apsi.VirtualMB != 205 {
		t.Errorf("apsi profile = %+v", apsi)
	}
	for _, g := range guests {
		if g.CPUUsage < 0.97 {
			t.Errorf("%s: guests are CPU-bound, usage %v", g.Name, g.CPUUsage)
		}
		if g.RSS() != g.ResidentMB*simos.MB {
			t.Errorf("%s: RSS mismatch", g.Name)
		}
	}
	hosts := MusbusWorkloads()
	if len(hosts) != 6 {
		t.Fatalf("got %d host workloads, want 6", len(hosts))
	}
	if h5 := hosts[4]; h5.Name != "H5" || h5.CPUUsage != 0.570 || h5.ResidentMB != 210 {
		t.Errorf("H5 profile = %+v", h5)
	}
	for _, p := range append(guests, hosts...) {
		if p.String() == "" {
			t.Errorf("%s: empty String", p.Name)
		}
	}
}

func TestProfileLookups(t *testing.T) {
	if g, ok := GuestByName("mcf"); !ok || g.ResidentMB != 96 {
		t.Errorf("GuestByName(mcf) = %+v, %v", g, ok)
	}
	if _, ok := GuestByName("nope"); ok {
		t.Error("unknown guest found")
	}
	if h, ok := HostWorkloadByName("H2"); !ok || h.ResidentMB != 213 {
		t.Errorf("HostWorkloadByName(H2) = %+v, %v", h, ok)
	}
	if _, ok := HostWorkloadByName("H9"); ok {
		t.Error("unknown workload found")
	}
}

func TestProfileSpawnRunsAtProfileUsage(t *testing.T) {
	m := simos.MustNewMachine(simos.LinuxLabMachine(1))
	h, _ := HostWorkloadByName("H4") // 21.9%
	p := h.Spawn(m, simos.Host, 0)
	m.Run(2 * time.Minute)
	if u := p.Usage(); math.Abs(u-0.219) > 0.03 {
		t.Errorf("H4 isolated usage = %v, want ~0.219", u)
	}
	if m.ResidentMem(simos.Host) != 68*simos.MB {
		t.Errorf("H4 resident = %d MB", m.ResidentMem(simos.Host)/simos.MB)
	}
}

func TestComposeGroup(t *testing.T) {
	r := rng(8)
	for _, tc := range []struct {
		lh float64
		m  int
	}{
		{0.1, 1}, {0.5, 1}, {1.0, 1},
		{0.3, 2}, {0.8, 3}, {1.0, 5}, {0.4, 5},
	} {
		g, err := ComposeGroup(r, tc.lh, tc.m)
		if err != nil {
			t.Fatalf("ComposeGroup(%v, %d): %v", tc.lh, tc.m, err)
		}
		if len(g.Usages) != tc.m {
			t.Fatalf("got %d members, want %d", len(g.Usages), tc.m)
		}
		if math.Abs(g.TargetLH()-tc.lh) > 1e-9 {
			t.Errorf("ComposeGroup(%v, %d) sums to %v", tc.lh, tc.m, g.TargetLH())
		}
		for _, u := range g.Usages {
			if u < minMemberUsage-1e-9 || u > 1+1e-9 {
				t.Errorf("member usage %v out of range", u)
			}
		}
	}
}

func TestComposeGroupInfeasible(t *testing.T) {
	r := rng(9)
	if _, err := ComposeGroup(r, 0.1, 5); err == nil {
		t.Error("LH too small for 5 members accepted")
	}
	if _, err := ComposeGroup(r, 2.5, 2); err == nil {
		t.Error("LH above member capacity accepted")
	}
	if _, err := ComposeGroup(r, 0.5, 0); err == nil {
		t.Error("zero members accepted")
	}
}

func TestComposeGroupRandomized(t *testing.T) {
	r := rng(10)
	a, _ := ComposeGroup(r, 0.8, 3)
	b, _ := ComposeGroup(r, 0.8, 3)
	same := true
	for i := range a.Usages {
		if math.Abs(a.Usages[i]-b.Usages[i]) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Error("consecutive compositions identical; combinations should vary")
	}
}

func TestHostGroupSpawn(t *testing.T) {
	m := simos.MustNewMachine(simos.LinuxLabMachine(2))
	g := HostGroup{Usages: []float64{0.2, 0.3}}
	procs := g.Spawn(m, DefaultPeriod)
	if len(procs) != 2 {
		t.Fatalf("spawned %d", len(procs))
	}
	m.Run(2 * time.Minute)
	total := 0.0
	for _, p := range procs {
		total += p.Usage()
	}
	// Members contend with each other, so the group's measured usage runs a
	// little below the sum of isolated usages — the paper calibrates LH by
	// measuring the group running together for exactly this reason.
	if total < 0.40 || total > 0.53 {
		t.Errorf("group usage together = %v, want ~0.5 minus self-contention", total)
	}
}
