package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/simos"
)

// SyntheticRSS is the resident set of the synthetic contention programs;
// the paper made them deliberately tiny to isolate CPU contention
// ("all the programs have very small resident sets").
const SyntheticRSS = 2 * simos.MB

// HostGroup is a set of host processes whose aggregate isolated CPU usage
// targets a group load LH, the experimental unit of Figure 1.
type HostGroup struct {
	// Usages are the individual isolated CPU usages; their sum is the
	// group's target LH.
	Usages []float64
}

// TargetLH returns the sum of the member usages.
func (g HostGroup) TargetLH() float64 {
	sum := 0.0
	for _, u := range g.Usages {
		sum += u
	}
	return sum
}

// Spawn starts the group's processes on a machine at nice 0, returning
// them in member order.
func (g HostGroup) Spawn(m *simos.Machine, period time.Duration) []*simos.Process {
	procs := make([]*simos.Process, len(g.Usages))
	for i, u := range g.Usages {
		name := fmt.Sprintf("host-%d", i)
		procs[i] = m.Spawn(name, simos.Host, 0, SyntheticRSS,
			&DutyCycle{Usage: u, Period: period, Jitter: 0.1})
	}
	return procs
}

// minMemberUsage keeps generated member usages realistic: the paper's
// synthetic host programs ranged from 10% to 100% isolated usage.
const minMemberUsage = 0.05

// ComposeGroup randomly decomposes the target load lh into m member usages
// in [minMemberUsage, 1], replicating the paper's protocol of choosing "M
// host programs with different isolated CPU usages" whose total equals LH.
// It returns an error when the target is infeasible for m members.
func ComposeGroup(r *rand.Rand, lh float64, m int) (HostGroup, error) {
	if m <= 0 {
		return HostGroup{}, fmt.Errorf("workload: group size must be positive, got %d", m)
	}
	if lh < minMemberUsage*float64(m)-1e-9 {
		return HostGroup{}, fmt.Errorf("workload: LH %.2f too small for %d members", lh, m)
	}
	if lh > float64(m)+1e-9 {
		return HostGroup{}, fmt.Errorf("workload: LH %.2f exceeds %d fully-loaded members", lh, m)
	}
	if m == 1 {
		return HostGroup{Usages: []float64{lh}}, nil
	}
	// Rejection-sample a random composition: draw m-1 cut points over the
	// distributable slack, then add the floor back to each member.
	slack := lh - minMemberUsage*float64(m)
	for attempt := 0; attempt < 1000; attempt++ {
		cuts := make([]float64, m+1)
		cuts[0], cuts[m] = 0, slack
		for i := 1; i < m; i++ {
			cuts[i] = r.Float64() * slack
		}
		sortFloats(cuts)
		usages := make([]float64, m)
		feasible := true
		for i := 0; i < m; i++ {
			usages[i] = minMemberUsage + (cuts[i+1] - cuts[i])
			if usages[i] > 1 {
				feasible = false
				break
			}
		}
		if feasible {
			return HostGroup{Usages: usages}, nil
		}
	}
	// Fall back to an even split, which is always feasible here.
	usages := make([]float64, m)
	for i := range usages {
		usages[i] = lh / float64(m)
	}
	return HostGroup{Usages: usages}, nil
}

// sortFloats is a tiny insertion sort; groups are always small.
func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
