package workload

import (
	"math/rand"
	"time"
)

// InteractiveSession models a Musbus-style interactive user (the kind the
// paper simulates host users with): short editing keystrokes and command
// bursts separated by think time, punctuated by occasional long compile
// bursts. Unlike DutyCycle it is bursty at two time scales, so the
// interactivity credit protects the editing phases while compiles can
// drain it — realistic input for the detector and the node agents.
type InteractiveSession struct {
	// EditBurst is the CPU cost of one editing/command action.
	EditBurst time.Duration
	// ThinkTime is the mean pause between actions (exponential).
	ThinkTime time.Duration
	// CompileEvery is the mean number of actions between compiles.
	CompileEvery int
	// CompileBurst is the CPU cost of one compile (log-uniform between
	// half and double this value).
	CompileBurst time.Duration
	// Lifetime caps the session's total wall activity; 0 = unbounded.
	Lifetime time.Duration

	elapsed time.Duration
	started bool
}

// DefaultInteractiveSession returns a session shaped like the paper's
// Musbus workloads: sub-second edits, seconds of think time, multi-second
// compiles every dozen actions.
func DefaultInteractiveSession() *InteractiveSession {
	return &InteractiveSession{
		EditBurst:    80 * time.Millisecond,
		ThinkTime:    2 * time.Second,
		CompileEvery: 12,
		CompileBurst: 4 * time.Second,
	}
}

// NextPhase implements simos.Behavior.
func (s *InteractiveSession) NextPhase(r *rand.Rand) (compute, sleep time.Duration, ok bool) {
	if s.Lifetime > 0 && s.elapsed >= s.Lifetime {
		return 0, 0, false
	}
	edit := s.EditBurst
	if edit <= 0 {
		edit = 80 * time.Millisecond
	}
	think := s.ThinkTime
	if think <= 0 {
		think = 2 * time.Second
	}
	every := s.CompileEvery
	if every <= 0 {
		every = 12
	}
	if !s.started {
		s.started = true
		// Random initial offset desynchronizes concurrent sessions.
		off := time.Duration(r.Int63n(int64(think) + 1))
		s.elapsed += off
		return 0, off, true
	}

	if r.Intn(every) == 0 {
		// Compile: a long CPU burst, then a review pause.
		base := s.CompileBurst
		if base <= 0 {
			base = 4 * time.Second
		}
		compute = base/2 + time.Duration(r.Int63n(int64(base)+1))*3/2
		sleep = think * 2
	} else {
		compute = edit
		sleep = time.Duration(float64(think) * r.ExpFloat64())
		if sleep > 10*think {
			sleep = 10 * think
		}
	}
	s.elapsed += compute + sleep
	return compute, sleep, true
}
