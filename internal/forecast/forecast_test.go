package forecast

import (
	"math"
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// replayTestbed runs a small testbed, returning both the recorded trace
// and an Online forecaster fed the same machines' raw observation
// streams.
func replayTestbed(t *testing.T, cfg testbed.Config) (*trace.Trace, *Online) {
	t.Helper()
	tr, err := testbed.Run(cfg)
	if err != nil {
		t.Fatalf("testbed run: %v", err)
	}
	on, err := New(Config{
		Calendar: tr.Calendar,
		Machines: cfg.Machines,
		Detector: cfg.Detector,
		Start:    tr.Span.Start,
	})
	if err != nil {
		t.Fatalf("new online: %v", err)
	}
	for id := 0; id < cfg.Machines; id++ {
		m := trace.MachineID(id)
		err := testbed.ObservationStream(cfg, m, func(obs availability.Observation) error {
			return on.Observe(m, obs)
		})
		if err != nil {
			t.Fatalf("observation stream machine %d: %v", id, err)
		}
	}
	on.AdvanceTo(tr.Span.End)
	return tr, on
}

func smallConfig() testbed.Config {
	cfg := testbed.DefaultConfig()
	cfg.Machines = 3
	cfg.Days = 6
	cfg.Seed = 41
	return cfg
}

// TestOnlineBitEqualToOffline is the package's core claim: after ingesting
// a machine's raw observation stream, the online forecasts are bit-equal
// to offline predictors batch-trained on the recorded trace of the same
// stream — aligned and misaligned windows, present and absent machines.
func TestOnlineBitEqualToOffline(t *testing.T) {
	cfg := smallConfig()
	tr, on := replayTestbed(t, cfg)
	if on.Events() == 0 {
		t.Fatal("testbed produced no events; the differential is vacuous")
	}

	hw := &predict.HistoryWindow{}
	hw.Train(tr)
	hwTrim := &predict.HistoryWindow{Trim: 0.1}
	hwTrim.Train(tr)
	ewma := &predict.EWMADaily{}
	ewma.Train(tr)

	windows := []sim.Window{}
	for day := 1; day <= cfg.Days; day++ { // includes one day past the span
		base := sim.Time(day) * sim.Day
		windows = append(windows,
			sim.Window{Start: base + 9*time.Hour, End: base + 10*time.Hour},             // aligned 1h
			sim.Window{Start: base + 13*time.Hour, End: base + 16*time.Hour},            // aligned 3h
			sim.Window{Start: base + 90*time.Minute, End: base + 3*time.Hour},           // misaligned 90m
			sim.Window{Start: base + 23*time.Hour + 30*time.Minute, End: base + sim.Day}, // tail 30m
		)
	}
	machines := []trace.MachineID{0, 1, 2, trace.MachineID(cfg.Machines), -1}

	for _, m := range machines {
		for _, w := range windows {
			if got, want := on.PredictCount(m, w), hw.PredictCount(m, w); got != want {
				t.Errorf("PredictCount(m=%d, %v) online %v, offline %v", m, w, got, want)
			}
			if got, want := on.PredictSurvival(m, w), hw.PredictSurvival(m, w); got != want {
				t.Errorf("PredictSurvival(m=%d, %v) online %v, offline %v", m, w, got, want)
			}
			if got, want := on.EWMACount(m, w), ewma.PredictCount(m, w); got != want {
				t.Errorf("EWMACount(m=%d, %v) online %v, offline %v", m, w, got, want)
			}
			if got, want := on.EWMASurvival(m, w), ewma.PredictSurvival(m, w); got != want {
				t.Errorf("EWMASurvival(m=%d, %v) online %v, offline %v", m, w, got, want)
			}
		}
	}

	// The trimmed variant shares the history counts; check it on its own
	// forecaster so Config.Trim is exercised end to end.
	onTrim, err := New(Config{Calendar: tr.Calendar, Machines: cfg.Machines, Trim: 0.1, Start: tr.Span.Start})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		onTrim.ObserveEvent(e)
	}
	onTrim.AdvanceTo(tr.Span.End)
	for _, m := range machines {
		for _, w := range windows {
			if got, want := onTrim.PredictCount(m, w), hwTrim.PredictCount(m, w); got != want {
				t.Errorf("trimmed PredictCount(m=%d, %v) online %v, offline %v", m, w, got, want)
			}
			if got, want := onTrim.PredictSurvival(m, w), hwTrim.PredictSurvival(m, w); got != want {
				t.Errorf("trimmed PredictSurvival(m=%d, %v) online %v, offline %v", m, w, got, want)
			}
		}
	}
}

// TestEventIngestMatchesObservationIngest pins that feeding the recorded
// trace's closed events produces the same forecasts as feeding the raw
// observation stream (the open-event tail is the one permitted difference,
// and this seed's span ends with every machine available).
func TestEventIngestMatchesObservationIngest(t *testing.T) {
	cfg := smallConfig()
	tr, onObs := replayTestbed(t, cfg)

	onEv, err := New(Config{Calendar: tr.Calendar, Machines: cfg.Machines, Start: tr.Span.Start})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		onEv.ObserveEvent(e)
	}
	onEv.AdvanceTo(tr.Span.End)

	if onObs.Events() != onEv.Events() {
		t.Fatalf("observation ingest saw %d events, event ingest %d", onObs.Events(), onEv.Events())
	}
	for id := 0; id < cfg.Machines; id++ {
		m := trace.MachineID(id)
		for day := 1; day < cfg.Days; day++ {
			w := sim.Window{Start: sim.Time(day)*sim.Day + 8*time.Hour, End: sim.Time(day)*sim.Day + 11*time.Hour}
			if a, b := onObs.PredictSurvival(m, w), onEv.PredictSurvival(m, w); a != b {
				t.Errorf("machine %d %v: observation-fed %v, event-fed %v", id, w, a, b)
			}
		}
	}
}

// TestRingEviction bounds the per-machine history: the ring keeps only the
// newest EventCapacity starts and reports what it dropped.
func TestRingEviction(t *testing.T) {
	on, err := New(Config{Machines: 1, EventCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		on.ObserveStart(0, sim.Time(i)*time.Hour)
		on.ObserveEnd(0, sim.Time(i)*time.Hour+time.Minute)
	}
	if got := on.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	ms := on.ms[0]
	if ms.n != 4 {
		t.Fatalf("retained %d starts, want 4", ms.n)
	}
	// Only the newest four starts (hours 6..9) remain countable.
	if got := ms.countStarts(sim.Window{Start: 0, End: 10 * time.Hour}); got != 4 {
		t.Fatalf("countStarts over everything = %d, want 4", got)
	}
	if got := ms.countStarts(sim.Window{Start: 0, End: 6 * time.Hour}); got != 0 {
		t.Fatalf("evicted starts still counted: %d", got)
	}
}

// TestBackdatedStartsStaySorted feeds starts slightly out of order (the
// transient-window backdating a detector applies to S3 transitions) and
// checks the ring stays sorted so binary-searched counts stay exact.
func TestBackdatedStartsStaySorted(t *testing.T) {
	on, err := New(Config{Machines: 1, EventCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	times := []sim.Time{
		1 * time.Hour,
		2 * time.Hour,
		2*time.Hour - 50*time.Second, // backdated below the previous start
		3 * time.Hour,
	}
	for _, at := range times {
		on.ObserveStart(0, at)
	}
	ms := on.ms[0]
	for i := 1; i < ms.n; i++ {
		if ms.at(i-1) > ms.at(i) {
			t.Fatalf("ring unsorted at %d: %v > %v", i, ms.at(i-1), ms.at(i))
		}
	}
	if got := ms.countStarts(sim.Window{Start: time.Hour + 30*time.Minute, End: 2*time.Hour + time.Minute}); got != 2 {
		t.Fatalf("count around the backdated start = %d, want 2", got)
	}
}

// TestRateSurvival sanity-checks the hour-of-week rate forecast: an
// event-free machine forecasts certain survival, a machine with events in
// the slot forecasts strictly less, and an unobserved span yields the
// no-information prior.
func TestRateSurvival(t *testing.T) {
	on, err := New(Config{Machines: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two weeks of observation; machine 0 fails every day at 09:10.
	for d := 0; d < 14; d++ {
		at := sim.Time(d)*sim.Day + 9*time.Hour + 10*time.Minute
		on.ObserveStart(0, at)
		on.ObserveEnd(0, at+10*time.Minute)
	}
	on.AdvanceTo(14 * sim.Day)

	w := sim.Window{Start: 14*sim.Day + 9*time.Hour, End: 14*sim.Day + 10*time.Hour}
	risky := on.RateSurvival(0, w)
	if risky >= 1 || risky <= 0 || math.IsNaN(risky) {
		t.Fatalf("failing machine survival = %v, want in (0, 1)", risky)
	}
	if clean := on.RateSurvival(1, w); clean != 1 {
		t.Fatalf("event-free machine survival = %v, want 1", clean)
	}
	empty, err := New(Config{Machines: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.RateSurvival(0, w); got != 0.5 {
		t.Fatalf("unobserved span survival = %v, want 0.5", got)
	}
	if got := on.RateSurvival(trace.MachineID(5), w); got != 0.5 {
		t.Fatalf("unknown machine survival = %v, want 0.5", got)
	}
}

// TestSlotExposure pins the O(1) exposure arithmetic against a direct
// hour-by-hour count.
func TestSlotExposure(t *testing.T) {
	cal := sim.Calendar{StartWeekday: 3}
	spans := []sim.Window{
		{Start: 0, End: 14 * sim.Day},
		{Start: 5 * time.Hour, End: 3*sim.Day + 7*time.Hour},
		{Start: 2*sim.Day + 30*time.Minute, End: 16*sim.Day + 90*time.Minute},
		{Start: time.Hour, End: time.Hour}, // empty
	}
	for _, span := range spans {
		for slot := 0; slot < weekHours; slot += 13 {
			want := 0.0
			for t0 := span.Start; t0 < span.End; {
				hourEnd := t0 - (t0 % time.Hour) + time.Hour
				if hourEnd > span.End {
					hourEnd = span.End
				}
				if weekHour(cal, t0) == slot {
					want += (hourEnd - t0).Hours()
				}
				t0 = hourEnd
			}
			got := slotExposureHours(cal, span, slot)
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("span %v slot %d: exposure %v, want %v", span, slot, got, want)
			}
		}
	}
}

// TestServiceDerivesEvents drives the control-plane wrapper with digest
// state strings and checks the derived event stream and forecasts.
func TestServiceDerivesEvents(t *testing.T) {
	svc, err := NewService(ServiceConfig{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}

	base := int64(1_000_000)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(svc.ObserveState("node-a", "S1(full)", base))
	must(svc.ObserveState("node-a", "S3(UEC-CPU)", base+60_000))
	must(svc.ObserveState("node-a", "S1(full)", base+120_000))
	must(svc.ObserveState("node-b", "S2(reduced)", base))
	must(svc.ObserveState("node-b", "garbage", base+60_000)) // ignored
	must(svc.ObserveState("", "S3(UEC-CPU)", base+60_000))   // ignored

	if got := svc.Nodes(); got != 2 {
		t.Fatalf("Nodes = %d, want 2", got)
	}
	if got := svc.Events(); got != 1 {
		t.Fatalf("Events = %d, want 1 (node-a's S3 episode)", got)
	}

	// A repeated down-state report must not open a second event.
	must(svc.ObserveState("node-a", "S4(UEC-mem)", base+180_000))
	must(svc.ObserveState("node-a", "S4(UEC-mem)", base+200_000))
	if got := svc.Events(); got != 2 {
		t.Fatalf("Events after S4 episode = %d, want 2", got)
	}

	// MarkDead opens an event only when the node is up.
	must(svc.MarkDead("node-b", base+240_000))
	must(svc.MarkDead("node-b", base+250_000))
	if got := svc.Events(); got != 3 {
		t.Fatalf("Events after death = %d, want 3", got)
	}
	must(svc.MarkDead("node-unknown", base+240_000)) // unknown: ignored
	if got := svc.Nodes(); got != 2 {
		t.Fatalf("MarkDead must not grow the fleet: Nodes = %d", got)
	}

	f, known := svc.Forecast("node-a", time.Hour, base+300_000)
	if !known {
		t.Fatal("node-a should be known")
	}
	if f.Survival < 0 || f.Survival > 1 || math.IsNaN(f.Survival) {
		t.Fatalf("survival out of range: %v", f.Survival)
	}
	if f.Events != 2 {
		t.Fatalf("node-a Events = %d, want 2", f.Events)
	}
	if _, known := svc.Forecast("node-z", time.Hour, base+300_000); known {
		t.Fatal("node-z should be unknown")
	}
}

// TestOnlineAdvanceAdmitsHistory pins how forecasts sharpen as the
// observation high-water moves: only fully observed history windows
// contribute, so the same query goes prior → one informed day → five.
func TestOnlineAdvanceAdmitsHistory(t *testing.T) {
	on, err := New(Config{Machines: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := sim.Window{Start: 7*sim.Day + 9*time.Hour, End: 7*sim.Day + 10*time.Hour}
	if got := on.PredictSurvival(0, w); got != 0.5 {
		t.Fatalf("fresh forecaster: survival %v, want the 0.5 prior", got)
	}
	// An event starts at 09:30 of day 0; until its end is observed, the
	// 09:00–10:00 history window is not fully observed and contributes
	// nothing.
	on.ObserveStart(0, 9*time.Hour+30*time.Minute)
	if got := on.PredictSurvival(0, w); got != 0.5 {
		t.Fatalf("partially observed history window: survival %v, want 0.5", got)
	}
	// The end at 10:00 completes day 0's window: one history day, one
	// event — Laplace (0+1)/(1+2).
	on.ObserveEnd(0, 10*time.Hour)
	if got, want := on.PredictSurvival(0, w), 1.0/3.0; got != want {
		t.Fatalf("one history day: survival %v, want %v", got, want)
	}
	// A week of observation admits days 1–4 (same day type, failure-free):
	// five history days, four event-free — (4+1)/(5+2).
	on.AdvanceTo(7 * sim.Day)
	if got, want := on.PredictSurvival(0, w), 5.0/7.0; got != want {
		t.Fatalf("five history days: survival %v, want %v", got, want)
	}
}
