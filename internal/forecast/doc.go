// Package forecast is the online availability predictor: the streaming
// counterpart of internal/predict that closes the loop the paper leaves as
// future work. Instead of batch-training on a recorded trace, an Online
// forecaster ingests per-machine observation (or event) streams as they
// happen — each update is O(1) into a bounded per-machine ring of event
// starts plus incremental hour-of-week statistics — and serves the same
// forecasts the offline predictors would produce had they been retrained
// on the full prefix at that instant.
//
// Equality with the offline predictors is not approximate: the online
// history-window and EWMA forecasts iterate the identical contributing
// windows in the identical order (predict.ForEachHistoryWindow is the one
// definition both sides call), so on identical history the results are
// bit-equal. The differential harness (internal/check) replays every
// testbed seed's observation stream through an Online forecaster and
// asserts exactly that against batch-trained predict.HistoryWindow and
// predict.EWMADaily.
//
// Service wraps an Online forecaster for the control plane: it keys
// machines by node name, maps wall-clock digest stamps onto virtual time,
// and derives the event stream from availability-state transitions carried
// by heartbeat digests — which is how a registry shard serves `forecast`
// requests without ever seeing a recorded trace.
package forecast
