package forecast

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/availability"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config parameterizes an Online forecaster. The zero value (plus a
// machine count) mirrors the offline predictor defaults: untrimmed
// history-window means, EWMA alpha 0.3, no minimum history.
type Config struct {
	// Calendar anchors virtual time to weekdays/weekends, exactly as the
	// trace the offline predictors train on would.
	Calendar sim.Calendar
	// Machines is the initial fleet size (ids 0..Machines-1). AddMachine
	// grows the fleet at runtime (the control-plane service does this as
	// nodes register).
	Machines int
	// EventCapacity bounds the per-machine ring of event starts; when it
	// overflows, the oldest starts are dropped and forecasts see only the
	// retained horizon. Default 4096 — with the paper's ~4 events per
	// machine-day that is roughly three years of history per machine.
	EventCapacity int
	// Trim is the trimmed-mean fraction of the history-window forecast
	// (predict.HistoryWindow.Trim).
	Trim float64
	// Alpha is the EWMA smoothing factor (predict.EWMADaily.Alpha;
	// default 0.3).
	Alpha float64
	// MinHistoryDays guards the history-window forecast against
	// predicting from almost no data (predict.HistoryWindow.MinHistoryDays).
	MinHistoryDays int
	// Detector configures the per-machine availability detector used by
	// the observation-ingest path (Observe). Event ingest (ObserveEvent /
	// ObserveStart) does not use it.
	Detector availability.Config
	// Start is the virtual instant observation began (the span start of
	// the equivalent offline training trace). Default 0.
	Start sim.Time
}

func (c Config) withDefaults() Config {
	if c.EventCapacity == 0 {
		c.EventCapacity = 4096
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Machines < 0 {
		return fmt.Errorf("forecast: negative machine count %d", c.Machines)
	}
	if c.EventCapacity < 0 {
		return fmt.Errorf("forecast: negative event capacity %d", c.EventCapacity)
	}
	if c.Trim < 0 || c.Trim >= 0.5 {
		if c.Trim != 0 {
			return fmt.Errorf("forecast: trim fraction %v outside [0, 0.5)", c.Trim)
		}
	}
	if c.MinHistoryDays < 0 {
		return fmt.Errorf("forecast: negative min history days %d", c.MinHistoryDays)
	}
	return nil
}

// weekHours is the number of hour-of-week slots.
const weekHours = 7 * 24

// machineState is one machine's incrementally maintained history.
type machineState struct {
	// det and down implement the observation-ingest path: det classifies
	// observations and down mirrors trace.Builder's open-event flag, so
	// the derived event starts are exactly the ones a recorded trace of
	// the same stream would contain.
	det  *availability.Detector
	down bool

	// starts is a bounded chronological ring of event start times; head
	// indexes the oldest retained entry, n is the live count. The backing
	// array grows on demand up to cap, so idle machines in a large fleet
	// cost nothing.
	starts []sim.Time
	cap    int
	head   int
	n      int
	// dropped counts starts evicted by the capacity bound; the retention
	// horizon is the oldest retained start when dropped > 0.
	dropped int64

	// lastEnd is the end of the last closed event (0 if none): the renewal
	// age anchor.
	lastEnd sim.Time
	haveEnd bool
	// how counts event starts per hour-of-week slot — the O(1) aggregate
	// behind the rate forecasts. Eviction does not decrement it: it is a
	// lifetime aggregate, normalized by lifetime slot exposure.
	how [weekHours]int64
}

// at returns the i-th oldest retained start.
func (ms *machineState) at(i int) sim.Time {
	return ms.starts[(ms.head+i)%len(ms.starts)]
}

// countStarts returns how many retained event starts fall in [w.Start,
// w.End) — the online equivalent of Index.CountInWindow.
func (ms *machineState) countStarts(w sim.Window) int {
	lo := sort.Search(ms.n, func(i int) bool { return ms.at(i) >= w.Start })
	hi := sort.Search(ms.n, func(i int) bool { return ms.at(i) >= w.End })
	return hi - lo
}

// push appends a start, keeping the ring sorted (backdated S3 transitions
// can arrive up to a transient window out of order) and evicting the
// oldest entry when full.
func (ms *machineState) push(at sim.Time) {
	if ms.cap <= 0 {
		return
	}
	if ms.n == len(ms.starts) && len(ms.starts) < ms.cap {
		// Grow lazily. head stays 0 until the ring first fills to cap, so
		// appending extends the chronological order in place.
		ms.starts = append(ms.starts, 0)
	}
	if ms.n == len(ms.starts) {
		ms.head = (ms.head + 1) % len(ms.starts)
		ms.n--
		ms.dropped++
	}
	i := ms.n
	ms.starts[(ms.head+i)%len(ms.starts)] = at
	ms.n++
	// Bubble the new start back over any later ones (rare: only backdated
	// transitions land out of order, and at most by the transient window).
	for i > 0 && ms.at(i-1) > ms.at(i) {
		a, b := (ms.head+i-1)%len(ms.starts), (ms.head+i)%len(ms.starts)
		ms.starts[a], ms.starts[b] = ms.starts[b], ms.starts[a]
		i--
	}
}

// Online is the incremental forecaster. Ingest is O(1) per event (and per
// observation); forecasts are computed on demand from the retained history
// and are bit-equal to offline predictors batch-trained on the same
// prefix. Not safe for concurrent use — Service adds the locking the
// control plane needs.
type Online struct {
	cfg Config
	ms  []*machineState
	end sim.Time // observation high-water: the span end at query time

	events int64 // total ingested event starts
	oor    int64 // events dropped for out-of-range machine ids

	scratch []float64 // reused history-count buffer
}

// New creates an Online forecaster.
func New(cfg Config) (*Online, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	o := &Online{cfg: cfg, end: cfg.Start}
	for i := 0; i < cfg.Machines; i++ {
		if _, err := o.addMachine(); err != nil {
			return nil, err
		}
	}
	return o, nil
}

func (o *Online) addMachine() (trace.MachineID, error) {
	det, err := availability.NewDetector(o.cfg.Detector)
	if err != nil {
		return 0, err
	}
	o.ms = append(o.ms, &machineState{
		det: det,
		cap: o.cfg.EventCapacity,
	})
	return trace.MachineID(len(o.ms) - 1), nil
}

// AddMachine grows the fleet by one and returns the new machine id.
func (o *Online) AddMachine() (trace.MachineID, error) { return o.addMachine() }

// Machines returns the current fleet size.
func (o *Online) Machines() int { return len(o.ms) }

// Events returns the total number of ingested event starts.
func (o *Online) Events() int64 { return o.events }

// Dropped returns how many event starts the capacity bound has evicted,
// summed over machines.
func (o *Online) Dropped() int64 {
	var n int64
	for _, ms := range o.ms {
		n += ms.dropped
	}
	return n + o.oor
}

// Span returns the observed span [Start, high-water) — the span of the
// offline training trace an equal batch predictor would have been trained
// on.
func (o *Online) Span() sim.Window { return sim.Window{Start: o.cfg.Start, End: o.end} }

// AdvanceTo moves the observation high-water to t (monotone; earlier
// times are ignored). Forecast history only includes fully observed
// windows, so advancing the span is what admits the most recent history
// into forecasts.
func (o *Online) AdvanceTo(t sim.Time) {
	if t > o.end {
		o.end = t
	}
}

func (o *Online) state(m trace.MachineID) *machineState {
	if m < 0 || int(m) >= len(o.ms) {
		return nil
	}
	return o.ms[m]
}

// ObserveStart ingests one event start (the machine left the available
// states at that instant). O(1) amortized.
func (o *Online) ObserveStart(m trace.MachineID, at sim.Time) {
	ms := o.state(m)
	if ms == nil {
		o.oor++
		return
	}
	ms.push(at)
	ms.how[weekHour(o.cfg.Calendar, at)]++
	o.events++
	o.AdvanceTo(at)
}

// ObserveEnd ingests one event end (availability returned). O(1).
func (o *Online) ObserveEnd(m trace.MachineID, at sim.Time) {
	ms := o.state(m)
	if ms == nil {
		return
	}
	if at > ms.lastEnd {
		ms.lastEnd = at
	}
	ms.haveEnd = true
	o.AdvanceTo(at)
}

// ObserveEvent ingests one closed unavailability event from a recorded
// stream (e.g. a replayed fleet trace). Events must arrive in a causally
// plausible order — sorted by end time is the natural feed, since an event
// is only known once it closes.
func (o *Online) ObserveEvent(e trace.Event) {
	o.ObserveStart(e.Machine, e.Start)
	o.ObserveEnd(e.Machine, e.End)
}

// Observe ingests one raw monitor observation for machine m, running the
// same detector pipeline the testbed trace recorder runs: transitions into
// an unavailable state open an event (counting its — possibly backdated —
// start), transitions back close it. Feeding a machine's full observation
// stream therefore yields exactly the event starts of the recorded trace
// of that stream, which is what the online-offline differential pins.
func (o *Online) Observe(m trace.MachineID, obs availability.Observation) error {
	ms := o.state(m)
	if ms == nil {
		return fmt.Errorf("forecast: machine %d outside fleet of %d", m, len(o.ms))
	}
	_, tr := ms.det.Observe(obs)
	if tr != nil {
		// Mirror trace.Builder: a transition out of an unavailable state
		// (to available or directly to another failure state) closes the
		// open event; a transition into an unavailable state opens one.
		if ms.down && tr.From.Unavailable() && (tr.To.Available() || tr.To.Unavailable()) {
			ms.down = false
			if tr.At > ms.lastEnd {
				ms.lastEnd = tr.At
			}
			ms.haveEnd = true
		}
		if tr.To.Unavailable() {
			ms.down = true
			ms.push(tr.At)
			ms.how[weekHour(o.cfg.Calendar, tr.At)]++
			o.events++
		}
	}
	o.AdvanceTo(obs.At)
	return nil
}

// Down reports whether machine m is currently inside an unavailability
// event according to the observation-ingest path.
func (o *Online) Down(m trace.MachineID) bool {
	ms := o.state(m)
	return ms != nil && ms.down
}

// historyCounts mirrors predict.HistoryWindow.historyCounts over the
// retained ring: one count per fully observed same-day-type prior clock
// window, in day order.
func (o *Online) historyCounts(ms *machineState, w sim.Window) []float64 {
	counts := o.scratch[:0]
	predict.ForEachHistoryWindow(o.cfg.Calendar, o.Span(), w, true, func(hw sim.Window) {
		counts = append(counts, float64(ms.countStarts(hw)))
	})
	o.scratch = counts
	return counts
}

// PredictCount forecasts the expected number of unavailability events in w
// on machine m — bit-equal to predict.HistoryWindow{Trim: cfg.Trim,
// MinHistoryDays: cfg.MinHistoryDays} trained on the observed prefix.
// Machines outside the fleet forecast 0 (no history), as offline.
func (o *Online) PredictCount(m trace.MachineID, w sim.Window) float64 {
	ms := o.state(m)
	if ms == nil {
		return 0
	}
	counts := o.historyCounts(ms, w)
	if len(counts) < o.cfg.MinHistoryDays || len(counts) == 0 {
		return 0
	}
	if o.cfg.Trim > 0 {
		return stats.TrimmedMean(counts, o.cfg.Trim)
	}
	return stats.Mean(counts)
}

// PredictSurvival forecasts P(no event overlaps w starts in w's clock
// window) as the Laplace-smoothed fraction of failure-free history
// windows — bit-equal to the offline HistoryWindow. The no-information
// answer (unknown machine, no history) is 0.5.
func (o *Online) PredictSurvival(m trace.MachineID, w sim.Window) float64 {
	ms := o.state(m)
	if ms == nil {
		return 0.5
	}
	counts := o.historyCounts(ms, w)
	if len(counts) < o.cfg.MinHistoryDays || len(counts) == 0 {
		return 0.5
	}
	free := 0
	for _, c := range counts {
		if c == 0 {
			free++
		}
	}
	return stats.Clamp01((float64(free) + 1) / (float64(len(counts)) + 2))
}

// ewmaCount mirrors predict.EWMADaily.predictCount.
func (o *Online) ewmaCount(ms *machineState, w sim.Window) (float64, bool) {
	alpha := o.cfg.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	acc := stats.NewEWMA(alpha)
	predict.ForEachHistoryWindow(o.cfg.Calendar, o.Span(), w, false, func(hw sim.Window) {
		acc.Add(float64(ms.countStarts(hw)))
	})
	if !acc.Initialized() {
		return 0, false
	}
	return acc.Value(), true
}

// EWMACount forecasts the exponentially weighted same-window daily count —
// bit-equal to predict.EWMADaily{Alpha: cfg.Alpha} trained on the observed
// prefix.
func (o *Online) EWMACount(m trace.MachineID, w sim.Window) float64 {
	ms := o.state(m)
	if ms == nil {
		return 0
	}
	v, _ := o.ewmaCount(ms, w)
	return v
}

// EWMASurvival is the EWMA survival forecast, with the same cold-start
// prior (0.5 before the first full day of history) as the offline
// EWMADaily.
func (o *Online) EWMASurvival(m trace.MachineID, w sim.Window) float64 {
	ms := o.state(m)
	if ms == nil {
		return 0.5
	}
	v, ok := o.ewmaCount(ms, w)
	if !ok {
		return 0.5
	}
	return stats.Clamp01(math.Exp(-v))
}

// RateAt returns the machine's lifetime event rate (events per hour) for
// the hour-of-week slot containing t, from the incremental hour-of-week
// aggregates. O(1).
func (o *Online) RateAt(m trace.MachineID, t sim.Time) float64 {
	ms := o.state(m)
	if ms == nil {
		return 0
	}
	exp := slotExposureHours(o.cfg.Calendar, o.Span(), weekHour(o.cfg.Calendar, t))
	if exp <= 0 {
		return 0
	}
	return float64(ms.how[weekHour(o.cfg.Calendar, t)]) / exp
}

// RateSurvival forecasts survival of w from the hour-of-week rate model:
// exp(-Σ slot-rate × overlap-hours). O(hours in w) with O(1) per hour —
// the cheap always-available forecast the control-plane service serves
// when a horizon is too short or history too thin for the history-window
// forecast to bite.
func (o *Online) RateSurvival(m trace.MachineID, w sim.Window) float64 {
	ms := o.state(m)
	if ms == nil || w.End <= w.Start {
		return 0.5
	}
	expected := 0.0
	informative := false
	for t := w.Start; t < w.End; {
		hourEnd := t - (t % time.Hour) + time.Hour
		if t < 0 && t%time.Hour != 0 {
			hourEnd = t - (t%time.Hour + time.Hour) + time.Hour
		}
		if hourEnd > w.End {
			hourEnd = w.End
		}
		slot := weekHour(o.cfg.Calendar, t)
		exp := slotExposureHours(o.cfg.Calendar, o.Span(), slot)
		if exp > 0 {
			informative = true
			expected += float64(ms.how[slot]) / exp * (hourEnd - t).Hours()
		}
		t = hourEnd
	}
	if !informative {
		return 0.5
	}
	return stats.Clamp01(math.Exp(-expected))
}

// Forecast is one machine's composite forecast for a window.
type Forecast struct {
	// Survival is the history-window survival forecast (the paper's
	// predictor), 0.5 when uninformed.
	Survival float64
	// ExpectedEvents is the history-window expected event count.
	ExpectedEvents float64
	// EWMASurvival is the exponentially weighted daily survival forecast.
	EWMASurvival float64
	// RateSurvival is the hour-of-week rate-model survival forecast.
	RateSurvival float64
	// Samples is the number of history windows that informed Survival; 0
	// means the forecast is the cold-start prior.
	Samples int
	// Events is the machine's total retained+evicted event-start count.
	Events int64
}

// ForecastWindow computes the composite forecast for machine m over w.
func (o *Online) ForecastWindow(m trace.MachineID, w sim.Window) Forecast {
	f := Forecast{
		Survival:       o.PredictSurvival(m, w),
		ExpectedEvents: o.PredictCount(m, w),
		EWMASurvival:   o.EWMASurvival(m, w),
		RateSurvival:   o.RateSurvival(m, w),
	}
	if ms := o.state(m); ms != nil {
		f.Samples = len(o.historyCounts(ms, w))
		f.Events = int64(ms.n) + ms.dropped
	}
	return f
}

// weekHour returns t's hour-of-week slot (0 = Monday 00:00 under the zero
// calendar).
func weekHour(cal sim.Calendar, t sim.Time) int {
	return cal.Weekday(t)*24 + cal.HourOfDay(t)
}

// slotExposureHours returns how many hours of span fall inside the weekly
// hour slot — the normalizer that turns hour-of-week counts into rates.
// O(1): whole weeks contribute one hour each; the partial week at each end
// contributes its overlap.
func slotExposureHours(cal sim.Calendar, span sim.Window, slot int) float64 {
	if span.End <= span.Start {
		return 0
	}
	slotStart := sim.Time(slot) * time.Hour
	// Shift the span into week-phase coordinates relative to the calendar
	// epoch (the calendar's StartWeekday already rotated slot numbering in
	// weekHour; here we need the phase of virtual time itself, which for
	// slot s of this calendar begins at (s - startOffset) hours mod week).
	offset := sim.Time(cal.StartWeekday) * sim.Day
	phase := func(t sim.Time) sim.Time {
		p := (t + offset) % sim.Week
		if p < 0 {
			p += sim.Week
		}
		return p
	}
	total := 0.0
	// Full weeks between the first and last week boundaries inside span.
	dur := span.End - span.Start
	fullWeeks := dur / sim.Week
	total += float64(fullWeeks) // one hour per full week, in hours
	rem := dur % sim.Week
	if rem == 0 {
		return total
	}
	// The remaining partial week is [phase(start), phase(start)+rem) in
	// week-phase; intersect it (possibly wrapping) with the slot hour.
	p0 := phase(span.Start)
	slotWin := sim.Window{Start: slotStart, End: slotStart + time.Hour}
	for _, w := range []sim.Window{
		{Start: p0, End: p0 + rem},
		{Start: p0 - sim.Week, End: p0 - sim.Week + rem},
	} {
		if iv, ok := w.Intersect(slotWin); ok {
			total += iv.Duration().Hours()
		}
	}
	return total
}
