package forecast

import (
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// ServiceConfig parameterizes the control-plane wrapper around Online.
type ServiceConfig struct {
	// Online configures the wrapped forecaster. Machines is ignored: the
	// service grows the fleet as node names appear.
	Online Config
	// EpochMS is the wall-clock unix-milliseconds instant mapped to the
	// virtual span start. Zero means "the first observation's stamp".
	EpochMS int64
	// Scale is virtual seconds per wall second (default 1). Loadtests
	// replay days of virtual fleet time in wall seconds, so their
	// registries run with a large Scale.
	Scale float64
}

// Service is the thread-safe, name-keyed forecaster a registry shard
// embeds to answer `forecast` requests. It derives each node's
// unavailability-event stream from the availability states its heartbeat
// digests report: a digest transition from an available (or unknown) state
// into S3/S4/S5 opens an event, the transition back closes it — the same
// reduction trace.Builder applies to detector transitions, performed on
// the control plane's eventually consistent view instead of the node's
// local one.
type Service struct {
	mu    sync.Mutex
	cfg   ServiceConfig
	on    *Online
	ids   map[string]trace.MachineID
	down  []bool // current down-ness per machine, from the digest view
	epoch int64  // resolved EpochMS (0 until the first observation)
	fixed bool   // epoch came from config, not from the first stamp
}

// NewService creates a Service.
func NewService(cfg ServiceConfig) (*Service, error) {
	c := cfg.Online
	c.Machines = 0
	on, err := New(c)
	if err != nil {
		return nil, err
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	return &Service{
		cfg:   cfg,
		on:    on,
		ids:   make(map[string]trace.MachineID),
		epoch: cfg.EpochMS,
		fixed: cfg.EpochMS != 0,
	}, nil
}

// virtual maps a wall-clock unix-ms stamp onto virtual time.
func (s *Service) virtual(unixMS int64) sim.Time {
	return s.cfg.Online.Start + sim.Time(float64(unixMS-s.epoch)*s.cfg.Scale*float64(time.Millisecond))
}

// stateDown classifies a digest availability state string: true for the
// unavailable states S3/S4/S5, false for S1/S2, and no information
// (second result false) for anything else — an empty or unparseable state
// must not fabricate an event.
func stateDown(state string) (down, ok bool) {
	switch {
	case strings.HasPrefix(state, "S1"), strings.HasPrefix(state, "S2"):
		return false, true
	case strings.HasPrefix(state, "S3"), strings.HasPrefix(state, "S4"), strings.HasPrefix(state, "S5"):
		return true, true
	default:
		return false, false
	}
}

func (s *Service) idLocked(name string) (trace.MachineID, error) {
	if m, ok := s.ids[name]; ok {
		return m, nil
	}
	m, err := s.on.AddMachine()
	if err != nil {
		return 0, err
	}
	s.ids[name] = m
	s.down = append(s.down, false)
	return m, nil
}

// ObserveState ingests one node's reported availability state stamped at
// unixMS wall milliseconds (a heartbeat digest, a WAL replay entry, or a
// gossip exchange — all three flow through here). Unknown names join the
// fleet; states that do not parse are ignored.
func (s *Service) ObserveState(name, state string, unixMS int64) error {
	down, ok := stateDown(state)
	if !ok || name == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.epoch == 0 && !s.fixed {
		s.epoch = unixMS
		s.fixed = true
	}
	m, err := s.idLocked(name)
	if err != nil {
		return err
	}
	at := s.virtual(unixMS)
	if down && !s.down[m] {
		s.on.ObserveStart(m, at)
	} else if !down && s.down[m] {
		s.on.ObserveEnd(m, at)
	}
	s.down[m] = down
	s.on.AdvanceTo(at)
	return nil
}

// MarkDead records a liveness expiry (the registry's URR signal: the
// node's heartbeats stopped) as an event start, if the node is not already
// inside one.
func (s *Service) MarkDead(name string, unixMS int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.ids[name]
	if !ok {
		return nil
	}
	if s.epoch == 0 && !s.fixed {
		s.epoch = unixMS
		s.fixed = true
	}
	if !s.down[m] {
		s.on.ObserveStart(m, s.virtual(unixMS))
		s.down[m] = true
	}
	return nil
}

// Forecast answers one node's survival forecast for the horizon starting
// at the wall instant nowMS. Known reports whether the node has ever been
// observed — an unknown node gets the cold-start prior.
func (s *Service) Forecast(name string, horizon time.Duration, nowMS int64) (f Forecast, known bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.ids[name]
	if !ok {
		return Forecast{Survival: 0.5, EWMASurvival: 0.5, RateSurvival: 0.5}, false
	}
	start := s.virtual(nowMS)
	w := sim.Window{Start: start, End: start + sim.Time(float64(horizon)*s.cfg.Scale)}
	s.on.AdvanceTo(start)
	return s.on.ForecastWindow(m, w), true
}

// Nodes returns the number of nodes the service has observed.
func (s *Service) Nodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ids)
}

// Events returns the total ingested event starts.
func (s *Service) Events() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.on.Events()
}
