// Package gsched simulates proactive guest-job management on top of an
// unavailability trace — the application the paper's introduction motivates
// (response time of compute-bound batch guests suffers when jobs are placed
// obliviously; availability prediction enables proactive placement, as in
// the cluster-scheduling work the paper cites).
//
// A stream of guest jobs arrives over the trace's test period. A placement
// policy picks a machine for each job (and again after every failure); the
// trace decides whether an unavailability event kills the job before it
// completes. Jobs restart from scratch (or from their last checkpoint) on
// failure. Comparing completion times across policies quantifies how much
// the paper's predictability observation is actually worth.
package gsched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Policy picks machines for guest jobs.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Pick chooses a machine for a job needing work more CPU time,
	// starting at now, from machines 0..n-1.
	Pick(now sim.Time, work time.Duration, n int) trace.MachineID
	// ObserveFailure informs the policy that its job failed on m at the
	// given time (stateful policies learn from it).
	ObserveFailure(m trace.MachineID, at sim.Time)
}

// Random places jobs uniformly at random.
type Random struct {
	R *rand.Rand
}

// Name implements Policy.
func (p *Random) Name() string { return "random" }

// Pick implements Policy.
func (p *Random) Pick(_ sim.Time, _ time.Duration, n int) trace.MachineID {
	return trace.MachineID(p.R.Intn(n))
}

// ObserveFailure implements Policy.
func (p *Random) ObserveFailure(trace.MachineID, sim.Time) {}

// RoundRobin cycles through machines.
type RoundRobin struct {
	next int
}

// Name implements Policy.
func (p *RoundRobin) Name() string { return "round-robin" }

// Pick implements Policy.
func (p *RoundRobin) Pick(_ sim.Time, _ time.Duration, n int) trace.MachineID {
	m := trace.MachineID(p.next % n)
	p.next++
	return m
}

// ObserveFailure implements Policy.
func (p *RoundRobin) ObserveFailure(trace.MachineID, sim.Time) {}

// LeastRecentlyFailed prefers the machine whose last observed failure (of
// this policy's own jobs) is oldest — a reactive heuristic that needs no
// prediction.
type LeastRecentlyFailed struct {
	lastFail map[trace.MachineID]sim.Time
	rr       int
}

// Name implements Policy.
func (p *LeastRecentlyFailed) Name() string { return "least-recently-failed" }

// Pick implements Policy.
func (p *LeastRecentlyFailed) Pick(_ sim.Time, _ time.Duration, n int) trace.MachineID {
	if p.lastFail == nil {
		p.lastFail = make(map[trace.MachineID]sim.Time)
	}
	best := trace.MachineID(p.rr % n)
	p.rr++
	bestT, seen := p.lastFail[best]
	if !seen {
		return best
	}
	for m := 0; m < n; m++ {
		id := trace.MachineID(m)
		t, ok := p.lastFail[id]
		if !ok {
			return id
		}
		if t < bestT {
			best, bestT = id, t
		}
	}
	return best
}

// ObserveFailure implements Policy.
func (p *LeastRecentlyFailed) ObserveFailure(m trace.MachineID, at sim.Time) {
	if p.lastFail == nil {
		p.lastFail = make(map[trace.MachineID]sim.Time)
	}
	p.lastFail[m] = at
}

// Predictive places each job on the machine with the highest predicted
// survival for the job's execution window — the paper's proactive
// management realized.
type Predictive struct {
	P predict.Predictor
}

// Name implements Policy.
func (p *Predictive) Name() string { return "predictive(" + p.P.Name() + ")" }

// Pick implements Policy. The choice is deterministic: ties go to the
// lowest machine id, and an undefined (NaN) prediction never wins — see
// pickBest.
func (p *Predictive) Pick(now sim.Time, work time.Duration, n int) trace.MachineID {
	w := sim.Window{Start: now, End: now + work}
	best, _ := pickBest(n, func(m trace.MachineID) float64 {
		return p.P.PredictSurvival(m, w)
	})
	return best
}

// pickBest returns the machine with the highest score and that score.
// It is the one comparison loop every score-ranked placement shares, and
// it pins down the two edges a naive `s > best` loop gets wrong:
//
//   - NaN never wins. Every comparison against NaN is false, so depending
//     on argument order a NaN score could either freeze the running best
//     or (as the seed of the loop) poison it forever. Here NaN scores are
//     skipped outright — a machine whose predictor answers "undefined"
//     cannot be chosen over one with a defined score, however bad.
//   - Ties are deterministic: the lowest machine id wins, so a fleet of
//     identically scored machines yields a stable, reproducible choice
//     rather than one that depends on iteration accidents.
//
// When every score is NaN there is nothing to rank; the fallback is
// machine 0 with a NaN score so the caller can detect the case.
func pickBest(n int, score func(trace.MachineID) float64) (trace.MachineID, float64) {
	best := trace.MachineID(0)
	bestS := math.NaN()
	found := false
	for m := 0; m < n; m++ {
		s := score(trace.MachineID(m))
		if math.IsNaN(s) {
			continue
		}
		if !found || s > bestS {
			best, bestS, found = trace.MachineID(m), s, true
		}
	}
	return best, bestS
}

// ObserveFailure implements Policy.
func (p *Predictive) ObserveFailure(trace.MachineID, sim.Time) {}

// Config controls the job-stream simulation.
type Config struct {
	// Jobs is the number of guest jobs.
	Jobs int
	// JobWork is the CPU time a job needs (uniform range).
	JobWork [2]time.Duration
	// TrainDays is the history prefix available to predictive policies;
	// jobs arrive only in the remaining test period.
	TrainDays int
	// RetryDelay is the pause before a failed job restarts elsewhere.
	RetryDelay time.Duration
	// Checkpoint, when positive, preserves work in multiples of this
	// interval across failures (0 = restart from scratch, like the
	// paper's batch guests).
	Checkpoint time.Duration
	// Seed roots the job stream.
	Seed int64
}

// DefaultConfig runs 400 jobs of 1-5 hours without checkpointing.
func DefaultConfig() Config {
	return Config{
		Jobs:       400,
		JobWork:    [2]time.Duration{time.Hour, 5 * time.Hour},
		TrainDays:  28,
		RetryDelay: time.Minute,
		Seed:       7,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Jobs == 0 {
		c.Jobs = d.Jobs
	}
	if c.JobWork[1] == 0 {
		c.JobWork = d.JobWork
	}
	if c.TrainDays == 0 {
		c.TrainDays = d.TrainDays
	}
	if c.RetryDelay == 0 {
		c.RetryDelay = d.RetryDelay
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Jobs <= 0 {
		return fmt.Errorf("gsched: jobs must be positive, got %d", c.Jobs)
	}
	if c.JobWork[0] <= 0 || c.JobWork[0] > c.JobWork[1] {
		return fmt.Errorf("gsched: bad job work range %v", c.JobWork)
	}
	if c.TrainDays < 0 || c.RetryDelay < 0 || c.Checkpoint < 0 {
		return fmt.Errorf("gsched: negative durations")
	}
	return nil
}

// JobStat records one job's fate.
type JobStat struct {
	Arrival    sim.Time
	Work       time.Duration
	Completion sim.Time // zero if unfinished at span end
	Failures   int
	Done       bool
}

// ResponseTime is completion minus arrival.
func (j JobStat) ResponseTime() time.Duration { return j.Completion - j.Arrival }

// Slowdown is response time divided by the job's pure work.
func (j JobStat) Slowdown() float64 {
	if j.Work <= 0 {
		return 0
	}
	return float64(j.ResponseTime()) / float64(j.Work)
}

// Result summarizes one policy's run.
type Result struct {
	Policy         string
	Completed      int
	Unfinished     int
	TotalFailures  int
	MeanResponse   time.Duration
	MedianResponse time.Duration
	MeanSlowdown   float64
	// WastedWork is CPU time lost to failures (work redone).
	WastedWork time.Duration
	// Migrations counts proactive mid-job moves (SimulateMigrating and
	// SimulateProactive).
	Migrations int
	// Checkpoints counts forecast-triggered checkpoints
	// (SimulateProactive only).
	Checkpoints int
	// SavedWork is CPU time that forecast-triggered checkpoints preserved
	// across failures beyond what the periodic checkpoint cadence would
	// have kept (SimulateProactive only).
	SavedWork time.Duration
}

// Simulate replays the job stream against the trace under one policy.
// The same (trace, cfg) pair presents an identical job stream to every
// policy, so results are directly comparable.
func Simulate(tr *trace.Trace, policy Policy, cfg Config) (Result, error) {
	return simulateIndexed(tr, tr.BuildIndex(), policy, cfg)
}

// simulateIndexed is Simulate against a prebuilt index, so Compare can
// amortize one index build across every policy.
func simulateIndexed(tr *trace.Trace, ix *trace.Index, policy Policy, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	testStart := tr.Span.Start + sim.Time(cfg.TrainDays)*sim.Day
	if testStart >= tr.Span.End {
		return Result{}, fmt.Errorf("gsched: training period consumes the trace span")
	}
	jobRNG := sim.NewSource(cfg.Seed).Stream("gsched/jobs")

	// Pre-draw the job stream so every policy sees the same jobs.
	type job struct {
		arrival sim.Time
		work    time.Duration
	}
	jobs := make([]job, cfg.Jobs)
	for i := range jobs {
		jobs[i] = job{
			arrival: testStart + sim.Uniform(jobRNG, 0, tr.Span.End-testStart),
			work:    sim.Uniform(jobRNG, cfg.JobWork[0], cfg.JobWork[1]),
		}
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].arrival < jobs[j].arrival })

	res := Result{Policy: policy.Name()}
	var responses []float64
	var slowdowns []float64
	for _, jb := range jobs {
		stat := runJob(ix, policy, cfg, tr.Machines, tr.Span.End, jb.arrival, jb.work, &res)
		if !stat.Done {
			res.Unfinished++
			continue
		}
		res.Completed++
		res.TotalFailures += stat.Failures
		responses = append(responses, float64(stat.ResponseTime()))
		slowdowns = append(slowdowns, stat.Slowdown())
	}
	if len(responses) > 0 {
		res.MeanResponse = time.Duration(stats.Mean(responses))
		res.MedianResponse = time.Duration(stats.Median(responses))
		res.MeanSlowdown = stats.Mean(slowdowns)
	}
	return res, nil
}

// runJob executes one job to completion or span end.
func runJob(ix *trace.Index, policy Policy, cfg Config, machines int, spanEnd sim.Time, arrival sim.Time, work time.Duration, res *Result) JobStat {
	stat := JobStat{Arrival: arrival, Work: work}
	remaining := work
	now := arrival
	for {
		if now >= spanEnd {
			return stat
		}
		m := policy.Pick(now, remaining, machines)
		ev, overlaps := ix.FirstOverlap(m, sim.Window{Start: now, End: now + remaining})
		if !overlaps {
			if now+remaining > spanEnd {
				return stat
			}
			stat.Completion = now + remaining
			stat.Done = true
			return stat
		}
		// The job dies when the event begins (or immediately, if the
		// machine is already unavailable).
		failAt := ev.Start
		if failAt < now {
			failAt = now
		}
		done := failAt - now
		if cfg.Checkpoint > 0 {
			kept := (done / cfg.Checkpoint) * cfg.Checkpoint
			remaining -= kept
			res.WastedWork += done - kept
		} else {
			res.WastedWork += done
		}
		stat.Failures++
		policy.ObserveFailure(m, failAt)
		// Restart after the outage clears plus the retry delay. Other
		// machines may be free sooner, but the failure must be noticed
		// and the job resubmitted, which the delay models.
		now = failAt + cfg.RetryDelay
		if ev.End > now {
			// If the policy insists on the same machine it would fail
			// instantly; advancing past the event keeps the comparison
			// fair for the oblivious policies too.
			now = ev.End + cfg.RetryDelay
		}
	}
}

// Compare runs every policy against the same trace and job stream. The
// ground-truth index is built once and shared across policies.
func Compare(tr *trace.Trace, policies []Policy, cfg Config) ([]Result, error) {
	ix := tr.BuildIndex()
	var out []Result
	for _, p := range policies {
		r, err := simulateIndexed(tr, ix, p, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// DefaultPolicies builds the standard comparison lineup: oblivious
// baselines plus the predictive policy driven by the paper's
// history-window predictor trained on the trace prefix.
func DefaultPolicies(tr *trace.Trace, cfg Config, seed int64) []Policy {
	cfg = cfg.withDefaults()
	hw := &predict.HistoryWindow{Trim: 0.1}
	hw.Train(tr.Before(tr.Span.Start + sim.Time(cfg.TrainDays)*sim.Day))
	return []Policy{
		&Random{R: sim.NewSource(seed).Stream("policy/random")},
		&RoundRobin{},
		&LeastRecentlyFailed{},
		&Predictive{P: hw},
	}
}

// FormatResults renders a comparison table.
func FormatResults(rs []Result) string {
	var b strings.Builder
	b.WriteString("Proactive scheduling — job completion under placement policies\n")
	fmt.Fprintf(&b, "%-34s %9s %9s %12s %12s %10s %8s\n",
		"policy", "completed", "failures", "mean-resp", "median-resp", "slowdown", "wasted")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-34s %9d %9d %12s %12s %10.2f %8s\n",
			r.Policy, r.Completed, r.TotalFailures,
			r.MeanResponse.Round(time.Minute), r.MedianResponse.Round(time.Minute),
			r.MeanSlowdown, r.WastedWork.Round(time.Hour))
	}
	return b.String()
}

// MinResponse places each job on the machine with the lowest expected
// response time, using predict.ResponseEstimator. For jobs long enough
// that failure is near-certain everywhere, survival probabilities all
// collapse toward zero and stop ranking machines; expected response still
// does, which is why the paper calls response time the primary metric.
type MinResponse struct {
	E *predict.ResponseEstimator
}

// Name implements Policy.
func (p *MinResponse) Name() string { return "min-expected-response" }

// Pick implements Policy.
func (p *MinResponse) Pick(now sim.Time, work time.Duration, n int) trace.MachineID {
	best := trace.MachineID(0)
	bestT := time.Duration(1<<62 - 1)
	for m := 0; m < n; m++ {
		if t := p.E.Expected(trace.MachineID(m), now, work); t < bestT {
			best, bestT = trace.MachineID(m), t
		}
	}
	return best
}

// ObserveFailure implements Policy.
func (p *MinResponse) ObserveFailure(trace.MachineID, sim.Time) {}
