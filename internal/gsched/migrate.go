package gsched

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SurvivalEstimator is the extra capability proactive migration needs: a
// per-machine survival estimate for a job's remaining execution window.
// The Predictive policy provides it.
type SurvivalEstimator interface {
	// Survival estimates P(no failure) for work more CPU time on machine
	// m starting at now.
	Survival(now sim.Time, work time.Duration, m trace.MachineID) float64
}

// Survival implements SurvivalEstimator for the predictive policy.
func (p *Predictive) Survival(now sim.Time, work time.Duration, m trace.MachineID) float64 {
	return p.P.PredictSurvival(m, sim.Window{Start: now, End: now + work})
}

// MigrationConfig controls proactive mid-job migration: periodically
// re-evaluate the predicted survival of the job's remaining work on its
// current machine and move it (paying a delay, keeping its progress — the
// "migrated off" option of the paper's failure model) when another machine
// looks sufficiently safer.
type MigrationConfig struct {
	// CheckEvery is how often a running job reconsiders its placement.
	CheckEvery time.Duration
	// Delay is the cost of one migration (state transfer, resubmission).
	Delay time.Duration
	// Margin is how much better (in survival probability) the best
	// alternative must be before a migration is worth its delay.
	Margin float64
}

// DefaultMigrationConfig reconsiders hourly, pays 2 minutes per move, and
// requires a 15-point survival advantage.
func DefaultMigrationConfig() MigrationConfig {
	return MigrationConfig{
		CheckEvery: time.Hour,
		Delay:      2 * time.Minute,
		Margin:     0.15,
	}
}

// Validate reports configuration errors.
func (m MigrationConfig) Validate() error {
	if m.CheckEvery <= 0 {
		return fmt.Errorf("gsched: migration check interval must be positive, got %v", m.CheckEvery)
	}
	if m.Delay < 0 {
		return fmt.Errorf("gsched: negative migration delay %v", m.Delay)
	}
	if m.Margin < 0 || m.Margin > 1 {
		return fmt.Errorf("gsched: migration margin %v outside [0,1]", m.Margin)
	}
	return nil
}

// SimulateMigrating replays the job stream with proactive migration on top
// of the given policy (which must also estimate survival). Jobs keep their
// progress across migrations but lose it to failures exactly as in
// Simulate.
func SimulateMigrating(tr *trace.Trace, policy Policy, est SurvivalEstimator, cfg Config, mig MigrationConfig) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := mig.Validate(); err != nil {
		return Result{}, err
	}
	testStart := tr.Span.Start + sim.Time(cfg.TrainDays)*sim.Day
	if testStart >= tr.Span.End {
		return Result{}, fmt.Errorf("gsched: training period consumes the trace span")
	}
	ix := tr.BuildIndex()
	jobRNG := sim.NewSource(cfg.Seed).Stream("gsched/jobs")

	type job struct {
		arrival sim.Time
		work    time.Duration
	}
	jobs := make([]job, cfg.Jobs)
	for i := range jobs {
		jobs[i] = job{
			arrival: testStart + sim.Uniform(jobRNG, 0, tr.Span.End-testStart),
			work:    sim.Uniform(jobRNG, cfg.JobWork[0], cfg.JobWork[1]),
		}
	}

	res := Result{Policy: policy.Name() + "+migration"}
	var responses, slowdowns []float64
	for _, jb := range jobs {
		stat, migrations := runJobMigrating(ix, policy, est, cfg, mig, tr.Machines, tr.Span.End, jb.arrival, jb.work, &res)
		res.Migrations += migrations
		if !stat.Done {
			res.Unfinished++
			continue
		}
		res.Completed++
		res.TotalFailures += stat.Failures
		responses = append(responses, float64(stat.ResponseTime()))
		slowdowns = append(slowdowns, stat.Slowdown())
	}
	if len(responses) > 0 {
		res.MeanResponse = time.Duration(stats.Mean(responses))
		res.MedianResponse = time.Duration(stats.Median(responses))
		res.MeanSlowdown = stats.Mean(slowdowns)
	}
	return res, nil
}

// runJobMigrating executes one job with periodic placement reviews.
// Progress survives migrations (live migration moves process state) but is
// lost to failures under exactly the same rules as the plain runner: back
// to the last checkpoint, or to zero without checkpointing — a surviving
// chunk is NOT an implicit checkpoint.
func runJobMigrating(ix *trace.Index, policy Policy, est SurvivalEstimator, cfg Config, mig MigrationConfig, machines int, spanEnd sim.Time, arrival sim.Time, work time.Duration, res *Result) (JobStat, int) {
	stat := JobStat{Arrival: arrival, Work: work}
	var done time.Duration // work completed since the job's last restart
	now := arrival
	migrations := 0
	m := policy.Pick(now, work, machines)
	for {
		if now >= spanEnd {
			return stat, migrations
		}
		remaining := work - done
		// Run one review chunk (or to completion, whichever is sooner).
		chunk := mig.CheckEvery
		if remaining < chunk {
			chunk = remaining
		}
		ev, overlaps := ix.FirstOverlap(m, sim.Window{Start: now, End: now + chunk})
		if !overlaps {
			// Chunk survives.
			now += chunk
			done += chunk
			if done >= work {
				if now > spanEnd {
					return stat, migrations
				}
				stat.Completion = now
				stat.Done = true
				return stat, migrations
			}
			// Placement review: is another machine clearly safer for the
			// rest of the job? An undefined (NaN) survival for the current
			// machine must not pin the job here forever — NaN poisons
			// every comparison, so it is handled explicitly: any machine
			// with a defined estimate beats an undefined current one.
			remaining = work - done
			cur := est.Survival(now, remaining, m)
			best, bestS := pickBest(machines, func(id trace.MachineID) float64 {
				return est.Survival(now, remaining, id)
			})
			if best != m && !math.IsNaN(bestS) &&
				(math.IsNaN(cur) || (bestS > cur && bestS-cur >= mig.Margin)) {
				m = best
				migrations++
				now += mig.Delay
			}
			continue
		}
		// Failure inside the chunk: lose progress back to the last
		// checkpoint (or entirely), as in the plain runner.
		failAt := ev.Start
		if failAt < now {
			failAt = now
		}
		done += failAt - now
		var kept time.Duration
		if cfg.Checkpoint > 0 {
			kept = (done / cfg.Checkpoint) * cfg.Checkpoint
		}
		res.WastedWork += done - kept
		done = kept
		stat.Failures++
		policy.ObserveFailure(m, failAt)
		now = failAt + cfg.RetryDelay
		if ev.End > now {
			now = ev.End + cfg.RetryDelay
		}
		m = policy.Pick(now, work-done, machines)
	}
}
