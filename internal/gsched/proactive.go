package gsched

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ProactiveConfig controls forecast-driven checkpoint-or-migrate reviews:
// a running job periodically forecasts its machine's survival over the
// next Horizon and, when the forecast drops below SurvivalFloor, acts
// *before* the predicted unavailability window — migrating when a clearly
// safer machine exists, checkpointing in place otherwise. This is the
// proactive loop the paper's predictability findings motivate: S3/S4/S5
// windows recur at the same clock hours, so an online forecaster sees
// them coming.
type ProactiveConfig struct {
	// CheckEvery is the review cadence.
	CheckEvery time.Duration
	// Horizon is how far ahead each review forecasts (capped at the job's
	// remaining work).
	Horizon time.Duration
	// SurvivalFloor triggers action when the current machine's horizon
	// survival forecast falls below it. An undefined (NaN) forecast also
	// triggers — no forecast is no reassurance.
	SurvivalFloor float64
	// CheckpointCost is the pause to write one checkpoint.
	CheckpointCost time.Duration
	// MigrateDelay is the cost of one migration (state transfer and
	// resubmission), as in MigrationConfig.
	MigrateDelay time.Duration
	// MigrateMargin is how much better the best alternative's forecast
	// must be before migrating beats checkpointing in place.
	MigrateMargin float64
	// Metrics, when set, receives live counters (checkpoints, migrations,
	// saved/wasted CPU seconds) and a per-review forecast latency
	// histogram. Instrumentation never touches the simulation's random
	// streams, so results are identical with or without it.
	Metrics *obs.Registry
}

// DefaultProactiveConfig reviews every 30 minutes with a 2-hour horizon,
// acts below 60% survival, pays 30 seconds per checkpoint and 2 minutes
// per migration, and migrates on a 15-point advantage.
func DefaultProactiveConfig() ProactiveConfig {
	return ProactiveConfig{
		CheckEvery:     30 * time.Minute,
		Horizon:        2 * time.Hour,
		SurvivalFloor:  0.6,
		CheckpointCost: 30 * time.Second,
		MigrateDelay:   2 * time.Minute,
		MigrateMargin:  0.15,
	}
}

// Validate reports configuration errors.
func (p ProactiveConfig) Validate() error {
	if p.CheckEvery <= 0 {
		return fmt.Errorf("gsched: proactive check interval must be positive, got %v", p.CheckEvery)
	}
	if p.Horizon <= 0 {
		return fmt.Errorf("gsched: proactive horizon must be positive, got %v", p.Horizon)
	}
	if p.SurvivalFloor < 0 || p.SurvivalFloor > 1 {
		return fmt.Errorf("gsched: survival floor %v outside [0,1]", p.SurvivalFloor)
	}
	if p.CheckpointCost < 0 || p.MigrateDelay < 0 {
		return fmt.Errorf("gsched: negative proactive costs")
	}
	if p.MigrateMargin < 0 || p.MigrateMargin > 1 {
		return fmt.Errorf("gsched: migrate margin %v outside [0,1]", p.MigrateMargin)
	}
	return nil
}

// ForecastSource is the minimal surface the proactive loop needs from a
// forecaster: a survival forecast for one machine over one window. Both
// the online forecaster (*forecast.Online) and every offline
// predict.Predictor satisfy it.
type ForecastSource interface {
	PredictSurvival(m trace.MachineID, w sim.Window) float64
}

// ForecastEstimator adapts a ForecastSource to the SurvivalEstimator the
// migrating and proactive runners consume — this is how an online
// forecaster plugs into SimulateProactive.
type ForecastEstimator struct{ F ForecastSource }

// Survival implements SurvivalEstimator.
func (e ForecastEstimator) Survival(now sim.Time, work time.Duration, m trace.MachineID) float64 {
	return e.F.PredictSurvival(m, sim.Window{Start: now, End: now + work})
}

// proactiveMetrics is the resolved instrument set, nil-safe when unused.
type proactiveMetrics struct {
	checkpoints *obs.Counter
	migrations  *obs.Counter
	saved       *obs.Gauge
	wasted      *obs.Gauge
	latency     *obs.Histogram
}

func newProactiveMetrics(r *obs.Registry) *proactiveMetrics {
	if r == nil {
		return nil
	}
	return &proactiveMetrics{
		checkpoints: r.Counter("gsched_proactive_checkpoints_total",
			"Forecast-triggered checkpoints written before predicted unavailability."),
		migrations: r.Counter("gsched_proactive_migrations_total",
			"Forecast-triggered mid-job migrations."),
		saved: r.Gauge("gsched_proactive_saved_cpu_seconds",
			"Guest CPU seconds preserved by proactive checkpoints beyond the periodic cadence."),
		wasted: r.Gauge("gsched_wasted_cpu_seconds",
			"Guest CPU seconds lost to failures (work redone)."),
		latency: r.Histogram("gsched_forecast_latency_seconds",
			"Wall-clock latency of one placement review's survival forecasts.",
			obs.ExpBuckets(1e-7, 4, 12)),
	}
}

// SimulateProactive replays the job stream with forecast-driven
// checkpoint/migrate reviews on top of the given policy. Placement and
// failure rules match Simulate exactly (same pre-drawn job stream, same
// ground-truth index), so its Result is directly comparable against the
// reactive baseline's: the difference is only what the reviews save.
func SimulateProactive(tr *trace.Trace, policy Policy, est SurvivalEstimator, cfg Config, pro ProactiveConfig) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if err := pro.Validate(); err != nil {
		return Result{}, err
	}
	testStart := tr.Span.Start + sim.Time(cfg.TrainDays)*sim.Day
	if testStart >= tr.Span.End {
		return Result{}, fmt.Errorf("gsched: training period consumes the trace span")
	}
	ix := tr.BuildIndex()
	jobRNG := sim.NewSource(cfg.Seed).Stream("gsched/jobs")

	type job struct {
		arrival sim.Time
		work    time.Duration
	}
	jobs := make([]job, cfg.Jobs)
	for i := range jobs {
		jobs[i] = job{
			arrival: testStart + sim.Uniform(jobRNG, 0, tr.Span.End-testStart),
			work:    sim.Uniform(jobRNG, cfg.JobWork[0], cfg.JobWork[1]),
		}
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].arrival < jobs[j].arrival })

	met := newProactiveMetrics(pro.Metrics)
	res := Result{Policy: policy.Name() + "+proactive"}
	var responses, slowdowns []float64
	for _, jb := range jobs {
		stat := runJobProactive(ix, policy, est, cfg, pro, met, tr.Machines, tr.Span.End, jb.arrival, jb.work, &res)
		if !stat.Done {
			res.Unfinished++
			continue
		}
		res.Completed++
		res.TotalFailures += stat.Failures
		responses = append(responses, float64(stat.ResponseTime()))
		slowdowns = append(slowdowns, stat.Slowdown())
	}
	if len(responses) > 0 {
		res.MeanResponse = time.Duration(stats.Mean(responses))
		res.MedianResponse = time.Duration(stats.Median(responses))
		res.MeanSlowdown = stats.Mean(slowdowns)
	}
	if met != nil {
		met.saved.Set(res.SavedWork.Seconds())
		met.wasted.Set(res.WastedWork.Seconds())
	}
	return res, nil
}

// runJobProactive executes one job with forecast reviews. Progress
// bookkeeping extends the migrating runner's: a forecast-triggered
// checkpoint pins the job's progress at that instant, so a later failure
// rolls back only to max(proactive checkpoint, periodic checkpoint)
// instead of the periodic cadence alone.
func runJobProactive(ix *trace.Index, policy Policy, est SurvivalEstimator, cfg Config, pro ProactiveConfig, met *proactiveMetrics, machines int, spanEnd sim.Time, arrival sim.Time, work time.Duration, res *Result) JobStat {
	stat := JobStat{Arrival: arrival, Work: work}
	var done time.Duration // work completed since the job's last restart
	var ckpt time.Duration // progress pinned by the last proactive checkpoint
	now := arrival
	m := policy.Pick(now, work, machines)
	for {
		if now >= spanEnd {
			return stat
		}
		remaining := work - done
		chunk := pro.CheckEvery
		if remaining < chunk {
			chunk = remaining
		}
		ev, overlaps := ix.FirstOverlap(m, sim.Window{Start: now, End: now + chunk})
		if !overlaps {
			now += chunk
			done += chunk
			if done >= work {
				if now > spanEnd {
					return stat
				}
				stat.Completion = now
				stat.Done = true
				return stat
			}
			// Review: forecast the next horizon on the current machine.
			remaining = work - done
			horizon := pro.Horizon
			if remaining < horizon {
				horizon = remaining
			}
			var t0 time.Time
			if met != nil {
				t0 = time.Now()
			}
			cur := est.Survival(now, horizon, m)
			danger := math.IsNaN(cur) || cur < pro.SurvivalFloor
			var best trace.MachineID
			bestS := math.NaN()
			if danger {
				best, bestS = pickBest(machines, func(id trace.MachineID) float64 {
					return est.Survival(now, horizon, id)
				})
			}
			if met != nil {
				met.latency.Observe(time.Since(t0).Seconds())
			}
			if !danger {
				continue
			}
			// Unavailability is forecast within the horizon. First pin the
			// job's progress with a checkpoint — it is cheap, and it bounds
			// the loss no matter where the job runs next or how wrong the
			// forecast turns out to be. Then additionally move the job when
			// a clearly safer machine exists; forecasts are imperfect, and
			// the checkpoint is what keeps a mistaken migration from
			// costing more than MigrateDelay.
			if done > ckpt {
				ckpt = done
				res.Checkpoints++
				now += pro.CheckpointCost
				if met != nil {
					met.checkpoints.Inc()
				}
			}
			if best != m && !math.IsNaN(bestS) &&
				(math.IsNaN(cur) || bestS-cur >= pro.MigrateMargin) {
				m = best
				res.Migrations++
				now += pro.MigrateDelay
				if met != nil {
					met.migrations.Inc()
				}
			}
			continue
		}
		// Failure inside the chunk: roll back to the furthest checkpoint —
		// proactive or periodic, whichever preserved more.
		failAt := ev.Start
		if failAt < now {
			failAt = now
		}
		done += failAt - now
		var periodic time.Duration
		if cfg.Checkpoint > 0 {
			periodic = (done / cfg.Checkpoint) * cfg.Checkpoint
		}
		kept := periodic
		if ckpt > kept {
			kept = ckpt
		}
		res.WastedWork += done - kept
		res.SavedWork += kept - periodic
		done = kept
		stat.Failures++
		policy.ObserveFailure(m, failAt)
		now = failAt + cfg.RetryDelay
		if ev.End > now {
			now = ev.End + cfg.RetryDelay
		}
		m = policy.Pick(now, work-done, machines)
	}
}
