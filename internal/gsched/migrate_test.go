package gsched

import (
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestMigrationConfigValidation(t *testing.T) {
	bad := []MigrationConfig{
		{CheckEvery: 0, Delay: time.Minute, Margin: 0.1},
		{CheckEvery: time.Hour, Delay: -1, Margin: 0.1},
		{CheckEvery: time.Hour, Delay: 0, Margin: 1.5},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid migration config accepted", i)
		}
	}
	if err := DefaultMigrationConfig().Validate(); err != nil {
		t.Errorf("default rejected: %v", err)
	}
}

func TestMigratingOnCleanTraceMatchesPlain(t *testing.T) {
	tr := trace.New(sim.Window{End: 40 * sim.Day}, sim.Calendar{}, 4)
	cfg := Config{Jobs: 40, JobWork: [2]time.Duration{time.Hour, 2 * time.Hour}, TrainDays: 7, Seed: 3}
	hw := &predict.HistoryWindow{}
	hw.Train(tr.Before(7 * sim.Day))
	pol := &Predictive{P: hw}
	res, err := SimulateMigrating(tr, pol, pol, cfg, DefaultMigrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFailures != 0 || res.WastedWork != 0 {
		t.Errorf("clean trace: %+v", res)
	}
	if res.MeanSlowdown < 0.99 || res.MeanSlowdown > 1.01 {
		t.Errorf("slowdown = %v, want 1.0 (no migrations on a uniform clean fleet)", res.MeanSlowdown)
	}
	if res.Migrations != 0 {
		t.Errorf("uniform clean fleet should trigger no migrations, got %d", res.Migrations)
	}
}

func TestMigrationEscapesHostileMachine(t *testing.T) {
	// Machine 0 is hostile only in the afternoon (hours 12-20, every day);
	// machine 1 is always clean. Jobs pinned to start on machine 0 should
	// migrate away before the afternoon trouble.
	tr := trace.New(sim.Window{End: 30 * sim.Day}, sim.Calendar{}, 2)
	for d := 0; d < 30; d++ {
		for h := 12; h < 20; h += 2 {
			start := sim.Time(d)*sim.Day + sim.Time(h)*time.Hour
			tr.Add(trace.Event{
				Machine: 0,
				Start:   start,
				End:     start + 30*time.Minute,
				State:   availability.S3,
			})
		}
	}
	tr.Sort()
	cfg := Config{Jobs: 80, JobWork: [2]time.Duration{5 * time.Hour, 8 * time.Hour}, TrainDays: 14, Seed: 9}
	hw := &predict.HistoryWindow{}
	hw.Train(tr.Before(14 * sim.Day))
	pol := &Predictive{P: hw}

	plain, err := Simulate(tr, &pinZero{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mig, err := SimulateMigrating(tr, &pinZero{}, pol, cfg, MigrationConfig{
		CheckEvery: time.Hour, Delay: 2 * time.Minute, Margin: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mig.Migrations == 0 {
		t.Fatal("no migrations triggered despite a hostile afternoon machine")
	}
	if !(mig.TotalFailures < plain.TotalFailures) {
		t.Errorf("migration should cut failures: %d vs plain %d", mig.TotalFailures, plain.TotalFailures)
	}
	if !(mig.MeanSlowdown < plain.MeanSlowdown) {
		t.Errorf("migration should cut slowdown: %v vs plain %v", mig.MeanSlowdown, plain.MeanSlowdown)
	}
	if s := mig.Policy; s != "pin-0+migration" {
		t.Errorf("policy label = %q", s)
	}
}

// pinZero always starts jobs on machine 0, isolating migration's effect.
type pinZero struct{}

func (pinZero) Name() string                                      { return "pin-0" }
func (pinZero) Pick(sim.Time, time.Duration, int) trace.MachineID { return 0 }
func (pinZero) ObserveFailure(trace.MachineID, sim.Time)          {}
