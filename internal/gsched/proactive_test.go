package gsched

import (
	"math"
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/trace"
)

// scoreTable is a stub scorer: fixed per-machine survival, NaN included.
type scoreTable []float64

func (s scoreTable) PredictSurvival(m trace.MachineID, _ sim.Window) float64 {
	if m < 0 || int(m) >= len(s) {
		return math.NaN()
	}
	return s[m]
}

func (s scoreTable) PredictCount(trace.MachineID, sim.Window) float64 { return 0 }
func (s scoreTable) Name() string                                    { return "score-table" }
func (s scoreTable) Train(*trace.Trace)                              {}

func TestPickBest(t *testing.T) {
	nan := math.NaN()
	tests := []struct {
		name   string
		scores scoreTable
		want   trace.MachineID
		wantS  float64
	}{
		{"plain max", scoreTable{0.1, 0.9, 0.5}, 1, 0.9},
		{"tie goes to lowest id", scoreTable{0.7, 0.7, 0.7}, 0, 0.7},
		{"nan never wins over a defined score", scoreTable{nan, 0.01, nan}, 1, 0.01},
		{"nan first does not poison the seed", scoreTable{nan, nan, 0.3, 0.8}, 3, 0.8},
		{"all nan falls back to machine 0", scoreTable{nan, nan, nan}, 0, nan},
		{"late tie keeps the earlier machine", scoreTable{0.2, 0.8, 0.8}, 1, 0.8},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, gotS := pickBest(len(tc.scores), func(m trace.MachineID) float64 {
				return tc.scores[m]
			})
			if got != tc.want {
				t.Errorf("pickBest machine = %d, want %d", got, tc.want)
			}
			if math.IsNaN(tc.wantS) != math.IsNaN(gotS) || (!math.IsNaN(tc.wantS) && gotS != tc.wantS) {
				t.Errorf("pickBest score = %v, want %v", gotS, tc.wantS)
			}
		})
	}
}

// TestPredictiveNaNPredictor is the regression for the latent Pick bug: a
// predictor answering NaN for some machines must never have a NaN machine
// chosen over a defined one, and an all-NaN fleet must yield a
// deterministic machine 0, not an arbitrary iteration artifact.
func TestPredictiveNaNPredictor(t *testing.T) {
	nan := math.NaN()
	p := &Predictive{P: scoreTable{nan, 0.2, nan, 0.4}}
	if got := p.Pick(0, time.Hour, 4); got != 3 {
		t.Errorf("Pick = %d, want 3 (highest defined score)", got)
	}
	p = &Predictive{P: scoreTable{nan, nan, nan}}
	if got := p.Pick(0, time.Hour, 3); got != 0 {
		t.Errorf("all-NaN Pick = %d, want deterministic 0", got)
	}
	// Deterministic across repeated calls.
	p = &Predictive{P: scoreTable{0.5, 0.5, 0.5}}
	first := p.Pick(0, time.Hour, 3)
	for i := 0; i < 5; i++ {
		if got := p.Pick(0, time.Hour, 3); got != first {
			t.Fatalf("tied Pick flapped: %d then %d", first, got)
		}
	}
	if first != 0 {
		t.Errorf("tied Pick = %d, want lowest id 0", first)
	}
}

// pinPolicy always places on one machine — it isolates the migration
// review's own decision-making.
type pinPolicy struct{ m trace.MachineID }

func (p pinPolicy) Name() string                                         { return "pin" }
func (p pinPolicy) Pick(sim.Time, time.Duration, int) trace.MachineID    { return p.m }
func (p pinPolicy) ObserveFailure(trace.MachineID, sim.Time)             {}

// TestMigratingNaNDoesNotPin is the regression for the latent migrate
// bug: when the current machine's survival estimate is NaN, every
// comparison against it is false, which used to pin the job there
// forever. A defined alternative must win.
func TestMigratingNaNDoesNotPin(t *testing.T) {
	tr := trace.New(sim.Window{End: 20 * sim.Day}, sim.Calendar{}, 2)
	cfg := Config{Jobs: 10, JobWork: [2]time.Duration{2 * time.Hour, 3 * time.Hour}, TrainDays: 7, Seed: 11}
	est := ForecastEstimator{F: scoreTable{math.NaN(), 0.9}}
	res, err := SimulateMigrating(tr, pinPolicy{m: 0}, est, cfg, DefaultMigrationConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrations == 0 {
		t.Fatalf("NaN current estimate pinned every job: %+v", res)
	}
	if res.Completed != 10 {
		t.Fatalf("completed %d of 10 on a clean trace", res.Completed)
	}
}

// predictableTrace fails every machine daily at 09:00–11:00 — the paper's
// recurring-clock-window unavailability in its purest form. No placement
// avoids it; only acting before 09:00 helps.
func predictableTrace(machines int) *trace.Trace {
	tr := trace.New(sim.Window{End: 30 * sim.Day}, sim.Calendar{}, machines)
	for d := 0; d < 30; d++ {
		for m := 0; m < machines; m++ {
			start := sim.Time(d)*sim.Day + 9*time.Hour
			tr.Add(trace.Event{
				Machine: trace.MachineID(m),
				Start:   start,
				End:     start + 2*time.Hour,
				State:   availability.S3,
			})
		}
	}
	tr.Sort()
	return tr
}

// proactiveSetup builds the shared reactive-vs-proactive comparison:
// identical trace, config, and predictor.
func proactiveSetup(t *testing.T) (*trace.Trace, Config, *Predictive) {
	t.Helper()
	tr := predictableTrace(3)
	cfg := Config{
		Jobs:      40,
		JobWork:   [2]time.Duration{4 * time.Hour, 8 * time.Hour},
		TrainDays: 14,
		Seed:      9,
	}
	hw := &predict.HistoryWindow{}
	hw.Train(tr.Before(tr.Span.Start + 14*sim.Day))
	return tr, cfg, &Predictive{P: hw}
}

// TestProactiveBeatsReactive is the headline property: on a trace whose
// unavailability recurs at fixed clock windows, forecast-driven
// checkpoints cut wasted work versus the reactive baseline without
// losing throughput.
func TestProactiveBeatsReactive(t *testing.T) {
	tr, cfg, pol := proactiveSetup(t)

	reactive, err := Simulate(tr, pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	proactive, err := SimulateProactive(tr, pol, pol, cfg, DefaultProactiveConfig())
	if err != nil {
		t.Fatal(err)
	}

	if reactive.WastedWork == 0 {
		t.Fatal("reactive baseline wasted nothing; the comparison is vacuous")
	}
	if proactive.Checkpoints == 0 {
		t.Fatal("proactive run never checkpointed on a predictable trace")
	}
	if proactive.WastedWork >= reactive.WastedWork {
		t.Errorf("proactive wasted %v, reactive %v — no saving", proactive.WastedWork, reactive.WastedWork)
	}
	if proactive.Completed < reactive.Completed {
		t.Errorf("proactive completed %d, reactive %d — throughput lost", proactive.Completed, reactive.Completed)
	}
	if proactive.SavedWork == 0 {
		t.Error("SavedWork not accounted despite checkpoints")
	}
}

// TestProactiveMetricsNeutral pins that instrumentation changes nothing:
// the same run with and without a metrics registry yields identical
// results, and the registry sees the activity.
func TestProactiveMetricsNeutral(t *testing.T) {
	tr, cfg, pol := proactiveSetup(t)

	plain, err := SimulateProactive(tr, pol, pol, cfg, DefaultProactiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	pro := DefaultProactiveConfig()
	pro.Metrics = reg
	metered, err := SimulateProactive(tr, pol, pol, cfg, pro)
	if err != nil {
		t.Fatal(err)
	}
	if plain != metered {
		t.Errorf("metrics changed the result:\nplain   %+v\nmetered %+v", plain, metered)
	}
	if got := reg.Counter("gsched_proactive_checkpoints_total", "").Value(); got != uint64(metered.Checkpoints) {
		t.Errorf("checkpoint counter %d, result %d", got, metered.Checkpoints)
	}
	if got := reg.Histogram("gsched_forecast_latency_seconds", "", obs.ExpBuckets(1e-7, 4, 12)).Count(); got == 0 {
		t.Error("forecast latency histogram saw no reviews")
	}
}

// TestProactiveConfigValidation rejects the malformed corners.
func TestProactiveConfigValidation(t *testing.T) {
	bad := []ProactiveConfig{
		{},
		{CheckEvery: time.Hour},
		{CheckEvery: time.Hour, Horizon: time.Hour, SurvivalFloor: 1.5},
		{CheckEvery: time.Hour, Horizon: time.Hour, CheckpointCost: -1},
		{CheckEvery: time.Hour, Horizon: time.Hour, MigrateMargin: 2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	if err := DefaultProactiveConfig().Validate(); err != nil {
		t.Errorf("default rejected: %v", err)
	}
}
