package gsched

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Jobs: -1, JobWork: [2]time.Duration{time.Hour, time.Hour}},
		{Jobs: 1, JobWork: [2]time.Duration{2 * time.Hour, time.Hour}},
		{Jobs: 1, JobWork: [2]time.Duration{time.Hour, time.Hour}, RetryDelay: -1},
	}
	for i, c := range bad {
		if c.TrainDays == 0 {
			c.TrainDays = 1
		}
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default rejected: %v", err)
	}
}

// cleanTrace has no events: every job must finish exactly on time.
func TestSimulateOnCleanTrace(t *testing.T) {
	tr := trace.New(sim.Window{End: 40 * sim.Day}, sim.Calendar{}, 4)
	cfg := Config{Jobs: 50, JobWork: [2]time.Duration{time.Hour, 2 * time.Hour}, TrainDays: 7, Seed: 3}
	res, err := Simulate(tr, &RoundRobin{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFailures != 0 || res.WastedWork != 0 {
		t.Errorf("clean trace produced failures: %+v", res)
	}
	if res.Completed+res.Unfinished != 50 {
		t.Errorf("jobs unaccounted: %+v", res)
	}
	if res.MeanSlowdown < 0.99 || res.MeanSlowdown > 1.01 {
		t.Errorf("clean-trace slowdown = %v, want 1.0", res.MeanSlowdown)
	}
}

// hostileMachine: machine 0 fails constantly, machine 1 never.
func hostileTrace() *trace.Trace {
	tr := trace.New(sim.Window{End: 30 * sim.Day}, sim.Calendar{}, 2)
	for d := 0; d < 30; d++ {
		for h := 0; h < 24; h += 2 {
			start := sim.Time(d)*sim.Day + sim.Time(h)*time.Hour
			tr.Add(trace.Event{
				Machine: 0,
				Start:   start,
				End:     start + 10*time.Minute,
				State:   availability.S3,
			})
		}
	}
	tr.Sort()
	return tr
}

func TestPredictiveAvoidsHostileMachine(t *testing.T) {
	tr := hostileTrace()
	cfg := Config{Jobs: 60, JobWork: [2]time.Duration{3 * time.Hour, 4 * time.Hour}, TrainDays: 14, Seed: 5}
	hw := &predict.HistoryWindow{}
	hw.Train(tr.Before(tr.Span.Start + 14*sim.Day))
	pred, err := Simulate(tr, &Predictive{P: hw}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Simulate(tr, &RoundRobin{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pred.TotalFailures > 0 {
		t.Errorf("predictive policy failed %d times; machine 1 is always free", pred.TotalFailures)
	}
	if rr.TotalFailures == 0 {
		t.Error("round-robin should hit machine 0's failures")
	}
	if !(pred.MeanResponse < rr.MeanResponse) {
		t.Errorf("predictive %v should beat round-robin %v", pred.MeanResponse, rr.MeanResponse)
	}
}

func TestLeastRecentlyFailedLearns(t *testing.T) {
	p := &LeastRecentlyFailed{}
	// First picks cycle machines; after observing a failure on 0, machine
	// 0 is deprioritized.
	first := p.Pick(0, time.Hour, 3)
	p.ObserveFailure(first, time.Hour)
	for i := 0; i < 10; i++ {
		if got := p.Pick(2*time.Hour, time.Hour, 3); got == first {
			t.Fatalf("picked recently failed machine %d", first)
		}
	}
}

func TestCheckpointingReducesWaste(t *testing.T) {
	tr := hostileTrace()
	// Force every job onto the hostile machine with a fixed policy.
	type pinned struct{ RoundRobin }
	pin := &pinned{}
	pin.next = 0
	cfg := Config{Jobs: 30, JobWork: [2]time.Duration{3 * time.Hour, 3 * time.Hour}, TrainDays: 1, Seed: 8}

	cfgNo := cfg
	noCkpt, err := Simulate(tr, &hostileOnly{}, cfgNo)
	if err != nil {
		t.Fatal(err)
	}
	cfgCk := cfg
	cfgCk.Checkpoint = 30 * time.Minute
	withCkpt, err := Simulate(tr, &hostileOnly{}, cfgCk)
	if err != nil {
		t.Fatal(err)
	}
	if !(withCkpt.WastedWork < noCkpt.WastedWork) {
		t.Errorf("checkpointing should cut waste: %v vs %v", withCkpt.WastedWork, noCkpt.WastedWork)
	}
	if !(withCkpt.Completed >= noCkpt.Completed) {
		t.Errorf("checkpointing should not finish fewer jobs: %d vs %d", withCkpt.Completed, noCkpt.Completed)
	}
}

// hostileOnly always picks machine 0.
type hostileOnly struct{}

func (hostileOnly) Name() string                                      { return "pin-0" }
func (hostileOnly) Pick(sim.Time, time.Duration, int) trace.MachineID { return 0 }
func (hostileOnly) ObserveFailure(trace.MachineID, sim.Time)          {}

var (
	tbOnce sync.Once
	tbTr   *trace.Trace
	tbErr  error
)

func heterogeneousTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tbOnce.Do(func() {
		cfg := testbed.DefaultConfig()
		cfg.Machines = 10
		cfg.Days = 70
		cfg.Workload.MachineRateSpread = 0.8
		tbTr, tbErr = testbed.Run(cfg)
	})
	if tbErr != nil {
		t.Fatal(tbErr)
	}
	return tbTr
}

// TestProactiveBeatsOblivious is the motivation experiment: predictive
// placement should cut failures and response time versus oblivious
// policies on a heterogeneous testbed.
func TestProactiveBeatsOblivious(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed simulation")
	}
	tr := heterogeneousTrace(t)
	cfg := DefaultConfig()
	cfg.Jobs = 300
	results, err := Compare(tr, DefaultPolicies(tr, cfg, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Policy] = r
	}
	pred := byName["predictive(history-window(trimmed))"]
	rand := byName["random"]
	if pred.Policy == "" || rand.Policy == "" {
		t.Fatalf("missing policies in %+v", results)
	}
	if !(pred.TotalFailures < rand.TotalFailures) {
		t.Errorf("predictive failures %d should beat random %d", pred.TotalFailures, rand.TotalFailures)
	}
	if !(pred.MeanSlowdown < rand.MeanSlowdown) {
		t.Errorf("predictive slowdown %v should beat random %v", pred.MeanSlowdown, rand.MeanSlowdown)
	}
	if s := FormatResults(results); !strings.Contains(s, "predictive") {
		t.Error("FormatResults missing policies")
	}
}

func TestMinResponsePolicyAvoidsHostileMachine(t *testing.T) {
	tr := hostileTrace()
	cfg := Config{Jobs: 40, JobWork: [2]time.Duration{3 * time.Hour, 4 * time.Hour}, TrainDays: 14, Seed: 6}
	hw := &predict.HistoryWindow{}
	hw.Train(tr.Before(tr.Span.Start + 14*sim.Day))
	pol := &MinResponse{E: &predict.ResponseEstimator{P: hw, Seed: 5, Samples: 60}}
	res, err := Simulate(tr, pol, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFailures > 0 {
		t.Errorf("min-expected-response failed %d times; machine 1 is always clean", res.TotalFailures)
	}
	rr, err := Simulate(tr, &RoundRobin{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.MeanResponse < rr.MeanResponse) {
		t.Errorf("min-response %v should beat round-robin %v", res.MeanResponse, rr.MeanResponse)
	}
}
