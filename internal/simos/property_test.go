package simos

import (
	"math/rand"
	"testing"
	"time"
)

// TestProportionalShareProperty checks the scheduler's core contract with
// randomized inputs: CPU-bound processes (no credit, always runnable)
// receive CPU in proportion to their nice weights, within lottery noise.
func TestProportionalShareProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(4)
		nices := make([]int, n)
		for i := range nices {
			nices[i] = rng.Intn(20)
		}
		m := MustNewMachine(MachineConfig{Name: "prop", Seed: int64(trial + 1)})
		procs := make([]*Process, n)
		var totalWeight float64
		params := m.Config().Sched
		for i, nice := range nices {
			procs[i] = m.Spawn("p", Host, nice, MB, hog{})
			totalWeight += niceWeight(params.NiceWeightBase, nice)
		}
		dur := 120 * time.Second
		m.Run(dur)
		for i, p := range procs {
			want := niceWeight(params.NiceWeightBase, nices[i]) / totalWeight
			got := float64(p.CPUTime()) / float64(dur)
			if got < want-0.05 || got > want+0.05 {
				t.Fatalf("trial %d: nices %v: proc %d share %.3f, want %.3f +- 0.05",
					trial, nices, i, got, want)
			}
		}
	}
}

// TestWorkConservationProperty checks that accounted CPU plus idle always
// equals wall time for random process mixes (no time created or lost).
func TestWorkConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 25; trial++ {
		m := MustNewMachine(MachineConfig{Name: "cons", Seed: int64(trial + 100)})
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				m.Spawn("hog", Guest, rng.Intn(20), MB, hog{})
			case 1:
				m.Spawn("duty", Host, rng.Intn(20), MB, fixedBehavior{
					compute: time.Duration(1+rng.Intn(900)) * time.Millisecond,
					sleep:   time.Duration(1+rng.Intn(2000)) * time.Millisecond,
				})
			case 2:
				m.Spawn("once", Host, 0, MB, &oneBurst{d: time.Duration(rng.Intn(int(2 * time.Second)))})
			}
		}
		dur := time.Duration(1+rng.Intn(30)) * time.Second
		m.Run(dur)
		total := m.CPUTime(Host) + m.CPUTime(Guest) + m.IdleTime()
		if total != dur {
			t.Fatalf("trial %d: host+guest+idle = %v, want %v", trial, total, dur)
		}
		// CPU time is never negative and never exceeds wall time per proc.
		for _, p := range m.Processes() {
			if p.CPUTime() < 0 || p.CPUTime() > dur {
				t.Fatalf("trial %d: proc %s cpu %v out of range", trial, p.Name(), p.CPUTime())
			}
		}
	}
}

// TestSuspensionFreezesSharesProperty: suspending a process redistributes
// its share; resuming restores competition. Conservation holds throughout.
func TestSuspensionFreezesSharesProperty(t *testing.T) {
	m := MustNewMachine(MachineConfig{Name: "susp", Seed: 7})
	a := m.Spawn("a", Host, 0, MB, hog{})
	b := m.Spawn("b", Guest, 0, MB, hog{})
	m.Run(20 * time.Second)
	b.Suspend()
	beforeA := a.CPUTime()
	m.Run(20 * time.Second)
	gained := a.CPUTime() - beforeA
	if gained < 19*time.Second {
		t.Errorf("suspending the rival should give a the whole CPU; gained %v", gained)
	}
	b.Resume()
	beforeB := b.CPUTime()
	m.Run(20 * time.Second)
	if b.CPUTime()-beforeB < 7*time.Second {
		t.Errorf("resumed process should compete again; gained %v", b.CPUTime()-beforeB)
	}
}
