package simos

import (
	"math/rand"
	"testing"
	"time"
)

// fixedBehavior is a strict compute/sleep cycle for tests.
type fixedBehavior struct {
	compute, sleep time.Duration
}

func (f fixedBehavior) NextPhase(*rand.Rand) (time.Duration, time.Duration, bool) {
	return f.compute, f.sleep, true
}

// hog is always runnable.
type hog struct{}

func (hog) NextPhase(*rand.Rand) (time.Duration, time.Duration, bool) {
	return time.Second, 0, true
}

// oneBurst runs once then exits.
type oneBurst struct {
	d    time.Duration
	done bool
}

func (o *oneBurst) NextPhase(*rand.Rand) (time.Duration, time.Duration, bool) {
	if o.done {
		return 0, 0, false
	}
	o.done = true
	return o.d, 0, true
}

// emptyPhases never supplies work.
type emptyPhases struct{}

func (emptyPhases) NextPhase(*rand.Rand) (time.Duration, time.Duration, bool) {
	return 0, 0, true
}

func testMachine(t *testing.T, seed int64) *Machine {
	t.Helper()
	m, err := NewMachine(MachineConfig{Name: "test", RAM: 1024 * MB, KernelMem: 100 * MB, Seed: seed})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func TestMachineConfigValidation(t *testing.T) {
	if _, err := NewMachine(MachineConfig{RAM: -1}); err == nil {
		t.Error("negative RAM accepted")
	}
	if _, err := NewMachine(MachineConfig{RAM: 100, KernelMem: 200}); err == nil {
		t.Error("kernel larger than RAM accepted")
	}
	if _, err := NewMachine(MachineConfig{Sched: SchedParams{Tick: time.Millisecond, CreditCap: time.Second, InteractiveBoost: 0.5, ThrashFactor: 0.1}}); err == nil {
		t.Error("boost < 1 accepted")
	}
	if _, err := NewMachine(MachineConfig{Sched: SchedParams{Tick: time.Millisecond, InteractiveBoost: 2, ThrashFactor: 2}}); err == nil {
		t.Error("thrash factor > 1 accepted")
	}
	m, err := NewMachine(MachineConfig{})
	if err != nil {
		t.Fatalf("zero config should take defaults: %v", err)
	}
	if m.Config().Sched.Tick != time.Millisecond {
		t.Errorf("default tick = %v", m.Config().Sched.Tick)
	}
}

func TestSingleHogGetsFullCPU(t *testing.T) {
	m := testMachine(t, 1)
	p := m.Spawn("hog", Guest, 0, 10*MB, hog{})
	m.Run(10 * time.Second)
	if u := p.Usage(); u < 0.999 {
		t.Errorf("lone hog usage = %v, want ~1.0", u)
	}
	if m.IdleTime() != 0 {
		t.Errorf("idle time = %v, want 0", m.IdleTime())
	}
	if got := m.CPUTime(Guest); got != 10*time.Second {
		t.Errorf("guest CPU time = %v, want 10s", got)
	}
}

func TestIdleMachineAccumulatesIdleTime(t *testing.T) {
	m := testMachine(t, 2)
	m.Run(5 * time.Second)
	if m.IdleTime() != 5*time.Second {
		t.Errorf("idle = %v, want 5s", m.IdleTime())
	}
	if m.Now() != 5*time.Second {
		t.Errorf("now = %v, want 5s", m.Now())
	}
}

func TestDutyCycleAccuracyWhenAlone(t *testing.T) {
	m := testMachine(t, 3)
	p := m.Spawn("d40", Host, 0, 10*MB, fixedBehavior{compute: time.Second, sleep: 1500 * time.Millisecond})
	m.Run(100 * time.Second)
	u := p.Usage()
	if u < 0.38 || u > 0.42 {
		t.Errorf("isolated duty-cycle usage = %v, want ~0.40", u)
	}
}

func TestEqualHogsShareEvenly(t *testing.T) {
	m := testMachine(t, 4)
	a := m.Spawn("a", Host, 0, 10*MB, hog{})
	b := m.Spawn("b", Guest, 0, 10*MB, hog{})
	m.Run(60 * time.Second)
	ua, ub := a.Usage(), b.Usage()
	if ua < 0.45 || ua > 0.55 || ub < 0.45 || ub > 0.55 {
		t.Errorf("equal hogs: %v / %v, want ~0.5 each", ua, ub)
	}
}

func TestNice19HogGetsSmallShare(t *testing.T) {
	m := testMachine(t, 5)
	host := m.Spawn("host", Host, 0, 10*MB, hog{})
	guest := m.Spawn("guest", Guest, 19, 10*MB, hog{})
	m.Run(60 * time.Second)
	// Weights 22 vs 3: expect ~12% for the guest.
	ug := guest.Usage()
	if ug < 0.09 || ug > 0.15 {
		t.Errorf("nice-19 guest share = %v, want ~0.12", ug)
	}
	if uh := host.Usage(); uh < 0.82 {
		t.Errorf("host share = %v, want ~0.88", uh)
	}
}

func TestWorkConservation(t *testing.T) {
	m := testMachine(t, 6)
	m.Spawn("a", Host, 0, 10*MB, fixedBehavior{compute: 500 * time.Millisecond, sleep: 2 * time.Second})
	m.Spawn("b", Guest, 5, 10*MB, hog{})
	m.Spawn("c", Host, 10, 10*MB, fixedBehavior{compute: time.Second, sleep: time.Second})
	dur := 30 * time.Second
	m.Run(dur)
	total := m.CPUTime(Host) + m.CPUTime(Guest) + m.IdleTime()
	if total != dur {
		t.Errorf("CPU accounting not conserved: %v, want %v", total, dur)
	}
}

func TestInteractiveHostPreemptsGuest(t *testing.T) {
	// A light-duty host competing with a CPU-bound guest should keep
	// nearly its isolated usage: its credit-boosted weight dominates.
	m := testMachine(t, 7)
	host := m.Spawn("editor", Host, 0, 10*MB,
		fixedBehavior{compute: 250 * time.Millisecond, sleep: 2250 * time.Millisecond})
	m.Spawn("guest", Guest, 0, 10*MB, hog{})
	m.Run(120 * time.Second)
	u := host.Usage()
	// Isolated usage would be 0.10; accept a small contention loss.
	if u < 0.09 {
		t.Errorf("interactive host usage = %v, want >= 0.09 (isolated 0.10)", u)
	}
}

func TestCPUBoundHostLosesHalfToEqualGuest(t *testing.T) {
	// A host that never sleeps has no credit, so an equal-priority guest
	// takes half the machine: the far end of Figure 1(a).
	m := testMachine(t, 8)
	host := m.Spawn("cruncher", Host, 0, 10*MB, hog{})
	m.Spawn("guest", Guest, 0, 10*MB, hog{})
	m.Run(60 * time.Second)
	u := host.Usage()
	if u < 0.45 || u > 0.55 {
		t.Errorf("CPU-bound host under equal-priority guest = %v, want ~0.5", u)
	}
}

func TestSuspendResume(t *testing.T) {
	m := testMachine(t, 9)
	p := m.Spawn("g", Guest, 0, 10*MB, hog{})
	m.Run(time.Second)
	p.Suspend()
	before := p.CPUTime()
	m.Run(5 * time.Second)
	if p.CPUTime() != before {
		t.Error("suspended process accrued CPU time")
	}
	if m.IdleTime() != 5*time.Second {
		t.Errorf("idle while suspended = %v, want 5s", m.IdleTime())
	}
	p.Resume()
	if p.State() != Runnable {
		t.Errorf("resumed mid-burst process state = %v, want runnable", p.State())
	}
	m.Run(time.Second)
	if p.CPUTime() <= before {
		t.Error("resumed process did not run")
	}
}

func TestSuspendWhileSleepingResumesSleeping(t *testing.T) {
	m := testMachine(t, 10)
	p := m.Spawn("s", Host, 0, 10*MB, fixedBehavior{compute: time.Millisecond, sleep: time.Hour})
	m.Run(10 * time.Millisecond) // now sleeping
	if p.State() != Sleeping {
		t.Fatalf("setup: state = %v, want sleeping", p.State())
	}
	p.Suspend()
	p.Resume()
	if p.State() != Sleeping {
		t.Errorf("resume should restore sleeping, got %v", p.State())
	}
}

func TestKillReleasesMemoryAndStopsScheduling(t *testing.T) {
	m := testMachine(t, 11)
	p := m.Spawn("g", Guest, 0, 500*MB, hog{})
	if m.ResidentMem(Guest) != 500*MB {
		t.Fatalf("resident = %d", m.ResidentMem(Guest))
	}
	m.Run(time.Second)
	p.Kill()
	if p.Alive() {
		t.Error("killed process still alive")
	}
	if m.ResidentMem(Guest) != 0 {
		t.Error("killed process still holds memory")
	}
	ct := p.CPUTime()
	m.Run(time.Second)
	if p.CPUTime() != ct {
		t.Error("killed process accrued CPU time")
	}
	// Idempotent controls.
	p.Kill()
	p.Suspend()
	p.Resume()
	if p.State() != Dead {
		t.Error("dead process state changed by control calls")
	}
}

func TestProcessTermination(t *testing.T) {
	m := testMachine(t, 12)
	p := m.Spawn("once", Host, 0, 10*MB, &oneBurst{d: 100 * time.Millisecond})
	m.Run(time.Second)
	if p.Alive() {
		t.Error("one-shot process should have exited")
	}
	if got := p.CPUTime(); got != 100*time.Millisecond {
		t.Errorf("one-shot CPU time = %v, want 100ms", got)
	}
	if len(m.LiveProcesses()) != 0 {
		t.Error("LiveProcesses should be empty")
	}
}

func TestBrokenBehaviorTerminates(t *testing.T) {
	m := testMachine(t, 13)
	p := m.Spawn("broken", Host, 0, 10*MB, emptyPhases{})
	if p.Alive() {
		t.Error("empty-phase behavior should terminate at spawn")
	}
	m.Run(time.Second) // must not hang or panic
}

func TestThrashingSlowsProgressAndAccounting(t *testing.T) {
	cfg := MachineConfig{Name: "small", RAM: 384 * MB, KernelMem: 100 * MB, Seed: 14}
	m := MustNewMachine(cfg)
	host := m.Spawn("big-host", Host, 0, 200*MB, hog{})
	guest := m.Spawn("big-guest", Guest, 0, 200*MB, hog{})
	if !m.Thrashing() {
		t.Fatal("400 MB of working sets in 284 MB free should thrash")
	}
	m.Run(10 * time.Second)
	// With ThrashFactor 0.1, total accounted CPU should be ~1s not 10s.
	total := host.CPUTime() + guest.CPUTime()
	if total > 1100*time.Millisecond || total < 900*time.Millisecond {
		t.Errorf("thrashing accounted CPU = %v, want ~1s", total)
	}
	if m.ThrashTime() != 10*time.Second {
		t.Errorf("thrash time = %v, want 10s", m.ThrashTime())
	}
	// Killing the guest ends thrashing.
	guest.Kill()
	if m.Thrashing() {
		t.Error("thrashing should end when the guest dies")
	}
}

func TestFreeMemForGuest(t *testing.T) {
	m := testMachine(t, 15) // 1024 MB RAM, 100 MB kernel
	m.Spawn("h", Host, 0, 300*MB, hog{})
	m.Spawn("g", Guest, 0, 200*MB, hog{})
	// Free for guest counts only host + kernel usage.
	if got := m.FreeMemForGuest(); got != 624*MB {
		t.Errorf("FreeMemForGuest = %d MB, want 624", got/MB)
	}
}

func TestUsageBetweenSnapshots(t *testing.T) {
	m := testMachine(t, 16)
	m.Spawn("h", Host, 0, 10*MB, fixedBehavior{compute: time.Second, sleep: time.Second})
	a := m.Snapshot()
	m.Run(20 * time.Second)
	b := m.Snapshot()
	u, err := UsageBetween(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if u.Host < 0.45 || u.Host > 0.55 {
		t.Errorf("host usage = %v, want ~0.5", u.Host)
	}
	if u.Idle < 0.45 || u.Idle > 0.55 {
		t.Errorf("idle = %v, want ~0.5", u.Idle)
	}
	if _, err := UsageBetween(b, a); err == nil {
		t.Error("inverted snapshot window accepted")
	}
	if _, err := UsageBetween(b, b); err == nil {
		t.Error("empty snapshot window accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() time.Duration {
		m := testMachine(t, 42)
		m.Spawn("h", Host, 0, 10*MB, fixedBehavior{compute: 300 * time.Millisecond, sleep: 700 * time.Millisecond})
		g := m.Spawn("g", Guest, 19, 10*MB, hog{})
		m.Run(30 * time.Second)
		return g.CPUTime()
	}
	if run() != run() {
		t.Error("same seed must produce identical simulations")
	}
}

func TestClassAndStateStrings(t *testing.T) {
	for _, c := range []Class{Host, Guest, Class(7)} {
		if c.String() == "" {
			t.Error("empty class string")
		}
	}
	for _, s := range []ProcState{Runnable, Sleeping, Suspended, Dead, ProcState(9)} {
		if s.String() == "" {
			t.Error("empty state string")
		}
	}
}

func TestNiceWeightClamping(t *testing.T) {
	if niceWeight(22, -5) != 22 || niceWeight(22, 0) != 22 {
		t.Error("nice <= 0 should weigh 22")
	}
	if niceWeight(22, 19) != 3 || niceWeight(22, 25) != 3 {
		t.Error("nice >= 19 should weigh 3")
	}
	if niceWeight(22, 10) != 12 {
		t.Error("nice 10 should weigh 12")
	}
	if niceWeight(24, 19) != 5 {
		t.Error("raised base should lift the floor")
	}
}
