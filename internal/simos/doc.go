// Package simos simulates a single-CPU time-sharing operating system at
// scheduler granularity. It stands in for the paper's physical testbed
// machines (a 1.7 GHz RedHat Linux box and a 300 MHz Solaris box) in the
// resource-contention experiments of Section 3.2.
//
// The simulator reproduces the three scheduling mechanics the paper's
// empirical thresholds emerge from:
//
//  1. Priority-proportional time sharing. Runnable processes receive CPU in
//     proportion to an arithmetic nice weight (21 - nice), the shape of the
//     classic Unix/Linux-2.4 counter scheduler: a nice-19 process competing
//     with a nice-0 CPU hog receives a small but non-zero share (~9%),
//     which is exactly why the paper finds a second threshold Th2 — even a
//     fully reniced guest slows heavy host loads beyond it.
//
//  2. Interactivity credit. A process banks credit while sleeping (capped)
//     and spends it while running; processes holding credit get a large
//     weight boost, modeling the dynamic-priority bonus that lets
//     interactive host processes preempt a CPU-bound guest. Host workloads
//     whose bursts fit inside the credit cap are nearly immune to the
//     guest, which is why slowdown only becomes noticeable above Th1.
//
//  3. Memory thrashing. When the working sets of resident processes exceed
//     physical memory, every running process makes progress at a small
//     fraction of the tick (the rest is page-fault stall, accounted as I/O
//     wait rather than CPU time). Changing CPU priorities does nothing
//     about it — the paper's Figure 4 observation that memory contention is
//     orthogonal to CPU contention.
//
// Scheduling decisions use lottery draws from a deterministic per-machine
// stream, so expected shares are exactly weight-proportional and every
// experiment is reproducible from its seed.
package simos
