package simos

import (
	"fmt"
	"time"
)

// MB is a convenience for memory sizes.
const MB = int64(1) << 20

// SchedParams tune the simulated scheduler. The defaults are calibrated so
// that the contention experiments land at the paper's Linux thresholds
// (Th1 ≈ 20%, Th2 ≈ 60%); see internal/contention's calibration tests.
type SchedParams struct {
	// Tick is the scheduling quantum; one lottery draw per tick.
	Tick time.Duration
	// CreditCap bounds the interactivity credit a process can bank while
	// sleeping (the Linux-2.4 counter accumulates roughly 2x the default
	// timeslice; 500 ms is the same order of magnitude).
	CreditCap time.Duration
	// InteractiveBoost multiplies the weight of a process holding credit.
	InteractiveBoost float64
	// ThrashFactor is the fraction of a tick that turns into useful work
	// (and accounted CPU time) while the machine is thrashing.
	ThrashFactor float64
	// NiceWeightBase sets the arithmetic nice scale: a process at nice n
	// weighs NiceWeightBase - n (clamped at n = 19). The default 22 gives
	// a nice-19 hog ~12% against a nice-0 hog, which calibrates Th2 to
	// the paper's 60%; lowering the base starves reniced guests harder
	// and pushes Th2 up (see the ablation benchmarks).
	NiceWeightBase float64
}

// DefaultSchedParams returns the calibrated defaults.
func DefaultSchedParams() SchedParams {
	return SchedParams{
		Tick:             time.Millisecond,
		CreditCap:        500 * time.Millisecond,
		InteractiveBoost: 8,
		ThrashFactor:     0.1,
		NiceWeightBase:   22,
	}
}

// SolarisSchedParams approximates the paper's 300 MHz Solaris box: a
// weaker interactivity mechanism (smaller sleep credit, smaller boost)
// makes host slowdown appear earlier, which is consistent with the paper
// measuring a much lower Th2 band (22-57%) on that system.
func SolarisSchedParams() SchedParams {
	p := DefaultSchedParams()
	p.CreditCap = 250 * time.Millisecond
	p.InteractiveBoost = 5
	return p
}

func (p SchedParams) withDefaults() SchedParams {
	d := DefaultSchedParams()
	if p.Tick == 0 {
		p.Tick = d.Tick
	}
	if p.CreditCap == 0 {
		p.CreditCap = d.CreditCap
	}
	if p.InteractiveBoost == 0 {
		p.InteractiveBoost = d.InteractiveBoost
	}
	if p.ThrashFactor == 0 {
		p.ThrashFactor = d.ThrashFactor
	}
	if p.NiceWeightBase == 0 {
		p.NiceWeightBase = d.NiceWeightBase
	}
	return p
}

// Validate reports parameter errors.
func (p SchedParams) Validate() error {
	if p.Tick <= 0 {
		return fmt.Errorf("simos: tick must be positive, got %v", p.Tick)
	}
	if p.CreditCap < 0 {
		return fmt.Errorf("simos: negative credit cap %v", p.CreditCap)
	}
	if p.InteractiveBoost < 1 {
		return fmt.Errorf("simos: interactive boost must be >= 1, got %v", p.InteractiveBoost)
	}
	if p.ThrashFactor <= 0 || p.ThrashFactor > 1 {
		return fmt.Errorf("simos: thrash factor must be in (0,1], got %v", p.ThrashFactor)
	}
	if p.NiceWeightBase <= 19 {
		return fmt.Errorf("simos: nice weight base must exceed 19, got %v", p.NiceWeightBase)
	}
	return nil
}

// MachineConfig describes a simulated machine.
type MachineConfig struct {
	// Name labels the machine in diagnostics.
	Name string
	// RAM is physical memory in bytes.
	RAM int64
	// KernelMem is memory permanently held by the OS (the paper observes
	// about 100 MB of kernel usage on the Solaris box).
	KernelMem int64
	// CPUs is the number of processors (default 1, like the paper's
	// testbed machines). With several CPUs, usage figures are measured in
	// CPUs' worth of time, so a machine-wide usage of 1.0 means one fully
	// busy processor.
	CPUs int
	// Sched are the scheduler parameters; zero fields take defaults.
	Sched SchedParams
	// Seed selects the machine's deterministic lottery stream.
	Seed int64
}

// LinuxLabMachine mimics the paper's testbed machines: 1.7 GHz RedHat
// Linux with more than 1 GB of physical memory (Section 5.1).
func LinuxLabMachine(seed int64) MachineConfig {
	return MachineConfig{
		Name:      "linux-lab",
		RAM:       1536 * MB,
		KernelMem: 100 * MB,
		Seed:      seed,
	}
}

// SolarisMachine mimics the paper's 300 MHz Solaris box with 384 MB of
// physical memory and ~100 MB kernel usage (Section 3.2.3).
func SolarisMachine(seed int64) MachineConfig {
	return MachineConfig{
		Name:      "solaris",
		RAM:       384 * MB,
		KernelMem: 100 * MB,
		Seed:      seed,
	}
}

// WithDefaults returns the configuration with zero fields replaced by
// their defaults, matching what NewMachine applies.
func (c MachineConfig) WithDefaults() MachineConfig {
	if c.RAM == 0 {
		c.RAM = 1536 * MB
	}
	if c.CPUs == 0 {
		c.CPUs = 1
	}
	c.Sched = c.Sched.withDefaults()
	return c
}

// Validate reports configuration errors.
func (c MachineConfig) Validate() error {
	if c.RAM <= 0 {
		return fmt.Errorf("simos: RAM must be positive, got %d", c.RAM)
	}
	if c.KernelMem < 0 || c.KernelMem >= c.RAM {
		return fmt.Errorf("simos: kernel memory %d outside [0, RAM)", c.KernelMem)
	}
	if c.CPUs < 1 {
		return fmt.Errorf("simos: need at least one CPU, got %d", c.CPUs)
	}
	return c.Sched.Validate()
}

// niceWeight maps a nice level to its scheduling weight using the
// arithmetic scale of the classic Unix counter scheduler: with the default
// base of 22, nice 0 -> 22 and nice 19 -> 3. Out-of-range nice values are
// clamped. The default scale is calibrated so the minimum share of a fully
// reniced CPU hog against a nice-0 hog is ~12%, which puts the Th2
// crossing of Figure 1(b) near the paper's 60%.
func niceWeight(base float64, nice int) float64 {
	if nice < 0 {
		nice = 0
	}
	if nice > 19 {
		nice = 19
	}
	return base - float64(nice)
}
