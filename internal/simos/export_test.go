package simos

// DisableFastPath forces per-tick stepping, turning the machine into the
// naive oracle the equivalence tests compare against.
func (m *Machine) DisableFastPath() { m.noFastPath = true }

// CheckAggregates recomputes the incremental aggregates from scratch and
// reports the first inconsistency, if any.
func (m *Machine) CheckAggregates() string {
	var stateCount [4]int
	var resident [2]int64
	for _, p := range m.procs {
		stateCount[p.state]++
		if p.state != Dead {
			resident[p.class] += p.rss
		}
	}
	if stateCount != m.stateCount {
		return "stateCount mismatch"
	}
	if resident != m.resident {
		return "resident mismatch"
	}
	return ""
}
