package simos_test

import (
	"testing"
	"time"

	"repro/internal/simos"
	"repro/internal/workload"
)

// buildPair spawns identical workloads on two identically seeded machines;
// the second has the batching fast path disabled so it steps tick by tick
// (the naive oracle).
func buildPair(t *testing.T, cfg simos.MachineConfig) (fast, naive *simos.Machine) {
	t.Helper()
	fast = simos.MustNewMachine(cfg)
	naive = simos.MustNewMachine(cfg)
	naive.DisableFastPath()
	return fast, naive
}

// mirror runs the same mutation against both machines.
func mirror(ms [2]*simos.Machine, f func(m *simos.Machine) *simos.Process) [2]*simos.Process {
	return [2]*simos.Process{f(ms[0]), f(ms[1])}
}

func compareMachines(t *testing.T, fast, naive *simos.Machine, tag string) {
	t.Helper()
	if fast.Now() != naive.Now() {
		t.Fatalf("%s: now fast=%v naive=%v", tag, fast.Now(), naive.Now())
	}
	for _, cls := range []simos.Class{simos.Host, simos.Guest} {
		if fast.CPUTime(cls) != naive.CPUTime(cls) {
			t.Errorf("%s: cpuTime[%v] fast=%v naive=%v", tag, cls, fast.CPUTime(cls), naive.CPUTime(cls))
		}
		if fast.ResidentMem(cls) != naive.ResidentMem(cls) {
			t.Errorf("%s: resident[%v] fast=%d naive=%d", tag, cls, fast.ResidentMem(cls), naive.ResidentMem(cls))
		}
	}
	if fast.IdleTime() != naive.IdleTime() {
		t.Errorf("%s: idle fast=%v naive=%v", tag, fast.IdleTime(), naive.IdleTime())
	}
	if fast.ThrashTime() != naive.ThrashTime() {
		t.Errorf("%s: thrash fast=%v naive=%v", tag, fast.ThrashTime(), naive.ThrashTime())
	}
	fp, np := fast.Processes(), naive.Processes()
	if len(fp) != len(np) {
		t.Fatalf("%s: proc count fast=%d naive=%d", tag, len(fp), len(np))
	}
	for i := range fp {
		if fp[i].State() != np[i].State() {
			t.Errorf("%s: proc %s state fast=%v naive=%v", tag, fp[i].Name(), fp[i].State(), np[i].State())
		}
		if fp[i].CPUTime() != np[i].CPUTime() {
			t.Errorf("%s: proc %s cpuTime fast=%v naive=%v", tag, fp[i].Name(), fp[i].CPUTime(), np[i].CPUTime())
		}
	}
	if msg := fast.CheckAggregates(); msg != "" {
		t.Errorf("%s: fast aggregates: %s", tag, msg)
	}
	if msg := naive.CheckAggregates(); msg != "" {
		t.Errorf("%s: naive aggregates: %s", tag, msg)
	}
}

// TestFastPathEquivalence drives the batched fast path and the naive
// per-tick oracle through a mixed scenario — duty cycles with jitter, a
// CPU-bound guest, spawn/kill/suspend/resume mid-run, and a thrashing
// episode — asserting bit-identical accounting throughout. Because both
// machines share one RNG stream per config, any divergence in the number
// or order of random draws shows up as a hard mismatch.
func TestFastPathEquivalence(t *testing.T) {
	fast, naive := buildPair(t, simos.LinuxLabMachine(7))
	ms := [2]*simos.Machine{fast, naive}

	mirror(ms, func(m *simos.Machine) *simos.Process {
		return m.Spawn("h1", simos.Host, 0, 200*simos.MB, &workload.DutyCycle{Usage: 0.4, Period: 2 * time.Second, Jitter: 0.2})
	})
	mirror(ms, func(m *simos.Machine) *simos.Process {
		return m.Spawn("h2", simos.Host, 0, 300*simos.MB, &workload.DutyCycle{Usage: 0.7, Period: 3 * time.Second})
	})
	g := mirror(ms, func(m *simos.Machine) *simos.Process {
		return m.Spawn("g", simos.Guest, 19, 150*simos.MB, workload.CPUBound{})
	})
	for _, m := range ms {
		m.Run(30 * time.Second)
	}
	compareMachines(t, fast, naive, "after mixed load")

	// Spawning a 1.2 GB host pushes the machine into thrashing.
	h3 := mirror(ms, func(m *simos.Machine) *simos.Process {
		return m.Spawn("h3", simos.Host, 0, 1200*simos.MB, &workload.DutyCycle{Usage: 0.9, Period: time.Second})
	})
	for _, m := range ms {
		m.Run(20 * time.Second)
	}
	compareMachines(t, fast, naive, "while thrashing")

	for i, m := range ms {
		h3[i].Kill()
		g[i].Suspend()
		m.Run(10 * time.Second)
	}
	compareMachines(t, fast, naive, "guest suspended")

	for i, m := range ms {
		g[i].Resume()
		m.Run(25 * time.Second)
	}
	compareMachines(t, fast, naive, "after resume")
}

// TestFastPathEquivalenceSingleRunnable exercises the cases the fast path
// batches hardest: one CPU-bound process alone (case C), only sleepers
// (case B), and an empty machine (case A).
func TestFastPathEquivalenceSingleRunnable(t *testing.T) {
	fast, naive := buildPair(t, simos.LinuxLabMachine(11))
	ms := [2]*simos.Machine{fast, naive}

	for _, m := range ms {
		m.Run(5 * time.Second) // empty machine
	}
	compareMachines(t, fast, naive, "empty")

	mirror(ms, func(m *simos.Machine) *simos.Process {
		return m.Spawn("solo", simos.Guest, 0, 100*simos.MB, workload.CPUBound{})
	})
	for _, m := range ms {
		m.Run(20 * time.Second)
	}
	compareMachines(t, fast, naive, "single cpu-bound")

	// A sparse duty cycle spends most time sleeping (case B between bursts).
	mirror(ms, func(m *simos.Machine) *simos.Process {
		return m.Spawn("sparse", simos.Host, 0, 50*simos.MB, &workload.DutyCycle{Usage: 0.05, Period: 10 * time.Second})
	})
	for _, m := range ms {
		m.Run(60 * time.Second)
	}
	compareMachines(t, fast, naive, "sparse duty cycle")
}

// TestFastPathEquivalenceSMP checks the fast path on a multi-CPU machine
// and under Solaris scheduler parameters.
func TestFastPathEquivalenceSMP(t *testing.T) {
	cfg := simos.LinuxLabMachine(3)
	cfg.CPUs = 2
	fast, naive := buildPair(t, cfg)
	ms := [2]*simos.Machine{fast, naive}
	mirror(ms, func(m *simos.Machine) *simos.Process {
		return m.Spawn("a", simos.Host, 0, 100*simos.MB, &workload.DutyCycle{Usage: 0.6, Period: 2 * time.Second, Jitter: 0.1})
	})
	mirror(ms, func(m *simos.Machine) *simos.Process {
		return m.Spawn("b", simos.Guest, 19, 150*simos.MB, workload.CPUBound{})
	})
	for _, m := range ms {
		m.Run(45 * time.Second)
	}
	compareMachines(t, fast, naive, "smp")

	scfg := simos.SolarisMachine(9)
	sfast, snaive := buildPair(t, scfg)
	sms := [2]*simos.Machine{sfast, snaive}
	mirror(sms, func(m *simos.Machine) *simos.Process {
		return m.Spawn("x", simos.Host, 0, 80*simos.MB, &workload.DutyCycle{Usage: 0.3, Period: time.Second, Jitter: 0.4})
	})
	mirror(sms, func(m *simos.Machine) *simos.Process {
		return m.Spawn("y", simos.Guest, 0, 60*simos.MB, workload.CPUBound{})
	})
	for _, m := range sms {
		m.Run(45 * time.Second)
	}
	compareMachines(t, sfast, snaive, "solaris")
}

// TestRunZeroAlloc asserts the steady-state simulation loop does not
// allocate: aggregates are incremental and the lottery reuses its scratch
// weight buffer.
func TestRunZeroAlloc(t *testing.T) {
	m := simos.MustNewMachine(simos.LinuxLabMachine(5))
	m.Spawn("h", simos.Host, 0, 200*simos.MB, &workload.DutyCycle{Usage: 0.5, Period: 2 * time.Second})
	m.Spawn("g", simos.Guest, 19, 150*simos.MB, workload.CPUBound{})
	m.Run(2 * time.Second) // warm up scratch buffers
	allocs := testing.AllocsPerRun(5, func() {
		m.Run(2 * time.Second)
	})
	if allocs != 0 {
		t.Fatalf("Run allocated %v times per call; want 0", allocs)
	}
}
