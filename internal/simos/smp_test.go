package simos

import (
	"testing"
	"time"
)

func TestMultiCPUParallelism(t *testing.T) {
	m := MustNewMachine(MachineConfig{Name: "smp", CPUs: 2, Seed: 31})
	a := m.Spawn("a", Host, 0, MB, hog{})
	b := m.Spawn("b", Guest, 0, MB, hog{})
	m.Run(10 * time.Second)
	// Two hogs on two CPUs: both run at full speed.
	if a.CPUTime() != 10*time.Second || b.CPUTime() != 10*time.Second {
		t.Errorf("two hogs on 2 CPUs: %v / %v, want 10s each", a.CPUTime(), b.CPUTime())
	}
	if m.IdleTime() != 0 {
		t.Errorf("idle = %v, want 0", m.IdleTime())
	}
}

func TestMultiCPUIdleAccounting(t *testing.T) {
	m := MustNewMachine(MachineConfig{Name: "smp", CPUs: 4, Seed: 32})
	m.Spawn("only", Host, 0, MB, hog{})
	dur := 5 * time.Second
	m.Run(dur)
	// One hog keeps one CPU busy; three idle.
	if got := m.CPUTime(Host); got != dur {
		t.Errorf("host CPU = %v, want %v", got, dur)
	}
	if got := m.IdleTime(); got != 3*dur {
		t.Errorf("idle = %v, want %v", got, 3*dur)
	}
	// Conservation across CPUs.
	total := m.CPUTime(Host) + m.CPUTime(Guest) + m.IdleTime()
	if total != 4*dur {
		t.Errorf("total accounted = %v, want %v", total, 4*dur)
	}
}

func TestMultiCPUNoDoubleScheduling(t *testing.T) {
	// A single process on a 4-CPU machine can never accrue more CPU time
	// than wall time.
	m := MustNewMachine(MachineConfig{Name: "smp", CPUs: 4, Seed: 33})
	p := m.Spawn("one", Guest, 0, MB, hog{})
	m.Run(3 * time.Second)
	if p.CPUTime() > 3*time.Second {
		t.Errorf("process on 4 CPUs accrued %v in 3s wall", p.CPUTime())
	}
}

func TestMultiCPUContention(t *testing.T) {
	// Three hogs on two CPUs share 2 CPUs' worth by weight (all equal):
	// each gets ~2/3 of wall time.
	m := MustNewMachine(MachineConfig{Name: "smp", CPUs: 2, Seed: 34})
	procs := []*Process{
		m.Spawn("a", Host, 0, MB, hog{}),
		m.Spawn("b", Host, 0, MB, hog{}),
		m.Spawn("c", Guest, 0, MB, hog{}),
	}
	m.Run(60 * time.Second)
	for _, p := range procs {
		share := float64(p.CPUTime()) / float64(60*time.Second)
		if share < 0.61 || share > 0.72 {
			t.Errorf("%s share = %v, want ~0.667", p.Name(), share)
		}
	}
}

func TestCPUsValidation(t *testing.T) {
	if _, err := NewMachine(MachineConfig{CPUs: -2}); err == nil {
		t.Error("negative CPU count accepted")
	}
	m := MustNewMachine(MachineConfig{})
	if m.Config().CPUs != 1 {
		t.Errorf("default CPUs = %d, want 1", m.Config().CPUs)
	}
}
