package simos

import (
	"testing"
	"time"
)

// BenchmarkTickSingleProcess measures raw scheduler-tick throughput with
// one runnable process (ns/op is the cost of one simulated millisecond).
func BenchmarkTickSingleProcess(b *testing.B) {
	m := MustNewMachine(MachineConfig{Name: "bench", Seed: 1})
	m.Spawn("hog", Guest, 0, 10*MB, hog{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(time.Millisecond)
	}
}

// BenchmarkTickSixProcesses is the contention-experiment hot path: a host
// group of five plus a guest.
func BenchmarkTickSixProcesses(b *testing.B) {
	m := MustNewMachine(MachineConfig{Name: "bench", Seed: 2})
	for i := 0; i < 5; i++ {
		m.Spawn("host", Host, 0, 10*MB, fixedBehavior{compute: 300 * time.Millisecond, sleep: 700 * time.Millisecond})
	}
	m.Spawn("guest", Guest, 19, 10*MB, hog{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(time.Millisecond)
	}
}

// BenchmarkTickThrashing measures the thrashing path.
func BenchmarkTickThrashing(b *testing.B) {
	m := MustNewMachine(MachineConfig{Name: "bench", RAM: 384 * MB, KernelMem: 100 * MB, Seed: 3})
	m.Spawn("big-a", Host, 0, 200*MB, hog{})
	m.Spawn("big-b", Guest, 0, 200*MB, hog{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(time.Millisecond)
	}
}

// BenchmarkSimulatedMinute reports how fast a whole virtual minute runs.
func BenchmarkSimulatedMinute(b *testing.B) {
	m := MustNewMachine(MachineConfig{Name: "bench", Seed: 4})
	m.Spawn("h", Host, 0, 10*MB, fixedBehavior{compute: 500 * time.Millisecond, sleep: 2 * time.Second})
	m.Spawn("g", Guest, 0, 10*MB, hog{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(time.Minute)
	}
}
