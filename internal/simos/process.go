package simos

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Class distinguishes the origin of a process, mirroring the paper's
// terminology: everything not launched through the FGCS system is a host
// process (including system daemons such as updatedb).
type Class int

const (
	// Host processes belong to local users or the system itself.
	Host Class = iota
	// Guest processes were submitted through the FGCS system.
	Guest
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Host:
		return "host"
	case Guest:
		return "guest"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ProcState is a process's lifecycle state.
type ProcState int

const (
	// Runnable means the process has CPU work pending.
	Runnable ProcState = iota
	// Sleeping means the process is waiting (timer, I/O, user think time).
	Sleeping
	// Suspended means the process was stopped (SIGSTOP) by the guest
	// controller; it holds memory but never runs.
	Suspended
	// Dead means the process exited or was killed.
	Dead
)

// String names the state.
func (s ProcState) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Sleeping:
		return "sleeping"
	case Suspended:
		return "suspended"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("ProcState(%d)", int(s))
	}
}

// Behavior supplies a process's compute/sleep phases. Implementations live
// in internal/workload; the simulator only pulls the next phase when the
// previous one completes.
type Behavior interface {
	// NextPhase returns the CPU work and subsequent sleep of the next
	// cycle. Returning ok=false terminates the process.
	NextPhase(r *rand.Rand) (compute, sleep time.Duration, ok bool)
}

// CPUHog is a Behavior that computes forever without ever sleeping — the
// canonical full-load process. Pinning one hog per CPU saturates a
// multi-CPU machine completely, which is the condition under which a
// multicore host becomes CPU-unavailable to a guest (see the multicore
// scenario in internal/markov).
type CPUHog struct{}

// NextPhase implements Behavior: one second of compute, no sleep, forever.
func (CPUHog) NextPhase(*rand.Rand) (compute, sleep time.Duration, ok bool) {
	return time.Second, 0, true
}

// Process is one simulated process on a Machine. Control methods (Renice,
// Suspend, Resume, Kill) implement availability.Guest so the controller can
// manage a guest process directly.
type Process struct {
	m        *Machine
	name     string
	class    Class
	nice     int
	rss      int64
	behavior Behavior

	state     ProcState
	burstLeft time.Duration // CPU work remaining in the current burst
	sleepLeft time.Duration
	credit    time.Duration

	// resumeState remembers whether the process was mid-burst or mid-sleep
	// when suspended.
	resumeRunnable bool

	cpuTime time.Duration // accounted CPU time (getrusage equivalent)
	started sim.Time
	ended   sim.Time
	// lastRun marks the tick this process last ran, so a multi-CPU
	// machine never schedules one process on two CPUs at once. Spawn
	// initializes it to a sentinel in the past.
	lastRun sim.Time
}

// setState is the single mutation point for a process's lifecycle state.
// It keeps the machine's incremental aggregates — per-state counts, the
// per-class resident-set totals, and the cached runnable set — consistent,
// which is what makes Thrashing/ResidentMem/LiveCount O(1).
func (p *Process) setState(next ProcState) {
	if p.state == next {
		return
	}
	m := p.m
	m.stateCount[p.state]--
	m.stateCount[next]++
	if p.state == Runnable || next == Runnable {
		m.runnableDirty = true
	}
	if next == Dead {
		m.resident[p.class] -= p.rss
	}
	p.state = next
}

// Name returns the process name.
func (p *Process) Name() string { return p.name }

// Class returns Host or Guest.
func (p *Process) Class() Class { return p.class }

// Nice returns the current nice level.
func (p *Process) Nice() int { return p.nice }

// RSS returns the resident set size in bytes.
func (p *Process) RSS() int64 { return p.rss }

// State returns the lifecycle state.
func (p *Process) State() ProcState { return p.state }

// CPUTime returns the total accounted CPU time.
func (p *Process) CPUTime() time.Duration { return p.cpuTime }

// Alive reports whether the process has not terminated.
func (p *Process) Alive() bool { return p.state != Dead }

// Renice sets the nice level (clamped to [0, 19] by the scheduler weight).
func (p *Process) Renice(nice int) { p.nice = nice }

// Suspend stops the process; it keeps its memory but receives no CPU.
func (p *Process) Suspend() {
	if p.state == Dead || p.state == Suspended {
		return
	}
	p.resumeRunnable = p.state == Runnable
	p.setState(Suspended)
}

// Resume continues a suspended process.
func (p *Process) Resume() {
	if p.state != Suspended {
		return
	}
	if p.resumeRunnable {
		p.setState(Runnable)
	} else {
		p.setState(Sleeping)
	}
}

// Kill terminates the process immediately, releasing its memory.
func (p *Process) Kill() {
	if p.state == Dead {
		return
	}
	p.setState(Dead)
	p.ended = p.m.Now()
}

// Usage returns the process's CPU usage over its lifetime so far: accounted
// CPU time divided by wall time since it started.
func (p *Process) Usage() float64 {
	end := p.m.Now()
	if p.state == Dead {
		end = p.ended
	}
	wall := end - p.started
	if wall <= 0 {
		return 0
	}
	return float64(p.cpuTime) / float64(wall)
}

// advancePhase pulls phases from the behavior until the process has work,
// sleep, or terminates. Zero-length phases are skipped (bounded to avoid a
// pathological behavior spinning forever).
func (p *Process) advancePhase(r *rand.Rand) {
	for i := 0; i < 16; i++ {
		compute, sleep, ok := p.behavior.NextPhase(r)
		if !ok {
			p.setState(Dead)
			p.ended = p.m.Now()
			return
		}
		if compute > 0 {
			p.burstLeft = compute
			p.sleepLeft = sleep
			p.setState(Runnable)
			return
		}
		if sleep > 0 {
			p.burstLeft = 0
			p.sleepLeft = sleep
			p.setState(Sleeping)
			return
		}
	}
	// A behavior that returns 16 consecutive empty phases is broken;
	// treat it as terminated rather than spinning.
	p.setState(Dead)
	p.ended = p.m.Now()
}

// effectiveWeight is the lottery weight for the next draw.
func (p *Process) effectiveWeight(params SchedParams) float64 {
	w := niceWeight(params.NiceWeightBase, p.nice)
	if p.credit > 0 {
		w *= params.InteractiveBoost
	}
	return w
}
