package simos

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Machine simulates one single-CPU time-sharing machine. It is not safe
// for concurrent use; simulate many machines by running one per goroutine.
type Machine struct {
	cfg   MachineConfig
	rng   *rand.Rand
	now   sim.Time
	procs []*Process

	// Aggregate CPU-time accounting by class, for O(1) monitor sampling.
	cpuByClass [2]time.Duration
	idleTime   time.Duration
	thrashTime time.Duration
}

// NewMachine builds a machine from the configuration (zero fields take
// defaults).
func NewMachine(cfg MachineConfig) (*Machine, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := sim.NewSource(cfg.Seed)
	return &Machine{
		cfg: cfg,
		rng: src.Stream("machine/" + cfg.Name),
	}, nil
}

// MustNewMachine is NewMachine for known-good configurations.
func MustNewMachine(cfg MachineConfig) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the effective configuration.
func (m *Machine) Config() MachineConfig { return m.cfg }

// Now returns the machine's virtual time.
func (m *Machine) Now() sim.Time { return m.now }

// Spawn creates a process and schedules its first phase immediately.
func (m *Machine) Spawn(name string, class Class, nice int, rss int64, b Behavior) *Process {
	p := &Process{
		m:        m,
		name:     name,
		class:    class,
		nice:     nice,
		rss:      rss,
		behavior: b,
		started:  m.now,
		lastRun:  -1,
	}
	p.advancePhase(m.rng)
	m.procs = append(m.procs, p)
	return p
}

// Processes returns all processes ever spawned (including dead ones).
func (m *Machine) Processes() []*Process { return m.procs }

// LiveProcesses returns the processes that have not terminated.
func (m *Machine) LiveProcesses() []*Process {
	var out []*Process
	for _, p := range m.procs {
		if p.Alive() {
			out = append(out, p)
		}
	}
	return out
}

// ResidentMem returns the memory held by live processes of the class.
func (m *Machine) ResidentMem(class Class) int64 {
	var sum int64
	for _, p := range m.procs {
		if p.Alive() && p.class == class {
			sum += p.rss
		}
	}
	return sum
}

// FreeMemForGuest returns the memory a guest could claim: physical memory
// minus kernel usage and the resident sets of host processes. This is what
// the paper's non-intrusive monitor can observe (it cannot see inside the
// guest).
func (m *Machine) FreeMemForGuest() int64 {
	free := m.cfg.RAM - m.cfg.KernelMem - m.ResidentMem(Host)
	if free < 0 {
		free = 0
	}
	return free
}

// Thrashing reports whether the total working set of live processes
// (plus the kernel) exceeds physical memory.
func (m *Machine) Thrashing() bool {
	return m.ResidentMem(Host)+m.ResidentMem(Guest)+m.cfg.KernelMem > m.cfg.RAM
}

// CPUTime returns the accumulated CPU time accounted to the class.
func (m *Machine) CPUTime(class Class) time.Duration {
	return m.cpuByClass[class]
}

// IdleTime returns the accumulated idle CPU time.
func (m *Machine) IdleTime() time.Duration { return m.idleTime }

// ThrashTime returns how long the machine has spent thrashing.
func (m *Machine) ThrashTime() time.Duration { return m.thrashTime }

// Run advances the simulation by d (rounded down to whole ticks).
func (m *Machine) Run(d time.Duration) {
	tick := m.cfg.Sched.Tick
	steps := int(d / tick)
	for i := 0; i < steps; i++ {
		m.step(tick)
	}
}

// RunUntil advances the simulation to the absolute virtual time t.
func (m *Machine) RunUntil(t sim.Time) {
	if t > m.now {
		m.Run(t - m.now)
	}
}

// step advances one tick: sleep/credit bookkeeping, then one lottery draw
// per CPU among the remaining runnable processes, and progress for each
// winner.
func (m *Machine) step(tick time.Duration) {
	params := m.cfg.Sched
	thrash := m.Thrashing()

	// Phase bookkeeping for sleepers.
	for _, p := range m.procs {
		if p.state != Sleeping {
			continue
		}
		p.sleepLeft -= tick
		p.credit += tick
		if p.credit > params.CreditCap {
			p.credit = params.CreditCap
		}
		if p.sleepLeft <= 0 {
			p.advancePhase(m.rng)
		}
	}

	if thrash {
		m.thrashTime += tick
	}
	ran := 0
	for cpu := 0; cpu < m.cfg.CPUs; cpu++ {
		chosen := m.drawRunnable(params)
		if chosen == nil {
			break
		}
		ran++
		m.runProcess(chosen, tick, thrash, params)
	}
	m.idleTime += time.Duration(m.cfg.CPUs-ran) * tick
	m.now += tick
}

// drawRunnable performs one weighted lottery draw among runnable processes
// not yet scheduled this tick (marked via lastRun).
func (m *Machine) drawRunnable(params SchedParams) *Process {
	var total float64
	for _, p := range m.procs {
		if p.state == Runnable && p.lastRun != m.now {
			total += p.effectiveWeight(params)
		}
	}
	if total == 0 {
		return nil
	}
	draw := m.rng.Float64() * total
	for _, p := range m.procs {
		if p.state != Runnable || p.lastRun == m.now {
			continue
		}
		draw -= p.effectiveWeight(params)
		if draw < 0 {
			return p
		}
	}
	// Floating-point tail: take the last eligible runnable.
	for i := len(m.procs) - 1; i >= 0; i-- {
		if m.procs[i].state == Runnable && m.procs[i].lastRun != m.now {
			return m.procs[i]
		}
	}
	return nil
}

// runProcess advances one winner by one tick. A thrashing machine spends
// most of the tick stalled on page faults; only ThrashFactor of it becomes
// work and CPU time.
func (m *Machine) runProcess(chosen *Process, tick time.Duration, thrash bool, params SchedParams) {
	progress := tick
	accounted := tick
	if thrash {
		progress = time.Duration(float64(tick) * params.ThrashFactor)
		accounted = progress
	}
	chosen.lastRun = m.now
	chosen.burstLeft -= progress
	chosen.cpuTime += accounted
	m.cpuByClass[chosen.class] += accounted
	chosen.credit -= tick
	if chosen.credit < 0 {
		chosen.credit = 0
	}
	if chosen.burstLeft <= 0 {
		if chosen.sleepLeft > 0 {
			chosen.state = Sleeping
		} else {
			chosen.advancePhase(m.rng)
		}
	}
}

// Usage measures CPU usage between two snapshots; see Snapshot.
type Usage struct {
	Host  float64
	Guest float64
	Idle  float64
}

// Snapshot captures the accounting counters at an instant.
type Snapshot struct {
	At    sim.Time
	Host  time.Duration
	Guest time.Duration
	Idle  time.Duration
}

// Snapshot returns the current accounting counters.
func (m *Machine) Snapshot() Snapshot {
	return Snapshot{
		At:    m.now,
		Host:  m.cpuByClass[Host],
		Guest: m.cpuByClass[Guest],
		Idle:  m.idleTime,
	}
}

// UsageBetween computes per-class CPU usage over the window between two
// snapshots. It returns an error if the window is empty or inverted.
func UsageBetween(a, b Snapshot) (Usage, error) {
	wall := b.At - a.At
	if wall <= 0 {
		return Usage{}, fmt.Errorf("simos: empty snapshot window [%v, %v]", a.At, b.At)
	}
	return Usage{
		Host:  float64(b.Host-a.Host) / float64(wall),
		Guest: float64(b.Guest-a.Guest) / float64(wall),
		Idle:  float64(b.Idle-a.Idle) / float64(wall),
	}, nil
}
