package simos

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/sim"
)

// Machine simulates one single-CPU time-sharing machine. It is not safe
// for concurrent use; simulate many machines by running one per goroutine.
//
// The simulation core is event-driven on its hot paths: aggregate resident
// memory and per-state process counts are maintained incrementally on every
// lifecycle change (spawn, phase change, suspend, kill), so Thrashing,
// ResidentMem and FreeMemForGuest are O(1) instead of O(procs), and Run
// batches whole runs of ticks in closed form whenever the runnable set is
// provably stable (see fastForward). The batched path consumes exactly the
// same random draws as per-tick stepping, so fixed-seed results are
// bit-identical either way; the equivalence tests enforce this.
type Machine struct {
	cfg   MachineConfig
	rng   *rand.Rand
	now   sim.Time
	procs []*Process

	// Aggregate CPU-time accounting by class, for O(1) monitor sampling.
	cpuByClass [2]time.Duration
	idleTime   time.Duration
	thrashTime time.Duration

	// Incrementally maintained aggregates; see noteSpawn and
	// Process.setState.
	stateCount [4]int   // live processes per ProcState (index ProcState)
	resident   [2]int64 // resident memory of live processes per Class

	// runnable caches the runnable processes in spawn order (the order the
	// lottery iterates); it is rebuilt lazily when runnableDirty is set.
	runnable      []*Process
	runnableDirty bool
	// weights is scratch for drawRunnable, reused across ticks so the
	// scheduler hot path stays allocation-free.
	weights []float64

	// noFastPath forces per-tick stepping; used by the equivalence tests to
	// compare the batched fast path against the naive oracle.
	noFastPath bool
}

// NewMachine builds a machine from the configuration (zero fields take
// defaults).
func NewMachine(cfg MachineConfig) (*Machine, error) {
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := sim.NewSource(cfg.Seed)
	return &Machine{
		cfg: cfg,
		rng: src.Stream("machine/" + cfg.Name),
	}, nil
}

// MustNewMachine is NewMachine for known-good configurations.
func MustNewMachine(cfg MachineConfig) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the effective configuration.
func (m *Machine) Config() MachineConfig { return m.cfg }

// Now returns the machine's virtual time.
func (m *Machine) Now() sim.Time { return m.now }

// Spawn creates a process and schedules its first phase immediately.
func (m *Machine) Spawn(name string, class Class, nice int, rss int64, b Behavior) *Process {
	p := &Process{
		m:        m,
		name:     name,
		class:    class,
		nice:     nice,
		rss:      rss,
		behavior: b,
		started:  m.now,
		lastRun:  -1,
	}
	// Register the process under its zero-value state (Runnable) before the
	// first phase pull; advancePhase then transitions it through setState,
	// which keeps the aggregates consistent.
	m.stateCount[Runnable]++
	m.resident[class] += rss
	m.runnableDirty = true
	p.advancePhase(m.rng)
	m.procs = append(m.procs, p)
	return p
}

// Processes returns all processes ever spawned (including dead ones).
func (m *Machine) Processes() []*Process { return m.procs }

// LiveProcesses returns the processes that have not terminated.
func (m *Machine) LiveProcesses() []*Process {
	out := make([]*Process, 0, m.LiveCount())
	for _, p := range m.procs {
		if p.Alive() {
			out = append(out, p)
		}
	}
	return out
}

// LiveCount returns the number of live processes in O(1).
func (m *Machine) LiveCount() int {
	return m.stateCount[Runnable] + m.stateCount[Sleeping] + m.stateCount[Suspended]
}

// ResidentMem returns the memory held by live processes of the class.
func (m *Machine) ResidentMem(class Class) int64 {
	return m.resident[class]
}

// FreeMemForGuest returns the memory a guest could claim: physical memory
// minus kernel usage and the resident sets of host processes. This is what
// the paper's non-intrusive monitor can observe (it cannot see inside the
// guest).
func (m *Machine) FreeMemForGuest() int64 {
	free := m.cfg.RAM - m.cfg.KernelMem - m.resident[Host]
	if free < 0 {
		free = 0
	}
	return free
}

// Thrashing reports whether the total working set of live processes
// (plus the kernel) exceeds physical memory.
func (m *Machine) Thrashing() bool {
	return m.resident[Host]+m.resident[Guest]+m.cfg.KernelMem > m.cfg.RAM
}

// CPUTime returns the accumulated CPU time accounted to the class.
func (m *Machine) CPUTime(class Class) time.Duration {
	return m.cpuByClass[class]
}

// IdleTime returns the accumulated idle CPU time.
func (m *Machine) IdleTime() time.Duration { return m.idleTime }

// ThrashTime returns how long the machine has spent thrashing.
func (m *Machine) ThrashTime() time.Duration { return m.thrashTime }

// Run advances the simulation by d (rounded down to whole ticks). Spans of
// ticks over which the schedule is predetermined — no runnable process, or
// a single runnable process with no sleeper due to wake — are advanced in
// closed form by fastForward; the remaining ticks step individually.
func (m *Machine) Run(d time.Duration) {
	tick := m.cfg.Sched.Tick
	steps := int64(d / tick)
	for steps > 0 {
		if !m.noFastPath {
			if k := m.fastForward(steps, tick); k > 0 {
				steps -= k
				continue
			}
			if m.cfg.CPUs == 1 && m.stateCount[Runnable] > 1 {
				if k := m.runBatch(steps, tick); k > 0 {
					steps -= k
					continue
				}
			}
		}
		m.step(tick)
		steps--
	}
}

// RunUntil advances the simulation to the absolute virtual time t.
func (m *Machine) RunUntil(t sim.Time) {
	if t > m.now {
		m.Run(t - m.now)
	}
}

// fastForward advances up to steps ticks in closed form and returns how
// many it advanced (0 means the next tick must be stepped naively). It is
// applicable while no scheduling decision is ambiguous: at most one process
// is runnable, and the batch ends strictly before the next discrete event
// (a sleeper waking or the runnable process exhausting its burst), whose
// tick runs through step so phase advancement draws from the RNG at exactly
// the same point as per-tick stepping. The lottery draw the naive path
// performs on every busy tick is drained explicitly, keeping the random
// stream bit-identical.
func (m *Machine) fastForward(steps int64, tick time.Duration) int64 {
	if m.stateCount[Runnable] > 1 {
		return 0
	}
	k := steps
	if m.stateCount[Sleeping] > 0 {
		for _, p := range m.procs {
			if p.state != Sleeping {
				continue
			}
			// The tick on which sleepLeft reaches zero runs advancePhase and
			// must be stepped naively.
			e := int64((p.sleepLeft + tick - 1) / tick)
			if e-1 < k {
				k = e - 1
			}
		}
	}
	thrash := m.Thrashing()
	var run *Process
	var progress, accounted time.Duration
	if m.stateCount[Runnable] == 1 {
		if m.runnableDirty {
			m.refreshRunnable()
		}
		run = m.runnable[0]
		progress, accounted = tick, tick
		if thrash {
			progress = time.Duration(float64(tick) * m.cfg.Sched.ThrashFactor)
			accounted = progress
			if progress <= 0 {
				return 0
			}
		}
		e := int64((run.burstLeft + progress - 1) / progress)
		if e-1 < k {
			k = e - 1
		}
	}
	if k <= 0 {
		return 0
	}
	d := time.Duration(k) * tick
	if m.stateCount[Sleeping] > 0 {
		cap := m.cfg.Sched.CreditCap
		for _, p := range m.procs {
			if p.state != Sleeping {
				continue
			}
			p.sleepLeft -= d
			p.credit += d
			if p.credit > cap {
				p.credit = cap
			}
		}
	}
	busy := 0
	if run != nil {
		// Drain the per-tick lottery draws the naive path would consume.
		for i := int64(0); i < k; i++ {
			m.rng.Float64()
		}
		run.burstLeft -= time.Duration(k) * progress
		acc := time.Duration(k) * accounted
		run.cpuTime += acc
		m.cpuByClass[run.class] += acc
		run.credit -= d
		if run.credit < 0 {
			run.credit = 0
		}
		run.lastRun = m.now + time.Duration(k-1)*tick
		busy = 1
	}
	m.idleTime += time.Duration(m.cfg.CPUs-busy) * d
	if thrash {
		m.thrashTime += d
	}
	m.now += d
	return k
}

// runBatch advances up to steps ticks of the contended single-CPU regime —
// several runnable processes competing in the per-tick lottery — in a tight
// loop that avoids step's per-tick scans. It returns how many ticks it
// advanced (0 means the next tick must be stepped naively).
//
// Parity with step is exact: one Float64 draw per tick with the winner
// chosen by the same cumulative-subtraction walk; lottery weights are the
// values step would recompute each tick (they only change when a winner's
// interactivity credit drains to zero, at which point the total is re-summed
// in index order, matching step's fresh per-tick sum bit for bit); and the
// batch ends strictly before any discrete event — a sleeper waking or the
// winner exhausting its burst — runs its phase change at the same point in
// the random stream as per-tick stepping would.
func (m *Machine) runBatch(steps int64, tick time.Duration) int64 {
	// Bound the batch to end before the first sleeper wakes (that tick's
	// advancePhase must run through step).
	if m.stateCount[Sleeping] > 0 {
		for _, p := range m.procs {
			if p.state != Sleeping {
				continue
			}
			e := int64((p.sleepLeft+tick-1)/tick) - 1
			if e < steps {
				steps = e
			}
		}
		if steps <= 0 {
			return 0
		}
	}
	params := m.cfg.Sched
	thrash := m.Thrashing()
	progress := tick
	if thrash {
		progress = time.Duration(float64(tick) * params.ThrashFactor)
		if progress <= 0 {
			return 0
		}
	}
	if m.runnableDirty {
		m.refreshRunnable()
	}
	runnable := m.runnable
	n := len(runnable)
	if cap(m.weights) < n {
		m.weights = make([]float64, n)
	}
	weights := m.weights[:n]
	var total float64
	for i, p := range runnable {
		w := p.effectiveWeight(params)
		weights[i] = w
		total += w
	}
	if total == 0 {
		return 0
	}
	rng := m.rng
	now := m.now // start of the current tick; advanced at each tick's end
	var done int64
	var exhausted *Process
	for done < steps {
		d := rng.Float64() * total
		// Cumulative subtraction, falling back to the last entry exactly
		// like step's floating-point tail (weights here are all positive).
		win := n - 1
		for i := 0; i < n-1; i++ {
			d -= weights[i]
			if d < 0 {
				win = i
				break
			}
		}
		p := runnable[win]
		p.lastRun = now
		p.burstLeft -= progress
		p.cpuTime += progress
		m.cpuByClass[p.class] += progress
		done++
		if p.credit > 0 {
			p.credit -= tick
			if p.credit < 0 {
				p.credit = 0
			}
			if p.credit == 0 {
				weights[win] = p.effectiveWeight(params)
				total = 0
				for _, w := range weights {
					total += w
				}
			}
		}
		if p.burstLeft <= 0 {
			exhausted = p
			break
		}
		now += tick
	}
	d := time.Duration(done) * tick
	if thrash {
		m.thrashTime += d
	}
	if m.stateCount[Sleeping] > 0 {
		for _, p := range m.procs {
			if p.state != Sleeping {
				continue
			}
			p.sleepLeft -= d
			p.credit += d
			if p.credit > params.CreditCap {
				p.credit = params.CreditCap
			}
		}
	}
	if exhausted != nil {
		// The phase change runs with now at the start of its tick, exactly
		// where step would invoke it (step advances now only at tick end).
		m.now = now
		if exhausted.sleepLeft > 0 {
			exhausted.setState(Sleeping)
		} else {
			exhausted.advancePhase(m.rng)
		}
		m.now = now + tick
		return done
	}
	m.now = now
	return done
}

// step advances one tick: sleep/credit bookkeeping, then one lottery draw
// per CPU among the remaining runnable processes, and progress for each
// winner.
func (m *Machine) step(tick time.Duration) {
	params := m.cfg.Sched
	thrash := m.Thrashing()

	// Phase bookkeeping for sleepers.
	if m.stateCount[Sleeping] > 0 {
		for _, p := range m.procs {
			if p.state != Sleeping {
				continue
			}
			p.sleepLeft -= tick
			p.credit += tick
			if p.credit > params.CreditCap {
				p.credit = params.CreditCap
			}
			if p.sleepLeft <= 0 {
				p.advancePhase(m.rng)
			}
		}
	}

	if thrash {
		m.thrashTime += tick
	}
	ran := 0
	for cpu := 0; cpu < m.cfg.CPUs; cpu++ {
		chosen := m.drawRunnable(params)
		if chosen == nil {
			break
		}
		ran++
		m.runProcess(chosen, tick, thrash, params)
	}
	m.idleTime += time.Duration(m.cfg.CPUs-ran) * tick
	m.now += tick
}

// refreshRunnable rebuilds the cached runnable set in spawn order.
func (m *Machine) refreshRunnable() {
	m.runnable = m.runnable[:0]
	for _, p := range m.procs {
		if p.state == Runnable {
			m.runnable = append(m.runnable, p)
		}
	}
	m.runnableDirty = false
}

// drawRunnable performs one weighted lottery draw among runnable processes
// not yet scheduled this tick (marked via lastRun). It iterates the cached
// runnable set — in spawn order, like a full scan — and records each
// weight so the selection pass does not recompute them. Ineligible
// processes contribute an exact 0.0 to the total, which leaves the
// floating-point sum bit-identical to the naive skip-them scan.
func (m *Machine) drawRunnable(params SchedParams) *Process {
	if m.runnableDirty {
		m.refreshRunnable()
	}
	if cap(m.weights) < len(m.runnable) {
		m.weights = make([]float64, len(m.runnable))
	}
	weights := m.weights[:len(m.runnable)]
	var total float64
	for i, p := range m.runnable {
		w := 0.0
		if p.lastRun != m.now {
			w = p.effectiveWeight(params)
		}
		weights[i] = w
		total += w
	}
	if total == 0 {
		return nil
	}
	draw := m.rng.Float64() * total
	for i, p := range m.runnable {
		w := weights[i]
		if w == 0 {
			continue
		}
		draw -= w
		if draw < 0 {
			return p
		}
	}
	// Floating-point tail: take the last eligible runnable.
	for i := len(m.runnable) - 1; i >= 0; i-- {
		if weights[i] != 0 {
			return m.runnable[i]
		}
	}
	return nil
}

// runProcess advances one winner by one tick. A thrashing machine spends
// most of the tick stalled on page faults; only ThrashFactor of it becomes
// work and CPU time.
func (m *Machine) runProcess(chosen *Process, tick time.Duration, thrash bool, params SchedParams) {
	progress := tick
	accounted := tick
	if thrash {
		progress = time.Duration(float64(tick) * params.ThrashFactor)
		accounted = progress
	}
	chosen.lastRun = m.now
	chosen.burstLeft -= progress
	chosen.cpuTime += accounted
	m.cpuByClass[chosen.class] += accounted
	chosen.credit -= tick
	if chosen.credit < 0 {
		chosen.credit = 0
	}
	if chosen.burstLeft <= 0 {
		if chosen.sleepLeft > 0 {
			chosen.setState(Sleeping)
		} else {
			chosen.advancePhase(m.rng)
		}
	}
}

// Usage measures CPU usage between two snapshots; see Snapshot.
type Usage struct {
	Host  float64
	Guest float64
	Idle  float64
}

// Snapshot captures the accounting counters at an instant.
type Snapshot struct {
	At    sim.Time
	Host  time.Duration
	Guest time.Duration
	Idle  time.Duration
}

// Snapshot returns the current accounting counters.
func (m *Machine) Snapshot() Snapshot {
	return Snapshot{
		At:    m.now,
		Host:  m.cpuByClass[Host],
		Guest: m.cpuByClass[Guest],
		Idle:  m.idleTime,
	}
}

// UsageBetween computes per-class CPU usage over the window between two
// snapshots. It returns an error if the window is empty or inverted.
func UsageBetween(a, b Snapshot) (Usage, error) {
	wall := b.At - a.At
	if wall <= 0 {
		return Usage{}, fmt.Errorf("simos: empty snapshot window [%v, %v]", a.At, b.At)
	}
	return Usage{
		Host:  float64(b.Host-a.Host) / float64(wall),
		Guest: float64(b.Guest-a.Guest) / float64(wall),
		Idle:  float64(b.Idle-a.Idle) / float64(wall),
	}, nil
}
