package loadgen

import (
	"strings"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name        string
		config      Config
		errContains string
	}{
		{
			name:   "MinimalValid",
			config: Config{Nodes: 1},
		},
		{
			name: "FullValid",
			config: Config{Nodes: 100000, Shards: 4, BatchSize: 500, HeartbeatRounds: 3,
				ChurnFraction: 0.5, DiscoverOps: 100, Concurrency: 4, Partition: true, PartitionShard: 3},
		},
		{
			name:        "ZeroNodes",
			config:      Config{},
			errContains: "nodes must be positive",
		},
		{
			name:        "NegativeNodes",
			config:      Config{Nodes: -5},
			errContains: "nodes must be positive",
		},
		{
			name:        "NegativeShards",
			config:      Config{Nodes: 10, Shards: -1},
			errContains: "shards must not be negative",
		},
		{
			name:        "NegativeBatch",
			config:      Config{Nodes: 10, BatchSize: -1},
			errContains: "batch size must not be negative",
		},
		{
			name:        "ChurnAboveOne",
			config:      Config{Nodes: 10, ChurnFraction: 1.5},
			errContains: "churn fraction must be within [0, 1]",
		},
		{
			name:        "NegativeChurn",
			config:      Config{Nodes: 10, ChurnFraction: -0.1},
			errContains: "churn fraction must be within [0, 1]",
		},
		{
			name:        "NegativeRounds",
			config:      Config{Nodes: 10, HeartbeatRounds: -1},
			errContains: "heartbeat rounds must not be negative",
		},
		{
			name:        "NegativeDiscoverOps",
			config:      Config{Nodes: 10, DiscoverOps: -1},
			errContains: "discover ops must not be negative",
		},
		{
			name:        "NegativeConcurrency",
			config:      Config{Nodes: 10, Concurrency: -2},
			errContains: "concurrency must not be negative",
		},
		{
			name:        "NegativePartitionShard",
			config:      Config{Nodes: 10, PartitionShard: -1},
			errContains: "partition shard must not be negative",
		},
		{
			name:        "PartitionSingleShard",
			config:      Config{Nodes: 10, Partition: true},
			errContains: "partitioning needs at least 2 shards",
		},
		{
			name:        "PartitionShardOutOfRange",
			config:      Config{Nodes: 10, Shards: 2, Partition: true, PartitionShard: 2},
			errContains: "out of range",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.config.Validate()
			if c.errContains == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.errContains) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.errContains)
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Nodes: 10}.withDefaults()
	if c.Shards != 1 || c.BatchSize != 1000 || c.HeartbeatRounds != 1 ||
		c.ChurnFraction != 0.2 || c.DiscoverOps != 200 || c.DiscoverLimit != 32 ||
		c.Concurrency != 8 || c.Seed != 1 || c.TTL <= 0 {
		t.Fatalf("withDefaults() = %+v", c)
	}
}
