package loadgen

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRunForecastEvaluation is the acceptance property behind `make
// forecast-smoke`: on a fixed-seed replayed fleet trace, forecast-driven
// proactive checkpoint/migrate wastes at least the gated fraction less
// guest CPU time than the reactive baseline without losing throughput.
func TestRunForecastEvaluation(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := RunForecast(ForecastConfig{
		Machines: 8, Days: 14, TrainDays: 7, Jobs: 60, Seed: 1, Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("fixed-seed evaluation missed its gates: %v", res.Violations)
	}
	if res.WasteReduction < 0.10 {
		t.Errorf("waste reduction %.3f below the 10%% acceptance bar", res.WasteReduction)
	}
	if res.Proactive.Completed < res.Reactive.Completed {
		t.Errorf("proactive completed %d, reactive %d", res.Proactive.Completed, res.Reactive.Completed)
	}
	if res.Checkpoints == 0 || res.OnlineEvents == 0 {
		t.Errorf("proactive loop inactive: %+v", res)
	}
	// The proactive run's counters and forecast latency histogram landed
	// in the supplied registry.
	var sawCkpt, sawLatency bool
	for _, fam := range reg.Snapshot() {
		switch fam.Name {
		case "gsched_proactive_checkpoints_total":
			sawCkpt = true
		case "gsched_forecast_latency_seconds":
			sawLatency = true
		}
	}
	if !sawCkpt || !sawLatency {
		t.Errorf("proactive metrics missing from registry: checkpoints %v latency %v", sawCkpt, sawLatency)
	}
}

// TestRunForecastPhase drives the networked forecast phase: a small fleet
// registers and heartbeats against forecast-enabled shards, then batched
// forecast queries are measured and answer with known nodes.
func TestRunForecastPhase(t *testing.T) {
	res, err := Run(ctx, Config{
		Nodes: 500, Shards: 2, BatchSize: 100,
		HeartbeatRounds: 2, DiscoverOps: 5, Concurrency: 4,
		Forecast: true, ForecastOps: 10, ForecastNames: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Forecast.Ops != 10 {
		t.Fatalf("forecast phase ran %d ops, want 10", res.Forecast.Ops)
	}
	if res.ForecastKnown == 0 {
		t.Fatal("forecast phase returned no known nodes")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("ungated run reported violations: %v", res.Violations)
	}
}

// TestRunForecastPhaseSLO pins that the forecast p99 objective is wired
// into the violation check.
func TestRunForecastPhaseSLO(t *testing.T) {
	res, err := Run(ctx, Config{
		Nodes: 100, Shards: 1, DiscoverOps: 2, Concurrency: 2,
		Forecast: true, ForecastOps: 3, ForecastNames: 8,
		SLO: SLO{ForecastP99: time.Nanosecond}, // impossible on purpose
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("impossible forecast SLO not reported as violated")
	}
}

// TestForecastConfigValidation pins the evaluation's config errors.
func TestForecastConfigValidation(t *testing.T) {
	cases := []ForecastConfig{
		{Machines: -1},
		{Days: 10, TrainDays: 10},
		{MinWasteReduction: 1.5},
	}
	for _, c := range cases {
		if _, err := RunForecast(c); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if err := (Config{Nodes: 10, ForecastOps: -1}).Validate(); err == nil {
		t.Error("negative forecast ops accepted")
	}
}
