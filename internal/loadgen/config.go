// Package loadgen drives the sharded ishare control plane with synthetic
// fleets — hundreds of thousands to a million simulated nodes — and
// measures what the paper's system section only sketches: how discovery,
// registration and heartbeat latencies behave as the fine-grained cycle
// sharing fleet and its registry scale. Nodes are simulated at the
// protocol level (digest batches, not TCP listeners): their availability
// states churn through the paper's five-state model while the registry,
// ring and broker under test are the real production code paths.
package loadgen

import (
	"fmt"
	"time"

	"repro/internal/markov"
	"repro/internal/obs"
)

// Config parameterizes one load run. The zero value is not runnable; see
// Validate. Defaults are applied by Run.
type Config struct {
	// Nodes is the simulated fleet size (required).
	Nodes int
	// Shards is the registry shard count (default 1).
	Shards int
	// BatchSize is how many nodes ride one register/heartbeat batch
	// request (default 1000, capped by protocol message limits).
	BatchSize int
	// HeartbeatRounds is how many full-fleet heartbeat sweeps to run
	// (default 1). Each sweep re-draws availability states for a churn
	// fraction of the fleet first.
	HeartbeatRounds int
	// ChurnFraction is the fraction of the fleet whose availability state
	// is re-drawn (from the paper's stationary state distribution) before
	// each heartbeat round (default 0.2).
	ChurnFraction float64
	// DiscoverOps is how many ranked fan-out discoveries to measure
	// (default 200).
	DiscoverOps int
	// DiscoverLimit is the per-shard ranked candidate limit (default 32).
	DiscoverLimit int
	// Concurrency bounds the parallel workers driving batches and
	// discoveries (default 8).
	Concurrency int
	// Partition enables a second discovery phase with PartitionShard
	// chaos-partitioned, exercising the broker's per-shard stale cache.
	Partition bool
	// PartitionShard is the shard index cut off during the partition
	// phase (default 0; only meaningful with Partition set).
	PartitionShard int
	// TTL is the registry heartbeat TTL (default 30 s — large, so the
	// fleet stays alive across slow CI phases).
	TTL time.Duration
	// WALDir, when set, makes the registry durable: each shard WAL-logs
	// acked registrations under this root and recovers them on restart.
	// Required by CrashRestart.
	WALDir string
	// MaxInflight, when positive, arms each shard's admission control:
	// at most this many concurrently served exchanges, a bounded queue
	// behind them, load-shed with a retry-after hint past that.
	MaxInflight int
	// CrashRestart enables a crash-recovery phase: CrashShard is killed
	// (no drain, no fsync), discovery is measured through the outage with
	// a breaker-armed broker, the shard is restarted from its WAL, and
	// the time back to serving plus a zero-loss heartbeat sweep are
	// checked. Needs WALDir and at least 2 shards.
	CrashRestart bool
	// CrashShard is the shard index killed during the crash phase
	// (default 0; only meaningful with CrashRestart set).
	CrashShard int
	// Forecast enables the forecast service phase: every registry shard
	// runs an online forecaster fed by the fleet's digest transitions, and
	// after the heartbeat sweeps the driver measures batched forecast
	// queries against it (see ForecastOps). Virtual time is wall time
	// scaled by ForecastScale.
	Forecast bool
	// ForecastOps is how many batched forecast queries to measure
	// (default 100; only meaningful with Forecast set).
	ForecastOps int
	// ForecastNames is how many node names ride one forecast query
	// (default 64).
	ForecastNames int
	// ForecastScale maps wall milliseconds to virtual time (default
	// 60000: one wall millisecond is one virtual minute, so a multi-second
	// run spans virtual days of fleet history).
	ForecastScale float64
	// ForecastHorizon is the wall-clock horizon of each query (default
	// 60 ms — one virtual hour at the default scale).
	ForecastHorizon time.Duration
	// Scenario, when set, draws fleet availability states from the
	// stationary distribution of the named markov scenario model
	// (internal/markov: enterprise, spot, multicore, container-dense)
	// instead of the paper's empirical occupancy. Churn re-draws from the
	// same distribution.
	Scenario string
	// Seed makes fleet states and churn reproducible (default 1).
	Seed int64
	// SLO holds the latency objectives checked after the run; zero fields
	// are ungated.
	SLO SLO
	// Obs, when set, receives the run's latency histograms
	// (fgcs_loadgen_*_seconds) and fleet gauges. Nil keeps them private.
	Obs *obs.Registry
}

// SLO are the latency objectives of a run. Register and heartbeat
// latencies are per batch request; discovery latencies are per fan-out
// Candidates call. Zero fields are not checked.
type SLO struct {
	RegisterP99  time.Duration
	HeartbeatP99 time.Duration
	DiscoverP50  time.Duration
	DiscoverP99  time.Duration
	// Recovery bounds how long a crashed shard may take from restart to
	// serving its recovered state again (crash phase only).
	Recovery time.Duration
	// CrashDiscoverFactor bounds the during-crash discovery p99 to this
	// multiple of the healthy-phase p99 (crash phase only; 0 = ungated).
	// The breaker is what keeps this small: after it opens, the dead
	// shard costs the fan-out nothing.
	CrashDiscoverFactor float64
	// ForecastP99 bounds one batched forecast query (forecast phase only).
	ForecastP99 time.Duration
}

// Validate checks the configuration without applying defaults: zero
// means "default", negatives and inconsistencies are errors.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("loadgen: nodes must be positive, got %d", c.Nodes)
	}
	if c.Shards < 0 {
		return fmt.Errorf("loadgen: shards must not be negative, got %d", c.Shards)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("loadgen: batch size must not be negative, got %d", c.BatchSize)
	}
	if c.ChurnFraction < 0 || c.ChurnFraction > 1 {
		return fmt.Errorf("loadgen: churn fraction must be within [0, 1], got %g", c.ChurnFraction)
	}
	if c.HeartbeatRounds < 0 {
		return fmt.Errorf("loadgen: heartbeat rounds must not be negative, got %d", c.HeartbeatRounds)
	}
	if c.DiscoverOps < 0 {
		return fmt.Errorf("loadgen: discover ops must not be negative, got %d", c.DiscoverOps)
	}
	if c.Concurrency < 0 {
		return fmt.Errorf("loadgen: concurrency must not be negative, got %d", c.Concurrency)
	}
	if c.PartitionShard < 0 {
		return fmt.Errorf("loadgen: partition shard must not be negative, got %d", c.PartitionShard)
	}
	if c.MaxInflight < 0 {
		return fmt.Errorf("loadgen: max inflight must not be negative, got %d", c.MaxInflight)
	}
	if c.ForecastOps < 0 || c.ForecastNames < 0 || c.ForecastScale < 0 || c.ForecastHorizon < 0 {
		return fmt.Errorf("loadgen: negative forecast phase parameters")
	}
	if c.CrashShard < 0 {
		return fmt.Errorf("loadgen: crash shard must not be negative, got %d", c.CrashShard)
	}
	if c.Scenario != "" {
		known := false
		for _, name := range markov.ScenarioNames() {
			if name == c.Scenario {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("loadgen: unknown scenario %q (want one of %v)", c.Scenario, markov.ScenarioNames())
		}
	}
	if c.CrashRestart {
		if c.WALDir == "" {
			return fmt.Errorf("loadgen: crash-restart phase needs a WAL dir (a volatile shard cannot recover)")
		}
		shards := c.Shards
		if shards == 0 {
			shards = 1
		}
		if shards < 2 {
			return fmt.Errorf("loadgen: crash-restart needs at least 2 shards so discovery can degrade, got %d", shards)
		}
		if c.CrashShard >= shards {
			return fmt.Errorf("loadgen: crash shard %d out of range for %d shard(s)", c.CrashShard, shards)
		}
	}
	if c.Partition {
		shards := c.Shards
		if shards == 0 {
			shards = 1
		}
		if shards < 2 {
			return fmt.Errorf("loadgen: partitioning needs at least 2 shards so discovery can degrade, got %d", shards)
		}
		if c.PartitionShard >= shards {
			return fmt.Errorf("loadgen: partition shard %d out of range for %d shard(s)", c.PartitionShard, shards)
		}
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 1000
	}
	if c.HeartbeatRounds == 0 {
		c.HeartbeatRounds = 1
	}
	if c.ChurnFraction == 0 {
		c.ChurnFraction = 0.2
	}
	if c.DiscoverOps == 0 {
		c.DiscoverOps = 200
	}
	if c.DiscoverLimit == 0 {
		c.DiscoverLimit = 32
	}
	if c.Concurrency == 0 {
		c.Concurrency = 8
	}
	if c.TTL == 0 {
		c.TTL = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ForecastOps == 0 {
		c.ForecastOps = 100
	}
	if c.ForecastNames == 0 {
		c.ForecastNames = 64
	}
	if c.ForecastScale == 0 {
		c.ForecastScale = 60_000
	}
	if c.ForecastHorizon == 0 {
		c.ForecastHorizon = 60 * time.Millisecond
	}
	return c
}
