package loadgen

import (
	"fmt"
	"time"

	"repro/internal/forecast"
	"repro/internal/gsched"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/testbed"
)

// ForecastConfig parameterizes one proactive-vs-reactive replay
// evaluation: a fixed-seed testbed fleet trace is generated, its training
// prefix is streamed event-by-event into the online forecaster, and the
// same guest-job stream is then replayed twice — once under the reactive
// baseline, once with forecast-driven checkpoint/migrate reviews on top of
// the identical placement policy. Zero fields take defaults.
type ForecastConfig struct {
	// Machines and Days size the synthetic fleet trace (default 16 x 28).
	Machines int
	Days     int
	// TrainDays is the trace prefix fed to the forecaster; guest jobs
	// arrive only in the remaining test period (default 14).
	TrainDays int
	// Jobs is the guest-job count (default 150); JobWork its CPU-time
	// range (default 2-6 h).
	Jobs    int
	JobWork [2]time.Duration
	// Checkpoint is the periodic checkpoint cadence both runs share, so
	// the baseline is a real reactive system, not a strawman that restarts
	// from scratch (default 1 h).
	Checkpoint time.Duration
	// Seed fixes the trace and job stream (default 1).
	Seed int64
	// MinWasteReduction is the acceptance gate: the proactive run must
	// waste at least this fraction less guest CPU time than the reactive
	// baseline (default 0.10).
	MinWasteReduction float64
	// Proactive overrides the review knobs (zero = DefaultProactiveConfig).
	Proactive gsched.ProactiveConfig
	// Obs, when set, receives the proactive run's counters and forecast
	// latency histogram (gsched_proactive_*, gsched_forecast_latency_seconds).
	Obs *obs.Registry
}

func (c ForecastConfig) withDefaults() ForecastConfig {
	if c.Machines == 0 {
		c.Machines = 16
	}
	if c.Days == 0 {
		c.Days = 28
	}
	if c.TrainDays == 0 {
		c.TrainDays = 14
	}
	if c.Jobs == 0 {
		c.Jobs = 150
	}
	if c.JobWork[1] == 0 {
		c.JobWork = [2]time.Duration{2 * time.Hour, 6 * time.Hour}
	}
	if c.Checkpoint == 0 {
		c.Checkpoint = time.Hour
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinWasteReduction == 0 {
		c.MinWasteReduction = 0.10
	}
	if c.Proactive.CheckEvery == 0 {
		// Fleet traces are noisier than the pure recurring-outage
		// benchmarks gsched's defaults target, so the evaluation reviews at
		// a conservative survival floor: checkpoint whenever the horizon
		// forecast shows meaningful risk, migrate only on a clear margin.
		c.Proactive = gsched.DefaultProactiveConfig()
		c.Proactive.SurvivalFloor = 0.95
	}
	return c
}

// Validate checks the configuration without applying defaults.
func (c ForecastConfig) Validate() error {
	if c.Machines < 0 || c.Days < 0 || c.TrainDays < 0 || c.Jobs < 0 {
		return fmt.Errorf("loadgen: negative forecast evaluation sizes")
	}
	if c.TrainDays > 0 && c.Days > 0 && c.TrainDays >= c.Days {
		return fmt.Errorf("loadgen: training period (%d days) consumes the %d-day trace", c.TrainDays, c.Days)
	}
	if c.MinWasteReduction < 0 || c.MinWasteReduction > 1 {
		return fmt.Errorf("loadgen: waste-reduction gate %g outside [0, 1]", c.MinWasteReduction)
	}
	return nil
}

// PolicyOutcome is one run's side of the comparison.
type PolicyOutcome struct {
	Policy           string  `json:"policy"`
	Completed        int     `json:"completed"`
	Unfinished       int     `json:"unfinished"`
	Failures         int     `json:"failures"`
	WastedCPUSeconds float64 `json:"wasted_cpu_seconds"`
	MeanResponseSec  float64 `json:"mean_response_seconds"`
}

func outcome(r gsched.Result) PolicyOutcome {
	return PolicyOutcome{
		Policy:           r.Policy,
		Completed:        r.Completed,
		Unfinished:       r.Unfinished,
		Failures:         r.TotalFailures,
		WastedCPUSeconds: r.WastedWork.Seconds(),
		MeanResponseSec:  r.MeanResponse.Seconds(),
	}
}

// ForecastResult is the outcome of one RunForecast evaluation.
type ForecastResult struct {
	Machines  int `json:"machines"`
	Days      int `json:"days"`
	TrainDays int `json:"train_days"`
	Jobs      int `json:"jobs"`
	// OnlineEvents is how many unavailability events the online forecaster
	// ingested from the training prefix.
	OnlineEvents int64         `json:"online_events"`
	Reactive     PolicyOutcome `json:"reactive"`
	Proactive    PolicyOutcome `json:"proactive"`
	// WasteReduction is 1 - proactive/reactive wasted CPU seconds.
	WasteReduction  float64 `json:"waste_reduction"`
	Checkpoints     int     `json:"checkpoints"`
	Migrations      int     `json:"migrations"`
	SavedCPUSeconds float64 `json:"saved_cpu_seconds"`
	// Violations lists every acceptance gate the run missed (empty = pass).
	Violations []string `json:"violations,omitempty"`
}

// RunForecast replays a fixed-seed fleet trace through the online
// forecaster and compares forecast-driven proactive checkpoint/migrate
// scheduling against the reactive baseline on an identical job stream.
// Gate misses are reported in Violations, not as an error; errors mean the
// evaluation itself could not run or was vacuous.
func RunForecast(cfg ForecastConfig) (*ForecastResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	tcfg := testbed.DefaultConfig()
	tcfg.Machines = cfg.Machines
	tcfg.Days = cfg.Days
	tcfg.Seed = cfg.Seed
	tr, err := testbed.Run(tcfg)
	if err != nil {
		return nil, fmt.Errorf("loadgen: forecast trace generation: %w", err)
	}
	trainEnd := tr.Span.Start + sim.Time(cfg.TrainDays)*sim.Day

	// Stream the training prefix into the online forecaster, exactly as a
	// live deployment would see it arrive: one event at a time, then the
	// clock advanced to the end of the training period.
	on, err := forecast.New(forecast.Config{
		Calendar: tr.Calendar,
		Machines: tr.Machines,
		Start:    tr.Span.Start,
	})
	if err != nil {
		return nil, err
	}
	for _, ev := range tr.Events {
		if ev.Start >= trainEnd {
			break
		}
		on.ObserveEvent(ev)
	}
	on.AdvanceTo(trainEnd)
	if on.Events() == 0 {
		return nil, fmt.Errorf("loadgen: training prefix produced no events; the comparison is vacuous")
	}

	// Both runs place with the same offline-trained predictive policy; the
	// proactive run's reviews consume the *online* forecasts, so the
	// comparison isolates what the forecast-driven loop adds.
	hw := &predict.HistoryWindow{Trim: 0.1}
	hw.Train(tr.Before(trainEnd))
	pol := &gsched.Predictive{P: hw}

	gcfg := gsched.Config{
		Jobs:       cfg.Jobs,
		JobWork:    cfg.JobWork,
		TrainDays:  cfg.TrainDays,
		Checkpoint: cfg.Checkpoint,
		Seed:       cfg.Seed,
	}
	reactive, err := gsched.Simulate(tr, pol, gcfg)
	if err != nil {
		return nil, fmt.Errorf("loadgen: reactive baseline: %w", err)
	}
	pro := cfg.Proactive
	pro.Metrics = cfg.Obs
	proactive, err := gsched.SimulateProactive(tr, pol, gsched.ForecastEstimator{F: on}, gcfg, pro)
	if err != nil {
		return nil, fmt.Errorf("loadgen: proactive run: %w", err)
	}
	if reactive.WastedWork == 0 {
		return nil, fmt.Errorf("loadgen: reactive baseline wasted nothing; the comparison is vacuous")
	}

	res := &ForecastResult{
		Machines: cfg.Machines, Days: cfg.Days, TrainDays: cfg.TrainDays, Jobs: cfg.Jobs,
		OnlineEvents:    on.Events(),
		Reactive:        outcome(reactive),
		Proactive:       outcome(proactive),
		WasteReduction:  1 - proactive.WastedWork.Seconds()/reactive.WastedWork.Seconds(),
		Checkpoints:     proactive.Checkpoints,
		Migrations:      proactive.Migrations,
		SavedCPUSeconds: proactive.SavedWork.Seconds(),
	}
	if res.WasteReduction < cfg.MinWasteReduction {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"waste reduction %.1f%% below the %.1f%% gate (proactive %.0fs vs reactive %.0fs wasted)",
			100*res.WasteReduction, 100*cfg.MinWasteReduction,
			res.Proactive.WastedCPUSeconds, res.Reactive.WastedCPUSeconds))
	}
	if proactive.Completed < reactive.Completed {
		res.Violations = append(res.Violations, fmt.Sprintf(
			"proactive completed %d jobs, reactive %d — throughput lost",
			proactive.Completed, reactive.Completed))
	}
	return res, nil
}
