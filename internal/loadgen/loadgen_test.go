package loadgen

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/obs"
)

var ctx = context.Background()

func TestDrawStateCoversDistribution(t *testing.T) {
	counts := make(map[string]int)
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	for i := 0; i < n; i++ {
		counts[drawState(rng, paperStates)]++
	}
	for _, s := range paperStates {
		frac := float64(counts[s.state]) / n
		if frac < s.p-0.03 || frac > s.p+0.03 {
			t.Errorf("state %s drawn %.3f, want ~%.2f", s.state, frac, s.p)
		}
	}
}

func TestSummarizeQuantiles(t *testing.T) {
	var samples []time.Duration
	for i := 1; i <= 100; i++ {
		samples = append(samples, time.Duration(i)*time.Millisecond)
	}
	s := summarize(samples, time.Second)
	if s.Ops != 100 || s.Max != 100*time.Millisecond {
		t.Fatalf("summarize = %+v", s)
	}
	if s.P50 < 49*time.Millisecond || s.P50 > 52*time.Millisecond {
		t.Errorf("p50 = %v", s.P50)
	}
	if s.P99 < 98*time.Millisecond || s.P99 > 100*time.Millisecond {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.OpsPerSec != 100 {
		t.Errorf("ops/s = %v", s.OpsPerSec)
	}
	if z := summarize(nil, time.Second); z.Ops != 0 {
		t.Errorf("empty summarize = %+v", z)
	}
}

// A miniature end-to-end run: the whole pipeline (batched registration,
// churned heartbeats, fan-out discovery, partition degradation) against a
// real 2-shard registry, small enough for the race detector.
func TestRunSmallFleet(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := Run(ctx, Config{
		Nodes: 2000, Shards: 2, BatchSize: 250,
		HeartbeatRounds: 2, DiscoverOps: 20, Concurrency: 4,
		Partition: true, PartitionShard: 0,
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Register.Ops == 0 || res.Heartbeat.Ops == 0 || res.Discover.Ops != 20 {
		t.Fatalf("phase ops = %+v", res)
	}
	if res.Candidates == 0 {
		t.Fatal("healthy discovery returned no candidates")
	}
	if res.PartitionDiscover == nil || res.PartitionCandidates == 0 {
		t.Fatalf("partition phase missing: %+v", res)
	}
	if res.StaleServes == 0 || res.ShardErrors == 0 {
		t.Fatalf("partition metrics = %+v, want stale serves and shard errors", res)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("ungated run reported violations: %v", res.Violations)
	}
	// The histograms landed in the caller's registry.
	found := false
	for _, fam := range reg.Snapshot() {
		if fam.Name == "fgcs_loadgen_discover_seconds" {
			found = true
		}
	}
	if !found {
		t.Fatal("fgcs_loadgen_discover_seconds not in the supplied obs registry")
	}
}

func TestRunReportsSLOViolations(t *testing.T) {
	res, err := Run(ctx, Config{
		Nodes: 200, Shards: 1, DiscoverOps: 5, Concurrency: 2,
		SLO: SLO{DiscoverP99: time.Nanosecond}, // impossible on purpose
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) == 0 {
		t.Fatal("impossible SLO not reported as violated")
	}
}

func TestRunScalingRows(t *testing.T) {
	rows, err := RunScaling(ctx, Config{Nodes: 500, DiscoverOps: 10, Concurrency: 2}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Shards != 1 || rows[1].Shards != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].SpeedupVs != 1 || rows[1].SpeedupVs <= 0 {
		t.Fatalf("speedups = %+v", rows)
	}
	if _, err := RunScaling(ctx, Config{Nodes: 10}, nil); err == nil {
		t.Fatal("empty shard list accepted")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	if _, err := Run(ctx, Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := Run(ctx, Config{Nodes: 10, Scenario: "no-such-scenario"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestScenarioStateDistribution checks scenario-driven fleets draw from
// the model's stationary occupancy: a proper distribution over the same
// five labels, measurably different from the paper default for a
// low-churn scenario like enterprise.
func TestScenarioStateDistribution(t *testing.T) {
	dist, err := stateDistribution("enterprise")
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != len(paperStates) {
		t.Fatalf("distribution over %d states, want %d", len(dist), len(paperStates))
	}
	var sum float64
	for i, s := range dist {
		if s.state != paperStates[i].state {
			t.Errorf("state %d label %q, want %q", i, s.state, paperStates[i].state)
		}
		sum += s.p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("probabilities sum to %v, want 1", sum)
	}
	// An enterprise desktop fleet is mostly available — far more S1+S2
	// mass than the paper's 0.75 would leave noticeable, and certainly
	// not identical to the default table.
	if dist[0].p == paperStates[0].p {
		t.Error("scenario distribution identical to paper default")
	}
}

// TestRunScenarioFleet runs the pipeline end to end with a scenario-drawn
// fleet.
func TestRunScenarioFleet(t *testing.T) {
	res, err := Run(ctx, Config{
		Nodes: 300, Shards: 1, DiscoverOps: 5, Concurrency: 2,
		Scenario: "enterprise",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Register.Ops == 0 || res.Discover.Ops != 5 {
		t.Fatalf("phase ops = %+v", res)
	}
}
