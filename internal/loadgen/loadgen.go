package loadgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/ishare"
	"repro/internal/markov"
	"repro/internal/obs"
)

// paperStates is the stationary availability-state distribution the fleet
// is drawn from, approximating the paper's empirical occupancy of the
// five-state model (most machines fully available, a steady tail of
// loaded and revoked ones). Churn re-draws from the same distribution,
// which keeps the fleet's aggregate behavior stationary — the ergodic
// framing under which the paper's multi-state availability model is fit.
var paperStates = []stateProb{
	{"S1(full)", 0.55},
	{"S2(lowest-priority)", 0.20},
	{"S3(cpu-unavail)", 0.10},
	{"S4(mem-thrash)", 0.05},
	{"S5(machine-unavail)", 0.10},
}

// stateProb pairs an availability state label with its stationary
// probability.
type stateProb struct {
	state string
	p     float64
}

func drawState(rng *rand.Rand, dist []stateProb) string {
	u := rng.Float64()
	acc := 0.0
	for _, s := range dist {
		acc += s.p
		if u < acc {
			return s.state
		}
	}
	return dist[len(dist)-1].state
}

// stateDistribution resolves the distribution fleet states are drawn
// from: the paper's empirical occupancy by default, or the renewal-reward
// stationary distribution of a markov scenario model when scenario names
// one.
func stateDistribution(scenario string) ([]stateProb, error) {
	if scenario == "" {
		return paperStates, nil
	}
	d, err := markov.ScenarioStateDistribution(scenario)
	if err != nil {
		return nil, err
	}
	dist := make([]stateProb, len(paperStates))
	for i, s := range paperStates {
		dist[i] = stateProb{state: s.state, p: d[i]}
	}
	return dist, nil
}

// LatencyStats summarizes one operation class from its raw samples.
type LatencyStats struct {
	Ops       int           `json:"ops"`
	P50       time.Duration `json:"p50_ns"`
	P90       time.Duration `json:"p90_ns"`
	P99       time.Duration `json:"p99_ns"`
	Max       time.Duration `json:"max_ns"`
	OpsPerSec float64       `json:"ops_per_sec"`
}

func summarize(samples []time.Duration, wall time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	q := func(p float64) time.Duration {
		i := int(p*float64(len(samples)-1) + 0.5)
		return samples[i]
	}
	s := LatencyStats{
		Ops: len(samples),
		P50: q(0.50), P90: q(0.90), P99: q(0.99),
		Max: samples[len(samples)-1],
	}
	if wall > 0 {
		s.OpsPerSec = float64(len(samples)) / wall.Seconds()
	}
	return s
}

// Result is the outcome of one load run.
type Result struct {
	Nodes  int `json:"nodes"`
	Shards int `json:"shards"`
	// Register and Heartbeat are per-batch-request latencies; Discover is
	// per fan-out Candidates call over all shards.
	Register  LatencyStats `json:"register"`
	Heartbeat LatencyStats `json:"heartbeat"`
	Discover  LatencyStats `json:"discover"`
	// PartitionDiscover is the discovery phase repeated with one shard
	// partitioned (nil when the phase is disabled).
	PartitionDiscover *LatencyStats `json:"partition_discover,omitempty"`
	// Candidates is the candidate count of the last healthy discovery.
	Candidates int `json:"candidates"`
	// PartitionCandidates is the candidate count with the shard cut off —
	// nonzero proves the stale-cache path kept the lost shard's slice.
	PartitionCandidates int `json:"partition_candidates,omitempty"`
	// Forecast is the per-query latency of the forecast phase (zero when
	// the phase is disabled); ForecastKnown counts nodes the last query
	// returned known forecasts for.
	Forecast      LatencyStats `json:"forecast,omitempty"`
	ForecastKnown int          `json:"forecast_known,omitempty"`
	// StaleServes/ShardErrors/GossipServes snapshot the broker's recovery
	// counters after the partition phase.
	StaleServes  int `json:"stale_serves"`
	ShardErrors  int `json:"shard_errors"`
	GossipServes int `json:"gossip_serves"`
	// CrashDiscover is the discovery phase repeated with one shard
	// SIGKILL-crashed and a breaker-armed broker (nil when disabled).
	CrashDiscover *LatencyStats `json:"crash_discover,omitempty"`
	// CrashCandidates is the candidate count during the outage — the
	// dead shard's slice comes from the stale cache.
	CrashCandidates int `json:"crash_candidates,omitempty"`
	// RecoverySeconds is how long the crashed shard took from restart to
	// serving its WAL-recovered state again.
	RecoverySeconds float64 `json:"recovery_seconds,omitempty"`
	// RecoveredNodes is how many fleet members the restarted shard served
	// immediately after recovery, before any re-registration.
	RecoveredNodes int `json:"recovered_nodes,omitempty"`
	// BreakerOpens/BreakerShortCircuits snapshot the crash broker's
	// circuit-breaker counters after the crash phase.
	BreakerOpens         int `json:"breaker_opens,omitempty"`
	BreakerShortCircuits int `json:"breaker_short_circuits,omitempty"`
	// Violations lists every SLO the run missed (empty = pass).
	Violations []string `json:"violations,omitempty"`
}

// runMetrics are the obs-exported histograms of a run.
type runMetrics struct {
	register  *obs.Histogram
	heartbeat *obs.Histogram
	discover  *obs.Histogram
	forecast  *obs.Histogram
	fleet     *obs.Gauge
}

func newRunMetrics(r *obs.Registry) *runMetrics {
	buckets := obs.ExpBuckets(0.0005, 2, 14) // 0.5 ms .. ~4 s
	return &runMetrics{
		register:  r.Histogram("fgcs_loadgen_register_seconds", "latency of one register_batch request", buckets),
		heartbeat: r.Histogram("fgcs_loadgen_heartbeat_seconds", "latency of one heartbeat_batch request", buckets),
		discover:  r.Histogram("fgcs_loadgen_discover_seconds", "latency of one fan-out discovery", buckets),
		forecast:  r.Histogram("fgcs_loadgen_forecast_seconds", "latency of one batched forecast query", buckets),
		fleet:     r.Gauge("fgcs_loadgen_fleet_nodes", "simulated nodes registered by the driver"),
	}
}

// simNode is one simulated fleet member: protocol-level only, no listener.
type simNode struct {
	name  string
	addr  string
	state string
	load  float64
	gen   int64
	shard int
}

// forEach runs fn(i) for i in [0, n) across the given number of workers.
func forEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Run executes one load run against a freshly started in-process sharded
// registry: register the fleet in batches, sweep heartbeats with state
// churn, measure ranked fan-out discovery, and (optionally) repeat
// discovery with one shard partitioned. It returns the measured result;
// SLO violations are reported in Result.Violations, not as an error.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	met := newRunMetrics(reg)

	regOpt := ishare.RegistryOptions{TTL: cfg.TTL, MaxInflight: cfg.MaxInflight}
	if cfg.WALDir != "" {
		regOpt.WAL = &ishare.WALOptions{Dir: cfg.WALDir}
	}
	if cfg.Forecast {
		regOpt.Forecast = &ishare.ForecastOptions{Scale: cfg.ForecastScale}
	}
	sharded, err := ishare.NewShardedRegistryWithOptions(cfg.Shards, regOpt)
	if err != nil {
		return nil, err
	}
	defer sharded.Close()
	addrs := sharded.Addrs()
	inj := chaos.New(cfg.Seed)

	// Build the fleet: names, fake addresses (these nodes are never
	// dialed — digest ranking is the whole point), states drawn from the
	// paper's occupancy or the configured scenario model.
	dist, err := stateDistribution(cfg.Scenario)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fleet := make([]*simNode, cfg.Nodes)
	for i := range fleet {
		fleet[i] = &simNode{
			name:  fmt.Sprintf("sim-%07d", i),
			addr:  fmt.Sprintf("10.%d.%d.%d:7", i>>16&0xff, i>>8&0xff, i&0xff),
			state: drawState(rng, dist),
			load:  rng.Float64(),
			gen:   1,
		}
		fleet[i].shard = sharded.Owner(fleet[i].name)
	}

	// Group into shard-routed batches once; register and heartbeat reuse
	// the grouping.
	var batches [][]*simNode
	perShard := make([][]*simNode, cfg.Shards)
	for _, n := range fleet {
		perShard[n.shard] = append(perShard[n.shard], n)
	}
	for _, nodes := range perShard {
		for off := 0; off < len(nodes); off += cfg.BatchSize {
			end := off + cfg.BatchSize
			if end > len(nodes) {
				end = len(nodes)
			}
			batches = append(batches, nodes[off:end])
		}
	}

	client := &ishare.Client{Shards: addrs, Dialer: inj, Timeout: 10 * time.Second}
	result := &Result{Nodes: cfg.Nodes, Shards: cfg.Shards}

	// Phase 1: register the fleet.
	regSamples := make([]time.Duration, len(batches))
	regStart := time.Now()
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	forEach(cfg.Concurrency, len(batches), func(i int) {
		batch := batches[i]
		ds := make([]ishare.NodeDigest, len(batch))
		now := time.Now().UnixMilli()
		for j, n := range batch {
			ds[j] = ishare.NodeDigest{Name: n.name, Addr: n.addr, State: n.state, Load: n.load, Gen: n.gen, UnixMS: now}
		}
		t0 := time.Now()
		if err := client.RegisterBatch(ctx, addrs[batch[0].shard], ds); err != nil {
			fail(fmt.Errorf("loadgen: register batch %d: %w", i, err))
			return
		}
		regSamples[i] = time.Since(t0)
		met.register.Observe(regSamples[i].Seconds())
	})
	if firstErr != nil {
		return nil, firstErr
	}
	met.fleet.Set(float64(cfg.Nodes))
	result.Register = summarize(regSamples, time.Since(regStart))

	// Phase 2: heartbeat sweeps with availability churn.
	var hbSamples []time.Duration
	hbStart := time.Now()
	for round := 0; round < cfg.HeartbeatRounds; round++ {
		churn := int(cfg.ChurnFraction * float64(cfg.Nodes))
		for k := 0; k < churn; k++ {
			n := fleet[rng.Intn(len(fleet))]
			if s := drawState(rng, dist); s != n.state {
				n.state = s
				n.load = rng.Float64()
				n.gen++
			}
		}
		roundSamples := make([]time.Duration, len(batches))
		forEach(cfg.Concurrency, len(batches), func(i int) {
			batch := batches[i]
			ds := make([]ishare.NodeDigest, len(batch))
			now := time.Now().UnixMilli()
			for j, n := range batch {
				ds[j] = ishare.NodeDigest{Name: n.name, State: n.state, Load: n.load, Gen: n.gen, UnixMS: now}
			}
			t0 := time.Now()
			missing, err := client.HeartbeatBatch(ctx, addrs[batch[0].shard], ds)
			if err != nil {
				fail(fmt.Errorf("loadgen: heartbeat batch %d: %w", i, err))
				return
			}
			if len(missing) > 0 {
				fail(fmt.Errorf("loadgen: heartbeat batch %d: %d registered nodes unknown to their shard", i, len(missing)))
				return
			}
			roundSamples[i] = time.Since(t0)
			met.heartbeat.Observe(roundSamples[i].Seconds())
		})
		if firstErr != nil {
			return nil, firstErr
		}
		hbSamples = append(hbSamples, roundSamples...)
	}
	result.Heartbeat = summarize(hbSamples, time.Since(hbStart))

	// Phase 3: ranked fan-out discovery, the latency that bounds every
	// placement decision.
	broker := &ishare.Broker{
		Client:        client,
		DiscoverLimit: cfg.DiscoverLimit,
		CacheTTL:      time.Minute,
		Obs:           reg,
	}
	discSamples := make([]time.Duration, cfg.DiscoverOps)
	discStart := time.Now()
	var lastCands int
	var candMu sync.Mutex
	forEach(cfg.Concurrency, cfg.DiscoverOps, func(i int) {
		t0 := time.Now()
		cands, err := broker.Candidates(ctx)
		if err != nil {
			fail(fmt.Errorf("loadgen: discovery %d: %w", i, err))
			return
		}
		discSamples[i] = time.Since(t0)
		met.discover.Observe(discSamples[i].Seconds())
		candMu.Lock()
		lastCands = len(cands)
		candMu.Unlock()
	})
	if firstErr != nil {
		return nil, firstErr
	}
	result.Discover = summarize(discSamples, time.Since(discStart))
	result.Candidates = lastCands
	if lastCands == 0 {
		return nil, fmt.Errorf("loadgen: healthy discovery returned no candidates from a %d-node fleet", cfg.Nodes)
	}

	// Phase 3b (optional): batched forecast queries. Every shard's online
	// forecaster has been fed the fleet's digest transitions by the
	// register and heartbeat phases; each query asks one shard for horizon
	// survival forecasts of a slice of its own nodes.
	if cfg.Forecast {
		fcSamples := make([]time.Duration, cfg.ForecastOps)
		fcStart := time.Now()
		var fcKnown int
		var fcMu sync.Mutex
		forEach(cfg.Concurrency, cfg.ForecastOps, func(i int) {
			shard := i % cfg.Shards
			nodes := perShard[shard]
			if len(nodes) == 0 {
				return
			}
			off := (i * cfg.ForecastNames) % len(nodes)
			end := off + cfg.ForecastNames
			if end > len(nodes) {
				end = len(nodes)
			}
			names := make([]string, 0, end-off)
			for _, n := range nodes[off:end] {
				names = append(names, n.name)
			}
			t0 := time.Now()
			infos, err := client.Forecast(ctx, addrs[shard], names, cfg.ForecastHorizon)
			if err != nil {
				fail(fmt.Errorf("loadgen: forecast query %d: %w", i, err))
				return
			}
			fcSamples[i] = time.Since(t0)
			met.forecast.Observe(fcSamples[i].Seconds())
			known := 0
			for _, fi := range infos {
				if fi.Known {
					known++
				}
			}
			fcMu.Lock()
			fcKnown = known
			fcMu.Unlock()
		})
		if firstErr != nil {
			return nil, firstErr
		}
		result.Forecast = summarize(fcSamples, time.Since(fcStart))
		result.ForecastKnown = fcKnown
		if fcKnown == 0 {
			return nil, fmt.Errorf("loadgen: forecast phase saw no known nodes — digest transitions never reached the forecaster")
		}
	}

	// Phase 4 (optional): the same discovery load with one shard cut off.
	// The broker must keep answering — the lost shard's slice comes from
	// its stale cache — and latency must stay bounded, which requires a
	// no-retry client (retrying into a partition buys nothing).
	if cfg.Partition {
		partClient := &ishare.Client{Shards: addrs, Dialer: inj, Timeout: 2 * time.Second,
			Retry: ishare.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Seed: cfg.Seed}}
		partBroker := &ishare.Broker{
			Client:        partClient,
			DiscoverLimit: cfg.DiscoverLimit,
			CacheTTL:      time.Minute,
			Obs:           reg,
		}
		// Warm every shard's cache, then cut one off.
		if _, err := partBroker.Candidates(ctx); err != nil {
			return nil, fmt.Errorf("loadgen: warming partition broker: %w", err)
		}
		inj.Partition(addrs[cfg.PartitionShard])
		partSamples := make([]time.Duration, cfg.DiscoverOps)
		partStart := time.Now()
		var partCands int
		forEach(cfg.Concurrency, cfg.DiscoverOps, func(i int) {
			t0 := time.Now()
			cands, err := partBroker.Candidates(ctx)
			if err != nil {
				fail(fmt.Errorf("loadgen: partitioned discovery %d: %w", i, err))
				return
			}
			partSamples[i] = time.Since(t0)
			met.discover.Observe(partSamples[i].Seconds())
			candMu.Lock()
			partCands = len(cands)
			candMu.Unlock()
		})
		inj.Heal(addrs[cfg.PartitionShard])
		if firstErr != nil {
			return nil, firstErr
		}
		ps := summarize(partSamples, time.Since(partStart))
		result.PartitionDiscover = &ps
		result.PartitionCandidates = partCands
		if partCands == 0 {
			return nil, fmt.Errorf("loadgen: partitioned discovery returned no candidates (stale cache failed)")
		}
		bm := partBroker.Metrics()
		result.StaleServes = bm.StaleServes
		result.ShardErrors = bm.ShardErrors
		result.GossipServes = bm.GossipServes
		if bm.StaleServes == 0 {
			return nil, fmt.Errorf("loadgen: partition phase never hit the stale-cache path")
		}
	}

	// Phase 5 (optional): crash recovery. Kill one shard outright — no
	// drain, no final fsync — and measure three things: discovery latency
	// through the outage behind a circuit breaker, the time from restart
	// back to serving the WAL-recovered state, and whether a full
	// heartbeat sweep after recovery finds a single acked registration
	// missing (it must not: durability is the phase's whole claim).
	if cfg.CrashRestart {
		crashClient := &ishare.Client{Shards: addrs, Dialer: inj, Timeout: 2 * time.Second,
			Retry: ishare.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Seed: cfg.Seed}}
		crashBroker := &ishare.Broker{
			Client:           crashClient,
			DiscoverLimit:    cfg.DiscoverLimit,
			CacheTTL:         time.Minute,
			BreakerThreshold: 3,
			BreakerCooldown:  30 * time.Second, // stays open for the whole outage
			Obs:              reg,
		}
		if _, err := crashBroker.Candidates(ctx); err != nil {
			return nil, fmt.Errorf("loadgen: warming crash broker: %w", err)
		}
		if err := sharded.CrashShard(cfg.CrashShard); err != nil {
			return nil, fmt.Errorf("loadgen: crashing shard %d: %w", cfg.CrashShard, err)
		}
		crashSamples := make([]time.Duration, cfg.DiscoverOps)
		crashStart := time.Now()
		var crashCands int
		forEach(cfg.Concurrency, cfg.DiscoverOps, func(i int) {
			t0 := time.Now()
			cands, err := crashBroker.Candidates(ctx)
			if err != nil {
				fail(fmt.Errorf("loadgen: during-crash discovery %d: %w", i, err))
				return
			}
			crashSamples[i] = time.Since(t0)
			met.discover.Observe(crashSamples[i].Seconds())
			candMu.Lock()
			crashCands = len(cands)
			candMu.Unlock()
		})
		if firstErr != nil {
			return nil, firstErr
		}
		cs := summarize(crashSamples, time.Since(crashStart))
		result.CrashDiscover = &cs
		result.CrashCandidates = crashCands
		if crashCands == 0 {
			return nil, fmt.Errorf("loadgen: during-crash discovery returned no candidates (stale cache failed)")
		}
		bm := crashBroker.Metrics()
		result.BreakerOpens = bm.BreakerOpens
		result.BreakerShortCircuits = bm.BreakerShortCircuits

		// Restart and poll until the shard serves again.
		recoverStart := time.Now()
		if err := sharded.RestartShard(cfg.CrashShard); err != nil {
			return nil, fmt.Errorf("loadgen: restarting shard %d: %w", cfg.CrashShard, err)
		}
		recovered := -1
		for time.Since(recoverStart) < 30*time.Second {
			nodes, err := crashClient.ListShard(ctx, addrs[cfg.CrashShard], 0)
			if err == nil {
				recovered = len(nodes)
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if recovered < 0 {
			return nil, fmt.Errorf("loadgen: shard %d not serving 30s after restart", cfg.CrashShard)
		}
		result.RecoverySeconds = time.Since(recoverStart).Seconds()
		result.RecoveredNodes = recovered
		if recovered == 0 {
			return nil, fmt.Errorf("loadgen: restarted shard %d recovered no state from its WAL", cfg.CrashShard)
		}

		// The re-register herd that isn't: a full heartbeat sweep right
		// after recovery must find zero acked registrations missing.
		forEach(cfg.Concurrency, len(batches), func(i int) {
			batch := batches[i]
			ds := make([]ishare.NodeDigest, len(batch))
			now := time.Now().UnixMilli()
			for j, n := range batch {
				ds[j] = ishare.NodeDigest{Name: n.name, State: n.state, Load: n.load, Gen: n.gen, UnixMS: now}
			}
			missing, err := client.HeartbeatBatch(ctx, addrs[batch[0].shard], ds)
			if err != nil {
				fail(fmt.Errorf("loadgen: post-recovery heartbeat batch %d: %w", i, err))
				return
			}
			if len(missing) > 0 {
				fail(fmt.Errorf("loadgen: post-recovery heartbeat batch %d: shard lost %d acked registrations", i, len(missing)))
			}
		})
		if firstErr != nil {
			return nil, firstErr
		}
	}

	result.Violations = cfg.SLO.check(result)
	return result, nil
}

// check compares a result against the objectives, returning one line per
// missed SLO.
func (s SLO) check(r *Result) []string {
	var v []string
	add := func(name string, got, want time.Duration) {
		if want > 0 && got > want {
			v = append(v, fmt.Sprintf("%s %v exceeds SLO %v", name, got, want))
		}
	}
	add("register p99", r.Register.P99, s.RegisterP99)
	add("heartbeat p99", r.Heartbeat.P99, s.HeartbeatP99)
	add("discover p50", r.Discover.P50, s.DiscoverP50)
	add("discover p99", r.Discover.P99, s.DiscoverP99)
	add("forecast p99", r.Forecast.P99, s.ForecastP99)
	if r.PartitionDiscover != nil {
		// The degraded path answers from cache; holding it to the same p99
		// keeps "resilient" from meaning "slow".
		add("partitioned discover p99", r.PartitionDiscover.P99, s.DiscoverP99)
	}
	if r.CrashDiscover != nil {
		if s.Recovery > 0 && r.RecoverySeconds > s.Recovery.Seconds() {
			v = append(v, fmt.Sprintf("crash recovery %.3fs exceeds SLO %v", r.RecoverySeconds, s.Recovery))
		}
		if s.CrashDiscoverFactor > 0 && r.Discover.P99 > 0 {
			bound := time.Duration(float64(r.Discover.P99) * s.CrashDiscoverFactor)
			if r.CrashDiscover.P99 > bound {
				v = append(v, fmt.Sprintf("during-crash discover p99 %v exceeds %.1fx healthy p99 (%v)",
					r.CrashDiscover.P99, s.CrashDiscoverFactor, bound))
			}
		}
	}
	return v
}

// ScalingResult is one row of a shard-scaling sweep.
type ScalingResult struct {
	Shards    int          `json:"shards"`
	Discover  LatencyStats `json:"discover"`
	SpeedupVs float64      `json:"speedup_vs_first"`
}

// RunScaling measures discovery throughput for each shard count on an
// otherwise identical configuration, reporting each row's throughput
// speedup over the first. On multi-core hosts the fan-out path should
// scale discovery throughput close to the shard count; on a single core
// the rows mostly measure protocol overhead (see EXPERIMENTS.md).
func RunScaling(ctx context.Context, cfg Config, shardCounts []int) ([]ScalingResult, error) {
	if len(shardCounts) == 0 {
		return nil, fmt.Errorf("loadgen: scaling sweep needs at least one shard count")
	}
	var out []ScalingResult
	for _, n := range shardCounts {
		c := cfg
		c.Shards = n
		c.Partition = false
		c.CrashRestart = false
		c.Obs = nil // fresh private registry per row: histograms must not mix
		res, err := Run(ctx, c)
		if err != nil {
			return nil, fmt.Errorf("loadgen: scaling row %d shards: %w", n, err)
		}
		row := ScalingResult{Shards: n, Discover: res.Discover}
		if len(out) > 0 && out[0].Discover.OpsPerSec > 0 {
			row.SpeedupVs = res.Discover.OpsPerSec / out[0].Discover.OpsPerSec
		} else {
			row.SpeedupVs = 1
		}
		out = append(out, row)
	}
	return out, nil
}
