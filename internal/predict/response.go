package predict

import (
	"math"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// ResponseEstimator turns a count predictor into an expected-response-time
// estimate for a compute-bound guest job under the paper's failure model
// (a failure kills the job; it restarts from scratch after a delay).
// Response time — not throughput — is the paper's stated performance
// metric for batch guests, and survival probability alone cannot rank
// machines for jobs long enough that failure is near-certain everywhere;
// the expected response can.
//
// The estimator treats unavailability as a nonhomogeneous Poisson process
// whose hourly rate is the predictor's expected count for that hour, and
// averages the restart recursion over deterministic Monte Carlo runs.
type ResponseEstimator struct {
	// P supplies per-window expected failure counts.
	P Predictor
	// Samples is the number of Monte Carlo runs (default 200).
	Samples int
	// RetryDelay is the pause before a restart (default 1 minute).
	RetryDelay time.Duration
	// Horizon caps a single estimate; runs that have not completed by
	// start+Horizon are censored at the horizon (default 14 days).
	Horizon time.Duration
	// Seed makes estimates reproducible.
	Seed int64
}

func (e *ResponseEstimator) samples() int {
	if e.Samples <= 0 {
		return 200
	}
	return e.Samples
}

func (e *ResponseEstimator) retry() time.Duration {
	if e.RetryDelay <= 0 {
		return time.Minute
	}
	return e.RetryDelay
}

func (e *ResponseEstimator) horizon() time.Duration {
	if e.Horizon <= 0 {
		return 14 * sim.Day
	}
	return e.Horizon
}

// Expected estimates the mean response time of a job needing the given
// CPU work, started at start on machine m.
func (e *ResponseEstimator) Expected(m trace.MachineID, start sim.Time, work time.Duration) time.Duration {
	n := e.samples()
	rng := sim.NewSource(e.Seed).Stream("response-estimator")
	var total time.Duration
	for i := 0; i < n; i++ {
		total += e.sampleRun(rng, m, start, work)
	}
	return total / time.Duration(n)
}

// sampleRun simulates one restart trajectory against sampled failures.
func (e *ResponseEstimator) sampleRun(rng interface{ Float64() float64 }, m trace.MachineID, start sim.Time, work time.Duration) time.Duration {
	now := start
	deadline := start + e.horizon()
	for now < deadline {
		fail, failed := e.sampleFailure(rng, m, now, work)
		if !failed {
			end := now + work
			if end > deadline {
				return e.horizon()
			}
			return end - start
		}
		now = fail + e.retry()
	}
	return e.horizon()
}

// sampleFailure draws the first failure within [now, now+work) from the
// predictor's hourly rates (nonhomogeneous Poisson via per-hour thinning),
// returning the failure time and whether one occurred.
func (e *ResponseEstimator) sampleFailure(rng interface{ Float64() float64 }, m trace.MachineID, now sim.Time, work time.Duration) (sim.Time, bool) {
	remaining := work
	t := now
	for remaining > 0 {
		step := time.Hour
		if remaining < step {
			step = remaining
		}
		rate := e.P.PredictCount(m, sim.Window{Start: t, End: t + time.Hour})
		// Probability of at least one failure within this step.
		p := 1 - math.Exp(-rate*float64(step)/float64(time.Hour))
		if rng.Float64() < p {
			// Uniform position within the step.
			return t + time.Duration(rng.Float64()*float64(step)), true
		}
		t += step
		remaining -= step
	}
	return 0, false
}
