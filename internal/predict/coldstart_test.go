package predict

import (
	"math"
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/sim"
	"repro/internal/trace"
)

// coldStartTrace builds a small two-machine trace with a few events on
// machine 0 and none on machine 1, spanning two weeks from a Monday.
func coldStartTrace() *trace.Trace {
	tr := trace.New(sim.Window{Start: 0, End: 14 * sim.Day}, sim.Calendar{}, 2)
	for d := 0; d < 10; d++ {
		start := sim.Time(d)*sim.Day + 9*time.Hour
		tr.Add(trace.Event{Machine: 0, Start: start, End: start + 30*time.Minute, State: availability.S3})
	}
	tr.Sort()
	return tr
}

// TestPredictorColdStartEdges pins the documented defined values every
// predictor must return on empty or absent history: no NaN, no panic, and
// the specific no-information fallbacks.
func TestPredictorColdStartEdges(t *testing.T) {
	tr := coldStartTrace()

	newTrained := func(p Predictor) Predictor { p.Train(tr); return p }

	tests := []struct {
		name string
		p    Predictor
		m    trace.MachineID
		w    sim.Window
		// wantCount/wantSurvival of math.NaN() means "any finite value in
		// range" (checked generically below); concrete values are pinned
		// exactly.
		wantCount    float64
		wantSurvival float64
	}{
		{
			name: "history-window untrained",
			p:    &HistoryWindow{},
			m:    0,
			w:    sim.Window{Start: 15 * sim.Day, End: 15*sim.Day + time.Hour},
			wantCount: 0, wantSurvival: 0.5,
		},
		{
			name: "history-window machine absent from training",
			p:    newTrained(&HistoryWindow{}),
			m:    trace.MachineID(tr.Machines), // one past the fleet
			w:    sim.Window{Start: 14*sim.Day + 9*time.Hour, End: 14*sim.Day + 12*time.Hour},
			wantCount: 0, wantSurvival: 0.5,
		},
		{
			name: "history-window negative machine id",
			p:    newTrained(&HistoryWindow{}),
			m:    -1,
			w:    sim.Window{Start: 14*sim.Day + 9*time.Hour, End: 14*sim.Day + 12*time.Hour},
			wantCount: 0, wantSurvival: 0.5,
		},
		{
			name: "history-window window before any history",
			p:    newTrained(&HistoryWindow{}),
			m:    0,
			w:    sim.Window{Start: 0, End: time.Hour}, // first day: no prior same-type day
			wantCount: 0, wantSurvival: 0.5,
		},
		{
			name: "history-window min-history-days unmet",
			p:    newTrained(&HistoryWindow{MinHistoryDays: 1000}),
			m:    0,
			w:    sim.Window{Start: 14*sim.Day + 9*time.Hour, End: 14*sim.Day + 10*time.Hour},
			wantCount: 0, wantSurvival: 0.5,
		},
		{
			name: "ewma-daily untrained",
			p:    &EWMADaily{},
			m:    0,
			w:    sim.Window{Start: 15 * sim.Day, End: 15*sim.Day + time.Hour},
			wantCount: 0, wantSurvival: 0.5,
		},
		{
			name: "ewma-daily before the first full day",
			p:    newTrained(&EWMADaily{}),
			m:    0,
			w:    sim.Window{Start: 6 * time.Hour, End: 9 * time.Hour}, // day 0: no prior day exists
			wantCount: 0, wantSurvival: 0.5,
		},
		{
			name: "ewma-daily machine absent from training",
			p:    newTrained(&EWMADaily{}),
			m:    trace.MachineID(tr.Machines),
			w:    sim.Window{Start: 10*sim.Day + 9*time.Hour, End: 10*sim.Day + 10*time.Hour},
			wantCount: 0, wantSurvival: 0.5,
		},
		{
			name: "ewma-daily negative machine id",
			p:    newTrained(&EWMADaily{}),
			m:    -1,
			w:    sim.Window{Start: 10*sim.Day + 9*time.Hour, End: 10*sim.Day + 10*time.Hour},
			wantCount: 0, wantSurvival: 0.5,
		},
		{
			name: "ewma-daily machine with no events",
			p:    newTrained(&EWMADaily{}),
			m:    1,
			w:    sim.Window{Start: 10*sim.Day + 9*time.Hour, End: 10*sim.Day + 10*time.Hour},
			wantCount: 0, wantSurvival: 1, // ten failure-free history days: certain survival
		},
		{
			name: "semi-markov untrained",
			p:    &SemiMarkov{},
			m:    0,
			w:    sim.Window{Start: 15 * sim.Day, End: 15*sim.Day + time.Hour},
			wantCount: 0, wantSurvival: 0.5,
		},
		{
			name: "semi-markov no prior event and query before span start",
			p:    newTrained(&SemiMarkov{}),
			m:    1,
			w:    sim.Window{Start: -2 * sim.Day, End: -2*sim.Day + time.Hour},
			wantCount: math.NaN(), wantSurvival: math.NaN(), // any defined in-range value
		},
		{
			name: "last-day untrained",
			p:    &LastDay{},
			m:    0,
			w:    sim.Window{Start: 15 * sim.Day, End: 15*sim.Day + time.Hour},
			wantCount: 0, wantSurvival: 0.75,
		},
		{
			name: "global-rate empty span",
			p: func() Predictor {
				g := &GlobalRate{}
				g.Train(trace.New(sim.Window{}, sim.Calendar{}, 1))
				return g
			}(),
			m: 0,
			w: sim.Window{Start: 0, End: time.Hour},
			wantCount: 0, wantSurvival: 1,
		},
	}

	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			count := tc.p.PredictCount(tc.m, tc.w)
			surv := tc.p.PredictSurvival(tc.m, tc.w)
			if math.IsNaN(count) || math.IsInf(count, 0) || count < 0 {
				t.Fatalf("PredictCount = %v, want a finite non-negative value", count)
			}
			if math.IsNaN(surv) || surv < 0 || surv > 1 {
				t.Fatalf("PredictSurvival = %v, want a value in [0, 1]", surv)
			}
			if !math.IsNaN(tc.wantCount) && count != tc.wantCount {
				t.Errorf("PredictCount = %v, want %v", count, tc.wantCount)
			}
			if !math.IsNaN(tc.wantSurvival) && surv != tc.wantSurvival {
				t.Errorf("PredictSurvival = %v, want %v", surv, tc.wantSurvival)
			}
		})
	}
}

// TestSemiMarkovAgeClamp pins the age fallbacks directly: no prior event
// measures from the span start, and a pre-span query clamps at zero.
func TestSemiMarkovAgeClamp(t *testing.T) {
	tr := coldStartTrace()
	s := &SemiMarkov{}
	s.Train(tr)

	if got := s.age(1, 3*sim.Day); got != 3*sim.Day {
		t.Errorf("age with no prior event = %v, want %v (measured from span start)", got, 3*sim.Day)
	}
	if got := s.age(1, -5*sim.Day); got != 0 {
		t.Errorf("age before the span start = %v, want 0", got)
	}
	// After an event the age restarts at the event end.
	end := 9*sim.Day + 9*time.Hour + 30*time.Minute
	if got := s.age(0, end+2*time.Hour); got != 2*time.Hour {
		t.Errorf("age after last event = %v, want %v", got, 2*time.Hour)
	}
}

// TestSemiMarkovAgeSpanStartBoundary pins the boundary the audit fixed: an
// event whose End coincides exactly with the span start counts as a prior
// renewal, and the age it implies equals the no-prior-event fallback (both
// measure from the span start), so the two code paths must agree exactly.
func TestSemiMarkovAgeSpanStartBoundary(t *testing.T) {
	span := sim.Window{Start: 2 * sim.Day, End: 16 * sim.Day}
	tr := trace.New(span, sim.Calendar{}, 2)
	// Machine 0: an event ending exactly at the span start.
	tr.Add(trace.Event{Machine: 0, Start: span.Start - 30*time.Minute, End: span.Start, State: availability.S3})
	// Machine 1: no events at all.
	tr.Sort()
	s := &SemiMarkov{}
	s.Train(tr)

	at := span.Start + 5*time.Hour
	withEvent := s.age(0, at)
	withoutEvent := s.age(1, at)
	if withEvent != 5*time.Hour {
		t.Errorf("age with event ending at span start = %v, want %v", withEvent, 5*time.Hour)
	}
	if withEvent != withoutEvent {
		t.Errorf("span-start boundary: age with event = %v, without = %v, want equal", withEvent, withoutEvent)
	}
	// Querying exactly at the event end (== span start) is age zero from
	// either path, never negative.
	if got := s.age(0, span.Start); got != 0 {
		t.Errorf("age at the span start = %v, want 0", got)
	}
}

// TestSemiMarkovSurvivalSingleEvaluation pins PredictSurvival against the
// ECDF identity it implements: S(age+d)/S(age) when mass remains past the
// age, the unconditional S(d) fallback otherwise. This is the contract the
// double-evaluation cleanup must preserve.
func TestSemiMarkovSurvivalSingleEvaluation(t *testing.T) {
	tr := coldStartTrace()
	s := &SemiMarkov{}
	s.Train(tr)

	ecdf := tr.IntervalECDF(sim.Weekday)
	if ecdf.N() == 0 {
		t.Fatal("fixture produced no weekday intervals")
	}

	// In-support age: conditional survival, computed once.
	w := sim.Window{Start: 3*sim.Day + 10*time.Hour, End: 3*sim.Day + 12*time.Hour}
	age := s.age(0, w.Start).Hours()
	if sa := ecdf.Survival(age); sa > 0 {
		want := ecdf.Survival(age+w.Duration().Hours()) / sa
		if got := s.PredictSurvival(0, w); got != want {
			t.Errorf("PredictSurvival = %v, want conditional survival %v", got, want)
		}
	} else {
		t.Fatalf("fixture age %v hours already out of support; pick an earlier window", age)
	}

	// Out-of-support age (querying past the span end pushes machine 1's
	// failure-free age beyond the longest trained interval, the 336h full
	// span): unconditional fallback.
	w2 := sim.Window{Start: 16*sim.Day + 9*time.Hour, End: 16*sim.Day + 10*time.Hour}
	age2 := s.age(1, w2.Start).Hours()
	if sa := ecdf.Survival(age2); sa != 0 {
		t.Fatalf("expected out-of-support age for machine 1, got Survival(%v) = %v", age2, sa)
	}
	if got, want := s.PredictSurvival(1, w2), ecdf.Survival(w2.Duration().Hours()); got != want {
		t.Errorf("fallback PredictSurvival = %v, want unconditional %v", got, want)
	}
}

// TestEWMAColdStartTransitionsToInformed verifies the cold-start prior
// yields to real history as soon as one full prior day exists.
func TestEWMAColdStartTransitionsToInformed(t *testing.T) {
	tr := coldStartTrace()
	e := &EWMADaily{}
	e.Train(tr)
	// Day 1, same clock window as the daily event: one prior day of
	// history with one event -> survival strictly informed (< 1, != 0.5 prior).
	w := sim.Window{Start: sim.Day + 9*time.Hour, End: sim.Day + 10*time.Hour}
	surv := e.PredictSurvival(0, w)
	if surv >= 1 || math.IsNaN(surv) {
		t.Fatalf("informed survival = %v, want < 1", surv)
	}
	if count := e.PredictCount(0, w); count != 1 {
		t.Fatalf("one event on the one prior day: PredictCount = %v, want 1", count)
	}
}
