package predict

import (
	"fmt"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// LearningPoint is one point of a history-length learning curve.
type LearningPoint struct {
	TrainDays int
	Score     Score
}

// LearningCurve measures how a predictor's accuracy evolves as its history
// grows, quantifying the paper's core observation that recent history is
// what makes availability predictable: if the daily pattern is real, a few
// same-type days of history should capture most of the signal, with little
// gained beyond a few weeks.
//
// All points are evaluated on the same test period (the trace after the
// largest training prefix) so the scores are directly comparable.
func LearningCurve(tr *trace.Trace, mk func() Predictor, trainDays []int, cfg EvalConfig) ([]LearningPoint, error) {
	cfg = cfg.withDefaults()
	if len(trainDays) == 0 {
		return nil, fmt.Errorf("predict: learning curve needs at least one training length")
	}
	maxTrain := trainDays[0]
	for _, d := range trainDays {
		if d <= 0 {
			return nil, fmt.Errorf("predict: non-positive training length %d", d)
		}
		if d > maxTrain {
			maxTrain = d
		}
	}
	testStart := tr.Span.Start + sim.Time(maxTrain)*sim.Day
	if testStart >= tr.Span.End {
		return nil, fmt.Errorf("predict: longest training prefix (%d days) consumes the trace", maxTrain)
	}

	// Shared test windows and truths, through the indexed query layer.
	truth := hourlyFirstTruth{hc: tr.BuildHourlyCounts(), ix: tr.BuildIndex()}
	type sample struct {
		m trace.MachineID
		w sim.Window
	}
	var samples []sample
	var truthCounts []float64
	var truthFail []bool
	machines := tr.Machines
	if cfg.MaxMachines > 0 && cfg.MaxMachines < machines {
		machines = cfg.MaxMachines
	}
	for m := 0; m < machines; m++ {
		id := trace.MachineID(m)
		for start := testStart; start+cfg.Window <= tr.Span.End; start += cfg.Stride {
			w := sim.Window{Start: start, End: start + cfg.Window}
			samples = append(samples, sample{id, w})
			truthCounts = append(truthCounts, float64(truth.CountInWindow(id, w)))
			truthFail = append(truthFail, truth.AnyOverlap(id, w))
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("predict: no test windows beyond %d training days", maxTrain)
	}

	var out []LearningPoint
	for _, days := range trainDays {
		p := mk()
		// Train only on the last `days` days before the shared test start,
		// so every point predicts the same future from a window of the
		// recent past (the paper's "recent history").
		histStart := testStart - sim.Time(days)*sim.Day
		hist := tr.Filter(func(e trace.Event) bool {
			return e.Start >= histStart && e.Start < testStart
		})
		hist.Span = sim.Window{Start: histStart, End: testStart}
		p.Train(hist)

		predCounts := make([]float64, len(samples))
		failProb := make([]float64, len(samples))
		for i, s := range samples {
			predCounts[i] = p.PredictCount(s.m, s.w)
			failProb[i] = 1 - p.PredictSurvival(s.m, s.w)
		}
		out = append(out, LearningPoint{
			TrainDays: days,
			Score: Score{
				Name:    p.Name(),
				MAE:     stats.MAE(predCounts, truthCounts),
				RMSE:    stats.RMSE(predCounts, truthCounts),
				Brier:   stats.Brier(failProb, truthFail),
				Windows: len(samples),
			},
		})
	}
	return out, nil
}

// FormatLearningCurve renders the curve.
func FormatLearningCurve(points []LearningPoint) string {
	var b strings.Builder
	b.WriteString("Learning curve — accuracy vs history length\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "train-days", "MAE", "RMSE", "Brier")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12d %8.3f %8.3f %8.3f\n", p.TrainDays, p.Score.MAE, p.Score.RMSE, p.Score.Brier)
	}
	return b.String()
}
