package predict

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// TestHourlyMatrixScoresIdentical pins the acceptance criterion for the
// hourly-count acceleration: predictor scores with the matrix enabled must
// be bit-identical to the pre-matrix per-day binary-search path, for both
// the default hour-aligned config and a deliberately misaligned one that
// forces the index fallback.
func TestHourlyMatrixScoresIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed simulation")
	}
	tr := testbedTrace(t)
	configs := []EvalConfig{
		{TrainDays: 28, Window: 3 * time.Hour},
		{TrainDays: 28, Window: 3 * time.Hour, Stride: 90 * time.Minute},
		{TrainDays: 21, Window: 100 * time.Minute},
	}
	for _, cfg := range configs {
		fast, err := Evaluate(tr, []Predictor{&HistoryWindow{}, &HistoryWindow{Trim: 0.1}, &LastDay{}, &EWMADaily{}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := Evaluate(tr, []Predictor{
			&HistoryWindow{DisableHourlyMatrix: true},
			&HistoryWindow{Trim: 0.1, DisableHourlyMatrix: true},
			&LastDay{},
			&EWMADaily{},
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fast.Scores {
			// Names differ only via struct config, not output; compare values.
			f, s := fast.Scores[i], slow.Scores[i]
			if f.MAE != s.MAE || f.RMSE != s.RMSE || f.Brier != s.Brier || f.Windows != s.Windows {
				t.Errorf("config %+v predictor %s: matrix scores %+v, linear scores %+v",
					cfg, f.Name, f, s)
			}
		}
	}
}

// TestHourlyMatrixPredictionsIdentical compares raw predictions, not just
// aggregate scores, across aligned and misaligned windows.
func TestHourlyMatrixPredictionsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed simulation")
	}
	tr := testbedTrace(t)
	cut := tr.Span.End - 14*24*time.Hour
	hist := tr.Before(cut)

	fast := &HistoryWindow{}
	slow := &HistoryWindow{DisableHourlyMatrix: true}
	fast.Train(hist)
	slow.Train(hist)

	windows := []sim.Window{
		{Start: cut, End: cut + 3*time.Hour},                                  // hour-aligned
		{Start: cut + 30*time.Minute, End: cut + 2*time.Hour},                 // misaligned start
		{Start: cut + 5*time.Hour, End: cut + 5*time.Hour + 100*time.Minute},  // misaligned end
		{Start: cut + sim.Day, End: cut + sim.Day + 24*time.Hour},             // day-long
		{Start: cut + 7*time.Hour + time.Nanosecond, End: cut + 10*time.Hour}, // off by a tick
	}
	for m := 0; m < tr.Machines; m++ {
		id := trace.MachineID(m)
		for _, w := range windows {
			pf := fast.PredictCount(id, w)
			ps := slow.PredictCount(id, w)
			if pf != ps {
				t.Fatalf("machine %d window %v: matrix %v, linear %v", m, w, pf, ps)
			}
			sf := fast.PredictSurvival(id, w)
			ss := slow.PredictSurvival(id, w)
			if sf != ss {
				t.Fatalf("machine %d window %v survival: matrix %v, linear %v", m, w, sf, ss)
			}
		}
	}
	if !reflect.DeepEqual(fast.Name(), slow.Name()) {
		t.Errorf("names diverged: %q vs %q", fast.Name(), slow.Name())
	}
}
