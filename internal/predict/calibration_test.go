package predict

import (
	"strings"
	"testing"
	"time"
)

func TestWindowSensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed simulation")
	}
	tr := testbedTrace(t)
	scores, err := WindowSensitivity(tr,
		func() Predictor { return &HistoryWindow{Trim: 0.1} },
		[]time.Duration{time.Hour, 3 * time.Hour, 6 * time.Hour, 12 * time.Hour},
		EvalConfig{TrainDays: 28})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != 4 {
		t.Fatalf("got %d scores", len(scores))
	}
	// Longer windows contain more events, so the absolute count error
	// grows with the window — monotonically within tolerance.
	for i := 1; i < len(scores); i++ {
		if scores[i].MAE < scores[i-1].MAE*0.8 {
			t.Errorf("MAE should grow with window: %v then %v",
				scores[i-1].MAE, scores[i].MAE)
		}
	}
	// Every window length must stay better than a coin flip on failures.
	for _, s := range scores {
		if s.Brier >= 0.25 {
			t.Errorf("%s: Brier %v should beat a coin flip", s.Name, s.Brier)
		}
	}
	if out := FormatWindowSensitivity(scores); !strings.Contains(out, "@1h0m0s") {
		t.Errorf("format missing window labels:\n%s", out)
	}
	if _, err := WindowSensitivity(tr, func() Predictor { return &HistoryWindow{} }, nil, EvalConfig{}); err == nil {
		t.Error("empty window list accepted")
	}
}

func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed simulation")
	}
	tr := testbedTrace(t)
	bins, err := Calibration(tr, &HistoryWindow{Trim: 0.1},
		EvalConfig{TrainDays: 28, Window: 3 * time.Hour}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 10 {
		t.Fatalf("got %d bins", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
		if b.Count > 0 {
			if b.Predicted < b.Lo-1e-9 || b.Predicted > b.Hi+1e-9 {
				t.Errorf("bin [%v,%v): mean prediction %v outside bin", b.Lo, b.Hi, b.Predicted)
			}
			if b.Observed < 0 || b.Observed > 1 {
				t.Errorf("observed frequency %v outside [0,1]", b.Observed)
			}
		}
	}
	if total == 0 {
		t.Fatal("no test windows binned")
	}
	// The paper predictor should be reasonably calibrated.
	if ece := CalibrationError(bins); ece > 0.15 {
		t.Errorf("expected calibration error %v, want < 0.15\n%s", ece, FormatCalibration(bins))
	}
	if s := FormatCalibration(bins); !strings.Contains(s, "calibration error") {
		t.Error("format missing ECE")
	}
}

func TestCalibrationValidation(t *testing.T) {
	tr := periodicTrace(7, 1)
	if _, err := Calibration(tr, &HistoryWindow{}, EvalConfig{TrainDays: 30, Window: time.Hour}, 10); err == nil {
		t.Error("training beyond the trace accepted")
	}
	// bins <= 0 defaults rather than failing.
	bins, err := Calibration(tr, &HistoryWindow{}, EvalConfig{TrainDays: 5, Window: time.Hour}, -3)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) != 10 {
		t.Errorf("default bins = %d, want 10", len(bins))
	}
}

func TestCalibrationErrorEmpty(t *testing.T) {
	if CalibrationError(nil) != 0 {
		t.Error("empty diagram should have zero ECE")
	}
}
