package predict

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/sim"
	"repro/internal/testbed"
	"repro/internal/trace"
)

// periodicTrace builds a fully regular synthetic history: one event per
// weekday at 10:00 and one per weekend day at 14:00, on each machine.
func periodicTrace(days, machines int) *trace.Trace {
	cal := sim.Calendar{}
	tr := trace.New(sim.Window{End: sim.Time(days) * sim.Day}, cal, machines)
	for d := 0; d < days; d++ {
		dayStart := sim.Time(d) * sim.Day
		hour := 10 * time.Hour
		if cal.DayType(dayStart) == sim.Weekend {
			hour = 14 * time.Hour
		}
		for m := 0; m < machines; m++ {
			tr.Add(trace.Event{
				Machine: trace.MachineID(m),
				Start:   dayStart + hour,
				End:     dayStart + hour + 10*time.Minute,
				State:   availability.S3,
			})
		}
	}
	tr.Sort()
	return tr
}

func TestHistoryWindowLearnsDailyPattern(t *testing.T) {
	tr := periodicTrace(28, 2)
	h := &HistoryWindow{}
	h.Train(tr)
	// Predicting the 10-11 window on a future weekday (day 28 = Monday of
	// week 5): every history weekday had exactly one event there.
	day := sim.Time(28) * sim.Day
	w := sim.Window{Start: day + 10*time.Hour, End: day + 11*time.Hour}
	if got := h.PredictCount(0, w); got < 0.99 || got > 1.01 {
		t.Errorf("weekday 10-11 count = %v, want ~1", got)
	}
	// The same clock window on a weekday is failure-prone...
	if s := h.PredictSurvival(0, w); s > 0.2 {
		t.Errorf("weekday 10-11 survival = %v, want near 0", s)
	}
	// ...while 12-13 is clean.
	w2 := sim.Window{Start: day + 12*time.Hour, End: day + 13*time.Hour}
	if got := h.PredictCount(0, w2); got != 0 {
		t.Errorf("weekday 12-13 count = %v, want 0", got)
	}
	if s := h.PredictSurvival(0, w2); s < 0.8 {
		t.Errorf("weekday 12-13 survival = %v, want near 1", s)
	}
	// Weekend windows use weekend history: 10-11 is clean on weekends.
	sat := sim.Time(33) * sim.Day // day 33 = Saturday of week 5
	w3 := sim.Window{Start: sat + 10*time.Hour, End: sat + 11*time.Hour}
	if got := h.PredictCount(0, w3); got != 0 {
		t.Errorf("weekend 10-11 count = %v, want 0 (weekday pattern must not leak)", got)
	}
	w4 := sim.Window{Start: sat + 14*time.Hour, End: sat + 15*time.Hour}
	if got := h.PredictCount(0, w4); got < 0.99 {
		t.Errorf("weekend 14-15 count = %v, want ~1", got)
	}
}

func TestHistoryWindowUntrained(t *testing.T) {
	h := &HistoryWindow{}
	w := sim.Window{Start: 0, End: time.Hour}
	if h.PredictCount(0, w) != 0 {
		t.Error("untrained count should be 0")
	}
	if s := h.PredictSurvival(0, w); s != 0.5 {
		t.Errorf("untrained survival = %v, want uninformed 0.5", s)
	}
}

func TestHistoryWindowTrimmedAbsorbsIrregularDay(t *testing.T) {
	tr := periodicTrace(40, 1)
	// Inject one wildly irregular Monday with 30 extra events at 10:00.
	day0 := sim.Time(0) * sim.Day
	for i := 0; i < 30; i++ {
		tr.Add(trace.Event{
			Machine: 0,
			Start:   day0 + 10*time.Hour + time.Duration(i)*time.Minute,
			End:     day0 + 10*time.Hour + time.Duration(i)*time.Minute + 30*time.Second,
			State:   availability.S3,
		})
	}
	tr.Sort()
	plain := &HistoryWindow{}
	plain.Train(tr)
	trimmed := &HistoryWindow{Trim: 0.15}
	trimmed.Train(tr)
	day := sim.Time(42) * sim.Day // future Monday
	w := sim.Window{Start: day + 10*time.Hour, End: day + 11*time.Hour}
	p, tm := plain.PredictCount(0, w), trimmed.PredictCount(0, w)
	if !(tm < p) {
		t.Errorf("trimmed (%v) should discount the outlier vs plain (%v)", tm, p)
	}
	if tm < 0.9 || tm > 1.5 {
		t.Errorf("trimmed estimate = %v, want near the regular 1/day", tm)
	}
}

func TestHistoryWindowPooling(t *testing.T) {
	tr := periodicTrace(14, 4)
	pooled := &HistoryWindow{PoolMachines: true}
	pooled.Train(tr)
	day := sim.Time(14) * sim.Day
	w := sim.Window{Start: day + 10*time.Hour, End: day + 11*time.Hour}
	if got := pooled.PredictCount(0, w); got < 0.99 || got > 1.01 {
		t.Errorf("pooled count = %v, want ~1 (all machines identical)", got)
	}
}

func TestGlobalRate(t *testing.T) {
	tr := periodicTrace(10, 1) // 10 events over 240 hours
	g := &GlobalRate{}
	g.Train(tr)
	w := sim.Window{Start: 0, End: 24 * time.Hour}
	if got := g.PredictCount(0, w); got < 0.99 || got > 1.01 {
		t.Errorf("global rate daily count = %v, want ~1", got)
	}
	s := g.PredictSurvival(0, w)
	if s < 0.3 || s > 0.45 {
		t.Errorf("survival = %v, want exp(-1) ~ 0.37", s)
	}
	// Unknown machine has zero rate.
	if g.PredictCount(5, w) != 0 {
		t.Error("unknown machine should predict 0")
	}
}

func TestLastDay(t *testing.T) {
	tr := periodicTrace(7, 1)
	l := &LastDay{}
	l.Train(tr)
	// Tuesday 10-11 copies Monday 10-11 (one event).
	day := sim.Time(1) * sim.Day
	w := sim.Window{Start: day + 10*time.Hour, End: day + 11*time.Hour}
	if got := l.PredictCount(0, w); got != 1 {
		t.Errorf("last-day count = %v, want 1", got)
	}
	// Window before any history predicts 0.
	w0 := sim.Window{Start: 10 * time.Hour, End: 11 * time.Hour}
	if got := l.PredictCount(0, w0); got != 0 {
		t.Errorf("pre-history count = %v, want 0", got)
	}
}

func TestEWMADaily(t *testing.T) {
	tr := periodicTrace(21, 1)
	e := &EWMADaily{Alpha: 0.5}
	e.Train(tr)
	day := sim.Time(21) * sim.Day // Monday after 3 weeks
	w := sim.Window{Start: day + 10*time.Hour, End: day + 11*time.Hour}
	got := e.PredictCount(0, w)
	// Weekdays have 1, weekends 0 in this window; EWMA ends on Sunday so
	// the estimate is diluted but positive.
	if got <= 0 || got > 1 {
		t.Errorf("EWMA count = %v, want in (0, 1]", got)
	}
	if s := e.PredictSurvival(0, w); s <= 0 || s >= 1 {
		t.Errorf("EWMA survival = %v", s)
	}
}

func TestSemiMarkov(t *testing.T) {
	tr := periodicTrace(28, 1)
	s := &SemiMarkov{}
	s.Train(tr)
	day := sim.Time(28) * sim.Day
	w := sim.Window{Start: day + time.Hour, End: day + 2*time.Hour}
	surv := s.PredictSurvival(0, w)
	if surv < 0 || surv > 1 {
		t.Fatalf("survival = %v outside [0,1]", surv)
	}
	if c := s.PredictCount(0, w); c <= 0 {
		t.Errorf("renewal count = %v, want positive", c)
	}
	// Longer windows can only reduce survival.
	w2 := sim.Window{Start: day + time.Hour, End: day + 12*time.Hour}
	if s2 := s.PredictSurvival(0, w2); s2 > surv+1e-9 {
		t.Errorf("survival must be monotone in window length: %v then %v", surv, s2)
	}
}

func TestEvalConfigValidation(t *testing.T) {
	tr := periodicTrace(7, 1)
	if _, err := Evaluate(tr, DefaultPredictors(), EvalConfig{TrainDays: -1, Window: time.Hour}); err == nil {
		t.Error("negative train days accepted")
	}
	if _, err := Evaluate(tr, DefaultPredictors(), EvalConfig{TrainDays: 30, Window: time.Hour}); err == nil {
		t.Error("training longer than the trace accepted")
	}
}

// sharedTestbedTrace memoizes a moderately sized testbed trace.
var (
	tbOnce sync.Once
	tbTr   *trace.Trace
	tbErr  error
)

func testbedTrace(t *testing.T) *trace.Trace {
	t.Helper()
	tbOnce.Do(func() {
		cfg := testbed.DefaultConfig()
		cfg.Machines = 8
		cfg.Days = 70
		tbTr, tbErr = testbed.Run(cfg)
	})
	if tbErr != nil {
		t.Fatal(tbErr)
	}
	return tbTr
}

// TestPredictabilityClaim is the paper's bottom line (Section 5.3): daily
// patterns repeat, so the history-window predictor must beat both the
// time-of-day-blind baseline and the naive persistence baseline.
func TestPredictabilityClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed simulation")
	}
	tr := testbedTrace(t)
	ev, err := Evaluate(tr, DefaultPredictors(), EvalConfig{TrainDays: 28, Window: 3 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	hw, ok1 := ev.ScoreByName("history-window")
	gr, ok2 := ev.ScoreByName("global-rate")
	ld, ok3 := ev.ScoreByName("last-day")
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing scores in %+v", ev.Scores)
	}
	if !(hw.MAE < gr.MAE) {
		t.Errorf("history-window MAE %v should beat global-rate %v", hw.MAE, gr.MAE)
	}
	if !(hw.MAE < ld.MAE) {
		t.Errorf("history-window MAE %v should beat last-day %v", hw.MAE, ld.MAE)
	}
	if !(hw.Brier < 0.25) {
		t.Errorf("history-window Brier %v should beat a coin flip", hw.Brier)
	}
	if !(hw.Brier < ld.Brier) {
		t.Errorf("history-window Brier %v should beat last-day %v", hw.Brier, ld.Brier)
	}
	if !strings.Contains(ev.Format(), "history-window") {
		t.Error("Format missing predictors")
	}
}

// TestSurvivalProbabilitiesInRange property-checks every predictor.
func TestSurvivalProbabilitiesInRange(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed simulation")
	}
	tr := testbedTrace(t)
	cut := tr.Span.Start + 28*sim.Day
	hist := tr.Before(cut)
	for _, p := range DefaultPredictors() {
		p.Train(hist)
		for d := 0; d < 10; d++ {
			start := cut + sim.Time(d)*7*time.Hour
			w := sim.Window{Start: start, End: start + 2*time.Hour}
			for m := 0; m < tr.Machines; m += 3 {
				s := p.PredictSurvival(trace.MachineID(m), w)
				if s < 0 || s > 1 {
					t.Fatalf("%s survival %v outside [0,1]", p.Name(), s)
				}
				if c := p.PredictCount(trace.MachineID(m), w); c < 0 {
					t.Fatalf("%s negative count %v", p.Name(), c)
				}
			}
		}
	}
}
