package predict

import (
	"strings"
	"testing"
	"time"
)

func TestLearningCurveImprovesWithHistory(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed simulation")
	}
	tr := testbedTrace(t)
	points, err := LearningCurve(tr,
		func() Predictor { return &HistoryWindow{} },
		[]int{7, 14, 28},
		EvalConfig{Window: 3 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("got %d points", len(points))
	}
	// Same test windows everywhere.
	for _, p := range points[1:] {
		if p.Score.Windows != points[0].Score.Windows {
			t.Fatalf("test windows differ: %d vs %d", p.Score.Windows, points[0].Score.Windows)
		}
	}
	// More history should not hurt much: 28 days must be at least as good
	// as 7 days within a small tolerance (the daily pattern is stable, so
	// the curve should flatten, not invert).
	if points[2].Score.MAE > points[0].Score.MAE*1.05 {
		t.Errorf("MAE got worse with history: 7d %v -> 28d %v",
			points[0].Score.MAE, points[2].Score.MAE)
	}
	// And a single week must already beat an untrained predictor's
	// uninformed Brier of 0.25 — the paper's "recent history" claim.
	if points[0].Score.Brier >= 0.25 {
		t.Errorf("one week of history should beat a coin flip: Brier %v",
			points[0].Score.Brier)
	}
	if s := FormatLearningCurve(points); !strings.Contains(s, "train-days") {
		t.Error("format missing header")
	}
}

func TestLearningCurveValidation(t *testing.T) {
	tr := periodicTrace(14, 1)
	mk := func() Predictor { return &HistoryWindow{} }
	if _, err := LearningCurve(tr, mk, nil, EvalConfig{Window: time.Hour}); err == nil {
		t.Error("empty training lengths accepted")
	}
	if _, err := LearningCurve(tr, mk, []int{0}, EvalConfig{Window: time.Hour}); err == nil {
		t.Error("zero training length accepted")
	}
	if _, err := LearningCurve(tr, mk, []int{20}, EvalConfig{Window: time.Hour}); err == nil {
		t.Error("training longer than trace accepted")
	}
}
