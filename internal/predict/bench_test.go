package predict

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

func benchHistory(b *testing.B) *trace.Trace {
	b.Helper()
	return periodicTrace(70, 20)
}

func BenchmarkHistoryWindowPredictCount(b *testing.B) {
	h := &HistoryWindow{}
	h.Train(benchHistory(b))
	day := sim.Time(70) * sim.Day
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := sim.Window{
			Start: day + time.Duration(i%20)*time.Hour,
			End:   day + time.Duration(i%20)*time.Hour + 3*time.Hour,
		}
		h.PredictCount(trace.MachineID(i%20), w)
	}
}

func BenchmarkHistoryWindowPredictSurvival(b *testing.B) {
	h := &HistoryWindow{Trim: 0.1}
	h.Train(benchHistory(b))
	day := sim.Time(70) * sim.Day
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := sim.Window{Start: day + 10*time.Hour, End: day + 13*time.Hour}
		h.PredictSurvival(trace.MachineID(i%20), w)
	}
}

func BenchmarkSemiMarkovPredictSurvival(b *testing.B) {
	s := &SemiMarkov{}
	s.Train(benchHistory(b))
	day := sim.Time(70) * sim.Day
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := sim.Window{Start: day + time.Duration(i%24)*time.Hour, End: day + time.Duration(i%24)*time.Hour + 3*time.Hour}
		s.PredictSurvival(trace.MachineID(i%20), w)
	}
}

// BenchmarkEvaluateHistoryWindow measures the full evaluation loop for the
// paper's main predictor pair; the Linear variant disables the hourly count
// matrix and is the pre-optimization baseline the speedup is claimed
// against.
func BenchmarkEvaluateHistoryWindow(b *testing.B) {
	tr := benchHistory(b)
	cfg := EvalConfig{TrainDays: 28, Window: 3 * time.Hour}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(tr, []Predictor{&HistoryWindow{}, &HistoryWindow{Trim: 0.1}}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateHistoryWindowLinear(b *testing.B) {
	tr := benchHistory(b)
	cfg := EvalConfig{TrainDays: 28, Window: 3 * time.Hour}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		preds := []Predictor{
			&HistoryWindow{DisableHourlyMatrix: true},
			&HistoryWindow{Trim: 0.1, DisableHourlyMatrix: true},
		}
		if _, err := Evaluate(tr, preds, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateAllPredictors(b *testing.B) {
	tr := benchHistory(b)
	cfg := EvalConfig{TrainDays: 28, Window: 3 * time.Hour, MaxMachines: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Evaluate(tr, DefaultPredictors(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
