package predict

import (
	"testing"
	"time"

	"repro/internal/testbed"
)

// TestEnterprisePredictability checks the paper's Section 6 expectation:
// "we expect that data collected on the proposed testbeds will present
// similar predictability" — the history-window predictor should keep its
// edge on the enterprise-desktop workload, whose daily pattern is even
// sharper than the student lab's.
func TestEnterprisePredictability(t *testing.T) {
	if testing.Short() {
		t.Skip("testbed simulation")
	}
	cfg := testbed.DefaultConfig()
	cfg.Machines = 8
	cfg.Days = 70
	cfg.Workload = testbed.EnterpriseParams()
	tr, err := testbed.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(tr, DefaultPredictors(), EvalConfig{TrainDays: 28, Window: 3 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	hw, _ := ev.ScoreByName("history-window")
	gr, _ := ev.ScoreByName("global-rate")
	if !(hw.MAE < gr.MAE) {
		t.Errorf("enterprise: history-window MAE %v should beat global-rate %v\n%s",
			hw.MAE, gr.MAE, ev.Format())
	}
	if !(hw.Brier < gr.Brier) {
		t.Errorf("enterprise: history-window Brier %v should beat global-rate %v",
			hw.Brier, gr.Brier)
	}
	// The sharper office-hours pattern should give the pattern-aware
	// predictor a LARGER relative edge than the lab's (sanity bound only:
	// at least 20% better MAE).
	if !(hw.MAE < 0.8*gr.MAE) {
		t.Errorf("enterprise edge too small: hw %v vs gr %v", hw.MAE, gr.MAE)
	}
}
