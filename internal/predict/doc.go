// Package predict implements the availability-prediction algorithms the
// paper motivates (Sections 5.3 and 6 list them as the goal of the trace
// study and as future work): given a history of unavailability events, a
// predictor estimates, for an arbitrary future time window on a machine,
// (a) how many unavailability occurrences to expect and (b) the probability
// that a guest job running through the window survives.
//
// The flagship predictor is HistoryWindow, the algorithm the paper sketches
// in Section 5.3: "predict resource availability over an arbitrary future
// time window ... using history data for the corresponding time windows
// from previous weekdays or weekends", with robust statistics ("one
// approach is to use statistics on history trace to alleviate the effects
// of irregular data") realized as a trimmed mean. Baselines — a global
// Poisson rate, last-day copying, an EWMA over days, and a semi-Markov
// renewal model over availability-interval lengths — calibrate how much of
// the predictability actually comes from the daily pattern.
//
// The evaluation harness replays a trace: predictors train on a prefix and
// are scored on count error (MAE/RMSE) and survival-probability quality
// (Brier score) over sliding windows of the test period.
package predict
