package predict

import (
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/sim"
	"repro/internal/trace"
)

// flatRatePredictor returns a constant hourly failure rate per machine.
type flatRatePredictor struct {
	rates map[trace.MachineID]float64
}

func (f *flatRatePredictor) Name() string          { return "flat" }
func (f *flatRatePredictor) Train(tr *trace.Trace) {}
func (f *flatRatePredictor) PredictCount(m trace.MachineID, w sim.Window) float64 {
	return f.rates[m] * w.Duration().Hours()
}
func (f *flatRatePredictor) PredictSurvival(m trace.MachineID, w sim.Window) float64 {
	return 1
}

func TestResponseEstimatorCleanMachine(t *testing.T) {
	e := &ResponseEstimator{P: &flatRatePredictor{rates: map[trace.MachineID]float64{}}, Seed: 1}
	got := e.Expected(0, 0, 3*time.Hour)
	if got != 3*time.Hour {
		t.Errorf("failure-free expected response = %v, want exactly the work", got)
	}
}

func TestResponseEstimatorOrdersMachinesByRate(t *testing.T) {
	p := &flatRatePredictor{rates: map[trace.MachineID]float64{
		0: 0.5, // one failure every 2 hours
		1: 0.05,
	}}
	e := &ResponseEstimator{P: p, Seed: 2, Samples: 400}
	bad := e.Expected(0, 0, 4*time.Hour)
	good := e.Expected(1, 0, 4*time.Hour)
	if !(good < bad) {
		t.Errorf("low-rate machine (%v) should beat high-rate (%v)", good, bad)
	}
	// The failure-prone estimate must exceed the pure work substantially.
	if bad < 5*time.Hour {
		t.Errorf("expected response on a 0.5/h machine = %v, want well above 4h", bad)
	}
}

func TestResponseEstimatorHorizonCensors(t *testing.T) {
	p := &flatRatePredictor{rates: map[trace.MachineID]float64{0: 10}} // hopeless
	e := &ResponseEstimator{P: p, Seed: 3, Samples: 50, Horizon: 2 * sim.Day}
	got := e.Expected(0, 0, 10*time.Hour)
	if got > 2*sim.Day {
		t.Errorf("estimate %v exceeds the horizon", got)
	}
	if got < sim.Day {
		t.Errorf("hopeless machine should censor near the horizon, got %v", got)
	}
}

func TestResponseEstimatorDeterministic(t *testing.T) {
	p := &flatRatePredictor{rates: map[trace.MachineID]float64{0: 0.2}}
	a := (&ResponseEstimator{P: p, Seed: 9}).Expected(0, 0, 5*time.Hour)
	b := (&ResponseEstimator{P: p, Seed: 9}).Expected(0, 0, 5*time.Hour)
	if a != b {
		t.Errorf("same seed gave %v and %v", a, b)
	}
}

func TestResponseEstimatorWithHistoryWindow(t *testing.T) {
	// Machine 0 fails every weekday at 10:00; a 4-hour job started at
	// 08:00 almost surely dies, while one started at 11:00 is safe, so the
	// expected response at 08:00 must be larger.
	tr := trace.New(sim.Window{End: 28 * sim.Day}, sim.Calendar{}, 1)
	for d := 0; d < 28; d++ {
		dayStart := sim.Time(d) * sim.Day
		if (sim.Calendar{}).DayType(dayStart) != sim.Weekday {
			continue
		}
		tr.Add(trace.Event{
			Machine: 0,
			Start:   dayStart + 10*time.Hour,
			End:     dayStart + 10*time.Hour + 10*time.Minute,
			State:   availability.S3,
		})
	}
	tr.Sort()
	hw := &HistoryWindow{}
	hw.Train(tr)
	e := &ResponseEstimator{P: hw, Seed: 4, Samples: 300}
	day := sim.Time(28) * sim.Day // a Monday
	risky := e.Expected(0, day+8*time.Hour, 4*time.Hour)
	safe := e.Expected(0, day+11*time.Hour, 4*time.Hour)
	if !(safe < risky) {
		t.Errorf("post-failure start (%v) should beat pre-failure start (%v)", safe, risky)
	}
	if safe != 4*time.Hour {
		t.Errorf("safe window should complete in exactly 4h, got %v", safe)
	}
}
