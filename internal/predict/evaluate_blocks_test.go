package predict

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/testbed"
	"repro/internal/trace"
)

// TestEvaluateBlocksMatchesEvaluate pins the block-routed evaluation:
// reading training history through the pruned scan and ground truth through
// the lazy BlockIndex must score every predictor identically to the
// in-memory path.
func TestEvaluateBlocksMatchesEvaluate(t *testing.T) {
	cfg := testbed.DefaultConfig()
	cfg.Machines = 6
	cfg.Days = 40
	cfg.Seed = 1234
	tr, err := testbed.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ecfg := EvalConfig{TrainDays: 21, Window: 3 * time.Hour}

	want, err := Evaluate(tr, DefaultPredictors(), ecfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.WriteBlocks(&buf, &trace.BlockWriterOptions{BlockSize: 64}); err != nil {
		t.Fatal(err)
	}
	bf, err := trace.NewBlockFileBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateBlocks(bf, DefaultPredictors(), ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Scores, got.Scores) {
		t.Errorf("EvaluateBlocks scores differ:\n got %+v\nwant %+v", got.Scores, want.Scores)
	}
}
