package predict

import (
	"math"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Predictor estimates future unavailability from a trained history.
type Predictor interface {
	// Name identifies the predictor in evaluation reports.
	Name() string
	// Train fits the predictor to a history trace. It may be called again
	// to refit on a longer history.
	Train(tr *trace.Trace)
	// PredictCount estimates the number of unavailability occurrences for
	// machine m in the window w.
	PredictCount(m trace.MachineID, w sim.Window) float64
	// PredictSurvival estimates the probability that no unavailability
	// overlaps w on machine m (a guest running through w survives).
	PredictSurvival(m trace.MachineID, w sim.Window) float64
}

// HistoryWindow is the paper's proposed predictor: the expected event count
// for a window is a robust average of the counts observed in the same
// clock window on previous days of the same type (weekday/weekend), and
// survival is the empirical fraction of those history days that were
// failure-free in the window.
type HistoryWindow struct {
	// Trim is the trimmed-mean fraction (0 = plain mean). The paper
	// suggests robust statistics to absorb irregular days.
	Trim float64
	// PoolMachines, when set, aggregates history across machines (useful
	// when a single machine's history is short); predictions are then
	// per-machine averages of the pool.
	PoolMachines bool
	// MinHistoryDays guards against predicting from almost no data.
	MinHistoryDays int
	// DisableHourlyMatrix forces every history count through the O(log n)
	// index search instead of the hourly count matrix. The matrix and the
	// search agree exactly (the equivalence tests pin this); the switch
	// exists so benchmarks can measure the unaccelerated path.
	DisableHourlyMatrix bool

	tr *trace.Trace
	ix *trace.Index
	hc *trace.HourlyCounts

	// Last historyCounts query, memoized: evaluation asks PredictCount and
	// PredictSurvival for the same (machine, window) back to back, and the
	// history scan is the expensive part of both. Not goroutine-safe.
	memoM      trace.MachineID
	memoW      sim.Window
	memoCounts []float64
	memoValid  bool
}

// Name implements Predictor.
func (h *HistoryWindow) Name() string {
	if h.Trim > 0 {
		return "history-window(trimmed)"
	}
	return "history-window"
}

// Train implements Predictor.
func (h *HistoryWindow) Train(tr *trace.Trace) {
	h.tr = tr
	h.ix = tr.BuildIndex()
	h.hc = tr.BuildHourlyCounts()
	h.memoValid = false
}

// count answers one history-window count, through the hourly matrix when
// the window is hour-aligned and through the index otherwise. Both paths
// count exactly the same events.
func (h *HistoryWindow) count(m trace.MachineID, w sim.Window) int {
	if !h.DisableHourlyMatrix && h.hc != nil {
		if n, ok := h.hc.CountInWindow(m, w); ok {
			return n
		}
	}
	return h.ix.CountInWindow(m, w)
}

// historyCounts returns the event counts in the clock window matching w on
// every prior same-day-type day, per contributing machine-day.
func (h *HistoryWindow) historyCounts(m trace.MachineID, w sim.Window) []float64 {
	if h.tr == nil {
		return nil
	}
	if h.memoValid && h.memoM == m && h.memoW == w {
		return h.memoCounts
	}
	counts := h.memoCounts[:0]
	ForEachHistoryWindow(h.tr.Calendar, h.tr.Span, w, true, func(hw sim.Window) {
		if h.PoolMachines {
			for mm := 0; mm < h.tr.Machines; mm++ {
				counts = append(counts, float64(h.count(trace.MachineID(mm), hw)))
			}
		} else {
			counts = append(counts, float64(h.count(m, hw)))
		}
	})
	h.memoM, h.memoW, h.memoCounts, h.memoValid = m, w, counts, true
	return counts
}

// known reports whether machine m is part of the trained fleet. A machine
// the predictor never observed has no history at all — distinct from a
// machine observed to be failure-free — so predictions for it fall back to
// the no-information values (count 0, survival 0.5) unless PoolMachines
// aggregates fleet-wide history that applies to any machine.
func (h *HistoryWindow) known(m trace.MachineID) bool {
	if h.PoolMachines {
		return true
	}
	return m >= 0 && int(m) < h.tr.Machines
}

// PredictCount implements Predictor. An untrained predictor or a machine
// outside the trained fleet predicts 0 occurrences (no history to count).
func (h *HistoryWindow) PredictCount(m trace.MachineID, w sim.Window) float64 {
	if h.tr == nil || !h.known(m) {
		return 0
	}
	counts := h.historyCounts(m, w)
	if len(counts) < h.MinHistoryDays || len(counts) == 0 {
		return 0
	}
	if h.Trim > 0 {
		return stats.TrimmedMean(counts, h.Trim)
	}
	return stats.Mean(counts)
}

// PredictSurvival implements Predictor. An untrained predictor, a machine
// outside the trained fleet, or a history shorter than MinHistoryDays all
// answer 0.5 — the documented no-information prior, never NaN.
func (h *HistoryWindow) PredictSurvival(m trace.MachineID, w sim.Window) float64 {
	if h.tr == nil || !h.known(m) {
		return 0.5 // no information
	}
	counts := h.historyCounts(m, w)
	if len(counts) < h.MinHistoryDays || len(counts) == 0 {
		return 0.5 // no information
	}
	// Laplace-smoothed fraction of failure-free history windows.
	free := 0
	for _, c := range counts {
		if c == 0 {
			free++
		}
	}
	return stats.Clamp01((float64(free) + 1) / (float64(len(counts)) + 2))
}

// GlobalRate is the uninformed baseline: a single Poisson rate per machine
// fitted over the whole history, ignoring time of day entirely.
type GlobalRate struct {
	rates map[trace.MachineID]float64 // events per hour
}

// Name implements Predictor.
func (g *GlobalRate) Name() string { return "global-rate" }

// Train implements Predictor.
func (g *GlobalRate) Train(tr *trace.Trace) {
	g.rates = make(map[trace.MachineID]float64)
	hours := tr.Span.Duration().Hours()
	if hours <= 0 {
		return
	}
	for _, e := range tr.Events {
		g.rates[e.Machine] += 1 / hours
	}
}

// PredictCount implements Predictor.
func (g *GlobalRate) PredictCount(m trace.MachineID, w sim.Window) float64 {
	return g.rates[m] * w.Duration().Hours()
}

// PredictSurvival implements Predictor.
func (g *GlobalRate) PredictSurvival(m trace.MachineID, w sim.Window) float64 {
	return math.Exp(-g.PredictCount(m, w))
}

// LastDay copies the count observed in the same clock window one day
// earlier (a naive persistence baseline).
type LastDay struct {
	tr *trace.Trace
	ix *trace.Index
	hc *trace.HourlyCounts
}

// Name implements Predictor.
func (l *LastDay) Name() string { return "last-day" }

// Train implements Predictor.
func (l *LastDay) Train(tr *trace.Trace) {
	l.tr = tr
	l.ix = tr.BuildIndex()
	l.hc = tr.BuildHourlyCounts()
}

// PredictCount implements Predictor.
func (l *LastDay) PredictCount(m trace.MachineID, w sim.Window) float64 {
	if l.tr == nil {
		return 0
	}
	prev := sim.Window{Start: w.Start - sim.Day, End: w.End - sim.Day}
	if prev.Start < l.tr.Span.Start {
		return 0
	}
	if n, ok := l.hc.CountInWindow(m, prev); ok {
		return float64(n)
	}
	return float64(l.ix.CountInWindow(m, prev))
}

// PredictSurvival implements Predictor.
func (l *LastDay) PredictSurvival(m trace.MachineID, w sim.Window) float64 {
	if l.PredictCount(m, w) > 0 {
		return 0.25
	}
	return 0.75
}

// EWMADaily exponentially weights the same-window counts of previous days
// (most recent day heaviest), without separating weekdays from weekends.
type EWMADaily struct {
	// Alpha is the smoothing factor (default 0.3).
	Alpha float64

	tr *trace.Trace
	ix *trace.Index
	hc *trace.HourlyCounts
}

// Name implements Predictor.
func (e *EWMADaily) Name() string { return "ewma-daily" }

// Train implements Predictor.
func (e *EWMADaily) Train(tr *trace.Trace) {
	e.tr = tr
	e.ix = tr.BuildIndex()
	e.hc = tr.BuildHourlyCounts()
}

// known reports whether machine m is part of the trained fleet; an
// unobserved machine has no history, which is distinct from a machine
// observed to be failure-free (see HistoryWindow.known).
func (e *EWMADaily) known(m trace.MachineID) bool {
	return m >= 0 && int(m) < e.tr.Machines
}

// predictCount is PredictCount plus an information flag: ok is false when
// no fully observed prior day contributed (an untrained predictor, a
// machine outside the trained fleet, or a window on the first day of the
// span — the cold-start cases).
func (e *EWMADaily) predictCount(m trace.MachineID, w sim.Window) (float64, bool) {
	if e.tr == nil || !e.known(m) {
		return 0, false
	}
	alpha := e.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	acc := stats.NewEWMA(alpha)
	ForEachHistoryWindow(e.tr.Calendar, e.tr.Span, w, false, func(hw sim.Window) {
		if n, ok := e.hc.CountInWindow(m, hw); ok {
			acc.Add(float64(n))
		} else {
			acc.Add(float64(e.ix.CountInWindow(m, hw)))
		}
	})
	if !acc.Initialized() {
		return 0, false
	}
	return acc.Value(), true
}

// PredictCount implements Predictor. Before the first full day of history
// there is nothing to smooth and the prediction is a defined 0.
func (e *EWMADaily) PredictCount(m trace.MachineID, w sim.Window) float64 {
	v, _ := e.predictCount(m, w)
	return v
}

// PredictSurvival implements Predictor. With at least one full day of
// history it is exp(-expected count); before that — the cold-start case —
// it answers the 0.5 no-information prior rather than a spurious certainty
// of survival (exp(-0) = 1).
func (e *EWMADaily) PredictSurvival(m trace.MachineID, w sim.Window) float64 {
	v, ok := e.predictCount(m, w)
	if !ok {
		return 0.5 // no information
	}
	return stats.Clamp01(math.Exp(-v))
}

// SemiMarkov models availability as a renewal process: it fits the
// empirical distribution of availability-interval lengths per day type and
// predicts survival as the conditional probability that the current
// interval outlives the window, given its age. This is the classic
// availability model from the cluster literature the paper cites, included
// as a structurally different baseline.
type SemiMarkov struct {
	tr    *trace.Trace
	ix    *trace.Index
	ecdfs map[sim.DayType]*stats.ECDF
}

// Name implements Predictor.
func (s *SemiMarkov) Name() string { return "semi-markov" }

// Train implements Predictor.
func (s *SemiMarkov) Train(tr *trace.Trace) {
	s.tr = tr
	s.ix = tr.BuildIndex()
	s.ecdfs = map[sim.DayType]*stats.ECDF{
		sim.Weekday: tr.IntervalECDF(sim.Weekday),
		sim.Weekend: tr.IntervalECDF(sim.Weekend),
	}
}

// age returns how long machine m has been failure-free before t. With no
// prior event the interval is measured from the span start (the machine
// was first observed available); a query before the span start — where no
// observation exists at all — ages the interval 0, never negative, so the
// ECDF lookups downstream stay within the fitted support. An event ending
// exactly at the span start still counts as a prior event: the current
// interval began with that recovery, which coincides with — not precedes —
// the first observation, so the renewal clock restarts there too (the
// resulting age is the same either way; the >= keeps the semantics
// explicit rather than an accident of the subtraction).
func (s *SemiMarkov) age(m trace.MachineID, t sim.Time) time.Duration {
	age := t - s.tr.Span.Start
	if end, ok := s.ix.LastEndBefore(m, t); ok && end >= s.tr.Span.Start {
		age = t - end
	}
	if age < 0 {
		age = 0
	}
	return age
}

// PredictSurvival implements Predictor.
func (s *SemiMarkov) PredictSurvival(m trace.MachineID, w sim.Window) float64 {
	if s.tr == nil {
		return 0.5
	}
	ecdf := s.ecdfs[s.tr.Calendar.DayType(w.Start)]
	if ecdf == nil || ecdf.N() == 0 {
		return 0.5
	}
	age := s.age(m, w.Start).Hours()
	sa := ecdf.Survival(age)
	if sa == 0 {
		// The current interval already outlived every trained interval
		// (common when predicting far past the training prefix); fall
		// back to the unconditional survival of a fresh interval.
		return stats.Clamp01(ecdf.Survival(w.Duration().Hours()))
	}
	// P(X > age+d | X > age), evaluating Survival(age) once rather than
	// again inside ConditionalSurvival.
	return stats.Clamp01(ecdf.Survival(age+w.Duration().Hours()) / sa)
}

// PredictCount implements Predictor.
func (s *SemiMarkov) PredictCount(m trace.MachineID, w sim.Window) float64 {
	if s.tr == nil {
		return 0
	}
	ecdf := s.ecdfs[s.tr.Calendar.DayType(w.Start)]
	if ecdf == nil || ecdf.N() == 0 || ecdf.Mean() <= 0 {
		return 0
	}
	// Renewal-rate approximation: one event per mean interval.
	return w.Duration().Hours() / ecdf.Mean()
}

// DefaultPredictors returns the evaluation lineup: the paper's predictor
// (plain and trimmed) plus every baseline.
func DefaultPredictors() []Predictor {
	return []Predictor{
		&HistoryWindow{},
		&HistoryWindow{Trim: 0.1},
		&GlobalRate{},
		&LastDay{},
		&EWMADaily{},
		&SemiMarkov{},
	}
}
