package predict

import (
	"repro/internal/sim"
)

// ForEachHistoryWindow walks, in calendar-day order, the clock windows
// matching w on prior days within span, calling fn for each fully observed
// history window. It is the single definition of "same-window history" —
// the offline HistoryWindow and EWMADaily predictors and the online
// incremental forecaster (internal/forecast) all iterate through it, which
// is what makes their forecasts bit-equal on identical history: the
// contributing windows, their order, and therefore the floating-point
// accumulation order are the same by construction.
//
// sameDayType selects the HistoryWindow rule (only days of w's day type
// contribute, scanning every day of the span); without it the EWMADaily
// rule applies (every day strictly before w's own day contributes). In
// both modes a history window must lie inside span and end at or before
// w.Start to count as history.
func ForEachHistoryWindow(cal sim.Calendar, span sim.Window, w sim.Window, sameDayType bool, fn func(hw sim.Window)) {
	offStart := cal.TimeOfDay(w.Start)
	dur := w.Duration()
	firstDay := cal.DayIndex(span.Start)
	if sameDayType {
		dayType := cal.DayType(w.Start)
		lastFull := cal.DayIndex(span.End - 1)
		for d := firstDay; d <= lastFull; d++ {
			dayStart := sim.Time(d) * sim.Day
			if cal.DayType(dayStart) != dayType {
				continue
			}
			hw := sim.Window{Start: dayStart + offStart, End: dayStart + offStart + dur}
			// Only fully observed history windows that end before the
			// window being predicted count as history.
			if hw.End > span.End || hw.End > w.Start {
				continue
			}
			if hw.Start < span.Start {
				continue
			}
			fn(hw)
		}
		return
	}
	lastDay := cal.DayIndex(w.Start) - 1
	for d := firstDay; d <= lastDay; d++ {
		dayStart := sim.Time(d) * sim.Day
		hw := sim.Window{Start: dayStart + offStart, End: dayStart + offStart + dur}
		if hw.Start < span.Start || hw.End > span.End || hw.End > w.Start {
			continue
		}
		fn(hw)
	}
}
