package predict

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// WindowSensitivity evaluates one predictor across several window lengths.
// The paper derives the prediction window from a guest job's estimated
// execution time, so a deployable predictor must stay useful from
// hour-scale to day-scale windows.
func WindowSensitivity(tr *trace.Trace, mk func() Predictor, windows []time.Duration, cfg EvalConfig) ([]Score, error) {
	if len(windows) == 0 {
		return nil, fmt.Errorf("predict: window sensitivity needs at least one window")
	}
	var out []Score
	for _, w := range windows {
		c := cfg
		c.Window = w
		c.Stride = 0 // re-derive from the window
		ev, err := Evaluate(tr, []Predictor{mk()}, c)
		if err != nil {
			return nil, err
		}
		s := ev.Scores[0]
		s.Name = fmt.Sprintf("%s@%s", s.Name, w)
		out = append(out, s)
	}
	return out, nil
}

// FormatWindowSensitivity renders the sweep.
func FormatWindowSensitivity(scores []Score) string {
	var b strings.Builder
	b.WriteString("Window sensitivity — accuracy vs prediction-window length\n")
	fmt.Fprintf(&b, "%-36s %8s %8s %8s %8s\n", "predictor@window", "MAE", "RMSE", "Brier", "windows")
	for _, s := range scores {
		fmt.Fprintf(&b, "%-36s %8.3f %8.3f %8.3f %8d\n", s.Name, s.MAE, s.RMSE, s.Brier, s.Windows)
	}
	return b.String()
}

// CalibrationBin is one decile of a reliability diagram.
type CalibrationBin struct {
	// Lo and Hi bound the predicted failure probability.
	Lo, Hi float64
	// Predicted is the mean predicted probability in the bin.
	Predicted float64
	// Observed is the empirical failure frequency in the bin.
	Observed float64
	// Count is the number of test windows in the bin.
	Count int
}

// Calibration builds a reliability diagram for a predictor's
// failure-probability forecasts over the trace's test period: within each
// predicted-probability bin, a calibrated predictor's observed failure
// frequency matches the bin's mean prediction.
func Calibration(tr *trace.Trace, p Predictor, cfg EvalConfig, bins int) ([]CalibrationBin, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if bins <= 0 {
		bins = 10
	}
	cut := tr.Span.Start + sim.Time(cfg.TrainDays)*sim.Day
	if cut >= tr.Span.End {
		return nil, fmt.Errorf("predict: training period consumes the trace")
	}
	p.Train(tr.Before(cut))
	ix := tr.BuildIndex()

	machines := tr.Machines
	if cfg.MaxMachines > 0 && cfg.MaxMachines < machines {
		machines = cfg.MaxMachines
	}
	sums := make([]float64, bins)
	hits := make([]int, bins)
	counts := make([]int, bins)
	for m := 0; m < machines; m++ {
		id := trace.MachineID(m)
		for start := cut; start+cfg.Window <= tr.Span.End; start += cfg.Stride {
			w := sim.Window{Start: start, End: start + cfg.Window}
			prob := stats.Clamp01(1 - p.PredictSurvival(id, w))
			bin := int(prob * float64(bins))
			if bin == bins {
				bin--
			}
			sums[bin] += prob
			counts[bin]++
			if ix.AnyOverlap(id, w) {
				hits[bin]++
			}
		}
	}
	out := make([]CalibrationBin, bins)
	for i := range out {
		out[i] = CalibrationBin{
			Lo:    float64(i) / float64(bins),
			Hi:    float64(i+1) / float64(bins),
			Count: counts[i],
		}
		if counts[i] > 0 {
			out[i].Predicted = sums[i] / float64(counts[i])
			out[i].Observed = float64(hits[i]) / float64(counts[i])
		}
	}
	return out, nil
}

// CalibrationError returns the expected calibration error (ECE): the
// count-weighted mean absolute gap between predicted and observed failure
// frequency.
func CalibrationError(bins []CalibrationBin) float64 {
	total := 0
	sum := 0.0
	for _, b := range bins {
		total += b.Count
		sum += float64(b.Count) * abs(b.Predicted-b.Observed)
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// FormatCalibration renders the reliability diagram.
func FormatCalibration(bins []CalibrationBin) string {
	var b strings.Builder
	b.WriteString("Reliability diagram — predicted vs observed failure probability\n")
	fmt.Fprintf(&b, "%-14s %10s %10s %8s\n", "bin", "predicted", "observed", "count")
	for _, bin := range bins {
		if bin.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "[%.1f, %.1f)     %10.3f %10.3f %8d\n",
			bin.Lo, bin.Hi, bin.Predicted, bin.Observed, bin.Count)
	}
	fmt.Fprintf(&b, "expected calibration error: %.3f\n", CalibrationError(bins))
	return b.String()
}
