package predict

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// EvalConfig controls the train/test replay.
type EvalConfig struct {
	// TrainDays is the history prefix length; the rest of the trace is
	// the test period.
	TrainDays int
	// Window is the prediction-window length (the paper suggests deriving
	// it from the guest job's estimated execution time).
	Window time.Duration
	// Stride advances consecutive test windows (default: Window).
	Stride time.Duration
	// MaxMachines limits evaluation to the first N machines (0 = all);
	// trims runtime for quick runs.
	MaxMachines int
}

// DefaultEvalConfig trains on four weeks and predicts 3-hour windows.
func DefaultEvalConfig() EvalConfig {
	return EvalConfig{TrainDays: 28, Window: 3 * time.Hour}
}

func (c EvalConfig) withDefaults() EvalConfig {
	d := DefaultEvalConfig()
	if c.TrainDays == 0 {
		c.TrainDays = d.TrainDays
	}
	if c.Window == 0 {
		c.Window = d.Window
	}
	if c.Stride == 0 {
		c.Stride = c.Window
	}
	return c
}

// Validate reports configuration errors.
func (c EvalConfig) Validate() error {
	if c.TrainDays <= 0 {
		return fmt.Errorf("predict: train days must be positive, got %d", c.TrainDays)
	}
	if c.Window <= 0 || c.Stride <= 0 {
		return fmt.Errorf("predict: window and stride must be positive")
	}
	return nil
}

// Score is one predictor's evaluation result.
type Score struct {
	Name string
	// MAE and RMSE measure count-prediction error per window.
	MAE  float64
	RMSE float64
	// Brier measures survival-probability quality (lower is better;
	// 0.25 is an uninformed coin flip).
	Brier float64
	// Windows is the number of evaluated (machine, window) pairs.
	Windows int
}

// Evaluation is the full comparison across predictors.
type Evaluation struct {
	Config EvalConfig
	Scores []Score
}

// truthSource answers the two ground-truth queries the evaluation needs.
// *trace.Index and *trace.BlockIndex both qualify; Evaluate layers the
// hourly count matrix on top for hour-aligned windows.
type truthSource interface {
	CountInWindow(m trace.MachineID, w sim.Window) int
	AnyOverlap(m trace.MachineID, w sim.Window) bool
}

// Evaluate trains each predictor on the trace prefix and scores it over
// sliding windows of the remaining test period.
func Evaluate(tr *trace.Trace, preds []Predictor, cfg EvalConfig) (*Evaluation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cut := tr.Span.Start + sim.Time(cfg.TrainDays)*sim.Day
	if cut >= tr.Span.End {
		return nil, fmt.Errorf("predict: training period (%d days) consumes the whole trace", cfg.TrainDays)
	}
	history := tr.Before(cut)
	for _, p := range preds {
		p.Train(history)
	}
	// Ground truth goes through the indexed query layer: the hourly count
	// matrix for hour-aligned windows, the O(log n) index otherwise and
	// for overlap tests.
	truth := hourlyFirstTruth{hc: tr.BuildHourlyCounts(), ix: tr.BuildIndex()}
	return evaluateWindows(tr.Span, tr.Machines, cut, truth, preds, cfg)
}

// EvaluateBlocks is Evaluate over a v2 block file: training history is read
// through a block-pruned scan (blocks entirely past the training cut are
// never decoded) and ground truth is answered by the lazy BlockIndex, which
// decodes only each queried machine's blocks. Scores are identical to
// Evaluate over the decoded trace.
func EvaluateBlocks(bf *trace.BlockFile, preds []Predictor, cfg EvalConfig) (*Evaluation, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := bf.Header()
	cut := h.Span.Start + sim.Time(cfg.TrainDays)*sim.Day
	if cut >= h.Span.End {
		return nil, fmt.Errorf("predict: training period (%d days) consumes the whole trace", cfg.TrainDays)
	}
	// The history scan and the ground-truth queries go through one shared
	// BlockIndex: the scan prunes blocks entirely past the training cut,
	// and any block both paths need is inflated only once.
	ix := trace.NewBlockIndex(bf)
	history := trace.New(sim.Window{Start: h.Span.Start, End: cut}, h.Calendar, h.Machines)
	filter := trace.ScanFilter{
		HasWindow: true,
		Window:    sim.Window{Start: math.MinInt64, End: cut},
	}
	if _, _, err := ix.Scan(filter, func(e trace.Event) error {
		history.Add(e)
		return nil
	}); err != nil {
		return nil, err
	}
	for _, p := range preds {
		p.Train(history)
	}
	ev, err := evaluateWindows(h.Span, h.Machines, cut, ix, preds, cfg)
	if err != nil {
		return nil, err
	}
	if err := ix.Err(); err != nil {
		return nil, err
	}
	return ev, nil
}

// evaluateWindows scores already-trained predictors over the sliding test
// windows, with ground truth answered by truth.
func evaluateWindows(span sim.Window, machines int, cut sim.Time, truth truthSource, preds []Predictor, cfg EvalConfig) (*Evaluation, error) {
	if cfg.MaxMachines > 0 && cfg.MaxMachines < machines {
		machines = cfg.MaxMachines
	}
	type sample struct {
		m trace.MachineID
		w sim.Window
	}
	var samples []sample
	var truthCounts []float64
	var truthFail []bool
	for m := 0; m < machines; m++ {
		id := trace.MachineID(m)
		for start := cut; start+cfg.Window <= span.End; start += cfg.Stride {
			w := sim.Window{Start: start, End: start + cfg.Window}
			samples = append(samples, sample{id, w})
			truthCounts = append(truthCounts, float64(truth.CountInWindow(id, w)))
			truthFail = append(truthFail, truth.AnyOverlap(id, w))
		}
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("predict: no test windows (window %v, span %v)", cfg.Window, span)
	}

	ev := &Evaluation{Config: cfg}
	for _, p := range preds {
		predCounts := make([]float64, len(samples))
		survive := make([]float64, len(samples))
		for i, s := range samples {
			predCounts[i] = p.PredictCount(s.m, s.w)
			// Brier scores the probability of failure occurring.
			survive[i] = 1 - p.PredictSurvival(s.m, s.w)
		}
		ev.Scores = append(ev.Scores, Score{
			Name:    p.Name(),
			MAE:     stats.MAE(predCounts, truthCounts),
			RMSE:    stats.RMSE(predCounts, truthCounts),
			Brier:   stats.Brier(survive, truthFail),
			Windows: len(samples),
		})
	}
	return ev, nil
}

// hourlyFirstTruth answers window counts from the hourly matrix when it
// can, falling back to the index binary search; both count the same events.
type hourlyFirstTruth struct {
	hc *trace.HourlyCounts
	ix *trace.Index
}

func (t hourlyFirstTruth) CountInWindow(m trace.MachineID, w sim.Window) int {
	if n, ok := t.hc.CountInWindow(m, w); ok {
		return n
	}
	return t.ix.CountInWindow(m, w)
}

func (t hourlyFirstTruth) AnyOverlap(m trace.MachineID, w sim.Window) bool {
	return t.ix.AnyOverlap(m, w)
}

// Format renders the comparison table.
func (e *Evaluation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Predictor evaluation — %v windows, trained on %d days (%d samples)\n",
		e.Config.Window, e.Config.TrainDays, e.windows())
	fmt.Fprintf(&b, "%-26s %8s %8s %8s\n", "predictor", "MAE", "RMSE", "Brier")
	for _, s := range e.Scores {
		fmt.Fprintf(&b, "%-26s %8.3f %8.3f %8.3f\n", s.Name, s.MAE, s.RMSE, s.Brier)
	}
	return b.String()
}

func (e *Evaluation) windows() int {
	if len(e.Scores) == 0 {
		return 0
	}
	return e.Scores[0].Windows
}

// ScoreByName finds a predictor's score in the evaluation.
func (e *Evaluation) ScoreByName(name string) (Score, bool) {
	for _, s := range e.Scores {
		if s.Name == name {
			return s, true
		}
	}
	return Score{}, false
}
