package markov

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// GenConfig describes one generated fleet. The zero value is not runnable;
// Machines and Days are required.
type GenConfig struct {
	// Machines is the generated fleet size.
	Machines int
	// Days is the generated span in whole days from the epoch.
	Days int
	// StartWeekday anchors the calendar (0 = Monday).
	StartWeekday int
	// Seed roots all randomness; the same (model, config) pair always
	// yields a byte-identical trace.
	Seed int64
}

// Validate reports configuration errors.
func (c GenConfig) Validate() error {
	if c.Machines <= 0 {
		return fmt.Errorf("markov: need at least one machine, got %d", c.Machines)
	}
	if c.Days <= 0 {
		return fmt.Errorf("markov: need at least one day, got %d", c.Days)
	}
	return nil
}

// Generate runs the model forward as a fleet simulator: for each machine,
// failures arrive by non-homogeneous exponential sampling against the
// piecewise-constant hour-of-week hazard (draw u ~ Exp(1), integrate
// total hazard across hour boundaries until it is consumed), the cause is
// drawn categorically from the slot's per-cause rates, and the repair
// time comes from the cause's duration ECDF by inverse transform. Each
// machine draws from its own named streams, so the output is independent
// of generation order and byte-identical for a fixed seed.
func Generate(m *Model, cfg GenConfig) (*trace.Trace, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cal := sim.Calendar{StartWeekday: cfg.StartWeekday}
	span := sim.Window{Start: 0, End: sim.Time(cfg.Days) * sim.Day}
	tr := trace.New(span, cal, cfg.Machines)
	src := sim.NewSource(cfg.Seed)
	for id := 0; id < cfg.Machines; id++ {
		mm := m.machineModel(id)
		r := src.Stream("markov/" + strconv.Itoa(id) + "/events")
		generateMachine(tr, trace.MachineID(id), mm, cal, span, r)
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("markov: generated trace invalid: %w", err)
	}
	return tr, nil
}

// generateMachine appends one machine's events to the trace.
func generateMachine(tr *trace.Trace, id trace.MachineID, mm *MachineModel, cal sim.Calendar, span sim.Window, r *rand.Rand) {
	t := span.Start
	for t < span.End {
		at, ok := nextFailure(mm, cal, t, span.End, r)
		if !ok {
			return
		}
		c := drawCause(mm, cal.HourOfWeek(at), r)
		ecdf := mm.duration(c, cal.DayType(at))
		if ecdf == nil {
			// A slot can carry a rate for a cause with no duration sample
			// only on hand-built models; treat it as a zero-length blip
			// and move on past a minimal step.
			t = at + time.Second
			continue
		}
		d := time.Duration(ecdf.Sample(r.Float64()) * float64(time.Hour))
		if d <= 0 {
			d = time.Second
		}
		end := at + d
		if end > span.End {
			end = span.End
		}
		if end > at {
			tr.Add(trace.Event{
				Machine: id,
				Start:   at,
				End:     end,
				State:   CauseStates[c],
				// The load context just before the failure: a busy but
				// not saturated host, drawn per event so codec surfaces
				// exercise real variation.
				AvailCPU: 0.5 + 0.5*r.Float64(),
				AvailMem: 256<<20 + r.Int63n(1<<30),
			})
		}
		t = end
	}
}

// nextFailure integrates the total hazard forward from t against one unit-
// exponential draw and returns the failure instant, or false when the
// hazard budget outlives the span. Integration walks hour boundaries
// because the hazard is constant within an hour-of-week slot.
func nextFailure(mm *MachineModel, cal sim.Calendar, t, end sim.Time, r *rand.Rand) (sim.Time, bool) {
	u := r.ExpFloat64() // hazard mass to consume
	for t < end {
		next := t - t%time.Hour + time.Hour
		if t < 0 && t%time.Hour != 0 {
			next -= time.Hour
		}
		if next > end {
			next = end
		}
		lam := mm.TotalRate(cal.HourOfWeek(t)) // events per hour
		if lam > 0 {
			span := (next - t).Hours()
			if need := u / lam; need <= span {
				return t + time.Duration(need*float64(time.Hour)), true
			}
			u -= lam * span
		}
		t = next
	}
	return 0, false
}

// drawCause picks the failure cause for hour-of-week slot h, categorically
// proportional to the slot's per-cause rates.
func drawCause(mm *MachineModel, h int, r *rand.Rand) int {
	total := mm.TotalRate(h)
	u := r.Float64() * total
	for c := 0; c < NumCauses-1; c++ {
		u -= mm.Rates[h][c]
		if u < 0 {
			return c
		}
	}
	return NumCauses - 1
}
