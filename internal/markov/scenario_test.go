package markov

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/sim"
	"repro/internal/simos"
	"repro/internal/trace"
)

// TestScenarioTracesAreLegal generates every scenario at two fixed seeds
// and checks the Figure 5 invariants a trace can express: only failure
// states S3/S4/S5, validated events, events inside the span, and
// deterministic regeneration.
func TestScenarioTracesAreLegal(t *testing.T) {
	for _, s := range Scenarios() {
		for _, seed := range []int64{3, 17} {
			cfg := GenConfig{Machines: 4, Days: 7, Seed: seed}
			tr, err := GenerateScenario(s.Name, cfg)
			if err != nil {
				t.Fatalf("%s seed %d: %v", s.Name, seed, err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("%s seed %d: %v", s.Name, seed, err)
			}
			if len(tr.Events) == 0 {
				t.Fatalf("%s seed %d: no events", s.Name, seed)
			}
			for i, e := range tr.Events {
				if causeIndex(e.State) < 0 {
					t.Fatalf("%s seed %d event %d: state %v is not a failure state", s.Name, seed, i, e.State)
				}
				if e.Start < tr.Span.Start || e.End > tr.Span.End || e.End <= e.Start {
					t.Fatalf("%s seed %d event %d: [%v, %v) outside span %v", s.Name, seed, i, e.Start, e.End, tr.Span)
				}
			}
			again, err := GenerateScenario(s.Name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tr.Events, again.Events) {
				t.Fatalf("%s seed %d: regeneration differs", s.Name, seed)
			}
		}
	}
}

// TestScenarioStreamDifferential pins the package-local leg of the check
// harness differential: for each scenario, a serial StreamAnalyzer over
// the sorted events must reproduce the in-memory Trace analyzers exactly.
// (The cross-path serial/sharded/parallel-block differential runs in
// internal/check.)
func TestScenarioStreamDifferential(t *testing.T) {
	for _, s := range Scenarios() {
		tr, err := GenerateScenario(s.Name, GenConfig{Machines: 5, Days: 5, Seed: 8})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		an := trace.NewStreamAnalyzer(tr.Span, tr.Calendar, tr.Machines)
		for _, e := range tr.Events {
			if err := an.Observe(e); err != nil {
				t.Fatalf("%s: observe: %v", s.Name, err)
			}
		}
		an.Finish()
		if got, want := an.Table2(), tr.MakeTable2(); got != want {
			t.Errorf("%s: Table2 stream %+v != trace %+v", s.Name, got, want)
		}
		if got, want := an.CountByCause(), tr.CountByCause(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: CountByCause diverges", s.Name)
		}
		for _, dt := range []sim.DayType{sim.Weekday, sim.Weekend} {
			if got, want := an.IntervalLengths(dt), tr.IntervalLengths(dt); !reflect.DeepEqual(got, want) {
				t.Errorf("%s %v: interval lengths diverge (%d vs %d samples)", s.Name, dt, len(got), len(want))
			}
			if got, want := an.HourlyOccurrences(dt), tr.HourlyOccurrences(dt); !reflect.DeepEqual(got, want) {
				t.Errorf("%s %v: hourly occurrences diverge", s.Name, dt)
			}
		}
	}
}

// TestMulticoreScenarioMatchesSimos cross-checks the scenario's premise
// against the real multi-CPU scheduler: a multicoreCores-CPU simos
// machine under one CPU hog per core has zero idle time (fully contended,
// the condition the scenario maps to S3), while one fewer hog leaves a
// full core's worth of idle — so "all cores busy" is exactly the boundary
// at which a guest stops getting CPU.
func TestMulticoreScenarioMatchesSimos(t *testing.T) {
	dur := 10 * time.Second
	full := simos.MustNewMachine(simos.MachineConfig{Name: "mc", CPUs: multicoreCores, Seed: 51})
	for i := 0; i < multicoreCores; i++ {
		full.Spawn("hog", simos.Host, 0, simos.MB, simos.CPUHog{})
	}
	full.Run(dur)
	if full.IdleTime() != 0 {
		t.Errorf("all cores hogged: idle = %v, want 0", full.IdleTime())
	}

	spare := simos.MustNewMachine(simos.MachineConfig{Name: "mc", CPUs: multicoreCores, Seed: 52})
	for i := 0; i < multicoreCores-1; i++ {
		spare.Spawn("hog", simos.Host, 0, simos.MB, simos.CPUHog{})
	}
	spare.Run(dur)
	if spare.IdleTime() != dur {
		t.Errorf("one spare core: idle = %v, want %v", spare.IdleTime(), dur)
	}
}

// TestMulticoreOverlapSemantics pins the k-of-n sweep on hand-built
// interval sets, including the touching-endpoint case that must not count
// as overlap.
func TestMulticoreOverlapSemantics(t *testing.T) {
	h := func(x float64) sim.Time { return sim.Time(x * float64(time.Hour)) }
	sets := [][]sim.Window{
		{{Start: h(0), End: h(3)}, {Start: h(5), End: h(8)}},
		{{Start: h(1), End: h(4)}},
		{{Start: h(2), End: h(6)}},
	}
	got := overlapWindows(sets, 3)
	want := []sim.Window{{Start: h(2), End: h(3)}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("3-of-3 overlap = %v, want %v", got, want)
	}
	got = overlapWindows(sets, 2)
	want = []sim.Window{{Start: h(1), End: h(4)}, {Start: h(5), End: h(6)}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("2-of-3 overlap = %v, want %v", got, want)
	}
	// A set ending exactly when another starts: no instant with both.
	touch := [][]sim.Window{
		{{Start: h(0), End: h(1)}},
		{{Start: h(1), End: h(2)}},
	}
	if got := overlapWindows(touch, 2); len(got) != 0 {
		t.Errorf("touching intervals counted as overlap: %v", got)
	}
}

// TestSpotWavesAreCorrelated checks the spot scenario's defining
// property: revocation events cluster at shared instants across machines
// (waves), which independent hazards essentially never produce.
func TestSpotWavesAreCorrelated(t *testing.T) {
	tr, err := GenerateScenario("spot", GenConfig{Machines: 20, Days: 14, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	starts := map[sim.Time]int{}
	for _, e := range tr.Events {
		if e.State == availability.S5 {
			starts[e.Start]++
		}
	}
	maxShared := 0
	for _, n := range starts {
		if n > maxShared {
			maxShared = n
		}
	}
	if maxShared < 5 {
		t.Errorf("largest simultaneous revocation wave hit %d machines, want >= 5 of 20", maxShared)
	}
}
