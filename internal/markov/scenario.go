package markov

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/availability"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// A Scenario is one named fleet generator from the library: either a
// synthetic semi-Markov model run through Generate, or a structural
// generator (per-core contention, container caps, correlated waves) that
// builds events the hazard model alone cannot express. All scenarios are
// deterministic in (name, GenConfig).
type Scenario struct {
	Name        string
	Description string
	generate    func(cfg GenConfig) (*trace.Trace, error)
}

// Scenarios returns the library in stable name order.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name:        "enterprise",
			Description: "enterprise diurnal desktops: contention concentrated in office hours, rare revocation",
			generate:    generateEnterprise,
		},
		{
			Name:        "spot",
			Description: "spot-style preemption: quiet hosts hit by correlated fleet-wide revocation waves",
			generate:    generateSpot,
		},
		{
			Name:        "multicore",
			Description: "multicore hosts: S3 only when every core's busy process overlaps",
			generate:    generateMulticore,
		},
		{
			Name:        "container-dense",
			Description: "container-dense hosts: OS-virtualization caps breached by concurrent container activity",
			generate:    generateContainers,
		},
	}
}

// ScenarioNames returns just the names, for CLI flag help.
func ScenarioNames() []string {
	ss := Scenarios()
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name
	}
	return names
}

// GenerateScenario builds the named scenario's fleet trace.
func GenerateScenario(name string, cfg GenConfig) (*trace.Trace, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s.generate(cfg)
		}
	}
	return nil, fmt.Errorf("markov: unknown scenario %q (have %v)", name, ScenarioNames())
}

// ScenarioStateDistribution returns the five-state stationary occupancy a
// scenario implies, by generating a small reference fleet at a fixed seed
// and fitting it — so structural scenarios (waves, caps) get the same
// treatment as hazard-driven ones. loadgen draws fleet states from this.
func ScenarioStateDistribution(name string) ([5]float64, error) {
	tr, err := GenerateScenario(name, GenConfig{Machines: 8, Days: 14, Seed: 1})
	if err != nil {
		return [5]float64{}, err
	}
	m, err := Fit(tr, FitOptions{})
	if err != nil {
		return [5]float64{}, err
	}
	return m.StateDistribution(), nil
}

// syntheticDurations builds a duration ECDF from n deterministic
// log-normal draws (median in hours); the fixed internal seed makes
// scenario models identical across processes.
func syntheticDurations(name string, n int, median, sigma float64) *stats.ECDF {
	r := sim.NewSource(7).Stream("scenario/" + name + "/durations")
	s := make([]float64, n)
	for i := range s {
		s[i] = sim.LogNormal(r, median, sigma)
	}
	return stats.NewECDF(s)
}

// EnterpriseModel is the synthetic semi-Markov model behind the
// "enterprise" scenario: CPU contention follows office hours sharply on
// weekdays, weekends are nearly idle, memory pressure is rare, and
// revocation is a small constant background (single-owner machines —
// the paper's Section 6 follow-up testbed).
func EnterpriseModel() *Model {
	mm := &MachineModel{}
	for h := 0; h < sim.HoursPerWeek; h++ {
		hod := h % 24
		weekend := h >= 5*24
		s3 := 0.01
		s4 := 0.002
		if !weekend && hod >= 9 && hod < 18 {
			s3 = 0.28
			s4 = 0.03
		} else if !weekend && (hod == 8 || hod == 18) {
			s3 = 0.08
		}
		mm.Rates[h][0] = s3
		mm.Rates[h][1] = s4
		mm.Rates[h][2] = 0.0012 // ~0.2 revocations per machine-week
	}
	for dt := 0; dt < numDayTypes; dt++ {
		mm.Durations[0][dt] = syntheticDurations("enterprise/s3", 512, 0.12, 0.8)
		mm.Durations[1][dt] = syntheticDurations("enterprise/s4", 512, 0.15, 0.6)
		mm.Durations[2][dt] = syntheticDurations("enterprise/s5", 512, 0.75, 1.0)
	}
	return &Model{Fleet: mm}
}

func generateEnterprise(cfg GenConfig) (*trace.Trace, error) {
	return Generate(EnterpriseModel(), cfg)
}

// spotBaseModel is the per-host background of the "spot" scenario: hosts
// are individually quiet (light contention, no independent revocation to
// speak of) — the action is in the correlated waves layered on top.
func spotBaseModel() *Model {
	mm := &MachineModel{}
	for h := 0; h < sim.HoursPerWeek; h++ {
		mm.Rates[h][0] = 0.015
		mm.Rates[h][1] = 0.004
		mm.Rates[h][2] = 0.0005
	}
	for dt := 0; dt < numDayTypes; dt++ {
		mm.Durations[0][dt] = syntheticDurations("spot/s3", 256, 0.08, 0.7)
		mm.Durations[1][dt] = syntheticDurations("spot/s4", 256, 0.1, 0.6)
		mm.Durations[2][dt] = syntheticDurations("spot/s5", 256, 0.3, 0.8)
	}
	return &Model{Fleet: mm}
}

// generateSpot layers mass-preemption waves over the quiet base: wave
// times are a fleet-level Poisson process, each wave revokes a drawn
// fraction of the fleet simultaneously with near-identical outage
// lengths — the correlated-failure structure spot markets exhibit and
// independent per-machine hazards cannot produce.
func generateSpot(cfg GenConfig) (*trace.Trace, error) {
	tr, err := Generate(spotBaseModel(), cfg)
	if err != nil {
		return nil, err
	}
	wf := sim.NewSource(cfg.Seed).Stream("scenario/spot/waves")
	const meanWaveGap = 16 * time.Hour
	t := tr.Span.Start
	for {
		t += sim.Exp(wf, meanWaveGap)
		if t >= tr.Span.End {
			break
		}
		frac := 0.2 + 0.5*wf.Float64()
		base := sim.LogNormal(wf, 0.5, 0.5) // hours
		for id := 0; id < cfg.Machines; id++ {
			hit := wf.Float64() < frac
			jitter := 0.9 + 0.2*wf.Float64()
			if !hit {
				continue
			}
			end := t + time.Duration(base*jitter*float64(time.Hour))
			if end > tr.Span.End {
				end = tr.Span.End
			}
			if end <= t {
				continue
			}
			tr.Add(trace.Event{
				Machine:  trace.MachineID(id),
				Start:    t,
				End:      end,
				State:    availability.S5,
				AvailCPU: 0.5 + 0.5*wf.Float64(),
				AvailMem: 256 << 20,
			})
		}
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("markov: spot trace invalid: %w", err)
	}
	return tr, nil
}

// multicoreCores is the core count of the "multicore" scenario hosts.
// simos already schedules multi-CPU machines (MachineConfig.CPUs); this
// scenario models the trace-level consequence: a C-core host is only
// CPU-unavailable to a guest when all C cores are contended at once, so
// S3 events are the intersection of per-core busy processes rather than a
// single host-wide hazard.
const multicoreCores = 4

func generateMulticore(cfg GenConfig) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cal := sim.Calendar{StartWeekday: cfg.StartWeekday}
	span := sim.Window{Start: 0, End: sim.Time(cfg.Days) * sim.Day}
	tr := trace.New(span, cal, cfg.Machines)
	src := sim.NewSource(cfg.Seed)
	for id := 0; id < cfg.Machines; id++ {
		sets := make([][]sim.Window, multicoreCores)
		for core := 0; core < multicoreCores; core++ {
			r := src.Stream("markov/" + strconv.Itoa(id) + "/core/" + strconv.Itoa(core))
			sets[core] = busyIntervals(r, span, 150*time.Minute, 40*time.Minute, 0.8)
		}
		for _, w := range overlapWindows(sets, multicoreCores) {
			if w.Duration() < 30*time.Second {
				continue // sub-transient blips the detector would suspend through
			}
			tr.Add(trace.Event{
				Machine: trace.MachineID(id), Start: w.Start, End: w.End,
				State: availability.S3, AvailCPU: 1.0 / multicoreCores, AvailMem: 512 << 20,
			})
		}
		// Sparse whole-host revocations unrelated to core contention.
		r := src.Stream("markov/" + strconv.Itoa(id) + "/urr")
		addConstantHazard(tr, trace.MachineID(id), r, span, 0.001, 0.5, availability.S5)
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("markov: multicore trace invalid: %w", err)
	}
	return tr, nil
}

// Container-dense scenario knobs: each host runs containerHosts
// containers; the OS-virtualization layer caps concurrently runnable
// containers at containerCPUCap before guests starve (S3), and memory
// overcommit collapses into thrashing past containerMemCap (S4) — the
// OS-level virtualization limits of the Pokluda thesis.
const (
	containerHosts  = 16
	containerCPUCap = 12
	containerMemCap = 13
)

func generateContainers(cfg GenConfig) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cal := sim.Calendar{StartWeekday: cfg.StartWeekday}
	span := sim.Window{Start: 0, End: sim.Time(cfg.Days) * sim.Day}
	tr := trace.New(span, cal, cfg.Machines)
	src := sim.NewSource(cfg.Seed)
	for id := 0; id < cfg.Machines; id++ {
		sets := make([][]sim.Window, containerHosts)
		for ct := 0; ct < containerHosts; ct++ {
			r := src.Stream("markov/" + strconv.Itoa(id) + "/container/" + strconv.Itoa(ct))
			// Each container is active roughly half the time, so the
			// binomial tail past the caps is rare but recurring: ~1% of
			// wall time past the CPU cap, ~0.2% past the memory cap.
			sets[ct] = busyIntervals(r, span, 35*time.Minute, 30*time.Minute, 0.6)
		}
		for _, w := range overlapWindows(sets, containerCPUCap+1) {
			if w.Duration() < 30*time.Second {
				continue
			}
			tr.Add(trace.Event{
				Machine: trace.MachineID(id), Start: w.Start, End: w.End,
				State: availability.S3, AvailCPU: 0.1, AvailMem: 256 << 20,
			})
		}
		// Deeper overcommit: the same activity processes breaching the
		// memory cap thrash the host (S4 nested inside the S3 pressure).
		for _, w := range overlapWindows(sets, containerMemCap+1) {
			if w.Duration() < 30*time.Second {
				continue
			}
			tr.Add(trace.Event{
				Machine: trace.MachineID(id), Start: w.Start, End: w.End,
				State: availability.S4, AvailCPU: 0.1, AvailMem: 32 << 20,
			})
		}
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("markov: container trace invalid: %w", err)
	}
	return tr, nil
}

// busyIntervals simulates one alternating idle/busy renewal process over
// the span: idle gaps are exponential with the given mean, busy periods
// log-normal with the given median duration and shape.
func busyIntervals(r *rand.Rand, span sim.Window, idleMean time.Duration, busyMedian time.Duration, sigma float64) []sim.Window {
	var out []sim.Window
	t := span.Start
	for {
		t += sim.Exp(r, idleMean)
		if t >= span.End {
			return out
		}
		busy := time.Duration(sim.LogNormal(r, busyMedian.Hours(), sigma) * float64(time.Hour))
		if busy <= 0 {
			busy = time.Second
		}
		end := t + busy
		if end > span.End {
			end = span.End
		}
		out = append(out, sim.Window{Start: t, End: end})
		t = end
	}
}

// addConstantHazard appends events of one state arriving with a constant
// hazard (events per hour) and log-normal durations (median hours).
func addConstantHazard(tr *trace.Trace, id trace.MachineID, r *rand.Rand, span sim.Window, perHour, medianHours float64, st availability.State) {
	t := span.Start
	for {
		t += time.Duration(r.ExpFloat64() / perHour * float64(time.Hour))
		if t >= span.End {
			return
		}
		end := t + time.Duration(sim.LogNormal(r, medianHours, 0.8)*float64(time.Hour))
		if end > span.End {
			end = span.End
		}
		if end > t {
			tr.Add(trace.Event{
				Machine: id, Start: t, End: end, State: st,
				AvailCPU: 0.5 + 0.5*r.Float64(), AvailMem: 256 << 20,
			})
		}
		t = end
	}
}

// overlapWindows returns the maximal windows during which at least k of
// the interval sets are simultaneously active — the k-of-n sweep shared
// by the multicore (k = n cores) and container (k = cap+1) scenarios.
// Touching windows are merged, so output windows are disjoint and sorted.
func overlapWindows(sets [][]sim.Window, k int) []sim.Window {
	type point struct {
		at    sim.Time
		delta int
	}
	var pts []point
	for _, set := range sets {
		for _, w := range set {
			if w.End > w.Start {
				pts = append(pts, point{w.Start, +1}, point{w.End, -1})
			}
		}
	}
	// Ends sort before starts at equal instants: a process handing off to
	// another at the same tick does not count as overlap.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].at != pts[j].at {
			return pts[i].at < pts[j].at
		}
		return pts[i].delta < pts[j].delta
	})
	var out []sim.Window
	count, open := 0, sim.Time(0)
	active := false
	for _, p := range pts {
		count += p.delta
		if !active && count >= k {
			active, open = true, p.at
		} else if active && count < k {
			active = false
			if n := len(out); n > 0 && out[n-1].End == open {
				out[n-1].End = p.at
			} else {
				out = append(out, sim.Window{Start: open, End: p.at})
			}
		}
	}
	return out
}
