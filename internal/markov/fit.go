package markov

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// FitOptions tune Fit. The zero value fits the pooled fleet model only.
type FitOptions struct {
	// PerMachine additionally fits one model per machine. Per-machine
	// hazards are noisy on short traces; the pooled fleet estimate is
	// usually what Generate should run on.
	PerMachine bool
}

// fitAccum accumulates sufficient statistics for one MachineModel:
// event-start counts and availability exposure per hour-of-week slot,
// plus the raw duration samples.
type fitAccum struct {
	counts    [sim.HoursPerWeek][NumCauses]int
	exposure  [sim.HoursPerWeek]float64 // available machine-hours
	durations [NumCauses][numDayTypes][]float64
}

// addExposure distributes an availability interval across the hour-of-week
// slots it touches, walking hour boundaries so each slot is credited with
// exactly the time spent inside it.
func (a *fitAccum) addExposure(cal sim.Calendar, iv trace.Interval) {
	t := iv.Start
	for t < iv.End {
		// The start of the next hour after t (strictly later than t).
		next := t - t%time.Hour + time.Hour
		if t < 0 && t%time.Hour != 0 {
			next -= time.Hour
		}
		if next > iv.End {
			next = iv.End
		}
		a.exposure[cal.HourOfWeek(t)] += (next - t).Hours()
		t = next
	}
}

// addEvents tallies event starts and duration samples.
func (a *fitAccum) addEvents(cal sim.Calendar, evs []trace.Event) {
	for _, e := range evs {
		c := causeIndex(e.State)
		if c < 0 {
			continue
		}
		a.counts[cal.HourOfWeek(e.Start)][c]++
		dt := int(cal.DayType(e.Start))
		a.durations[c][dt] = append(a.durations[c][dt], e.Duration().Hours())
	}
}

// model turns the accumulated statistics into a MachineModel: rate =
// starts / exposure per slot (0 where the slot was never observed
// available), duration ECDFs from the raw samples.
func (a *fitAccum) model() *MachineModel {
	m := &MachineModel{}
	for h := 0; h < sim.HoursPerWeek; h++ {
		for c := 0; c < NumCauses; c++ {
			if a.exposure[h] > 0 {
				m.Rates[h][c] = float64(a.counts[h][c]) / a.exposure[h]
			}
		}
	}
	for c := 0; c < NumCauses; c++ {
		for dt := 0; dt < numDayTypes; dt++ {
			m.Durations[c][dt] = stats.NewECDF(a.durations[c][dt])
		}
	}
	return m
}

// merge folds another accumulator into this one (fleet pooling).
func (a *fitAccum) merge(b *fitAccum) {
	for h := 0; h < sim.HoursPerWeek; h++ {
		a.exposure[h] += b.exposure[h]
		for c := 0; c < NumCauses; c++ {
			a.counts[h][c] += b.counts[h][c]
		}
	}
	for c := 0; c < NumCauses; c++ {
		for dt := 0; dt < numDayTypes; dt++ {
			a.durations[c][dt] = append(a.durations[c][dt], b.durations[c][dt]...)
		}
	}
}

// Fit estimates a semi-Markov model from a recorded trace. Hazards are
// event starts per available machine-hour per hour-of-week slot, with the
// exposure computed from the machine's availability intervals (so time
// spent down never dilutes a slot's rate); durations are the raw event
// lengths split by cause and by the day type of the event's start.
func Fit(tr *trace.Trace, opts FitOptions) (*Model, error) {
	if tr == nil || tr.Machines <= 0 {
		return nil, fmt.Errorf("markov: cannot fit an empty trace")
	}
	if tr.Span.End <= tr.Span.Start {
		return nil, fmt.Errorf("markov: cannot fit a zero-length span %v", tr.Span)
	}
	fleet := &fitAccum{}
	var per []*MachineModel
	if opts.PerMachine {
		per = make([]*MachineModel, tr.Machines)
	}
	for id := 0; id < tr.Machines; id++ {
		acc := &fitAccum{}
		for _, iv := range tr.Intervals(trace.MachineID(id)) {
			acc.addExposure(tr.Calendar, iv)
		}
		acc.addEvents(tr.Calendar, tr.MachineEvents(trace.MachineID(id)))
		if opts.PerMachine {
			per[id] = acc.model()
		}
		fleet.merge(acc)
	}
	m := &Model{
		Calendar:   tr.Calendar,
		Machines:   tr.Machines,
		Fleet:      fleet.model(),
		PerMachine: per,
	}
	return m, m.Validate()
}
