package markov

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Round-trip tolerances (documented in EXPERIMENTS.md E24). The refit
// compares two independent Poisson-noisy estimates of the same hazard, so
// per-bucket error scales as 1/sqrt(events in the bucket); the tolerances
// below hold with margin at the fleet sizes used here.
const (
	// rtWeeklyTol bounds the relative error of the per-cause weekly
	// aggregate rate.
	rtWeeklyTol = 0.10
	// rtBucketTol bounds the relative error of any single hour-of-week
	// bucket whose fitted rate is at least rtBucketMinRate (below that a
	// bucket holds too few events for a per-bucket comparison to mean
	// anything; the weekly aggregate still covers it).
	rtBucketTol     = 0.50
	rtBucketMinRate = 0.10
	// rtBucketMeanTol bounds the mean relative error across those buckets.
	rtBucketMeanTol = 0.20
	// rtKSTol bounds the Kolmogorov-Smirnov distance between fitted and
	// refitted duration ECDFs (per cause, pooled day types) and between
	// the source and generated availability-interval ECDFs.
	rtKSTol = 0.08
)

// TestFitGenerateRefitRoundTrip is the tentpole's core validation: fit a
// model from a trace, run it as a generator, refit from the generated
// fleet, and require the refitted transition rates and interval ECDFs to
// recover the fitted ones within the documented tolerances — on three
// fixed seeds.
func TestFitGenerateRefitRoundTrip(t *testing.T) {
	for _, seed := range []int64{11, 22, 33} {
		// Source trace: an enterprise fleet, the scenario with the
		// sharpest hour-of-week structure (office hours vs nights).
		src, err := GenerateScenario("enterprise", GenConfig{Machines: 60, Days: 35, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: source generate: %v", seed, err)
		}
		m1, err := Fit(src, FitOptions{})
		if err != nil {
			t.Fatalf("seed %d: fit: %v", seed, err)
		}
		gen, err := Generate(m1, GenConfig{Machines: 120, Days: 35, Seed: seed + 1000})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		m2, err := Fit(gen, FitOptions{})
		if err != nil {
			t.Fatalf("seed %d: refit: %v", seed, err)
		}

		// Per-cause weekly aggregate rates.
		for c := 0; c < NumCauses; c++ {
			w1, w2 := m1.Fleet.WeeklyRate(c), m2.Fleet.WeeklyRate(c)
			if w1 < 1e-4 {
				continue
			}
			if rel := math.Abs(w2-w1) / w1; rel > rtWeeklyTol {
				t.Errorf("seed %d cause %d: weekly rate %.4f refit %.4f (rel %.3f > %.2f)",
					seed, c, w1, w2, rel, rtWeeklyTol)
			}
		}

		// Per-hour-of-week buckets with enough fitted mass.
		for c := 0; c < NumCauses; c++ {
			var sumRel float64
			var n int
			for h := 0; h < sim.HoursPerWeek; h++ {
				r1 := m1.Fleet.Rates[h][c]
				if r1 < rtBucketMinRate {
					continue
				}
				rel := math.Abs(m2.Fleet.Rates[h][c]-r1) / r1
				if rel > rtBucketTol {
					t.Errorf("seed %d cause %d hour %d: rate %.4f refit %.4f (rel %.3f > %.2f)",
						seed, c, h, r1, m2.Fleet.Rates[h][c], rel, rtBucketTol)
				}
				sumRel += rel
				n++
			}
			if n > 0 {
				if mean := sumRel / float64(n); mean > rtBucketMeanTol {
					t.Errorf("seed %d cause %d: mean bucket error %.3f > %.2f over %d buckets",
						seed, c, mean, rtBucketMeanTol, n)
				}
			}
		}

		// Duration distributions per cause (pooled day types via weekday —
		// the dominant sample).
		for c := 0; c < NumCauses; c++ {
			e1 := m1.Fleet.Durations[c][int(sim.Weekday)]
			e2 := m2.Fleet.Durations[c][int(sim.Weekday)]
			if e1.N() < 100 || e2.N() < 100 {
				continue
			}
			if ks := e1.KSDistance(e2); ks > rtKSTol {
				t.Errorf("seed %d cause %d: duration KS %.3f > %.2f (n=%d vs %d)",
					seed, c, ks, rtKSTol, e1.N(), e2.N())
			}
		}

		// Figure 6 surface: the generated fleet's availability-interval
		// distribution matches the source fleet's.
		for _, dt := range []sim.DayType{sim.Weekday, sim.Weekend} {
			e1, e2 := src.IntervalECDF(dt), gen.IntervalECDF(dt)
			if e1.N() == 0 || e2.N() == 0 {
				continue
			}
			if ks := e1.KSDistance(e2); ks > rtKSTol {
				t.Errorf("seed %d %v: interval ECDF KS %.3f > %.2f", seed, dt, ks, rtKSTol)
			}
		}
	}
}

// TestGenerateDeterministic pins the seeded-generator contract: the same
// (model, config) yields byte-identical events, and machine streams are
// independent of fleet size (machine 0 draws the same life in a 1-machine
// and a 5-machine fleet).
func TestGenerateDeterministic(t *testing.T) {
	m := EnterpriseModel()
	cfg := GenConfig{Machines: 5, Days: 10, Seed: 42}
	a, err := Generate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) == 0 {
		t.Fatal("generated no events")
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("re-generation changed event count: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs between identical runs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}

	solo, err := Generate(m, GenConfig{Machines: 1, Days: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var m0 []trace.Event
	for _, e := range a.Events {
		if e.Machine == 0 {
			m0 = append(m0, e)
		}
	}
	if len(m0) != len(solo.Events) {
		t.Fatalf("machine 0 events depend on fleet size: %d vs %d", len(m0), len(solo.Events))
	}
	for i := range m0 {
		if m0[i] != solo.Events[i] {
			t.Fatalf("machine 0 event %d depends on fleet size: %+v vs %+v", i, m0[i], solo.Events[i])
		}
	}
}

// TestFitRejectsDegenerateInput pins the error paths.
func TestFitRejectsDegenerateInput(t *testing.T) {
	if _, err := Fit(nil, FitOptions{}); err == nil {
		t.Error("nil trace accepted")
	}
	empty := trace.New(sim.Window{}, sim.Calendar{}, 0)
	if _, err := Fit(empty, FitOptions{}); err == nil {
		t.Error("zero-machine trace accepted")
	}
	zeroSpan := trace.New(sim.Window{}, sim.Calendar{}, 2)
	if _, err := Fit(zeroSpan, FitOptions{}); err == nil {
		t.Error("zero-span trace accepted")
	}
	if _, err := Generate(EnterpriseModel(), GenConfig{}); err == nil {
		t.Error("zero GenConfig accepted")
	}
	if _, err := GenerateScenario("no-such-scenario", GenConfig{Machines: 1, Days: 1, Seed: 1}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestPerMachineFit checks that per-machine models exist and generation
// uses them.
func TestPerMachineFit(t *testing.T) {
	src, err := GenerateScenario("enterprise", GenConfig{Machines: 4, Days: 21, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Fit(src, FitOptions{PerMachine: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PerMachine) != 4 {
		t.Fatalf("per-machine models = %d, want 4", len(m.PerMachine))
	}
	tr, err := Generate(m, GenConfig{Machines: 4, Days: 7, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("per-machine generation produced no events")
	}
}

// TestStateDistribution checks the stationary occupancy is a proper
// distribution dominated by availability.
func TestStateDistribution(t *testing.T) {
	for _, name := range ScenarioNames() {
		d, err := ScenarioStateDistribution(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var sum float64
		for _, p := range d {
			if p < 0 || p > 1 {
				t.Fatalf("%s: occupancy %v outside [0,1]", name, d)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: occupancies sum to %v, want 1", name, sum)
		}
		if d[0]+d[1] < 0.5 {
			t.Errorf("%s: available mass %v, want the fleet mostly available", name, d[0]+d[1])
		}
	}
}
