// Package markov fits semi-Markov availability models from recorded
// traces and runs them the other way: as seeded, deterministic generative
// fleet simulators. The model is the paper's five-state structure (Fig. 4/5)
// viewed as a marked point process on each machine's availability timeline:
// while a machine is available (S1/S2), failures of each cause — S3 CPU
// contention, S4 memory thrashing, S5 revocation — arrive with a
// piecewise-constant hazard per hour of week, and each failure holds the
// machine down for a duration drawn from that cause's empirical
// distribution, split by day type. Hour-of-week hazards capture exactly the
// daily/weekly structure of Figures 6 and 7; the ergodic-Markovian-
// environment framing (Comets et al.) is what justifies treating the fitted
// model as a generator rather than only a description.
//
// On top of the fitted models sits a scenario library (see scenario.go):
// synthetic MachineModels and structural generators for fleets the student
// lab never had — enterprise diurnal desktops, spot-style correlated
// revocation waves, multicore hosts with per-core contention, and
// container-dense hosts with OS-virtualization caps.
package markov

import (
	"fmt"

	"repro/internal/availability"
	"repro/internal/sim"
	"repro/internal/stats"
)

// NumCauses is the number of failure causes the model distinguishes, one
// per unavailability state: S3 (CPU), S4 (memory), S5 (revocation).
const NumCauses = 3

// CauseStates maps cause index to its failure state.
var CauseStates = [NumCauses]availability.State{
	availability.S3, availability.S4, availability.S5,
}

// causeIndex maps a failure state back to its cause slot, or -1.
func causeIndex(st availability.State) int {
	switch st {
	case availability.S3:
		return 0
	case availability.S4:
		return 1
	case availability.S5:
		return 2
	default:
		return -1
	}
}

// numDayTypes indexes duration distributions by sim.DayType (Weekday,
// Weekend).
const numDayTypes = 2

// MachineModel is the fitted semi-Markov model of one machine (or of a
// whole fleet pooled into one, see Model.Fleet): hour-of-week hazard rates
// out of the available macro-state, and per-cause repair-time
// distributions split by day type.
type MachineModel struct {
	// Rates[h][c] is the hazard of cause c in hour-of-week slot h,
	// in events per available machine-hour. Slot 0 is Monday 00:00.
	Rates [sim.HoursPerWeek][NumCauses]float64
	// Durations[c][dt] is the empirical distribution of cause c's
	// unavailability durations (hours) for events starting on a day of
	// type dt. Entries may be empty when the cause never occurred.
	Durations [NumCauses][numDayTypes]*stats.ECDF
}

// TotalRate returns the combined hazard (events per available hour)
// in hour-of-week slot h.
func (m *MachineModel) TotalRate(h int) float64 {
	var sum float64
	for c := 0; c < NumCauses; c++ {
		sum += m.Rates[h][c]
	}
	return sum
}

// WeeklyRate returns the mean hazard of cause c across all hour-of-week
// slots — the aggregate events per available hour the model implies.
func (m *MachineModel) WeeklyRate(c int) float64 {
	var sum float64
	for h := 0; h < sim.HoursPerWeek; h++ {
		sum += m.Rates[h][c]
	}
	return sum / sim.HoursPerWeek
}

// MeanDuration returns the mean unavailability duration (hours) of cause
// c pooled across day types, 0 when the cause never occurred.
func (m *MachineModel) MeanDuration(c int) float64 {
	var sum float64
	var n int
	for dt := 0; dt < numDayTypes; dt++ {
		if e := m.Durations[c][dt]; e != nil && e.N() > 0 {
			sum += e.Mean() * float64(e.N())
			n += e.N()
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// duration returns the ECDF for cause c on day type dt, falling back to
// the other day type when this one has no sample (a cause seen only on
// weekdays must still be drawable on weekends).
func (m *MachineModel) duration(c int, dt sim.DayType) *stats.ECDF {
	if e := m.Durations[c][dt]; e != nil && e.N() > 0 {
		return e
	}
	other := m.Durations[c][1-int(dt)]
	if other != nil && other.N() > 0 {
		return other
	}
	return nil
}

// Model is a fitted fleet: the pooled model plus optional per-machine
// refinements.
type Model struct {
	// Calendar is the weekly anchoring the model was fitted under.
	Calendar sim.Calendar
	// Machines is the fleet size of the fitted trace.
	Machines int
	// Fleet pools every machine's events and exposure into one model —
	// the statistically strong estimate, and what Generate uses unless
	// PerMachine is populated.
	Fleet *MachineModel
	// PerMachine, when non-nil, holds one model per fitted machine.
	PerMachine []*MachineModel
}

// Validate reports structural problems with the model.
func (m *Model) Validate() error {
	if m.Fleet == nil {
		return fmt.Errorf("markov: model has no fleet-level estimate")
	}
	for h := 0; h < sim.HoursPerWeek; h++ {
		for c := 0; c < NumCauses; c++ {
			if m.Fleet.Rates[h][c] < 0 {
				return fmt.Errorf("markov: negative rate %g at hour %d cause %d", m.Fleet.Rates[h][c], h, c)
			}
		}
	}
	return nil
}

// machineModel picks the generator model for machine id: its own fit when
// per-machine models exist, the pooled fleet otherwise.
func (m *Model) machineModel(id int) *MachineModel {
	if len(m.PerMachine) > 0 {
		return m.PerMachine[id%len(m.PerMachine)]
	}
	return m.Fleet
}

// StateDistribution returns the stationary occupancy the model implies
// over the five states, in order S1..S5, by renewal-reward: each cause
// occupies rate*meanDuration available-hours' worth of downtime per
// available hour, normalized against one hour of availability. The
// available mass is split between S1 and S2 with the fixed 55/20 ratio
// the paper's occupancy tables suggest. This is what loadgen draws fleet
// states from when a scenario is selected.
func (m *Model) StateDistribution() [5]float64 {
	var down [NumCauses]float64
	var total float64 = 1 // one available hour
	for c := 0; c < NumCauses; c++ {
		down[c] = m.Fleet.WeeklyRate(c) * m.Fleet.MeanDuration(c)
		total += down[c]
	}
	avail := 1 / total
	// The paper's fleet spends most wall time fully available; split the
	// available mass S1:S2 = 55:20 as in the loadgen stationary draw.
	const s1Share = 55.0 / 75.0
	return [5]float64{
		avail * s1Share,
		avail * (1 - s1Share),
		down[0] / total,
		down[1] / total,
		down[2] / total,
	}
}
