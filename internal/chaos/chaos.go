// Package chaos injects deterministic, seedable transport faults into the
// networked iShare layer. An Injector implements the same Dial shape as
// ishare.Dialer, so plugging it into a client, broker or node makes every
// failure mode of the paper's availability model reproducible as a
// systems-level event rather than a trace annotation:
//
//   - connection refusal and registry partitions — the S5/URR observable
//     (the service is gone);
//   - dial and read latency — a host too loaded to answer promptly
//     (the S2→S3/UEC boundary);
//   - mid-stream drops — a service that dies while replying (URR mid-job);
//   - corrupted responses — a peer whose answers cannot be trusted.
//
// Faults are scripted: each Fault matches an address, optionally fires a
// bounded number of times, and can be enabled and disabled by name while
// the system runs, which is how the chaos soak test drives partition
// windows. Probabilistic faults draw from a single seeded generator, so a
// fixed seed and a fixed call sequence reproduce the same fault schedule.
package chaos

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"
)

// ErrRefused is the root cause of every injected dial refusal.
var ErrRefused = errors.New("chaos: connection refused")

// Fault describes one injected failure behavior for connections to Addr.
type Fault struct {
	// Name identifies the fault for Enable/Disable; empty names cannot be
	// toggled.
	Name string
	// Addr is the exact target address this fault applies to; empty
	// matches every address.
	Addr string
	// Refuse fails matching dials outright.
	Refuse bool
	// RefuseProb fails matching dials with this probability (ignored when
	// Refuse is set).
	RefuseProb float64
	// DialLatency delays the dial before it proceeds; a delay at or above
	// the dial timeout fails the dial with a timeout error.
	DialLatency time.Duration
	// ReadLatency delays the first read on the connection.
	ReadLatency time.Duration
	// DropAfterBytes closes the connection after that many response bytes
	// have been read — a mid-stream drop. Zero drops immediately when
	// DropProb fires.
	DropAfterBytes int
	// DropProb applies the drop with this probability; 0 with
	// DropAfterBytes > 0 means always.
	DropProb float64
	// CorruptProb flips a byte of the response with this probability.
	CorruptProb float64
	// Times bounds how many connections this fault fires on (0 =
	// unlimited). A fault that matched but did not fire (probability
	// gates all missed) does not consume a charge.
	Times int
	// Skip lets the first Skip matching connections pass unharmed before
	// the fault arms itself, so a schedule can target e.g. "the second
	// exchange with this node" deterministically.
	Skip int
}

// Counters reports how many faults of each kind were injected.
type Counters struct {
	// Dials counts every dial that went through the injector.
	Dials int64
	// Refused counts dials failed with ErrRefused.
	Refused int64
	// Delayed counts injected dial or read delays.
	Delayed int64
	// Dropped counts connections closed mid-stream.
	Dropped int64
	// Corrupted counts responses with a flipped byte.
	Corrupted int64
}

// Injector is a fault-injecting dialer. The zero value is unusable; build
// one with New.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	faults []*faultState

	dials, refused, delayed, dropped, corrupted atomic.Int64
}

type faultState struct {
	f       Fault
	enabled bool
	fired   int
	skipped int
}

// New builds an injector whose probabilistic decisions are driven by the
// given seed.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Add registers a fault, enabled.
func (in *Injector) Add(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = append(in.faults, &faultState{f: f, enabled: true})
}

// SetEnabled toggles every fault with the given name.
func (in *Injector) SetEnabled(name string, on bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, fs := range in.faults {
		if fs.f.Name == name && fs.f.Name != "" {
			fs.enabled = on
		}
	}
}

// Partition refuses every dial to addr until Heal is called — the
// wire-level signature of a network partition or a dead service.
func (in *Injector) Partition(addr string) {
	in.Add(Fault{Name: "partition:" + addr, Addr: addr, Refuse: true})
}

// Heal lifts a Partition on addr.
func (in *Injector) Heal(addr string) {
	in.SetEnabled("partition:"+addr, false)
}

// Counters returns a snapshot of the injected-fault counts.
func (in *Injector) Counters() Counters {
	return Counters{
		Dials:     in.dials.Load(),
		Refused:   in.refused.Load(),
		Delayed:   in.delayed.Load(),
		Dropped:   in.dropped.Load(),
		Corrupted: in.corrupted.Load(),
	}
}

// connPlan is the set of faults one connection will experience, decided at
// dial time so the rng is consumed in a single critical section.
type connPlan struct {
	refuse    bool
	dialDelay time.Duration
	readDelay time.Duration
	dropAfter int // -1 = never
	corrupt   bool
}

func (in *Injector) plan(addr string) connPlan {
	in.mu.Lock()
	defer in.mu.Unlock()
	p := connPlan{dropAfter: -1}
	for _, fs := range in.faults {
		if !fs.enabled || (fs.f.Addr != "" && fs.f.Addr != addr) {
			continue
		}
		if fs.f.Times > 0 && fs.fired >= fs.f.Times {
			continue
		}
		if fs.skipped < fs.f.Skip {
			fs.skipped++
			continue
		}
		fired := false
		if fs.f.Refuse || (fs.f.RefuseProb > 0 && in.rng.Float64() < fs.f.RefuseProb) {
			p.refuse = true
			fired = true
		}
		if fs.f.DialLatency > 0 {
			p.dialDelay += fs.f.DialLatency
			fired = true
		}
		if fs.f.ReadLatency > 0 {
			p.readDelay += fs.f.ReadLatency
			fired = true
		}
		if fs.f.DropAfterBytes > 0 || fs.f.DropProb > 0 {
			if fs.f.DropProb == 0 || in.rng.Float64() < fs.f.DropProb {
				p.dropAfter = fs.f.DropAfterBytes
				fired = true
			}
		}
		if fs.f.CorruptProb > 0 && in.rng.Float64() < fs.f.CorruptProb {
			p.corrupt = true
			fired = true
		}
		if fired {
			fs.fired++
		}
	}
	return p
}

// Dial implements the ishare Dialer shape with the planned faults applied.
func (in *Injector) Dial(addr string, timeout time.Duration) (net.Conn, error) {
	in.dials.Add(1)
	p := in.plan(addr)
	if p.refuse {
		in.refused.Add(1)
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: ErrRefused}
	}
	if p.dialDelay > 0 {
		in.delayed.Add(1)
		if p.dialDelay >= timeout {
			time.Sleep(timeout)
			return nil, fmt.Errorf("chaos: dial to %s timed out after %v", addr, timeout)
		}
		time.Sleep(p.dialDelay)
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if p.readDelay > 0 || p.dropAfter >= 0 || p.corrupt {
		return &faultConn{Conn: conn, in: in, readDelay: p.readDelay, dropAfter: p.dropAfter, corrupt: p.corrupt}, nil
	}
	return conn, nil
}

// faultConn applies read-side faults to one connection.
type faultConn struct {
	net.Conn
	in        *Injector
	readDelay time.Duration
	dropAfter int // -1 = never
	corrupt   bool
	nread     int
}

func (c *faultConn) Read(b []byte) (int, error) {
	if d := c.readDelay; d > 0 {
		c.readDelay = 0
		c.in.delayed.Add(1)
		time.Sleep(d)
	}
	if c.dropAfter >= 0 && c.nread >= c.dropAfter {
		c.in.dropped.Add(1)
		_ = c.Conn.Close()
		return 0, fmt.Errorf("chaos: connection to %s dropped mid-stream after %d bytes", c.RemoteAddr(), c.nread)
	}
	if c.dropAfter >= 0 && len(b) > c.dropAfter-c.nread {
		b = b[:c.dropAfter-c.nread]
	}
	n, err := c.Conn.Read(b)
	if n > 0 && c.corrupt {
		c.corrupt = false
		b[0] ^= 0x55
		c.in.corrupted.Add(1)
	}
	c.nread += n
	return n, err
}
