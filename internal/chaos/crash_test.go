package chaos

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/ishare"
)

func TestPlanCrashesDeterministicAndMerged(t *testing.T) {
	targets := []string{"shard-0", "shard-1", "broker"}
	a := PlanCrashes(42, targets, 12, time.Minute, 2*time.Second, 8*time.Second)
	b := PlanCrashes(42, targets, 12, time.Minute, 2*time.Second, 8*time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule from 12 requested events")
	}
	c := PlanCrashes(43, targets, 12, time.Minute, 2*time.Second, 8*time.Second)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Per target: windows sorted and non-overlapping after merging.
	last := make(map[string]time.Duration)
	for _, e := range a {
		if end, ok := last[e.Target]; ok && e.At <= end {
			t.Fatalf("overlapping windows survived merge for %s: starts at %v, previous ends %v", e.Target, e.At, end)
		}
		last[e.Target] = e.At + e.Down
		if e.Down < 2*time.Second || e.Down > 16*time.Second {
			t.Fatalf("down window %v outside sane range", e.Down)
		}
	}
}

// recorder is a Process that logs its transitions.
type recorder struct {
	name   string
	events *[]string
	down   bool
}

func (r *recorder) Crash() error {
	if r.down {
		return fmt.Errorf("%s crashed twice", r.name)
	}
	r.down = true
	*r.events = append(*r.events, "kill:"+r.name)
	return nil
}

func (r *recorder) Restart() error {
	if !r.down {
		return fmt.Errorf("%s revived while up", r.name)
	}
	r.down = false
	*r.events = append(*r.events, "revive:"+r.name)
	return nil
}

func TestCrashRunnerFiresInOrder(t *testing.T) {
	var events []string
	procs := map[string]Process{
		"a": &recorder{name: "a", events: &events},
		"b": &recorder{name: "b", events: &events},
	}
	schedule := []CrashEvent{
		{Target: "a", At: 10 * time.Second, Down: 5 * time.Second},
		{Target: "b", At: 12 * time.Second, Down: 10 * time.Second},
		{Target: "a", At: 20 * time.Second, Down: 3 * time.Second},
	}
	r, err := NewRunner(procs, schedule)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Advance(11 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !r.Down("a") || r.Down("b") {
		t.Fatalf("wrong down set at t=11s: a=%v b=%v", r.Down("a"), r.Down("b"))
	}
	crashes, revives, err := r.FinishAll()
	if err != nil {
		t.Fatal(err)
	}
	if crashes != 3 || revives != 3 {
		t.Fatalf("crashes=%d revives=%d, want 3/3", crashes, revives)
	}
	want := []string{"kill:a", "kill:b", "revive:a", "kill:a", "revive:b", "revive:a"}
	if !reflect.DeepEqual(events, want) {
		t.Fatalf("event order:\n got %v\nwant %v", events, want)
	}
	if r.Down("a") || r.Down("b") {
		t.Fatal("FinishAll left a process down")
	}
	if _, err := NewRunner(procs, []CrashEvent{{Target: "ghost", At: time.Second, Down: time.Second}}); err == nil {
		t.Fatal("unbound target accepted")
	}
}

// TestCrashSoak is the invariant harness of this PR: many fixed-seed
// randomized crash schedules against a durable two-shard registry, with
// fsync latency and clock skew injected on some seeds, checking after
// every schedule that
//
//   - no acked registration is lost: every register/heartbeat batch the
//     fleet got an OK for is served again after the final recovery, and a
//     successful heartbeat never reports an acked node as missing;
//   - ShardMap generations are monotonic per shard, through mid-soak map
//     pushes, crashes and the restart path's stale re-install;
//   - (every 5th seed) job submission through a breaker-armed broker
//     stays exactly-once across shard death — node-side execution
//     counts, not broker-side bookkeeping;
//   - (every 7th seed) a partitioned gossip pair reconverges to
//     identical stores after healing.
//
// Everything is virtual-time and seed-deterministic: fifty schedules
// replay identically on every run and cost seconds. Run with -race.
func TestCrashSoak(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%02d", seed), func(t *testing.T) {
			runCrashSchedule(t, int64(seed))
		})
	}
}

func runCrashSchedule(t *testing.T, seed int64) {
	t.Helper()
	opt := ishare.RegistryOptions{
		TTL: time.Minute,
		WAL: &ishare.WALOptions{Dir: t.TempDir()},
	}
	if seed%3 == 0 {
		opt.WAL.FsyncDelay = 2 * time.Millisecond // slow-disk seed
	}
	if seed%4 == 0 {
		opt.Now = SkewedClock(2 * time.Second) // mis-set clock seed
	}
	s, err := ishare.NewShardedRegistryWithOptions(2, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addrs := s.Addrs()

	const horizon = 60 * time.Second
	schedule := PlanCrashes(seed, []string{"shard-0", "shard-1"}, 4, horizon, 4*time.Second, 12*time.Second)
	procs := map[string]Process{
		"shard-0": ProcessFunc{CrashFn: func() error { return s.CrashShard(0) }, RestartFn: func() error { return s.RestartShard(0) }},
		"shard-1": ProcessFunc{CrashFn: func() error { return s.CrashShard(1) }, RestartFn: func() error { return s.RestartShard(1) }},
	}
	runner, err := NewRunner(procs, schedule)
	if err != nil {
		t.Fatal(err)
	}

	c := &ishare.Client{Shards: addrs, Timeout: time.Second, Retry: ishare.RetryPolicy{MaxAttempts: 1}}
	ctx := context.Background()

	// Exactly-once seeds run one real node and a breaker-armed broker.
	var node *ishare.Node
	var broker *ishare.Broker
	submitted := 0
	if seed%5 == 0 {
		node = startNode(t, ishare.NodeConfig{
			Name:                fmt.Sprintf("exec-%02d", seed),
			RegistryAddrs:       addrs,
			HeartbeatEvery:      20 * time.Millisecond,
			HeartbeatMaxBackoff: 80 * time.Millisecond,
		})
		broker = &ishare.Broker{
			Client:           c,
			DiscoverLimit:    16,
			CacheTTL:         time.Minute,
			MaxRounds:        2,
			RoundDelay:       5 * time.Millisecond,
			BreakerThreshold: 2,
			BreakerCooldown:  150 * time.Millisecond,
		}
	}

	ackedGen := make(map[string]int64) // node -> gen of last acked write
	lastMapGen := make(map[int]int64)  // shard -> highest ShardMap gen observed
	mapGen := int64(1)

	checkMapGen := func(i int) {
		if runner.Down(fmt.Sprintf("shard-%d", i)) {
			return
		}
		m, err := c.FetchShardMap(ctx, addrs[i])
		if err != nil {
			return // transient: mid-restart or just crashed
		}
		if m.Gen < lastMapGen[i] {
			t.Fatalf("seed %d: shard %d ShardMap gen regressed %d -> %d", seed, i, lastMapGen[i], m.Gen)
		}
		lastMapGen[i] = m.Gen
	}

	const steps = 12
	for step := 1; step <= steps; step++ {
		if err := runner.Advance(horizon * time.Duration(step) / steps); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Two new machines join per step.
		for k := 0; k < 2; k++ {
			name := fmt.Sprintf("m-%02d-%02d-%d", seed, step, k)
			d := ishare.NodeDigest{
				Name: name, Addr: fmt.Sprintf("10.8.%d.%d:70", step, k),
				State: "S1(full)", Load: 0.1 * float64(k), Gen: 1,
				UnixMS: time.Now().UnixMilli(),
			}
			if err := c.RegisterBatch(ctx, addrs[s.Owner(name)], []ishare.NodeDigest{d}); err == nil {
				ackedGen[name] = 1
			}
		}
		// Every known machine heartbeats with a rising generation. A shard
		// that acks must know every acked name it owns — a durable shard
		// never asks an acked node to re-register.
		gen := int64(step + 1)
		for i := range addrs {
			var batch []ishare.NodeDigest
			for name := range ackedGen {
				if s.Owner(name) == i {
					batch = append(batch, ishare.NodeDigest{
						Name: name, State: "S2(reduced)", Gen: gen,
						UnixMS: time.Now().UnixMilli(),
					})
				}
			}
			if len(batch) == 0 {
				continue
			}
			missing, err := c.HeartbeatBatch(ctx, addrs[i], batch)
			if err != nil {
				continue // shard down: nothing acked
			}
			if len(missing) != 0 {
				t.Fatalf("seed %d step %d: durable shard %d lost acked registrations: %v", seed, step, i, missing)
			}
			for _, d := range batch {
				ackedGen[d.Name] = gen
			}
		}
		// Mid-soak shard map pushes: live shards adopt a higher generation,
		// which must survive their next crash.
		if step == 4 || step == 8 {
			mapGen++
			for i := range addrs {
				if !runner.Down(fmt.Sprintf("shard-%d", i)) {
					s.Shard(i).SetShardMap(ishare.ShardMap{Gen: mapGen, Shards: addrs})
				}
			}
		}
		checkMapGen(0)
		checkMapGen(1)

		// Exactly-once seeds submit through whatever is currently alive.
		if broker != nil && step%4 == 2 {
			spec := ishare.JobSpec{Name: fmt.Sprintf("job-%02d-%02d", seed, step), CPUSeconds: 2}
			for attempt := 0; attempt < 40; attempt++ {
				if _, _, err := broker.SubmitBest(ctx, spec); err == nil {
					submitted++
					break
				}
				time.Sleep(25 * time.Millisecond)
			}
		}
	}

	if _, _, err := runner.FinishAll(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	// Recovery invariant: every acked registration is served again, at a
	// generation no older than its last acked write.
	for i, addr := range addrs {
		nodes, err := c.ListShard(ctx, addr, 0)
		if err != nil {
			t.Fatalf("seed %d: list shard %d after recovery: %v", seed, i, err)
		}
		got := make(map[string]int64, len(nodes))
		for _, n := range nodes {
			got[n.Name] = n.Gen
		}
		for name, gen := range ackedGen {
			if s.Owner(name) != i {
				continue
			}
			g, ok := got[name]
			if !ok {
				t.Fatalf("seed %d: acked registration %s lost from shard %d", seed, name, i)
			}
			if g < gen {
				t.Fatalf("seed %d: %s recovered at gen %d, acked gen %d", seed, name, g, gen)
			}
		}
		checkMapGen(i)
		if lastMapGen[i] > 0 && lastMapGen[i] < 1 {
			t.Fatalf("seed %d: shard %d lost its shard map", seed, i)
		}
	}

	// Exactly-once invariant, checked on the executing node itself.
	if node != nil {
		counts := node.ExecutionCounts()
		for id, n := range counts {
			if n != 1 {
				t.Fatalf("seed %d: job %s executed %d times", seed, id, n)
			}
		}
		if submitted > 0 && len(counts) == 0 {
			t.Fatalf("seed %d: %d submissions acked but node executed nothing", seed, submitted)
		}
	}

	// Gossip reconvergence after a heal: during the soak the pair was
	// partitioned (no exchanges) while one side kept learning; two
	// push-pull rounds after healing their stores must be identical.
	if seed%7 == 0 {
		a := ishare.NewGossiper(ishare.GossipConfig{})
		b := ishare.NewGossiper(ishare.GossipConfig{})
		for name, gen := range ackedGen {
			a.Update(ishare.NodeDigest{Name: name, Addr: "10.8.0.1:70", State: "S1(full)", Gen: gen, UnixMS: time.Now().UnixMilli()})
		}
		b.Update(ishare.NodeDigest{Name: "b-only", Addr: "10.8.0.2:70", State: "S2(reduced)", Gen: 1, UnixMS: time.Now().UnixMilli()})
		// Heal: one push-pull round each way.
		b.Merge(a.Snapshot())
		a.Merge(b.Snapshot())
		if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
			t.Fatalf("seed %d: gossip stores did not reconverge after heal", seed)
		}
	}
}
