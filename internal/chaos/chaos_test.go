package chaos

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/ishare"
)

var ctx = context.Background()

// The injector must satisfy the ishare dial seam.
var _ ishare.Dialer = (*Injector)(nil)

func startRegistry(t *testing.T, ttl time.Duration) *ishare.Registry {
	t.Helper()
	r, err := ishare.NewRegistry("127.0.0.1:0", ttl)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func startNode(t *testing.T, cfg ishare.NodeConfig) *ishare.Node {
	t.Helper()
	n, err := ishare.NewNode("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func fastClient(registryAddr string, d ishare.Dialer) *ishare.Client {
	return &ishare.Client{
		RegistryAddr: registryAddr,
		Timeout:      time.Second,
		Dialer:       d,
		Retry: ishare.RetryPolicy{
			MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 1,
		},
	}
}

func TestPartitionAndHeal(t *testing.T) {
	reg := startRegistry(t, time.Minute)
	startNode(t, ishare.NodeConfig{Name: "n1", RegistryAddr: reg.Addr(), HostLoad: 0.05})

	inj := New(1)
	c := fastClient(reg.Addr(), inj)
	if _, err := c.List(ctx); err != nil {
		t.Fatalf("list before partition: %v", err)
	}

	inj.Partition(reg.Addr())
	if _, err := c.List(ctx); err == nil {
		t.Fatal("list through a partition succeeded")
	}
	if n := inj.Counters().Refused; n < 3 {
		t.Errorf("refused = %d, want every retry refused", n)
	}

	inj.Heal(reg.Addr())
	if _, err := c.List(ctx); err != nil {
		t.Fatalf("list after heal: %v", err)
	}
}

func TestClientRetriesThroughTransientRefusals(t *testing.T) {
	reg := startRegistry(t, time.Minute)
	inj := New(1)
	// The first two dials are refused; the retry budget (3 attempts)
	// must absorb them.
	inj.Add(Fault{Name: "flaky", Addr: reg.Addr(), Refuse: true, Times: 2})
	c := fastClient(reg.Addr(), inj)
	if _, err := c.List(ctx); err != nil {
		t.Fatalf("list should survive 2 refusals under a 3-attempt budget: %v", err)
	}
	if n := inj.Counters().Refused; n != 2 {
		t.Errorf("refused = %d, want exactly 2", n)
	}
}

func TestCorruptedResponseIsRejectedThenRetried(t *testing.T) {
	reg := startRegistry(t, time.Minute)
	inj := New(1)
	inj.Add(Fault{Name: "corrupt", Addr: reg.Addr(), CorruptProb: 1, Times: 1})
	c := fastClient(reg.Addr(), inj)
	if _, err := c.List(ctx); err != nil {
		t.Fatalf("list should survive one corrupted response: %v", err)
	}
	if n := inj.Counters().Corrupted; n != 1 {
		t.Errorf("corrupted = %d, want 1", n)
	}
}

func TestDialLatencyInjection(t *testing.T) {
	reg := startRegistry(t, time.Minute)
	inj := New(1)
	inj.Add(Fault{Name: "slow", Addr: reg.Addr(), DialLatency: 30 * time.Millisecond, Times: 1})
	c := fastClient(reg.Addr(), inj)
	start := time.Now()
	if _, err := c.List(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("list took %v, want >= injected 30ms", elapsed)
	}
	if n := inj.Counters().Delayed; n != 1 {
		t.Errorf("delayed = %d, want 1", n)
	}
}

func TestDialLatencyBeyondTimeoutFails(t *testing.T) {
	reg := startRegistry(t, time.Minute)
	inj := New(1)
	inj.Add(Fault{Name: "stuck", Addr: reg.Addr(), DialLatency: 200 * time.Millisecond})
	c := fastClient(reg.Addr(), inj)
	c.Timeout = 50 * time.Millisecond
	c.Retry.MaxAttempts = 1
	if _, err := c.List(ctx); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("latency above the dial timeout should time out, got %v", err)
	}
}

func TestMidStreamDropTriggersDedupSafeRetry(t *testing.T) {
	// The response to the first submission is dropped mid-stream after
	// the node already ran the job. The broker's same-node retry must
	// recover the cached result instead of running the job again.
	reg := startRegistry(t, time.Minute)
	node := startNode(t, ishare.NodeConfig{Name: "n1", RegistryAddr: reg.Addr(), HostLoad: 0.05})

	inj := New(1)
	// Skip the broker's Info exchange with the node; drop the response to
	// the next connection — the submission itself.
	inj.Add(Fault{Name: "drop-submit", Addr: node.Addr(), DropAfterBytes: 8, Times: 1, Skip: 1})
	b := &ishare.Broker{Client: fastClient(reg.Addr(), inj)}

	res, onNode, err := b.SubmitBest(ctx, ishare.JobSpec{Name: "dropped", ID: "drop-1", CPUSeconds: 90, RSSMB: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("job did not complete: %+v", res)
	}
	if onNode.Name != "n1" {
		t.Fatalf("completed on %s, want n1", onNode.Name)
	}
	if !res.Deduped {
		t.Errorf("recovered result should be the node's cached one: %+v", res)
	}
	if got := node.ExecutionCounts()["drop-1"]; got != 1 {
		t.Errorf("job executed %d times, want exactly once", got)
	}
	if n := inj.Counters().Dropped; n != 1 {
		t.Errorf("dropped = %d, want 1", n)
	}
	if m := b.Metrics(); m.SameNodeRetries == 0 {
		t.Errorf("metrics = %+v, want a same-node retry", m)
	}
}

func TestFaultToggleByName(t *testing.T) {
	reg := startRegistry(t, time.Minute)
	inj := New(1)
	inj.Add(Fault{Name: "gate", Addr: reg.Addr(), Refuse: true})
	inj.SetEnabled("gate", false)
	c := fastClient(reg.Addr(), inj)
	if _, err := c.List(ctx); err != nil {
		t.Fatalf("disabled fault still firing: %v", err)
	}
	inj.SetEnabled("gate", true)
	if _, err := c.List(ctx); err == nil {
		t.Fatal("re-enabled fault not firing")
	}
}

func TestSeededRefusalSequenceIsReproducible(t *testing.T) {
	run := func(seed int64) []bool {
		inj := New(seed)
		inj.Add(Fault{Name: "p", RefuseProb: 0.5})
		out := make([]bool, 32)
		for i := range out {
			out[i] = inj.plan("x").refuse
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 32-call sequences")
	}
}
