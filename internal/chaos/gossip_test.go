package chaos

import (
	"testing"
	"time"

	"repro/internal/ishare"
)

// The tentpole resilience claim of the sharded control plane: with EVERY
// registry shard partitioned away, a broker still places jobs, because
// node availability spreads peer-to-peer over gossip. The schedule is
// fully deterministic — gossip rounds are driven manually, the partition
// is scripted, and the broker's caches are never warmed.
func TestBrokerPlacesThroughFullControlPlanePartition(t *testing.T) {
	sharded, err := ishare.NewShardedRegistry(2, time.Minute, ishare.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sharded.Close() })
	inj := New(1)

	// Three published nodes in a gossip seed chain: c knows b, b knows a.
	a := startNode(t, ishare.NodeConfig{Name: "gossip-a", HostLoad: 0.05, Dialer: inj,
		RegistryAddrs: sharded.Addrs(), Gossip: &ishare.GossipConfig{Dialer: inj}})
	b := startNode(t, ishare.NodeConfig{Name: "gossip-b", HostLoad: 0.05, Dialer: inj,
		RegistryAddrs: sharded.Addrs(), Gossip: &ishare.GossipConfig{Peers: []string{a.Addr()}, Dialer: inj}})
	c := startNode(t, ishare.NodeConfig{Name: "gossip-c", HostLoad: 0.05, Dialer: inj,
		RegistryAddrs: sharded.Addrs(), Gossip: &ishare.GossipConfig{Peers: []string{b.Addr()}, Dialer: inj}})

	// The whole control plane goes dark. Node-to-node traffic still flows.
	for _, addr := range sharded.Addrs() {
		inj.Partition(addr)
	}

	// Two manual anti-entropy rounds: c's digest reaches a through b.
	c.Gossiper().Tick(ctx)
	b.Gossiper().Tick(ctx)

	// The broker never saw a healthy registry (its caches are cold) but
	// participates in gossip as a listener peer seeded with one node.
	gossip := ishare.NewGossiper(ishare.GossipConfig{Peers: []string{a.Addr()}, Dialer: inj})
	t.Cleanup(gossip.Close)
	if gossip.Tick(ctx) == 0 {
		t.Fatal("broker gossiper could not reach its seed peer")
	}
	if gossip.Len() < 3 {
		t.Fatalf("gossip store has %d digests, want all 3 nodes", gossip.Len())
	}

	broker := &ishare.Broker{
		Client: &ishare.Client{Shards: sharded.Addrs(), Dialer: inj, Timeout: 300 * time.Millisecond,
			Retry: ishare.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Seed: 1}},
		DiscoverLimit: 8,
		Gossip:        gossip,
	}
	cands, err := broker.Candidates(ctx)
	if err != nil {
		t.Fatalf("discovery with all shards partitioned: %v", err)
	}
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3 gossip-learned nodes", len(cands))
	}
	for _, cand := range cands {
		if !cand.Stale {
			t.Fatalf("gossip-derived candidate not marked stale: %+v", cand)
		}
	}

	res, node, err := broker.SubmitBest(ctx, ishare.JobSpec{Name: "through-the-dark", CPUSeconds: 30})
	if err != nil {
		t.Fatalf("placement through full partition: %v", err)
	}
	if !res.Completed {
		t.Fatalf("job did not complete: %+v", res)
	}
	if node.Name == "" {
		t.Fatal("no placement node reported")
	}
	m := broker.Metrics()
	if m.GossipServes == 0 {
		t.Fatalf("metrics = %+v, want GossipServes > 0", m)
	}
	if m.StaleServes != 0 {
		t.Fatalf("metrics = %+v, want no cache serves (caches were cold)", m)
	}

	// Heal the shards: the next discovery goes back to the registry path
	// (the nodes re-register via heartbeat backoff).
	for _, addr := range sharded.Addrs() {
		inj.Heal(addr)
	}
}
