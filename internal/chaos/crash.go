package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// This file extends fault injection past the transport seam to process
// death: a deterministic crash/restart scheduler over anything that can
// be killed and revived — registry shards, brokers, whole agents. The
// paper's Table 2 finds ~90% of unavailability events are host reboots
// with sub-minute outages, so the canonical schedule is many short
// down-windows at randomized times; PlanCrashes generates exactly that,
// reproducibly from a seed, and Runner fires the kills and revivals as a
// virtual clock is stepped forward. Nothing here sleeps: tests advance
// virtual time explicitly, so fifty randomized crash schedules replay in
// seconds and identically on every run.

// Process is anything the crash scheduler can kill and revive. Crash
// must behave like SIGKILL (no drain, no final flush); Restart must
// bring the process back on the same address.
type Process interface {
	Crash() error
	Restart() error
}

// ProcessFunc adapts a pair of closures to Process.
type ProcessFunc struct {
	CrashFn   func() error
	RestartFn func() error
}

func (p ProcessFunc) Crash() error { return p.CrashFn() }

func (p ProcessFunc) Restart() error { return p.RestartFn() }

// CrashEvent is one scheduled kill: Target goes down at virtual time At
// and is revived Down later.
type CrashEvent struct {
	Target string
	At     time.Duration
	Down   time.Duration
}

// PlanCrashes draws n crash events over the virtual horizon, spread
// across the named targets, each with a down-window uniform in
// [minDown, maxDown]. The schedule is a pure function of the seed.
// Overlapping windows for one target are merged at plan time (a process
// cannot die twice before being revived), so the returned schedule is
// directly executable.
func PlanCrashes(seed int64, targets []string, n int, horizon, minDown, maxDown time.Duration) []CrashEvent {
	if len(targets) == 0 || n <= 0 || horizon <= 0 {
		return nil
	}
	if minDown <= 0 {
		minDown = horizon / 20
	}
	if maxDown < minDown {
		maxDown = minDown
	}
	rng := rand.New(rand.NewSource(seed))
	perTarget := make(map[string][]CrashEvent)
	for i := 0; i < n; i++ {
		t := targets[rng.Intn(len(targets))]
		at := time.Duration(rng.Int63n(int64(horizon)))
		down := minDown
		if maxDown > minDown {
			down += time.Duration(rng.Int63n(int64(maxDown - minDown)))
		}
		perTarget[t] = append(perTarget[t], CrashEvent{Target: t, At: at, Down: down})
	}
	var out []CrashEvent
	for _, t := range targets {
		evs := perTarget[t]
		sort.Slice(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
		// Merge overlapping down-windows for this target.
		var merged []CrashEvent
		for _, e := range evs {
			if len(merged) > 0 {
				last := &merged[len(merged)-1]
				if e.At <= last.At+last.Down {
					if end := e.At + e.Down; end > last.At+last.Down {
						last.Down = end - last.At
					}
					continue
				}
			}
			merged = append(merged, e)
		}
		out = append(out, merged...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// crashAction is one point on the runner's timeline: a kill or a revival.
type crashAction struct {
	at      time.Duration
	target  string
	restart bool
}

// Runner executes a crash schedule against live processes as its virtual
// clock is advanced. It is single-threaded by design: the owning test
// calls Advance between workload steps, and every kill/revival happens
// synchronously inside that call, so assertions always see a quiescent
// schedule.
type Runner struct {
	procs   map[string]Process
	actions []crashAction
	next    int
	now     time.Duration
	downs   map[string]bool
	crashes int
	revives int
}

// NewRunner binds a schedule to its processes. Events naming an unbound
// target are an error — a schedule that silently skips kills would pass
// vacuously.
func NewRunner(procs map[string]Process, schedule []CrashEvent) (*Runner, error) {
	r := &Runner{procs: procs, downs: make(map[string]bool)}
	for _, e := range schedule {
		if _, ok := procs[e.Target]; !ok {
			return nil, fmt.Errorf("chaos: crash schedule targets unbound process %q", e.Target)
		}
		r.actions = append(r.actions, crashAction{at: e.At, target: e.Target})
		r.actions = append(r.actions, crashAction{at: e.At + e.Down, target: e.Target, restart: true})
	}
	sort.SliceStable(r.actions, func(i, j int) bool {
		if r.actions[i].at != r.actions[j].at {
			return r.actions[i].at < r.actions[j].at
		}
		// A revival due at the same instant as the next kill runs first.
		return r.actions[i].restart && !r.actions[j].restart
	})
	return r, nil
}

// Advance steps the virtual clock to t, firing every kill and revival
// due on the way, in order. It returns the first process error.
func (r *Runner) Advance(t time.Duration) error {
	if t > r.now {
		r.now = t
	}
	for r.next < len(r.actions) && r.actions[r.next].at <= r.now {
		a := r.actions[r.next]
		r.next++
		if a.restart {
			if !r.downs[a.target] {
				continue
			}
			if err := r.procs[a.target].Restart(); err != nil {
				return fmt.Errorf("chaos: restarting %s at %v: %w", a.target, a.at, err)
			}
			r.downs[a.target] = false
			r.revives++
			continue
		}
		if r.downs[a.target] {
			continue
		}
		if err := r.procs[a.target].Crash(); err != nil {
			return fmt.Errorf("chaos: crashing %s at %v: %w", a.target, a.at, err)
		}
		r.downs[a.target] = true
		r.crashes++
	}
	return nil
}

// FinishAll drives the clock past the last scheduled action, reviving
// everything still down, and reports how many kills and revivals fired.
func (r *Runner) FinishAll() (crashes, revives int, err error) {
	last := r.now
	if n := len(r.actions); n > 0 {
		if end := r.actions[n-1].at; end > last {
			last = end
		}
	}
	if err := r.Advance(last + 1); err != nil {
		return r.crashes, r.revives, err
	}
	return r.crashes, r.revives, nil
}

// Down reports whether the named target is currently crashed.
func (r *Runner) Down(target string) bool { return r.downs[target] }

// Now returns the runner's virtual clock.
func (r *Runner) Now() time.Duration { return r.now }

// SkewedClock returns a clock offset from wall time by skew — the
// injectable clock fault for components that accept a Now function. A
// registry shard on a skewed clock is the paper's mis-set lab machine:
// its liveness judgments and WAL stamps drift from its peers', and the
// invariant harness checks the control plane converges anyway.
func SkewedClock(skew time.Duration) func() time.Time {
	return func() time.Time { return time.Now().Add(skew) }
}
