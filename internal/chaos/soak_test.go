package chaos

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/ishare"
	"repro/internal/obs"
)

// TestChaosSoak drives a registry and four nodes through a scripted fault
// schedule — flaky heartbeats, a corrupted and delayed discovery path, a
// full registry partition window, and a node crash at a virtual time — and
// asserts the resilience invariants end to end:
//
//   - every submitted job eventually completes exactly once (node-side
//     execution counts, not just broker-side results);
//   - resumed jobs report cumulative virtual compute equal to a no-fault
//     run of the same specs, within monitor-period slack;
//   - the broker serves placements from its last-known-good cache during
//     the partition window.
//
// The schedule is deterministic: fault decisions draw from fixed seeds and
// the scripted windows are toggled explicitly. Run with -race; job time is
// virtual, so the soak costs seconds of wall clock.
func TestChaosSoak(t *testing.T) {
	reg := startRegistry(t, 500*time.Millisecond)

	// Nodes heartbeat through their own injector so flaky heartbeats
	// cannot perturb the client-side fault sequence.
	nodeInj := New(1002)
	nodeInj.Add(Fault{Name: "hb-flake", Addr: reg.Addr(), RefuseProb: 0.15})

	nodeCfg := func(name string, load float64) ishare.NodeConfig {
		return ishare.NodeConfig{
			Name:                name,
			RegistryAddr:        reg.Addr(),
			HostLoad:            load,
			HeartbeatEvery:      25 * time.Millisecond,
			HeartbeatMaxBackoff: 100 * time.Millisecond,
			Dialer:              nodeInj,
		}
	}

	// a-crash dies at virtual t=90s — mid-job, taking the guest with it
	// (URR/S5). b-slow caps each submission's virtual budget, so long
	// jobs time out there with a checkpoint (UEC-style revocation).
	// Load ordering makes placement deterministic: a-crash ranks first,
	// b-slow is the failover target, c/d back-fill.
	crashCfg := nodeCfg("a-crash", 0.05)
	crashCfg.CrashAtVirtual = 90 * time.Second
	aCrash := startNode(t, crashCfg)
	slowCfg := nodeCfg("b-slow", 0.10)
	slowCfg.MaxJobVirtual = 120 * time.Second
	bSlow := startNode(t, slowCfg)
	cIdle := startNode(t, nodeCfg("c-idle", 0.20))
	dIdle := startNode(t, nodeCfg("d-idle", 0.25))
	nodes := map[string]*ishare.Node{"a-crash": aCrash, "b-slow": bSlow, "c-idle": cIdle, "d-idle": dIdle}

	clientInj := New(42)
	// Deterministic low-grade noise on the discovery path: the first
	// registry exchange is corrupted, the next two are delayed. The
	// client's retry budget must absorb all of it.
	clientInj.Add(Fault{Name: "list-corrupt", Addr: reg.Addr(), CorruptProb: 1, Times: 1})
	clientInj.Add(Fault{Name: "list-lag", Addr: reg.Addr(), ReadLatency: 5 * time.Millisecond, Times: 2, Skip: 1})

	broker := &ishare.Broker{
		Client: &ishare.Client{
			RegistryAddr: reg.Addr(),
			Timeout:      2 * time.Second,
			Dialer:       clientInj,
			Retry:        ishare.RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 25 * time.Millisecond, Seed: 7},
		},
		CacheTTL:   30 * time.Second,
		MaxRounds:  12,
		RoundDelay: 10 * time.Millisecond,
		// The soak's recovery assertions read the obs registry (the
		// scrapable source of truth), not just the Metrics() snapshot.
		Obs: obs.NewRegistry(),
	}

	specs := []ishare.JobSpec{
		{Name: "alpha", ID: "soak-alpha", CPUSeconds: 240, RSSMB: 48},
		{Name: "beta", ID: "soak-beta", CPUSeconds: 120, RSSMB: 48},
		{Name: "gamma", ID: "soak-gamma", CPUSeconds: 60, RSSMB: 32},
		{Name: "delta", ID: "soak-delta", CPUSeconds: 120, RSSMB: 48},
	}
	results := map[string]*ishare.JobResult{}
	submit := func(spec ishare.JobSpec) {
		t.Helper()
		res, onNode, err := broker.SubmitBest(ctx, spec)
		if err != nil {
			t.Fatalf("job %s: %v (metrics %+v)", spec.Name, err, broker.Metrics())
		}
		if !res.Completed {
			t.Fatalf("job %s did not complete: %+v", spec.Name, res)
		}
		t.Logf("job %s completed on %s: cpu=%.1f resumedFrom=%.1f deduped=%v",
			spec.Name, onNode.Name, res.GuestCPUSeconds, res.ResumedFrom, res.Deduped)
		results[spec.ID] = res
	}

	// Phase 1 — crash and checkpointed resubmission: alpha lands on
	// a-crash (best name among S1 candidates), which dies mid-job; the
	// broker fails over and shepherds the job through b-slow's budget
	// kills to completion.
	submit(specs[0])
	m := broker.Metrics()
	if m.Failovers == 0 {
		t.Errorf("phase 1: expected a failover after the node crash, metrics %+v", m)
	}
	if m.Resubmissions == 0 {
		t.Errorf("phase 1: expected checkpointed resubmissions, metrics %+v", m)
	}
	if results["soak-alpha"].ResumedFrom == 0 {
		t.Errorf("phase 1: alpha's completing run should have resumed from a checkpoint: %+v", results["soak-alpha"])
	}

	// Phase 2 — registry partition window: both directions go dark. The
	// broker must keep placing from its last-known-good node list and the
	// nodes must keep serving while their heartbeats fail.
	clientInj.Partition(reg.Addr())
	nodeInj.Partition(reg.Addr())
	staleBase := broker.Metrics().StaleServes
	submit(specs[1])
	submit(specs[2])
	if m := broker.Metrics(); m.StaleServes <= staleBase {
		t.Errorf("phase 2: no placements served from the stale cache, metrics %+v", m)
	}
	clientInj.Heal(reg.Addr())
	nodeInj.Heal(reg.Addr())

	// Phase 3 — recovery: heartbeats resume, the registry view heals
	// (a-crash stays dead), and placement works registry-fresh again.
	waitAlive := time.Now().Add(3 * time.Second)
	for {
		alive, err := broker.Client.AliveNodes(ctx)
		if err == nil && len(alive) >= 3 {
			break
		}
		if time.Now().After(waitAlive) {
			t.Fatalf("registry view never healed: %v, err %v", alive, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	submit(specs[3])

	// Phase 4 — exactly-once via dedup: resubmitting a completed ID must be
	// answered from the node's completed-job cache, and the broker must
	// count the hit.
	dedupRes, _, err := broker.SubmitBest(ctx, specs[3])
	if err != nil {
		t.Fatalf("phase 4 resubmission: %v", err)
	}
	if !dedupRes.Deduped {
		t.Errorf("phase 4: resubmitted job was not deduped: %+v", dedupRes)
	}

	// The recovery counters must be visible through the obs registry — the
	// same numbers a Prometheus scrape of a live broker would report.
	final := broker.Metrics()
	if final.Failovers == 0 || final.StaleServes == 0 || final.DedupHits == 0 {
		t.Errorf("recovery counters incomplete: %+v", final)
	}
	var scrape bytes.Buffer
	if err := broker.Obs.WritePrometheus(&scrape); err != nil {
		t.Fatalf("scraping broker registry: %v", err)
	}
	for metric, val := range map[string]int{
		"fgcs_broker_failovers_total":     final.Failovers,
		"fgcs_broker_stale_serves_total":  final.StaleServes,
		"fgcs_broker_dedup_hits_total":    final.DedupHits,
		"fgcs_broker_resubmissions_total": final.Resubmissions,
	} {
		want := fmt.Sprintf("%s %d", metric, val)
		if !strings.Contains(scrape.String(), want) {
			t.Errorf("scrape missing %q (Metrics() and registry disagree?)\n%s", want, scrape.String())
		}
	}

	// Exactly-once: across every node, each job ID completed exactly one
	// execution, and the crashed node completed none.
	for _, spec := range specs {
		total := 0
		for name, n := range nodes {
			c := n.ExecutionCounts()[spec.ID]
			if name == "a-crash" && c != 0 {
				t.Errorf("crashed node completed %q %d times", spec.ID, c)
			}
			total += c
		}
		if total != 1 {
			t.Errorf("job %s executed %d times across the fleet, want exactly once", spec.ID, total)
		}
	}

	// Fault counters prove the schedule actually fired.
	cc, nc := clientInj.Counters(), nodeInj.Counters()
	if cc.Corrupted != 1 {
		t.Errorf("client corruptions = %d, want 1", cc.Corrupted)
	}
	if cc.Delayed < 1 {
		t.Errorf("client delays = %d, want >= 1", cc.Delayed)
	}
	if cc.Refused == 0 {
		t.Errorf("client partition never refused a dial: %+v", cc)
	}
	if nc.Refused == 0 {
		t.Errorf("node heartbeats never dropped: %+v", nc)
	}

	// No-fault parity: the same specs on a healthy single-node system
	// must deliver the same total virtual compute, within monitor-period
	// slack per extra attempt. Checkpointed resumption — not restarting
	// from zero — is what keeps the faulty run's totals equal.
	refReg := startRegistry(t, time.Minute)
	startNode(t, ishare.NodeConfig{Name: "ref-idle", RegistryAddr: refReg.Addr(), HostLoad: 0.05})
	refBroker := ishare.NewBroker(refReg.Addr())
	const slack = 15.0
	for _, spec := range specs {
		ref := spec
		ref.ID = "ref-" + spec.ID
		res, _, err := refBroker.SubmitBest(ctx, ref)
		if err != nil {
			t.Fatalf("no-fault run of %s: %v", spec.Name, err)
		}
		got := results[spec.ID].GuestCPUSeconds
		if diff := got - res.GuestCPUSeconds; diff < -slack || diff > slack {
			t.Errorf("job %s: faulty-run cpu %.1f vs no-fault %.1f (|diff| > %.0f)",
				spec.Name, got, res.GuestCPUSeconds, slack)
		}
	}
}

// TestChaosSmoke is the short deterministic-seed run wired into `make ci`:
// one partition window and one transient refusal burst over a two-node
// system, asserting completion and exactly-once in well under a second.
func TestChaosSmoke(t *testing.T) {
	reg := startRegistry(t, time.Minute)
	n1 := startNode(t, ishare.NodeConfig{Name: "s1", RegistryAddr: reg.Addr(), HostLoad: 0.05})
	n2 := startNode(t, ishare.NodeConfig{Name: "s2", RegistryAddr: reg.Addr(), HostLoad: 0.1})

	inj := New(7)
	inj.Add(Fault{Name: "burst", Addr: reg.Addr(), Refuse: true, Times: 2})
	broker := &ishare.Broker{
		Client: &ishare.Client{
			RegistryAddr: reg.Addr(),
			Timeout:      time.Second,
			Dialer:       inj,
			Retry:        ishare.RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 7},
		},
		CacheTTL: 30 * time.Second,
	}

	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("smoke-%d", i)
		if i == 1 {
			inj.Partition(reg.Addr())
		}
		res, _, err := broker.SubmitBest(ctx, ishare.JobSpec{Name: id, ID: id, CPUSeconds: 30, RSSMB: 32})
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}
		if !res.Completed {
			t.Fatalf("job %s: %+v", id, res)
		}
		if i == 1 {
			inj.Heal(reg.Addr())
		}
		if got := n1.ExecutionCounts()[id] + n2.ExecutionCounts()[id]; got != 1 {
			t.Fatalf("job %s executed %d times, want 1", id, got)
		}
	}
	if m := broker.Metrics(); m.StaleServes == 0 {
		t.Errorf("partition window never hit the stale cache: %+v", m)
	}
}
