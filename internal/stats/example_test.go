package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleECDF evaluates an empirical CDF the way the Figure 6 analysis
// does for availability-interval lengths.
func ExampleECDF() {
	hours := []float64{0.05, 2.5, 3.1, 3.8, 5.2, 7.5}
	e := stats.NewECDF(hours)
	fmt.Printf("P(X <= 4h) = %.2f\n", e.At(4))
	fmt.Printf("P(2h < X <= 4h) = %.2f\n", e.MassBetween(2, 4))
	fmt.Printf("median = %.2f h\n", e.Quantile(0.5))
	// Output:
	// P(X <= 4h) = 0.67
	// P(2h < X <= 4h) = 0.50
	// median = 3.80 h
}

// ExampleTrimmedMean shows the robust mean the history-window predictor
// uses to absorb irregular days.
func ExampleTrimmedMean() {
	counts := []float64{1, 1, 2, 1, 1, 0, 1, 1, 1, 30} // one wild day
	fmt.Printf("plain:   %.1f\n", stats.Mean(counts))
	fmt.Printf("trimmed: %.1f\n", stats.TrimmedMean(counts, 0.1))
	// Output:
	// plain:   3.9
	// trimmed: 1.1
}

// ExampleAutoCorrelation quantifies a daily rhythm in an hourly series.
func ExampleAutoCorrelation() {
	var series []float64
	for day := 0; day < 14; day++ {
		for h := 0; h < 24; h++ {
			load := 0.0
			if h >= 9 && h <= 17 {
				load = 5 // office hours
			}
			series = append(series, load)
		}
	}
	fmt.Printf("lag 24h: %.2f\n", stats.AutoCorrelation(series, 24))
	fmt.Printf("lag 11h: %.2f\n", stats.AutoCorrelation(series, 11))
	// Output:
	// lag 24h: 1.00
	// lag 11h: -0.60
}
