package stats

import (
	"math/rand"
	"testing"
)

func benchSample(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	return xs
}

func BenchmarkECDFBuild(b *testing.B) {
	xs := benchSample(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewECDF(xs)
	}
}

func BenchmarkECDFAt(b *testing.B) {
	e := NewECDF(benchSample(10000))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At(float64(i % 200))
	}
}

func BenchmarkQuantile(b *testing.B) {
	xs := benchSample(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Quantile(xs, 0.95)
	}
}

func BenchmarkOnlineAdd(b *testing.B) {
	var o Online
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o.Add(float64(i))
	}
}

func BenchmarkTrimmedMean(b *testing.B) {
	xs := benchSample(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TrimmedMean(xs, 0.1)
	}
}

func BenchmarkGroupedBins(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := NewGroupedBins(24)
		for d := 0; d < 66; d++ {
			for h := 0; h < 24; h += 3 {
				g.Add(d, h, 1)
			}
		}
		g.Summarize()
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram(0, 100, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(float64(i % 120))
	}
}
