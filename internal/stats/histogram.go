package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram counts observations into fixed-width bins over [Lo, Hi).
// Observations below Lo or at/above Hi land in dedicated underflow/overflow
// counters so no sample is silently dropped.
type Histogram struct {
	Lo, Hi    float64
	bins      []int64
	underflow int64
	overflow  int64
	total     int64
}

// NewHistogram creates a histogram with n equal-width bins spanning [lo, hi).
// It panics if n <= 0 or hi <= lo, which are programming errors.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram bins must be positive, got %d", n))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: NewHistogram needs hi > lo, got [%g, %g)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, bins: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.underflow++
	case x >= h.Hi:
		h.overflow++
	default:
		i := int(float64(len(h.bins)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.bins) { // guard against floating-point edge
			i--
		}
		h.bins[i]++
	}
}

// NumBins returns the number of in-range bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// Count returns the count in bin i.
func (h *Histogram) Count(i int) int64 { return h.bins[i] }

// Total returns the total number of observations, including out-of-range.
func (h *Histogram) Total() int64 { return h.total }

// Underflow and Overflow return the out-of-range counters.
func (h *Histogram) Underflow() int64 { return h.underflow }
func (h *Histogram) Overflow() int64  { return h.overflow }

// BinRange returns the [lo, hi) interval covered by bin i.
func (h *Histogram) BinRange(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.bins))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Fraction returns bin i's share of all observations (including
// out-of-range ones), or 0 if the histogram is empty.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.bins[i]) / float64(h.total)
}

// Cumulative returns, for each bin boundary, the fraction of observations at
// or below it — i.e. the discrete CDF including underflow mass. The returned
// slice has NumBins()+1 entries (boundaries Lo..Hi).
func (h *Histogram) Cumulative() []float64 {
	out := make([]float64, len(h.bins)+1)
	if h.total == 0 {
		return out
	}
	run := h.underflow
	out[0] = float64(run) / float64(h.total)
	for i, c := range h.bins {
		run += c
		out[i+1] = float64(run) / float64(h.total)
	}
	return out
}

// String renders a compact ASCII sketch, useful in example programs.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := int64(1)
	for _, c := range h.bins {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.bins {
		lo, hi := h.BinRange(i)
		bar := strings.Repeat("#", int(math.Round(40*float64(c)/float64(maxC))))
		fmt.Fprintf(&b, "[%8.2f, %8.2f) %6d %s\n", lo, hi, c, bar)
	}
	if h.underflow > 0 {
		fmt.Fprintf(&b, "underflow %d\n", h.underflow)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "overflow %d\n", h.overflow)
	}
	return b.String()
}
