package stats

import "math"

// Online accumulates a stream of observations and exposes their moments and
// extrema in O(1) memory using Welford's algorithm. The zero value is an
// empty accumulator ready to use.
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// AddN incorporates every value of xs.
func (o *Online) AddN(xs ...float64) {
	for _, x := range xs {
		o.Add(x)
	}
}

// N returns the number of observations seen.
func (o *Online) N() int64 { return o.n }

// Mean returns the running mean, 0 if empty.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running unbiased sample variance, 0 when N < 2.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running unbiased sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation, 0 if empty.
func (o *Online) Min() float64 {
	if o.n == 0 {
		return 0
	}
	return o.min
}

// Max returns the largest observation, 0 if empty.
func (o *Online) Max() float64 {
	if o.n == 0 {
		return 0
	}
	return o.max
}

// Merge combines another accumulator into o (parallel reduction), using the
// Chan et al. pairwise update. Merging an empty accumulator is a no-op.
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	n := o.n + other.n
	delta := other.mean - o.mean
	o.m2 += other.m2 + delta*delta*float64(o.n)*float64(other.n)/float64(n)
	o.mean += delta * float64(other.n) / float64(n)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n = n
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0,1]: higher alpha weights recent observations more. The zero
// value is unusable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor, clamped to (0,1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 {
		alpha = 0.01
	}
	if alpha > 1 {
		alpha = 1
	}
	return &EWMA{alpha: alpha}
}

// Add incorporates one observation. The first observation seeds the average.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average, 0 before any observation.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been added.
func (e *EWMA) Initialized() bool { return e.init }
