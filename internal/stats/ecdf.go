package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a sample.
// It is immutable once constructed and safe for concurrent readers.
//
// ECDF is the primitive behind the paper's Figure 6 (cumulative distribution
// of availability-interval lengths) and behind the semi-Markov survival
// predictor.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample. The input slice is copied; it may
// be empty, in which case all queries return 0.
func NewECDF(sample []float64) *ECDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x), the fraction of the sample at or below x.
func (e *ECDF) At(x float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	// Index of the first element strictly greater than x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < n && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(n)
}

// Survival returns P(X > x) == 1 - At(x).
func (e *ECDF) Survival(x float64) float64 { return 1 - e.At(x) }

// ConditionalSurvival returns P(X > x+dx | X > x): the probability that a
// duration already lasted x continues for at least dx more. It returns 0
// when no sample mass remains beyond x.
func (e *ECDF) ConditionalSurvival(x, dx float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	sx := e.Survival(x)
	if sx == 0 {
		return 0
	}
	return e.Survival(x+dx) / sx
}

// Quantile returns the smallest sample value v with At(v) >= q.
// q is clamped to [0,1]; an empty ECDF yields 0.
func (e *ECDF) Quantile(q float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[n-1]
	}
	i := int(q * float64(n))
	if i >= n {
		i = n - 1
	}
	return e.sorted[i]
}

// Mean returns the sample mean.
func (e *ECDF) Mean() float64 { return Mean(e.sorted) }

// Points evaluates the ECDF at each of xs, returning the matching
// cumulative fractions. Convenient for printing a curve such as Figure 6.
func (e *ECDF) Points(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = e.At(x)
	}
	return out
}

// MassBetween returns P(lo < X <= hi).
func (e *ECDF) MassBetween(lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	return e.At(hi) - e.At(lo)
}

// Sample maps a uniform draw u in [0,1) to a sample value by inverse
// transform: the i-th order statistic with i = floor(u*n). Drawing u from
// an independent uniform stream therefore resamples the empirical
// distribution exactly — the generative counterpart of At. An empty ECDF
// yields 0.
func (e *ECDF) Sample(u float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	if u < 0 {
		u = 0
	}
	i := int(u * float64(n))
	if i >= n {
		i = n - 1
	}
	return e.sorted[i]
}

// KSDistance returns the Kolmogorov–Smirnov statistic between two ECDFs:
// the supremum of |F1(x) - F2(x)| over the pooled sample points. Both
// empty yields 0; exactly one empty yields 1.
func (e *ECDF) KSDistance(o *ECDF) float64 {
	if len(e.sorted) == 0 && len(o.sorted) == 0 {
		return 0
	}
	if len(e.sorted) == 0 || len(o.sorted) == 0 {
		return 1
	}
	// The sup of the difference of two right-continuous step functions is
	// attained at a jump point of one of them.
	max := 0.0
	for _, x := range e.sorted {
		if d := math.Abs(e.At(x) - o.At(x)); d > max {
			max = d
		}
	}
	for _, x := range o.sorted {
		if d := math.Abs(e.At(x) - o.At(x)); d > max {
			max = d
		}
	}
	return max
}
