package stats

import "sort"

// ECDF is an empirical cumulative distribution function built from a sample.
// It is immutable once constructed and safe for concurrent readers.
//
// ECDF is the primitive behind the paper's Figure 6 (cumulative distribution
// of availability-interval lengths) and behind the semi-Markov survival
// predictor.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample. The input slice is copied; it may
// be empty, in which case all queries return 0.
func NewECDF(sample []float64) *ECDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns P(X <= x), the fraction of the sample at or below x.
func (e *ECDF) At(x float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	// Index of the first element strictly greater than x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < n && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(n)
}

// Survival returns P(X > x) == 1 - At(x).
func (e *ECDF) Survival(x float64) float64 { return 1 - e.At(x) }

// ConditionalSurvival returns P(X > x+dx | X > x): the probability that a
// duration already lasted x continues for at least dx more. It returns 0
// when no sample mass remains beyond x.
func (e *ECDF) ConditionalSurvival(x, dx float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	sx := e.Survival(x)
	if sx == 0 {
		return 0
	}
	return e.Survival(x+dx) / sx
}

// Quantile returns the smallest sample value v with At(v) >= q.
// q is clamped to [0,1]; an empty ECDF yields 0.
func (e *ECDF) Quantile(q float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[n-1]
	}
	i := int(q * float64(n))
	if i >= n {
		i = n - 1
	}
	return e.sorted[i]
}

// Mean returns the sample mean.
func (e *ECDF) Mean() float64 { return Mean(e.sorted) }

// Points evaluates the ECDF at each of xs, returning the matching
// cumulative fractions. Convenient for printing a curve such as Figure 6.
func (e *ECDF) Points(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = e.At(x)
	}
	return out
}

// MassBetween returns P(lo < X <= hi).
func (e *ECDF) MassBetween(lo, hi float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	return e.At(hi) - e.At(lo)
}
