package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned (or panically reported via the *Must variants) when a
// computation is requested over an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Variance returns the unbiased sample variance (n-1 denominator).
// It returns 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	min := math.Inf(1)
	for _, x := range xs {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}

// Median returns the sample median, or 0 for an empty slice.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th sample quantile of xs, q in [0,1], using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// It returns 0 for an empty slice, and clamps q into [0,1].
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantileSorted is Quantile for an already ascending-sorted sample, avoiding
// the copy and sort. The caller must guarantee ordering.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// TrimmedMean returns the mean of xs after discarding the lowest and highest
// trim fraction of the sorted sample (e.g. trim=0.1 removes 10% from each
// tail). The paper (Section 5.3) suggests robust statistics over the history
// windows to "alleviate the effects of irregular data"; this is the robust
// estimator the history-window predictor uses. trim is clamped to [0, 0.5).
// An empty sample yields 0.
func TrimmedMean(xs []float64, trim float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if trim < 0 {
		trim = 0
	}
	if trim >= 0.5 {
		trim = 0.4999
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	k := int(math.Floor(trim * float64(n)))
	kept := sorted[k : n-k]
	return Mean(kept)
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 if the slices differ in length, are shorter than 2, or either
// has zero variance.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// AutoCorrelation returns the sample autocorrelation of xs at the given
// lag: the Pearson correlation between the series and itself shifted by
// lag. It returns 0 for invalid lags or constant series. The trace
// analysis uses it to quantify the paper's central observation that the
// failure-rate series repeats with daily and weekly periods.
func AutoCorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || lag >= n {
		return 0
	}
	return Pearson(xs[:n-lag], xs[lag:])
}
