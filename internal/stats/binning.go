package stats

import (
	"fmt"
	"sort"
)

// Summary condenses a set of observations for one bin: mean plus the
// min..max range across the contributing groups. This is the quantity the
// paper's Figure 7 plots per hour of day ("both the average values and the
// ranges over all the weekdays and weekends ... are depicted").
type Summary struct {
	Mean  float64
	Min   float64
	Max   float64
	Count int
}

// GroupedBins accumulates values keyed by (group, bin) — in the trace
// analysis, group is a calendar day and bin is an hour of day — and then
// summarizes each bin across groups. The zero value is unusable; construct
// with NewGroupedBins.
type GroupedBins struct {
	bins int
	data map[int][]float64 // bin -> one value per group (after fold)
	acc  map[groupBin]float64
}

type groupBin struct {
	group int
	bin   int
}

// NewGroupedBins creates an accumulator with the given number of bins
// (e.g. 24 for hours of day). It panics if bins <= 0.
func NewGroupedBins(bins int) *GroupedBins {
	if bins <= 0 {
		panic("stats: NewGroupedBins requires bins > 0")
	}
	return &GroupedBins{
		bins: bins,
		data: make(map[int][]float64),
		acc:  make(map[groupBin]float64),
	}
}

// Bins returns the configured number of bins.
func (g *GroupedBins) Bins() int { return g.bins }

// Add accumulates v into the given (group, bin) cell. Multiple Adds to the
// same cell sum, so event counts can be streamed one at a time.
func (g *GroupedBins) Add(group, bin int, v float64) {
	if bin < 0 || bin >= g.bins {
		return
	}
	g.acc[groupBin{group, bin}] += v
}

// Touch ensures a group exists even if no events were recorded for it, so
// that zero-event days drag the per-bin mean (and min) down, as they should.
func (g *GroupedBins) Touch(group int) {
	g.Add(group, 0, 0)
	// Adding zero to bin 0 marks the group as present without changing sums.
	if _, ok := g.acc[groupBin{group, 0}]; !ok {
		g.acc[groupBin{group, 0}] = 0
	}
}

// MergeFrom folds o's accumulated cells into g. Cell sums add, so two
// accumulators fed disjoint partitions of an event stream merge into
// exactly the accumulator a single pass would have built — Touch marks
// (zero-valued cells) in both inputs stay zero. The bin counts must match.
func (g *GroupedBins) MergeFrom(o *GroupedBins) error {
	if g.bins != o.bins {
		return fmt.Errorf("stats: merging GroupedBins with %d bins into %d bins", o.bins, g.bins)
	}
	for k, v := range o.acc {
		g.acc[k] += v
	}
	return nil
}

// groups returns the sorted distinct group keys.
func (g *GroupedBins) groups() []int {
	seen := make(map[int]bool)
	for k := range g.acc {
		seen[k.group] = true
	}
	out := make([]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// NumGroups returns how many distinct groups contributed.
func (g *GroupedBins) NumGroups() int { return len(g.groups()) }

// Summarize returns one Summary per bin, aggregating each bin's per-group
// totals. Groups that recorded nothing for a bin contribute a 0 to that
// bin's statistics (a day with no failures in hour h is a real observation
// of 0 failures).
func (g *GroupedBins) Summarize() []Summary {
	groups := g.groups()
	out := make([]Summary, g.bins)
	for b := 0; b < g.bins; b++ {
		var vals []float64
		for _, gr := range groups {
			vals = append(vals, g.acc[groupBin{gr, b}])
		}
		if len(vals) == 0 {
			continue
		}
		out[b] = Summary{
			Mean:  Mean(vals),
			Min:   Min(vals),
			Max:   Max(vals),
			Count: len(vals),
		}
	}
	return out
}

// BinValues returns the per-group totals for one bin (sorted by group key),
// which the predictor evaluation uses as its history sample.
func (g *GroupedBins) BinValues(bin int) []float64 {
	groups := g.groups()
	vals := make([]float64, 0, len(groups))
	for _, gr := range groups {
		vals = append(vals, g.acc[groupBin{gr, bin}])
	}
	return vals
}
