package stats

import (
	"math/rand"
	"strings"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5) // bins [0,2) [2,4) [4,6) [6,8) [8,10)
	for _, x := range []float64{0, 1.9, 2, 5, 9.99, -1, 10, 42} {
		h.Add(x)
	}
	wantBins := []int64{2, 1, 1, 0, 1}
	for i, w := range wantBins {
		if got := h.Count(i); got != w {
			t.Errorf("bin %d = %d, want %d", i, got, w)
		}
	}
	if h.Underflow() != 1 {
		t.Errorf("underflow = %d, want 1", h.Underflow())
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow())
	}
	if h.Total() != 8 {
		t.Errorf("total = %d, want 8", h.Total())
	}
}

func TestHistogramBinRange(t *testing.T) {
	h := NewHistogram(0, 12, 4)
	lo, hi := h.BinRange(1)
	if lo != 3 || hi != 6 {
		t.Errorf("BinRange(1) = [%v,%v), want [3,6)", lo, hi)
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	for _, x := range []float64{0.5, 1.5, 1.6, 2.5} {
		h.Add(x)
	}
	cum := h.Cumulative()
	want := []float64{0, 0.25, 0.75, 1, 1}
	if len(cum) != len(want) {
		t.Fatalf("cumulative length %d, want %d", len(cum), len(want))
	}
	for i := range want {
		if !almostEqual(cum[i], want[i], 1e-12) {
			t.Errorf("cumulative[%d] = %v, want %v", i, cum[i], want[i])
		}
	}
}

func TestHistogramConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := NewHistogram(-5, 5, 17)
	n := 10000
	for i := 0; i < n; i++ {
		h.Add(rng.NormFloat64() * 4)
	}
	var sum int64 = h.Underflow() + h.Overflow()
	for i := 0; i < h.NumBins(); i++ {
		sum += h.Count(i)
	}
	if sum != int64(n) {
		t.Errorf("conservation violated: binned %d of %d", sum, n)
	}
}

func TestHistogramPanics(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	assertPanics("zero bins", func() { NewHistogram(0, 1, 0) })
	assertPanics("inverted range", func() { NewHistogram(5, 1, 3) })
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.7)
	h.Add(-3)
	s := h.String()
	if !strings.Contains(s, "underflow 1") {
		t.Errorf("String() missing underflow note:\n%s", s)
	}
	if strings.Count(s, "\n") < 3 {
		t.Errorf("String() too short:\n%s", s)
	}
}

func TestGroupedBins(t *testing.T) {
	g := NewGroupedBins(24)
	// Day 0: 2 events in hour 4, 1 in hour 10. Day 1: nothing (touched).
	g.Add(0, 4, 1)
	g.Add(0, 4, 1)
	g.Add(0, 10, 1)
	g.Touch(1)
	sum := g.Summarize()
	if got := sum[4]; got.Mean != 1 || got.Min != 0 || got.Max != 2 || got.Count != 2 {
		t.Errorf("hour 4 summary = %+v, want mean 1 min 0 max 2 over 2 days", got)
	}
	if got := sum[10]; got.Mean != 0.5 {
		t.Errorf("hour 10 mean = %v, want 0.5", got.Mean)
	}
	if g.NumGroups() != 2 {
		t.Errorf("NumGroups = %d, want 2", g.NumGroups())
	}
	vals := g.BinValues(4)
	if len(vals) != 2 || vals[0] != 2 || vals[1] != 0 {
		t.Errorf("BinValues(4) = %v, want [2 0]", vals)
	}
}

func TestGroupedBinsIgnoresOutOfRange(t *testing.T) {
	g := NewGroupedBins(24)
	g.Add(0, -1, 5)
	g.Add(0, 24, 5)
	if g.NumGroups() != 0 {
		t.Error("out-of-range bins should be dropped entirely")
	}
}
