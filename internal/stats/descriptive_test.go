package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
		{"fractions", []float64{0.5, 1.5, 2.5}, 1.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: 32/7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(want), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if got := Variance([]float64{42}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	if got := Min(xs); got != -9 {
		t.Errorf("Min = %v, want -9", got)
	}
	if got := Max(xs); got != 6 {
		t.Errorf("Max = %v, want 6", got)
	}
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil) should be +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil) should be -Inf")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{-0.5, 1}, {1.5, 5}, // clamped
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{10, 20}, 0.5); !almostEqual(got, 15, 1e-12) {
		t.Errorf("Quantile interpolated = %v, want 15", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v, want 0", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Errorf("Median odd = %v, want 3", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("Median even = %v, want 2.5", got)
	}
}

func TestTrimmedMean(t *testing.T) {
	// One wild outlier should be discarded at trim=0.1 with 10 points.
	xs := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1000}
	if got := TrimmedMean(xs, 0.1); !almostEqual(got, 1, 1e-12) {
		t.Errorf("TrimmedMean = %v, want 1", got)
	}
	// trim=0 equals the plain mean.
	if got, want := TrimmedMean(xs, 0), Mean(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("TrimmedMean(0) = %v, want %v", got, want)
	}
	if got := TrimmedMean(nil, 0.2); got != 0 {
		t.Errorf("TrimmedMean(empty) = %v, want 0", got)
	}
	// Out-of-range trims are clamped rather than panicking.
	if got := TrimmedMean(xs, 0.9); got == 0 {
		t.Error("TrimmedMean with excessive trim returned 0, want median-ish value")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson perfectly correlated = %v, want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson anti-correlated = %v, want -1", got)
	}
	flat := []float64{7, 7, 7, 7, 7}
	if got := Pearson(xs, flat); got != 0 {
		t.Errorf("Pearson with zero variance = %v, want 0", got)
	}
	if got := Pearson(xs, xs[:3]); got != 0 {
		t.Errorf("Pearson length mismatch = %v, want 0", got)
	}
}

// Property: mean lies between min and max; quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: trimmed mean is bounded by the untrimmed extremes.
func TestTrimmedMeanBoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for j := range xs {
			xs[j] = rng.NormFloat64() * 100
		}
		trim := rng.Float64() * 0.6
		tm := TrimmedMean(xs, trim)
		if tm < Min(xs)-1e-9 || tm > Max(xs)+1e-9 {
			t.Fatalf("TrimmedMean %v outside sample range [%v, %v]", tm, Min(xs), Max(xs))
		}
	}
}

func TestAutoCorrelation(t *testing.T) {
	// A strict period-4 series correlates perfectly at lag 4 and
	// negatively at lag 2.
	var xs []float64
	for i := 0; i < 40; i++ {
		xs = append(xs, []float64{0, 1, 2, 1}[i%4])
	}
	if got := AutoCorrelation(xs, 4); !almostEqual(got, 1, 1e-9) {
		t.Errorf("lag-4 ACF = %v, want 1", got)
	}
	if got := AutoCorrelation(xs, 2); got >= 0 {
		t.Errorf("lag-2 ACF = %v, want negative", got)
	}
	// Invalid lags.
	if AutoCorrelation(xs, 0) != 0 || AutoCorrelation(xs, len(xs)) != 0 || AutoCorrelation(xs, -1) != 0 {
		t.Error("invalid lags should return 0")
	}
	// Constant series has no correlation structure.
	if AutoCorrelation([]float64{5, 5, 5, 5, 5, 5}, 2) != 0 {
		t.Error("constant series ACF should be 0")
	}
}
