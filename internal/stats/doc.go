// Package stats provides the statistical primitives the rest of the
// repository is built on: descriptive statistics, online (streaming)
// moments, empirical CDFs, histograms, quantiles, robust means, per-hour
// binning with across-day ranges, and forecast-error metrics.
//
// The Go standard library has no statistics support, and this project is
// offline-only, so everything here is implemented from scratch. All
// functions are deterministic and allocate predictably; the hot paths
// (ECDF evaluation, online moments) are O(log n) and O(1) respectively.
package stats
