package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {2.9, 0.75}, {3, 1}, {10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d, want 4", e.N())
	}
	if got := e.Survival(2); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("Survival(2) = %v, want 0.25", got)
	}
	if got := e.MassBetween(1, 2); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("MassBetween(1,2) = %v, want 0.5", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(5) != 0 || e.Survival(5) != 1 || e.Quantile(0.5) != 0 || e.N() != 0 {
		t.Error("empty ECDF should return zero mass everywhere")
	}
	if e.ConditionalSurvival(1, 1) != 0 {
		t.Error("empty ECDF conditional survival should be 0")
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e := NewECDF(in)
	in[0] = 100
	if got := e.At(3); !almostEqual(got, 1, 1e-12) {
		t.Errorf("ECDF aliased caller slice: At(3) = %v, want 1", got)
	}
}

func TestECDFConditionalSurvival(t *testing.T) {
	// Sample {1, 2, 3, 4}: P(X>2)=0.5, P(X>3)=0.25, so P(X>3 | X>2)=0.5.
	e := NewECDF([]float64{1, 2, 3, 4})
	if got := e.ConditionalSurvival(2, 1); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("ConditionalSurvival(2,1) = %v, want 0.5", got)
	}
	// Beyond the sample there is no mass.
	if got := e.ConditionalSurvival(10, 1); got != 0 {
		t.Errorf("ConditionalSurvival beyond support = %v, want 0", got)
	}
}

func TestECDFQuantileInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.Float64() * 50
	}
	e := NewECDF(xs)
	for _, q := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		v := e.Quantile(q)
		if at := e.At(v); at < q-1e-9 {
			t.Errorf("At(Quantile(%v)) = %v < q", q, at)
		}
	}
}

// Properties: At is monotone nondecreasing, bounded in [0,1], and
// At + Survival == 1.
func TestECDFProperties(t *testing.T) {
	f := func(sample []float64, probes []float64) bool {
		clean := make([]float64, 0, len(sample))
		for _, v := range sample {
			if v == v && v < 1e12 && v > -1e12 { // exclude NaN/huge
				clean = append(clean, v)
			}
		}
		e := NewECDF(clean)
		prev := -1.0
		probeVals := append([]float64{-1e12, 0, 1e12}, probes...)
		// Sort-free monotonicity check via pairwise comparison on sorted probes.
		for _, x := range probeVals {
			if x != x {
				continue
			}
			p := e.At(x)
			if p < 0 || p > 1 {
				return false
			}
			if !almostEqual(p+e.Survival(x), 1, 1e-12) {
				return false
			}
			_ = prev
		}
		// Explicit monotonicity along an increasing grid.
		last := 0.0
		for i := 0; i <= 20; i++ {
			x := -100.0 + float64(i)*10
			p := e.At(x)
			if p < last-1e-12 {
				return false
			}
			last = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
