package stats

import (
	"math/rand"
	"testing"
)

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		o.Add(xs[i])
	}
	if o.N() != 1000 {
		t.Fatalf("N = %d, want 1000", o.N())
	}
	if !almostEqual(o.Mean(), Mean(xs), 1e-9) {
		t.Errorf("Mean: online %v vs batch %v", o.Mean(), Mean(xs))
	}
	if !almostEqual(o.Variance(), Variance(xs), 1e-9) {
		t.Errorf("Variance: online %v vs batch %v", o.Variance(), Variance(xs))
	}
	if o.Min() != Min(xs) || o.Max() != Max(xs) {
		t.Errorf("extrema: online (%v,%v) vs batch (%v,%v)", o.Min(), o.Max(), Min(xs), Max(xs))
	}
}

func TestOnlineZeroValue(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Variance() != 0 || o.Min() != 0 || o.Max() != 0 {
		t.Error("zero-value Online should report zeros everywhere")
	}
	o.Add(5)
	if o.Variance() != 0 {
		t.Error("variance of a single observation should be 0")
	}
	if o.Min() != 5 || o.Max() != 5 {
		t.Error("extrema of a single observation should equal it")
	}
}

func TestOnlineMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var all, a, b Online
	for i := 0; i < 500; i++ {
		x := rng.ExpFloat64() * 40
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-9) {
		t.Errorf("merged mean %v, want %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Variance(), all.Variance(), 1e-6) {
		t.Errorf("merged variance %v, want %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged extrema (%v,%v), want (%v,%v)", a.Min(), a.Max(), all.Min(), all.Max())
	}
}

func TestOnlineMergeEmpty(t *testing.T) {
	var a, empty Online
	a.AddN(1, 2, 3)
	before := a
	a.Merge(&empty)
	if a != before {
		t.Error("merging an empty accumulator changed state")
	}
	var c Online
	c.Merge(&a)
	if c.N() != 3 || !almostEqual(c.Mean(), 2, 1e-12) {
		t.Error("merging into an empty accumulator should copy")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Error("fresh EWMA should not be initialized")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Errorf("first value should seed: got %v", e.Value())
	}
	e.Add(20)
	if !almostEqual(e.Value(), 15, 1e-12) {
		t.Errorf("EWMA after (10,20) alpha .5 = %v, want 15", e.Value())
	}
	// Clamping.
	if NewEWMA(-1) == nil || NewEWMA(5) == nil {
		t.Error("EWMA constructor must clamp, not fail")
	}
	e2 := NewEWMA(1)
	e2.Add(1)
	e2.Add(99)
	if e2.Value() != 99 {
		t.Errorf("alpha=1 should track last value, got %v", e2.Value())
	}
}
