package stats

import "testing"

func TestMAEAndRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{2, 2, 5}
	if got := MAE(pred, truth); !almostEqual(got, 1, 1e-12) {
		t.Errorf("MAE = %v, want 1", got)
	}
	// Squared errors: 1, 0, 4 -> mean 5/3.
	if got := RMSE(pred, truth); !almostEqual(got*got, 5.0/3.0, 1e-9) {
		t.Errorf("RMSE^2 = %v, want 5/3", got*got)
	}
	if MAE(pred, truth[:2]) != 0 || RMSE(nil, nil) != 0 {
		t.Error("mismatched/empty inputs should yield 0")
	}
}

func TestBrier(t *testing.T) {
	// Perfect confident forecasts score 0.
	if got := Brier([]float64{1, 0}, []bool{true, false}); got != 0 {
		t.Errorf("perfect Brier = %v, want 0", got)
	}
	// Uninformed 0.5 forecasts score 0.25.
	if got := Brier([]float64{0.5, 0.5}, []bool{true, false}); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("coin-flip Brier = %v, want 0.25", got)
	}
	// Confidently wrong scores 1.
	if got := Brier([]float64{0, 1}, []bool{true, false}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("wrong Brier = %v, want 1", got)
	}
	if Brier([]float64{0.5}, nil) != 0 {
		t.Error("mismatched input should yield 0")
	}
}

func TestMAPE(t *testing.T) {
	pred := []float64{110, 90, 5}
	truth := []float64{100, 100, 0} // zero-truth entry skipped
	if got := MAPE(pred, truth); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("MAPE = %v, want 0.1", got)
	}
	if got := MAPE([]float64{1}, []float64{0}); got != 0 {
		t.Errorf("MAPE all-zero-truth = %v, want 0", got)
	}
}

func TestClamp01(t *testing.T) {
	tests := []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 1},
	}
	for _, tt := range tests {
		if got := Clamp01(tt.in); got != tt.want {
			t.Errorf("Clamp01(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}
