package stats

import "math"

// MAE returns the mean absolute error between predictions and truths.
// It returns 0 when the slices are empty or differ in length.
func MAE(pred, truth []float64) float64 {
	n := len(pred)
	if n == 0 || n != len(truth) {
		return 0
	}
	sum := 0.0
	for i := range pred {
		sum += math.Abs(pred[i] - truth[i])
	}
	return sum / float64(n)
}

// RMSE returns the root mean squared error between predictions and truths.
// It returns 0 when the slices are empty or differ in length.
func RMSE(pred, truth []float64) float64 {
	n := len(pred)
	if n == 0 || n != len(truth) {
		return 0
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// Brier returns the Brier score for probabilistic binary forecasts:
// mean (p_i - o_i)^2 where o_i is 1 if the event occurred. Lower is better;
// 0.25 is the score of the uninformed 0.5 forecast.
// It returns 0 when the slices are empty or differ in length.
func Brier(prob []float64, occurred []bool) float64 {
	n := len(prob)
	if n == 0 || n != len(occurred) {
		return 0
	}
	sum := 0.0
	for i := range prob {
		o := 0.0
		if occurred[i] {
			o = 1
		}
		d := prob[i] - o
		sum += d * d
	}
	return sum / float64(n)
}

// MAPE returns the mean absolute percentage error, skipping entries whose
// truth is zero (which would be undefined). It returns 0 if nothing remains.
func MAPE(pred, truth []float64) float64 {
	n := len(pred)
	if n == 0 || n != len(truth) {
		return 0
	}
	sum, cnt := 0.0, 0
	for i := range pred {
		if truth[i] == 0 {
			continue
		}
		sum += math.Abs(pred[i]-truth[i]) / math.Abs(truth[i])
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// Clamp01 clamps x into [0, 1]; used by probability-valued predictors.
func Clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
