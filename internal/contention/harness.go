package contention

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
	"repro/internal/simos"
	"repro/internal/workload"
)

// Options configure the contention harness. Zero fields take defaults
// matching the paper's setup (a Linux lab machine, 5% slowdown bound).
type Options struct {
	// Machine is the simulated testbed machine.
	Machine simos.MachineConfig
	// Period is the duty-cycle period of the synthetic host programs.
	Period time.Duration
	// Warmup is discarded simulation time before measurement starts.
	Warmup time.Duration
	// Measure is the measurement window length.
	Measure time.Duration
	// Combos is how many random host-group compositions are averaged per
	// (LH, M) experiment point.
	Combos int
	// Slowdown is the "noticeable slowdown" bound (0.05 in the paper).
	Slowdown float64
	// Seed roots all randomness.
	Seed int64
	// Parallelism bounds concurrent experiment points (default: NumCPU).
	Parallelism int
}

// DefaultOptions returns the paper-equivalent configuration.
func DefaultOptions() Options {
	return Options{
		Machine:     simos.LinuxLabMachine(0).WithDefaults(),
		Period:      workload.DefaultPeriod,
		Warmup:      10 * time.Second,
		Measure:     90 * time.Second,
		Combos:      3,
		Slowdown:    0.05,
		Seed:        1,
		Parallelism: runtime.NumCPU(),
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.Machine.RAM == 0 {
		o.Machine = d.Machine
	}
	o.Machine = o.Machine.WithDefaults()
	if o.Period == 0 {
		o.Period = d.Period
	}
	if o.Warmup == 0 {
		o.Warmup = d.Warmup
	}
	if o.Measure == 0 {
		o.Measure = d.Measure
	}
	if o.Combos == 0 {
		o.Combos = d.Combos
	}
	if o.Slowdown == 0 {
		o.Slowdown = d.Slowdown
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	if o.Parallelism <= 0 {
		o.Parallelism = d.Parallelism
	}
	return o
}

// Validate reports option errors.
func (o Options) Validate() error {
	if o.Measure <= 0 {
		return fmt.Errorf("contention: measurement window must be positive, got %v", o.Measure)
	}
	if o.Warmup < 0 {
		return fmt.Errorf("contention: negative warmup %v", o.Warmup)
	}
	if o.Combos <= 0 {
		return fmt.Errorf("contention: combos must be positive, got %d", o.Combos)
	}
	if o.Slowdown <= 0 || o.Slowdown >= 1 {
		return fmt.Errorf("contention: slowdown bound must be in (0,1), got %v", o.Slowdown)
	}
	return o.Machine.Validate()
}

// guestSpec describes the guest process in a measurement run.
type guestSpec struct {
	name     string
	nice     int
	rss      int64
	behavior func() simos.Behavior
}

// cpuBoundGuest is the paper's canonical synthetic guest.
func cpuBoundGuest(nice int) *guestSpec {
	return &guestSpec{
		name:     "guest",
		nice:     nice,
		rss:      workload.SyntheticRSS,
		behavior: func() simos.Behavior { return workload.CPUBound{} },
	}
}

// runResult carries the measured usages of one simulation run.
type runResult struct {
	HostUsage  float64
	GuestUsage float64
	Thrashed   bool
}

// spawner adds host processes to a machine.
type spawner func(m *simos.Machine)

// measure runs one simulation: spawn hosts (and optionally a guest), warm
// up, then measure CPU usage over the window.
func (o Options) measure(seed int64, spawnHosts spawner, guest *guestSpec) (runResult, error) {
	cfg := o.Machine
	cfg.Seed = seed
	m, err := simos.NewMachine(cfg)
	if err != nil {
		return runResult{}, err
	}
	spawnHosts(m)
	var gp *simos.Process
	if guest != nil {
		gp = m.Spawn(guest.name, simos.Guest, guest.nice, guest.rss, guest.behavior())
	}
	m.Run(o.Warmup)
	start := m.Snapshot()
	gstart := time.Duration(0)
	if gp != nil {
		gstart = gp.CPUTime()
	}
	m.Run(o.Measure)
	end := m.Snapshot()
	u, err := simos.UsageBetween(start, end)
	if err != nil {
		return runResult{}, err
	}
	res := runResult{HostUsage: u.Host, Thrashed: m.ThrashTime() > 0}
	if gp != nil {
		res.GuestUsage = float64(gp.CPUTime()-gstart) / float64(o.Measure)
	}
	return res, nil
}

// Reduction computes the paper's reduction rate of host CPU usage: the
// relative drop of the host group's usage when a guest runs alongside.
func Reduction(alone, together float64) float64 {
	if alone <= 0 {
		return 0
	}
	r := 1 - together/alone
	if r < 0 {
		r = 0
	}
	return r
}

// aloneKey identifies one "alone" calibration run completely: the machine
// configuration (its Seed is overwritten by the run seed, captured
// separately), the harness timing, and the host group composition. Two
// runs with equal keys are the same deterministic simulation.
type aloneKey struct {
	machine simos.MachineConfig
	period  time.Duration
	warmup  time.Duration
	measure time.Duration
	seed    int64
	usages  string
}

// aloneCache memoizes alone-run calibrations across figures and repeated
// threshold searches. Entries are runResult values; the simulations they
// replace are self-contained (each builds a fresh machine from the seed),
// so serving a cached result never perturbs any other random stream. The
// experiment grids keep the key space small (hundreds of entries), so the
// cache is unbounded.
var (
	aloneCache       sync.Map // aloneKey -> runResult
	aloneCacheHits   atomic.Uint64
	aloneCacheMisses atomic.Uint64
)

// AloneCacheStats returns how many alone-run calibrations were served from
// the cache versus simulated.
func AloneCacheStats() (hits, misses uint64) {
	return aloneCacheHits.Load(), aloneCacheMisses.Load()
}

// ResetAloneCache empties the calibration cache and its counters.
func ResetAloneCache() {
	aloneCache.Range(func(k, _ any) bool {
		aloneCache.Delete(k)
		return true
	})
	aloneCacheHits.Store(0)
	aloneCacheMisses.Store(0)
}

func (o Options) aloneKeyFor(seed int64, group workload.HostGroup) aloneKey {
	k := aloneKey{
		machine: o.Machine,
		period:  o.Period,
		warmup:  o.Warmup,
		measure: o.Measure,
		seed:    seed,
		usages:  encodeUsages(group.Usages),
	}
	k.machine.Seed = 0
	return k
}

// encodeUsages packs the group's usages into a string key, bit-exactly.
func encodeUsages(us []float64) string {
	buf := make([]byte, len(us)*8)
	for i, u := range us {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(u))
	}
	return string(buf)
}

// measureAlone is measure without a guest, served from the calibration
// cache when the identical run was already simulated.
func (o Options) measureAlone(seed int64, group workload.HostGroup, spawn spawner) (runResult, error) {
	key := o.aloneKeyFor(seed, group)
	if v, ok := aloneCache.Load(key); ok {
		aloneCacheHits.Add(1)
		return v.(runResult), nil
	}
	res, err := o.measure(seed, spawn, nil)
	if err != nil {
		return runResult{}, err
	}
	aloneCacheMisses.Add(1)
	aloneCache.Store(key, res)
	return res, nil
}

// MeasureGroupReduction runs one full experiment point: calibrate the host
// group alone (memoized), then run it with the guest, and return (measured
// LH, reduction rate).
func (o Options) MeasureGroupReduction(seed int64, group workload.HostGroup, guestNice int) (lh, reduction float64, err error) {
	spawn := func(m *simos.Machine) { group.Spawn(m, o.Period) }
	alone, err := o.measureAlone(seed, group, spawn)
	if err != nil {
		return 0, 0, err
	}
	with, err := o.measure(seed, spawn, cpuBoundGuest(guestNice))
	if err != nil {
		return 0, 0, err
	}
	return alone.HostUsage, Reduction(alone.HostUsage, with.HostUsage), nil
}

// parallelFor runs fn(i) for i in [0, n) over a bounded worker pool.
func parallelFor(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}

// comboSeed derives a per-run seed from the experiment coordinates so runs
// are independent and reproducible. The stream name is assembled without
// fmt so the per-point seeding stays off the allocator's hot path; the
// bytes match the historical "combo/%d/..." format exactly.
func comboSeed(base int64, tags ...int) int64 {
	buf := make([]byte, 0, 48)
	buf = append(buf, "combo"...)
	for _, t := range tags {
		buf = append(buf, '/')
		buf = strconv.AppendInt(buf, int64(t), 10)
	}
	return int64(sim.NewSource(base).StreamBytes(buf).Uint64())
}
