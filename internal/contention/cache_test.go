package contention

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/simos"
	"repro/internal/workload"
)

// TestAloneCacheHitsAndParity verifies the calibration cache serves repeat
// alone runs without resimulating and that a cached result is identical to
// a direct measurement.
func TestAloneCacheHitsAndParity(t *testing.T) {
	ResetAloneCache()
	defer ResetAloneCache()

	o := DefaultOptions()
	o.Measure = 30 * time.Second // short window keeps the test fast
	group := workload.HostGroup{Usages: []float64{0.3, 0.2}}
	spawn := func(m *simos.Machine) { group.Spawn(m, o.Period) }
	seed := comboSeed(o.Seed, 42)

	direct, err := o.measure(seed, spawn, nil)
	if err != nil {
		t.Fatal(err)
	}

	lh1, red1, err := o.MeasureGroupReduction(seed, group, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := AloneCacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("after first run: hits=%d misses=%d, want 0/1", hits, misses)
	}
	if lh1 != direct.HostUsage {
		t.Fatalf("cached-path LH %v != direct measurement %v", lh1, direct.HostUsage)
	}

	lh2, red2, err := o.MeasureGroupReduction(seed, group, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := AloneCacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("after second run: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if lh1 != lh2 || red1 != red2 {
		t.Fatalf("cached run differs: (%v,%v) vs (%v,%v)", lh1, red1, lh2, red2)
	}
}

// TestAloneCacheKeySeparation checks that runs differing in seed, group or
// harness timing never share a cache entry.
func TestAloneCacheKeySeparation(t *testing.T) {
	o := DefaultOptions()
	base := o.aloneKeyFor(7, workload.HostGroup{Usages: []float64{0.5}})

	if k := o.aloneKeyFor(8, workload.HostGroup{Usages: []float64{0.5}}); k == base {
		t.Error("different seeds collide")
	}
	if k := o.aloneKeyFor(7, workload.HostGroup{Usages: []float64{0.25, 0.25}}); k == base {
		t.Error("different groups collide")
	}
	longer := o
	longer.Measure = o.Measure * 2
	if k := longer.aloneKeyFor(7, workload.HostGroup{Usages: []float64{0.5}}); k == base {
		t.Error("different measurement windows collide")
	}
	solaris := o
	solaris.Machine = simos.SolarisMachine(0).WithDefaults()
	if k := solaris.aloneKeyFor(7, workload.HostGroup{Usages: []float64{0.5}}); k == base {
		t.Error("different machines collide")
	}
	// The run seed overrides the machine config's seed, so a config seed
	// difference alone must NOT split the cache.
	reseeded := o
	reseeded.Machine.Seed = 99
	if k := reseeded.aloneKeyFor(7, workload.HostGroup{Usages: []float64{0.5}}); k != base {
		t.Error("machine config seed split the cache key")
	}
}

// TestComboSeedFormat pins the allocation-free seed derivation to the
// historical fmt-based construction, byte for byte.
func TestComboSeedFormat(t *testing.T) {
	ref := func(base int64, tags ...int) int64 {
		s := sim.NewSource(base)
		name := "combo"
		for _, tag := range tags {
			name = fmt.Sprintf("%s/%d", name, tag)
		}
		return int64(s.Stream(name).Uint64())
	}
	cases := [][]int{
		{},
		{0},
		{1, 2, 3},
		{100, 5, 19, 2},
		{-7, 0, 42},
		{1 << 30, -(1 << 30)},
	}
	for _, tags := range cases {
		for _, base := range []int64{1, 2, 77} {
			if got, want := comboSeed(base, tags...), ref(base, tags...); got != want {
				t.Errorf("comboSeed(%d, %v) = %d, want %d", base, tags, got, want)
			}
		}
	}
}
