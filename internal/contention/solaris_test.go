package contention

import (
	"testing"
	"time"

	"repro/internal/simos"
)

// TestSolarisThresholds reruns the threshold discovery with the weaker
// Solaris-like scheduler (Section 3.2.3's second machine). The paper found
// Th1 around 20% and Th2 anywhere between 22% and 57% there — both lower
// than Linux — because the scheduler protects interactive hosts less.
func TestSolarisThresholds(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := fastOptions()
	opt.Measure = 240 * time.Second
	opt.Machine = simos.SolarisMachine(0).WithDefaults()
	opt.Machine.Sched = simos.SolarisSchedParams()
	th, _, _, err := FindThresholds(opt)
	if err != nil {
		t.Fatal(err)
	}
	if th.Th1 < 0.05 || th.Th1 > 0.30 {
		t.Errorf("Solaris Th1 = %v, want within the paper's ~0.20 vicinity", th.Th1)
	}
	if th.Th2 < 0.22 || th.Th2 > 0.57 {
		t.Errorf("Solaris Th2 = %v, want inside the paper's 22-57%% band", th.Th2)
	}

	// The Solaris thresholds must sit below the Linux ones — the paper's
	// cross-system observation.
	linux, _, _, err := FindThresholds(fastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !(th.Th2 < linux.Th2) {
		t.Errorf("Solaris Th2 (%v) should be below Linux Th2 (%v)", th.Th2, linux.Th2)
	}
}
