package contention

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/availability"
	"repro/internal/sim"
	"repro/internal/simos"
	"repro/internal/workload"
)

// Figure1Result holds the data of paper Figure 1 (a or b): reduction rate
// of host CPU usage versus the group's isolated load, per group size.
type Figure1Result struct {
	GuestNice int
	// LHGrid are the nominal target loads (x axis).
	LHGrid []float64
	// Sizes are the host group sizes (one curve each).
	Sizes []int
	// MeasuredLH[s][l] is the calibrated group load for Sizes[s] at
	// LHGrid[l] (NaN when the point is infeasible, e.g. LH 0.1 with 5
	// members).
	MeasuredLH [][]float64
	// Reduction[s][l] is the averaged reduction rate (NaN when
	// infeasible).
	Reduction [][]float64
	// Slowdown is the noticeable-slowdown bound used for thresholds.
	Slowdown float64
}

// DefaultLHGrid is the paper's x axis: 10% to 100%.
func DefaultLHGrid() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// DefaultSizes are the paper's host group sizes M = 1..5.
func DefaultSizes() []int { return []int{1, 2, 3, 4, 5} }

// RunFigure1 reproduces Figure 1(a) (guestNice 0) or 1(b) (guestNice 19).
func RunFigure1(opt Options, guestNice int) (*Figure1Result, error) {
	opt = opt.withDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	grid := DefaultLHGrid()
	sizes := DefaultSizes()
	res := &Figure1Result{
		GuestNice: guestNice,
		LHGrid:    grid,
		Sizes:     sizes,
		Slowdown:  opt.Slowdown,
	}
	res.MeasuredLH = make([][]float64, len(sizes))
	res.Reduction = make([][]float64, len(sizes))
	for s := range sizes {
		res.MeasuredLH[s] = make([]float64, len(grid))
		res.Reduction[s] = make([]float64, len(grid))
	}

	type point struct{ s, l int }
	var pts []point
	for s := range sizes {
		for l := range grid {
			pts = append(pts, point{s, l})
		}
	}
	var mu sync.Mutex
	parallelFor(len(pts), opt.Parallelism, func(i int) {
		p := pts[i]
		lh, red, n := opt.averagePoint(grid[p.l], sizes[p.s], guestNice)
		mu.Lock()
		defer mu.Unlock()
		if n == 0 {
			res.MeasuredLH[p.s][p.l] = math.NaN()
			res.Reduction[p.s][p.l] = math.NaN()
			return
		}
		res.MeasuredLH[p.s][p.l] = lh
		res.Reduction[p.s][p.l] = red
	})
	return res, nil
}

// averagePoint measures one (LH, M) point over the configured combos,
// returning averaged calibrated LH and reduction plus the combo count
// (0 when the point is infeasible).
func (o Options) averagePoint(lh float64, m, guestNice int) (avgLH, avgRed float64, n int) {
	src := sim.NewSource(o.Seed)
	rng := src.Stream(fmt.Sprintf("compose/%v/%d/%d", lh, m, guestNice))
	for c := 0; c < o.Combos; c++ {
		group, err := workload.ComposeGroup(rng, lh, m)
		if err != nil {
			return 0, 0, 0 // infeasible point
		}
		seed := comboSeed(o.Seed, int(lh*1000), m, guestNice, c)
		gotLH, red, err := o.MeasureGroupReduction(seed, group, guestNice)
		if err != nil {
			continue
		}
		avgLH += gotLH
		avgRed += red
		n++
	}
	if n > 0 {
		avgLH /= float64(n)
		avgRed /= float64(n)
	}
	return avgLH, avgRed, n
}

// Threshold extracts the figure's threshold: the lowest LH above which the
// reduction exceeds the slowdown bound for at least one group size. The
// crossing is interpolated linearly between grid points, matching how the
// paper reads Th1/Th2 off the curves.
func (r *Figure1Result) Threshold() (float64, bool) {
	best := math.Inf(1)
	found := false
	for s := range r.Sizes {
		for l := 0; l < len(r.LHGrid); l++ {
			cur := r.Reduction[s][l]
			if math.IsNaN(cur) || cur <= r.Slowdown {
				continue
			}
			// First grid point of this curve above the bound.
			cross := r.LHGrid[l]
			if l > 0 && !math.IsNaN(r.Reduction[s][l-1]) {
				prev := r.Reduction[s][l-1]
				if prev <= r.Slowdown && cur > prev {
					frac := (r.Slowdown - prev) / (cur - prev)
					cross = r.LHGrid[l-1] + frac*(r.LHGrid[l]-r.LHGrid[l-1])
				}
			}
			if cross < best {
				best = cross
				found = true
			}
			break
		}
	}
	if !found {
		return 0, false
	}
	return best, true
}

// Format renders the figure as an aligned text table (one row per LH, one
// column per group size).
func (r *Figure1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — reduction rate of host CPU usage (guest nice %d)\n", r.GuestNice)
	fmt.Fprintf(&b, "%6s", "LH")
	for _, m := range r.Sizes {
		fmt.Fprintf(&b, "  M=%d    ", m)
	}
	b.WriteString("\n")
	for l, lh := range r.LHGrid {
		fmt.Fprintf(&b, "%5.0f%%", lh*100)
		for s := range r.Sizes {
			v := r.Reduction[s][l]
			if math.IsNaN(v) {
				fmt.Fprintf(&b, "  %-7s", "-")
			} else {
				fmt.Fprintf(&b, "  %5.1f%% ", v*100)
			}
		}
		b.WriteString("\n")
	}
	if th, ok := r.Threshold(); ok {
		fmt.Fprintf(&b, "threshold (lowest LH with slowdown > %.0f%%): %.0f%%\n", r.Slowdown*100, th*100)
	}
	return b.String()
}

// FindThresholds runs Figures 1(a) and 1(b) and derives (Th1, Th2) — the
// full Section 3.2.1 calibration.
func FindThresholds(opt Options) (availability.Thresholds, *Figure1Result, *Figure1Result, error) {
	a, err := RunFigure1(opt, 0)
	if err != nil {
		return availability.Thresholds{}, nil, nil, err
	}
	b, err := RunFigure1(opt, availability.LowestNice)
	if err != nil {
		return availability.Thresholds{}, nil, nil, err
	}
	th := availability.Thresholds{Slowdown: opt.withDefaults().Slowdown}
	if v, ok := a.Threshold(); ok {
		th.Th1 = v
	}
	if v, ok := b.Threshold(); ok {
		th.Th2 = v
	}
	if th.Th2 < th.Th1 {
		th.Th2 = th.Th1
	}
	return th, a, b, nil
}

// Figure2Result holds paper Figure 2: host slowdown for a single host
// process versus (LH, guest nice level).
type Figure2Result struct {
	LHGrid []float64
	Nices  []int
	// Reduction[n][l] for Nices[n] and LHGrid[l].
	Reduction [][]float64
}

// RunFigure2 reproduces Figure 2: the priority sweep showing that
// intermediate guest priorities between 0 and 19 buy no additional host
// protection between Th1 and Th2.
func RunFigure2(opt Options) (*Figure2Result, error) {
	opt = opt.withDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	grid := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	nices := []int{0, 2, 5, 8, 11, 14, 17, 19}
	res := &Figure2Result{LHGrid: grid, Nices: nices}
	res.Reduction = make([][]float64, len(nices))
	for n := range nices {
		res.Reduction[n] = make([]float64, len(grid))
	}
	type point struct{ n, l int }
	var pts []point
	for n := range nices {
		for l := range grid {
			pts = append(pts, point{n, l})
		}
	}
	var mu sync.Mutex
	parallelFor(len(pts), opt.Parallelism, func(i int) {
		p := pts[i]
		group := workload.HostGroup{Usages: []float64{grid[p.l]}}
		seed := comboSeed(opt.Seed, 2, p.n, p.l)
		_, red, err := opt.MeasureGroupReduction(seed, group, nices[p.n])
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			res.Reduction[p.n][p.l] = math.NaN()
			return
		}
		res.Reduction[p.n][p.l] = red
	})
	return res, nil
}

// Format renders the priority sweep.
func (r *Figure2Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 2 — host slowdown vs (LH, guest priority)\n")
	fmt.Fprintf(&b, "%6s", "LH")
	for _, n := range r.Nices {
		fmt.Fprintf(&b, "  n=%-4d", n)
	}
	b.WriteString("\n")
	for l, lh := range r.LHGrid {
		fmt.Fprintf(&b, "%5.0f%%", lh*100)
		for n := range r.Nices {
			fmt.Fprintf(&b, "  %5.1f%%", r.Reduction[n][l]*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Figure3Row is one x-axis group of paper Figure 3: a host/guest isolated
// usage pair with the guest's achieved usage at both priorities.
type Figure3Row struct {
	HostUsage       float64
	GuestIsolated   float64
	GuestEqualPrio  float64
	GuestLowestPrio float64
}

// Figure3Result holds the paper's Figure 3 comparison.
type Figure3Result struct {
	Rows []Figure3Row
}

// RunFigure3 reproduces Figure 3: guest CPU usage with equal vs lowest
// priority under light host load, quantifying how much CPU an
// always-lowest-priority policy costs the guest.
func RunFigure3(opt Options) (*Figure3Result, error) {
	opt = opt.withDefaults()
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	type combo struct{ host, guest float64 }
	combos := []combo{
		{0.2, 1.0}, {0.2, 0.9}, {0.2, 0.8}, {0.2, 0.7},
		{0.1, 1.0}, {0.1, 0.9}, {0.1, 0.8}, {0.1, 0.7},
	}
	res := &Figure3Result{Rows: make([]Figure3Row, len(combos))}
	// The 1-2% priority effect is small, so average several independent
	// repetitions per combo and decorrelate the guest's duty cycle from
	// the host's (different period plus jitter) to avoid phase locking.
	reps := opt.Combos * 3
	var mu sync.Mutex
	parallelFor(len(combos), opt.Parallelism, func(i int) {
		c := combos[i]
		row := Figure3Row{HostUsage: c.host, GuestIsolated: c.guest}
		spawn := func(m *simos.Machine) {
			m.Spawn("host", simos.Host, 0, workload.SyntheticRSS,
				&workload.DutyCycle{Usage: c.host, Period: opt.Period, Jitter: 0.15})
		}
		for _, nice := range []int{0, availability.LowestNice} {
			sum, n := 0.0, 0
			for rep := 0; rep < reps; rep++ {
				g := &guestSpec{
					name: "guest",
					nice: nice,
					rss:  workload.SyntheticRSS,
					behavior: func() simos.Behavior {
						return &workload.DutyCycle{Usage: c.guest, Period: opt.Period * 7 / 10, Jitter: 0.2}
					},
				}
				seed := comboSeed(opt.Seed, 3, i, nice, rep)
				out, err := opt.measure(seed, spawn, g)
				if err != nil {
					continue
				}
				sum += out.GuestUsage
				n++
			}
			if n == 0 {
				continue
			}
			avg := sum / float64(n)
			if nice == 0 {
				row.GuestEqualPrio = avg
			} else {
				row.GuestLowestPrio = avg
			}
		}
		mu.Lock()
		res.Rows[i] = row
		mu.Unlock()
	})
	return res, nil
}

// Format renders Figure 3.
func (r *Figure3Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 3 — guest CPU usage, equal vs lowest priority\n")
	fmt.Fprintf(&b, "%-10s %-8s %-12s %-12s %-8s\n", "host+guest", "isolated", "equal-prio", "nice-19", "delta")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%.1f+%-6.1f %-8.2f %-12.3f %-12.3f %+.3f\n",
			row.HostUsage, row.GuestIsolated, row.GuestIsolated,
			row.GuestEqualPrio, row.GuestLowestPrio,
			row.GuestEqualPrio-row.GuestLowestPrio)
	}
	return b.String()
}

// MeanPriorityGain returns the average extra guest CPU usage at equal
// priority versus nice 19 (the paper reports about 2%).
func (r *Figure3Result) MeanPriorityGain() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, row := range r.Rows {
		sum += row.GuestEqualPrio - row.GuestLowestPrio
	}
	return sum / float64(len(r.Rows))
}
