package contention

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/availability"
	"repro/internal/simos"
	"repro/internal/workload"
)

// Figure4Cell is one bar of paper Figure 4: a (guest app, host workload,
// guest priority) combination.
type Figure4Cell struct {
	Guest string
	Host  string
	Nice  int
	// Reduction is the host CPU usage reduction rate.
	Reduction float64
	// Thrashed marks the starred bars: the working sets exceeded physical
	// memory and the machine thrashed.
	Thrashed bool
}

// Figure4Result holds the full CPU+memory contention experiment of
// Section 3.2.3: SPEC-like guests against Musbus-like host workloads on
// the 384 MB Solaris machine.
type Figure4Result struct {
	Guests []string
	Hosts  []string
	// Cells indexed [nice][guest][host]; Nices[k] gives the priority of
	// plane k.
	Nices []int
	Cells [][][]Figure4Cell
}

// RunFigure4 reproduces Figure 4 (a: guest priority 0, b: priority 19).
// The machine defaults to the paper's 384 MB Solaris box unless the
// options specify otherwise.
func RunFigure4(opt Options) (*Figure4Result, error) {
	opt = opt.withDefaults()
	// Figure 4 ran on the small-memory machine; honor an explicit override
	// but default to it.
	if opt.Machine.Name == "linux-lab" {
		opt.Machine = simos.SolarisMachine(opt.Seed).WithDefaults()
	}
	if err := opt.Validate(); err != nil {
		return nil, err
	}

	guests := workload.SPECGuests()
	hosts := workload.MusbusWorkloads()
	nices := []int{0, availability.LowestNice}

	res := &Figure4Result{Nices: nices}
	for _, g := range guests {
		res.Guests = append(res.Guests, g.Name)
	}
	for _, h := range hosts {
		res.Hosts = append(res.Hosts, h.Name)
	}
	res.Cells = make([][][]Figure4Cell, len(nices))
	for k := range nices {
		res.Cells[k] = make([][]Figure4Cell, len(guests))
		for g := range guests {
			res.Cells[k][g] = make([]Figure4Cell, len(hosts))
		}
	}

	// Calibrate each host workload alone once.
	aloneUsage := make([]float64, len(hosts))
	var mu sync.Mutex
	parallelFor(len(hosts), opt.Parallelism, func(h int) {
		host := hosts[h]
		spawn := func(m *simos.Machine) { host.Spawn(m, simos.Host, 0) }
		out, err := opt.measure(comboSeed(opt.Seed, 4, h), spawn, nil)
		mu.Lock()
		defer mu.Unlock()
		if err == nil {
			aloneUsage[h] = out.HostUsage
		}
	})

	type point struct{ k, g, h int }
	var pts []point
	for k := range nices {
		for g := range guests {
			for h := range hosts {
				pts = append(pts, point{k, g, h})
			}
		}
	}
	parallelFor(len(pts), opt.Parallelism, func(i int) {
		p := pts[i]
		guest := guests[p.g]
		host := hosts[p.h]
		spawn := func(m *simos.Machine) { host.Spawn(m, simos.Host, 0) }
		gs := &guestSpec{
			name: guest.Name,
			nice: nices[p.k],
			rss:  guest.RSS(),
			behavior: func() simos.Behavior {
				return &workload.DutyCycle{Usage: guest.CPUUsage, Period: opt.Period}
			},
		}
		out, err := opt.measure(comboSeed(opt.Seed, 4, p.k, p.g, p.h), spawn, gs)
		cell := Figure4Cell{Guest: guest.Name, Host: host.Name, Nice: nices[p.k]}
		if err == nil {
			mu.Lock()
			alone := aloneUsage[p.h]
			mu.Unlock()
			cell.Reduction = Reduction(alone, out.HostUsage)
			cell.Thrashed = out.Thrashed
		}
		mu.Lock()
		res.Cells[p.k][p.g][p.h] = cell
		mu.Unlock()
	})
	return res, nil
}

// Format renders both planes of Figure 4; thrashing cells are starred as
// in the paper.
func (r *Figure4Result) Format() string {
	var b strings.Builder
	for k, nice := range r.Nices {
		fmt.Fprintf(&b, "Figure 4(%c) — host slowdown, guest priority %d\n", 'a'+k, nice)
		fmt.Fprintf(&b, "%-8s", "guest")
		for _, h := range r.Hosts {
			fmt.Fprintf(&b, "  %-8s", h)
		}
		b.WriteString("\n")
		for g, gn := range r.Guests {
			fmt.Fprintf(&b, "%-8s", gn)
			for h := range r.Hosts {
				c := r.Cells[k][g][h]
				star := " "
				if c.Thrashed {
					star = "*"
				}
				fmt.Fprintf(&b, "  %5.1f%%%s ", c.Reduction*100, star)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// ThrashingPredicted reports whether the paper's working-set rule predicts
// thrashing for a guest/host pair on the given machine: guest RSS + host
// RSS + kernel memory exceeding physical memory.
func ThrashingPredicted(machine simos.MachineConfig, guest, host workload.AppProfile) bool {
	machine = machineWithDefaults(machine)
	return guest.RSS()+host.RSS()+machine.KernelMem > machine.RAM
}

func machineWithDefaults(m simos.MachineConfig) simos.MachineConfig {
	if m.RAM == 0 {
		m = simos.SolarisMachine(0)
	}
	return m
}

// Table1 renders the paper's Table 1 from the built-in profiles.
func Table1() string {
	var b strings.Builder
	b.WriteString("Table 1 — resource usage of tested applications\n")
	for _, p := range workload.SPECGuests() {
		fmt.Fprintf(&b, "%s\n", p)
	}
	for _, p := range workload.MusbusWorkloads() {
		fmt.Fprintf(&b, "%s\n", p)
	}
	return b.String()
}
