package contention

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/simos"
	"repro/internal/workload"
)

// fastOptions trades a little precision for test speed.
func fastOptions() Options {
	opt := DefaultOptions()
	opt.Measure = 150 * time.Second
	opt.Combos = 2
	return opt
}

func TestReduction(t *testing.T) {
	tests := []struct {
		alone, together, want float64
	}{
		{0.5, 0.45, 0.1},
		{0.5, 0.5, 0},
		{0.5, 0.55, 0}, // clamped: guest cannot speed the host up
		{0, 0.1, 0},    // degenerate calibration
	}
	for _, tt := range tests {
		if got := Reduction(tt.alone, tt.together); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Reduction(%v, %v) = %v, want %v", tt.alone, tt.together, got, tt.want)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Measure: -time.Second},
		{Measure: time.Second, Warmup: -time.Second},
		{Measure: time.Second, Combos: -1},
	}
	for i, o := range bad {
		o.Machine = simos.LinuxLabMachine(0).WithDefaults()
		if o.Combos == 0 {
			o.Combos = 1
		}
		if o.Slowdown == 0 {
			o.Slowdown = 0.05
		}
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
}

func TestMeasureGroupReduction(t *testing.T) {
	opt := fastOptions()
	group := workload.HostGroup{Usages: []float64{0.8}}
	lh, red, err := opt.MeasureGroupReduction(7, group, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lh < 0.7 || lh > 0.85 {
		t.Errorf("calibrated LH = %v, want ~0.8", lh)
	}
	// A CPU-bound equal-priority guest must hurt a heavy host noticeably.
	if red < 0.1 {
		t.Errorf("reduction = %v, want > 0.1 at LH 0.8", red)
	}
}

// TestThresholdCalibration is the headline calibration check: the harness
// must land Th1 and Th2 near the paper's Linux values (20% / 60%).
func TestThresholdCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run takes a few seconds")
	}
	opt := fastOptions()
	opt.Measure = 240 * time.Second
	th, figA, figB, err := FindThresholds(opt)
	if err != nil {
		t.Fatal(err)
	}
	if th.Th1 < 0.12 || th.Th1 > 0.32 {
		t.Errorf("Th1 = %v, want ~0.20 (paper)\n%s", th.Th1, figA.Format())
	}
	if th.Th2 < 0.45 || th.Th2 > 0.72 {
		t.Errorf("Th2 = %v, want ~0.60 (paper)\n%s", th.Th2, figB.Format())
	}
	if th.Th1 >= th.Th2 {
		t.Errorf("Th1 (%v) must be below Th2 (%v)", th.Th1, th.Th2)
	}
}

func TestFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := fastOptions()
	res, err := RunFigure1(opt, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Infeasible points (LH 0.1 with 3+ members) are NaN.
	if !math.IsNaN(res.Reduction[2][0]) {
		t.Error("LH=0.1 M=3 should be infeasible")
	}
	// The M=1 curve rises with LH: compare ends.
	lo := res.Reduction[0][1] // LH 0.2
	hi := res.Reduction[0][9] // LH 1.0
	if !(hi > lo+0.2) {
		t.Errorf("M=1 curve should rise strongly: red(0.2)=%v red(1.0)=%v", lo, hi)
	}
	// Reduction decreases with group size at heavy load (paper: curves
	// converge as M grows).
	if !(res.Reduction[0][9] > res.Reduction[3][9]) {
		t.Errorf("reduction should fall with M at LH=1.0: M=1 %v, M=4 %v",
			res.Reduction[0][9], res.Reduction[3][9])
	}
	// Calibrated LH tracks the nominal grid within self-contention loss.
	for s := range res.Sizes {
		for l, nominal := range res.LHGrid {
			got := res.MeasuredLH[s][l]
			if math.IsNaN(got) {
				continue
			}
			if got > nominal+0.07 || got < nominal*0.7-0.03 {
				t.Errorf("M=%d LH=%v: calibrated %v too far off", res.Sizes[s], nominal, got)
			}
		}
	}
	if !strings.Contains(res.Format(), "Figure 1") {
		t.Error("Format missing title")
	}
}

func TestFigure2PrioritySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := fastOptions()
	res, err := RunFigure2(opt)
	if err != nil {
		t.Fatal(err)
	}
	// At heavy host load the lowest priority must protect the host much
	// better than the default priority (the reason Th1 exists)...
	heavy := len(res.LHGrid) - 2 // LH 0.9
	n0, n19 := res.Reduction[0][heavy], res.Reduction[len(res.Nices)-1][heavy]
	if !(n19 < n0*0.5) {
		t.Errorf("nice 19 should protect host at heavy load: nice0 %v nice19 %v", n0, n19)
	}
	// ...and intermediate priorities between Th1 and Th2 are not enough to
	// keep the slowdown acceptable, so gradual renicing buys nothing
	// (Section 3.2.2's conclusion).
	mid := 2 // LH 0.4
	for n, nice := range res.Nices {
		if nice == 0 || nice >= 17 {
			continue
		}
		if res.Reduction[n][mid] <= opt.Slowdown {
			// Tolerate one near-threshold value but flag systematic
			// protection from a mid nice.
			if res.Reduction[n][mid] < opt.Slowdown*0.5 {
				t.Errorf("nice %d already protects at LH=0.4 (red %v); gradual renice should not suffice",
					nice, res.Reduction[n][mid])
			}
		}
	}
	if !strings.Contains(res.Format(), "Figure 2") {
		t.Error("Format missing title")
	}
}

func TestFigure3PriorityGain(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := fastOptions()
	res, err := RunFigure3(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("got %d rows, want 8", len(res.Rows))
	}
	gain := res.MeanPriorityGain()
	// The paper reports ~2% more guest CPU at equal priority; accept a
	// band around it but insist the sign is right and the size plausible.
	if gain < 0.003 || gain > 0.06 {
		t.Errorf("mean priority gain = %v, want ~0.02\n%s", gain, res.Format())
	}
	for _, row := range res.Rows {
		if row.GuestEqualPrio == 0 || row.GuestLowestPrio == 0 {
			t.Errorf("row %+v has missing measurements", row)
		}
		// The guest can never exceed its isolated demand.
		if row.GuestEqualPrio > row.GuestIsolated+0.02 {
			t.Errorf("guest usage %v above isolated %v", row.GuestEqualPrio, row.GuestIsolated)
		}
	}
}

func TestFigure4MemoryContention(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opt := fastOptions()
	opt.Measure = 120 * time.Second
	res, err := RunFigure4(opt)
	if err != nil {
		t.Fatal(err)
	}
	solaris := simos.SolarisMachine(0)
	guests := workload.SPECGuests()
	hosts := workload.MusbusWorkloads()
	gi := map[string]int{}
	for i, g := range res.Guests {
		gi[g] = i
	}
	hi := map[string]int{}
	for i, h := range res.Hosts {
		hi[h] = i
	}
	// Thrashing must occur exactly where working sets exceed memory:
	// H2/H5 with apsi, bzip2, mcf — and never with galgel (paper Fig. 4).
	for _, g := range guests {
		for _, h := range hosts {
			want := ThrashingPredicted(solaris, g, h)
			for k := range res.Nices {
				cell := res.Cells[k][gi[g.Name]][hi[h.Name]]
				if cell.Thrashed != want {
					t.Errorf("%s+%s nice %d: thrashed=%v, predicted %v",
						g.Name, h.Name, res.Nices[k], cell.Thrashed, want)
				}
			}
		}
	}
	// Thrashing happens regardless of guest priority (orthogonality):
	// checked above by iterating both planes. Spot-check magnitudes: the
	// thrashing H2+apsi bars show large slowdown at both priorities.
	for k := range res.Nices {
		c := res.Cells[k][gi["apsi"]][hi["H2"]]
		if c.Reduction < 0.10 {
			t.Errorf("thrashing H2+apsi nice %d reduction = %v, want large", res.Nices[k], c.Reduction)
		}
	}
	// Without memory pressure, renicing helps: H6 (66% CPU) + galgel.
	a := res.Cells[0][gi["galgel"]][hi["H6"]]
	b := res.Cells[1][gi["galgel"]][hi["H6"]]
	if !(b.Reduction < a.Reduction) {
		t.Errorf("renice should reduce slowdown for H6+galgel: nice0 %v nice19 %v",
			a.Reduction, b.Reduction)
	}
	// Light host loads see little slowdown when memory fits: H1+galgel.
	if c := res.Cells[1][gi["galgel"]][hi["H1"]]; c.Reduction > opt.Slowdown+0.03 {
		t.Errorf("H1+galgel nice19 reduction = %v, want small", c.Reduction)
	}
	if !strings.Contains(res.Format(), "Figure 4(a)") || !strings.Contains(res.Format(), "*") {
		t.Error("Format should include both planes and thrashing stars")
	}
}

func TestThrashingPredictedRule(t *testing.T) {
	solaris := simos.SolarisMachine(0)
	apsi, _ := workload.GuestByName("apsi")
	galgel, _ := workload.GuestByName("galgel")
	h2, _ := workload.HostWorkloadByName("H2")
	h1, _ := workload.HostWorkloadByName("H1")
	if !ThrashingPredicted(solaris, apsi, h2) {
		t.Error("apsi+H2 must thrash on 384 MB")
	}
	if ThrashingPredicted(solaris, galgel, h2) {
		t.Error("galgel+H2 must fit on 384 MB")
	}
	if ThrashingPredicted(solaris, apsi, h1) {
		t.Error("apsi+H1 must fit on 384 MB")
	}
	// On the paper's >1 GB lab machines, nothing in Table 1 thrashes.
	lab := simos.LinuxLabMachine(0)
	for _, g := range workload.SPECGuests() {
		for _, h := range workload.MusbusWorkloads() {
			if ThrashingPredicted(lab, g, h) {
				t.Errorf("%s+%s should fit on the 1.5 GB lab machine", g.Name, h.Name)
			}
		}
	}
}

func TestThresholdInterpolation(t *testing.T) {
	r := &Figure1Result{
		LHGrid:   []float64{0.2, 0.4},
		Sizes:    []int{1},
		Slowdown: 0.05,
		Reduction: [][]float64{
			{0.03, 0.07},
		},
	}
	th, ok := r.Threshold()
	if !ok {
		t.Fatal("threshold not found")
	}
	// Linear crossing: 0.2 + 0.2*(0.05-0.03)/(0.07-0.03) = 0.3.
	if math.Abs(th-0.3) > 1e-9 {
		t.Errorf("interpolated threshold = %v, want 0.3", th)
	}
	// Curve that never crosses.
	flat := &Figure1Result{
		LHGrid:    []float64{0.2, 0.4},
		Sizes:     []int{1},
		Slowdown:  0.05,
		Reduction: [][]float64{{0.01, 0.02}},
	}
	if _, ok := flat.Threshold(); ok {
		t.Error("flat curve should have no threshold")
	}
	// First point already above the bound.
	high := &Figure1Result{
		LHGrid:    []float64{0.2, 0.4},
		Sizes:     []int{1},
		Slowdown:  0.05,
		Reduction: [][]float64{{0.09, 0.2}},
	}
	if th, ok := high.Threshold(); !ok || th != 0.2 {
		t.Errorf("immediate crossing = %v, %v; want 0.2", th, ok)
	}
}

func TestTable1Format(t *testing.T) {
	s := Table1()
	for _, name := range []string{"apsi", "galgel", "bzip2", "mcf", "H1", "H6"} {
		if !strings.Contains(s, name) {
			t.Errorf("Table 1 missing %s:\n%s", name, s)
		}
	}
}

func TestParallelFor(t *testing.T) {
	n := 100
	seen := make([]bool, n)
	var countGuard = make(chan struct{}, 1)
	countGuard <- struct{}{}
	parallelFor(n, 4, func(i int) {
		<-countGuard
		seen[i] = true
		countGuard <- struct{}{}
	})
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not executed", i)
		}
	}
	// Serial path.
	ran := 0
	parallelFor(3, 1, func(i int) { ran++ })
	if ran != 3 {
		t.Errorf("serial parallelFor ran %d", ran)
	}
	// Zero items.
	parallelFor(0, 4, func(i int) { t.Error("should not run") })
}

func TestComboSeedDistinct(t *testing.T) {
	a := comboSeed(1, 1, 2, 3)
	b := comboSeed(1, 1, 2, 4)
	c := comboSeed(2, 1, 2, 3)
	if a == b || a == c {
		t.Error("combo seeds should differ across coordinates and bases")
	}
	if a != comboSeed(1, 1, 2, 3) {
		t.Error("combo seeds must be deterministic")
	}
}
