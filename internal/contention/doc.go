// Package contention reproduces the paper's offline resource-contention
// experiments (Section 3.2): it runs guest and host workloads together on
// simulated machines, measures the reduction of host CPU usage caused by
// the guest, and derives the two thresholds Th1 and Th2 that the
// multi-state availability model is built on.
//
// The harness follows the paper's protocol exactly:
//
//  1. Calibrate: run each host group alone and measure its aggregate CPU
//     usage — that measured value (not the nominal sum of duty cycles) is
//     the group's LH.
//  2. Contend: run the same group together with a guest process and
//     measure the reduction rate of host CPU usage.
//  3. Average over several randomly composed groups per (LH, M) point,
//     because "the same host workload can come from various individual
//     host processes".
//
// Every experiment point is an independent simulation, so the harness
// fans points out across a worker pool (one goroutine per CPU by default).
package contention
