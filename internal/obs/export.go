package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one HELP and
// TYPE line per family, histogram series expanded into cumulative
// _bucket/_sum/_count lines.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.Snapshot() {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f FamilySnapshot, s SeriesSnapshot) error {
	if f.Kind != KindHistogram {
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, renderLabels(s.Labels, "", ""), formatFloat(s.Value))
		return err
	}
	h := s.Hist
	cum := uint64(0)
	for i, c := range h.Counts {
		cum += c
		le := "+Inf"
		if i < len(h.Bounds) {
			le = formatFloat(h.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name, renderLabels(s.Labels, "le", le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.Name, renderLabels(s.Labels, "", ""), formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.Name, renderLabels(s.Labels, "", ""), h.Count)
	return err
}

// renderLabels renders {k="v",...}, appending an extra pair when extraKey
// is non-empty (the histogram "le" bound). Empty label sets render as "".
func renderLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeValue(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeValue(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
