// Package obs is the repository's observability spine: a small,
// dependency-free metrics layer — counters, gauges and fixed-bucket
// histograms, all atomic and safe for concurrent use — with a Prometheus
// text exporter and an HTTP server wrapping /metrics, /healthz and pprof.
//
// The paper's whole contribution is non-intrusive measurement of a running
// system; this package gives our own stack the same property. Metric
// updates are lock-free atomic operations so they can sit on hot paths
// (detector transitions, broker recovery actions) without perturbing the
// behavior being measured; registration (get-or-create) takes a registry
// lock and belongs at construction time or on cold paths.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is usable,
// but counters are normally obtained from a Registry so they export.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets defined by ascending
// upper bounds; values above the last bound land in the implicit +Inf
// bucket. Observations are lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-added
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// bucketIndex returns the index of the first bound >= v (len(bounds) for
// the +Inf bucket). Hand-rolled: bucket slices are short (a dozen bounds),
// so a linear scan beats sort.Search's per-iteration closure calls on hot
// observe paths.
func bucketIndex(bounds []float64, v float64) int {
	for i, b := range bounds {
		if v <= b {
			return i
		}
	}
	return len(bounds)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := bucketIndex(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// LocalHistogram is an unsynchronized accumulator sharing a Histogram's
// buckets, for single-goroutine hot loops that would otherwise contend on
// the shared atomics per observation. Observe is plain arithmetic; Flush
// folds the whole batch into the parent in O(buckets).
type LocalHistogram struct {
	h      *Histogram
	counts []uint64
	count  uint64
	sum    float64
}

// Local returns a new unsynchronized accumulator for this histogram. Each
// accumulator belongs to one goroutine; any number may flush into the same
// parent concurrently.
func (h *Histogram) Local() *LocalHistogram {
	return &LocalHistogram{h: h, counts: make([]uint64, len(h.counts))}
}

// Observe records one value locally. Not safe for concurrent use.
func (l *LocalHistogram) Observe(v float64) {
	l.counts[bucketIndex(l.h.bounds, v)]++
	l.count++
	l.sum += v
}

// Flush adds the accumulated batch to the parent histogram and resets the
// accumulator. A scrape concurrent with Flush may see the batch's buckets
// partially applied — the same per-bucket consistency Observe offers.
func (l *LocalHistogram) Flush() {
	if l.count == 0 {
		return
	}
	for i, n := range l.counts {
		if n != 0 {
			l.h.counts[i].Add(n)
			l.counts[i] = 0
		}
	}
	l.h.count.Add(l.count)
	l.count = 0
	for {
		old := l.h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + l.sum)
		if l.h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	l.sum = 0
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (not cumulative) and align with Bounds plus a
// final +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the histogram state. Concurrent observations may land
// between bucket reads; each bucket value is itself consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns n ascending bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 {
		panic("obs: ExpBuckets needs start > 0 and factor > 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Label is one metric dimension. Series of a family are distinguished by
// their sorted label sets.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates metric families.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one (family, labels) metric instance.
type series struct {
	labels []Label // sorted by key
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups the series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64 // histogram families only
	byKey  map[string]*series
	order  []string // label keys in first-registration order, for stable export
}

// Registry holds named metrics and renders them for export. Get-or-create
// lookups are guarded by a mutex; the returned metric handles update
// atomically without touching the registry again, so callers should hold
// on to them for hot paths.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter registered under name and labels, creating
// it on first use. Reusing a name with a different metric kind panics —
// that is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.get(name, help, KindCounter, nil, labels)
	return s.c
}

// Gauge returns the gauge registered under name and labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.get(name, help, KindGauge, nil, labels)
	return s.g
}

// Histogram returns the histogram registered under name and labels,
// creating it with the given bucket bounds on first use. Later calls for
// the same family ignore bounds (the family's buckets are fixed at
// creation).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.get(name, help, KindHistogram, bounds, labels)
	return s.h
}

func (r *Registry) get(name, help string, kind Kind, bounds []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) || l.Key == "le" {
			panic(fmt.Sprintf("obs: invalid label key %q on %q", l.Key, name))
		}
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := labelKey(sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, byKey: make(map[string]*series)}
		if kind == KindHistogram {
			if len(bounds) == 0 {
				panic(fmt.Sprintf("obs: histogram %q needs at least one bucket bound", name))
			}
			f.bounds = append([]float64(nil), bounds...)
		}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q is a %v, requested as %v", name, f.kind, kind))
	}
	s, ok := f.byKey[key]
	if !ok {
		s = &series{labels: sorted}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = newHistogram(f.bounds)
		}
		f.byKey[key] = s
		f.order = append(f.order, key)
	}
	return s
}

func labelKey(sorted []Label) string {
	if len(sorted) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range sorted {
		b.WriteString(l.Key)
		b.WriteByte('\xff')
		b.WriteString(l.Value)
		b.WriteByte('\xfe')
	}
	return b.String()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// SeriesSnapshot is one exported series.
type SeriesSnapshot struct {
	Labels []Label
	// Value holds counter (as float64) and gauge values.
	Value float64
	// Hist is set for histogram series.
	Hist *HistogramSnapshot
}

// FamilySnapshot is one exported metric family.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Series []SeriesSnapshot
}

// Snapshot captures every registered metric, families sorted by name and
// series in registration order.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]FamilySnapshot, 0, len(names))
	for _, n := range names {
		f := r.families[n]
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		for _, key := range f.order {
			s := f.byKey[key]
			ss := SeriesSnapshot{Labels: append([]Label(nil), s.labels...)}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.c.Value())
			case KindGauge:
				ss.Value = s.g.Value()
			case KindHistogram:
				h := s.h.Snapshot()
				ss.Hist = &h
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}
