package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fgcs_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("fgcs_test_total", "a counter"); again != c {
		t.Error("get-or-create returned a different counter for the same name")
	}

	g := r.Gauge("fgcs_test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1.25)
	if got := g.Value(); got != 1.25 {
		t.Errorf("gauge = %v, want 1.25", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("fgcs_ops_total", "ops", L("op", "list"))
	b := r.Counter("fgcs_ops_total", "ops", L("op", "submit"))
	if a == b {
		t.Fatal("different label values must give different series")
	}
	a.Inc()
	// Label order must not matter.
	c := r.Counter("fgcs_multi_total", "m", L("b", "2"), L("a", "1"))
	d := r.Counter("fgcs_multi_total", "m", L("a", "1"), L("b", "2"))
	if c != d {
		t.Error("label order changed series identity")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fgcs_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.05 and 0.1 land in le=0.1 (le is inclusive), 0.5 in le=1, 2 in
	// le=10, 100 in +Inf.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], w, s)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-102.65) > 1e-9 {
		t.Errorf("sum = %v, want 102.65", s.Sum)
	}
}

func TestLocalHistogramFlush(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("fgcs_local_seconds", "latency", []float64{0.1, 1, 10})
	l := h.Local()
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		l.Observe(v)
	}
	if h.Count() != 0 {
		t.Fatalf("parent saw %d observations before Flush", h.Count())
	}
	l.Flush()
	l.Flush() // empty flush must be a no-op
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-102.65) > 1e-9 {
		t.Errorf("sum = %v, want 102.65", s.Sum)
	}

	// A second batch through the same accumulator lands on top.
	l.Observe(0.5)
	l.Flush()
	if got := h.Count(); got != 6 {
		t.Errorf("count after second batch = %d, want 6", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("fgcs_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Error("requesting a counter name as a gauge should panic")
		}
	}()
	r.Gauge("fgcs_x_total", "x")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Error("invalid metric name should panic")
		}
	}()
	r.Counter("fgcs-bad-name", "x")
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 0.5, 3)
	if len(lin) != 3 || lin[2] != 1 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExpBuckets(1, 2, 4)
	if exp[3] != 8 {
		t.Errorf("ExpBuckets = %v", exp)
	}
}

func TestSnapshotOrderingDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("fgcs_b_total", "b")
	r.Counter("fgcs_a_total", "a")
	r.Counter("fgcs_a_total", "a") // re-get must not duplicate
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "fgcs_a_total" || snap[1].Name != "fgcs_b_total" {
		t.Errorf("snapshot families = %+v, want sorted unique names", snap)
	}
	var names []string
	for _, f := range snap {
		names = append(names, f.Name)
	}
	if strings.Join(names, ",") != "fgcs_a_total,fgcs_b_total" {
		t.Errorf("names = %v", names)
	}
}
