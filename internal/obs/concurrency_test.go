package obs

import (
	"bytes"
	"sync"
	"testing"
)

// TestConcurrentUpdatesAndScrapes hammers one registry from many
// goroutines — metric creation, updates of all three kinds, and concurrent
// Prometheus scrapes — and checks the final totals. Run with -race.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("fgcs_conc_total", "concurrent counter")
			g := r.Gauge("fgcs_conc_gauge", "concurrent gauge")
			h := r.Histogram("fgcs_conc_hist", "concurrent histogram", []float64{0.25, 0.5, 0.75})
			lc := r.Counter("fgcs_conc_labeled_total", "labeled", L("worker", string(rune('a'+w))))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) / 4.0)
				lc.Inc()
			}
		}(w)
	}
	// Concurrent scrapers.
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if got := r.Counter("fgcs_conc_total", "").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("fgcs_conc_gauge", "").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
	h := r.Histogram("fgcs_conc_hist", "", []float64{0.25, 0.5, 0.75}).Snapshot()
	if h.Count != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	var bucketSum uint64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != h.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, h.Count)
	}
}
