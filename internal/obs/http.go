package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the registry in Prometheus text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// NewMux builds the standard observability mux: /metrics (Prometheus
// text), /healthz (JSON status with uptime plus the given static info
// fields), and the net/http/pprof profiling handlers under /debug/pprof/.
func NewMux(r *Registry, info map[string]string) *http.ServeMux {
	start := time.Now()
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(r))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		body := map[string]any{
			"status":   "ok",
			"uptime_s": time.Since(start).Seconds(),
		}
		for k, v := range info {
			body[k] = v
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a started observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer listens on addr (use ":0" or "127.0.0.1:0" for an ephemeral
// port) and serves handler in a background goroutine.
func StartServer(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: handler}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }
