package obs

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("fgcs_jobs_total", "jobs handled", L("outcome", "completed")).Add(3)
	r.Counter("fgcs_jobs_total", "jobs handled", L("outcome", "killed")).Inc()
	r.Gauge("fgcs_nodes", "registered nodes").Set(4)
	h := r.Histogram("fgcs_wait_seconds", "wait time", []float64{0.5, 2})
	h.Observe(0.1)
	h.Observe(1)
	h.Observe(9)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP fgcs_jobs_total jobs handled\n",
		"# TYPE fgcs_jobs_total counter\n",
		`fgcs_jobs_total{outcome="completed"} 3` + "\n",
		`fgcs_jobs_total{outcome="killed"} 1` + "\n",
		"# TYPE fgcs_nodes gauge\nfgcs_nodes 4\n",
		"# TYPE fgcs_wait_seconds histogram\n",
		`fgcs_wait_seconds_bucket{le="0.5"} 1` + "\n",
		`fgcs_wait_seconds_bucket{le="2"} 2` + "\n",
		`fgcs_wait_seconds_bucket{le="+Inf"} 3` + "\n",
		"fgcs_wait_seconds_sum 10.1\n",
		"fgcs_wait_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families must be sorted by name for a stable diffable scrape.
	if strings.Index(out, "fgcs_jobs_total") > strings.Index(out, "fgcs_nodes") {
		t.Error("families not sorted by name")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("fgcs_esc_total", "", L("path", `a"b\c`+"\n")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `path="a\"b\\c\n"`) {
		t.Errorf("escaping wrong:\n%s", buf.String())
	}
}

func TestHTTPEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("fgcs_smoke_total", "smoke").Inc()
	srv, err := StartServer("127.0.0.1:0", NewMux(r, map[string]string{"mode": "test"}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	if body := get("/metrics"); !strings.Contains(body, "fgcs_smoke_total 1") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	health := get("/healthz")
	if !strings.Contains(health, `"status":"ok"`) || !strings.Contains(health, `"mode":"test"`) {
		t.Errorf("/healthz = %s", health)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
