package testbed

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/sim"
)

// contribution is one additive load component on a machine: CPU load
// and/or resident host memory over [start, end).
type contribution struct {
	start, end sim.Time
	cpu        float64
	mem        int64
}

// outage is a URR interval: the machine is offline in [start, end).
type outage struct {
	start, end sim.Time
}

// stratifiedTimes draws n event times within the day starting at dayStart,
// spread over the quantiles of the hourly weight profile. Stratification —
// one draw per probability-mass slice — gives the quasi-regular spacing a
// lab full of students exhibits (busy episodes arrive steadily through the
// active hours rather than in Poisson clumps), which is what keeps most
// availability intervals in the 2-6 hour band of Figure 6.
func stratifiedTimes(r *rand.Rand, n int, weights [24]float64, dayStart sim.Time) []sim.Time {
	if n <= 0 {
		return nil
	}
	var cdf [25]float64
	for h := 0; h < 24; h++ {
		w := weights[h]
		if w < 0 {
			w = 0
		}
		cdf[h+1] = cdf[h] + w
	}
	total := cdf[24]
	if total <= 0 {
		// Degenerate profile: place uniformly.
		out := make([]sim.Time, n)
		for i := range out {
			out[i] = dayStart + sim.Uniform(r, 0, sim.Day)
		}
		sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
		return out
	}
	out := make([]sim.Time, 0, n)
	for i := 0; i < n; i++ {
		u := (float64(i) + r.Float64()) / float64(n) * total
		// Find the hour whose CDF slice contains u.
		h := sort.SearchFloat64s(cdf[1:], u)
		if h > 23 {
			h = 23
		}
		span := cdf[h+1] - cdf[h]
		frac := 0.5
		if span > 0 {
			frac = (u - cdf[h]) / span
		}
		at := dayStart + sim.Time(h)*time.Hour + sim.Time(frac*float64(time.Hour))
		out = append(out, at)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// placeTimes places n event times in the day: stratified by default, or
// independently sampled from the diurnal profile when poisson is set.
func placeTimes(r *rand.Rand, n int, weights [24]float64, dayStart sim.Time, poisson bool) []sim.Time {
	if !poisson {
		return stratifiedTimes(r, n, weights, dayStart)
	}
	if n <= 0 {
		return nil
	}
	// Independent draws from the hourly profile.
	var cdf [25]float64
	for h := 0; h < 24; h++ {
		w := weights[h]
		if w < 0 {
			w = 0
		}
		cdf[h+1] = cdf[h] + w
	}
	out := make([]sim.Time, 0, n)
	for i := 0; i < n; i++ {
		u := r.Float64() * cdf[24]
		h := sort.SearchFloat64s(cdf[1:], u)
		if h > 23 {
			h = 23
		}
		out = append(out, dayStart+sim.Time(h)*time.Hour+sim.Uniform(r, 0, time.Hour))
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// lowVarCount draws a count with mean m but sub-Poisson variance:
// floor(m) plus a Bernoulli trial on the fractional part.
func lowVarCount(r *rand.Rand, m float64) int {
	if m <= 0 {
		return 0
	}
	n := int(m)
	if sim.Bernoulli(r, m-float64(n)) {
		n++
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// planMachine generates every load contribution and outage for one machine
// over the whole traced span.
func planMachine(cfg Config, r *rand.Rand) (contribs []contribution, outages []outage) {
	w := cfg.Workload
	cal := sim.Calendar{StartWeekday: cfg.StartWeekday}

	// Per-machine heterogeneity factor (1.0 when spread is 0).
	mult := 1 + w.MachineRateSpread*(r.Float64()-0.5)

	for day := 0; day < cfg.Days; day++ {
		dayStart := sim.Time(day) * sim.Day
		weekend := cal.DayType(dayStart) == sim.Weekend
		profile := w.DiurnalWeekday
		episodes := w.BusyEpisodesWeekday
		memhogs := w.MemHogsWeekday
		if weekend {
			profile = w.DiurnalWeekend
			episodes = w.BusyEpisodesWeekend
			memhogs = w.MemHogsWeekend
		}

		// The nightly updatedb cron: a long, machine-wide CPU spike.
		udStart := dayStart + w.UpdatedbStart + sim.Uniform(r, 0, 90*time.Second)
		contribs = append(contribs, contribution{
			start: udStart,
			end:   udStart + w.UpdatedbDur,
			cpu:   w.UpdatedbLoad,
		})

		// Busy episodes and memory hogs share one stratified time grid:
		// the lab's failure-inducing activity arrives quasi-regularly
		// through the active hours, which concentrates the availability
		// intervals in the 2-4 hour band of Figure 6. Counts are drawn
		// with low variance (floor + Bernoulli of the fraction) for the
		// same reason.
		var nEpisodes, nHogs int
		if w.PoissonPlacement {
			nEpisodes = sim.Poisson(r, episodes*mult)
			nHogs = sim.Poisson(r, memhogs*mult)
		} else {
			nEpisodes = lowVarCount(r, episodes*mult)
			nHogs = lowVarCount(r, memhogs*mult)
		}
		times := placeTimes(r, nEpisodes+nHogs, profile, dayStart, w.PoissonPlacement)
		// Assign hog slots uniformly among the drawn times.
		isHog := make([]bool, len(times))
		for _, idx := range r.Perm(len(times))[:min(nHogs, len(times))] {
			isHog[idx] = true
		}
		for i, at := range times {
			if isHog[i] {
				// Memory hog: free memory collapses below any guest
				// working set.
				dur := sim.Uniform(r, w.MemHogDur[0], w.MemHogDur[1])
				size := w.MemHogSize[0] + r.Int63n(w.MemHogSize[1]-w.MemHogSize[0]+1)
				contribs = append(contribs, contribution{start: at, end: at + dur, mem: size, cpu: 0.15})
				continue
			}
			// Busy episode: one or more qualifying CPU spikes.
			t := at
			for {
				dur := time.Duration(sim.LogNormal(r, float64(w.SpikeDurMedian), w.SpikeDurSigma))
				if dur < w.SpikeDurMin {
					dur = w.SpikeDurMin
				}
				load := w.SpikeLoad[0] + r.Float64()*(w.SpikeLoad[1]-w.SpikeLoad[0])
				contribs = append(contribs, contribution{start: t, end: t + dur, cpu: load})
				if !sim.Bernoulli(r, w.ExtraSpikeProb) {
					break
				}
				t += dur + sim.Uniform(r, w.SpikeGap[0], w.SpikeGap[1])
			}
		}

		// Short transient spikes: suspension-only load excursions.
		for _, at := range stratifiedTimes(r, sim.Poisson(r, w.ShortSpikesPerDay), profile, dayStart) {
			dur := sim.Uniform(r, 10*time.Second, 45*time.Second)
			load := 0.7 + r.Float64()*0.25
			contribs = append(contribs, contribution{start: at, end: at + dur, cpu: load})
		}

		// URR: console reboots (short) and hardware/software failures.
		for _, at := range stratifiedTimes(r, sim.Poisson(r, w.URRPerDay), profile, dayStart) {
			var dur time.Duration
			if sim.Bernoulli(r, w.RebootShare) {
				dur = sim.Uniform(r, w.RebootDur[0], w.RebootDur[1])
			} else {
				dur = sim.Uniform(r, w.FailureDur[0], w.FailureDur[1])
			}
			outages = append(outages, outage{start: at, end: at + dur})
		}
	}

	sort.Slice(contribs, func(i, j int) bool { return contribs[i].start < contribs[j].start })
	sort.Slice(outages, func(i, j int) bool { return outages[i].start < outages[j].start })
	return contribs, outages
}

// ambient models the background host load: a diurnal baseline from student
// sessions plus slowly wandering noise, kept safely below Th2 so only
// explicit spikes cause unavailability.
//
// The diurnal component (base + amp*shape) is constant within each hour,
// so it is cached and recomputed only at hour boundaries; per sample only
// the AR(1) noise advances. The cached sum is bit-identical to evaluating
// base + amp*shape + noise afresh, because Go's left-to-right evaluation
// groups the expression the same way.
type ambient struct {
	cfg   Config
	cal   sim.Calendar
	noise float64
	r     *rand.Rand
	// baseMem is the resident memory of everyday host processes.
	baseMem int64

	// level is AmbientBase + AmbientAmp*shape for the hour containing the
	// last refresh; nextRecalc is the first instant it must be recomputed.
	level                  float64
	nextRecalc             sim.Time
	maxWeekday, maxWeekend float64
}

func newAmbient(cfg Config, r *rand.Rand) *ambient {
	return &ambient{
		cfg:        cfg,
		cal:        sim.Calendar{StartWeekday: cfg.StartWeekday},
		r:          r,
		baseMem:    250*mb + r.Int63n(150*mb),
		maxWeekday: maxWeight(cfg.Workload.DiurnalWeekday),
		maxWeekend: maxWeight(cfg.Workload.DiurnalWeekend),
	}
}

const mb = int64(1) << 20

// ambientLoadCap clamps the ambient load; keeping it at or below Th2 is
// what makes the testbed's calm-span fast path sound (see simulateMachine).
const ambientLoadCap = 0.5

func maxWeight(profile [24]float64) float64 {
	maxW := 0.0
	for _, v := range profile {
		if v > maxW {
			maxW = v
		}
	}
	return maxW
}

// refresh recomputes the cached diurnal level when t has crossed an hour
// boundary (day type and hour of day are both constant within an hour).
func (a *ambient) refresh(t sim.Time) {
	w := a.cfg.Workload
	profile, maxW := w.DiurnalWeekday, a.maxWeekday
	if a.cal.DayType(t) == sim.Weekend {
		profile, maxW = w.DiurnalWeekend, a.maxWeekend
	}
	shape := 0.0
	if maxW > 0 {
		shape = profile[a.cal.HourOfDay(t)] / maxW
	}
	a.level = w.AmbientBase + w.AmbientAmp*shape
	a.nextRecalc = (t/sim.Time(time.Hour) + 1) * sim.Time(time.Hour)
}

// step advances the noise and returns (cpu load, host resident memory).
func (a *ambient) step(t sim.Time) (float64, int64) {
	if t >= a.nextRecalc {
		a.refresh(t)
	}
	// AR(1) wander.
	a.noise = 0.97*a.noise + 0.03*a.r.NormFloat64()*0.08
	load := a.level + a.noise
	if load < 0 {
		load = 0
	}
	if load > ambientLoadCap {
		load = ambientLoadCap
	}
	return load, a.baseMem
}
