package testbed

import (
	"testing"

	"repro/internal/availability"
)

// TestStateOccupancy verifies the multi-state model's time breakdown: lab
// machines spend the overwhelming majority of time available (S1/S2), with
// failure states claiming only minutes per day — which is exactly why the
// paper argues FGCS resources are worth harvesting at all.
func TestStateOccupancy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 5
	cfg.Days = 14
	_, occ, err := RunWithOccupancy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(occ) != 5 {
		t.Fatalf("got %d occupancy records", len(occ))
	}
	for _, o := range occ {
		total := 0.0
		for _, f := range o.Fraction {
			if f < 0 || f > 1 {
				t.Fatalf("machine %d: fraction out of range: %v", o.Machine, o.Fraction)
			}
			total += f
		}
		if total < 0.999 || total > 1.001 {
			t.Errorf("machine %d: fractions sum to %v", o.Machine, total)
		}
		s1 := o.Fraction[availability.S1]
		s2 := o.Fraction[availability.S2]
		if s1 < 0.4 {
			t.Errorf("machine %d: S1 fraction %v, want the machine mostly idle", o.Machine, s1)
		}
		if s1+s2 < 0.9 {
			t.Errorf("machine %d: available fraction %v, want > 0.9", o.Machine, s1+s2)
		}
		unavail := o.Fraction[availability.S3] + o.Fraction[availability.S4] + o.Fraction[availability.S5]
		if unavail > 0.1 {
			t.Errorf("machine %d: unavailable fraction %v, want small", o.Machine, unavail)
		}
	}
}
