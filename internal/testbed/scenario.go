package testbed

import (
	"fmt"

	"repro/internal/markov"
	"repro/internal/trace"
)

// LabFittedScenario names the scenario that bridges the simulated student
// lab into the generative model: a pilot testbed run is fitted into a
// semi-Markov model (internal/markov), which then generates the requested
// fleet. The other scenario names come straight from the markov scenario
// library.
const LabFittedScenario = "lab-fitted"

// Pilot shape for LabFittedScenario: large enough that every hour-of-week
// bucket sees events, small enough that the pilot costs far less than the
// fleet it parameterizes.
const (
	pilotMachines = 8
	pilotDays     = 28
)

// ScenarioNames lists every fleet ScenarioTrace can generate: the markov
// scenario library plus the lab-fitted bridge.
func ScenarioNames() []string {
	return append(markov.ScenarioNames(), LabFittedScenario)
}

// ScenarioTrace generates a fleet trace for the named scenario with the
// config's fleet shape (machines, days, start weekday, seed). Markov
// scenario names delegate to the generative library; LabFittedScenario
// first runs a small pilot testbed with the config's workload, fits a
// semi-Markov model from it, and generates the fleet from that model — so
// the output is a model of this testbed rather than a hand-built scenario.
func ScenarioTrace(cfg Config, name string) (*trace.Trace, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	gcfg := markov.GenConfig{
		Machines:     cfg.Machines,
		Days:         cfg.Days,
		StartWeekday: cfg.StartWeekday,
		Seed:         cfg.Seed,
	}
	if name != LabFittedScenario {
		return markov.GenerateScenario(name, gcfg)
	}

	pilot := cfg
	pilot.Machines = pilotMachines
	pilot.Days = pilotDays
	pilot.Metrics = nil
	pilot.Parallelism = 1
	src, err := Run(pilot)
	if err != nil {
		return nil, fmt.Errorf("lab-fitted pilot: %w", err)
	}
	model, err := markov.Fit(src, markov.FitOptions{})
	if err != nil {
		return nil, fmt.Errorf("lab-fitted fit: %w", err)
	}
	return markov.Generate(model, gcfg)
}
