package testbed

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/availability"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Occupancy reports how one machine's observed time divides among the
// five availability states — the state-occupancy view of the multi-state
// model (an extension; the paper reports only the event statistics).
type Occupancy struct {
	Machine  trace.MachineID
	Fraction map[availability.State]float64
}

// Run simulates the whole testbed and returns the collected unavailability
// trace. Machines are simulated concurrently, one goroutine each, bounded
// by Config.Parallelism.
func Run(cfg Config) (*trace.Trace, error) {
	tr, _, err := RunWithOccupancy(cfg)
	return tr, err
}

// spanOf returns the observed window of a testbed run.
func spanOf(cfg Config) sim.Window {
	return sim.Window{Start: 0, End: sim.Time(cfg.Days) * sim.Day}
}

// calendarOf anchors the run's virtual time to weekdays.
func calendarOf(cfg Config) sim.Calendar {
	return sim.Calendar{StartWeekday: cfg.StartWeekday}
}

// RunWithOccupancy is Run, additionally returning each machine's
// state-occupancy fractions.
//
// Each worker writes its machine's events into a per-machine buffer (no
// shared lock on the hot path); buffers are merged in machine order and
// sorted once at the end, so the trace is identical regardless of
// parallelism or goroutine completion order.
func RunWithOccupancy(cfg Config) (*trace.Trace, []Occupancy, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	tr := trace.New(spanOf(cfg), calendarOf(cfg), cfg.Machines)
	occ := make([]Occupancy, cfg.Machines)
	events := make([][]trace.Event, cfg.Machines)
	errs := make([]error, cfg.Machines)

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > cfg.Machines {
		workers = cfg.Machines
	}

	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range work {
				evs, timing, err := runMachine(cfg, trace.MachineID(id))
				if err != nil {
					errs[id] = err
					continue
				}
				events[id] = evs
				occ[id] = machineOccupancy(trace.MachineID(id), timing)
			}
		}()
	}
	for id := 0; id < cfg.Machines; id++ {
		work <- id
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	for _, evs := range events {
		for _, e := range evs {
			tr.Add(e)
		}
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		return nil, nil, fmt.Errorf("testbed: generated invalid trace: %w", err)
	}
	return tr, occ, nil
}

// machineOccupancy converts a time-in-state accumulator to fractions.
func machineOccupancy(id trace.MachineID, timing *availability.TimeInState) Occupancy {
	o := Occupancy{Machine: id, Fraction: make(map[availability.State]float64)}
	for _, st := range []availability.State{availability.S1, availability.S2, availability.S3, availability.S4, availability.S5} {
		o.Fraction[st] = timing.Fraction(st)
	}
	return o
}

// runMachine simulates one machine over the traced span, returning its
// unavailability events and its time-in-state accounting.
func runMachine(cfg Config, id trace.MachineID) ([]trace.Event, *availability.TimeInState, error) {
	src := sim.NewSource(cfg.Seed)
	planRNG := src.Stream(fmt.Sprintf("machine/%d/plan", id))
	ambientRNG := src.Stream(fmt.Sprintf("machine/%d/ambient", id))
	contribs, outages := planMachine(cfg, planRNG)
	var met *simMetrics
	if cfg.Metrics != nil {
		// Get-or-create: every machine shares the run-wide families.
		met = newSimMetrics(cfg.Metrics)
	}
	return simulateMachine(cfg, id, contribs, outages, ambientRNG, met)
}

// simulateMachine drives the monitor/detector/trace pipeline over the
// machine's planned load. Instead of stepping every monitor period
// (~530k samples per machine at the defaults), it walks the merged
// contribution/outage boundary timeline: between boundaries the sample
// inputs are piecewise-constant except for the ambient wander, so whole
// spans advance in closed form.
//
// Per span, three regimes:
//
//   - machine dead (in an outage): one full-pipeline sample pins the
//     detector at S5; nothing can change until the outage ends, and
//     TimeInState telescopes across the skipped samples.
//   - calm (no active contribution, free memory covers the guest demand,
//     and Th2 at or above the 0.5 ambient clamp): after SmoothWindow
//     full-pipeline samples settle the smoothing ring and clear any spike
//     bookkeeping, only S1<->S2 toggles remain possible. A tight loop
//     advances the AR(1) noise, the smoothing window and the Th1
//     comparison directly, bypassing sample structs, the classifier and
//     the builder; the detector is resynced once at span end.
//   - contended (active spikes/hogs, or configurations the calm argument
//     does not cover): every sample runs the full pipeline, exactly like
//     the naive loop.
//
// Random-draw parity with simulateMachineNaive is strict: one NormFloat64
// per alive sample, none when dead. The equivalence tests compare the two
// paths event-for-event.
func simulateMachine(cfg Config, id trace.MachineID, contribs []contribution, outages []outage, ambientRNG *rand.Rand, met *simMetrics) ([]trace.Event, *availability.TimeInState, error) {
	amb := newAmbient(cfg, ambientRNG)
	mon, err := monitor.New(cfg.Monitor)
	if err != nil {
		return nil, nil, err
	}
	det, err := availability.NewDetector(cfg.Detector)
	if err != nil {
		return nil, nil, err
	}
	builder := trace.NewBuilder(id)
	timing := availability.NewTimeInState(availability.S1)
	rec := newStateRecorder(met, availability.S1)

	var events []trace.Event
	end := sim.Time(cfg.Days) * sim.Day
	period := mon.Config().Period
	smoothW := int64(mon.Config().SmoothWindow)
	th := det.Config().Thresholds
	guestDemand := mon.Config().GuestDemand
	demand := guestDemand
	if demand == 0 {
		demand = det.Config().GuestWorkingSet
	}

	var act []contribution
	nextContrib := 0
	nextOutage := 0
	var inOutage *outage
	curState := availability.S1

	for t := sim.Time(0); t < end; {
		// Apply the boundary automaton at the span's first sample — the
		// same code the naive loop runs at every sample (where it is a
		// no-op strictly inside a span, since spans end at the next
		// boundary).
		for nextContrib < len(contribs) && contribs[nextContrib].start <= t {
			act = append(act, contribs[nextContrib])
			nextContrib++
		}
		keep := act[:0]
		for _, c := range act {
			if c.end > t {
				keep = append(keep, c)
			}
		}
		act = keep
		if inOutage != nil && t >= inOutage.end {
			inOutage = nil
		}
		for nextOutage < len(outages) && outages[nextOutage].start <= t {
			o := outages[nextOutage]
			nextOutage++
			if o.end > t {
				inOutage = &o
			}
		}

		// The earliest future instant any sample input can change. All
		// candidates are strictly after t (starts <= t were consumed,
		// ends <= t were compacted), so the span holds at least one sample.
		next := end
		if nextContrib < len(contribs) && contribs[nextContrib].start < next {
			next = contribs[nextContrib].start
		}
		for _, c := range act {
			if c.end < next {
				next = c.end
			}
		}
		if inOutage != nil && inOutage.end < next {
			next = inOutage.end
		}
		if nextOutage < len(outages) && outages[nextOutage].start < next {
			next = outages[nextOutage].start
		}
		k := int64((next - t + period - 1) / period) // samples in [t, next)

		if inOutage != nil {
			obs := mon.Observe(monitor.Sample{At: t, Alive: false})
			state, transition := det.Observe(obs)
			timing.Advance(t, state)
			if transition != nil {
				if ev := builder.OnTransition(*transition); ev != nil {
					events = append(events, *ev)
				}
			}
			curState = state
			rec.note(t, state)
			if k > 1 {
				det.FastForward(state, availability.Observation{At: t + sim.Time(k-1)*period, Alive: false})
			}
			t += sim.Time(k) * period
			continue
		}

		var spanMem int64
		for _, c := range act {
			spanMem += c.mem
		}
		free := cfg.RAM - cfg.KernelMem - (amb.baseMem + spanMem)
		if free < 0 {
			free = 0
		}
		calm := len(act) == 0 && free >= demand && th.Th2 >= ambientLoadCap
		settle := k
		if calm && smoothW < k {
			settle = smoothW
		}

		i := int64(0)
		var raw0, raw1 float64 // last two raw CPU values pushed (raw1 newest)
		for ; i < settle; i++ {
			st := t + sim.Time(i)*period
			cpu, hostMem := amb.step(st)
			for _, c := range act {
				cpu += c.cpu
				hostMem += c.mem
			}
			if cpu > 1 {
				cpu = 1
			}
			fm := cfg.RAM - cfg.KernelMem - hostMem
			if fm < 0 {
				fm = 0
			}
			raw0, raw1 = raw1, cpu
			obs := mon.Observe(monitor.Sample{At: st, Alive: true, HostCPU: cpu, FreeMem: fm})
			state, transition := det.Observe(obs)
			timing.Advance(st, state)
			if transition != nil {
				if ev := builder.OnTransition(*transition); ev != nil {
					events = append(events, *ev)
				}
			}
			curState = state
			rec.note(st, state)
		}
		if i < k {
			// Calm remainder: smoothed load is at most the ambient clamp,
			// which is at most Th2, and free memory covers the demand, so
			// the classifier can only return S1 or S2 — states the builder
			// ignores. TimeInState needs a call only at changes. The
			// ambient recurrence runs on locals (written back after the
			// loop) so the per-sample cost is the NormFloat64 draw plus a
			// handful of arithmetic ops.
			rng := amb.r
			noise := amb.noise
			level := amb.level
			nextRecalc := amb.nextRecalc
			var sm float64
			st := t + sim.Time(i)*period
			if smoothW == 2 {
				// The two-sample window lives in registers: the window
				// after a push is {previous value, new value}, and a
				// two-term sum is exactly commutative, so (prev+load)*0.5
				// matches the monitor's ring sum bit-for-bit. The monitor
				// is re-primed with the window once at span end.
				prev, prev2 := raw1, raw0
				for ; i < k; i, st = i+1, st+period {
					if st >= nextRecalc {
						amb.refresh(st)
						level = amb.level
						nextRecalc = amb.nextRecalc
					}
					noise = 0.97*noise + 0.03*rng.NormFloat64()*0.08
					load := level + noise
					if load < 0 {
						load = 0
					} else if load > ambientLoadCap {
						load = ambientLoadCap
					}
					sm = (prev + load) * 0.5
					prev2, prev = prev, load
					ns := availability.S1
					if sm >= th.Th1 {
						ns = availability.S2
					}
					if ns != curState {
						timing.Advance(st, ns)
						curState = ns
						rec.note(st, ns)
					}
				}
				mon.Prime(prev2, prev)
			} else {
				for ; i < k; i, st = i+1, st+period {
					if st >= nextRecalc {
						amb.refresh(st)
						level = amb.level
						nextRecalc = amb.nextRecalc
					}
					noise = 0.97*noise + 0.03*rng.NormFloat64()*0.08
					load := level + noise
					if load < 0 {
						load = 0
					} else if load > ambientLoadCap {
						load = ambientLoadCap
					}
					sm = mon.Smooth(load)
					ns := availability.S1
					if sm >= th.Th1 {
						ns = availability.S2
					}
					if ns != curState {
						timing.Advance(st, ns)
						curState = ns
						rec.note(st, ns)
					}
				}
			}
			amb.noise = noise
			det.FastForward(curState, availability.Observation{
				At:          t + sim.Time(k-1)*period,
				HostCPU:     sm,
				FreeMem:     free,
				GuestDemand: guestDemand,
				Alive:       true,
			})
		}
		t += sim.Time(k) * period
	}

	// The naive loop's last Advance lands on the final sample; the skipping
	// paths above may have stopped crediting at the last state change, so
	// bring the accumulator up to the final sample instant.
	if end > 0 {
		last := sim.Time((end - 1) / period * period)
		timing.Advance(last, curState)
	}
	rec.finish(end)
	if ev := builder.Flush(end); ev != nil {
		events = append(events, *ev)
	}
	return events, timing, nil
}

// forEachObservation is the seed implementation's per-period loop, kept
// verbatim: every monitor period it re-applies the boundary automaton,
// composes the sample, and hands the smoothed monitor observation to fn.
// It is the one source of the naive observation stream, shared by the
// simulateMachineNaive oracle and the exported ObservationStream.
func forEachObservation(cfg Config, contribs []contribution, outages []outage, ambientRNG *rand.Rand, fn func(availability.Observation) error) error {
	amb := newAmbient(cfg, ambientRNG)
	mon, err := monitor.New(cfg.Monitor)
	if err != nil {
		return err
	}
	end := sim.Time(cfg.Days) * sim.Day
	period := mon.Config().Period

	var act []contribution
	nextContrib := 0
	nextOutage := 0
	var inOutage *outage

	for t := sim.Time(0); t < end; t += period {
		// Activate contributions that started.
		for nextContrib < len(contribs) && contribs[nextContrib].start <= t {
			act = append(act, contribs[nextContrib])
			nextContrib++
		}
		// Expire finished ones (small list; compact in place).
		keep := act[:0]
		for _, c := range act {
			if c.end > t {
				keep = append(keep, c)
			}
		}
		act = keep

		// Track outages.
		if inOutage != nil && t >= inOutage.end {
			inOutage = nil
		}
		for nextOutage < len(outages) && outages[nextOutage].start <= t {
			o := outages[nextOutage]
			nextOutage++
			if o.end > t {
				inOutage = &o
			}
		}

		sample := monitor.Sample{At: t, Alive: inOutage == nil}
		if sample.Alive {
			cpu, hostMem := amb.step(t)
			for _, c := range act {
				cpu += c.cpu
				hostMem += c.mem
			}
			if cpu > 1 {
				cpu = 1
			}
			free := cfg.RAM - cfg.KernelMem - hostMem
			if free < 0 {
				free = 0
			}
			sample.HostCPU = cpu
			sample.FreeMem = free
		}

		if err := fn(mon.Observe(sample)); err != nil {
			return err
		}
	}
	return nil
}

// simulateMachineNaive runs the full detector/timing/builder pipeline over
// the naive observation stream — the test oracle for simulateMachine.
func simulateMachineNaive(cfg Config, id trace.MachineID, contribs []contribution, outages []outage, ambientRNG *rand.Rand) ([]trace.Event, *availability.TimeInState, error) {
	det, err := availability.NewDetector(cfg.Detector)
	if err != nil {
		return nil, nil, err
	}
	builder := trace.NewBuilder(id)
	timing := availability.NewTimeInState(availability.S1)

	var events []trace.Event
	err = forEachObservation(cfg, contribs, outages, ambientRNG, func(obs availability.Observation) error {
		state, transition := det.Observe(obs)
		timing.Advance(obs.At, state)
		if transition != nil {
			if ev := builder.OnTransition(*transition); ev != nil {
				events = append(events, *ev)
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if ev := builder.Flush(sim.Time(cfg.Days) * sim.Day); ev != nil {
		events = append(events, *ev)
	}
	return events, timing, nil
}

// ObservationStream replays the smoothed monitor observations machine id
// would feed the detector in a run of cfg, in sample order. The stream is
// reproducible — the same (cfg, id) pair always yields the same
// observations — which lets external checkers drive their own detector (or
// a reference model) over exactly the input the testbed pipeline saw.
// A non-nil error from fn stops the stream and is returned verbatim.
func ObservationStream(cfg Config, id trace.MachineID, fn func(availability.Observation) error) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	src := sim.NewSource(cfg.Seed)
	planRNG := src.Stream(fmt.Sprintf("machine/%d/plan", id))
	ambientRNG := src.Stream(fmt.Sprintf("machine/%d/ambient", id))
	contribs, outages := planMachine(cfg, planRNG)
	return forEachObservation(cfg, contribs, outages, ambientRNG, fn)
}

// RunNaive is the reference form of Run: the per-period loop with no span
// skipping, no smoothing shortcuts and no parallelism. It exists for
// differential testing — the check harness asserts Run, RunSharded and
// RunNaive agree event-for-event — and is orders of magnitude slower than
// Run at realistic spans; keep it to small configurations.
func RunNaive(cfg Config) (*trace.Trace, []Occupancy, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	tr := trace.New(spanOf(cfg), calendarOf(cfg), cfg.Machines)
	occ := make([]Occupancy, cfg.Machines)
	src := sim.NewSource(cfg.Seed)
	for id := 0; id < cfg.Machines; id++ {
		planRNG := src.Stream(fmt.Sprintf("machine/%d/plan", id))
		ambientRNG := src.Stream(fmt.Sprintf("machine/%d/ambient", id))
		contribs, outages := planMachine(cfg, planRNG)
		evs, timing, err := simulateMachineNaive(cfg, trace.MachineID(id), contribs, outages, ambientRNG)
		if err != nil {
			return nil, nil, err
		}
		for _, e := range evs {
			tr.Add(e)
		}
		occ[id] = machineOccupancy(trace.MachineID(id), timing)
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		return nil, nil, fmt.Errorf("testbed: generated invalid trace: %w", err)
	}
	return tr, occ, nil
}
