package testbed

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/availability"
	"repro/internal/monitor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Occupancy reports how one machine's observed time divides among the
// five availability states — the state-occupancy view of the multi-state
// model (an extension; the paper reports only the event statistics).
type Occupancy struct {
	Machine  trace.MachineID
	Fraction map[availability.State]float64
}

// Run simulates the whole testbed and returns the collected unavailability
// trace. Machines are simulated concurrently, one goroutine each, bounded
// by Config.Parallelism.
func Run(cfg Config) (*trace.Trace, error) {
	tr, _, err := RunWithOccupancy(cfg)
	return tr, err
}

// RunWithOccupancy is Run, additionally returning each machine's
// state-occupancy fractions.
func RunWithOccupancy(cfg Config) (*trace.Trace, []Occupancy, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	span := sim.Window{Start: 0, End: sim.Time(cfg.Days) * sim.Day}
	cal := sim.Calendar{StartWeekday: cfg.StartWeekday}
	tr := trace.New(span, cal, cfg.Machines)
	occ := make([]Occupancy, cfg.Machines)

	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > cfg.Machines {
		workers = cfg.Machines
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
		work     = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range work {
				events, timing, err := runMachine(cfg, trace.MachineID(id))
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				for _, e := range events {
					tr.Add(e)
				}
				occ[id] = machineOccupancy(trace.MachineID(id), timing)
				mu.Unlock()
			}
		}()
	}
	for id := 0; id < cfg.Machines; id++ {
		work <- id
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		return nil, nil, fmt.Errorf("testbed: generated invalid trace: %w", err)
	}
	return tr, occ, nil
}

// machineOccupancy converts a time-in-state accumulator to fractions.
func machineOccupancy(id trace.MachineID, timing *availability.TimeInState) Occupancy {
	o := Occupancy{Machine: id, Fraction: make(map[availability.State]float64)}
	for _, st := range []availability.State{availability.S1, availability.S2, availability.S3, availability.S4, availability.S5} {
		o.Fraction[st] = timing.Fraction(st)
	}
	return o
}

// runMachine simulates one machine over the traced span, returning its
// unavailability events and its time-in-state accounting.
func runMachine(cfg Config, id trace.MachineID) ([]trace.Event, *availability.TimeInState, error) {
	src := sim.NewSource(cfg.Seed)
	planRNG := src.Stream(fmt.Sprintf("machine/%d/plan", id))
	ambientRNG := src.Stream(fmt.Sprintf("machine/%d/ambient", id))

	contribs, outages := planMachine(cfg, planRNG)
	amb := newAmbient(cfg, ambientRNG)

	mon, err := monitor.New(cfg.Monitor)
	if err != nil {
		return nil, nil, err
	}
	det, err := availability.NewDetector(cfg.Detector)
	if err != nil {
		return nil, nil, err
	}
	builder := trace.NewBuilder(id)
	timing := availability.NewTimeInState(availability.S1)

	var events []trace.Event
	end := sim.Time(cfg.Days) * sim.Day
	period := cfg.Monitor.Period

	// Sweep state over the sorted contribution/outage lists.
	type active struct {
		list []contribution
	}
	var act active
	nextContrib := 0
	nextOutage := 0
	var inOutage *outage

	for t := sim.Time(0); t < end; t += period {
		// Activate contributions that started.
		for nextContrib < len(contribs) && contribs[nextContrib].start <= t {
			act.list = append(act.list, contribs[nextContrib])
			nextContrib++
		}
		// Expire finished ones (small list; compact in place).
		keep := act.list[:0]
		for _, c := range act.list {
			if c.end > t {
				keep = append(keep, c)
			}
		}
		act.list = keep

		// Track outages.
		if inOutage != nil && t >= inOutage.end {
			inOutage = nil
		}
		for nextOutage < len(outages) && outages[nextOutage].start <= t {
			o := outages[nextOutage]
			nextOutage++
			if o.end > t {
				inOutage = &o
			}
		}

		sample := monitor.Sample{At: t, Alive: inOutage == nil}
		if sample.Alive {
			cpu, hostMem := amb.step(t)
			for _, c := range act.list {
				cpu += c.cpu
				hostMem += c.mem
			}
			if cpu > 1 {
				cpu = 1
			}
			free := cfg.RAM - cfg.KernelMem - hostMem
			if free < 0 {
				free = 0
			}
			sample.HostCPU = cpu
			sample.FreeMem = free
		}

		obs := mon.Observe(sample)
		state, transition := det.Observe(obs)
		timing.Advance(t, state)
		if transition != nil {
			if ev := builder.OnTransition(*transition); ev != nil {
				events = append(events, *ev)
			}
		}
	}
	if ev := builder.Flush(end); ev != nil {
		events = append(events, *ev)
	}
	return events, timing, nil
}
