package testbed

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// encodeTrace serializes a trace with the binary codec so runs can be
// compared byte-for-byte.
func encodeTrace(t *testing.T, cfg Config, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc, err := trace.NewEncoder(&buf, trace.Header{Span: spanOf(cfg), Calendar: calendarOf(cfg), Machines: cfg.Machines})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if err := enc.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMetricsDoNotPerturbOutputs is the determinism gate for the simulator
// instrumentation: a fixed-seed run with Config.Metrics attached must
// produce byte-identical encoded traces and identical occupancy to an
// uninstrumented run. Instrumentation observes — it must never draw from
// the random streams or reorder anything.
func TestMetricsDoNotPerturbOutputs(t *testing.T) {
	base := Config{Machines: 4, Days: 7, Seed: 424242}
	plainCfg := base.withDefaults()
	plainTr, plainOcc, err := RunWithOccupancy(plainCfg)
	if err != nil {
		t.Fatal(err)
	}

	instCfg := base.withDefaults()
	instCfg.Metrics = obs.NewRegistry()
	instTr, instOcc, err := RunWithOccupancy(instCfg)
	if err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(encodeTrace(t, plainCfg, plainTr), encodeTrace(t, instCfg, instTr)) {
		t.Error("instrumented run's encoded trace differs from the uninstrumented run")
	}
	if !reflect.DeepEqual(plainOcc, instOcc) {
		t.Error("instrumented run's occupancy differs from the uninstrumented run")
	}
}

// TestSimMetricsAccounting checks the instrumentation's internal
// consistency: the per-state residence sums must cover the whole fleet's
// observed time (every instant is in exactly one state), and the expected
// families must appear in a scrape.
func TestSimMetricsAccounting(t *testing.T) {
	cfg := Config{Machines: 3, Days: 5, Seed: 11}.withDefaults()
	cfg.Metrics = obs.NewRegistry()
	if _, _, err := RunWithOccupancy(cfg); err != nil {
		t.Fatal(err)
	}

	var totalHours float64
	for _, fam := range cfg.Metrics.Snapshot() {
		if fam.Name != "fgcs_sim_state_residence_hours" {
			continue
		}
		for _, s := range fam.Series {
			totalHours += s.Hist.Sum
		}
	}
	want := float64(cfg.Machines) * float64(cfg.Days) * 24
	// Residences are closed at sample instants, so the last partial period
	// per machine may be uncredited.
	if totalHours < want*0.99 || totalHours > want*1.01 {
		t.Errorf("total residence = %.1f machine-hours, want ~%.1f", totalHours, want)
	}

	var buf bytes.Buffer
	if err := cfg.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, wantLine := range []string{
		`fgcs_sim_state_residence_hours_bucket{state="S1",le="+Inf"}`,
		`fgcs_sim_transitions_total{from="S1",to="S2"}`,
		"fgcs_sim_machines_done_total 3",
	} {
		if !strings.Contains(text, wantLine) {
			t.Errorf("scrape missing %q", wantLine)
		}
	}
}

// TestStreamAnalyzerInstrument checks the analyzer-side metrics agree with
// the analyzer's own results when fed a simulated fleet.
func TestStreamAnalyzerInstrument(t *testing.T) {
	cfg := Config{Machines: 3, Days: 5, Seed: 11}.withDefaults()
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	a := trace.NewStreamAnalyzer(spanOf(cfg), calendarOf(cfg), cfg.Machines)
	a.Instrument(reg)
	for _, e := range tr.Events {
		if err := a.Observe(e); err != nil {
			t.Fatal(err)
		}
	}
	a.Finish()

	var eventTotal uint64
	var intervalCount uint64
	for _, fam := range reg.Snapshot() {
		switch fam.Name {
		case "fgcs_trace_events_total":
			for _, s := range fam.Series {
				eventTotal += uint64(s.Value)
			}
		case "fgcs_trace_avail_interval_hours":
			for _, s := range fam.Series {
				intervalCount += s.Hist.Count
			}
		}
	}
	if got := uint64(a.Events()); eventTotal != got {
		t.Errorf("metric events = %d, analyzer saw %d", eventTotal, got)
	}
	wantIntervals := uint64(len(a.IntervalLengths(sim.Weekday)) + len(a.IntervalLengths(sim.Weekend)))
	if intervalCount != wantIntervals {
		t.Errorf("metric intervals = %d, analyzer recorded %d", intervalCount, wantIntervals)
	}
}
