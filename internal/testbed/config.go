package testbed

import (
	"fmt"
	"time"

	"repro/internal/availability"
	"repro/internal/monitor"
	"repro/internal/obs"
	"repro/internal/simos"
)

// Params tune the synthetic lab workload. The defaults are calibrated so
// the resulting trace lands inside every range the paper's Table 2 and
// Figures 6-7 report; the calibration tests in this package enforce that.
type Params struct {
	// BusyEpisodesWeekday/Weekend are the mean number of qualifying CPU
	// spike clusters per machine-day.
	BusyEpisodesWeekday float64
	BusyEpisodesWeekend float64
	// ExtraSpikeProb is the chance an episode carries one more qualifying
	// spike after each spike (geometric); multi-spike episodes produce the
	// sub-5-minute availability intervals of Figure 6.
	ExtraSpikeProb float64
	// SpikeLoad is the uniform range of a spike's CPU contribution.
	SpikeLoad [2]float64
	// SpikeDurMedian/Sigma/Min parameterize log-normal spike durations.
	SpikeDurMedian time.Duration
	SpikeDurSigma  float64
	SpikeDurMin    time.Duration
	// SpikeGap is the pause between spikes of one episode.
	SpikeGap [2]time.Duration
	// ShortSpikesPerDay are transient (< 1 min) spikes that only suspend a
	// guest and must not be counted as unavailability.
	ShortSpikesPerDay float64
	// MemHogsWeekday/Weekend are mean memory-exhaustion episodes per day.
	MemHogsWeekday float64
	MemHogsWeekend float64
	// MemHogSize is the hog's resident set (uniform range).
	MemHogSize [2]int64
	// MemHogDur is the hog's lifetime (uniform range).
	MemHogDur [2]time.Duration
	// PoissonPlacement disables the stratified (quasi-regular) placement
	// of busy episodes and scatters them as a pure Poisson process. Only
	// the stratified default concentrates availability intervals in the
	// 2-4 hour band of Figure 6; the ablation benchmark quantifies this.
	PoissonPlacement bool
	// MachineRateSpread makes machines heterogeneous: each machine's
	// episode and memory-hog rates are scaled by a per-machine factor
	// drawn uniformly from [1-spread/2, 1+spread/2]. The paper's tight
	// Table 2 ranges suggest near-homogeneous lab machines (default 0);
	// the proactive-scheduling experiment uses a wider spread.
	MachineRateSpread float64
	// URRPerDay is the mean rate of revocations/failures per machine-day.
	URRPerDay float64
	// RebootShare is the fraction of URR that are console reboots.
	RebootShare float64
	// RebootDur and FailureDur are outage lengths (uniform ranges).
	RebootDur  [2]time.Duration
	FailureDur [2]time.Duration
	// Ambient load: base plus a diurnal component scaled by AmbientAmp.
	AmbientBase float64
	AmbientAmp  float64
	// UpdatedbStart/Dur/Load describe the nightly cron job.
	UpdatedbStart time.Duration
	UpdatedbDur   time.Duration
	UpdatedbLoad  float64
	// DiurnalWeekday/Weekend weight each hour of day for event placement
	// and the ambient load shape.
	DiurnalWeekday [24]float64
	DiurnalWeekend [24]float64
}

// DefaultParams returns the calibrated lab workload.
func DefaultParams() Params {
	return Params{
		BusyEpisodesWeekday: 2.6,
		BusyEpisodesWeekend: 2.0,
		ExtraSpikeProb:      0.10,
		SpikeLoad:           [2]float64{0.70, 0.97},
		SpikeDurMedian:      3 * time.Minute,
		SpikeDurSigma:       0.6,
		SpikeDurMin:         85 * time.Second,
		SpikeGap:            [2]time.Duration{45 * time.Second, 4 * time.Minute},
		ShortSpikesPerDay:   6,
		MemHogsWeekday:      1.25,
		MemHogsWeekend:      0.9,
		MemHogSize:          [2]int64{1100 * simos.MB, 1500 * simos.MB},
		MemHogDur:           [2]time.Duration{2 * time.Minute, 12 * time.Minute},
		URRPerDay:           0.08,
		RebootShare:         0.9,
		RebootDur:           [2]time.Duration{20 * time.Second, 40 * time.Second},
		FailureDur:          [2]time.Duration{30 * time.Minute, 6 * time.Hour},
		AmbientBase:         0.03,
		AmbientAmp:          0.25,
		UpdatedbStart:       4 * time.Hour,
		UpdatedbDur:         30 * time.Minute,
		UpdatedbLoad:        0.88,
		DiurnalWeekday: [24]float64{
			0.8, 0.6, 0.4, 0.3, 0.2, 0.2, 0.3, 0.5, 1.0, 2.0, 3.5, 4.0,
			4.0, 4.0, 4.0, 4.0, 4.0, 3.8, 3.2, 3.0, 3.0, 2.6, 2.0, 1.4,
		},
		DiurnalWeekend: [24]float64{
			0.9, 0.7, 0.5, 0.3, 0.2, 0.2, 0.2, 0.3, 0.5, 1.0, 1.6, 2.2,
			2.6, 2.6, 2.6, 2.6, 2.6, 2.6, 2.2, 2.2, 2.0, 1.8, 1.6, 1.2,
		},
	}
}

// EnterpriseParams models the follow-up testbed the paper proposes in its
// future work (Section 6): enterprise desktop machines. Compared to the
// student lab, activity concentrates sharply in office hours (9-18) on
// weekdays, evenings and weekends are nearly idle, memory pressure is
// rarer (single user, predictable applications), and — as the paper
// anticipates for single-owner machines — console reboots are much rarer,
// so URR is dominated by genuine failures.
func EnterpriseParams() Params {
	p := DefaultParams()
	p.BusyEpisodesWeekday = 3.0
	p.BusyEpisodesWeekend = 0.3
	p.MemHogsWeekday = 0.5
	p.MemHogsWeekend = 0.1
	p.URRPerDay = 0.02
	p.RebootShare = 0.3
	p.AmbientAmp = 0.30
	p.DiurnalWeekday = [24]float64{
		0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.5, 2.0, 4.0, 4.5, 4.5,
		3.5, 4.0, 4.5, 4.5, 4.0, 3.5, 2.0, 0.8, 0.4, 0.3, 0.2, 0.1,
	}
	p.DiurnalWeekend = [24]float64{
		0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.2, 0.3, 0.4, 0.4,
		0.4, 0.4, 0.4, 0.4, 0.4, 0.3, 0.2, 0.2, 0.1, 0.1, 0.1, 0.1,
	}
	return p
}

// Config describes a testbed simulation.
type Config struct {
	// Machines is the number of lab machines (the paper's testbed has 20).
	Machines int
	// Days is the traced duration (the paper traced ~92 days).
	Days int
	// StartWeekday anchors the calendar (0 = Monday).
	StartWeekday int
	// Seed roots all randomness.
	Seed int64
	// RAM and KernelMem describe the machines (paper: > 1 GB physical).
	RAM       int64
	KernelMem int64
	// Monitor configures the per-machine sampler.
	Monitor monitor.Config
	// Detector configures the per-machine availability detector.
	Detector availability.Config
	// Workload tunes the synthetic lab load.
	Workload Params
	// Parallelism bounds concurrent machine simulations (default NumCPU).
	Parallelism int
	// Metrics, when set, receives live fleet-wide instrumentation:
	// per-state residence-time histograms and transition-rate counters,
	// updated as machines simulate so a long run can be scraped while it
	// is in flight. Instrumentation fires only on state changes and never
	// touches the random streams, so fixed-seed outputs are byte-identical
	// with or without it.
	Metrics *obs.Registry
}

// DefaultConfig reproduces the paper's testbed: 20 machines, 92 days
// (August through November 2005), Linux thresholds.
func DefaultConfig() Config {
	return Config{
		Machines:  20,
		Days:      92,
		Seed:      2005,
		RAM:       1536 * simos.MB,
		KernelMem: 100 * simos.MB,
		Monitor:   monitor.DefaultConfig(),
		Detector:  availability.DefaultConfig(),
		Workload:  DefaultParams(),
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Machines == 0 {
		c.Machines = d.Machines
	}
	if c.Days == 0 {
		c.Days = d.Days
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.RAM == 0 {
		c.RAM = d.RAM
	}
	if c.KernelMem == 0 {
		c.KernelMem = d.KernelMem
	}
	if c.Monitor.Period == 0 {
		c.Monitor = d.Monitor
	}
	if c.Workload.SpikeDurMedian == 0 {
		c.Workload = d.Workload
	}
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Machines <= 0 {
		return fmt.Errorf("testbed: need at least one machine, got %d", c.Machines)
	}
	if c.Days <= 0 {
		return fmt.Errorf("testbed: need at least one day, got %d", c.Days)
	}
	if c.RAM <= 0 || c.KernelMem < 0 || c.KernelMem >= c.RAM {
		return fmt.Errorf("testbed: bad memory configuration RAM=%d kernel=%d", c.RAM, c.KernelMem)
	}
	if err := c.Monitor.Validate(); err != nil {
		return err
	}
	w := c.Workload
	if w.SpikeLoad[0] > w.SpikeLoad[1] || w.SpikeGap[0] > w.SpikeGap[1] ||
		w.MemHogSize[0] > w.MemHogSize[1] || w.MemHogDur[0] > w.MemHogDur[1] {
		return fmt.Errorf("testbed: inverted workload range")
	}
	if w.RebootShare < 0 || w.RebootShare > 1 {
		return fmt.Errorf("testbed: reboot share %v outside [0,1]", w.RebootShare)
	}
	if w.MachineRateSpread < 0 || w.MachineRateSpread > 2 {
		return fmt.Errorf("testbed: machine rate spread %v outside [0,2]", w.MachineRateSpread)
	}
	return nil
}
