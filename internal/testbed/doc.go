// Package testbed simulates the paper's production FGCS testbed: 20
// RedHat-Linux machines in a student computer laboratory, traced for three
// months (Section 5, ~1800 machine-days). It stands in for the real lab —
// real students, real reboots, a real updatedb cron job — with a stochastic
// workload generator calibrated against every aggregate statistic the paper
// publishes (Table 2, Figures 6 and 7).
//
// Per machine and day, the generator produces:
//
//   - an ambient host load that follows the lab's diurnal rhythm (students
//     log in from mid-morning, weekdays busier than weekends);
//   - busy episodes — compile/test spikes that push the host load over Th2
//     for minutes at a time, occasionally in quick succession (which yields
//     the sub-5-minute availability intervals of Figure 6);
//   - short non-qualifying spikes that only suspend a guest (the paper's
//     "transiently high CPU load" from remote X starts and system daemons);
//   - memory-hog episodes that exhaust free memory and trigger S4;
//   - the 4 AM updatedb cron job on every machine, which reproduces
//     Figure 7's hour-5 spike of exactly one event per machine per day;
//   - URR: console-user reboots (sub-minute outages, ~90% of URR per the
//     paper) and rare hardware/software failures (outages of hours).
//
// The synthetic load series feeds the same monitor and detector used
// everywhere else in this repository; the published statistics are then
// recomputed from the detected events, not from the generator's bookkeeping,
// so the whole detection pipeline is exercised end to end. Machines are
// simulated in parallel, one goroutine per machine.
package testbed
