package testbed

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runBothPaths drives the span-skipping runner and the naive per-period
// oracle over the same synthetic plan, with identically seeded ambient
// streams, and compares events and per-state time.
func runBothPaths(t *testing.T, tag string, cfg Config, contribs []contribution, outages []outage) {
	t.Helper()
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	src := sim.NewSource(cfg.Seed)
	fastEv, fastTiming, err := simulateMachine(cfg, 0, contribs, outages, src.Stream("oracle/ambient"), nil)
	if err != nil {
		t.Fatal(err)
	}
	src = sim.NewSource(cfg.Seed)
	naiveEv, naiveTiming, err := simulateMachineNaive(cfg, 0, contribs, outages, src.Stream("oracle/ambient"))
	if err != nil {
		t.Fatal(err)
	}
	comparePaths(t, tag, fastEv, naiveEv, fastTiming, naiveTiming)
}

func comparePaths(t *testing.T, tag string, fastEv, naiveEv []trace.Event, fastTiming, naiveTiming *availability.TimeInState) {
	t.Helper()
	if len(fastEv) != len(naiveEv) {
		t.Fatalf("%s: event count fast=%d naive=%d\nfast: %+v\nnaive: %+v", tag, len(fastEv), len(naiveEv), fastEv, naiveEv)
	}
	for i := range fastEv {
		if fastEv[i] != naiveEv[i] {
			t.Errorf("%s: event %d differs\nfast:  %+v\nnaive: %+v", tag, i, fastEv[i], naiveEv[i])
		}
	}
	for _, st := range []availability.State{availability.S1, availability.S2, availability.S3, availability.S4, availability.S5} {
		if f, n := fastTiming.Total(st), naiveTiming.Total(st); f != n {
			t.Errorf("%s: time in %v fast=%v naive=%v", tag, st, f, n)
		}
	}
}

// oneDay returns a defaulted single-machine, single-day configuration.
func oneDay() Config {
	cfg := DefaultConfig()
	cfg.Machines = 1
	cfg.Days = 1
	return cfg
}

func secs(sec float64) sim.Time { return sim.Time(sec * float64(time.Second)) }

// TestOracleTransientSpikeAcrossBoundary places a sub-minute spike whose
// lifetime straddles a span boundary (another contribution ends mid-spike),
// so the transient-suspension bookkeeping crosses a skip edge; a later 90s
// spike outlives the transient window and must open a backdated S3 event.
func TestOracleTransientSpikeAcrossBoundary(t *testing.T) {
	contribs := []contribution{
		{start: 0, end: secs(120), cpu: 0.10},
		{start: secs(100), end: secs(140), cpu: 0.90},
		{start: secs(400), end: secs(430), cpu: 0.85},
		{start: secs(1000), end: secs(1090), cpu: 0.92},
	}
	runBothPaths(t, "transient", oneDay(), contribs, nil)
}

// TestOracleSmoothingAcrossBoundary ends a high spike right before a calm
// span, so the smoothing window still holds spike samples when the skip
// path takes over; the settle samples must flush them through the full
// pipeline. A memory hog exercises the S4 regime the calm path must avoid.
func TestOracleSmoothingAcrossBoundary(t *testing.T) {
	contribs := []contribution{
		{start: secs(200), end: secs(230), cpu: 0.95},
		{start: secs(600), end: secs(1200), mem: 1400 * mb, cpu: 0.15},
	}
	runBothPaths(t, "smoothing", oneDay(), contribs, nil)
}

// TestOracleOutageOnSampleInstant starts outages exactly on a sample
// instant, just off one, overlapping each other, and nested such that the
// later-consumed outage ends before an earlier one finishes (the pointer
// automaton deliberately tracks only the most recently started outage).
func TestOracleOutageOnSampleInstant(t *testing.T) {
	outages := []outage{
		{start: secs(300), end: secs(347)},   // starts exactly on the 15s grid
		{start: secs(400.5), end: secs(441)}, // starts off-grid
		{start: secs(500), end: secs(600)},   // long outage...
		{start: secs(510), end: secs(540)},   // ...overlapped by a shorter one
		{start: secs(900), end: secs(915)},   // exactly one period long
	}
	runBothPaths(t, "outage", oneDay(), nil, outages)
}

// TestOracleFullPlans compares the two paths over complete generated plans
// for several seeds and for configurations that disable the calm fast path
// (wider smoothing window; Th2 below the ambient clamp).
func TestOracleFullPlans(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		cfg := oneDay()
		cfg.Seed = seed
		cfg.Days = 3
		src := sim.NewSource(cfg.Seed)
		contribs, outages := planMachine(cfg.withDefaults(), src.Stream("oracle/plan"))
		runBothPaths(t, fmt.Sprintf("plan seed %d", seed), cfg, contribs, outages)
	}

	wide := oneDay()
	wide.Monitor.SmoothWindow = 3
	src := sim.NewSource(wide.Seed)
	contribs, outages := planMachine(wide.withDefaults(), src.Stream("oracle/plan"))
	runBothPaths(t, "smooth window 3", wide, contribs, outages)

	lowTh2 := oneDay()
	lowTh2.Detector.Thresholds = availability.SolarisThresholds()
	runBothPaths(t, "Th2 below ambient clamp", lowTh2, contribs, outages)
}
