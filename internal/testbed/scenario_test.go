package testbed

import (
	"reflect"
	"testing"

	"repro/internal/markov"
)

// TestScenarioTraceGeneratesLegalFleets runs every scenario name through
// ScenarioTrace at a small fleet shape and checks the output is a valid
// trace of the requested shape, deterministic in the seed.
func TestScenarioTraceGeneratesLegalFleets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 4
	cfg.Days = 7
	cfg.Seed = 6
	for _, name := range ScenarioNames() {
		tr, err := ScenarioTrace(cfg, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Machines != cfg.Machines {
			t.Errorf("%s: %d machines, want %d", name, tr.Machines, cfg.Machines)
		}
		if len(tr.Events) == 0 {
			t.Errorf("%s: no events", name)
		}
		again, err := ScenarioTrace(cfg, name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr.Events, again.Events) {
			t.Errorf("%s: regeneration differs", name)
		}
	}
	if _, err := ScenarioTrace(cfg, "no-such-scenario"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

// TestLabFittedDiffersFromLibrary checks the bridge actually fits the lab
// rather than falling through to a library scenario: the lab-fitted fleet
// must differ from every hand-built scenario at the same shape and seed.
func TestLabFittedDiffersFromLibrary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 3
	cfg.Days = 5
	cfg.Seed = 12
	fitted, err := ScenarioTrace(cfg, LabFittedScenario)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range markov.ScenarioNames() {
		lib, err := ScenarioTrace(cfg, name)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(fitted.Events, lib.Events) {
			t.Errorf("lab-fitted fleet identical to %s", name)
		}
	}
}
