package testbed

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Machines = -1 },
		func(c *Config) { c.Days = -1 },
		func(c *Config) { c.RAM = 10; c.KernelMem = 20 },
		func(c *Config) { c.Workload.SpikeLoad = [2]float64{0.9, 0.1} },
		func(c *Config) { c.Workload.RebootShare = 1.5 },
		func(c *Config) { c.Monitor.Period = -time.Second },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestStratifiedTimes(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var weights [24]float64
	weights[10] = 1 // all mass in hour 10
	times := stratifiedTimes(r, 5, weights, 2*sim.Day)
	if len(times) != 5 {
		t.Fatalf("got %d times", len(times))
	}
	for i, at := range times {
		if at < 2*sim.Day+10*time.Hour || at >= 2*sim.Day+11*time.Hour {
			t.Errorf("time %d = %v outside hour 10", i, at)
		}
		if i > 0 && at < times[i-1] {
			t.Error("times must be sorted")
		}
	}
	if got := stratifiedTimes(r, 0, weights, 0); got != nil {
		t.Errorf("zero count should return nil, got %v", got)
	}
	// Degenerate all-zero profile falls back to uniform placement.
	var zero [24]float64
	times = stratifiedTimes(r, 10, zero, 0)
	if len(times) != 10 {
		t.Fatalf("degenerate profile: got %d times", len(times))
	}
	for _, at := range times {
		if at < 0 || at >= sim.Day {
			t.Errorf("degenerate time %v outside day", at)
		}
	}
}

func TestLowVarCount(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	if lowVarCount(r, 0) != 0 || lowVarCount(r, -1) != 0 {
		t.Error("non-positive mean should give 0")
	}
	sum := 0
	for i := 0; i < 10000; i++ {
		n := lowVarCount(r, 2.3)
		if n != 2 && n != 3 {
			t.Fatalf("lowVarCount(2.3) = %d, want 2 or 3", n)
		}
		sum += n
	}
	mean := float64(sum) / 10000
	if mean < 2.25 || mean > 2.35 {
		t.Errorf("mean = %v, want ~2.3", mean)
	}
}

func TestPlanMachineDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Days = 7
	r1 := sim.NewSource(9).Stream("plan")
	r2 := sim.NewSource(9).Stream("plan")
	c1, o1 := planMachine(cfg, r1)
	c2, o2 := planMachine(cfg, r2)
	if len(c1) != len(c2) || len(o1) != len(o2) {
		t.Fatal("plans differ in size for identical streams")
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("plans differ for identical streams")
		}
	}
}

func TestPlanMachineHasDailyUpdatedb(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Days = 10
	r := sim.NewSource(3).Stream("plan")
	contribs, _ := planMachine(cfg, r)
	for day := 0; day < cfg.Days; day++ {
		found := false
		want := sim.Time(day)*sim.Day + cfg.Workload.UpdatedbStart
		for _, c := range contribs {
			if c.start >= want && c.start < want+2*time.Minute && c.cpu > 0.8 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("day %d: no updatedb spike", day)
		}
	}
}

func TestAmbientStaysBelowTh2(t *testing.T) {
	cfg := DefaultConfig()
	a := newAmbient(cfg, sim.NewSource(4).Stream("ambient"))
	for i := 0; i < 100000; i++ {
		load, mem := a.step(sim.Time(i) * 15 * time.Second)
		if load < 0 || load > 0.5 {
			t.Fatalf("ambient load %v outside [0, 0.5]", load)
		}
		if mem <= 0 {
			t.Fatalf("ambient memory %d", mem)
		}
	}
}

func TestRunSmall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 3
	cfg.Days = 7
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid trace: %v", err)
	}
	if tr.Machines != 3 || tr.Span.End != 7*sim.Day {
		t.Errorf("trace metadata: %d machines span %v", tr.Machines, tr.Span)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no events generated")
	}
	// Every machine should see events (updatedb alone guarantees some).
	counts := tr.CountByCause()
	for m := 0; m < 3; m++ {
		if counts[trace.MachineID(m)].Total < 7 {
			t.Errorf("machine %d has only %d events over a week", m, counts[trace.MachineID(m)].Total)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 2
	cfg.Days = 3
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs between identical runs", i)
		}
	}
}

func TestRunParallelismInvariance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 4
	cfg.Days = 3
	cfg.Parallelism = 1
	serial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 4
	parallel, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Events) != len(parallel.Events) {
		t.Fatalf("parallelism changed results: %d vs %d events", len(serial.Events), len(parallel.Events))
	}
	for i := range serial.Events {
		if serial.Events[i] != parallel.Events[i] {
			t.Fatal("parallelism changed event content")
		}
	}
}

// fullTrace memoizes the full 20x92 run shared by the calibration tests.
var (
	fullOnce sync.Once
	fullTr   *trace.Trace
	fullErr  error
)

func fullTestbedTrace(t *testing.T) *trace.Trace {
	t.Helper()
	fullOnce.Do(func() {
		fullTr, fullErr = Run(DefaultConfig())
	})
	if fullErr != nil {
		t.Fatal(fullErr)
	}
	return fullTr
}

// TestTable2Calibration checks the per-machine unavailability statistics
// against the paper's Table 2 bands (with modest tolerance: the generator
// is stochastic and the paper's own ranges come from a single 3-month
// sample).
func TestTable2Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1840 machine-day simulation")
	}
	tr := fullTestbedTrace(t)
	if md := tr.MachineDays(); md != 1840 {
		t.Errorf("machine days = %v, want 1840 (~ paper's 1800)", md)
	}
	tb := tr.MakeTable2()

	// Paper: total 405-453 per machine.
	if tb.Total.Min < 370 || tb.Total.Max > 510 {
		t.Errorf("total range %d-%d, paper 405-453", tb.Total.Min, tb.Total.Max)
	}
	// Paper: CPU contention 283-356 (69-79%).
	if tb.CPU.Min < 260 || tb.CPU.Max > 390 {
		t.Errorf("CPU range %d-%d, paper 283-356", tb.CPU.Min, tb.CPU.Max)
	}
	if tb.CPUPct[0] < 0.64 || tb.CPUPct[1] > 0.84 {
		t.Errorf("CPU%% %v, paper 69-79%%", tb.CPUPct)
	}
	// Paper: memory contention 83-121 (19-30%).
	if tb.Memory.Min < 70 || tb.Memory.Max > 135 {
		t.Errorf("memory range %d-%d, paper 83-121", tb.Memory.Min, tb.Memory.Max)
	}
	if tb.MemoryPct[0] < 0.14 || tb.MemoryPct[1] > 0.33 {
		t.Errorf("memory%% %v, paper 19-30%%", tb.MemoryPct)
	}
	// Paper: URR 3-12 (0-3%), ~90% reboots.
	if tb.URR.Min < 0 || tb.URR.Max > 16 {
		t.Errorf("URR range %d-%d, paper 3-12", tb.URR.Min, tb.URR.Max)
	}
	if tb.URRPct[1] > 0.05 {
		t.Errorf("URR%% %v, paper 0-3%%", tb.URRPct)
	}
	if tb.RebootShare < 0.75 || tb.RebootShare > 1 {
		t.Errorf("reboot share %v, paper ~0.9", tb.RebootShare)
	}
}

// TestFigure6Calibration checks the availability-interval distribution
// shape against the paper's Figure 6 narrative.
func TestFigure6Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	tr := fullTestbedTrace(t)
	wd := tr.IntervalECDF(sim.Weekday)
	we := tr.IntervalECDF(sim.Weekend)
	if wd.N() < 1000 || we.N() < 200 {
		t.Fatalf("too few intervals: weekday %d weekend %d", wd.N(), we.N())
	}
	// Weekday intervals are shorter than weekend intervals.
	if !(wd.Mean() < we.Mean()) {
		t.Errorf("weekday mean %vh should be below weekend %vh", wd.Mean(), we.Mean())
	}
	// Paper: weekday average close to 3 hours, weekend above 5 hours.
	// (The paper's Fig. 6 and Table 2 are mutually inconsistent — 4.7
	// events/day cannot give 3 h mean gaps — so we accept the Table 2
	// -consistent side of the band.)
	if wd.Mean() < 2.0 || wd.Mean() > 5.5 {
		t.Errorf("weekday mean interval = %vh, want roughly 3-5h", wd.Mean())
	}
	if we.Mean() < 4.5 || we.Mean() > 8.5 {
		t.Errorf("weekend mean interval = %vh, want > 5h", we.Mean())
	}
	// Paper: ~5% of intervals shorter than 5 minutes.
	small := wd.At(5.0 / 60)
	if small < 0.02 || small > 0.10 {
		t.Errorf("weekday sub-5-minute fraction = %v, paper ~5%%", small)
	}
	// The 2-4h band is the weekday mode among hour-scale bands.
	m24 := wd.MassBetween(2, 4)
	if m24 < wd.MassBetween(4, 6) || m24 < wd.MassBetween(6, 8) {
		t.Errorf("2-4h (%v) should dominate longer weekday bands (4-6h %v, 6-8h %v)",
			m24, wd.MassBetween(4, 6), wd.MassBetween(6, 8))
	}
	// Weekend mass sits in the 4-6h band at least as strongly as 2-4h.
	if we.MassBetween(4, 8) < we.MassBetween(2, 4) {
		t.Errorf("weekend long bands (%v) should outweigh 2-4h (%v)",
			we.MassBetween(4, 8), we.MassBetween(2, 4))
	}
}

// TestFigure7Calibration checks the hourly occurrence profile.
func TestFigure7Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	tr := fullTestbedTrace(t)
	for _, dt := range []sim.DayType{sim.Weekday, sim.Weekend} {
		sums := tr.HourlyOccurrences(dt)
		// The 4-5 AM updatedb spike equals the machine count on both day
		// types (paper: "equal to the total number of machines (20)").
		if sums[4].Mean < 19.5 || sums[4].Mean > 22 {
			t.Errorf("%v hour-5 spike = %v, want ~20", dt, sums[4].Mean)
		}
		// Daytime hours see far more failures than the small hours.
		day := (sums[11].Mean + sums[14].Mean + sums[16].Mean) / 3
		night := (sums[1].Mean + sums[2].Mean + sums[6].Mean) / 3
		if !(day > 2*night) {
			t.Errorf("%v: day mean %v should dwarf night mean %v", dt, day, night)
		}
	}
	// Weekdays are busier than weekends in the working hours.
	wd := tr.HourlyOccurrences(sim.Weekday)
	we := tr.HourlyOccurrences(sim.Weekend)
	wdDay := (wd[10].Mean + wd[12].Mean + wd[15].Mean + wd[17].Mean) / 4
	weDay := (we[10].Mean + we[12].Mean + we[15].Mean + we[17].Mean) / 4
	if !(wdDay > weDay) {
		t.Errorf("weekday daytime mean %v should exceed weekend %v", wdDay, weDay)
	}
	// Ranges are reported per hour and are never inverted.
	for h, s := range wd {
		if s.Min > s.Mean || s.Mean > s.Max {
			t.Errorf("hour %d: inverted summary %+v", h, s)
		}
	}
}

// TestTransientSpikesDoNotCountAsUnavailability verifies the 1-minute
// suspension rule end to end: with short spikes only, no S3 events appear.
func TestTransientSpikesDoNotCountAsUnavailability(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 2
	cfg.Days = 5
	// Disable everything except short spikes and ambient load.
	cfg.Workload.BusyEpisodesWeekday = 0
	cfg.Workload.BusyEpisodesWeekend = 0
	cfg.Workload.MemHogsWeekday = 0
	cfg.Workload.MemHogsWeekend = 0
	cfg.Workload.URRPerDay = 0
	cfg.Workload.UpdatedbLoad = 0 // neutralize the cron spike
	cfg.Workload.ShortSpikesPerDay = 20
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if e.State == availability.S3 {
			t.Errorf("short spike produced S3 event %+v", e)
		}
	}
}

// TestEventCausesMatchGenerators runs single-mechanism testbeds and checks
// the detector attributes events to the right failure state.
func TestEventCausesMatchGenerators(t *testing.T) {
	base := DefaultConfig()
	base.Machines = 2
	base.Days = 5
	base.Workload.ShortSpikesPerDay = 0

	t.Run("memory-only", func(t *testing.T) {
		cfg := base
		cfg.Workload.BusyEpisodesWeekday = 0
		cfg.Workload.BusyEpisodesWeekend = 0
		cfg.Workload.URRPerDay = 0
		cfg.Workload.UpdatedbLoad = 0
		cfg.Workload.MemHogsWeekday = 2
		cfg.Workload.MemHogsWeekend = 2
		tr, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Events) == 0 {
			t.Fatal("no events")
		}
		for _, e := range tr.Events {
			if e.State != availability.S4 {
				t.Errorf("memory-only testbed produced %v event", e.State)
			}
		}
	})

	t.Run("urr-only", func(t *testing.T) {
		cfg := base
		cfg.Workload.BusyEpisodesWeekday = 0
		cfg.Workload.BusyEpisodesWeekend = 0
		cfg.Workload.MemHogsWeekday = 0
		cfg.Workload.MemHogsWeekend = 0
		cfg.Workload.UpdatedbLoad = 0
		cfg.Workload.URRPerDay = 2
		tr, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Events) == 0 {
			t.Fatal("no events")
		}
		for _, e := range tr.Events {
			if e.State != availability.S5 {
				t.Errorf("URR-only testbed produced %v event", e.State)
			}
		}
	})
}
