package testbed

import (
	"testing"

	"repro/internal/stats"
)

// TestDailyPeriodicity quantifies the paper's headline claim directly: the
// fleet-wide hourly failure-count series must autocorrelate strongly at a
// lag of 24 hours (same window, next day) and even more strongly at 168
// hours (same window, same weekday next week), and both must dwarf an
// arbitrary non-harmonic lag.
func TestDailyPeriodicity(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	tr := fullTestbedTrace(t)
	series := tr.HourlyCountSeries()
	if len(series) != 92*24 {
		t.Fatalf("series length = %d, want %d", len(series), 92*24)
	}
	daily := stats.AutoCorrelation(series, 24)
	weekly := stats.AutoCorrelation(series, 24*7)
	offbeat := stats.AutoCorrelation(series, 11)

	if daily < 0.4 {
		t.Errorf("lag-24h autocorrelation = %v, want strong daily pattern", daily)
	}
	if weekly < daily-0.05 {
		t.Errorf("lag-168h autocorrelation (%v) should be at least daily (%v): weekday/weekend split", weekly, daily)
	}
	if !(daily > offbeat+0.1) {
		t.Errorf("daily lag (%v) should dwarf an off-harmonic lag (%v)", daily, offbeat)
	}
}
