package testbed

import (
	"testing"

	"repro/internal/sim"
)

// TestEnterpriseProfile checks the future-work testbed (paper Section 6):
// enterprise desktops concentrate failures in office hours, are nearly
// idle on weekends, and — being single-user machines — rarely suffer
// console reboots.
func TestEnterpriseProfile(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 10
	cfg.Days = 42
	cfg.Workload = EnterpriseParams()
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no events")
	}

	wd := tr.HourlyOccurrences(sim.Weekday)
	we := tr.HourlyOccurrences(sim.Weekend)

	// Office hours dwarf the evening on weekdays.
	office := (wd[10].Mean + wd[13].Mean + wd[15].Mean) / 3
	evening := (wd[20].Mean + wd[21].Mean + wd[22].Mean) / 3
	if !(office > 3*evening) {
		t.Errorf("office mean %v should dwarf evening %v", office, evening)
	}
	// Weekends are nearly dead outside the cron spike.
	weekendDay := (we[11].Mean + we[14].Mean + we[16].Mean) / 3
	if !(office > 4*weekendDay) {
		t.Errorf("weekday office %v should dwarf weekend %v", office, weekendDay)
	}
	// The cron spike is still one per machine per day.
	if wd[4].Mean < 9.5 || wd[4].Mean > 11.5 {
		t.Errorf("hour-5 spike = %v, want ~10 (machine count)", wd[4].Mean)
	}

	// Reboots are rare among URR (paper: "machine reboots would be very
	// rare on hosts used by only one local user").
	tb := tr.MakeTable2()
	if tb.URR.Max > 0 && tb.RebootShare > 0.6 {
		t.Errorf("enterprise reboot share = %v, want low", tb.RebootShare)
	}

	// Weekend availability intervals are much longer than weekday ones.
	wdI := tr.IntervalECDF(sim.Weekday)
	weI := tr.IntervalECDF(sim.Weekend)
	if !(weI.Mean() > wdI.Mean()*1.3) {
		t.Errorf("weekend intervals (%vh) should be much longer than weekday (%vh)",
			weI.Mean(), wdI.Mean())
	}

	// Memory contention is a smaller share than in the student lab.
	if tb.MemoryPct[1] > 0.25 {
		t.Errorf("enterprise memory share %v, want smaller than lab", tb.MemoryPct)
	}

	// Causes are still exclusively the modeled ones.
	for _, e := range tr.Events {
		if !e.State.Unavailable() {
			t.Fatalf("bad event state %v", e.State)
		}
	}
}
