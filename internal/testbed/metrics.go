package testbed

import (
	"repro/internal/availability"
	"repro/internal/obs"
	"repro/internal/sim"
)

// residenceHoursBuckets spans the residence times the paper's model
// produces: sub-minute spike suspensions up to multi-day idle stretches.
var residenceHoursBuckets = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2, 4, 8, 24, 72}

// simMetrics is the fleet-wide instrumentation of a testbed run: per-state
// residence-time histograms and transition-rate counters, shared by every
// machine goroutine. Arrays are indexed by availability.State (S1 == 1),
// slot 0 unused. The S1–S5 residence distributions are the live view of
// the same quantities Table 2 and Figure 6 report after the fact.
type simMetrics struct {
	residence   [availability.S5 + 1]*obs.Histogram
	transitions [availability.S5 + 1][availability.S5 + 1]*obs.Counter
	machines    *obs.Counter
	samples     *obs.Counter
}

var allStates = []availability.State{
	availability.S1, availability.S2, availability.S3, availability.S4, availability.S5,
}

func newSimMetrics(r *obs.Registry) *simMetrics {
	m := &simMetrics{
		machines: r.Counter("fgcs_sim_machines_done_total", "machines whose simulation completed"),
		samples:  r.Counter("fgcs_sim_state_residences_total", "closed state residences across the fleet"),
	}
	for _, st := range allStates {
		m.residence[st] = r.Histogram("fgcs_sim_state_residence_hours",
			"time spent in one availability state before transitioning away",
			residenceHoursBuckets, obs.L("state", st.Short()))
		for _, to := range allStates {
			if to == st {
				continue
			}
			m.transitions[st][to] = r.Counter("fgcs_sim_transitions_total",
				"state transitions across the fleet", obs.L("from", st.Short()), obs.L("to", to.Short()))
		}
	}
	return m
}

// stateRecorder tracks one machine's state changes for simMetrics. It is
// touched only when the state actually changes (plus once at machine end),
// so the simulator's span-skipping fast path keeps its per-sample cost;
// and it accumulates into unsynchronized per-machine locals, flushed once
// in finish, so the ~60k changes of a paper-scale fleet never contend on
// the shared atomics. A nil recorder is valid and records nothing.
type stateRecorder struct {
	met   *simMetrics
	state availability.State
	since sim.Time

	res     [availability.S5 + 1]*obs.LocalHistogram
	trans   [availability.S5 + 1][availability.S5 + 1]uint64
	samples uint64
}

func newStateRecorder(met *simMetrics, start availability.State) *stateRecorder {
	if met == nil {
		return nil
	}
	r := &stateRecorder{met: met, state: start}
	for _, st := range allStates {
		r.res[st] = met.residence[st].Local()
	}
	return r
}

// note records a possible state change observed at time at. It is small
// enough to inline, so the per-sample call sites in the settle loops pay
// two compares when nothing changed.
func (r *stateRecorder) note(at sim.Time, st availability.State) {
	if r != nil && st != r.state {
		r.record(at, st)
	}
}

// record closes the open residence and starts one in the new state.
func (r *stateRecorder) record(at sim.Time, st availability.State) {
	r.res[r.state].Observe((at - r.since).Hours())
	r.trans[r.state][st]++
	r.samples++
	r.state = st
	r.since = at
}

// finish closes the final residence at the end of the observed span and
// flushes the machine's accumulated batch into the shared registry.
func (r *stateRecorder) finish(end sim.Time) {
	if r == nil {
		return
	}
	if end > r.since {
		r.res[r.state].Observe((end - r.since).Hours())
		r.samples++
	}
	for _, st := range allStates {
		r.res[st].Flush()
		for _, to := range allStates {
			if n := r.trans[st][to]; n > 0 {
				r.met.transitions[st][to].Add(n)
			}
		}
	}
	r.met.samples.Add(r.samples)
	r.met.machines.Inc()
}
