package testbed

import (
	"testing"

	"repro/internal/availability"
	"repro/internal/sim"
	"repro/internal/trace"
)

func naiveConfig(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Machines = 3
	cfg.Days = 2
	cfg.Seed = seed
	cfg.Parallelism = 2
	return cfg
}

// TestRunNaiveMatchesRun pins the refactor of the naive loop into
// forEachObservation: the exported RunNaive must reproduce Run exactly —
// same events, same occupancy fractions — at a fixed seed.
func TestRunNaiveMatchesRun(t *testing.T) {
	cfg := naiveConfig(42)
	fast, fastOcc, err := RunWithOccupancy(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	naive, naiveOcc, err := RunNaive(cfg)
	if err != nil {
		t.Fatalf("RunNaive: %v", err)
	}
	if len(fast.Events) != len(naive.Events) {
		t.Fatalf("event counts differ: fast %d, naive %d", len(fast.Events), len(naive.Events))
	}
	for i := range fast.Events {
		if fast.Events[i] != naive.Events[i] {
			t.Fatalf("event %d differs:\nfast  %+v\nnaive %+v", i, fast.Events[i], naive.Events[i])
		}
	}
	for i := range fastOcc {
		for _, st := range []availability.State{availability.S1, availability.S2, availability.S3, availability.S4, availability.S5} {
			if fastOcc[i].Fraction[st] != naiveOcc[i].Fraction[st] {
				t.Errorf("machine %d occupancy %v differs: fast %v, naive %v",
					i, st, fastOcc[i].Fraction[st], naiveOcc[i].Fraction[st])
			}
		}
	}
}

// TestObservationStreamDrivesDetector verifies the exported stream carries
// exactly the observations the pipeline consumed: replaying it through a
// fresh Detector and Builder rebuilds machine 0's slice of the RunNaive
// trace.
func TestObservationStreamDrivesDetector(t *testing.T) {
	cfg := naiveConfig(7)
	naive, _, err := RunNaive(cfg)
	if err != nil {
		t.Fatalf("RunNaive: %v", err)
	}
	var want []trace.Event
	for _, e := range naive.Events {
		if e.Machine == 0 {
			want = append(want, e)
		}
	}

	det, err := availability.NewDetector(cfg.withDefaults().Detector)
	if err != nil {
		t.Fatal(err)
	}
	builder := trace.NewBuilder(0)
	var got []trace.Event
	n := 0
	err = ObservationStream(cfg, 0, func(obs availability.Observation) error {
		n++
		_, tr := det.Observe(obs)
		if tr != nil {
			if ev := builder.OnTransition(*tr); ev != nil {
				got = append(got, *ev)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ObservationStream: %v", err)
	}
	if n == 0 {
		t.Fatal("stream yielded no observations")
	}
	if ev := builder.Flush(sim.Time(cfg.Days) * sim.Day); ev != nil {
		got = append(got, *ev)
	}
	if len(got) != len(want) {
		t.Fatalf("replay produced %d events, trace has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d differs:\nreplay %+v\ntrace  %+v", i, got[i], want[i])
		}
	}
}

// TestObservationStreamStopsOnError checks fn's error aborts the walk and
// comes back verbatim.
func TestObservationStreamStopsOnError(t *testing.T) {
	cfg := naiveConfig(9)
	n := 0
	sentinel := errStop{}
	err := ObservationStream(cfg, 0, func(availability.Observation) error {
		n++
		if n == 10 {
			return sentinel
		}
		return nil
	})
	if err != sentinel {
		t.Fatalf("err = %v, want the sentinel", err)
	}
	if n != 10 {
		t.Fatalf("fn called %d times after erroring at 10", n)
	}
}

type errStop struct{}

func (errStop) Error() string { return "stop" }
