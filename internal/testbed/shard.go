package testbed

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/trace"
)

// EventSink consumes the event stream of a sharded testbed run. RunSharded
// calls Machine exactly once per machine, in increasing id order, with that
// machine's events sorted by start time — concatenated, the calls form the
// same (machine, start, end)-ordered stream Trace.Sort produces — and
// ShardDone after the last machine of each shard, which is where file-
// backed sinks rotate their output. Calls are never concurrent.
type EventSink interface {
	// Machine receives one machine's unavailability events. The slice is
	// owned by the sink afterwards.
	Machine(id trace.MachineID, events []trace.Event) error
	// ShardDone marks the end of the shard covering machines [first, first+n).
	ShardDone(first trace.MachineID, n int) error
}

// RunSharded simulates the testbed in machine chunks of shardSize,
// streaming each shard's events to sink as the shard completes. Within a
// shard, machines are simulated concurrently (bounded by cfg.Parallelism),
// but only one shard is resident at a time, so peak memory is O(shard),
// not O(fleet) — the property that turns "1,000 machines x 1 year" from an
// OOM into a routine run. Per-machine simulations depend only on (cfg, id),
// and the sink sees machines in id order, so a fixed seed produces exactly
// the event stream of the in-memory Run path regardless of shard size or
// parallelism; the shard equivalence tests pin this byte for byte.
func RunSharded(cfg Config, shardSize int, sink EventSink) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if shardSize <= 0 {
		shardSize = cfg.Machines
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > shardSize {
		workers = shardSize
	}

	events := make([][]trace.Event, shardSize)
	errs := make([]error, shardSize)
	for first := 0; first < cfg.Machines; first += shardSize {
		n := shardSize
		if first+n > cfg.Machines {
			n = cfg.Machines - first
		}
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers && w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					evs, _, err := runMachine(cfg, trace.MachineID(first+i))
					events[i], errs[i] = evs, err
				}
			}()
		}
		for i := 0; i < n; i++ {
			work <- i
		}
		close(work)
		wg.Wait()
		for i := 0; i < n; i++ {
			if errs[i] != nil {
				return fmt.Errorf("testbed: machine %d: %w", first+i, errs[i])
			}
		}
		for i := 0; i < n; i++ {
			if err := sink.Machine(trace.MachineID(first+i), events[i]); err != nil {
				return err
			}
			events[i] = nil
		}
		if err := sink.ShardDone(trace.MachineID(first), n); err != nil {
			return err
		}
	}
	return nil
}

// SinkHeader returns the trace metadata a sink needs to frame the streamed
// events (codec headers, analyzer construction) for a sharded run of cfg.
func SinkHeader(cfg Config) trace.Header {
	cfg = cfg.withDefaults()
	return trace.Header{
		Span:     spanOf(cfg),
		Calendar: calendarOf(cfg),
		Machines: cfg.Machines,
	}
}

// CollectSink gathers a sharded run back into one in-memory Trace — the
// oracle the equivalence tests compare against Run, and a convenience for
// fleet sizes that still fit in memory.
type CollectSink struct {
	Trace *trace.Trace
}

// NewCollectSink prepares a sink whose Trace matches Run's output for cfg.
func NewCollectSink(cfg Config) *CollectSink {
	h := SinkHeader(cfg)
	return &CollectSink{Trace: trace.New(h.Span, h.Calendar, h.Machines)}
}

// Machine implements EventSink.
func (s *CollectSink) Machine(_ trace.MachineID, events []trace.Event) error {
	s.Trace.Events = append(s.Trace.Events, events...)
	return nil
}

// ShardDone implements EventSink.
func (s *CollectSink) ShardDone(trace.MachineID, int) error { return nil }

// AnalyzerSink feeds a sharded run straight into a one-pass StreamAnalyzer,
// producing Table 2 and the Figure 6/7 inputs without ever materializing
// the fleet's events.
type AnalyzerSink struct {
	Analyzer *trace.StreamAnalyzer
}

// NewAnalyzerSink prepares an analyzer matching cfg's span and fleet.
func NewAnalyzerSink(cfg Config) *AnalyzerSink {
	return &AnalyzerSink{Analyzer: trace.NewStreamAnalyzerFor(SinkHeader(cfg))}
}

// Machine implements EventSink.
func (s *AnalyzerSink) Machine(_ trace.MachineID, events []trace.Event) error {
	for _, e := range events {
		if err := s.Analyzer.Observe(e); err != nil {
			return err
		}
	}
	return nil
}

// ShardDone implements EventSink.
func (s *AnalyzerSink) ShardDone(trace.MachineID, int) error { return nil }

// Finish closes the analyzer; call after RunSharded returns.
func (s *AnalyzerSink) Finish() *trace.StreamAnalyzer {
	s.Analyzer.Finish()
	return s.Analyzer
}

// EncoderSink streams a sharded run into binary codec writers, one per
// shard, via a caller-supplied opener (typically one file per shard). Each
// shard file carries the full fleet header, so a MergeReader over the
// files reconstructs the fleet stream.
type EncoderSink struct {
	header trace.Header
	open   func(shard int) (io.WriteCloser, error)
	enc    *trace.Encoder
	cur    io.WriteCloser
	shard  int
}

// NewEncoderSink builds a sink writing one codec stream per shard. The
// opener receives the zero-based shard number.
func NewEncoderSink(cfg Config, open func(shard int) (io.WriteCloser, error)) *EncoderSink {
	return &EncoderSink{header: SinkHeader(cfg), open: open}
}

// openShard starts the codec stream for the current shard.
func (s *EncoderSink) openShard() error {
	w, err := s.open(s.shard)
	if err != nil {
		return err
	}
	enc, err := trace.NewEncoder(w, s.header)
	if err != nil {
		w.Close()
		return err
	}
	s.cur, s.enc = w, enc
	return nil
}

// Machine implements EventSink.
func (s *EncoderSink) Machine(_ trace.MachineID, events []trace.Event) error {
	if s.enc == nil {
		if err := s.openShard(); err != nil {
			return err
		}
	}
	for _, e := range events {
		if err := s.enc.Write(e); err != nil {
			return err
		}
	}
	return nil
}

// ShardDone implements EventSink: it closes the shard's codec stream. A
// shard with machines but no events still gets a valid (empty) stream so
// readers see every shard file.
func (s *EncoderSink) ShardDone(trace.MachineID, int) error {
	if s.enc == nil {
		if err := s.openShard(); err != nil {
			return err
		}
	}
	err := s.enc.Close()
	if cerr := s.cur.Close(); err == nil {
		err = cerr
	}
	s.enc, s.cur = nil, nil
	s.shard++
	return err
}

// EncoderSinkV2 streams a sharded run into v2 columnar block files, one per
// shard. Each file carries the full fleet header plus its shard's machine
// coverage [first, first+n) in the block directory, which is exactly what
// AnalyzeBlockFiles needs to chunk the files for the parallel analyzer —
// and what lets it credit each shard's idle machines without consulting the
// others.
type EncoderSinkV2 struct {
	header trace.Header
	opts   *trace.BlockWriterOptions
	open   func(shard int) (io.WriteCloser, error)
	bw     *trace.BlockWriter
	cur    io.WriteCloser
	shard  int
}

// NewEncoderSinkV2 builds a sink writing one block-columnar file per shard.
// opts may be nil for defaults (auto compression, default block size).
func NewEncoderSinkV2(cfg Config, opts *trace.BlockWriterOptions, open func(shard int) (io.WriteCloser, error)) *EncoderSinkV2 {
	return &EncoderSinkV2{header: SinkHeader(cfg), opts: opts, open: open}
}

func (s *EncoderSinkV2) openShard() error {
	w, err := s.open(s.shard)
	if err != nil {
		return err
	}
	bw, err := trace.NewBlockWriter(w, s.header, s.opts)
	if err != nil {
		w.Close()
		return err
	}
	s.cur, s.bw = w, bw
	return nil
}

// Machine implements EventSink.
func (s *EncoderSinkV2) Machine(_ trace.MachineID, events []trace.Event) error {
	if s.bw == nil {
		if err := s.openShard(); err != nil {
			return err
		}
	}
	for _, e := range events {
		if err := s.bw.Write(e); err != nil {
			return err
		}
	}
	return nil
}

// ShardDone implements EventSink: it stamps the shard's machine coverage
// into the directory and closes the file. Empty shards still produce a
// valid (blockless) file so readers see every shard.
func (s *EncoderSinkV2) ShardDone(first trace.MachineID, n int) error {
	if s.bw == nil {
		if err := s.openShard(); err != nil {
			return err
		}
	}
	s.bw.SetCoverage(first, first+trace.MachineID(n))
	err := s.bw.Close()
	if cerr := s.cur.Close(); err == nil {
		err = cerr
	}
	s.bw, s.cur = nil, nil
	s.shard++
	return err
}
