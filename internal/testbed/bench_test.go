package testbed

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// BenchmarkRunMachineWeek measures simulating one machine for a week
// through the full monitor/detector pipeline.
func BenchmarkRunMachineWeek(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Machines = 1
	cfg.Days = 7
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunFullTestbed is the whole paper-scale simulation: 20 machines
// for 92 days (1840 machine-days), parallel across cores. The metric
// machine-days/s indicates throughput, computed once from the totals after
// the loop (per-iteration reporting would scale the rate by a partial
// elapsed time and overwrite itself every iteration).
func BenchmarkRunFullTestbed(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	var machineDays float64
	for i := 0; i < b.N; i++ {
		tr, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		machineDays += tr.MachineDays()
	}
	b.ReportMetric(machineDays/b.Elapsed().Seconds(), "machine-days/s")
}

// BenchmarkRunShardedFleet exercises the bounded-memory fleet pipeline on a
// CI-sized fleet: sharded simulation streamed straight into the one-pass
// analyzer. The full 500x365 fleet benchmark lives in cmd/fgcs-bench; this
// one is small enough for -benchtime 1x smoke runs.
func BenchmarkRunShardedFleet(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Machines = 50
	cfg.Days = 30
	b.ReportAllocs()
	var machineDays float64
	for i := 0; i < b.N; i++ {
		sink := NewAnalyzerSink(cfg)
		if err := RunSharded(cfg, 10, sink); err != nil {
			b.Fatal(err)
		}
		machineDays += sink.Finish().MachineDays()
	}
	b.ReportMetric(machineDays/b.Elapsed().Seconds(), "machine-days/s")
}

// BenchmarkPlanMachine isolates workload generation from sampling.
func BenchmarkPlanMachine(b *testing.B) {
	cfg := DefaultConfig()
	src := benchSource()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		planMachine(cfg, src)
	}
}

func benchSource() *rand.Rand {
	return sim.NewSource(99).Stream("bench/plan")
}
