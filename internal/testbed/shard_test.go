package testbed

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Machines = 9
	cfg.Days = 6
	cfg.Seed = 77
	return cfg
}

// TestRunShardedMatchesRun pins the central sharding guarantee: for a fixed
// seed, the streamed event sequence is byte-identical to the in-memory Run
// path, whatever the shard size.
func TestRunShardedMatchesRun(t *testing.T) {
	cfg := smallConfig()
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shardSize := range []int{1, 2, 4, 7, 9, 100, 0} {
		sink := NewCollectSink(cfg)
		if err := RunSharded(cfg, shardSize, sink); err != nil {
			t.Fatalf("shard size %d: %v", shardSize, err)
		}
		got := sink.Trace
		if got.Span != want.Span || got.Calendar != want.Calendar || got.Machines != want.Machines {
			t.Fatalf("shard size %d changed metadata", shardSize)
		}
		if len(got.Events) != len(want.Events) {
			t.Fatalf("shard size %d: %d events, want %d", shardSize, len(got.Events), len(want.Events))
		}
		for i := range got.Events {
			if got.Events[i] != want.Events[i] {
				t.Fatalf("shard size %d: event %d = %+v, want %+v", shardSize, i, got.Events[i], want.Events[i])
			}
		}
	}
}

// TestRunShardedMatchesRunFull repeats the equivalence on the paper's full
// fixed-seed 20x92 testbed — the acceptance check that sharded streaming
// leaves every downstream figure untouched.
func TestRunShardedMatchesRunFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1840 machine-day simulation")
	}
	want := fullTestbedTrace(t)
	cfg := DefaultConfig()
	sink := NewCollectSink(cfg)
	if err := RunSharded(cfg, 7, sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.Trace.Events) != len(want.Events) {
		t.Fatalf("sharded run: %d events, want %d", len(sink.Trace.Events), len(want.Events))
	}
	for i := range sink.Trace.Events {
		if sink.Trace.Events[i] != want.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

// TestAnalyzerSinkEquivalence checks the one-pass pipeline end to end:
// RunSharded -> StreamAnalyzer reproduces Table 2 and the Figure 6/7 inputs
// computed from the in-memory trace.
func TestAnalyzerSinkEquivalence(t *testing.T) {
	cfg := smallConfig()
	tr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewAnalyzerSink(cfg)
	if err := RunSharded(cfg, 4, sink); err != nil {
		t.Fatal(err)
	}
	a := sink.Finish()
	if got, want := a.Table2(), tr.MakeTable2(); !reflect.DeepEqual(got, want) {
		t.Errorf("Table2 mismatch:\n got %+v\nwant %+v", got, want)
	}
	for _, dt := range []sim.DayType{sim.Weekday, sim.Weekend} {
		if !reflect.DeepEqual(a.IntervalECDF(dt), tr.IntervalECDF(dt)) {
			t.Errorf("IntervalECDF(%v) mismatch", dt)
		}
		if got, want := a.HourlyOccurrences(dt), tr.HourlyOccurrences(dt); !reflect.DeepEqual(got, want) {
			t.Errorf("HourlyOccurrences(%v) mismatch", dt)
		}
	}
}

// TestAnalyzerSinkEquivalenceFull is satellite coverage for the acceptance
// criterion on the full fixed-seed 20x92 trace.
func TestAnalyzerSinkEquivalenceFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1840 machine-day simulation")
	}
	tr := fullTestbedTrace(t)
	cfg := DefaultConfig()
	sink := NewAnalyzerSink(cfg)
	if err := RunSharded(cfg, 5, sink); err != nil {
		t.Fatal(err)
	}
	a := sink.Finish()
	if got, want := a.Table2(), tr.MakeTable2(); !reflect.DeepEqual(got, want) {
		t.Errorf("Table2 mismatch:\n got %+v\nwant %+v", got, want)
	}
	for _, dt := range []sim.DayType{sim.Weekday, sim.Weekend} {
		if !reflect.DeepEqual(a.IntervalECDF(dt), tr.IntervalECDF(dt)) {
			t.Errorf("IntervalECDF(%v) mismatch", dt)
		}
		if got, want := a.HourlyOccurrences(dt), tr.HourlyOccurrences(dt); !reflect.DeepEqual(got, want) {
			t.Errorf("HourlyOccurrences(%v) mismatch", dt)
		}
	}
}

// memShard is an in-memory io.WriteCloser standing in for a shard file.
type memShard struct {
	bytes.Buffer
	closed bool
}

func (m *memShard) Close() error {
	m.closed = true
	return nil
}

// TestEncoderSinkRoundTrip writes a sharded run through the binary codec
// and merges the shards back, expecting the exact Run event stream.
func TestEncoderSinkRoundTrip(t *testing.T) {
	cfg := smallConfig()
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var shards []*memShard
	sink := NewEncoderSink(cfg, func(int) (io.WriteCloser, error) {
		s := &memShard{}
		shards = append(shards, s)
		return s, nil
	})
	if err := RunSharded(cfg, 4, sink); err != nil {
		t.Fatal(err)
	}
	if wantShards := (cfg.Machines + 3) / 4; len(shards) != wantShards {
		t.Fatalf("wrote %d shards, want %d", len(shards), wantShards)
	}
	var decs []trace.EventReader
	for i, s := range shards {
		if !s.closed {
			t.Fatalf("shard %d left open", i)
		}
		dec, err := trace.NewDecoder(bytes.NewReader(s.Bytes()))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		decs = append(decs, dec)
	}
	mr, err := trace.NewMergeReader(decs...)
	if err != nil {
		t.Fatal(err)
	}
	var got []trace.Event
	for {
		e, err := mr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	if len(got) != len(want.Events) {
		t.Fatalf("merged %d events, want %d", len(got), len(want.Events))
	}
	for i := range got {
		if got[i] != want.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want.Events[i])
		}
	}
}

// errSink fails on a chosen call, checking error propagation out of
// RunSharded.
type errSink struct {
	failOn   int
	calls    int
	sentinel error
}

func (s *errSink) Machine(trace.MachineID, []trace.Event) error {
	s.calls++
	if s.calls == s.failOn {
		return s.sentinel
	}
	return nil
}

func (s *errSink) ShardDone(trace.MachineID, int) error { return nil }

func TestRunShardedPropagatesSinkError(t *testing.T) {
	cfg := smallConfig()
	sentinel := fmt.Errorf("sink full")
	err := RunSharded(cfg, 3, &errSink{failOn: 2, sentinel: sentinel})
	if !errors.Is(err, sentinel) {
		t.Fatalf("RunSharded returned %v, want the sink's error", err)
	}
}

func TestRunShardedRejectsBadConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.Machines = -1 // zero means "default", negative is invalid
	if err := RunSharded(cfg, 4, NewCollectSink(smallConfig())); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestEncoderSinkV2RoundTrip writes a sharded run as v2 block files and
// expects (a) the merged stream to reproduce Run exactly, (b) each shard's
// directory to carry its machine coverage, and (c) the parallel block
// analyzer over the shards to match the in-memory analysis bit for bit.
func TestEncoderSinkV2RoundTrip(t *testing.T) {
	cfg := smallConfig()
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var shards []*memShard
	sink := NewEncoderSinkV2(cfg, &trace.BlockWriterOptions{BlockSize: 16}, func(int) (io.WriteCloser, error) {
		s := &memShard{}
		shards = append(shards, s)
		return s, nil
	})
	if err := RunSharded(cfg, 4, sink); err != nil {
		t.Fatal(err)
	}
	if wantShards := (cfg.Machines + 3) / 4; len(shards) != wantShards {
		t.Fatalf("wrote %d shards, want %d", len(shards), wantShards)
	}

	var files []*trace.BlockFile
	var decs []trace.EventReader
	for i, s := range shards {
		if !s.closed {
			t.Fatalf("shard %d left open", i)
		}
		bf, err := trace.NewBlockFileBytes(s.Bytes())
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		lo, hi := bf.Coverage()
		if lo != trace.MachineID(i*4) || int(hi) != min(cfg.Machines, (i+1)*4) {
			t.Errorf("shard %d coverage [%d, %d), want [%d, %d)", i, lo, hi, i*4, min(cfg.Machines, (i+1)*4))
		}
		files = append(files, bf)
		rd, err := trace.NewReader(bytes.NewReader(s.Bytes()))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		decs = append(decs, rd)
	}

	mr, err := trace.NewMergeReader(decs...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.CollectEvents(mr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("merged %d events, want %d", len(got.Events), len(want.Events))
	}
	for i := range got.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got.Events[i], want.Events[i])
		}
	}

	a, err := trace.AnalyzeBlockFiles(files, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gotT, wantT := a.Table2(), want.MakeTable2(); !reflect.DeepEqual(gotT, wantT) {
		t.Errorf("Table2 mismatch:\n got %+v\nwant %+v", gotT, wantT)
	}
	for _, dt := range []sim.DayType{sim.Weekday, sim.Weekend} {
		if !reflect.DeepEqual(a.IntervalECDF(dt), want.IntervalECDF(dt)) {
			t.Errorf("IntervalECDF(%v) mismatch", dt)
		}
		if g, w := a.HourlyOccurrences(dt), want.HourlyOccurrences(dt); !reflect.DeepEqual(g, w) {
			t.Errorf("HourlyOccurrences(%v) mismatch", dt)
		}
	}
}
