package testbed

import (
	"runtime"
	"testing"

	"repro/internal/availability"
	"repro/internal/trace"
)

// TestRunDeterminism asserts the testbed produces an identical trace and
// identical occupancy regardless of worker parallelism, and across repeated
// runs with the same seed — the guarantee that lets the sharded event
// buffers skip the old global event lock.
func TestRunDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machines = 6
	cfg.Days = 5

	serial := cfg
	serial.Parallelism = 1
	parallel := cfg
	parallel.Parallelism = runtime.NumCPU()

	trSerial, occSerial, err := RunWithOccupancy(serial)
	if err != nil {
		t.Fatal(err)
	}
	trParallel, occParallel, err := RunWithOccupancy(parallel)
	if err != nil {
		t.Fatal(err)
	}
	trRepeat, occRepeat, err := RunWithOccupancy(parallel)
	if err != nil {
		t.Fatal(err)
	}

	compareRuns(t, "parallelism 1 vs NumCPU", trSerial.Events, trParallel.Events, occSerial, occParallel)
	compareRuns(t, "repeated same-seed run", trParallel.Events, trRepeat.Events, occParallel, occRepeat)
}

func compareRuns(t *testing.T, tag string, evA, evB []trace.Event, occA, occB []Occupancy) {
	t.Helper()
	if len(evA) != len(evB) {
		t.Fatalf("%s: event count %d vs %d", tag, len(evA), len(evB))
	}
	for i := range evA {
		if evA[i] != evB[i] {
			t.Fatalf("%s: event %d differs: %+v vs %+v", tag, i, evA[i], evB[i])
		}
	}
	if len(occA) != len(occB) {
		t.Fatalf("%s: occupancy count %d vs %d", tag, len(occA), len(occB))
	}
	states := []availability.State{availability.S1, availability.S2, availability.S3, availability.S4, availability.S5}
	for i := range occA {
		for _, st := range states {
			if occA[i].Fraction[st] != occB[i].Fraction[st] {
				t.Fatalf("%s: machine %d occupancy of %v differs: %v vs %v", tag, i, st, occA[i].Fraction[st], occB[i].Fraction[st])
			}
		}
	}
}
