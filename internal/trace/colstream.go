package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/sim"
)

// BlockDecoder reads a v2 columnar stream event by event from a plain
// io.Reader — no seeking, no directory required — so it slots in wherever
// the v1 Decoder does (MergeReader inputs, StreamAnalyzer.Drain). Memory is
// bounded by one block. A stream cut mid-block yields every event of the
// complete blocks before surfacing ErrTruncated, matching the v1 salvage
// semantics.
type BlockDecoder struct {
	r      *bufio.Reader
	header Header

	buf []Event
	pos int

	payload []byte
	raw     []byte

	done bool
	err  error
}

// NewBlockDecoder reads and validates the v2 magic and header from r. Use
// NewReader to sniff the version instead of committing to one.
func NewBlockDecoder(r io.Reader) (*BlockDecoder, error) {
	br := bufio.NewReader(r)
	h, version, err := readCodecHeader(br)
	if err != nil {
		return nil, err
	}
	if version != codecVersion2 {
		return nil, fmt.Errorf("trace: unsupported codec version %d", version)
	}
	return &BlockDecoder{r: br, header: h}, nil
}

// newBlockDecoderAfterHeader wraps a reader already past the magic,
// version and header.
func newBlockDecoderAfterHeader(br *bufio.Reader, h Header) *BlockDecoder {
	return &BlockDecoder{r: br, header: h}
}

// Header returns the stream's trace metadata.
func (d *BlockDecoder) Header() Header { return d.header }

// Next returns the next event, or io.EOF when the stream ends cleanly —
// either at the directory of a closed file or at a record boundary of a
// flushed-but-unclosed stream.
func (d *BlockDecoder) Next() (Event, error) {
	if d.err != nil {
		return Event{}, d.err
	}
	for d.pos >= len(d.buf) {
		if d.done {
			return Event{}, io.EOF
		}
		if err := d.nextBlock(); err != nil {
			d.err = err
			return Event{}, err
		}
	}
	ev := d.buf[d.pos]
	d.pos++
	return ev, nil
}

// nextBlock reads one record; on a block it fills d.buf, on the directory
// it consumes it plus the footer and marks the stream done.
func (d *BlockDecoder) nextBlock() error {
	tag, err := d.r.ReadByte()
	if err == io.EOF {
		d.done = true
		return nil
	}
	if err != nil {
		return fmt.Errorf("trace: reading record tag: %w", truncatedEOF(err))
	}
	switch tag {
	case colTagBlock:
		return d.readBlock()
	case colTagDirectory:
		if err := d.skipDirectory(); err != nil {
			return err
		}
		d.done = true
		return nil
	default:
		return fmt.Errorf("trace: unknown record tag %q", tag)
	}
}

// readBlock parses one block record into d.buf.
func (d *BlockDecoder) readBlock() error {
	// Block headers are small (< 64 bytes); peek enough to parse in place.
	hdr, err := d.r.Peek(64)
	if err != nil && len(hdr) == 0 {
		return fmt.Errorf("trace: reading block header: %w", truncatedEOF(err))
	}
	meta, codec, rawLen, payloadLen, n, perr := decodeBlockHeader(hdr)
	if perr != nil {
		if err != nil {
			// The header itself was cut short.
			return fmt.Errorf("trace: reading block header: %w", ErrTruncated)
		}
		return perr
	}
	if _, err := d.r.Discard(n); err != nil {
		return fmt.Errorf("trace: reading block header: %w", truncatedEOF(err))
	}
	if cap(d.payload) < int(payloadLen) {
		d.payload = make([]byte, payloadLen)
	}
	d.payload = d.payload[:payloadLen]
	if _, err := io.ReadFull(d.r, d.payload); err != nil {
		return fmt.Errorf("trace: reading block payload: %w", truncatedEOF(err))
	}
	raw, scratch, err := decodePayload(codec, d.payload, int(rawLen), meta.Count, d.raw)
	if err != nil {
		return err
	}
	d.raw = scratch
	d.buf, err = decodeColumns(raw, meta, d.header, d.buf)
	if err != nil {
		return err
	}
	d.pos = 0
	return nil
}

// skipDirectory consumes a directory record and the footer, verifying the
// stream ends there.
func (d *BlockDecoder) skipDirectory() error {
	blocks, err := binary.ReadUvarint(d.r)
	if err != nil {
		return fmt.Errorf("trace: reading directory: %w", truncatedEOF(err))
	}
	if blocks > math.MaxInt32 {
		return fmt.Errorf("trace: implausible directory block count %d", blocks)
	}
	for i := uint64(0); i < blocks; i++ {
		// offset, storedLen, count: uvarints; minStart, maxStart, maxEnd:
		// varints; minMachine, maxMachine: uvarints; one mask byte.
		for j := 0; j < 8; j++ {
			if _, err := binary.ReadUvarint(d.r); err != nil {
				return fmt.Errorf("trace: reading directory: %w", truncatedEOF(err))
			}
		}
		if _, err := d.r.ReadByte(); err != nil {
			return fmt.Errorf("trace: reading directory: %w", truncatedEOF(err))
		}
	}
	for j := 0; j < 2; j++ { // coverage lo, hi
		if _, err := binary.ReadVarint(d.r); err != nil {
			return fmt.Errorf("trace: reading directory coverage: %w", truncatedEOF(err))
		}
	}
	var foot [colFooterLen]byte
	if _, err := io.ReadFull(d.r, foot[:]); err != nil {
		return fmt.Errorf("trace: reading footer: %w", truncatedEOF(err))
	}
	if [4]byte(foot[8:12]) != colFooterMagic {
		return fmt.Errorf("trace: bad footer magic %q", foot[8:12])
	}
	if _, err := d.r.ReadByte(); err != io.EOF {
		return fmt.Errorf("trace: data after v2 footer")
	}
	return nil
}

// readCodecHeader reads the shared magic/version/header prefix of both
// codec versions from br.
func readCodecHeader(br *bufio.Reader) (Header, uint64, error) {
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return Header{}, 0, fmt.Errorf("trace: reading codec magic: %w", truncatedEOF(err))
	}
	if magic != codecMagic {
		return Header{}, 0, fmt.Errorf("trace: bad codec magic %q", magic[:])
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return Header{}, 0, fmt.Errorf("trace: reading codec version: %w", truncatedEOF(err))
	}
	spanStart, err := binary.ReadVarint(br)
	if err != nil {
		return Header{}, 0, fmt.Errorf("trace: reading span start: %w", truncatedEOF(err))
	}
	spanEnd, err := binary.ReadVarint(br)
	if err != nil {
		return Header{}, 0, fmt.Errorf("trace: reading span end: %w", truncatedEOF(err))
	}
	weekday, err := binary.ReadVarint(br)
	if err != nil {
		return Header{}, 0, fmt.Errorf("trace: reading start weekday: %w", truncatedEOF(err))
	}
	machines, err := binary.ReadUvarint(br)
	if err != nil {
		return Header{}, 0, fmt.Errorf("trace: reading machine count: %w", truncatedEOF(err))
	}
	if machines > math.MaxInt32 {
		return Header{}, 0, fmt.Errorf("trace: implausible machine count %d", machines)
	}
	h := Header{
		Span:     sim.Window{Start: sim.Time(spanStart), End: sim.Time(spanEnd)},
		Calendar: sim.Calendar{StartWeekday: int(weekday)},
		Machines: int(machines),
	}
	if h.Span.End < h.Span.Start {
		return Header{}, 0, fmt.Errorf("trace: inverted span %v in codec header", h.Span)
	}
	return h, version, nil
}

// NewReader opens a binary trace stream of either codec version, sniffing
// the version from the header: a v1 stream yields a *Decoder, a v2 stream a
// *BlockDecoder, both behind the EventReader interface.
func NewReader(r io.Reader) (EventReader, error) {
	br := bufio.NewReader(r)
	h, version, err := readCodecHeader(br)
	if err != nil {
		return nil, err
	}
	switch version {
	case codecVersion:
		return newDecoderAfterHeader(br, h), nil
	case codecVersion2:
		return newBlockDecoderAfterHeader(br, h), nil
	default:
		return nil, fmt.Errorf("trace: unsupported codec version %d", version)
	}
}

// WriteBlocks writes the whole trace in the v2 columnar codec (nil opts =
// defaults). Events are encoded in (machine, start, end) order regardless
// of their order in t; t itself is not mutated.
func (t *Trace) WriteBlocks(w io.Writer, opts *BlockWriterOptions) error {
	bw, err := NewBlockWriter(w, Header{Span: t.Span, Calendar: t.Calendar, Machines: t.Machines}, opts)
	if err != nil {
		return err
	}
	events := t.Events
	if !eventsSorted(events) {
		c := t.Clone()
		c.Sort()
		events = c.Events
	}
	for _, e := range events {
		if err := bw.Write(e); err != nil {
			return err
		}
	}
	return bw.Close()
}

// eventsSorted reports whether events are already (machine, start, end)
// ordered.
func eventsSorted(events []Event) bool {
	for i := 1; i < len(events); i++ {
		if eventLess(events[i], events[i-1]) {
			return false
		}
	}
	return true
}

// ReadBlocks parses a trace written in the v2 codec and validates it.
func ReadBlocks(r io.Reader) (*Trace, error) {
	dec, err := NewBlockDecoder(r)
	if err != nil {
		return nil, err
	}
	return CollectEvents(dec)
}

// CollectEvents drains an EventReader — either codec version, or a
// MergeReader over many — into an in-memory, validated Trace.
func CollectEvents(rd EventReader) (*Trace, error) {
	h := rd.Header()
	t := &Trace{Span: h.Span, Calendar: h.Calendar, Machines: h.Machines}
	for {
		e, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Events = append(t.Events, e)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
