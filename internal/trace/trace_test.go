package trace

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/sim"
)

func span(d time.Duration) sim.Window { return sim.Window{Start: 0, End: d} }

func mkEvent(m MachineID, start, end time.Duration, st availability.State) Event {
	return Event{Machine: m, Start: start, End: end, State: st, AvailCPU: 0.5, AvailMem: 1 << 30}
}

func TestEventValidate(t *testing.T) {
	good := mkEvent(0, time.Hour, 2*time.Hour, availability.S3)
	if err := good.Validate(); err != nil {
		t.Errorf("valid event rejected: %v", err)
	}
	if err := mkEvent(0, time.Hour, 2*time.Hour, availability.S1).Validate(); err == nil {
		t.Error("available-state event should be rejected")
	}
	if err := mkEvent(0, 2*time.Hour, time.Hour, availability.S3).Validate(); err == nil {
		t.Error("inverted event should be rejected")
	}
	if got := good.Duration(); got != time.Hour {
		t.Errorf("Duration = %v", got)
	}
	if got := good.Cause(); got != availability.CauseCPU {
		t.Errorf("Cause = %v", got)
	}
}

func TestTraceValidate(t *testing.T) {
	tr := New(span(sim.Day), sim.Calendar{}, 2)
	tr.Add(mkEvent(0, time.Hour, 2*time.Hour, availability.S3))
	if err := tr.Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	tr.Add(mkEvent(5, time.Hour, 2*time.Hour, availability.S3))
	if err := tr.Validate(); err == nil {
		t.Error("out-of-range machine should be rejected")
	}
}

func TestIntervalExtraction(t *testing.T) {
	tr := New(span(10*time.Hour), sim.Calendar{}, 1)
	tr.Add(mkEvent(0, 2*time.Hour, 3*time.Hour, availability.S3))
	tr.Add(mkEvent(0, 6*time.Hour, 7*time.Hour, availability.S5))
	ivs := tr.Intervals(0)
	want := []Interval{
		{Machine: 0, Start: 0, End: 2 * time.Hour},
		{Machine: 0, Start: 3 * time.Hour, End: 6 * time.Hour},
		{Machine: 0, Start: 7 * time.Hour, End: 10 * time.Hour},
	}
	if len(ivs) != len(want) {
		t.Fatalf("got %d intervals, want %d: %+v", len(ivs), len(want), ivs)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Errorf("interval %d = %+v, want %+v", i, ivs[i], want[i])
		}
	}
}

func TestIntervalExtractionOverlapsAndEdges(t *testing.T) {
	tr := New(span(10*time.Hour), sim.Calendar{}, 1)
	// Overlapping events coalesce.
	tr.Add(mkEvent(0, 2*time.Hour, 4*time.Hour, availability.S3))
	tr.Add(mkEvent(0, 3*time.Hour, 5*time.Hour, availability.S4))
	// Event straddling the span end is clipped.
	tr.Add(mkEvent(0, 9*time.Hour, 12*time.Hour, availability.S3))
	ivs := tr.Intervals(0)
	want := []Interval{
		{Machine: 0, Start: 0, End: 2 * time.Hour},
		{Machine: 0, Start: 5 * time.Hour, End: 9 * time.Hour},
	}
	if len(ivs) != len(want) {
		t.Fatalf("got %d intervals: %+v", len(ivs), ivs)
	}
	for i := range want {
		if ivs[i] != want[i] {
			t.Errorf("interval %d = %+v, want %+v", i, ivs[i], want[i])
		}
	}
}

func TestIntervalsNoEvents(t *testing.T) {
	tr := New(span(5*time.Hour), sim.Calendar{}, 1)
	ivs := tr.Intervals(0)
	if len(ivs) != 1 || ivs[0].Duration() != 5*time.Hour {
		t.Errorf("eventless machine should yield one full-span interval: %+v", ivs)
	}
}

// Property: intervals and coalesced events partition the span exactly —
// total availability + total unavailability == span, and intervals never
// overlap events.
func TestIntervalPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		spanLen := time.Duration(1+rng.Intn(100)) * time.Hour
		tr := New(span(spanLen), sim.Calendar{}, 1)
		n := rng.Intn(30)
		for i := 0; i < n; i++ {
			start := time.Duration(rng.Int63n(int64(spanLen)))
			dur := time.Duration(rng.Int63n(int64(3 * time.Hour)))
			tr.Add(mkEvent(0, start, start+dur, availability.S3))
		}
		ivs := tr.Intervals(0)
		var availTotal time.Duration
		prevEnd := sim.Time(-1)
		for _, iv := range ivs {
			if iv.Duration() <= 0 {
				t.Fatalf("non-positive interval %+v", iv)
			}
			if iv.Start < prevEnd {
				t.Fatalf("overlapping intervals at %+v", iv)
			}
			prevEnd = iv.End
			availTotal += iv.Duration()
		}
		// Compute unavailability directly from coalesced clipped events.
		evs := coalesce(tr.MachineEvents(0))
		var unavail time.Duration
		for _, e := range evs {
			s, en := e.Start, e.End
			if s < 0 {
				s = 0
			}
			if en > spanLen {
				en = spanLen
			}
			if en > s {
				unavail += en - s
			}
		}
		if availTotal+unavail != spanLen {
			t.Fatalf("partition broken: avail %v + unavail %v != span %v", availTotal, unavail, spanLen)
		}
	}
}

func TestCountByCauseAndTable2(t *testing.T) {
	tr := New(span(10*sim.Day), sim.Calendar{}, 2)
	// Machine 0: 3 CPU, 1 memory, 2 URR (one reboot-fast, one long).
	tr.Add(mkEvent(0, 1*time.Hour, 2*time.Hour, availability.S3))
	tr.Add(mkEvent(0, 3*time.Hour, 4*time.Hour, availability.S3))
	tr.Add(mkEvent(0, 5*time.Hour, 6*time.Hour, availability.S3))
	tr.Add(mkEvent(0, 7*time.Hour, 8*time.Hour, availability.S4))
	tr.Add(mkEvent(0, 9*time.Hour, 9*time.Hour+30*time.Second, availability.S5))
	tr.Add(mkEvent(0, 11*time.Hour, 12*time.Hour, availability.S5))
	// Machine 1: 1 CPU.
	tr.Add(mkEvent(1, 1*time.Hour, 2*time.Hour, availability.S3))

	counts := tr.CountByCause()
	if c := counts[0]; c.Total != 6 || c.CPU != 3 || c.Memory != 1 || c.URR != 2 {
		t.Errorf("machine 0 counts = %+v", c)
	}
	if c := counts[1]; c.Total != 1 || c.CPU != 1 {
		t.Errorf("machine 1 counts = %+v", c)
	}

	tb := tr.MakeTable2()
	if tb.Total != (Range{1, 6}) {
		t.Errorf("Total range = %+v", tb.Total)
	}
	if tb.CPU != (Range{1, 3}) {
		t.Errorf("CPU range = %+v", tb.CPU)
	}
	if tb.URR != (Range{0, 2}) {
		t.Errorf("URR range = %+v", tb.URR)
	}
	if tb.RebootShare != 0.5 {
		t.Errorf("RebootShare = %v, want 0.5", tb.RebootShare)
	}
	// Percentages: machine 0 CPU 50%, machine 1 CPU 100%.
	if tb.CPUPct[0] != 0.5 || tb.CPUPct[1] != 1.0 {
		t.Errorf("CPUPct = %+v", tb.CPUPct)
	}
}

// TestMakeTable2NoFailures guards the pct helper: a machine with zero
// events must report 0% shares, not NaN from a 0/0 division.
func TestMakeTable2NoFailures(t *testing.T) {
	tr := New(span(10*sim.Day), sim.Calendar{}, 3)
	tb := tr.MakeTable2()
	for name, r := range map[string][2]float64{
		"CPUPct":    tb.CPUPct,
		"MemoryPct": tb.MemoryPct,
		"URRPct":    tb.URRPct,
	} {
		for _, v := range r {
			if math.IsNaN(v) {
				t.Errorf("%s = %v contains NaN for an event-free trace", name, r)
			}
		}
	}
	if tb.Total != (Range{0, 0}) {
		t.Errorf("Total range = %+v, want {0 0}", tb.Total)
	}
	if got := pct(0, 0); got != 0 {
		t.Errorf("pct(0, 0) = %v, want 0", got)
	}
}

func TestHourlyOccurrences(t *testing.T) {
	// Two weekdays (epoch Monday). Event on day 0 spanning 10:30-12:30
	// counts in hours 10, 11, 12.
	tr := New(span(2*sim.Day), sim.Calendar{}, 1)
	tr.Add(mkEvent(0, 10*time.Hour+30*time.Minute, 12*time.Hour+30*time.Minute, availability.S3))
	sums := tr.HourlyOccurrences(sim.Weekday)
	for h := 0; h < 24; h++ {
		wantMax := 0.0
		if h >= 10 && h <= 12 {
			wantMax = 1.0
		}
		if sums[h].Max != wantMax {
			t.Errorf("hour %d max = %v, want %v", h, sums[h].Max, wantMax)
		}
	}
	// Two weekdays observed: mean for hour 10 is 0.5 (day 1 had none).
	if sums[10].Mean != 0.5 {
		t.Errorf("hour 10 mean = %v, want 0.5", sums[10].Mean)
	}
	if sums[10].Count != 2 {
		t.Errorf("hour 10 day count = %d, want 2", sums[10].Count)
	}
	// Weekend summary sees no days at all in a Mon-Tue span.
	wk := tr.HourlyOccurrences(sim.Weekend)
	if wk[10].Count != 0 {
		t.Errorf("weekend day count = %d, want 0", wk[10].Count)
	}
}

func TestIntervalECDFByDayType(t *testing.T) {
	// Span one week starting Monday; put one event on Saturday so the
	// weekend has a short and a long interval.
	tr := New(span(sim.Week), sim.Calendar{}, 1)
	sat := 5 * sim.Day
	tr.Add(mkEvent(0, sat+2*time.Hour, sat+3*time.Hour, availability.S3))
	wd := tr.IntervalECDF(sim.Weekday)
	we := tr.IntervalECDF(sim.Weekend)
	// Weekday: the single long interval [0, Sat+2h) starts Monday.
	if wd.N() != 1 {
		t.Errorf("weekday intervals = %d, want 1", wd.N())
	}
	// Weekend: the interval starting Sat+3h.
	if we.N() != 1 {
		t.Errorf("weekend intervals = %d, want 1", we.N())
	}
	if got := we.Mean(); got != float64(sim.Week-(sat+3*time.Hour))/float64(time.Hour) {
		t.Errorf("weekend interval mean = %v hours", got)
	}
}

func TestWindowQueries(t *testing.T) {
	tr := New(span(sim.Day), sim.Calendar{}, 2)
	tr.Add(mkEvent(0, 2*time.Hour, 3*time.Hour, availability.S3))
	tr.Add(mkEvent(0, 10*time.Hour, 11*time.Hour, availability.S4))
	w := sim.Window{Start: time.Hour, End: 4 * time.Hour}
	if got := tr.OccurrencesInWindow(0, w); got != 1 {
		t.Errorf("OccurrencesInWindow = %d, want 1", got)
	}
	if got := tr.OccurrencesInWindow(1, w); got != 0 {
		t.Errorf("other machine occurrences = %d, want 0", got)
	}
	if !tr.AnyOverlap(0, sim.Window{Start: 2*time.Hour + 30*time.Minute, End: 5 * time.Hour}) {
		t.Error("AnyOverlap should see the 2-3h event")
	}
	if tr.AnyOverlap(0, sim.Window{Start: 4 * time.Hour, End: 9 * time.Hour}) {
		t.Error("AnyOverlap false positive")
	}
	ev, ok := tr.NextEventAfter(0, 3*time.Hour)
	if !ok || ev.Start != 10*time.Hour {
		t.Errorf("NextEventAfter = %+v, %v", ev, ok)
	}
	if _, ok := tr.NextEventAfter(0, 12*time.Hour); ok {
		t.Error("NextEventAfter past last event should report none")
	}
}

func TestCloneFilterBefore(t *testing.T) {
	tr := New(span(sim.Day), sim.Calendar{}, 1)
	tr.Add(mkEvent(0, 1*time.Hour, 2*time.Hour, availability.S3))
	tr.Add(mkEvent(0, 5*time.Hour, 6*time.Hour, availability.S5))

	c := tr.Clone()
	c.Events[0].Machine = 9
	if tr.Events[0].Machine != 0 {
		t.Error("Clone must deep-copy events")
	}

	f := tr.Filter(func(e Event) bool { return e.State == availability.S3 })
	if len(f.Events) != 1 || f.Events[0].State != availability.S3 {
		t.Errorf("Filter result = %+v", f.Events)
	}

	b := tr.Before(3 * time.Hour)
	if len(b.Events) != 1 || b.Span.End != 3*time.Hour {
		t.Errorf("Before result: %d events span %v", len(b.Events), b.Span)
	}
}

func TestMachineDays(t *testing.T) {
	tr := New(span(92*sim.Day), sim.Calendar{}, 20)
	if got := tr.MachineDays(); got != 1840 {
		t.Errorf("MachineDays = %v, want 1840", got)
	}
}

func TestSort(t *testing.T) {
	tr := New(span(sim.Day), sim.Calendar{}, 2)
	tr.Add(mkEvent(1, 1*time.Hour, 2*time.Hour, availability.S3))
	tr.Add(mkEvent(0, 5*time.Hour, 6*time.Hour, availability.S3))
	tr.Add(mkEvent(0, 1*time.Hour, 2*time.Hour, availability.S3))
	tr.Sort()
	if tr.Events[0].Machine != 0 || tr.Events[0].Start != time.Hour {
		t.Errorf("sort order wrong: %+v", tr.Events)
	}
	if tr.Events[2].Machine != 1 {
		t.Errorf("sort order wrong: %+v", tr.Events)
	}
}

func TestMerge(t *testing.T) {
	a := New(span(sim.Day), sim.Calendar{}, 2)
	a.Add(mkEvent(1, time.Hour, 2*time.Hour, availability.S3))
	b := New(span(sim.Day), sim.Calendar{}, 3)
	b.Add(mkEvent(0, 3*time.Hour, 4*time.Hour, availability.S4))

	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Machines != 5 {
		t.Errorf("merged machines = %d, want 5", m.Machines)
	}
	if len(m.Events) != 2 {
		t.Fatalf("merged events = %d", len(m.Events))
	}
	// b's machine 0 becomes machine 2.
	if got := m.CountByCause()[2]; got.Memory != 1 {
		t.Errorf("relabeled machine counts = %+v", m.CountByCause())
	}
	// Inputs are untouched.
	if b.Events[0].Machine != 0 {
		t.Error("Merge mutated its input")
	}

	// Mismatched spans are rejected.
	c := New(span(2*sim.Day), sim.Calendar{}, 1)
	if _, err := Merge(a, c); err == nil {
		t.Error("span mismatch accepted")
	}
	d := New(span(sim.Day), sim.Calendar{StartWeekday: 3}, 1)
	if _, err := Merge(a, d); err == nil {
		t.Error("calendar mismatch accepted")
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
}

func TestHourlyCountSeries(t *testing.T) {
	tr := New(span(2*sim.Day), sim.Calendar{}, 1)
	tr.Add(mkEvent(0, 90*time.Minute, 3*time.Hour+30*time.Minute, availability.S3))
	s := tr.HourlyCountSeries()
	if len(s) != 48 {
		t.Fatalf("series length = %d, want 48", len(s))
	}
	for h, want := range map[int]float64{0: 0, 1: 1, 2: 1, 3: 1, 4: 0} {
		if s[h] != want {
			t.Errorf("hour %d = %v, want %v", h, s[h], want)
		}
	}
	empty := New(span(0), sim.Calendar{}, 1)
	if empty.HourlyCountSeries() != nil {
		t.Error("zero-span series should be nil")
	}
}

// TestHourlyCountSeriesPartialHour pins the partial-final-hour semantics:
// a span that is not a whole number of hours still gets an entry for its
// tail hour, so events there are counted rather than silently dropped.
func TestHourlyCountSeriesPartialHour(t *testing.T) {
	// 2h30m span: 3 entries, the last covering the 30-minute tail.
	tr := New(span(2*time.Hour+30*time.Minute), sim.Calendar{}, 1)
	tr.Add(mkEvent(0, 2*time.Hour+10*time.Minute, 2*time.Hour+20*time.Minute, availability.S3))
	s := tr.HourlyCountSeries()
	if len(s) != 3 {
		t.Fatalf("series length = %d, want 3 (partial hour rounds up)", len(s))
	}
	if s[2] != 1 {
		t.Errorf("tail-hour count = %v, want 1 (event in the partial final hour)", s[2])
	}
	if s[0] != 0 || s[1] != 0 {
		t.Errorf("whole hours = %v, %v, want 0, 0", s[0], s[1])
	}

	// A sub-hour span is one entry, not zero.
	short := New(span(20*time.Minute), sim.Calendar{}, 1)
	short.Add(mkEvent(0, 5*time.Minute, 10*time.Minute, availability.S4))
	if got := short.HourlyCountSeries(); len(got) != 1 || got[0] != 1 {
		t.Errorf("sub-hour span series = %v, want [1]", got)
	}
}
