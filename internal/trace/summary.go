package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// MachineSummary condenses one machine's availability behavior over the
// trace span into the classic dependability quantities.
type MachineSummary struct {
	Machine MachineID
	// Events is the number of unavailability occurrences.
	Events int
	// Availability is the fraction of the span spent available (S1/S2).
	Availability float64
	// MTBF is the mean availability-interval length (mean time between
	// failures, measured from recovery to next failure).
	MTBF time.Duration
	// MTTR is the mean unavailability duration (mean time to recovery).
	MTTR time.Duration
	// LongestInterval is the longest uninterrupted availability run.
	LongestInterval time.Duration
}

// Summarize computes per-machine dependability summaries, sorted by
// machine ID.
func (t *Trace) Summarize() []MachineSummary {
	out := make([]MachineSummary, 0, t.Machines)
	for m := 0; m < t.Machines; m++ {
		id := MachineID(m)
		s := MachineSummary{Machine: id}

		ivs := t.Intervals(id)
		var availTotal time.Duration
		var ivLens []float64
		for _, iv := range ivs {
			availTotal += iv.Duration()
			ivLens = append(ivLens, float64(iv.Duration()))
			if iv.Duration() > s.LongestInterval {
				s.LongestInterval = iv.Duration()
			}
		}
		if span := t.Span.Duration(); span > 0 {
			s.Availability = float64(availTotal) / float64(span)
		}
		if len(ivLens) > 0 {
			s.MTBF = time.Duration(stats.Mean(ivLens))
		}

		evs := t.MachineEvents(id)
		s.Events = len(evs)
		var durs []float64
		for _, e := range evs {
			durs = append(durs, float64(e.Duration()))
		}
		if len(durs) > 0 {
			s.MTTR = time.Duration(stats.Mean(durs))
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Machine < out[j].Machine })
	return out
}

// FleetSummary aggregates the machine summaries.
type FleetSummary struct {
	Machines int
	Events   int
	// Availability is the mean per-machine availability fraction.
	Availability float64
	// MTBF/MTTR are means over machines.
	MTBF time.Duration
	MTTR time.Duration
}

// SummarizeFleet aggregates the whole testbed.
func (t *Trace) SummarizeFleet() FleetSummary {
	per := t.Summarize()
	f := FleetSummary{Machines: len(per)}
	if len(per) == 0 {
		return f
	}
	var avail, mtbf, mttr float64
	for _, s := range per {
		f.Events += s.Events
		avail += s.Availability
		mtbf += float64(s.MTBF)
		mttr += float64(s.MTTR)
	}
	n := float64(len(per))
	f.Availability = avail / n
	f.MTBF = time.Duration(mtbf / n)
	f.MTTR = time.Duration(mttr / n)
	return f
}

// FormatSummary renders the per-machine table plus the fleet line.
func (t *Trace) FormatSummary() string {
	var b strings.Builder
	b.WriteString("machine  events  availability     MTBF      MTTR   longest-interval\n")
	for _, s := range t.Summarize() {
		fmt.Fprintf(&b, "%7d  %6d  %11.2f%%  %8s  %8s  %s\n",
			s.Machine, s.Events, s.Availability*100,
			s.MTBF.Round(time.Minute), s.MTTR.Round(time.Second),
			s.LongestInterval.Round(time.Minute))
	}
	f := t.SummarizeFleet()
	fmt.Fprintf(&b, "fleet: %d machines, %d events, %.2f%% available, MTBF %s, MTTR %s\n",
		f.Machines, f.Events, f.Availability*100,
		f.MTBF.Round(time.Minute), f.MTTR.Round(time.Second))
	return b.String()
}
