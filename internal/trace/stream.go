package trace

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/availability"
	"repro/internal/sim"
	"repro/internal/stats"
)

// StreamAnalyzer computes the paper's trace analyses — Table 2 cause
// counts, the Figure 6 interval-length samples and the Figure 7 hourly
// occurrence bins — in a single pass over an event stream sorted by
// (machine, start, end), without materializing a *Trace. Feeding it the
// events of a trace reproduces MakeTable2, IntervalECDF/IntervalLengths
// and HourlyOccurrences exactly; the equivalence tests in the testbed
// package pin this against the in-memory implementations.
//
// Memory use is O(machines + days + intervals): per-machine cause counts,
// one grouped-bin cell per (day, hour) with events, and the interval-length
// samples Figure 6 is drawn from.
type StreamAnalyzer struct {
	span     sim.Window
	cal      sim.Calendar
	machines int

	// lo and hi bound the machine range [lo, hi) this analyzer is
	// responsible for. A full analyzer covers [0, machines); partial
	// analyzers built by NewStreamAnalyzerRange cover a sub-range and are
	// combined with MergeFrom. counts[i] belongs to machine lo+i.
	lo, hi MachineID

	counts     []CauseCounts
	urrTotal   int
	urrReboots int
	events     int

	hourly map[sim.DayType]*stats.GroupedBins
	ivLens map[sim.DayType][]float64

	// Streaming interval extraction state for the machine currently being
	// consumed: the availability cursor and the open coalesce run.
	cur        MachineID
	started    bool
	cursor     sim.Time
	runStart   sim.Time
	runEnd     sim.Time
	runOpen    bool
	lastStart  sim.Time
	finished   bool
	rebootsCut time.Duration

	// met, when non-nil (see Instrument), mirrors the accumulation into a
	// scrapable obs registry without affecting any computed result.
	met *streamMetrics
}

// NewStreamAnalyzer creates an analyzer for a stream covering span with the
// given calendar and machine count (IDs 0..machines-1).
func NewStreamAnalyzer(span sim.Window, cal sim.Calendar, machines int) *StreamAnalyzer {
	return NewStreamAnalyzerRange(span, cal, machines, 0, MachineID(machines))
}

// NewStreamAnalyzerRange creates a partial analyzer responsible for the
// machine range [lo, hi) of a machines-wide fleet: it accepts only events
// of those machines and credits idle intervals only for them. Partials over
// adjacent ranges combine with MergeFrom into exactly the analyzer a single
// full pass would have produced — the associativity the parallel scan
// relies on.
func NewStreamAnalyzerRange(span sim.Window, cal sim.Calendar, machines int, lo, hi MachineID) *StreamAnalyzer {
	if lo < 0 || hi < lo || (machines > 0 && int(hi) > machines) {
		panic(fmt.Sprintf("trace: analyzer range [%d, %d) outside fleet of %d", lo, hi, machines))
	}
	a := &StreamAnalyzer{
		span:       span,
		cal:        cal,
		machines:   machines,
		lo:         lo,
		hi:         hi,
		counts:     make([]CauseCounts, hi-lo),
		hourly:     map[sim.DayType]*stats.GroupedBins{sim.Weekday: stats.NewGroupedBins(24), sim.Weekend: stats.NewGroupedBins(24)},
		ivLens:     make(map[sim.DayType][]float64),
		rebootsCut: DefaultRebootCutoff,
	}
	// Make every day of the span present in its day type's bins, so quiet
	// days count as zeros — mirroring HourlyOccurrences.
	if span.End > span.Start {
		startDay := cal.DayIndex(span.Start)
		endDay := cal.DayIndex(span.End - 1)
		for d := startDay; d <= endDay; d++ {
			dayStart := sim.Time(d) * sim.Day
			a.hourly[cal.DayType(dayStart)].Touch(d)
		}
	}
	return a
}

// NewStreamAnalyzerFor creates an analyzer matching a decoded codec header.
func NewStreamAnalyzerFor(h Header) *StreamAnalyzer {
	return NewStreamAnalyzer(h.Span, h.Calendar, h.Machines)
}

// Observe consumes one event. Events must arrive sorted by
// (machine, start); out-of-order input is rejected.
func (a *StreamAnalyzer) Observe(e Event) error {
	if a.finished {
		return fmt.Errorf("trace: StreamAnalyzer observed an event after Finish")
	}
	if err := e.Validate(); err != nil {
		return err
	}
	if e.Machine < 0 || (a.machines > 0 && int(e.Machine) >= a.machines) {
		return fmt.Errorf("trace: event machine %d outside 0..%d", e.Machine, a.machines-1)
	}
	if e.Machine < a.lo || (a.machines > 0 && e.Machine >= a.hi) {
		return fmt.Errorf("trace: event machine %d outside analyzer range [%d, %d)", e.Machine, a.lo, a.hi)
	}
	if a.started {
		if e.Machine < a.cur || (e.Machine == a.cur && e.Start < a.lastStart) {
			return fmt.Errorf("trace: StreamAnalyzer needs (machine, start)-sorted input; got machine %d start %v after machine %d start %v",
				e.Machine, e.Start, a.cur, a.lastStart)
		}
		if e.Machine != a.cur {
			a.closeMachine()
			a.creditIdle(a.cur+1, e.Machine)
			a.cur = e.Machine
		}
	} else {
		a.started = true
		a.creditIdle(a.lo, e.Machine)
		a.cur = e.Machine
		a.cursor = a.span.Start
	}
	a.lastStart = e.Start

	a.noteEvent(e)

	// Table 2 accumulation. A header with an unknown fleet size (machines
	// 0) grows the counts on demand.
	a.events++
	for int(e.Machine-a.lo) >= len(a.counts) {
		a.counts = append(a.counts, CauseCounts{})
	}
	c := &a.counts[e.Machine-a.lo]
	c.Total++
	switch e.Cause() {
	case availability.CauseCPU:
		c.CPU++
	case availability.CauseMemory:
		c.Memory++
	case availability.CauseRevocation:
		c.URR++
	}
	if e.State == availability.S5 {
		a.urrTotal++
		if e.Duration() < a.rebootsCut {
			a.urrReboots++
		}
	}

	// Figure 7 accumulation: count the event once in every hour it touches.
	hStart := e.Start / time.Hour
	hEnd := (e.End - 1) / time.Hour
	if e.End <= e.Start {
		hEnd = hStart
	}
	for h := hStart; h <= hEnd; h++ {
		at := sim.Time(h) * time.Hour
		a.hourly[a.cal.DayType(at)].Add(a.cal.DayIndex(at), a.cal.HourOfDay(at), 1)
	}

	// Figure 6 accumulation: extend or close the current coalesce run.
	if a.runOpen && e.Start <= a.runEnd {
		if e.End > a.runEnd {
			a.runEnd = e.End
		}
		return nil
	}
	if a.runOpen {
		a.emitRun()
	}
	a.runStart, a.runEnd, a.runOpen = e.Start, e.End, true
	return nil
}

// emitRun clips the closed coalesce run to the span and records the
// availability interval preceding it, advancing the cursor — the streaming
// form of Trace.Intervals.
func (a *StreamAnalyzer) emitRun() {
	s, en := a.runStart, a.runEnd
	a.runOpen = false
	if en <= a.span.Start || s >= a.span.End {
		return
	}
	if s < a.span.Start {
		s = a.span.Start
	}
	if en > a.span.End {
		en = a.span.End
	}
	if s > a.cursor {
		a.addInterval(a.cursor, s)
	}
	if en > a.cursor {
		a.cursor = en
	}
}

// closeMachine flushes the open run and trailing interval of the machine
// being consumed, and resets the cursor for the next one.
func (a *StreamAnalyzer) closeMachine() {
	if a.runOpen {
		a.emitRun()
	}
	if a.cursor < a.span.End {
		a.addInterval(a.cursor, a.span.End)
	}
	a.cursor = a.span.Start
}

// addInterval records one availability interval for Figure 6.
func (a *StreamAnalyzer) addInterval(start, end sim.Time) {
	dt := a.cal.DayType(start)
	h := (end - start).Hours()
	a.ivLens[dt] = append(a.ivLens[dt], h)
	a.noteInterval(dt, h)
}

// creditIdle records one full-span availability interval for each machine
// in [from, to) — machines the sorted stream skipped over because they have
// no events. Crediting them in id order keeps the interval sequence
// identical to Trace.AllIntervals.
func (a *StreamAnalyzer) creditIdle(from, to MachineID) {
	if a.span.End <= a.span.Start {
		return
	}
	for m := from; m < to; m++ {
		a.addInterval(a.span.Start, a.span.End)
	}
}

// Finish closes the last machine's intervals and credits the trailing
// machines that never appeared in the stream. It must be called exactly
// once, after the last Observe.
func (a *StreamAnalyzer) Finish() {
	if a.finished {
		return
	}
	a.finished = true
	if a.started {
		a.closeMachine()
		a.creditIdle(a.cur+1, a.hi)
	} else {
		a.creditIdle(a.lo, a.hi)
	}
}

// Events returns how many events were observed.
func (a *StreamAnalyzer) Events() int { return a.events }

// Machines returns the analyzed machine count.
func (a *StreamAnalyzer) Machines() int { return a.machines }

// Span returns the analyzed observation window.
func (a *StreamAnalyzer) Span() sim.Window { return a.span }

// MachineDays returns the machine-days covered by the analyzed span.
func (a *StreamAnalyzer) MachineDays() float64 {
	return float64(a.machines) * float64(a.span.Duration()) / float64(sim.Day)
}

// Table2 reproduces Trace.MakeTable2 from the accumulated counts. On a
// partial analyzer the ranges cover only the machines in [lo, hi).
func (a *StreamAnalyzer) Table2() Table2 {
	a.mustBeFinished()
	tb := Table2{RebootCutoff: a.rebootsCut}
	first := true
	for m := 0; m < len(a.counts); m++ {
		c := a.counts[m]
		if first {
			tb.Total = Range{c.Total, c.Total}
			tb.CPU = Range{c.CPU, c.CPU}
			tb.Memory = Range{c.Memory, c.Memory}
			tb.URR = Range{c.URR, c.URR}
			if c.Total > 0 {
				tb.CPUPct = [2]float64{pct(c.CPU, c.Total), pct(c.CPU, c.Total)}
				tb.MemoryPct = [2]float64{pct(c.Memory, c.Total), pct(c.Memory, c.Total)}
				tb.URRPct = [2]float64{pct(c.URR, c.Total), pct(c.URR, c.Total)}
			}
			first = false
			continue
		}
		tb.Total = widen(tb.Total, c.Total)
		tb.CPU = widen(tb.CPU, c.CPU)
		tb.Memory = widen(tb.Memory, c.Memory)
		tb.URR = widen(tb.URR, c.URR)
		if c.Total > 0 {
			tb.CPUPct = widenPct(tb.CPUPct, pct(c.CPU, c.Total))
			tb.MemoryPct = widenPct(tb.MemoryPct, pct(c.Memory, c.Total))
			tb.URRPct = widenPct(tb.URRPct, pct(c.URR, c.Total))
		}
	}
	if a.urrTotal > 0 {
		tb.RebootShare = float64(a.urrReboots) / float64(a.urrTotal)
	}
	return tb
}

// CountByCause returns the accumulated per-machine Table 2 counts.
func (a *StreamAnalyzer) CountByCause() map[MachineID]CauseCounts {
	out := make(map[MachineID]CauseCounts)
	for m, c := range a.counts {
		if c.Total > 0 {
			out[a.lo+MachineID(m)] = c
		}
	}
	return out
}

// Range returns the machine range [lo, hi) the analyzer covers.
func (a *StreamAnalyzer) Range() (lo, hi MachineID) { return a.lo, a.hi }

// MergeFrom folds the finished partial analyzer b, covering the machine
// range immediately after a's, into a — afterwards a covers [a.lo, b.hi)
// and every query answers exactly as a single serial pass over the combined
// range would have. Merging is associative: any grouping of adjacent
// partials yields the identical result, which is what lets the parallel
// scanner combine partials as workers finish. b must not be used again.
// Instrumentation (Instrument) is per-partial and is not merged.
func (a *StreamAnalyzer) MergeFrom(b *StreamAnalyzer) error {
	if !a.finished || !b.finished {
		return fmt.Errorf("trace: MergeFrom needs both analyzers finished")
	}
	if a.span != b.span || a.cal != b.cal || a.machines != b.machines {
		return fmt.Errorf("trace: MergeFrom over mismatched traces (%v/%d vs %v/%d)", a.span, a.machines, b.span, b.machines)
	}
	if a.rebootsCut != b.rebootsCut {
		return fmt.Errorf("trace: MergeFrom over mismatched reboot cutoffs")
	}
	if b.lo != a.hi {
		return fmt.Errorf("trace: MergeFrom ranges not adjacent: [%d, %d) then [%d, %d)", a.lo, a.hi, b.lo, b.hi)
	}
	// Machine-indexed state concatenates; scalar tallies add; the hourly
	// bins sum per (day, hour) cell. Interval samples append in machine
	// order, preserving the exact sequence a serial pass emits.
	a.counts = append(a.counts, b.counts...)
	a.urrTotal += b.urrTotal
	a.urrReboots += b.urrReboots
	a.events += b.events
	for dt, lens := range b.ivLens {
		a.ivLens[dt] = append(a.ivLens[dt], lens...)
	}
	for dt, bins := range b.hourly {
		if err := a.hourly[dt].MergeFrom(bins); err != nil {
			return err
		}
	}
	a.hi = b.hi
	return nil
}

// IntervalLengths returns the accumulated interval durations (hours) for a
// day type, matching Trace.IntervalLengths as a multiset.
func (a *StreamAnalyzer) IntervalLengths(dt sim.DayType) []float64 {
	a.mustBeFinished()
	return a.ivLens[dt]
}

// IntervalECDF builds the Figure 6 curve from the accumulated intervals.
func (a *StreamAnalyzer) IntervalECDF(dt sim.DayType) *stats.ECDF {
	a.mustBeFinished()
	return stats.NewECDF(a.ivLens[dt])
}

// HourlyOccurrences reproduces Trace.HourlyOccurrences for one day type.
func (a *StreamAnalyzer) HourlyOccurrences(dt sim.DayType) []stats.Summary {
	a.mustBeFinished()
	return a.hourly[dt].Summarize()
}

func (a *StreamAnalyzer) mustBeFinished() {
	if !a.finished {
		panic("trace: StreamAnalyzer queried before Finish")
	}
}

// Drain consumes an event source — a Decoder or MergeReader — until io.EOF
// and finishes the analyzer.
func (a *StreamAnalyzer) Drain(next func() (Event, error)) error {
	for {
		e, err := next()
		if errors.Is(err, io.EOF) {
			a.Finish()
			return nil
		}
		if err != nil {
			return err
		}
		if err := a.Observe(e); err != nil {
			return err
		}
	}
}
