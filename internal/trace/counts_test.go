package trace

import (
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/sim"
)

func TestHourlyCountsMatchesLinearScan(t *testing.T) {
	tr := randomTrace(30, 1500)
	tr.Sort()
	hc := tr.BuildHourlyCounts()
	ix := tr.BuildIndex()
	for m := 0; m < tr.Machines; m++ {
		id := MachineID(m)
		for start := sim.Time(0); start+3*time.Hour <= tr.Span.End; start += 7 * time.Hour {
			w := sim.Window{Start: start, End: start + 3*time.Hour}
			n, ok := hc.CountInWindow(id, w)
			if !ok {
				t.Fatalf("aligned window %v reported unanswerable", w)
			}
			if want := tr.OccurrencesInWindow(id, w); n != want {
				t.Fatalf("machine %d window %v: matrix %d, linear %d", m, w, n, want)
			}
			if want := ix.CountInWindow(id, w); n != want {
				t.Fatalf("machine %d window %v: matrix %d, index %d", m, w, n, want)
			}
		}
	}
}

func TestHourlyCountsRejectsMisaligned(t *testing.T) {
	tr := randomTrace(31, 100)
	tr.Sort()
	hc := tr.BuildHourlyCounts()
	cases := []sim.Window{
		{Start: 30 * time.Minute, End: 2 * time.Hour},
		{Start: time.Hour, End: 90 * time.Minute},
		{Start: time.Hour + time.Nanosecond, End: 3 * time.Hour},
	}
	for _, w := range cases {
		if _, ok := hc.CountInWindow(0, w); ok {
			t.Errorf("misaligned window %v answered by the matrix", w)
		}
	}
}

func TestHourlyCountsOutOfRange(t *testing.T) {
	tr := randomTrace(32, 100)
	tr.Sort()
	hc := tr.BuildHourlyCounts()
	w := sim.Window{Start: time.Hour, End: 2 * time.Hour}
	if _, ok := hc.CountInWindow(-1, w); ok {
		t.Error("negative machine answered")
	}
	// Machines beyond the matrix have no events by construction: exact zero.
	if n, ok := hc.CountInWindow(MachineID(tr.Machines+5), w); !ok || n != 0 {
		t.Errorf("machine past the fleet: got (%d, %v), want (0, true)", n, ok)
	}
	// Windows clamped outside the covered hour range count nothing.
	far := sim.Window{Start: 1000 * sim.Day, End: 1001 * sim.Day}
	if n, ok := hc.CountInWindow(0, far); !ok || n != 0 {
		t.Errorf("window past the span: got (%d, %v), want (0, true)", n, ok)
	}
}

func TestHourlyCountsNegativeTimes(t *testing.T) {
	tr := New(sim.Window{Start: -2 * sim.Day, End: 2 * sim.Day}, sim.Calendar{}, 2)
	tr.Add(Event{Machine: 0, Start: -25 * time.Hour, End: -24*time.Hour - 30*time.Minute, State: availability.S3})
	tr.Add(Event{Machine: 0, Start: -time.Hour, End: time.Hour, State: availability.S4})
	tr.Add(Event{Machine: 1, Start: 5 * time.Hour, End: 6 * time.Hour, State: availability.S5})
	tr.Sort()
	hc := tr.BuildHourlyCounts()
	for _, tc := range []struct {
		m    MachineID
		w    sim.Window
		want int
	}{
		{0, sim.Window{Start: -26 * time.Hour, End: -24 * time.Hour}, 1},
		{0, sim.Window{Start: -2 * time.Hour, End: 0}, 1},
		{0, sim.Window{Start: 0, End: 2 * time.Hour}, 0}, // started before the window
		{1, sim.Window{Start: -2 * sim.Day, End: 2 * sim.Day}, 1},
	} {
		n, ok := hc.CountInWindow(tc.m, tc.w)
		if !ok || n != tc.want {
			t.Errorf("machine %d window %v: got (%d, %v), want (%d, true); linear says %d",
				tc.m, tc.w, n, ok, tc.want, tr.OccurrencesInWindow(tc.m, tc.w))
		}
	}
}

func TestIndexNextEventAfterMatchesLinear(t *testing.T) {
	tr := randomTrace(33, 400)
	tr.Sort()
	ix := tr.BuildIndex()
	for m := 0; m < tr.Machines; m++ {
		id := MachineID(m)
		for ts := sim.Time(0); ts < tr.Span.End; ts += 13 * time.Hour {
			ge, gok := ix.NextEventAfter(id, ts)
			we, wok := tr.NextEventAfter(id, ts)
			if gok != wok || (gok && ge != we) {
				t.Fatalf("NextEventAfter(%d, %v): index (%+v, %v), linear (%+v, %v)",
					m, ts, ge, gok, we, wok)
			}
		}
	}
}

func TestIndexAnyOverlapMatchesLinear(t *testing.T) {
	tr := randomTrace(34, 400)
	tr.Sort()
	ix := tr.BuildIndex()
	for m := 0; m < tr.Machines; m++ {
		id := MachineID(m)
		for start := sim.Time(0); start+2*time.Hour <= tr.Span.End; start += 11 * time.Hour {
			w := sim.Window{Start: start, End: start + 2*time.Hour}
			if got, want := ix.AnyOverlap(id, w), tr.AnyOverlap(id, w); got != want {
				t.Fatalf("AnyOverlap(%d, %v): index %v, linear %v", m, w, got, want)
			}
		}
	}
}
