package trace

import (
	"time"

	"repro/internal/availability"
	"repro/internal/sim"
	"repro/internal/stats"
)

// CauseCounts are per-machine unavailability counts by root cause — one row
// of the paper's Table 2 for a single machine.
type CauseCounts struct {
	Total  int
	CPU    int
	Memory int
	URR    int
}

// CountByCause tallies events per machine and cause.
func (t *Trace) CountByCause() map[MachineID]CauseCounts {
	out := make(map[MachineID]CauseCounts)
	for _, e := range t.Events {
		c := out[e.Machine]
		c.Total++
		switch e.Cause() {
		case availability.CauseCPU:
			c.CPU++
		case availability.CauseMemory:
			c.Memory++
		case availability.CauseRevocation:
			c.URR++
		}
		out[e.Machine] = c
	}
	return out
}

// Range is a min..max band over the machines of a testbed, the form in
// which Table 2 reports every quantity.
type Range struct {
	Min, Max int
}

// Table2 reproduces the paper's Table 2: the per-machine frequency of
// unavailability by cause, as ranges across all machines, plus the derived
// percentage bands.
type Table2 struct {
	Total  Range
	CPU    Range
	Memory Range
	URR    Range
	// Percentage bands relative to each machine's total.
	CPUPct    [2]float64
	MemoryPct [2]float64
	URRPct    [2]float64
	// RebootShare is the fraction of URR events that look like reboots
	// (outage shorter than RebootCutoff); the paper reports ~90%.
	RebootShare  float64
	RebootCutoff time.Duration
}

// DefaultRebootCutoff separates machine reboots from hardware/software
// failures by outage length, per Section 5.1 ("URR with intervals shorter
// than one minute" are reboots).
const DefaultRebootCutoff = time.Minute

// MakeTable2 computes Table 2 over all machines in the trace.
func (t *Trace) MakeTable2() Table2 {
	byMachine := t.CountByCause()
	tb := Table2{RebootCutoff: DefaultRebootCutoff}
	first := true
	for m := 0; m < t.Machines; m++ {
		c := byMachine[MachineID(m)]
		if first {
			tb.Total = Range{c.Total, c.Total}
			tb.CPU = Range{c.CPU, c.CPU}
			tb.Memory = Range{c.Memory, c.Memory}
			tb.URR = Range{c.URR, c.URR}
			if c.Total > 0 {
				tb.CPUPct = [2]float64{pct(c.CPU, c.Total), pct(c.CPU, c.Total)}
				tb.MemoryPct = [2]float64{pct(c.Memory, c.Total), pct(c.Memory, c.Total)}
				tb.URRPct = [2]float64{pct(c.URR, c.Total), pct(c.URR, c.Total)}
			}
			first = false
			continue
		}
		tb.Total = widen(tb.Total, c.Total)
		tb.CPU = widen(tb.CPU, c.CPU)
		tb.Memory = widen(tb.Memory, c.Memory)
		tb.URR = widen(tb.URR, c.URR)
		if c.Total > 0 {
			tb.CPUPct = widenPct(tb.CPUPct, pct(c.CPU, c.Total))
			tb.MemoryPct = widenPct(tb.MemoryPct, pct(c.Memory, c.Total))
			tb.URRPct = widenPct(tb.URRPct, pct(c.URR, c.Total))
		}
	}

	// Reboot share among URR events.
	urrTotal, reboots := 0, 0
	for _, e := range t.Events {
		if e.State == availability.S5 {
			urrTotal++
			if e.Duration() < tb.RebootCutoff {
				reboots++
			}
		}
	}
	if urrTotal > 0 {
		tb.RebootShare = float64(reboots) / float64(urrTotal)
	}
	return tb
}

// pct is the share of part in total, with an empty total reading as 0%
// rather than NaN so zero-event machines produce clean Table 2 rows.
func pct(part, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(part) / float64(total)
}

func widen(r Range, v int) Range {
	if v < r.Min {
		r.Min = v
	}
	if v > r.Max {
		r.Max = v
	}
	return r
}

func widenPct(r [2]float64, v float64) [2]float64 {
	if v < r[0] {
		r[0] = v
	}
	if v > r[1] {
		r[1] = v
	}
	return r
}

// IntervalECDF builds the Figure 6 curve: the empirical CDF of
// availability-interval lengths (in hours) for intervals that begin on a
// day of the given type.
func (t *Trace) IntervalECDF(dt sim.DayType) *stats.ECDF {
	var hours []float64
	for _, iv := range t.AllIntervals() {
		if t.Calendar.DayType(iv.Start) != dt {
			continue
		}
		hours = append(hours, iv.Duration().Hours())
	}
	return stats.NewECDF(hours)
}

// IntervalLengths returns the interval durations (hours) for a day type,
// for callers that want raw samples rather than the ECDF.
func (t *Trace) IntervalLengths(dt sim.DayType) []float64 {
	var hours []float64
	for _, iv := range t.AllIntervals() {
		if t.Calendar.DayType(iv.Start) == dt {
			hours = append(hours, iv.Duration().Hours())
		}
	}
	return hours
}

// HourlyOccurrences reproduces Figure 7 for one day type: for each hour of
// day, the mean and min..max range (across the days of that type in the
// trace) of the number of unavailability occurrences in that hour, summed
// over all machines. An event spanning multiple hours is counted once in
// every hour interval it touches, exactly as the paper specifies.
func (t *Trace) HourlyOccurrences(dt sim.DayType) []stats.Summary {
	g := stats.NewGroupedBins(24)
	// Make every day of this type present so quiet days count as zeros.
	startDay := t.Calendar.DayIndex(t.Span.Start)
	endDay := t.Calendar.DayIndex(t.Span.End - 1)
	for d := startDay; d <= endDay; d++ {
		dayStart := sim.Time(d) * sim.Day
		if t.Calendar.DayType(dayStart) == dt {
			g.Touch(d)
		}
	}
	for _, e := range t.Events {
		// Walk the hour bins the event overlaps.
		hStart := e.Start / time.Hour
		hEnd := (e.End - 1) / time.Hour
		if e.End <= e.Start {
			hEnd = hStart
		}
		for h := hStart; h <= hEnd; h++ {
			at := sim.Time(h) * time.Hour
			if t.Calendar.DayType(at) != dt {
				continue
			}
			day := t.Calendar.DayIndex(at)
			hour := t.Calendar.HourOfDay(at)
			g.Add(day, hour, 1)
		}
	}
	return g.Summarize()
}

// OccurrencesInWindow counts the unavailability events of machine m that
// start within [w.Start, w.End) — the ground truth the predictors are
// evaluated against.
func (t *Trace) OccurrencesInWindow(m MachineID, w sim.Window) int {
	n := 0
	for _, e := range t.Events {
		if e.Machine == m && e.Start >= w.Start && e.Start < w.End {
			n++
		}
	}
	return n
}

// AnyOverlap reports whether machine m has an unavailability event
// overlapping window w (i.e. whether a guest running through w would fail).
func (t *Trace) AnyOverlap(m MachineID, w sim.Window) bool {
	for _, e := range t.Events {
		if e.Machine == m && e.Start < w.End && e.End > w.Start {
			return true
		}
	}
	return false
}

// NextEventAfter returns the first event of machine m starting at or after
// ts, and whether one exists. Ties on start time resolve to the earliest
// end — the (start, end) order Sort and Index use — so the answer does not
// depend on the order events happen to be stored in.
func (t *Trace) NextEventAfter(m MachineID, ts sim.Time) (Event, bool) {
	best := Event{}
	found := false
	for _, e := range t.Events {
		if e.Machine != m || e.Start < ts {
			continue
		}
		if !found || e.Start < best.Start || (e.Start == best.Start && e.End < best.End) {
			best = e
			found = true
		}
	}
	return best, found
}

// HourlyCountSeries returns the fleet-wide unavailability counts per hour
// over the whole span, one entry per hour of observation (events spanning
// several hours count once per hour, as in Figure 7). A partial final hour
// gets its own entry — the span length rounds up to whole hours — so
// events in the span tail are never silently dropped from the daily and
// weekly autocorrelation series. Feeding this series to
// stats.AutoCorrelation at lags of 24 and 168 hours quantifies the
// paper's daily- and weekly-pattern claim directly.
func (t *Trace) HourlyCountSeries() []float64 {
	hours := int((t.Span.Duration() + time.Hour - 1) / time.Hour)
	if hours <= 0 {
		return nil
	}
	out := make([]float64, hours)
	for _, e := range t.Events {
		hStart := int(e.Start / time.Hour)
		hEnd := int((e.End - 1) / time.Hour)
		if e.End <= e.Start {
			hEnd = hStart
		}
		for h := hStart; h <= hEnd; h++ {
			if h >= 0 && h < hours {
				out[h]++
			}
		}
	}
	return out
}
