package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestDecoderTruncatedAtEveryOffset cuts a valid stream at every byte
// offset and asserts crash-recovery semantics at each: the decoder yields
// exactly the events whose records are complete — always a prefix of the
// original, never a garbled record — and then reports ErrTruncated, unless
// the cut lands precisely on a record boundary, where a clean io.EOF is the
// only honest answer (the stream is indistinguishable from a shorter one).
func TestDecoderTruncatedAtEveryOffset(t *testing.T) {
	tr := randomTrace(17, 60)
	tr.Sort()

	// Re-encode event by event to learn every record boundary offset.
	var buf bytes.Buffer
	enc, err := NewEncoder(&buf, Header{Span: tr.Span, Calendar: tr.Calendar, Machines: tr.Machines})
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	headerLen := buf.Len()
	boundary := map[int]bool{headerLen: true}
	for _, ev := range tr.Events {
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		boundary[buf.Len()] = true
	}
	full := buf.Bytes()

	for off := 0; off < len(full); off++ {
		cut := full[:off]
		dec, err := NewDecoder(bytes.NewReader(cut))
		if off < headerLen {
			if err == nil {
				t.Fatalf("offset %d: decoder accepted a truncated header", off)
			}
			if !errors.Is(err, ErrTruncated) {
				t.Fatalf("offset %d: header error %v does not wrap ErrTruncated", off, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("offset %d: NewDecoder: %v", off, err)
		}
		n := 0
		for {
			ev, err := dec.Next()
			if err != nil {
				if boundary[off] {
					if err != io.EOF {
						t.Fatalf("offset %d is a record boundary, want io.EOF, got %v", off, err)
					}
				} else if !errors.Is(err, ErrTruncated) {
					t.Fatalf("offset %d: error %v does not wrap ErrTruncated", off, err)
				}
				break
			}
			if n >= len(tr.Events) || ev != tr.Events[n] {
				t.Fatalf("offset %d: decoded event %d = %+v is not a prefix of the original", off, n, ev)
			}
			n++
		}
	}
}

// TestReadBinaryPropagatesTruncation pins that the whole-trace reader
// surfaces the typed error, so callers salvaging a crashed shard can tell
// truncation from corruption without string matching.
func TestReadBinaryPropagatesTruncation(t *testing.T) {
	tr := randomTrace(18, 20)
	tr.Sort()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := ReadBinary(bytes.NewReader(buf.Bytes()[:buf.Len()-3]))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("ReadBinary on a cut stream: %v, want ErrTruncated", err)
	}
}
