package trace

import (
	"sort"

	"repro/internal/sim"
)

// Index accelerates per-machine window queries over a trace from O(events)
// to O(log events). Build it once per trace; it is immutable afterwards and
// safe for concurrent readers.
type Index struct {
	byStart map[MachineID][]Event    // sorted by Start
	maxEnd  map[MachineID][]sim.Time // prefix maxima of End over byStart
	byEnd   map[MachineID][]sim.Time // event End times, sorted
	maxDur  map[MachineID]sim.Time   // longest event duration
}

// BuildIndex indexes the trace's events per machine.
func (t *Trace) BuildIndex() *Index {
	ix := &Index{
		byStart: make(map[MachineID][]Event),
		maxEnd:  make(map[MachineID][]sim.Time),
		byEnd:   make(map[MachineID][]sim.Time),
		maxDur:  make(map[MachineID]sim.Time),
	}
	for _, e := range t.Events {
		ix.byStart[e.Machine] = append(ix.byStart[e.Machine], e)
	}
	for m, evs := range ix.byStart {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].Start != evs[j].Start {
				return evs[i].Start < evs[j].Start
			}
			return evs[i].End < evs[j].End
		})
		prefix := make([]sim.Time, len(evs))
		ends := make([]sim.Time, len(evs))
		var max sim.Time
		var maxDur sim.Time
		for i, e := range evs {
			if i == 0 || e.End > max {
				max = e.End
			}
			prefix[i] = max
			ends[i] = e.End
			if d := e.End - e.Start; d > maxDur {
				maxDur = d
			}
		}
		sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
		ix.byStart[m] = evs
		ix.maxEnd[m] = prefix
		ix.byEnd[m] = ends
		ix.maxDur[m] = maxDur
	}
	return ix
}

// FirstOverlap returns the event of machine m whose overlap with w begins
// earliest, and whether any event overlaps at all. An event already open at
// w.Start wins over one that starts later inside the window.
func (ix *Index) FirstOverlap(m MachineID, w sim.Window) (Event, bool) {
	evs := ix.byStart[m]
	first := sort.Search(len(evs), func(i int) bool { return evs[i].Start >= w.Start })
	// Events starting before w.Start may still be open at w.Start; only
	// events within maxDur of w.Start can qualify, which bounds the
	// backward scan.
	horizon := w.Start - ix.maxDur[m]
	var best Event
	found := false
	for j := first - 1; j >= 0 && evs[j].Start >= horizon; j-- {
		if evs[j].End > w.Start {
			best = evs[j]
			found = true
			// Keep scanning: an even earlier event could still be open,
			// but any open event overlaps at w.Start, so one hit is
			// enough — overlap start is w.Start either way.
			break
		}
	}
	if found {
		return best, true
	}
	// An event starting inside [w.Start, w.End) genuinely overlaps unless
	// it is zero-length and sits exactly on w.Start (End == w.Start, since
	// End >= Start >= w.Start). Those sort first among equal starts, so
	// skip past them rather than returning a non-overlapping event — or
	// worse, shadowing a real overlap later in the window.
	for j := first; j < len(evs) && evs[j].Start < w.End; j++ {
		if evs[j].End > w.Start {
			return evs[j], true
		}
	}
	return Event{}, false
}

// CountInWindow returns how many events of machine m start in
// [w.Start, w.End).
func (ix *Index) CountInWindow(m MachineID, w sim.Window) int {
	evs := ix.byStart[m]
	lo := sort.Search(len(evs), func(i int) bool { return evs[i].Start >= w.Start })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].Start >= w.End })
	return hi - lo
}

// OverlapExists reports whether any event of machine m overlaps w.
func (ix *Index) OverlapExists(m MachineID, w sim.Window) bool {
	evs := ix.byStart[m]
	// Candidate events start before w.End.
	k := sort.Search(len(evs), func(i int) bool { return evs[i].Start >= w.End })
	if k == 0 {
		return false
	}
	// Among them, some event overlaps iff the largest End exceeds w.Start.
	return ix.maxEnd[m][k-1] > w.Start
}

// AnyOverlap is OverlapExists under the name Trace uses, so indexed and
// linear ground-truth call sites read the same.
func (ix *Index) AnyOverlap(m MachineID, w sim.Window) bool {
	return ix.OverlapExists(m, w)
}

// NextEventAfter returns the first event of machine m starting at or after
// ts, and whether one exists — the O(log n) form of Trace.NextEventAfter.
func (ix *Index) NextEventAfter(m MachineID, ts sim.Time) (Event, bool) {
	evs := ix.byStart[m]
	k := sort.Search(len(evs), func(i int) bool { return evs[i].Start >= ts })
	if k == len(evs) {
		return Event{}, false
	}
	return evs[k], true
}

// LastEndBefore returns the latest event end time of machine m at or
// before t, and whether one exists.
func (ix *Index) LastEndBefore(m MachineID, t sim.Time) (sim.Time, bool) {
	ends := ix.byEnd[m]
	k := sort.Search(len(ends), func(i int) bool { return ends[i] > t })
	if k == 0 {
		return 0, false
	}
	return ends[k-1], true
}
