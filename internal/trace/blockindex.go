package trace

import (
	"sort"
	"time"

	"repro/internal/sim"
)

// BlockIndex serves the Index point-query API — FirstOverlap, CountInWindow,
// OverlapExists/AnyOverlap, NextEventAfter, LastEndBefore — straight off a
// v2 block file, without materializing a *Trace. Per-machine sub-indexes are
// built lazily on first touch: the block summaries prune the decode to the
// contiguous run of blocks that contain the machine (events are sorted by
// machine, so each machine's blocks are adjacent), which is what makes point
// queries over a large file cheap. Answers are identical to BuildIndex over
// the same events.
//
// BlockIndex is not safe for concurrent use; build one per goroutine (they
// can share the BlockFile, which is).
type BlockIndex struct {
	bf      *BlockFile
	buf     BlockBuf
	cache   map[MachineID]*machinePointIndex
	blocks  map[int][]Event
	decoded int
	err     error
}

// machinePointIndex mirrors Index's per-machine state, plus the machine's
// row of the hourly-count prefix matrix so hour-aligned window counts are
// O(1) — the same fast path Evaluate gets from Trace.BuildHourlyCounts.
type machinePointIndex struct {
	byStart []Event    // sorted by (Start, End) — file order
	maxEnd  []sim.Time // prefix maxima of End over byStart
	byEnd   []sim.Time // event End times, sorted
	maxDur  sim.Time
	loHour  int64
	hours   []int32 // hours[h] counts starts before hour loHour+h
}

// NewBlockIndex creates a lazy point-query index over bf.
func NewBlockIndex(bf *BlockFile) *BlockIndex {
	return &BlockIndex{
		bf:     bf,
		cache:  make(map[MachineID]*machinePointIndex),
		blocks: make(map[int][]Event),
	}
}

// BlocksDecoded returns how many block decodes all queries so far have cost
// — the quantity the summaries exist to minimize.
func (ix *BlockIndex) BlocksDecoded() int { return ix.decoded }

// Err returns the first block decode error encountered, if any. Queries on
// a machine whose blocks failed to decode answer from the events decoded
// before the failure.
func (ix *BlockIndex) Err() error { return ix.err }

// block returns block i's decoded events, decoding (and caching a copy) on
// first touch. Neighboring machines share blocks, so without the cache a
// sweep over the fleet would inflate every block once per machine in it;
// with it each block pays its decode exactly once per index lifetime. The
// copy is required because DecodeBlock reuses the scratch buffer.
func (ix *BlockIndex) block(i int) ([]Event, error) {
	if evs, ok := ix.blocks[i]; ok {
		return evs, nil
	}
	ix.decoded++
	events, err := ix.bf.DecodeBlock(i, &ix.buf)
	if err != nil {
		return nil, err
	}
	cp := make([]Event, len(events))
	copy(cp, events)
	ix.blocks[i] = cp
	return cp, nil
}

// Scan streams every event matching f through visit in file order, exactly
// like BlockFile.Scan, but reads through the index's block cache — a block
// the scan decodes is free for later point queries and vice versa. decoded
// counts the admitted blocks (cache hits included), skipped the pruned ones.
func (ix *BlockIndex) Scan(f ScanFilter, visit func(Event) error) (decoded, skipped int, err error) {
	n := ix.bf.NumBlocks()
	for i := 0; i < n; i++ {
		if !f.AdmitBlock(ix.bf.Block(i)) {
			skipped++
			continue
		}
		decoded++
		events, err := ix.block(i)
		if err != nil {
			return decoded, skipped, err
		}
		for _, e := range events {
			if !f.AdmitEvent(e) {
				continue
			}
			if err := visit(e); err != nil {
				return decoded, skipped, err
			}
		}
	}
	return decoded, skipped, nil
}

// machine returns m's sub-index, building it on first use.
func (ix *BlockIndex) machine(m MachineID) *machinePointIndex {
	if mi, ok := ix.cache[m]; ok {
		return mi
	}
	mi := &machinePointIndex{}
	ix.cache[m] = mi
	// Block MaxMachine is nondecreasing in file order (the event stream is
	// machine-sorted), so m's blocks are the run starting at the first
	// block whose MaxMachine reaches m.
	n := ix.bf.NumBlocks()
	first := sort.Search(n, func(i int) bool { return ix.bf.Block(i).MaxMachine >= m })
	for i := first; i < n && ix.bf.Block(i).MinMachine <= m; i++ {
		if ix.bf.Block(i).Count == 0 {
			continue
		}
		events, err := ix.block(i)
		if err != nil {
			if ix.err == nil {
				ix.err = err
			}
			break
		}
		for _, e := range events {
			if e.Machine == m {
				mi.byStart = append(mi.byStart, e)
			}
		}
	}
	mi.maxEnd = make([]sim.Time, len(mi.byStart))
	mi.byEnd = make([]sim.Time, len(mi.byStart))
	var max sim.Time
	for i, e := range mi.byStart {
		if i == 0 || e.End > max {
			max = e.End
		}
		mi.maxEnd[i] = max
		mi.byEnd[i] = e.End
		if d := e.End - e.Start; d > mi.maxDur {
			mi.maxDur = d
		}
	}
	sort.Slice(mi.byEnd, func(i, j int) bool { return mi.byEnd[i] < mi.byEnd[j] })

	// Hourly prefix row, covering the span and every event start (the same
	// hour range BuildHourlyCounts would give this machine).
	span := ix.bf.Header().Span
	lo := floorHour(span.Start)
	hi := floorHour(span.End-1) + 1
	if span.End <= span.Start {
		hi = lo
	}
	for _, e := range mi.byStart {
		if h := floorHour(e.Start); h < lo {
			lo = h
		} else if h >= hi {
			hi = h + 1
		}
	}
	mi.loHour = lo
	mi.hours = make([]int32, int(hi-lo)+1)
	for _, e := range mi.byStart {
		mi.hours[floorHour(e.Start)-lo+1]++
	}
	for h := 1; h < len(mi.hours); h++ {
		mi.hours[h] += mi.hours[h-1]
	}
	return mi
}

// FirstOverlap matches Index.FirstOverlap: the event of machine m whose
// overlap with w begins earliest, preferring one already open at w.Start.
func (ix *BlockIndex) FirstOverlap(m MachineID, w sim.Window) (Event, bool) {
	mi := ix.machine(m)
	evs := mi.byStart
	first := sort.Search(len(evs), func(i int) bool { return evs[i].Start >= w.Start })
	horizon := w.Start - mi.maxDur
	for j := first - 1; j >= 0 && evs[j].Start >= horizon; j-- {
		if evs[j].End > w.Start {
			return evs[j], true
		}
	}
	for j := first; j < len(evs) && evs[j].Start < w.End; j++ {
		if evs[j].End > w.Start {
			return evs[j], true
		}
	}
	return Event{}, false
}

// CountInWindow matches Index.CountInWindow: events of m starting in
// [w.Start, w.End). Hour-aligned windows are answered from the prefix row
// in O(1); others fall back to the binary searches.
func (ix *BlockIndex) CountInWindow(m MachineID, w sim.Window) int {
	mi := ix.machine(m)
	if w.Start%time.Hour == 0 && w.End%time.Hour == 0 {
		a := floorHour(w.Start) - mi.loHour
		b := floorHour(w.End) - mi.loHour
		n := int64(len(mi.hours) - 1)
		a = min(max(a, 0), n)
		b = min(max(b, a), n)
		return int(mi.hours[b] - mi.hours[a])
	}
	evs := mi.byStart
	lo := sort.Search(len(evs), func(i int) bool { return evs[i].Start >= w.Start })
	hi := sort.Search(len(evs), func(i int) bool { return evs[i].Start >= w.End })
	return hi - lo
}

// OverlapExists matches Index.OverlapExists.
func (ix *BlockIndex) OverlapExists(m MachineID, w sim.Window) bool {
	mi := ix.machine(m)
	k := sort.Search(len(mi.byStart), func(i int) bool { return mi.byStart[i].Start >= w.End })
	if k == 0 {
		return false
	}
	return mi.maxEnd[k-1] > w.Start
}

// AnyOverlap is OverlapExists under the Trace-compatible name.
func (ix *BlockIndex) AnyOverlap(m MachineID, w sim.Window) bool {
	return ix.OverlapExists(m, w)
}

// NextEventAfter matches Index.NextEventAfter.
func (ix *BlockIndex) NextEventAfter(m MachineID, ts sim.Time) (Event, bool) {
	evs := ix.machine(m).byStart
	k := sort.Search(len(evs), func(i int) bool { return evs[i].Start >= ts })
	if k == len(evs) {
		return Event{}, false
	}
	return evs[k], true
}

// LastEndBefore matches Index.LastEndBefore.
func (ix *BlockIndex) LastEndBefore(m MachineID, t sim.Time) (sim.Time, bool) {
	ends := ix.machine(m).byEnd
	k := sort.Search(len(ends), func(i int) bool { return ends[i] > t })
	if k == 0 {
		return 0, false
	}
	return ends[k-1], true
}
