package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/availability"
	"repro/internal/sim"
)

// v2Bytes encodes tr in the v2 columnar codec.
func v2Bytes(t *testing.T, tr *Trace, opts *BlockWriterOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteBlocks(&buf, opts); err != nil {
		t.Fatalf("WriteBlocks: %v", err)
	}
	return buf.Bytes()
}

func TestBlockRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		opts *BlockWriterOptions
	}{
		{"defaults", nil},
		{"tiny-blocks", &BlockWriterOptions{BlockSize: 7}},
		{"single-event-blocks", &BlockWriterOptions{BlockSize: 1}},
		{"raw", &BlockWriterOptions{Compression: CompressionNone}},
		{"flate", &BlockWriterOptions{Compression: CompressionFlate, BlockSize: 64}},
	}
	tr := randomTrace(21, 900)
	tr.Sort()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := v2Bytes(t, tr, tc.opts)
			got, err := ReadBlocks(bytes.NewReader(b))
			if err != nil {
				t.Fatalf("ReadBlocks: %v", err)
			}
			if !tracesEqual(tr, got) {
				t.Error("v2 round trip lost data")
			}
			// The same bytes must also decode through the random-access
			// path.
			bf, err := NewBlockFileBytes(b)
			if err != nil {
				t.Fatalf("NewBlockFileBytes: %v", err)
			}
			if bf.Truncated() {
				t.Error("clean file reported truncated")
			}
			if bf.Events() != len(tr.Events) {
				t.Errorf("directory counts %d events, want %d", bf.Events(), len(tr.Events))
			}
			fromFile, err := CollectEvents(bf.Reader())
			if err != nil {
				t.Fatalf("block file reader: %v", err)
			}
			if !tracesEqual(tr, fromFile) {
				t.Error("block file reader lost data")
			}
		})
	}
}

func TestBlockRoundTripEmpty(t *testing.T) {
	tr := New(sim.Window{Start: 0, End: 3 * sim.Day}, sim.Calendar{StartWeekday: 4}, 5)
	b := v2Bytes(t, tr, nil)
	got, err := ReadBlocks(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("ReadBlocks: %v", err)
	}
	if !tracesEqual(tr, got) {
		t.Errorf("empty round trip changed metadata: %+v vs %+v", tr, got)
	}
	bf, err := NewBlockFileBytes(b)
	if err != nil {
		t.Fatalf("NewBlockFileBytes: %v", err)
	}
	if bf.NumBlocks() != 0 || bf.Truncated() {
		t.Errorf("empty file: %d blocks, truncated=%v", bf.NumBlocks(), bf.Truncated())
	}
}

// TestNewReaderSniffsVersion pins the version dispatch: both codecs load
// through the same entry point and yield the same events.
func TestNewReaderSniffsVersion(t *testing.T) {
	tr := randomTrace(3, 400)
	tr.Sort()
	var v1 bytes.Buffer
	if err := tr.WriteBinary(&v1); err != nil {
		t.Fatal(err)
	}
	for name, raw := range map[string][]byte{"v1": v1.Bytes(), "v2": v2Bytes(t, tr, nil)} {
		rd, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: NewReader: %v", name, err)
		}
		got, err := CollectEvents(rd)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !tracesEqual(tr, got) {
			t.Errorf("%s: NewReader path lost data", name)
		}
	}
}

// TestBlockFileSizeNotLargerThanV1 pins the acceptance bound: with auto
// compression a v2 file never exceeds the v1 encoding of the same trace,
// beyond a small constant for the directory and footer that vanishes on any
// realistically sized corpus.
func TestBlockFileSizeNotLargerThanV1(t *testing.T) {
	// Even on incompressible random payloads the per-file overhead stays
	// bounded; from a few thousand events up, flate's wins cover it. (The
	// check harness pins the strict bound on realistic testbed corpora.)
	const fixedOverhead = 128 // header delta + block/directory summaries + footer
	for _, n := range []int{0, 1, 50, 1000, 5000} {
		tr := randomTrace(int64(100+n), n)
		tr.Sort()
		var v1 bytes.Buffer
		if err := tr.WriteBinary(&v1); err != nil {
			t.Fatal(err)
		}
		v2 := v2Bytes(t, tr, nil)
		if n >= 5000 {
			if len(v2) > v1.Len() {
				t.Errorf("%d events: v2 file is %d bytes, v1 is %d", n, len(v2), v1.Len())
			}
		} else if len(v2) > v1.Len()+fixedOverhead {
			t.Errorf("%d events: v2 file is %d bytes, v1 + overhead allowance is %d", n, len(v2), v1.Len()+fixedOverhead)
		}
	}
}

func TestBlockFileScanPrunes(t *testing.T) {
	tr := randomTrace(33, 2000)
	// Confine S5 to the top machines so the per-block state masks have
	// pruning power (uniformly random states put all three in every block).
	for i := range tr.Events {
		if tr.Events[i].Machine >= 16 {
			tr.Events[i].State = availability.S5
		} else if i%2 == 0 {
			tr.Events[i].State = availability.S3
		} else {
			tr.Events[i].State = availability.S4
		}
	}
	tr.Sort()
	bf, err := NewBlockFileBytes(v2Bytes(t, tr, &BlockWriterOptions{BlockSize: 50}))
	if err != nil {
		t.Fatal(err)
	}
	if bf.NumBlocks() < 10 {
		t.Fatalf("want many small blocks, got %d", bf.NumBlocks())
	}
	filters := []ScanFilter{
		{HasMachine: true, Machine: 7},
		{HasWindow: true, Window: sim.Window{Start: 10 * sim.Day, End: 11 * sim.Day}},
		{HasWindow: true, Overlap: true, Window: sim.Window{Start: 40 * sim.Day, End: 41 * sim.Day}},
		{States: StateBit(availability.S5)},
		{HasMachine: true, Machine: 3, HasWindow: true, Window: sim.Window{Start: 0, End: 30 * sim.Day}},
	}
	for i, f := range filters {
		var got []Event
		decoded, skipped, err := bf.Scan(f, func(e Event) error {
			got = append(got, e)
			return nil
		})
		if err != nil {
			t.Fatalf("filter %d: %v", i, err)
		}
		if decoded+skipped != bf.NumBlocks() {
			t.Errorf("filter %d: decoded %d + skipped %d != %d blocks", i, decoded, skipped, bf.NumBlocks())
		}
		if skipped == 0 {
			t.Errorf("filter %d: summaries pruned nothing", i)
		}
		var want []Event
		for _, e := range tr.Events {
			if f.AdmitEvent(e) {
				want = append(want, e)
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("filter %d: scan returned %d events, want %d", i, len(got), len(want))
		}
	}
}

// TestBlockFileSalvagesTruncation cuts a v2 file at every kind of boundary
// and expects the complete prefix blocks to stay readable.
func TestBlockFileSalvagesTruncation(t *testing.T) {
	tr := randomTrace(44, 600)
	tr.Sort()
	full := v2Bytes(t, tr, &BlockWriterOptions{BlockSize: 64})
	whole, err := NewBlockFileBytes(full)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(full) - 3, len(full) - colFooterLen - 2, len(full) * 3 / 4, len(full) / 2} {
		bf, err := NewBlockFileBytes(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !bf.Truncated() {
			t.Errorf("cut %d: not reported truncated", cut)
		}
		if bf.NumBlocks() > whole.NumBlocks() {
			t.Errorf("cut %d: salvage found %d blocks, file only has %d", cut, bf.NumBlocks(), whole.NumBlocks())
		}
		// Every salvaged block must decode to a prefix of the event stream.
		got, err := CollectEvents(bf.Reader())
		if err != nil {
			t.Fatalf("cut %d: decoding salvage: %v", cut, err)
		}
		if len(got.Events) > len(tr.Events) {
			t.Fatalf("cut %d: salvage invented events", cut)
		}
		for i, e := range got.Events {
			if e != tr.Events[i] {
				t.Fatalf("cut %d: salvaged event %d diverges", cut, i)
			}
		}
	}
}

func TestBlockIndexMatchesIndex(t *testing.T) {
	tr := randomTrace(55, 3000)
	tr.Sort()
	bf, err := NewBlockFileBytes(v2Bytes(t, tr, &BlockWriterOptions{BlockSize: 100}))
	if err != nil {
		t.Fatal(err)
	}
	ref := tr.BuildIndex()
	bix := NewBlockIndex(bf)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		m := MachineID(rng.Intn(tr.Machines))
		start := sim.Time(rng.Int63n(int64(92 * sim.Day)))
		w := sim.Window{Start: start, End: start + sim.Time(rng.Int63n(int64(12*time.Hour)))}
		if gotE, gotOK := bix.FirstOverlap(m, w); true {
			wantE, wantOK := ref.FirstOverlap(m, w)
			if gotOK != wantOK || gotE != wantE {
				t.Fatalf("FirstOverlap(%d, %v): got (%+v, %v), want (%+v, %v)", m, w, gotE, gotOK, wantE, wantOK)
			}
		}
		if got, want := bix.CountInWindow(m, w), ref.CountInWindow(m, w); got != want {
			t.Fatalf("CountInWindow(%d, %v) = %d, want %d", m, w, got, want)
		}
		if got, want := bix.AnyOverlap(m, w), ref.AnyOverlap(m, w); got != want {
			t.Fatalf("AnyOverlap(%d, %v) = %v, want %v", m, w, got, want)
		}
		if gotE, gotOK := bix.NextEventAfter(m, start); true {
			wantE, wantOK := ref.NextEventAfter(m, start)
			if gotOK != wantOK || gotE != wantE {
				t.Fatalf("NextEventAfter(%d, %v) mismatch", m, start)
			}
		}
		if gotT, gotOK := bix.LastEndBefore(m, start); true {
			wantT, wantOK := ref.LastEndBefore(m, start)
			if gotOK != wantOK || gotT != wantT {
				t.Fatalf("LastEndBefore(%d, %v) mismatch", m, start)
			}
		}
	}
	if err := bix.Err(); err != nil {
		t.Fatal(err)
	}
	// All machines touched; the lazy index must still have decoded at most
	// every block once (the cache), and single-machine builds must have
	// skipped the blocks of other machines on the way.
	if bix.BlocksDecoded() > bf.NumBlocks()*2 {
		t.Errorf("decoded %d blocks for %d-block file", bix.BlocksDecoded(), bf.NumBlocks())
	}
	one := NewBlockIndex(bf)
	one.CountInWindow(0, sim.Window{Start: 0, End: sim.Day})
	if one.BlocksDecoded() >= bf.NumBlocks() {
		t.Errorf("point query decoded all %d blocks; summaries pruned nothing", bf.NumBlocks())
	}
}

// analyzeSerial is the reference: one full-range analyzer fed the sorted
// events.
func analyzeSerial(t *testing.T, tr *Trace) *StreamAnalyzer {
	t.Helper()
	a := NewStreamAnalyzerFor(Header{Span: tr.Span, Calendar: tr.Calendar, Machines: tr.Machines})
	for _, e := range tr.Events {
		if err := a.Observe(e); err != nil {
			t.Fatal(err)
		}
	}
	a.Finish()
	return a
}

// requireAnalyzersEqual compares every analyzer query surface exactly — the
// bit-identical guarantee the parallel engine makes.
func requireAnalyzersEqual(t *testing.T, want, got *StreamAnalyzer) {
	t.Helper()
	if w, g := want.Table2(), got.Table2(); w != g {
		t.Errorf("Table2: got %+v, want %+v", g, w)
	}
	if w, g := want.CountByCause(), got.CountByCause(); !reflect.DeepEqual(w, g) {
		t.Errorf("CountByCause differs")
	}
	if w, g := want.Events(), got.Events(); w != g {
		t.Errorf("Events: got %d, want %d", g, w)
	}
	for _, dt := range []sim.DayType{sim.Weekday, sim.Weekend} {
		if w, g := want.IntervalLengths(dt), got.IntervalLengths(dt); !reflect.DeepEqual(w, g) {
			t.Errorf("%v IntervalLengths differ: %d vs %d samples", dt, len(w), len(g))
		}
		if w, g := want.HourlyOccurrences(dt), got.HourlyOccurrences(dt); !reflect.DeepEqual(w, g) {
			t.Errorf("%v HourlyOccurrences differ", dt)
		}
	}
}

func TestAnalyzeBlockFilesMatchesSerial(t *testing.T) {
	tr := randomTrace(66, 4000)
	tr.Sort()
	want := analyzeSerial(t, tr)
	single := v2Bytes(t, tr, &BlockWriterOptions{BlockSize: 128})
	for _, workers := range []int{1, 2, 4, 7} {
		bf, err := NewBlockFileBytes(single)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AnalyzeBlockFiles([]*BlockFile{bf}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		requireAnalyzersEqual(t, want, got)
	}
}

// shardV2Files encodes tr as per-machine-range v2 shard files with
// coverage, like the sharded testbed writes.
func shardV2Files(t *testing.T, tr *Trace, bounds []MachineID) []*BlockFile {
	t.Helper()
	var files []*BlockFile
	lo := MachineID(0)
	for _, hi := range bounds {
		var buf bytes.Buffer
		bw, err := NewBlockWriter(&buf, Header{Span: tr.Span, Calendar: tr.Calendar, Machines: tr.Machines}, &BlockWriterOptions{BlockSize: 32})
		if err != nil {
			t.Fatal(err)
		}
		bw.SetCoverage(lo, hi)
		for _, e := range tr.Events {
			if e.Machine >= lo && e.Machine < hi {
				if err := bw.Write(e); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := bw.Close(); err != nil {
			t.Fatal(err)
		}
		bf, err := NewBlockFileBytes(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, bf)
		lo = hi
	}
	return files
}

func TestAnalyzeBlockFilesShardedMatchesSerial(t *testing.T) {
	tr := randomTrace(77, 2500)
	tr.Sort()
	want := analyzeSerial(t, tr)
	// Uneven shards, including one covering only idle machines at the end
	// of an earlier shard's range.
	files := shardV2Files(t, tr, []MachineID{6, 7, 15, 20})
	got, err := AnalyzeBlockFiles(files, 3)
	if err != nil {
		t.Fatal(err)
	}
	requireAnalyzersEqual(t, want, got)
}

// TestAnalyzeBlockFilesCoverageShortfall pins the serial-equivalence of the
// widening rule: shards that stop short of the fleet leave the trailing
// machines idle, exactly as a serial pass over the same shards would.
func TestAnalyzeBlockFilesCoverageShortfall(t *testing.T) {
	tr := randomTrace(88, 800)
	tr.Sort()
	keep := tr.Filter(func(e Event) bool { return e.Machine < 12 })
	want := analyzeSerial(t, keep)
	files := shardV2Files(t, keep, []MachineID{12}) // coverage [0, 12) of a 20-machine fleet
	got, err := AnalyzeBlockFiles(files, 2)
	if err != nil {
		t.Fatal(err)
	}
	requireAnalyzersEqual(t, want, got)
}

// TestMergeFromAssociativity pins the property the worker pool relies on:
// any grouping of adjacent partial merges produces the identical analyzer.
func TestMergeFromAssociativity(t *testing.T) {
	tr := randomTrace(99, 1500)
	tr.Sort()
	bounds := []MachineID{0, 4, 9, 13, 20}
	makePartials := func() []*StreamAnalyzer {
		var out []*StreamAnalyzer
		for i := 0; i+1 < len(bounds); i++ {
			a := NewStreamAnalyzerRange(tr.Span, tr.Calendar, tr.Machines, bounds[i], bounds[i+1])
			for _, e := range tr.Events {
				if e.Machine >= bounds[i] && e.Machine < bounds[i+1] {
					if err := a.Observe(e); err != nil {
						t.Fatal(err)
					}
				}
			}
			a.Finish()
			out = append(out, a)
		}
		return out
	}

	// Left fold: ((p0+p1)+p2)+p3.
	left := makePartials()
	acc := left[0]
	for _, p := range left[1:] {
		if err := acc.MergeFrom(p); err != nil {
			t.Fatal(err)
		}
	}
	// Pairwise: (p0+p1)+(p2+p3).
	right := makePartials()
	if err := right[0].MergeFrom(right[1]); err != nil {
		t.Fatal(err)
	}
	if err := right[2].MergeFrom(right[3]); err != nil {
		t.Fatal(err)
	}
	if err := right[0].MergeFrom(right[2]); err != nil {
		t.Fatal(err)
	}

	want := analyzeSerial(t, tr)
	requireAnalyzersEqual(t, want, acc)
	requireAnalyzersEqual(t, want, right[0])
}

func TestMergeFromRejectsMisuse(t *testing.T) {
	span := sim.Window{Start: 0, End: 2 * sim.Day}
	mk := func(lo, hi MachineID) *StreamAnalyzer {
		a := NewStreamAnalyzerRange(span, sim.Calendar{}, 10, lo, hi)
		a.Finish()
		return a
	}
	a, b := mk(0, 5), mk(5, 10)
	unfinished := NewStreamAnalyzerRange(span, sim.Calendar{}, 10, 5, 10)
	if err := a.MergeFrom(unfinished); err == nil {
		t.Error("merged an unfinished partial")
	}
	if err := b.MergeFrom(mk(0, 5)); err == nil {
		t.Error("merged non-adjacent ranges")
	}
	other := NewStreamAnalyzerRange(sim.Window{Start: 0, End: 3 * sim.Day}, sim.Calendar{}, 10, 5, 10)
	other.Finish()
	if err := a.MergeFrom(other); err == nil {
		t.Error("merged mismatched spans")
	}
	if err := a.MergeFrom(b); err != nil {
		t.Errorf("legitimate merge rejected: %v", err)
	}
}

// TestMergeReaderUnorderedOverlappingShards pins the k-way merge over shard
// files handed over in arbitrary order, with one machine's events split
// across two files — the stream must still come out (machine, start, end)
// sorted and complete.
func TestMergeReaderUnorderedOverlappingShards(t *testing.T) {
	tr := randomTrace(111, 1200)
	tr.Sort()
	h := Header{Span: tr.Span, Calendar: tr.Calendar, Machines: tr.Machines}
	// Shard A: machines 10..19 plus the even-indexed events of machine 5.
	// Shard B: machines 0..9 minus those events. Handing A before B gives
	// the reader unordered inputs with interleaved machine-5 events.
	var bufA, bufB bytes.Buffer
	encA, err := NewEncoder(&bufA, h)
	if err != nil {
		t.Fatal(err)
	}
	encB, err := NewEncoder(&bufB, h)
	if err != nil {
		t.Fatal(err)
	}
	fives := 0
	for _, e := range tr.Events {
		enc := encB
		if e.Machine >= 10 {
			enc = encA
		} else if e.Machine == 5 {
			if fives%2 == 0 {
				enc = encA
			}
			fives++
		}
		if err := enc.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := encA.Close(); err != nil {
		t.Fatal(err)
	}
	if err := encB.Close(); err != nil {
		t.Fatal(err)
	}
	decA, err := NewReader(&bufA)
	if err != nil {
		t.Fatal(err)
	}
	decB, err := NewReader(&bufB)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := NewMergeReader(decA, decB)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectEvents(mr)
	if err != nil {
		t.Fatal(err)
	}
	if !tracesEqual(tr, got) {
		t.Error("merge over unordered, overlapping shards lost or reordered events")
	}
}

// TestWriteBlocksRejectsUnsorted pins the writer's ordering contract.
func TestWriteBlocksRejectsUnsorted(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBlockWriter(&buf, Header{Span: sim.Window{End: sim.Day}, Machines: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Write(Event{Machine: 2, Start: 5, End: 9, State: availability.S3}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Write(Event{Machine: 1, Start: 1, End: 2, State: availability.S3}); err == nil {
		t.Error("out-of-order machine accepted")
	}
}
