package trace

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// boundaryTrace has one machine with three events chosen so every query
// below can land exactly on a start or end: [1h,2h) S3, [2h,3h) S4 (the
// two touch), and a zero-length event at 5h.
func boundaryTrace() *Trace {
	tr := New(sim.Window{End: sim.Day}, sim.Calendar{}, 1)
	tr.Add(mkEvent(0, 1*time.Hour, 2*time.Hour, 3))
	tr.Add(mkEvent(0, 2*time.Hour, 3*time.Hour, 4))
	tr.Add(mkEvent(0, 5*time.Hour, 5*time.Hour, 5))
	return tr
}

// TestNextEventAfterBoundaries probes ts exactly at event starts and ends,
// asserting the indexed and linear forms agree on the half-open semantics:
// "at or after" includes ts == Start.
func TestNextEventAfterBoundaries(t *testing.T) {
	tr := boundaryTrace()
	ix := tr.BuildIndex()
	cases := []struct {
		ts        sim.Time
		wantStart sim.Time
		found     bool
	}{
		{0, 1 * time.Hour, true},
		{1*time.Hour - 1, 1 * time.Hour, true},
		{1 * time.Hour, 1 * time.Hour, true}, // exactly at a start: included
		{1*time.Hour + 1, 2 * time.Hour, true},
		{2 * time.Hour, 2 * time.Hour, true}, // start == previous end
		{3 * time.Hour, 5 * time.Hour, true}, // exactly at an end
		{5 * time.Hour, 5 * time.Hour, true}, // zero-length event at ts
		{5*time.Hour + 1, 0, false},
	}
	for _, c := range cases {
		le, lok := tr.NextEventAfter(0, c.ts)
		ie, iok := ix.NextEventAfter(0, c.ts)
		if lok != c.found || iok != c.found {
			t.Fatalf("NextEventAfter(%v): found linear=%v index=%v, want %v", c.ts, lok, iok, c.found)
		}
		if !c.found {
			continue
		}
		if le != ie {
			t.Errorf("NextEventAfter(%v): linear %+v != index %+v", c.ts, le, ie)
		}
		if le.Start != c.wantStart {
			t.Errorf("NextEventAfter(%v).Start = %v, want %v", c.ts, le.Start, c.wantStart)
		}
	}
}

// TestNextEventAfterTieBreak pins the divergence the differential driver
// exposed: with two events sharing a start time, the linear scan used to
// return whichever was stored first while the index always returns the
// earliest-ending one. Both must now agree regardless of storage order.
func TestNextEventAfterTieBreak(t *testing.T) {
	tr := New(sim.Window{End: sim.Day}, sim.Calendar{}, 1)
	// Deliberately stored longest-first and never sorted.
	tr.Add(mkEvent(0, 1*time.Hour, 4*time.Hour, 3))
	tr.Add(mkEvent(0, 1*time.Hour, 2*time.Hour, 4))
	ix := tr.BuildIndex()
	le, _ := tr.NextEventAfter(0, 0)
	ie, _ := ix.NextEventAfter(0, 0)
	if le != ie {
		t.Fatalf("tie on Start: linear %+v != index %+v", le, ie)
	}
	if le.End != 2*time.Hour {
		t.Errorf("tie should resolve to the earliest end, got %+v", le)
	}
}

// TestAnyOverlapBoundaries checks the overlap semantics at exact interval
// endpoints for both the linear and indexed forms. A window ending exactly
// at an event start, or starting exactly at an event end, does not overlap.
// Degenerate intervals follow the instant convention of
// `e.Start < w.End && e.End > w.Start`: a zero-length event (or empty
// window) overlaps whatever strictly contains its instant, and nothing
// whose boundary it merely touches.
func TestAnyOverlapBoundaries(t *testing.T) {
	tr := boundaryTrace()
	ix := tr.BuildIndex()
	cases := []struct {
		w    sim.Window
		want bool
	}{
		{sim.Window{Start: 0, End: 1 * time.Hour}, false},                  // ends at event start
		{sim.Window{Start: 0, End: 1*time.Hour + 1}, true},                 // one instant inside
		{sim.Window{Start: 3 * time.Hour, End: 4 * time.Hour}, false},      // starts at event end
		{sim.Window{Start: 3*time.Hour - 1, End: 4 * time.Hour}, true},     // one instant before the end
		{sim.Window{Start: 2 * time.Hour, End: 2 * time.Hour}, false},      // empty window at an event boundary
		{sim.Window{Start: 90 * time.Minute, End: 90 * time.Minute}, true}, // empty window strictly inside an event
		{sim.Window{Start: 5 * time.Hour, End: 6 * time.Hour}, false},      // zero-length event at w.Start: excluded
		{sim.Window{Start: 4 * time.Hour, End: 5 * time.Hour}, false},      // zero-length event at w.End: excluded
		{sim.Window{Start: 4 * time.Hour, End: 5*time.Hour + 1}, true},     // zero-length event strictly inside
	}
	for _, c := range cases {
		if got := tr.AnyOverlap(0, c.w); got != c.want {
			t.Errorf("linear AnyOverlap(%v) = %v, want %v", c.w, got, c.want)
		}
		if got := ix.AnyOverlap(0, c.w); got != c.want {
			t.Errorf("indexed AnyOverlap(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

// TestCountInWindowBoundaries checks that event starts landing exactly on
// window edges follow [Start, End): a start at w.Start counts, a start at
// w.End does not. Zero-length events count like any other start.
func TestCountInWindowBoundaries(t *testing.T) {
	tr := boundaryTrace()
	ix := tr.BuildIndex()
	cases := []struct {
		w    sim.Window
		want int
	}{
		{sim.Window{Start: 1 * time.Hour, End: 2 * time.Hour}, 1}, // start on w.Start counts
		{sim.Window{Start: 0, End: 1 * time.Hour}, 0},             // start on w.End does not
		{sim.Window{Start: 1 * time.Hour, End: 2*time.Hour + 1}, 2},
		{sim.Window{Start: 5 * time.Hour, End: 5*time.Hour + 1}, 1}, // zero-length event
		{sim.Window{Start: 5 * time.Hour, End: 5 * time.Hour}, 0},   // empty window
	}
	for _, c := range cases {
		if got := tr.OccurrencesInWindow(0, c.w); got != c.want {
			t.Errorf("linear OccurrencesInWindow(%v) = %d, want %d", c.w, got, c.want)
		}
		if got := ix.CountInWindow(0, c.w); got != c.want {
			t.Errorf("indexed CountInWindow(%v) = %d, want %d", c.w, got, c.want)
		}
	}
}

// TestFirstOverlapBoundaries checks FirstOverlap at exact endpoints: an
// event ending exactly at w.Start is excluded, an event starting exactly
// at w.End is excluded, and an event already open at w.Start wins over a
// later one inside the window.
func TestFirstOverlapBoundaries(t *testing.T) {
	tr := boundaryTrace()
	ix := tr.BuildIndex()
	// Window opening mid-first-event: the open event wins.
	if e, ok := ix.FirstOverlap(0, sim.Window{Start: 90 * time.Minute, End: sim.Day}); !ok || e.Start != 1*time.Hour {
		t.Errorf("FirstOverlap(open event) = %+v, %v", e, ok)
	}
	// Window starting exactly at the S4 event's end: the S4 event is
	// excluded, and the zero-length 5h event — strictly inside — is the
	// first overlap per the instant convention.
	if e, ok := ix.FirstOverlap(0, sim.Window{Start: 3 * time.Hour, End: sim.Day}); !ok || e.Start != 5*time.Hour {
		t.Errorf("FirstOverlap([3h,day)) = %+v, %v, want the zero-length 5h event", e, ok)
	}
	// Window ending exactly at the first event's start: no overlap.
	if e, ok := ix.FirstOverlap(0, sim.Window{Start: 0, End: 1 * time.Hour}); ok {
		t.Errorf("FirstOverlap(window touching start) = %+v, want none", e)
	}
	// Window [2h, 3h): the S4 event starts exactly at w.Start.
	if e, ok := ix.FirstOverlap(0, sim.Window{Start: 2 * time.Hour, End: 3 * time.Hour}); !ok || e.State != 4 {
		t.Errorf("FirstOverlap([2h,3h)) = %+v, %v, want the S4 event", e, ok)
	}
}

// TestFirstOverlapZeroLengthShadow pins the indexed-query fix the fuzz
// harness exposed: a zero-length event sitting exactly at w.Start does not
// overlap the window, so FirstOverlap must neither return it nor let it
// shadow a genuine overlap later in the window.
func TestFirstOverlapZeroLengthShadow(t *testing.T) {
	tr := New(sim.Window{End: sim.Day}, sim.Calendar{}, 1)
	tr.Add(mkEvent(0, 2*time.Hour, 2*time.Hour, 5)) // instant event at w.Start
	tr.Add(mkEvent(0, 3*time.Hour, 4*time.Hour, 3))
	ix := tr.BuildIndex()
	if e, ok := ix.FirstOverlap(0, sim.Window{Start: 2 * time.Hour, End: sim.Day}); !ok || e.Start != 3*time.Hour {
		t.Fatalf("FirstOverlap = %+v, %v, want the [3h,4h) event", e, ok)
	}
	if e, ok := ix.FirstOverlap(0, sim.Window{Start: 2 * time.Hour, End: 3 * time.Hour}); ok {
		t.Fatalf("FirstOverlap = %+v, want none (only the instant at w.Start is in range)", e)
	}
}

// TestLastEndBeforeBoundaries completes the endpoint coverage: t exactly at
// an end counts ("at or before"), one instant earlier falls back.
func TestLastEndBeforeBoundaries(t *testing.T) {
	tr := boundaryTrace()
	ix := tr.BuildIndex()
	if end, ok := ix.LastEndBefore(0, 2*time.Hour); !ok || end != 2*time.Hour {
		t.Errorf("LastEndBefore(2h) = %v, %v, want 2h (boundary counts)", end, ok)
	}
	if end, ok := ix.LastEndBefore(0, 2*time.Hour-1); !ok || end != 0 {
		// The zero-length convention: no event ends at or before 2h-1
		// except... none do; the first end is 2h.
		if ok {
			t.Errorf("LastEndBefore(2h-1) = %v, want none", end)
		}
	}
}
