//go:build !unix

package trace

import (
	"fmt"
	"os"
)

// mmapFile on platforms without a memory-mapping syscall always reports an
// error, steering OpenBlockFile onto the io.ReaderAt pread path, which
// behaves identically (every BlockFile API is mapping-agnostic).
func mmapFile(f *os.File, size int64) ([]byte, func(), error) {
	return nil, nil, fmt.Errorf("trace: mmap unsupported on this platform")
}
