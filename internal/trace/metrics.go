package trace

import (
	"repro/internal/availability"
	"repro/internal/obs"
	"repro/internal/sim"
)

// streamMetrics is the live-scrape view of a StreamAnalyzer: the same
// per-state residence and occurrence quantities Table 2 and Figure 6
// summarize after Finish, exported incrementally so a fleet analysis in
// flight can be watched on /metrics.
type streamMetrics struct {
	events    map[availability.State]*obs.Counter
	durations map[availability.State]*obs.Histogram
	intervals map[sim.DayType]*obs.Histogram
}

// unavailHoursBuckets cover unavailability events from sub-minute reboots
// to the multi-hour failures of the paper's Table 2 outage mix.
var unavailHoursBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2, 6, 12}

// availHoursBuckets cover the Figure 6 availability-interval bands: the
// sub-5-minute multi-spike gaps, the dominant 2-4 hour band, and the long
// idle stretches.
var availHoursBuckets = []float64{0.05, 0.083, 0.25, 0.5, 1, 2, 3, 4, 6, 12, 24, 72}

// Instrument attaches an obs registry: per-state unavailability-event
// counters and residence (event duration) histograms, plus per-day-type
// availability-interval histograms. Call before the first Observe; metric
// families register eagerly so an idle analyzer still scrapes cleanly.
// Instrumentation never changes what the analyzer computes.
func (a *StreamAnalyzer) Instrument(reg *obs.Registry) {
	m := &streamMetrics{
		events:    make(map[availability.State]*obs.Counter),
		durations: make(map[availability.State]*obs.Histogram),
		intervals: make(map[sim.DayType]*obs.Histogram),
	}
	for _, st := range []availability.State{availability.S3, availability.S4, availability.S5} {
		m.events[st] = reg.Counter("fgcs_trace_events_total",
			"unavailability events by state", obs.L("state", st.Short()))
		m.durations[st] = reg.Histogram("fgcs_trace_event_hours",
			"unavailability event durations (per-state residence in S3-S5)",
			unavailHoursBuckets, obs.L("state", st.Short()))
	}
	for _, dt := range []sim.DayType{sim.Weekday, sim.Weekend} {
		m.intervals[dt] = reg.Histogram("fgcs_trace_avail_interval_hours",
			"availability interval lengths between unavailability runs (Figure 6)",
			availHoursBuckets, obs.L("daytype", dt.String()))
	}
	a.met = m
}

// noteEvent feeds one observed event into the metrics (no-op when not
// instrumented).
func (a *StreamAnalyzer) noteEvent(e Event) {
	if a.met == nil {
		return
	}
	if c := a.met.events[e.State]; c != nil {
		c.Inc()
	}
	if h := a.met.durations[e.State]; h != nil {
		h.Observe(e.Duration().Hours())
	}
}

// noteInterval feeds one availability interval into the metrics.
func (a *StreamAnalyzer) noteInterval(dt sim.DayType, hours float64) {
	if a.met == nil {
		return
	}
	if h := a.met.intervals[dt]; h != nil {
		h.Observe(hours)
	}
}
