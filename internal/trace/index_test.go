package trace

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestIndexMatchesLinearQueries(t *testing.T) {
	tr := randomTrace(11, 800)
	ix := tr.BuildIndex()
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		m := MachineID(rng.Intn(tr.Machines))
		start := time.Duration(rng.Int63n(int64(tr.Span.End)))
		w := sim.Window{Start: start, End: start + time.Duration(rng.Int63n(int64(6*time.Hour)))}
		if got, want := ix.CountInWindow(m, w), tr.OccurrencesInWindow(m, w); got != want {
			t.Fatalf("CountInWindow(%d, %v) = %d, want %d", m, w, got, want)
		}
		if got, want := ix.OverlapExists(m, w), tr.AnyOverlap(m, w); got != want {
			t.Fatalf("OverlapExists(%d, %v) = %v, want %v", m, w, got, want)
		}
	}
}

func TestIndexLastEndBefore(t *testing.T) {
	tr := New(sim.Window{End: sim.Day}, sim.Calendar{}, 1)
	tr.Add(mkEvent(0, 1*time.Hour, 2*time.Hour, 3))
	tr.Add(mkEvent(0, 5*time.Hour, 6*time.Hour, 3))
	ix := tr.BuildIndex()
	if _, ok := ix.LastEndBefore(0, 90*time.Minute); ok {
		t.Error("no event ends before 1.5h")
	}
	if end, ok := ix.LastEndBefore(0, 3*time.Hour); !ok || end != 2*time.Hour {
		t.Errorf("LastEndBefore(3h) = %v, %v", end, ok)
	}
	if end, ok := ix.LastEndBefore(0, 6*time.Hour); !ok || end != 6*time.Hour {
		t.Errorf("LastEndBefore(6h) = %v, %v; boundary should count", end, ok)
	}
	if _, ok := ix.LastEndBefore(9, time.Hour); ok {
		t.Error("unknown machine should report none")
	}
}

func TestIndexEmptyTrace(t *testing.T) {
	tr := New(sim.Window{End: sim.Day}, sim.Calendar{}, 2)
	ix := tr.BuildIndex()
	w := sim.Window{Start: 0, End: sim.Day}
	if ix.CountInWindow(0, w) != 0 || ix.OverlapExists(0, w) {
		t.Error("empty index should report nothing")
	}
}
