package trace

import (
	"testing"
	"time"

	"repro/internal/availability"
)

func tr(at time.Duration, from, to availability.State, lh float64) availability.Transition {
	return availability.Transition{At: at, From: from, To: to, LH: lh, FreeMem: 1 << 30}
}

func TestBuilderOpenClose(t *testing.T) {
	b := NewBuilder(3)
	if b.Open() {
		t.Error("fresh builder should have nothing open")
	}
	if ev := b.OnTransition(tr(time.Hour, availability.S1, availability.S3, 0.8)); ev != nil {
		t.Errorf("opening should not return an event, got %+v", ev)
	}
	if !b.Open() {
		t.Error("event should be open")
	}
	ev := b.OnTransition(tr(2*time.Hour, availability.S3, availability.S1, 0.1))
	if ev == nil {
		t.Fatal("closing should return the event")
	}
	if ev.Machine != 3 || ev.Start != time.Hour || ev.End != 2*time.Hour || ev.State != availability.S3 {
		t.Errorf("event = %+v", ev)
	}
	if ev.AvailCPU < 0.199 || ev.AvailCPU > 0.201 {
		t.Errorf("AvailCPU = %v, want 0.2 (captured at failure)", ev.AvailCPU)
	}
	if err := ev.Validate(); err != nil {
		t.Errorf("built event invalid: %v", err)
	}
	if b.Open() {
		t.Error("nothing should remain open")
	}
}

func TestBuilderAvailableTransitionsIgnored(t *testing.T) {
	b := NewBuilder(0)
	if ev := b.OnTransition(tr(time.Hour, availability.S1, availability.S2, 0.4)); ev != nil {
		t.Errorf("S1->S2 produced event %+v", ev)
	}
	if b.Open() {
		t.Error("S1->S2 should not open an event")
	}
}

func TestBuilderFailureToFailureSwitch(t *testing.T) {
	b := NewBuilder(1)
	b.OnTransition(tr(time.Hour, availability.S2, availability.S3, 0.9))
	// Machine gets rebooted while overloaded: S3 -> S5.
	ev := b.OnTransition(tr(90*time.Minute, availability.S3, availability.S5, 0))
	if ev == nil {
		t.Fatal("S3->S5 should close the S3 event")
	}
	if ev.State != availability.S3 || ev.End != 90*time.Minute {
		t.Errorf("closed event = %+v", ev)
	}
	if !b.Open() {
		t.Fatal("an S5 event should now be open")
	}
	ev = b.OnTransition(tr(91*time.Minute, availability.S5, availability.S1, 0))
	if ev == nil || ev.State != availability.S5 || ev.Start != 90*time.Minute {
		t.Errorf("S5 event = %+v", ev)
	}
}

func TestBuilderFlush(t *testing.T) {
	b := NewBuilder(2)
	b.OnTransition(tr(time.Hour, availability.S1, availability.S4, 0.2))
	ev := b.Flush(3 * time.Hour)
	if ev == nil || ev.End != 3*time.Hour || ev.State != availability.S4 {
		t.Errorf("flushed = %+v", ev)
	}
	if b.Flush(4*time.Hour) != nil {
		t.Error("second flush should return nil")
	}
}

func TestBuilderBackdatedTransitionClamped(t *testing.T) {
	// An S3 transition backdated before a previous event's close must not
	// produce a negative-duration event.
	b := NewBuilder(0)
	b.OnTransition(tr(2*time.Hour, availability.S1, availability.S3, 0.9))
	ev := b.OnTransition(availability.Transition{At: time.Hour, From: availability.S3, To: availability.S1})
	if ev == nil {
		t.Fatal("expected closed event")
	}
	if ev.End < ev.Start {
		t.Errorf("negative-duration event: %+v", ev)
	}
	if ev.Validate() != nil {
		t.Errorf("clamped event still invalid: %+v", ev)
	}
}
