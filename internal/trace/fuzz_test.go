package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSVEvents checks the CSV parser never panics and that whatever
// it accepts round-trips losslessly.
func FuzzReadCSVEvents(f *testing.F) {
	var buf bytes.Buffer
	if err := randomTrace(1, 20).WriteCSV(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("machine,start_ns,end_ns,state,avail_cpu,avail_mem\n0,1,2,3,0.5,0")
	f.Add("")
	f.Add("garbage\nmore garbage")
	f.Add("machine,start_ns,end_ns,state,avail_cpu,avail_mem\n0,9223372036854775807,2,3,0.5,0")

	f.Fuzz(func(t *testing.T, input string) {
		events, err := ReadCSVEvents(strings.NewReader(input))
		if err != nil {
			return
		}
		// Accepted input must produce valid events that survive re-encoding.
		tr := &Trace{}
		for _, e := range events {
			if err := e.Validate(); err != nil {
				t.Fatalf("accepted invalid event %+v: %v", e, err)
			}
			tr.Events = append(tr.Events, e)
		}
		var out bytes.Buffer
		if err := tr.WriteCSV(&out); err != nil {
			t.Fatalf("re-encoding accepted events failed: %v", err)
		}
		again, err := ReadCSVEvents(&out)
		if err != nil {
			t.Fatalf("re-parsing own output failed: %v", err)
		}
		if len(again) != len(events) {
			t.Fatalf("round trip changed event count: %d -> %d", len(events), len(again))
		}
	})
}

// FuzzReadBinary checks the binary decoder never panics on hostile input
// and that accepted traces validate and round-trip bit-exactly.
func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	if err := func() error {
		tr := randomTrace(3, 30)
		tr.Sort()
		return tr.WriteBinary(&buf)
	}(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("FGCB"))
	f.Add([]byte("FGCB\x01\x00\x00\x00\x00"))
	f.Add(buf.Bytes()[:buf.Len()/2])

	f.Fuzz(func(t *testing.T, input []byte) {
		tr, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadBinary accepted an invalid trace: %v", err)
		}
		var out bytes.Buffer
		if err := tr.WriteBinary(&out); err != nil {
			t.Fatalf("re-encoding failed: %v", err)
		}
		tr2, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-parsing own output failed: %v", err)
		}
		if !tracesEqual(tr, tr2) {
			t.Fatal("round trip changed the trace")
		}
	})
}

// FuzzReadJSON checks the JSON trace reader never panics and that accepted
// traces validate and round-trip.
func FuzzReadJSON(f *testing.F) {
	var buf bytes.Buffer
	if err := randomTrace(2, 10).WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"span_start_ns":0,"span_end_ns":1,"machines":1,"events":[]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"span_start_ns":5,"span_end_ns":1}`))

	f.Fuzz(func(t *testing.T, input []byte) {
		tr, err := ReadJSON(bytes.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted an invalid trace: %v", err)
		}
		var out bytes.Buffer
		if err := tr.WriteJSON(&out); err != nil {
			t.Fatalf("re-encoding failed: %v", err)
		}
		tr2, err := ReadJSON(&out)
		if err != nil {
			t.Fatalf("re-parsing own output failed: %v", err)
		}
		if !tracesEqual(tr, tr2) {
			t.Fatal("round trip changed the trace")
		}
	})
}
